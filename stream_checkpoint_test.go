package netwide_test

// Detector-level checkpoint/restore parity: a StreamDetector snapshotted
// mid-stream and rebuilt (through a gob round trip, the way the on-disk
// envelope carries it) must characterize the remaining bins exactly as the
// uninterrupted detector — same anomalies, same classes, same OD sets —
// including anomalies whose windows straddle the checkpoint itself, which
// only survive because the aggregator's open events cross the snapshot.

import (
	"bytes"
	"encoding/gob"
	"sort"
	"sync"
	"testing"

	"netwide"
	"netwide/internal/dataset"
)

// runDetector feeds bins [from, to) of the run into det, checkpointing
// just before each bin listed in cuts (so cut c snapshots with bins
// [from, c) characterized). Returns verdicts in order, the captured
// checkpoints keyed by cut bin, and the flushed tail anomalies.
func runDetector(t *testing.T, run *netwide.Run, det *netwide.StreamDetector, from, to int, cuts ...int) ([]netwide.StreamVerdict, map[int]netwide.StreamCheckpoint) {
	t.Helper()
	cutSet := map[int]bool{}
	for _, c := range cuts {
		cutSet[c] = true
	}
	var (
		mu  sync.Mutex
		got []netwide.StreamVerdict
	)
	done := make(chan struct{})
	go func() {
		for v := range det.Verdicts() {
			mu.Lock()
			got = append(got, v)
			mu.Unlock()
		}
		close(done)
	}()
	ds := run.Dataset()
	cps := map[int]netwide.StreamCheckpoint{}
	takeCp := func(bin int) {
		cp, err := det.Checkpoint()
		if err != nil {
			t.Fatalf("checkpoint before bin %d: %v", bin, err)
		}
		cps[bin] = cp
	}
	for bin := from; bin < to; bin++ {
		if cutSet[bin] {
			takeCp(bin)
		}
		err := det.Submit(bin,
			ds.Matrix(dataset.Bytes).RowView(bin),
			ds.Matrix(dataset.Packets).RowView(bin),
			ds.Matrix(dataset.Flows).RowView(bin))
		if err != nil {
			t.Fatal(err)
		}
	}
	if cutSet[to] {
		takeCp(to)
	}
	det.Close()
	if err := det.Wait(); err != nil {
		t.Fatal(err)
	}
	<-done
	return got, cps
}

func anomaliesOf(verdicts []netwide.StreamVerdict, tail []netwide.Anomaly) []netwide.Anomaly {
	var out []netwide.Anomaly
	for _, v := range verdicts {
		out = append(out, v.Anomalies...)
	}
	return append(out, tail...)
}

func sortKeys(as []netwide.Anomaly) []string {
	keys := make([]string, len(as))
	for i, a := range as {
		keys[i] = anomalyKey(a)
	}
	sort.Strings(keys)
	return keys
}

func gobRoundTrip(t *testing.T, cp netwide.StreamCheckpoint) netwide.StreamCheckpoint {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(cp); err != nil {
		t.Fatal(err)
	}
	var out netwide.StreamCheckpoint
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestStreamCheckpointRestoreParity(t *testing.T) {
	run, err := netwide.Simulate(netwide.QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := netwide.StreamConfig{TrainBins: run.Bins(), BatchSize: 16}
	bins := run.Bins()
	cut := bins / 2

	full, err := run.NewStreamDetector(netwide.DefaultDetectOptions(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantVs, _ := runDetector(t, run, full, 0, bins)
	want := anomaliesOf(wantVs, full.TailAnomalies())

	head, err := run.NewStreamDetector(netwide.DefaultDetectOptions(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	headVs, cps := runDetector(t, run, head, 0, cut, cut)
	cp := cps[cut]

	var pre uint64
	for _, v := range headVs[:] {
		if v.Bin < cut {
			pre += uint64(len(v.Anomalies))
		}
	}
	if cp.Emitted != pre {
		t.Fatalf("checkpoint Emitted = %d, delivered before cut = %d", cp.Emitted, pre)
	}
	if cp.LastBin != cut-1 || !cp.Started {
		t.Fatalf("checkpoint cursor = (%d,%v), want (%d,true)", cp.LastBin, cp.Started, cut-1)
	}

	restored, err := run.RestoreStreamDetector(gobRoundTrip(t, cp), cfg)
	if err != nil {
		t.Fatal(err)
	}
	tailVs, _ := runDetector(t, run, restored, cut, bins)
	var got []netwide.Anomaly
	for _, v := range headVs {
		if v.Bin < cut {
			got = append(got, v.Anomalies...)
		}
	}
	got = append(got, anomaliesOf(tailVs, restored.TailAnomalies())...)

	gk, wk := sortKeys(got), sortKeys(want)
	if len(gk) != len(wk) {
		t.Fatalf("split run characterized %d anomalies, uninterrupted %d", len(gk), len(wk))
	}
	for i := range wk {
		if gk[i] != wk[i] {
			t.Fatalf("anomaly %d:\n split         %s\n uninterrupted %s", i, gk[i], wk[i])
		}
	}
	if len(want) == 0 {
		t.Fatal("run characterized no anomalies; parity check is vacuous")
	}

	// The detector rejects bins behind the restored cursor, same as the
	// live one would have.
	ds := run.Dataset()
	reject, err := run.RestoreStreamDetector(cp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for range reject.Verdicts() {
		}
	}()
	if err := reject.Submit(cut-2,
		ds.Matrix(dataset.Bytes).RowView(cut-2),
		ds.Matrix(dataset.Packets).RowView(cut-2),
		ds.Matrix(dataset.Flows).RowView(cut-2)); err == nil {
		t.Fatal("restored detector accepted a bin behind its cursor")
	}
	reject.Close()
	if err := reject.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamCheckpointWithRefits: with background refits on, a checkpoint
// carries the refit windows and model generations, and the restored
// detector keeps scoring and refitting from there. Refit timing is
// scheduler-dependent, so this pins liveness and state carriage, not
// bit-parity (which TestStreamCheckpointRestoreParity pins with refits
// off).
func TestStreamCheckpointWithRefits(t *testing.T) {
	run, err := netwide.Simulate(netwide.QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	bins := run.Bins()
	half := bins / 2
	cfg := netwide.StreamConfig{
		TrainBins:  half,
		BatchSize:  16,
		RefitEvery: 72,
		Window:     half,
	}
	det, err := run.NewStreamDetector(netwide.DefaultDetectOptions(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cut := half + bins/4
	vs, cps := runDetector(t, run, det, half, bins, cut)
	if len(vs) != bins-half {
		t.Fatalf("got %d verdicts, want %d", len(vs), bins-half)
	}
	cp := cps[cut]
	for i, lc := range cp.Lanes {
		if len(lc.Updater.Window) == 0 {
			t.Fatalf("lane %d checkpoint carries no refit window", i)
		}
		// Since may exceed RefitEvery while a refit hand-off is pending
		// (the refitter was busy), but never goes negative.
		if lc.Updater.Since < 0 {
			t.Fatalf("lane %d negative refit phase %d", i, lc.Updater.Since)
		}
	}

	restored, err := run.RestoreStreamDetector(gobRoundTrip(t, cp), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rvs, _ := runDetector(t, run, restored, cut, bins)
	if len(rvs) != bins-cut {
		t.Fatalf("restored detector emitted %d verdicts, want %d", len(rvs), bins-cut)
	}
	for i, v := range rvs {
		if v.Bin != cut+i {
			t.Fatalf("restored verdict %d has bin %d, want %d", i, v.Bin, cut+i)
		}
		for m, g := range v.Generations {
			if g < cp.Lanes[m].Updater.Model.Gen {
				t.Fatalf("bin %d measure %d scored on generation %d, below restored generation %d", v.Bin, m, g, cp.Lanes[m].Updater.Model.Gen)
			}
		}
	}
}
