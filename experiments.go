package netwide

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"netwide/internal/baseline"
	"netwide/internal/classify"
	"netwide/internal/core"
	"netwide/internal/dataset"
	"netwide/internal/events"
	"netwide/internal/identify"
	"netwide/internal/routing"
	"netwide/internal/stats"
	"netwide/internal/traffic"
)

// This file regenerates every table and figure of the paper's evaluation
// (see DESIGN.md's per-experiment index). Each function returns plain data
// plus a renderer, so both cmd/paper and the benchmark harness reuse them.

// Figure1Series is one measure's three panels of Figure 1: timeseries of
// the state vector squared magnitude, the residual squared magnitude with
// its Q threshold, and the T² statistic with its threshold.
type Figure1Series struct {
	Measure string
	State   []float64
	SPE     []float64
	QLimit  float64
	T2      []float64
	T2Limit float64
}

// Figure1 extracts the three panels for each traffic type over a window of
// bins (the paper plots 3.5 days ~ 1008 bins). Detect must have run.
func (r *Run) Figure1(startBin, bins int) ([dataset.NumMeasures]Figure1Series, error) {
	var out [dataset.NumMeasures]Figure1Series
	if r.results[0] == nil {
		return out, fmt.Errorf("netwide: Figure1 requires Detect")
	}
	end := startBin + bins
	if startBin < 0 || end > r.Bins() {
		return out, fmt.Errorf("netwide: window [%d,%d) out of range", startBin, end)
	}
	for m := dataset.Measure(0); m < dataset.NumMeasures; m++ {
		res := r.results[m]
		out[m] = Figure1Series{
			Measure: m.String(),
			State:   res.State[startBin:end],
			SPE:     res.SPE[startBin:end],
			QLimit:  res.QLimit,
			T2:      res.T2[startBin:end],
			T2Limit: res.T2Limit,
		}
	}
	return out, nil
}

// WriteFigure1CSV writes the Figure 1 series as CSV (bin, then per measure
// state/spe/t2 columns).
func (r *Run) WriteFigure1CSV(w io.Writer, startBin, bins int) error {
	series, err := r.Figure1(startBin, bins)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "bin,state_B,spe_B,t2_B,state_P,spe_P,t2_P,state_F,spe_F,t2_F"); err != nil {
		return err
	}
	for i := 0; i < bins; i++ {
		b, p, f := series[dataset.Bytes], series[dataset.Packets], series[dataset.Flows]
		if _, err := fmt.Fprintf(w, "%d,%g,%g,%g,%g,%g,%g,%g,%g,%g\n",
			startBin+i, b.State[i], b.SPE[i], b.T2[i],
			p.State[i], p.SPE[i], p.T2[i],
			f.State[i], f.SPE[i], f.T2[i]); err != nil {
			return err
		}
	}
	for _, s := range series {
		if _, err := fmt.Fprintf(w, "# %s: Qlimit=%g T2limit=%g\n", s.Measure, s.QLimit, s.T2Limit); err != nil {
			return err
		}
	}
	return nil
}

// Table1 counts aggregated anomalies per traffic-type combination — the
// paper's Table 1 (B, F, P, BF, BP, FP, BFP).
func (r *Run) Table1() map[string]int {
	counts := events.CountBySet(r.evs)
	out := map[string]int{}
	for _, set := range events.AllSets() {
		out[set.String()] = counts[set]
	}
	return out
}

// RenderTable1 formats Table 1 in the paper's column order.
func RenderTable1(t1 map[string]int) string {
	cols := []string{"B", "F", "P", "BF", "BP", "FP", "BFP"}
	var b strings.Builder
	b.WriteString("Traffic   ")
	for _, c := range cols {
		fmt.Fprintf(&b, "%6s", c)
	}
	b.WriteString("\n# Found:  ")
	for _, c := range cols {
		fmt.Fprintf(&b, "%6d", t1[c])
	}
	b.WriteString("\n")
	return b.String()
}

// Figure2 builds the two histograms of Figure 2: anomaly duration in
// minutes and number of OD flows per anomaly.
func (r *Run) Figure2() (duration, odCount *stats.Histogram) {
	duration = stats.NewHistogram(0, 130, 26) // 5-minute buckets to >2h
	odCount = stats.NewHistogram(0.5, 8.5, 8) // 1..8+ OD flows
	for _, ev := range r.evs {
		duration.Add(float64(ev.DurationBins() * 5))
		odCount.Add(float64(len(ev.ODs)))
	}
	return duration, odCount
}

// RenderHistogram draws an ASCII histogram.
func RenderHistogram(h *stats.Histogram, label string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (n=%d)\n", label, h.Total())
	max := 0
	for _, c := range h.Counts {
		if c > max {
			max = c
		}
	}
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		bar := ""
		if max > 0 {
			bar = strings.Repeat("#", 1+c*40/max)
		}
		fmt.Fprintf(&b, "%8.1f | %-41s %d\n", h.BinCenter(i), bar, c)
	}
	return b.String()
}

// Table3Row is one row of Table 3: counts of each anomaly class for one
// traffic-type combination.
type Table3Row map[string]int

// Table3 tallies classified anomalies per (measure set, class) — the
// paper's Table 3 — plus the Total row.
func (r *Run) Table3() map[string]Table3Row {
	out := map[string]Table3Row{}
	add := func(set, class string) {
		row := out[set]
		if row == nil {
			row = Table3Row{}
			out[set] = row
		}
		row[class]++
	}
	for _, v := range r.Verdicts() {
		set := v.Event.Measures.String()
		add(set, collapseClass(v.Class))
		add("Total", collapseClass(v.Class))
	}
	return out
}

// collapseClass folds DDOS into the paper's combined "DOS" column and maps
// labels to Table 3 headers.
func collapseClass(c classify.Class) string {
	switch c {
	case classify.ClassDOS, classify.ClassDDOS:
		return "DOS"
	case classify.ClassUnknown:
		return "Unknown"
	case classify.ClassFalseAlarm:
		return "False Alarm"
	default:
		return c.String()
	}
}

// Table3Columns is the paper's column order.
var Table3Columns = []string{"ALPHA", "DOS", "SCAN", "FLASH", "PT-MULT", "WORM", "OUTAGE", "INGR-SHIFT", "Unknown", "False Alarm"}

// RenderTable3 formats Table 3.
func RenderTable3(t3 map[string]Table3Row) string {
	rows := []string{"B", "F", "P", "BF", "BP", "FP", "BFP", "Total"}
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s", "Type")
	for _, c := range Table3Columns {
		fmt.Fprintf(&b, "%12s", c)
	}
	b.WriteString("\n")
	for _, rname := range rows {
		row := t3[rname]
		if row == nil && rname != "Total" {
			continue
		}
		fmt.Fprintf(&b, "%-6s", rname)
		for _, c := range Table3Columns {
			fmt.Fprintf(&b, "%12d", row[c])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Table2Evidence checks, for every injected anomaly type present in the
// run, which feature signature the classifier observed — the qualitative
// content of Table 2. It returns one line per type.
func (r *Run) Table2Evidence() []string {
	byType := map[string]classify.Verdict{}
	for _, v := range r.Verdicts() {
		specs := r.ds.Ledger.Specs()
		if s, ok := r.matchTruth(v.Event, specs); ok {
			key := s.Type.String()
			if _, seen := byType[key]; !seen {
				byType[key] = v
			}
		}
	}
	keys := make([]string, 0, len(byType))
	for k := range byType {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		v := byType[k]
		out = append(out, fmt.Sprintf("%-11s observed as [%s] x%d ODs, %dmin: classified %s (%s)",
			k, v.Event.Measures, len(v.Event.ODs), v.Event.DurationBins()*5, v.Class, v.Why))
	}
	return out
}

// DetectionScore compares detected events against the injected ground
// truth: recall (fraction of injected anomalies matched by some event) and
// the unmatched-event rate.
type DetectionScore struct {
	InjectedTotal  int
	InjectedFound  int
	Events         int
	EventsMatched  int
	FalseAlarmRate float64 // fraction of events classified FALSE-ALARM
	UnknownRate    float64
}

// Score computes detection quality against the ledger.
func (r *Run) Score() DetectionScore {
	specs := r.ds.Ledger.Specs()
	s := DetectionScore{InjectedTotal: len(specs), Events: len(r.evs)}
	matched := map[int]bool{}
	for _, ev := range r.evs {
		if spec, ok := r.matchTruth(ev, specs); ok {
			s.EventsMatched++
			matched[spec.ID] = true
		}
	}
	s.InjectedFound = len(matched)
	var fa, unk int
	for _, v := range r.Verdicts() {
		switch v.Class {
		case classify.ClassFalseAlarm:
			fa++
		case classify.ClassUnknown:
			unk++
		}
	}
	if len(r.verdicts) > 0 {
		s.FalseAlarmRate = float64(fa) / float64(len(r.verdicts))
		s.UnknownRate = float64(unk) / float64(len(r.verdicts))
	}
	return s
}

// AblationPoint is one setting of the k/alpha/T² ablation (experiment E7
// plus the design ablations in DESIGN.md).
type AblationPoint struct {
	K            int
	Alpha        float64
	UseT2        bool
	Events       int
	TruthRecall  float64
	SPEAlarmBins int
	T2AlarmBins  int
}

// Ablation re-runs detection across parameter settings, reporting how many
// ground-truth anomalies each recovers. Setting useT2=false drops the T²
// statistic, quantifying the paper's claim that the Q-statistic alone
// misses anomalies absorbed into the normal subspace.
func (r *Run) Ablation(ks []int, alphas []float64) ([]AblationPoint, error) {
	var out []AblationPoint
	for _, k := range ks {
		for _, alpha := range alphas {
			for _, useT2 := range []bool{true, false} {
				pt, err := r.ablate(k, alpha, useT2)
				if err != nil {
					return nil, err
				}
				out = append(out, pt)
			}
		}
	}
	return out, nil
}

func (r *Run) ablate(k int, alpha float64, useT2 bool) (AblationPoint, error) {
	sub := &Run{ds: r.ds}
	if err := sub.Detect(DetectOptions{K: k, Alpha: alpha}); err != nil {
		return AblationPoint{}, err
	}
	pt := AblationPoint{K: k, Alpha: alpha, UseT2: useT2}
	for m := dataset.Measure(0); m < dataset.NumMeasures; m++ {
		for _, a := range sub.results[m].Alarms {
			switch a.Stat {
			case core.StatSPE:
				pt.SPEAlarmBins++
			case core.StatT2:
				pt.T2AlarmBins++
			}
		}
	}
	evs := sub.evs
	if !useT2 {
		// Rebuild events from SPE-only detections.
		var dets []events.Detection
		for m := dataset.Measure(0); m < dataset.NumMeasures; m++ {
			for _, att := range identify.Attribute(sub.results[m]) {
				if att.Alarm.Stat == core.StatSPE {
					dets = append(dets, events.Detection{Measure: m, Bin: att.Alarm.Bin, ODs: att.ODs, Residuals: att.Residuals})
				}
			}
		}
		evs = events.Aggregate(dets)
	}
	pt.Events = len(evs)
	specs := r.ds.Ledger.Specs()
	matched := map[int]bool{}
	for _, ev := range evs {
		if spec, ok := r.matchTruth(ev, specs); ok {
			matched[spec.ID] = true
		}
	}
	if len(specs) > 0 {
		pt.TruthRecall = float64(len(matched)) / float64(len(specs))
	}
	return pt, nil
}

// DataReduction quantifies experiment E8: raw collected flow records vs OD
// matrix cells (the paper's motivation for OD aggregation as data
// reduction).
type DataReduction struct {
	RawRecords     uint64
	Unresolved     uint64
	MatrixCells    int
	ReductionRatio float64
}

// Reduction reports the data-reduction achieved by OD aggregation.
func (r *Run) Reduction() DataReduction {
	cells := r.Bins() * r.ds.NumODPairs() * int(dataset.NumMeasures)
	red := DataReduction{
		RawRecords:  r.ds.RawRecords,
		Unresolved:  r.ds.UnresolvedRecords,
		MatrixCells: cells,
	}
	if cells > 0 {
		red.ReductionRatio = float64(red.RawRecords) / float64(cells)
	}
	return red
}

// BaselineScore compares the single-timeseries detectors against the
// subspace method on the same run (experiment E9).
type BaselineScore struct {
	Name        string
	AlarmBins   int
	TruthRecall float64
}

// Baselines runs the EWMA and wavelet detectors per link (after routing
// the OD byte matrix onto the backbone) and per OD flow, scoring
// ground-truth recall for each.
func (r *Run) Baselines() ([]BaselineScore, error) {
	spf, err := routing.ComputeSPF(r.ds.Top)
	if err != nil {
		return nil, err
	}
	x := r.ds.Matrix(dataset.Bytes)
	nLinks := spf.NumDirectedLinks()
	linkSeries := make([][]float64, nLinks)
	for l := range linkSeries {
		linkSeries[l] = make([]float64, r.Bins())
	}
	for bin := 0; bin < r.Bins(); bin++ {
		loads, err := spf.LinkLoads(x.RowView(bin))
		if err != nil {
			return nil, err
		}
		for l, v := range loads {
			linkSeries[l][bin] = v
		}
	}
	specs := r.ds.Ledger.Specs()

	scoreAlarms := func(name string, alarmBins map[int]bool) BaselineScore {
		matched := map[int]bool{}
		for _, s := range specs {
			for b := s.StartBin; b <= s.EndBin; b++ {
				if alarmBins[b] {
					matched[s.ID] = true
					break
				}
			}
		}
		recall := 0.0
		if len(specs) > 0 {
			recall = float64(len(matched)) / float64(len(specs))
		}
		return BaselineScore{Name: name, AlarmBins: len(alarmBins), TruthRecall: recall}
	}

	var out []BaselineScore
	// EWMA per link.
	ew := baseline.EWMADetector{Alpha: 0.3, Threshold: 6}
	bins := map[int]bool{}
	for _, s := range linkSeries {
		al, err := ew.Detect(s)
		if err != nil {
			return nil, err
		}
		for _, b := range al {
			bins[b] = true
		}
	}
	out = append(out, scoreAlarms("ewma-per-link(B)", bins))
	// Wavelet per link.
	wv := baseline.WaveletDetector{Levels: 3, Threshold: 25}
	bins = map[int]bool{}
	for _, s := range linkSeries {
		al, err := wv.Detect(s)
		if err != nil {
			return nil, err
		}
		for _, b := range al {
			bins[b] = true
		}
	}
	out = append(out, scoreAlarms("wavelet-per-link(B)", bins))
	// Subspace (all three measures), for reference on the same footing.
	bins = map[int]bool{}
	for m := dataset.Measure(0); m < dataset.NumMeasures; m++ {
		if r.results[m] == nil {
			continue
		}
		for _, b := range r.results[m].AlarmBins() {
			bins[b] = true
		}
	}
	out = append(out, scoreAlarms("subspace(B,P,F)", bins))
	return out, nil
}

// BinsPerDay re-exports the binning constant for presentation code.
const BinsPerDay = traffic.BinsPerDay
