package netwide_test

// Companion to TestDatasetFileRoundTrip: the same on-disk workflow under
// hostile conditions. A .nwds file handed to nwserve/subspacedetect may be
// truncated (interrupted copy), bit-rotted, or simply not a dataset at all;
// LoadRun must refuse all of them with an error, never panic or return a
// silently mis-read run.

import (
	"bytes"
	"strings"
	"testing"

	"netwide"
)

func savedRunBytes(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := quickRun(t).Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestLoadRunTruncated(t *testing.T) {
	raw := savedRunBytes(t)
	for _, n := range []int{0, 1, 15, 16, 1024, len(raw) / 2, len(raw) - 1} {
		if _, err := netwide.LoadRun(bytes.NewReader(raw[:n])); err == nil {
			t.Fatalf("run truncated to %d of %d bytes loaded silently", n, len(raw))
		}
	}
}

func TestLoadRunBitFlip(t *testing.T) {
	raw := savedRunBytes(t)
	for _, off := range []int{20, len(raw) / 4, len(raw) / 2, 3 * len(raw) / 4} {
		bad := append([]byte(nil), raw...)
		bad[off] ^= 0x08
		_, err := netwide.LoadRun(bytes.NewReader(bad))
		if err == nil {
			t.Fatalf("bit flip at %d loaded silently", off)
		}
		if !strings.Contains(err.Error(), "checksum") && !strings.Contains(err.Error(), "corrupt") {
			t.Fatalf("bit flip at %d: undiagnostic error %q", off, err)
		}
	}
}

func TestLoadRunGarbage(t *testing.T) {
	if _, err := netwide.LoadRun(strings.NewReader("this is not a dataset file")); err == nil {
		t.Fatal("garbage loaded silently")
	}
	if _, err := netwide.LoadRun(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty file loaded silently")
	}
}
