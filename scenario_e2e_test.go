package netwide_test

// Scenario round-trip acceptance: a JSON scenario file is loaded, driven
// through the full measurement pipeline, and the subspace method must
// recover every injected episode class as a ground-truth-matched detection
// (the true-positive check per anomaly class of the scenario engine).

import (
	"os"
	"path/filepath"
	"testing"

	"netwide"
	"netwide/internal/scenario"
)

const scenarioJSON = `{
  "name": "six-classes",
  "seed": 77,
  "episodes": [
    {"type": "ddos",   "start_bin": 300,  "duration_bins": 4,  "magnitude": 25, "dest": "LOSA", "origins": 3},
    {"type": "scan",   "start_bin": 700,  "duration_bins": 3,  "magnitude": 60, "origin": "CHIN"},
    {"type": "flash",  "start_bin": 1000, "duration_bins": 3,  "magnitude": 45, "dest": "NYCM"},
    {"type": "alpha",  "start_bin": 1300, "duration_bins": 2,  "magnitude": 30},
    {"type": "outage", "start_bin": 1500, "duration_bins": 48, "magnitude": 0.02, "origin": "NYCM"},
    {"type": "worm",   "start_bin": 1800, "duration_bins": 4,  "magnitude": 40, "origins": 3}
  ]
}`

func TestScenarioRoundTripDetectsEveryClass(t *testing.T) {
	path := filepath.Join(t.TempDir(), "six.json")
	if err := os.WriteFile(path, []byte(scenarioJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	scen, err := scenario.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cfg := netwide.QuickConfig()
	cfg.Scenario = scen
	run, err := netwide.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// The ledger must hold exactly the scenario's episodes, no random
	// schedule mixed in.
	truths := run.GroundTruth()
	if len(truths) != 6 {
		t.Fatalf("ground truth has %d entries, want the 6 scenario episodes", len(truths))
	}
	if truths[0].StartBin != 300 || truths[4].StartBin != 1500 {
		t.Fatalf("episode windows not honored: %+v", truths)
	}

	if err := run.Detect(netwide.DefaultDetectOptions()); err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, a := range run.Characterize() {
		if a.TruthType != "" {
			found[a.TruthType] = true
		}
	}
	for _, class := range []string{"DDOS", "SCAN", "FLASH", "ALPHA", "OUTAGE", "WORM"} {
		if !found[class] {
			t.Errorf("injected %s episode was not recovered by detection (matched classes: %v)", class, found)
		}
	}
}

// TestScenarioSurvivesSaveLoad checks that a scenario-driven dataset
// round-trips through Save/Load: the stored Config carries the scenario, so
// the rebuilt generator state (ledger included) matches.
func TestScenarioSurvivesSaveLoad(t *testing.T) {
	scen, err := scenario.FromJSON([]byte(scenarioJSON))
	if err != nil {
		t.Fatal(err)
	}
	cfg := netwide.QuickConfig()
	cfg.Scenario = scen
	run, err := netwide.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "scen.nwds")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	loaded, err := netwide.LoadRun(rf)
	if err != nil {
		t.Fatal(err)
	}
	a, b := run.GroundTruth(), loaded.GroundTruth()
	if len(a) != len(b) {
		t.Fatalf("ledger size changed across save/load: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Note != b[i].Note || a[i].StartBin != b[i].StartBin {
			t.Fatalf("ledger entry %d changed across save/load:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}
