package dataset

import (
	"encoding/gob"
	"fmt"
	"io"

	"netwide/internal/mat"
)

// fileFormat is the on-disk representation. Only the matrices and the
// generating Config are stored: the topology, background model and anomaly
// ledger are deterministic functions of the Config and are rebuilt on load,
// which keeps files small while preserving the ability to regenerate
// per-bin attribute detail.
type fileFormat struct {
	Version           int
	Cfg               Config
	Bins              int
	Rows              [NumMeasures][][]float64
	RawRecords        uint64
	UnresolvedRecords uint64
}

const fileVersion = 1

// Save writes the dataset to w (gob encoding).
func (d *Dataset) Save(w io.Writer) error {
	ff := fileFormat{
		Version:           fileVersion,
		Cfg:               d.Cfg,
		Bins:              d.Bins,
		RawRecords:        d.RawRecords,
		UnresolvedRecords: d.UnresolvedRecords,
	}
	for m := Measure(0); m < NumMeasures; m++ {
		rows := make([][]float64, d.Bins)
		for i := 0; i < d.Bins; i++ {
			rows[i] = d.X[m].Row(i)
		}
		ff.Rows[m] = rows
	}
	return gob.NewEncoder(w).Encode(&ff)
}

// Load reads a dataset written by Save, rebuilding the generator state from
// the stored Config.
func Load(r io.Reader) (*Dataset, error) {
	var ff fileFormat
	if err := gob.NewDecoder(r).Decode(&ff); err != nil {
		return nil, fmt.Errorf("dataset: decode: %w", err)
	}
	if ff.Version != fileVersion {
		return nil, fmt.Errorf("dataset: file version %d, want %d", ff.Version, fileVersion)
	}
	d, err := prepare(ff.Cfg)
	if err != nil {
		return nil, err
	}
	if ff.Bins != d.Bins {
		return nil, fmt.Errorf("dataset: stored bins %d inconsistent with config (%d)", ff.Bins, d.Bins)
	}
	for m := Measure(0); m < NumMeasures; m++ {
		if len(ff.Rows[m]) != d.Bins {
			return nil, fmt.Errorf("dataset: measure %v has %d rows, want %d", m, len(ff.Rows[m]), d.Bins)
		}
		x, err := mat.NewFromRows(ff.Rows[m])
		if err != nil {
			return nil, fmt.Errorf("dataset: measure %v: %w", m, err)
		}
		if x.Cols() != d.Top.NumODPairs() {
			return nil, fmt.Errorf("dataset: measure %v has %d cols, want %d", m, x.Cols(), d.Top.NumODPairs())
		}
		d.X[m] = x
	}
	d.RawRecords = ff.RawRecords
	d.UnresolvedRecords = ff.UnresolvedRecords
	return d, nil
}
