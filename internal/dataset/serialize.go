package dataset

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"io"
	"math"

	"netwide/internal/mat"
	"netwide/internal/traffic"
)

// fileFormat is the on-disk representation. Only the matrices and the
// generating Config are stored: the topology, background model and anomaly
// ledger are deterministic functions of the Config and are rebuilt on load,
// which keeps files small while preserving the ability to regenerate
// per-bin attribute detail.
type fileFormat struct {
	Version           int
	Cfg               Config
	Bins              int
	Rows              [NumMeasures][][]float64
	RawRecords        uint64
	UnresolvedRecords uint64
}

const fileVersion = 1

// fileMagic opens a checksummed dataset file: 8 magic bytes, then the
// 8-byte big-endian FNV-64a digest of the gob payload, then the payload.
// The envelope exists because gob alone cannot detect payload corruption —
// a flipped bit inside a float decodes "successfully" into a different
// float, silently poisoning every analysis downstream. Files written
// before the envelope (bare gob) still load via the legacy path.
const fileMagic = "NWDSv2\r\n"

// Save writes the dataset to w: the checksum envelope around the gob
// payload.
func (d *Dataset) Save(w io.Writer) error {
	ff := fileFormat{
		Version:           fileVersion,
		Cfg:               d.Cfg,
		Bins:              d.Bins,
		RawRecords:        d.RawRecords,
		UnresolvedRecords: d.UnresolvedRecords,
	}
	for m := Measure(0); m < NumMeasures; m++ {
		rows := make([][]float64, d.Bins)
		for i := 0; i < d.Bins; i++ {
			rows[i] = d.X[m].Row(i)
		}
		ff.Rows[m] = rows
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&ff); err != nil {
		return err
	}
	h := fnv.New64a()
	h.Write(payload.Bytes())
	var head [16]byte
	copy(head[:8], fileMagic)
	binary.BigEndian.PutUint64(head[8:], h.Sum64())
	if _, err := w.Write(head[:]); err != nil {
		return err
	}
	_, err := w.Write(payload.Bytes())
	return err
}

// Load reads a dataset written by Save, rebuilding the generator state from
// the stored Config.
//
// The file is untrusted input: a truncated or corrupt stream must fail with
// a descriptive error, never panic or silently mis-read. Every stored field
// is therefore cross-validated before it can drive an allocation or reach
// the detection pipeline — the Config's bounds (via prepare), the bin count
// against the Config, each matrix's shape against both the bin count and
// the rebuilt topology, and every cell for NaN/Inf poisoning (traffic
// counts are finite by construction, so a non-finite cell proves
// corruption that gob's type checking cannot see).
func Load(r io.Reader) (*Dataset, error) {
	br := bufio.NewReader(r)
	var payload io.Reader = br
	if head, err := br.Peek(len(fileMagic)); err == nil && string(head) == fileMagic {
		// Checksummed envelope: verify the payload digest before handing a
		// single byte to gob.
		var hdr [16]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return nil, fmt.Errorf("dataset: truncated file header: %w", err)
		}
		body, err := io.ReadAll(br)
		if err != nil {
			return nil, fmt.Errorf("dataset: truncated file: %w", err)
		}
		h := fnv.New64a()
		h.Write(body)
		if want := binary.BigEndian.Uint64(hdr[8:]); h.Sum64() != want {
			return nil, fmt.Errorf("dataset: checksum mismatch (stored %016x, computed %016x): corrupt or truncated file", want, h.Sum64())
		}
		payload = bytes.NewReader(body)
	}
	var ff fileFormat
	if err := gob.NewDecoder(payload).Decode(&ff); err != nil {
		return nil, fmt.Errorf("dataset: corrupt or truncated file: %w", err)
	}
	if ff.Version != fileVersion {
		return nil, fmt.Errorf("dataset: file version %d, want %d", ff.Version, fileVersion)
	}
	// Validate the claimed shape before prepare touches the Config: the bin
	// count is fully determined by Weeks, and every stored matrix must agree
	// with it, so a corrupt header is caught before any topology or ledger
	// rebuild work happens on its behalf.
	wantBins := ff.Cfg.Weeks * traffic.BinsPerWeek
	if ff.Cfg.Weeks <= 0 || ff.Bins != wantBins {
		return nil, fmt.Errorf("dataset: stored bins %d inconsistent with %d weeks (want %d)", ff.Bins, ff.Cfg.Weeks, wantBins)
	}
	for m := Measure(0); m < NumMeasures; m++ {
		if len(ff.Rows[m]) != ff.Bins {
			return nil, fmt.Errorf("dataset: measure %v has %d rows, want %d", m, len(ff.Rows[m]), ff.Bins)
		}
	}
	d, err := prepare(ff.Cfg)
	if err != nil {
		return nil, fmt.Errorf("dataset: stored config invalid: %w", err)
	}
	for m := Measure(0); m < NumMeasures; m++ {
		x, err := mat.NewFromRows(ff.Rows[m])
		if err != nil {
			return nil, fmt.Errorf("dataset: measure %v: %w", m, err)
		}
		if x.Cols() != d.Top.NumODPairs() {
			return nil, fmt.Errorf("dataset: measure %v has %d cols, want %d for topology %q", m, x.Cols(), d.Top.NumODPairs(), d.Top.Name)
		}
		for i := 0; i < x.Rows(); i++ {
			for j, v := range x.RowView(i) {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return nil, fmt.Errorf("dataset: measure %v cell (bin %d, od %d) is %v: corrupt file", m, i, j, v)
				}
			}
		}
		d.X[m] = x
	}
	d.RawRecords = ff.RawRecords
	d.UnresolvedRecords = ff.UnresolvedRecords
	return d, nil
}
