package dataset

import (
	"netwide/internal/heavyhitter"
	"netwide/internal/ipaddr"
	"netwide/internal/netflow"
	"netwide/internal/topology"
)

// Dim is an attribute dimension of a flow record.
type Dim int

// The four attribute dimensions the classifier inspects, per the paper:
// "whether any source address range, destination address range, source
// port, or destination port was dominant".
const (
	SrcAddr Dim = iota
	DstAddr
	SrcPort
	DstPort
	NumDims
)

var dimNames = [NumDims]string{"srcAddr", "dstAddr", "srcPort", "dstPort"}

// String names the dimension.
func (d Dim) String() string {
	if d < 0 || d >= NumDims {
		return "dim(?)"
	}
	return dimNames[d]
}

// sketchCapacity bounds per-item error to Total/32, far below the paper's
// dominance threshold of 0.2.
const sketchCapacity = 32

// AttributeSummary holds, for one (OD pair, bin) cell, the heavy-hitter
// sketches of every attribute dimension weighted by every measure, plus the
// cell totals. Address keys are /21 ranges (the granularity forced by the
// 11-bit destination anonymization, applied to sources as well for
// symmetry).
type AttributeSummary struct {
	OD  topology.ODPair
	Bin int
	// Sketch[measure][dim] approximates the weight distribution.
	Sketch [NumMeasures][NumDims]*heavyhitter.Sketch
	// Total[measure] is the cell's total sampled weight.
	Total [NumMeasures]float64
	// PktPerFlowNear1 reports whether sampled packets ~= sampled flows
	// (the scan signature: every probe flow is a single packet).
	PktPerFlowNear1 bool
}

// addrKey collapses an address to its /21 range key.
func addrKey(a ipaddr.Addr) uint64 { return uint64(a.Anonymize()) }

// BinAttributes regenerates the records of (od, bin) and summarizes their
// attribute distributions. Records that resolved to a different OD pair
// (spoofed or shifted destinations) still count toward the generating
// cell — the classifier inspects the traffic observed on the anomalous
// flow, which is what the generating cell carried.
func (d *Dataset) BinAttributes(od topology.ODPair, bin int) *AttributeSummary {
	s := &AttributeSummary{OD: od, Bin: bin}
	for m := Measure(0); m < NumMeasures; m++ {
		for dim := Dim(0); dim < NumDims; dim++ {
			s.Sketch[m][dim] = heavyhitter.New(sketchCapacity)
		}
	}
	d.ForEachResolvedRecord(od, bin, func(_ topology.ODPair, rec netflow.Record) {
		keys := [NumDims]uint64{
			SrcAddr: addrKey(rec.Key.Src),
			DstAddr: addrKey(rec.Key.Dst),
			SrcPort: uint64(rec.Key.SrcPort),
			DstPort: uint64(rec.Key.DstPort),
		}
		weights := [NumMeasures]float64{
			Bytes:   float64(rec.Bytes),
			Packets: float64(rec.Packets),
			Flows:   1,
		}
		for m := Measure(0); m < NumMeasures; m++ {
			s.Total[m] += weights[m]
			for dim := Dim(0); dim < NumDims; dim++ {
				s.Sketch[m][dim].Add(keys[dim], weights[m])
			}
		}
	})
	if s.Total[Flows] > 0 {
		ratio := s.Total[Packets] / s.Total[Flows]
		s.PktPerFlowNear1 = ratio < 1.3
	}
	return s
}

// Dominant applies the paper's threshold test: it returns the heaviest key
// of the dimension under the measure and whether it accounts for more than
// fraction p of the cell's total.
func (s *AttributeSummary) Dominant(m Measure, dim Dim, p float64) (uint64, bool) {
	sk := s.Sketch[m][dim]
	if sk == nil || s.Total[m] <= 0 {
		return 0, false
	}
	top := sk.Top(1)
	if len(top) == 0 {
		return 0, false
	}
	return top[0].Key, top[0].GuaranteedFraction(s.Total[m]) > p
}

// DominantAny reports dominance of the dimension under any of the three
// measures, returning the first dominant key found (B, then P, then F
// order). The paper's test is "defined over either of the three types".
func (s *AttributeSummary) DominantAny(dim Dim, p float64) (uint64, bool) {
	for m := Measure(0); m < NumMeasures; m++ {
		if k, ok := s.Dominant(m, dim, p); ok {
			return k, true
		}
	}
	return 0, false
}

// Merge folds another summary (e.g. an adjacent bin of the same anomaly)
// into s.
func (s *AttributeSummary) Merge(other *AttributeSummary) {
	for m := Measure(0); m < NumMeasures; m++ {
		s.Total[m] += other.Total[m]
		for dim := Dim(0); dim < NumDims; dim++ {
			s.Sketch[m][dim].Merge(other.Sketch[m][dim])
		}
	}
	if s.Total[Flows] > 0 {
		s.PktPerFlowNear1 = s.Total[Packets]/s.Total[Flows] < 1.3
	}
}
