package dataset

// Corrupt-file hardening: Load consumes untrusted bytes, so every failure
// mode — truncation, bit flips, hostile configs, poisoned cells — must
// come back as a descriptive error, never a panic, an absurd allocation,
// or a silently wrong dataset. The crafted-payload cases go through the
// legacy (bare gob) path on purpose: it has no checksum to recompute, so a
// test can hand Load arbitrary decoded content and exercise the semantic
// validation behind the envelope.

import (
	"bytes"
	"encoding/gob"
	"math"
	"strings"
	"testing"
)

// tinyDataset builds a structurally complete 1-week dataset without
// running the generator: the matrices stay zero except for a marker cell.
func tinyDataset(t *testing.T) *Dataset {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Weeks = 1
	d, err := prepare(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.allocMatrices()
	d.X[Bytes].RowView(7)[11] = 42.5
	d.RawRecords = 1234
	d.UnresolvedRecords = 56
	return d
}

// fileBytes serializes d with Save (checksummed envelope).
func fileBytes(t *testing.T, d *Dataset) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// legacyBytes encodes a fileFormat as a bare gob stream — the pre-envelope
// on-disk format, and the door for crafted-content tests.
func legacyBytes(t *testing.T, ff *fileFormat) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ff); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// tinyFileFormat is the fileFormat Save would write for tinyDataset,
// exposed for mutation.
func tinyFileFormat(t *testing.T, d *Dataset) *fileFormat {
	t.Helper()
	ff := &fileFormat{
		Version:           fileVersion,
		Cfg:               d.Cfg,
		Bins:              d.Bins,
		RawRecords:        d.RawRecords,
		UnresolvedRecords: d.UnresolvedRecords,
	}
	for m := Measure(0); m < NumMeasures; m++ {
		rows := make([][]float64, d.Bins)
		for i := 0; i < d.Bins; i++ {
			rows[i] = d.X[m].Row(i)
		}
		ff.Rows[m] = rows
	}
	return ff
}

func TestEnvelopeRoundTrip(t *testing.T) {
	d := tinyDataset(t)
	got, err := Load(bytes.NewReader(fileBytes(t, d)))
	if err != nil {
		t.Fatal(err)
	}
	if v := got.X[Bytes].RowView(7)[11]; v != 42.5 {
		t.Fatalf("marker cell %v after round trip", v)
	}
	if got.RawRecords != 1234 || got.UnresolvedRecords != 56 {
		t.Fatalf("counters %d/%d after round trip", got.RawRecords, got.UnresolvedRecords)
	}
}

func TestLoadLegacyFormat(t *testing.T) {
	d := tinyDataset(t)
	got, err := Load(bytes.NewReader(legacyBytes(t, tinyFileFormat(t, d))))
	if err != nil {
		t.Fatalf("legacy bare-gob file rejected: %v", err)
	}
	if v := got.X[Bytes].RowView(7)[11]; v != 42.5 {
		t.Fatalf("marker cell %v after legacy load", v)
	}
}

func TestLoadDetectsBitFlips(t *testing.T) {
	raw := fileBytes(t, tinyDataset(t))
	// Flip one bit at a spread of payload offsets: every flip must be
	// caught by the checksum — this is exactly the corruption gob decodes
	// "successfully" into wrong floats.
	for _, off := range []int{16, 64, len(raw) / 3, len(raw) / 2, len(raw) - 2} {
		bad := append([]byte(nil), raw...)
		bad[off] ^= 0x10
		_, err := Load(bytes.NewReader(bad))
		if err == nil {
			t.Fatalf("bit flip at offset %d loaded silently", off)
		}
		if !strings.Contains(err.Error(), "checksum") {
			t.Fatalf("bit flip at offset %d: error %q does not name the checksum", off, err)
		}
	}
	// Flipping the stored digest itself must also fail.
	bad := append([]byte(nil), raw...)
	bad[9] ^= 0xFF
	if _, err := Load(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupted digest accepted")
	}
}

func TestLoadTruncated(t *testing.T) {
	raw := fileBytes(t, tinyDataset(t))
	for _, n := range []int{0, 1, 7, 15, 16, 100, len(raw) / 2, len(raw) - 1} {
		if _, err := Load(bytes.NewReader(raw[:n])); err == nil {
			t.Fatalf("file truncated to %d bytes loaded silently", n)
		}
	}
}

func TestLoadGarbage(t *testing.T) {
	for _, junk := range [][]byte{
		[]byte("not a dataset"),
		bytes.Repeat([]byte{0xFF}, 4096),
		[]byte(fileMagic), // envelope magic with nothing behind it
	} {
		if _, err := Load(bytes.NewReader(junk)); err == nil {
			t.Fatalf("garbage %q loaded silently", junk[:min(len(junk), 16)])
		}
	}
}

func TestLoadRejectsHostileContent(t *testing.T) {
	d := tinyDataset(t)
	cases := []struct {
		name   string
		mutate func(ff *fileFormat)
		want   string
	}{
		{"wrong version", func(ff *fileFormat) { ff.Version = 99 }, "version"},
		{"absurd weeks", func(ff *fileFormat) { ff.Cfg.Weeks = 1 << 30; ff.Bins = 0 }, "bins"},
		{"bins inconsistent with weeks", func(ff *fileFormat) { ff.Bins = 7 }, "bins"},
		{"row count mismatch", func(ff *fileFormat) { ff.Rows[Packets] = ff.Rows[Packets][:9] }, "rows"},
		{"ragged row", func(ff *fileFormat) { ff.Rows[Flows][3] = ff.Rows[Flows][3][:5] }, "ragged"},
		{"nan cell", func(ff *fileFormat) {
			row := append([]float64(nil), ff.Rows[Bytes][5]...)
			row[2] = math.NaN()
			ff.Rows[Bytes][5] = row
		}, "NaN"},
		{"inf cell", func(ff *fileFormat) {
			row := append([]float64(nil), ff.Rows[Packets][5]...)
			row[2] = math.Inf(1)
			ff.Rows[Packets][5] = row
		}, "+Inf"},
		{"invalid sampling rate", func(ff *fileFormat) { ff.Cfg.SamplingRate = 1e-9 }, "sampling"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ff := tinyFileFormat(t, d)
			tc.mutate(ff)
			_, err := Load(bytes.NewReader(legacyBytes(t, ff)))
			if err == nil {
				t.Fatal("hostile content loaded silently")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
