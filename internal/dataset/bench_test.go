package dataset

// Perf-path benchmark for the measurement substrate's inner loop. The
// whole-pipeline serial-vs-parallel pair lives in the root package
// (BenchmarkSimulateWeekSerial / BenchmarkSimulateWeek); here
// BenchmarkCellReplay isolates the per-cell
// synthesize->sample->export->collect->resolve chain that dominates it,
// with allocs/op as the regression signal for the scratch-reuse diet.
//
// Run with: go test -bench=. -benchmem ./internal/dataset/

import (
	"testing"

	"netwide/internal/netflow"
	"netwide/internal/topology"
)

func benchConfig() Config {
	cfg := DefaultConfig()
	cfg.Weeks = 1
	cfg.MeanRateBps = 4e5
	return cfg
}

// BenchmarkCellReplay measures one (OD, bin) cell through the full
// measurement chain with a warm scratch — the steady-state inner loop of
// Generate. allocs/op here is the number to watch: scratch reuse holds it
// to single digits.
func BenchmarkCellReplay(b *testing.B) {
	d, err := Generate(benchConfig())
	if err != nil {
		b.Fatal(err)
	}
	sc := getScratch()
	defer putScratch(sc)
	od := topology.ODPair{Origin: topology.CHIN, Dest: topology.LOSA}
	nop := func(topology.ODPair, netflow.Record) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.forEachResolvedRecord(od, i%d.Bins, sc, nop)
	}
}
