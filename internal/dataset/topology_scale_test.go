package dataset

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"testing"

	"netwide/internal/core"
	"netwide/internal/topology"
)

// quickAbilene mirrors netwide.QuickConfig: the 1-week reference run whose
// bytes the golden test pins.
func quickAbilene() Config {
	cfg := DefaultConfig()
	cfg.Weeks = 1
	cfg.MeanRateBps = 8e5
	return cfg
}

// datasetFingerprint hashes every float of the three matrices in row order.
func datasetFingerprint(d *Dataset) string {
	h := sha256.New()
	var buf [8]byte
	for m := Measure(0); m < NumMeasures; m++ {
		x := d.Matrix(m)
		for i := 0; i < x.Rows(); i++ {
			for _, v := range x.RowView(i) {
				binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
				h.Write(buf[:])
			}
		}
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// ledgerFingerprint hashes the injected ground truth.
func ledgerFingerprint(d *Dataset) string {
	h := sha256.New()
	for _, s := range d.Ledger.Specs() {
		fmt.Fprintf(h, "%d %v %d-%d %v %s;", s.ID, s.Type, s.StartBin, s.EndBin, s.ODs, s.Note)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// TestAbileneGoldenDataset pins the entire measurement pipeline on the
// reference topology to the bytes it produced before the topology layer
// became Spec-driven: same matrices to the last float, same ground-truth
// ledger, same record counters. The golden hashes were captured from the
// pre-refactor implementation.
func TestAbileneGoldenDataset(t *testing.T) {
	const (
		goldenData       = "3f6c64917d92454aa9931bb48e65de7ac1623adf4adbef8e8b94ac91a44f51fa"
		goldenLedger     = "61172ba481a629051e400308e46711750cfec676416a4b12273d16be52ffd3fd"
		goldenRaw        = 5254296
		goldenUnresolved = 367172
	)
	d, err := Generate(quickAbilene())
	if err != nil {
		t.Fatal(err)
	}
	if got := datasetFingerprint(d); got != goldenData {
		t.Errorf("dataset bytes drifted from the pre-refactor pipeline:\n got  %s\n want %s", got, goldenData)
	}
	if got := ledgerFingerprint(d); got != goldenLedger {
		t.Errorf("ground-truth ledger drifted:\n got  %s\n want %s", got, goldenLedger)
	}
	if d.RawRecords != goldenRaw || d.UnresolvedRecords != goldenUnresolved {
		t.Errorf("record counters drifted: raw %d unresolved %d, want %d/%d",
			d.RawRecords, d.UnresolvedRecords, goldenRaw, goldenUnresolved)
	}
}

// TestSyntheticWorkerDeterminism extends the byte-identical-at-any-worker-
// count guarantee to non-reference topologies.
func TestSyntheticWorkerDeterminism(t *testing.T) {
	base := Config{
		Weeks: 1, Seed: 99, MeanRateBps: 6e5,
		SamplingRate: 0.01, UnresolvedFraction: 0.07,
		Topology: topology.Ref{Kind: "synthetic", N: 16, Seed: 5},
	}
	serial := base
	serial.Workers = 1
	d1, err := Generate(serial)
	if err != nil {
		t.Fatal(err)
	}
	parallel := base
	parallel.Workers = 4
	d2, err := Generate(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if datasetFingerprint(d1) != datasetFingerprint(d2) {
		t.Fatal("synthetic dataset differs across worker counts")
	}
	if d1.RawRecords != d2.RawRecords || d1.UnresolvedRecords != d2.UnresolvedRecords {
		t.Fatal("record counters differ across worker counts")
	}
	if ledgerFingerprint(d1) != ledgerFingerprint(d2) {
		t.Fatal("ledgers differ across worker counts")
	}
}

// TestTopologyRefSurvivesSaveLoad checks that a dataset generated on a
// non-default topology round-trips through Save/Load: the stored Ref is
// rebuilt into the same topology, so matrix widths and OD naming agree.
func TestTopologyRefSurvivesSaveLoad(t *testing.T) {
	cfg := Config{
		Weeks: 1, Seed: 3, MeanRateBps: 4e5,
		SamplingRate: 0.01, UnresolvedFraction: 0.07,
		Topology: topology.Ref{Kind: "synthetic", N: 8, Seed: 2},
	}
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Top.Name != d.Top.Name || loaded.Top.NumODPairs() != 64 {
		t.Fatalf("topology not rebuilt: %s / %d", loaded.Top.Name, loaded.Top.NumODPairs())
	}
	if datasetFingerprint(loaded) != datasetFingerprint(d) {
		t.Fatal("matrices changed across save/load")
	}
	if ledgerFingerprint(loaded) != ledgerFingerprint(d) {
		t.Fatal("ledger changed across save/load")
	}
}

// TestSyntheticEndToEnd100 is the scale acceptance test: a 100-PoP
// synthetic backbone (10 000 OD pairs) simulates a full week through the
// parallel measurement pipeline and the byte matrix runs through subspace
// detection on the partial-PCA path. On one core this takes on the order of
// a minute; -short skips it.
func TestSyntheticEndToEnd100(t *testing.T) {
	if testing.Short() {
		t.Skip("full-week 100-PoP end-to-end run skipped in -short mode")
	}
	cfg := Config{
		Weeks: 1, Seed: 2004, MeanRateBps: 8e5,
		SamplingRate: 0.01, UnresolvedFraction: 0.07,
		Topology: topology.Ref{Kind: "synthetic", N: 100, Seed: 7},
	}
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.Top.NumPoPs() != 100 || d.Matrix(Bytes).Cols() != 10000 {
		t.Fatalf("unexpected shape: %d PoPs, %d cols", d.Top.NumPoPs(), d.Matrix(Bytes).Cols())
	}
	if d.RawRecords == 0 {
		t.Fatal("pipeline produced no flow records")
	}
	res, err := core.Analyze(d.Matrix(Bytes), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	alarmBins := res.AlarmBins()
	if len(alarmBins) == 0 {
		t.Fatal("no alarms over a week with the default anomaly schedule")
	}
	// The injected byte-heavy anomalies must be visible: for most alpha
	// flows (the strongest byte signal), the SPE inside the injected window
	// has to beat the run's median SPE.
	spes := append([]float64(nil), res.SPE...)
	median := quickMedian(spes)
	hits, total := 0, 0
	for _, inj := range d.Ledger.Injectors {
		s := inj.Spec()
		if s.Type.String() != "ALPHA" {
			continue
		}
		total++
		for b := s.StartBin; b <= s.EndBin && b < len(res.SPE); b++ {
			if res.SPE[b] > median {
				hits++
				break
			}
		}
	}
	if total == 0 {
		t.Fatal("schedule injected no alpha flows")
	}
	if hits*2 < total {
		t.Fatalf("only %d/%d injected alpha windows rise above the median SPE", hits, total)
	}
}

func quickMedian(xs []float64) float64 {
	// Insertion-free selection is overkill here; copy and sort via the
	// stdlib would drag in another import, so use a simple nth-element scan.
	lo, hi := 0, len(xs)-1
	k := len(xs) / 2
	for lo < hi {
		pivot := xs[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for xs[i] < pivot {
				i++
			}
			for xs[j] > pivot {
				j--
			}
			if i <= j {
				xs[i], xs[j] = xs[j], xs[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			break
		}
	}
	return xs[k]
}
