// Package dataset assembles the full measurement pipeline into the three
// multivariate OD-flow timeseries the subspace method consumes: per 5-minute
// bin and per OD pair, the sampled byte count (B), packet count (P) and
// IP-flow count (F), exactly as in Section 2.1 of the paper.
//
// The pipeline per (OD pair, bin) is:
//
//	background flow classes (gravity x diurnal x noise, application mix)
//	+ anomaly injector classes and volume scaling     (ground truth ledger)
//	-> 1% packet sampling -> visible flow records     (traffic.Measure)
//	-> NetFlow v5 export/collect                      (netflow)
//	-> egress resolution by longest-prefix match on the anonymized
//	   destination + simulated resolution failures    (routing)
//	-> accumulation into the B/P/F matrices.
//
// Everything is keyed by (seed, OD, bin), so any single bin can be
// regenerated in isolation; the classifier uses this to compute attribute
// detail (dominant addresses/ports) only at bins where detection fired,
// instead of retaining per-bin attribute state for the whole run.
package dataset

import (
	"fmt"
	"math/rand/v2"

	"netwide/internal/anomaly"
	"netwide/internal/flow"
	"netwide/internal/mat"
	"netwide/internal/netflow"
	"netwide/internal/routing"
	"netwide/internal/sampling"
	"netwide/internal/topology"
	"netwide/internal/traffic"
)

// Measure identifies one of the three traffic types.
type Measure int

// The three traffic types of the paper.
const (
	Bytes Measure = iota
	Packets
	Flows
	NumMeasures
)

var measureNames = [NumMeasures]string{"B", "P", "F"}

// String returns the paper's single-letter code (B, P or F).
func (m Measure) String() string {
	if m < 0 || m >= NumMeasures {
		return fmt.Sprintf("Measure(%d)", int(m))
	}
	return measureNames[m]
}

// Config fully determines a synthetic dataset (same Config, same bytes).
type Config struct {
	// Weeks of 5-minute bins to generate.
	Weeks int
	// Seed drives all randomness.
	Seed uint64
	// MeanRateBps is the network-wide mean offered load, bytes/second.
	MeanRateBps float64
	// SamplingRate is the per-packet sampling probability (paper: 0.01).
	SamplingRate float64
	// UnresolvedFraction of flow records cannot be mapped to an OD pair
	// (paper: ~7% unresolved).
	UnresolvedFraction float64
	// Schedule configures the injected anomaly population. A zero value
	// (Weeks == 0) is replaced by anomaly.DefaultSchedule.
	Schedule anomaly.ScheduleConfig
}

// DefaultConfig returns the configuration used throughout the experiments:
// 1%-sampled 4-week run with the paper's anomaly prevalence.
func DefaultConfig() Config {
	return Config{
		Weeks:              4,
		Seed:               2004,
		MeanRateBps:        2e6,
		SamplingRate:       sampling.AbileneRate,
		UnresolvedFraction: 0.07,
	}
}

// Dataset is a generated run: the three matrices plus everything needed to
// regenerate per-bin detail.
type Dataset struct {
	Cfg    Config
	Top    *topology.Topology
	BG     *traffic.Background
	Ledger *anomaly.Ledger

	// Bins is the number of timebins (rows of the matrices).
	Bins int
	// X holds the three n x 121 matrices indexed by Measure.
	X [NumMeasures]*mat.Matrix

	sampler  sampling.Sampler
	resolver *routing.Resolver
	// binIndex[bin] lists injectors whose window covers the bin.
	binIndex [][]anomaly.Injector
	// RawRecords counts every flow record that reached the collector
	// (resolved or not); used by the data-reduction experiment.
	RawRecords uint64
	// UnresolvedRecords counts records dropped by failed OD resolution.
	UnresolvedRecords uint64
}

// Generate runs the full pipeline.
func Generate(cfg Config) (*Dataset, error) {
	d, err := prepare(cfg)
	if err != nil {
		return nil, err
	}
	for bin := 0; bin < d.Bins; bin++ {
		for i := 0; i < topology.NumODPairs; i++ {
			od := topology.ODPairFromIndex(i)
			d.accumulateBin(od, bin)
		}
	}
	return d, nil
}

// prepare builds the pipeline objects without generating any bins.
func prepare(cfg Config) (*Dataset, error) {
	if cfg.Weeks <= 0 {
		return nil, fmt.Errorf("dataset: weeks %d must be positive", cfg.Weeks)
	}
	top := topology.Abilene()
	bg, err := traffic.NewBackground(top, cfg.MeanRateBps, cfg.Seed)
	if err != nil {
		return nil, err
	}
	sched := cfg.Schedule
	if sched.Weeks == 0 {
		sched = anomaly.DefaultSchedule(bg, cfg.Weeks, cfg.Seed)
	}
	led, err := anomaly.Build(sched, top)
	if err != nil {
		return nil, err
	}
	smp, err := sampling.NewSampler(cfg.SamplingRate)
	if err != nil {
		return nil, err
	}
	res, err := routing.BuildResolver(top, nil, cfg.UnresolvedFraction)
	if err != nil {
		return nil, err
	}
	bins := cfg.Weeks * traffic.BinsPerWeek
	d := &Dataset{
		Cfg: cfg, Top: top, BG: bg, Ledger: led,
		Bins: bins, sampler: smp, resolver: res,
	}
	for m := Measure(0); m < NumMeasures; m++ {
		d.X[m] = mat.New(bins, topology.NumODPairs)
	}
	d.binIndex = make([][]anomaly.Injector, bins)
	for _, inj := range led.Injectors {
		s := inj.Spec()
		for b := s.StartBin; b <= s.EndBin && b < bins; b++ {
			if b >= 0 {
				d.binIndex[b] = append(d.binIndex[b], inj)
			}
		}
	}
	return d, nil
}

// classesFor returns all true-traffic flow classes of (od, bin): the
// injector-scaled background plus injected classes. It must consume the rng
// stream identically on every call with the same arguments.
func (d *Dataset) classesFor(od topology.ODPair, bin int, rng *rand.Rand) []traffic.FlowClass {
	scale := 1.0
	var active []anomaly.Injector
	for _, inj := range d.binIndex[bin] {
		if inj.Spec().ActiveAt(od, bin) {
			active = append(active, inj)
			scale *= inj.VolumeScale(od, bin, d.BG)
		}
	}
	vol := d.BG.TrueVolume(od, bin) * scale
	classes := d.BG.ClassesForVolume(od, vol, rng)
	for _, inj := range active {
		classes = append(classes, inj.Classes(od, bin, rng)...)
	}
	return classes
}

// ForEachResolvedRecord regenerates the sampled, exported, collected and
// resolved flow records of one (od, bin) cell, invoking fn with each record
// and the OD pair it resolved to. It consumes the bin's deterministic RNG
// stream identically on every invocation, so the records are exactly those
// that were (or will be) accumulated into the matrices for that cell.
//
// The ingress PoP comes from the export engine (interface-based config
// resolution); the egress PoP from a longest-prefix match on the anonymized
// destination address.
func (d *Dataset) ForEachResolvedRecord(od topology.ODPair, bin int, fn func(topology.ODPair, netflow.Record)) {
	rng := d.BG.BinRNG(od, bin)
	classes := d.classesFor(od, bin, rng)
	exp := netflow.NewExporter(uint8(od.Origin), uint16(1/d.Cfg.SamplingRate), nil)
	for _, c := range classes {
		traffic.Measure(c, d.sampler, d.BG.Realm, rng, func(r flow.Record) {
			if err := exp.Add(netflow.Record{Key: r.Key, Packets: r.Packets, Bytes: r.Bytes}); err != nil {
				panic(fmt.Sprintf("dataset: export failed: %v", err))
			}
		})
	}
	if err := exp.Flush(); err != nil {
		panic(fmt.Sprintf("dataset: flush failed: %v", err))
	}
	coll := netflow.NewCollector()
	for _, pkt := range exp.Drain() {
		if err := coll.Ingest(pkt); err != nil {
			panic(fmt.Sprintf("dataset: collect failed: %v", err))
		}
	}
	for _, rec := range coll.Records {
		d.RawRecords++
		if d.Cfg.UnresolvedFraction > 0 && rng.Float64() < d.Cfg.UnresolvedFraction {
			d.UnresolvedRecords++
			continue
		}
		egress, ok := d.resolver.ResolveDst(rec.Key.Dst)
		if !ok {
			d.UnresolvedRecords++
			continue
		}
		fn(topology.ODPair{Origin: od.Origin, Dest: egress}, rec)
	}
}

// accumulateBin folds one (od, bin) cell into the matrices.
func (d *Dataset) accumulateBin(od topology.ODPair, bin int) {
	d.ForEachResolvedRecord(od, bin, func(resolved topology.ODPair, rec netflow.Record) {
		col := resolved.Index()
		d.X[Bytes].Set(bin, col, d.X[Bytes].At(bin, col)+float64(rec.Bytes))
		d.X[Packets].Set(bin, col, d.X[Packets].At(bin, col)+float64(rec.Packets))
		d.X[Flows].Set(bin, col, d.X[Flows].At(bin, col)+1)
	})
}

// Matrix returns the n x 121 sampled-traffic matrix for the measure.
func (d *Dataset) Matrix(m Measure) *mat.Matrix { return d.X[m] }
