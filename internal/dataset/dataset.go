// Package dataset assembles the full measurement pipeline into the three
// multivariate OD-flow timeseries the subspace method consumes: per 5-minute
// bin and per OD pair, the sampled byte count (B), packet count (P) and
// IP-flow count (F), exactly as in Section 2.1 of the paper.
//
// The pipeline per (OD pair, bin) is:
//
//	background flow classes (gravity x diurnal x noise, application mix)
//	+ anomaly injector classes and volume scaling     (ground truth ledger)
//	-> 1% packet sampling -> visible flow records     (traffic.Measure)
//	-> NetFlow v5 export/collect                      (netflow)
//	-> egress resolution by longest-prefix match on the anonymized
//	   destination + simulated resolution failures    (routing)
//	-> accumulation into the B/P/F matrices.
//
// Everything is keyed by (seed, OD, bin), so any single bin can be
// regenerated in isolation; the classifier uses this to compute attribute
// detail (dominant addresses/ports) only at bins where detection fired,
// instead of retaining per-bin attribute state for the whole run.
package dataset

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"

	"netwide/internal/anomaly"
	"netwide/internal/flow"
	"netwide/internal/mat"
	"netwide/internal/netflow"
	"netwide/internal/routing"
	"netwide/internal/sampling"
	"netwide/internal/scenario"
	"netwide/internal/topology"
	"netwide/internal/traffic"
)

// Measure identifies one of the three traffic types.
type Measure int

// The three traffic types of the paper.
const (
	Bytes Measure = iota
	Packets
	Flows
	NumMeasures
)

var measureNames = [NumMeasures]string{"B", "P", "F"}

// String returns the paper's single-letter code (B, P or F).
func (m Measure) String() string {
	if m < 0 || m >= NumMeasures {
		return fmt.Sprintf("Measure(%d)", int(m))
	}
	return measureNames[m]
}

// ParseMeasure maps the paper's single-letter traffic-type codes back to
// measure indices — the inverse of String, shared by every surface that
// accepts a measure name.
func ParseMeasure(s string) (Measure, error) {
	for m := Measure(0); m < NumMeasures; m++ {
		if s == measureNames[m] {
			return m, nil
		}
	}
	return 0, fmt.Errorf("dataset: unknown measure %q (want B, P or F)", s)
}

// Config fully determines a synthetic dataset (same Config, same bytes).
type Config struct {
	// Weeks of 5-minute bins to generate.
	Weeks int
	// Seed drives all randomness.
	Seed uint64
	// MeanRateBps is the network-wide mean offered load, bytes/second.
	MeanRateBps float64
	// SamplingRate is the per-packet sampling probability (paper: 0.01).
	SamplingRate float64
	// UnresolvedFraction of flow records cannot be mapped to an OD pair
	// (paper: ~7% unresolved).
	UnresolvedFraction float64
	// Topology selects the simulated backbone; the zero Ref means the
	// reference Abilene network. The Ref (not the built topology) is what
	// dataset files persist, so loads rebuild the topology
	// deterministically.
	Topology topology.Ref
	// Scenario, when non-nil, replaces the random anomaly schedule with a
	// declarative episode plan (see internal/scenario).
	Scenario *scenario.Scenario
	// Schedule configures the injected anomaly population when Scenario is
	// nil. A zero value (Weeks == 0) is replaced by anomaly.DefaultSchedule.
	Schedule anomaly.ScheduleConfig
	// Workers is the number of goroutines generating timebins; <= 0 means
	// GOMAXPROCS. Every (OD, bin) cell draws from its own deterministic RNG
	// stream and every bin owns its matrix rows, so the generated dataset is
	// byte-identical for every worker count — Workers trades only wall-clock
	// time, never output.
	Workers int
}

// DefaultConfig returns the configuration used throughout the experiments:
// 1%-sampled 4-week run with the paper's anomaly prevalence.
func DefaultConfig() Config {
	return Config{
		Weeks:              4,
		Seed:               2004,
		MeanRateBps:        2e6,
		SamplingRate:       sampling.AbileneRate,
		UnresolvedFraction: 0.07,
	}
}

// Dataset is a generated run: the three matrices plus everything needed to
// regenerate per-bin detail.
type Dataset struct {
	Cfg    Config
	Top    *topology.Topology
	BG     *traffic.Background
	Ledger *anomaly.Ledger

	// Bins is the number of timebins (rows of the matrices).
	Bins int
	// X holds the three bins x NumODPairs matrices indexed by Measure.
	X [NumMeasures]*mat.Matrix

	sampler  sampling.Sampler
	resolver *routing.Resolver
	// sampInterval is the NetFlow header's 1-in-N sampling interval,
	// precomputed from Cfg.SamplingRate.
	sampInterval uint16
	// binIndex[bin] lists injectors whose window covers the bin.
	binIndex [][]anomaly.Injector
	// RawRecords counts every flow record that reached the collector
	// (resolved or not) during Generate; used by the data-reduction
	// experiment. Frozen after Generate: per-bin regeneration (attribute
	// detail, record replay) never changes it.
	RawRecords uint64
	// UnresolvedRecords counts records dropped by failed OD resolution
	// during Generate. Frozen after Generate, like RawRecords.
	UnresolvedRecords uint64
}

// Generate runs the full pipeline, fanning the timebins out across
// min(cfg.Workers, number of bins) goroutines (GOMAXPROCS when Workers <= 0).
//
// Parallelism cannot change the output: each (OD, bin) cell consumes only
// its own deterministic RNG stream, a bin is always processed whole by one
// worker, and each bin owns its rows of the three matrices, so the per-row
// accumulation order — and therefore every float — is identical for every
// worker count.
func Generate(cfg Config) (*Dataset, error) {
	d, err := prepare(cfg)
	if err != nil {
		return nil, err
	}
	d.allocMatrices()
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > d.Bins {
		workers = d.Bins
	}
	if workers == 1 {
		sc := getScratch()
		defer putScratch(sc)
		for bin := 0; bin < d.Bins; bin++ {
			raw, unres := d.generateBin(bin, sc)
			d.RawRecords += raw
			d.UnresolvedRecords += unres
		}
		return d, nil
	}
	var (
		wg      sync.WaitGroup
		nextBin atomic.Int64
		raws    = make([]uint64, workers)
		unress  = make([]uint64, workers)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc := getScratch()
			defer putScratch(sc)
			var raw, unres uint64
			// Bins are claimed dynamically: anomalous bins can be far more
			// expensive than quiet ones, so static striping would leave
			// workers idle at the tail.
			for {
				bin := int(nextBin.Add(1)) - 1
				if bin >= d.Bins {
					break
				}
				r, u := d.generateBin(bin, sc)
				raw += r
				unres += u
			}
			raws[w], unress[w] = raw, unres
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		d.RawRecords += raws[w]
		d.UnresolvedRecords += unress[w]
	}
	return d, nil
}

// MaxWeeks bounds the length of a run. It exists to keep the measurement
// matrices addressable and — more importantly — so that a corrupt or
// hostile dataset file cannot drive an absurd allocation through Load: the
// stored Config is untrusted input and Weeks is its allocation lever.
const MaxWeeks = 1024

// prepare builds the pipeline objects without generating any bins and
// without allocating the measurement matrices — Generate allocates them
// (allocMatrices), Load adopts the deserialized ones instead.
func prepare(cfg Config) (*Dataset, error) {
	if cfg.Weeks <= 0 {
		return nil, fmt.Errorf("dataset: weeks %d must be positive", cfg.Weeks)
	}
	if cfg.Weeks > MaxWeeks {
		return nil, fmt.Errorf("dataset: weeks %d exceeds limit %d", cfg.Weeks, MaxWeeks)
	}
	if cfg.SamplingRate > 0 && 1/cfg.SamplingRate > 0xFFFF {
		// The NetFlow v5 header carries the sampling interval in 16 bits;
		// converting a wider interval would silently truncate (and for a
		// denormal rate the float-to-uint16 conversion is undefined).
		return nil, fmt.Errorf("dataset: sampling rate %v below the NetFlow limit 1/%d", cfg.SamplingRate, 0xFFFF)
	}
	top, err := cfg.Topology.Build()
	if err != nil {
		return nil, err
	}
	bg, err := traffic.NewBackground(top, cfg.MeanRateBps, cfg.Seed)
	if err != nil {
		return nil, err
	}
	var led *anomaly.Ledger
	if cfg.Scenario != nil {
		led, err = cfg.Scenario.Build(top, bg, cfg.Weeks)
	} else {
		sched := cfg.Schedule
		if sched.Weeks == 0 {
			sched = anomaly.DefaultSchedule(bg, cfg.Weeks, cfg.Seed)
		}
		led, err = anomaly.Build(sched, top)
	}
	if err != nil {
		return nil, err
	}
	smp, err := sampling.NewSampler(cfg.SamplingRate)
	if err != nil {
		return nil, err
	}
	res, err := routing.BuildResolver(top, nil, cfg.UnresolvedFraction)
	if err != nil {
		return nil, err
	}
	bins := cfg.Weeks * traffic.BinsPerWeek
	d := &Dataset{
		Cfg: cfg, Top: top, BG: bg, Ledger: led,
		Bins: bins, sampler: smp, resolver: res,
		sampInterval: uint16(1 / cfg.SamplingRate),
	}
	d.binIndex = make([][]anomaly.Injector, bins)
	for _, inj := range led.Injectors {
		s := inj.Spec()
		for b := s.StartBin; b <= s.EndBin && b < bins; b++ {
			if b >= 0 {
				d.binIndex[b] = append(d.binIndex[b], inj)
			}
		}
	}
	return d, nil
}

// allocMatrices creates the three zeroed measurement matrices. Only the
// generation path needs them pre-allocated; Load adopts deserialized
// matrices instead, after validating them against the rebuilt topology.
func (d *Dataset) allocMatrices() {
	for m := Measure(0); m < NumMeasures; m++ {
		d.X[m] = mat.New(d.Bins, d.Top.NumODPairs())
	}
}

// scratch carries the reusable buffers of one generation worker: the flow
// class and active-injector slices of classesFor plus an exporter/collector
// pair whose internal arenas survive Reset. One scratch serves one (OD, bin)
// cell at a time; pooling it takes the per-cell path from hundreds of
// allocations down to a handful.
type scratch struct {
	classes []traffic.FlowClass
	active  []anomaly.Injector
	exp     *netflow.Exporter
	coll    *netflow.Collector
}

var scratchPool = sync.Pool{New: func() any {
	return &scratch{
		exp:  netflow.NewExporter(0, 0, nil),
		coll: netflow.NewCollector(),
	}
}}

func getScratch() *scratch   { return scratchPool.Get().(*scratch) }
func putScratch(sc *scratch) { scratchPool.Put(sc) }

// classesFor appends all true-traffic flow classes of (od, bin) — the
// injector-scaled background plus injected classes — into sc.classes and
// returns it. It must consume the rng stream identically on every call with
// the same arguments.
func (d *Dataset) classesFor(od topology.ODPair, bin int, rng *rand.Rand, sc *scratch) []traffic.FlowClass {
	scale := 1.0
	sc.active = sc.active[:0]
	for _, inj := range d.binIndex[bin] {
		if inj.Spec().ActiveAt(od, bin) {
			sc.active = append(sc.active, inj)
			scale *= inj.VolumeScale(od, bin, d.BG)
		}
	}
	vol := d.BG.TrueVolume(od, bin) * scale
	sc.classes = d.BG.AppendClassesForVolume(sc.classes[:0], od, vol, rng)
	for _, inj := range sc.active {
		sc.classes = append(sc.classes, inj.Classes(od, bin, rng)...)
	}
	return sc.classes
}

// ForEachResolvedRecord regenerates the sampled, exported, collected and
// resolved flow records of one (od, bin) cell, invoking fn with each record
// and the OD pair it resolved to. It consumes the bin's deterministic RNG
// stream identically on every invocation, so the records are exactly those
// that were (or will be) accumulated into the matrices for that cell.
// Replaying a cell never alters the dataset — in particular the Generate-time
// RawRecords/UnresolvedRecords counters stay frozen.
//
// The ingress PoP comes from the export engine (interface-based config
// resolution); the egress PoP from a longest-prefix match on the anonymized
// destination address.
func (d *Dataset) ForEachResolvedRecord(od topology.ODPair, bin int, fn func(topology.ODPair, netflow.Record)) {
	sc := getScratch()
	defer putScratch(sc)
	d.forEachResolvedRecord(od, bin, sc, fn)
}

// forEachResolvedRecord is ForEachResolvedRecord on an explicit scratch,
// returning the cell's raw and unresolved record counts instead of touching
// shared state — the generation workers accumulate the returns per worker,
// which keeps the counters race-free and replay-invariant.
func (d *Dataset) forEachResolvedRecord(od topology.ODPair, bin int, sc *scratch, fn func(topology.ODPair, netflow.Record)) (raw, unresolved uint64) {
	rng := d.BG.BinRNG(od, bin)
	classes := d.classesFor(od, bin, rng, sc)
	exp := sc.exp
	exp.Reset(uint8(od.Origin), d.sampInterval)
	emit := func(r flow.Record) {
		if err := exp.Add(netflow.Record{Key: r.Key, Packets: r.Packets, Bytes: r.Bytes}); err != nil {
			panic(fmt.Sprintf("dataset: export failed: %v", err))
		}
	}
	for _, c := range classes {
		traffic.Measure(c, d.sampler, d.BG.Realm, rng, emit)
	}
	if err := exp.Flush(); err != nil {
		panic(fmt.Sprintf("dataset: flush failed: %v", err))
	}
	sc.coll.Reset()
	if err := exp.ForEachPacket(sc.coll.Ingest); err != nil {
		panic(fmt.Sprintf("dataset: collect failed: %v", err))
	}
	for _, rec := range sc.coll.Records {
		raw++
		if d.Cfg.UnresolvedFraction > 0 && rng.Float64() < d.Cfg.UnresolvedFraction {
			unresolved++
			continue
		}
		egress, ok := d.resolver.ResolveDst(rec.Key.Dst)
		if !ok {
			unresolved++
			continue
		}
		fn(topology.ODPair{Origin: od.Origin, Dest: egress}, rec)
	}
	return raw, unresolved
}

// generateBin folds every (od, bin) cell of one timebin into the matrices.
// The bin owns its matrix rows, so concurrent calls for distinct bins never
// share a write target.
func (d *Dataset) generateBin(bin int, sc *scratch) (raw, unresolved uint64) {
	xb := d.X[Bytes].RowView(bin)
	xp := d.X[Packets].RowView(bin)
	xf := d.X[Flows].RowView(bin)
	accum := func(resolved topology.ODPair, rec netflow.Record) {
		col := d.Top.Index(resolved)
		xb[col] += float64(rec.Bytes)
		xp[col] += float64(rec.Packets)
		xf[col]++
	}
	for i := 0; i < d.Top.NumODPairs(); i++ {
		r, u := d.forEachResolvedRecord(d.Top.ODAt(i), bin, sc, accum)
		raw += r
		unresolved += u
	}
	return raw, unresolved
}

// Matrix returns the bins x NumODPairs sampled-traffic matrix for the
// measure.
func (d *Dataset) Matrix(m Measure) *mat.Matrix { return d.X[m] }

// NumODPairs returns the OD-matrix width of the dataset's topology.
func (d *Dataset) NumODPairs() int { return d.Top.NumODPairs() }

// ODAt maps a matrix column index back to its OD pair.
func (d *Dataset) ODAt(i int) topology.ODPair { return d.Top.ODAt(i) }

// ODName renders a matrix column index as "ORIG->DEST".
func (d *Dataset) ODName(i int) string { return d.Top.ODName(d.Top.ODAt(i)) }
