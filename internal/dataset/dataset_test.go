package dataset

import (
	"bytes"
	"math"
	"testing"

	"netwide/internal/anomaly"
	"netwide/internal/netflow"
	"netwide/internal/topology"
	"netwide/internal/traffic"
)

// quickConfig is a small-but-real configuration used across tests: 1 week,
// modest volume so generation stays fast.
func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.Weeks = 1
	cfg.MeanRateBps = 8e5
	cfg.Seed = 7
	return cfg
}

// tinyConfig shrinks the run to two days' worth of bins by lowering volume;
// used where only structure matters. (Weeks stay 1: the bin count is fixed
// by week granularity, so "tiny" here means low record volume.)
func tinyConfig() Config {
	cfg := quickConfig()
	cfg.MeanRateBps = 2e5
	return cfg
}

var cachedQuick *Dataset

func quickDataset(t testing.TB) *Dataset {
	t.Helper()
	if cachedQuick != nil {
		return cachedQuick
	}
	d, err := Generate(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	cachedQuick = d
	return d
}

func TestMeasureString(t *testing.T) {
	if Bytes.String() != "B" || Packets.String() != "P" || Flows.String() != "F" {
		t.Fatal("measure names wrong")
	}
	if Measure(9).String() != "Measure(9)" {
		t.Fatal("out-of-range measure name")
	}
	if SrcAddr.String() != "srcAddr" || DstPort.String() != "dstPort" {
		t.Fatal("dim names wrong")
	}
}

func TestGenerateShapes(t *testing.T) {
	d := quickDataset(t)
	if d.Bins != traffic.BinsPerWeek {
		t.Fatalf("bins=%d", d.Bins)
	}
	for m := Measure(0); m < NumMeasures; m++ {
		x := d.Matrix(m)
		if x.Rows() != d.Bins || x.Cols() != topology.NumODPairs {
			t.Fatalf("measure %v shape %dx%d", m, x.Rows(), x.Cols())
		}
	}
	if d.RawRecords == 0 {
		t.Fatal("no records generated")
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	cfg := quickConfig()
	cfg.Weeks = 0
	if _, err := Generate(cfg); err == nil {
		t.Fatal("weeks=0 accepted")
	}
	cfg = quickConfig()
	cfg.SamplingRate = 0
	if _, err := Generate(cfg); err == nil {
		t.Fatal("rate=0 accepted")
	}
	cfg = quickConfig()
	cfg.MeanRateBps = -1
	if _, err := Generate(cfg); err == nil {
		t.Fatal("negative volume accepted")
	}
}

func TestMatricesInternallyConsistent(t *testing.T) {
	d := quickDataset(t)
	b, p, f := d.Matrix(Bytes), d.Matrix(Packets), d.Matrix(Flows)
	for bin := 0; bin < d.Bins; bin += 97 {
		for od := 0; od < topology.NumODPairs; od++ {
			bb, pp, ff := b.At(bin, od), p.At(bin, od), f.At(bin, od)
			if (ff == 0) != (pp == 0) {
				t.Fatalf("flows/packets inconsistent at (%d,%d): %v/%v", bin, od, ff, pp)
			}
			if pp < ff {
				t.Fatalf("packets %v < flows %v at (%d,%d)", pp, ff, bin, od)
			}
			if bb < pp*20 && pp > 0 {
				t.Fatalf("bytes %v below 20/pkt floor (pkts %v) at (%d,%d)", bb, pp, bin, od)
			}
		}
	}
}

func TestDiurnalStructurePresent(t *testing.T) {
	d := quickDataset(t)
	// Average network-wide packets at peak hour vs 4am across the week's
	// weekdays; peak must be materially higher.
	p := d.Matrix(Packets)
	rowSum := func(bin int) float64 {
		var s float64
		for od := 0; od < topology.NumODPairs; od++ {
			s += p.At(bin, od)
		}
		return s
	}
	var peak, night float64
	peakBin := int(d.BG.Profile.PeakHour * traffic.BinsPerHour)
	for day := 0; day < 5; day++ {
		peak += rowSum(day*traffic.BinsPerDay + peakBin)
		night += rowSum(day*traffic.BinsPerDay + 4*traffic.BinsPerHour)
	}
	if peak < night*1.3 {
		t.Fatalf("diurnal cycle washed out: peak %v night %v", peak, night)
	}
}

func TestUnresolvedFractionApplied(t *testing.T) {
	d := quickDataset(t)
	frac := float64(d.UnresolvedRecords) / float64(d.RawRecords)
	if frac < 0.05 || frac > 0.10 {
		t.Fatalf("unresolved fraction %v, want ~0.07", frac)
	}
}

func TestRegenerationIsExact(t *testing.T) {
	d := quickDataset(t)
	// Replaying a cell must reproduce exactly the counts accumulated in the
	// matrices (for cells whose records all resolved to the generating OD;
	// pick an anomaly-free cell of a self-pair to avoid cross-OD spoofing).
	od := topology.ODPair{Origin: topology.CHIN, Dest: topology.CHIN}
	bin := 777
	var bytesSum, pktsSum, flowsSum float64
	// Every record generated at (od,bin) lands in some OD; sum only those
	// resolved back to od (others were rerouted by resolution).
	d.ForEachResolvedRecord(od, bin, func(res topology.ODPair, rec netflow.Record) {
		if res == od {
			bytesSum += float64(rec.Bytes)
			pktsSum += float64(rec.Packets)
			flowsSum++
		}
	})
	col := od.Index()
	// The matrix cell may also contain records from OTHER generating cells
	// that resolved here; for a self-pair, cross-traffic requires another
	// CHIN-origin OD resolving dst to CHIN, which happens only for spoofed
	// dst (none in background). So the cell should match exactly.
	if got := d.Matrix(Bytes).At(bin, col); math.Abs(got-bytesSum) > 0.5 {
		t.Fatalf("bytes regeneration %v != %v", bytesSum, got)
	}
	if got := d.Matrix(Packets).At(bin, col); math.Abs(got-pktsSum) > 0.5 {
		t.Fatalf("packets regeneration %v != %v", pktsSum, got)
	}
	if got := d.Matrix(Flows).At(bin, col); math.Abs(got-flowsSum) > 0.5 {
		t.Fatalf("flows regeneration %v != %v", flowsSum, got)
	}
}

func TestGenerateDeterministicAcrossWorkers(t *testing.T) {
	// The parallel fan-out must be invisible in the output: 1 worker and 8
	// workers produce byte-identical matrices and identical record counters
	// for the same seed.
	cfg := tinyConfig()
	cfg.Workers = 1
	d1, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	d8, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d1.RawRecords != d8.RawRecords || d1.UnresolvedRecords != d8.UnresolvedRecords {
		t.Fatalf("counters differ across workers: raw %d/%d unresolved %d/%d",
			d1.RawRecords, d8.RawRecords, d1.UnresolvedRecords, d8.UnresolvedRecords)
	}
	for m := Measure(0); m < NumMeasures; m++ {
		x1, x8 := d1.Matrix(m), d8.Matrix(m)
		for bin := 0; bin < d1.Bins; bin++ {
			for od := 0; od < topology.NumODPairs; od++ {
				a, b := x1.At(bin, od), x8.At(bin, od)
				if math.Float64bits(a) != math.Float64bits(b) {
					t.Fatalf("measure %v differs at (%d,%d): %v (1 worker) vs %v (8 workers)",
						m, bin, od, a, b)
				}
			}
		}
	}
}

func TestCountersFrozenAfterGenerate(t *testing.T) {
	// Regression for the pre-parallel bug where every per-bin regeneration
	// (attribute detail, record replay) re-counted its records into
	// RawRecords/UnresolvedRecords, inflating the data-reduction statistic.
	d := quickDataset(t)
	raw, unres := d.RawRecords, d.UnresolvedRecords
	od := topology.ODPair{Origin: topology.ATLA, Dest: topology.NYCM}
	d.ForEachResolvedRecord(od, 42, func(topology.ODPair, netflow.Record) {})
	_ = d.BinAttributes(od, 42)
	if d.RawRecords != raw || d.UnresolvedRecords != unres {
		t.Fatalf("replay mutated frozen counters: raw %d->%d unresolved %d->%d",
			raw, d.RawRecords, unres, d.UnresolvedRecords)
	}
}

func TestPerCellAllocsBounded(t *testing.T) {
	// The per-cell measurement path must stay allocation-lean: with a warm
	// scratch the whole synthesize->sample->export->collect->resolve chain
	// for one cell is a handful of allocations (the per-cell RNG and the
	// accumulate closure), where it used to be hundreds. The bound is
	// deliberately loose; it exists to catch the reintroduction of per-cell
	// exporter/collector/packet construction.
	d := quickDataset(t)
	sc := getScratch()
	defer putScratch(sc)
	od := topology.ODPair{Origin: topology.CHIN, Dest: topology.LOSA}
	bin := 0
	nop := func(topology.ODPair, netflow.Record) {}
	avg := testing.AllocsPerRun(50, func() {
		d.forEachResolvedRecord(od, bin, sc, nop)
		bin = (bin + 1) % d.Bins
	})
	if avg > 24 {
		t.Fatalf("per-cell path allocates %.1f/op, want <= 24", avg)
	}
}

func TestInjectedAlphaVisibleInMatrix(t *testing.T) {
	// Build a dataset with exactly one huge ALPHA and check the B matrix
	// spikes at its cell.
	cfg := tinyConfig()
	cfg.Schedule = anomaly.ScheduleConfig{
		Weeks: 1, Alphas: 1, RefBytes: cfg.MeanRateBps * traffic.BinSeconds / topology.NumODPairs,
		Seed: 3,
	}
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	specs := d.Ledger.Specs()
	if len(specs) != 1 || specs[0].Type != anomaly.Alpha {
		t.Fatalf("schedule: %+v", specs)
	}
	s := specs[0]
	od := s.ODs[0]
	col := od.Index()
	b := d.Matrix(Bytes)
	// Median background at this OD.
	var bg []float64
	for bin := 0; bin < d.Bins; bin++ {
		if bin < s.StartBin || bin > s.EndBin {
			bg = append(bg, b.At(bin, col))
		}
	}
	var bgSum float64
	for _, v := range bg {
		bgSum += v
	}
	bgMean := bgSum / float64(len(bg))
	spike := b.At(s.StartBin, col)
	if spike < bgMean*3 {
		t.Fatalf("alpha spike %v not visible over background %v", spike, bgMean)
	}
}

func TestBinAttributesDominance(t *testing.T) {
	// With one DOS injected, the victim address and port must be dominant
	// in packets at the attack cell, with no dominant source. Volume is
	// high enough that quiet cells carry a few dozen visible flows (with
	// only a handful of flows, any cell is trivially "dominated").
	cfg := tinyConfig()
	cfg.MeanRateBps = 2e6
	cfg.Schedule = anomaly.ScheduleConfig{
		Weeks: 1, DOSes: 1, RefBytes: cfg.MeanRateBps * traffic.BinSeconds / topology.NumODPairs,
		Seed: 11,
	}
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := d.Ledger.Specs()[0]
	if s.Type != anomaly.DOS {
		t.Fatalf("expected DOS, got %v", s.Type)
	}
	attr := d.BinAttributes(s.ODs[0], s.StartBin)
	if _, ok := attr.Dominant(Packets, DstAddr, 0.2); !ok {
		t.Fatal("DOS victim address not dominant in packets")
	}
	if _, ok := attr.Dominant(Packets, DstPort, 0.2); !ok {
		t.Fatal("DOS port not dominant in packets")
	}
	if _, ok := attr.Dominant(Flows, SrcAddr, 0.2); ok {
		t.Fatal("spoofed sources must not be dominant in flows")
	}
	// A quiet neighboring bin spreads its flows across destinations: no
	// dominant destination range by flow count. (By bytes a single elephant
	// flow can legitimately dominate a quiet cell, so the byte measure is
	// not checked here.)
	quiet := d.BinAttributes(s.ODs[0], s.StartBin+100)
	if _, ok := quiet.Dominant(Flows, DstAddr, 0.2); ok {
		t.Fatal("background shows dominant destination by flow count")
	}
}

func TestAttributeSummaryMerge(t *testing.T) {
	d := quickDataset(t)
	od := topology.ODPair{Origin: topology.ATLA, Dest: topology.NYCM}
	a := d.BinAttributes(od, 100)
	b := d.BinAttributes(od, 101)
	totalWant := a.Total[Flows] + b.Total[Flows]
	a.Merge(b)
	if math.Abs(a.Total[Flows]-totalWant) > 0.5 {
		t.Fatalf("merged flow total %v, want %v", a.Total[Flows], totalWant)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	d := quickDataset(t)
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Bins != d.Bins || d2.RawRecords != d.RawRecords {
		t.Fatal("metadata mismatch after load")
	}
	for m := Measure(0); m < NumMeasures; m++ {
		for bin := 0; bin < d.Bins; bin += 311 {
			for od := 0; od < topology.NumODPairs; od += 13 {
				if d.X[m].At(bin, od) != d2.X[m].At(bin, od) {
					t.Fatalf("matrix %v differs at (%d,%d)", m, bin, od)
				}
			}
		}
	}
	// The rebuilt generator state regenerates identical attribute detail.
	od := topology.ODPair{Origin: topology.STTL, Dest: topology.WASH}
	a1 := d.BinAttributes(od, 50)
	a2 := d2.BinAttributes(od, 50)
	for m := Measure(0); m < NumMeasures; m++ {
		if math.Abs(a1.Total[m]-a2.Total[m]) > 1e-9 {
			t.Fatalf("regenerated totals differ for %v", m)
		}
	}
	// Ledger must be rebuilt identically.
	s1, s2 := d.Ledger.Specs(), d2.Ledger.Specs()
	if len(s1) != len(s2) {
		t.Fatal("ledger size differs after load")
	}
	for i := range s1 {
		if s1[i].ID != s2[i].ID || s1[i].Type != s2[i].Type || s1[i].StartBin != s2[i].StartBin {
			t.Fatalf("ledger differs at %d", i)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a dataset"))); err == nil {
		t.Fatal("garbage accepted")
	}
}
