package mat

import (
	"errors"
	"math"
)

// PCA holds a principal component analysis of an n x p data matrix X whose
// rows are observations (timebins) and whose columns are variables (OD
// flows).
//
// Components are the principal axes v_i (columns of an orthonormal matrix),
// ordered by descending eigenvalue of the covariance. Eigenvalues are the
// variances captured along each axis. Mean is the per-column mean removed
// before analysis (all zeros when fitted with centering disabled).
//
// A full fit (FitPCA) carries all p axes (Components p x p); a partial fit
// (FitPCAPartial) carries only the top m (Components p x m, Eigenvalues of
// length m), with the exact covariance trace retained in TotalVar so
// residual-spectrum computations can account for the uncomputed tail.
type PCA struct {
	Mean        []float64
	Eigenvalues []float64
	Components  *Matrix // p x m (m = p for a full fit); column i is axis i.
	// TotalVar is the covariance trace: the total variance across all p
	// variables, whether or not their axes were computed.
	TotalVar float64
	n        int // number of observations used in the fit
	vars     int // number of variables p (columns of the fitted data)
}

// FitPCA computes the PCA of X. If center is true the column means are
// removed first (the standard formulation, and the one used throughout this
// repository: the subspace method studies deviations around the mean OD
// traffic).
//
// The covariance accumulation — the O(n·p²) hot path of a fit, and the
// dominant cost of every background refit in the streaming pipeline — runs
// on the parallel Gram kernel; tune it with SetWorkers.
func FitPCA(X *Matrix, center bool) (*PCA, error) {
	if X.Rows() < 2 {
		return nil, errors.New("mat: FitPCA needs at least 2 rows")
	}
	work := X.Clone()
	var mean []float64
	if center {
		mean = work.CenterColumns()
	} else {
		mean = make([]float64, X.Cols())
	}
	cov := Scale(1/float64(work.Rows()-1), work.Gram())
	vals, vecs, err := SymEigen(cov)
	if err != nil {
		return nil, err
	}
	// Clamp tiny negative eigenvalues caused by roundoff: covariance is PSD.
	var total float64
	for i, v := range vals {
		if v < 0 {
			vals[i] = 0
		}
		total += vals[i]
	}
	return &PCA{Mean: mean, Eigenvalues: vals, Components: vecs, TotalVar: total, n: X.Rows(), vars: X.Cols()}, nil
}

// NewPCA reassembles a PCA from previously fitted parts — the restore path
// of model checkpointing, where the eigendecomposition was computed in a
// past process and must not be recomputed (a refit from scratch is exactly
// what a checkpoint exists to avoid). The parts are validated for mutual
// consistency (a p-variable PCA needs a p-length mean and p-row component
// matrix; eigenvalues pair 1:1 with component columns; n is the
// observation count of the original fit) but not for orthonormality: the
// caller's checksummed envelope owns integrity, this owns shape.
func NewPCA(mean, eigenvalues []float64, components *Matrix, totalVar float64, n int) (*PCA, error) {
	if components == nil {
		return nil, errors.New("mat: NewPCA nil components")
	}
	p := len(mean)
	if p == 0 {
		return nil, errors.New("mat: NewPCA empty mean")
	}
	if components.Rows() != p {
		return nil, errors.New("mat: NewPCA components rows != len(mean)")
	}
	if components.Cols() != len(eigenvalues) {
		return nil, errors.New("mat: NewPCA components cols != len(eigenvalues)")
	}
	if len(eigenvalues) == 0 || len(eigenvalues) > p {
		return nil, errors.New("mat: NewPCA eigenvalue count out of range")
	}
	if n < 2 {
		return nil, errors.New("mat: NewPCA needs n >= 2 observations")
	}
	for _, v := range eigenvalues {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return nil, errors.New("mat: NewPCA non-finite or negative eigenvalue")
		}
	}
	if math.IsNaN(totalVar) || math.IsInf(totalVar, 0) || totalVar < 0 {
		return nil, errors.New("mat: NewPCA non-finite or negative total variance")
	}
	return &PCA{Mean: mean, Eigenvalues: eigenvalues, Components: components, TotalVar: totalVar, n: n, vars: p}, nil
}

// N returns the number of observations the PCA was fitted on.
func (p *PCA) N() int { return p.n }

// P returns the number of variables (OD flows).
func (p *PCA) P() int { return p.vars }

// NumComputed returns the number of principal axes actually computed: p for
// a full fit, m for a partial one.
func (p *PCA) NumComputed() int { return len(p.Eigenvalues) }

// ResidualMoments returns the first three moments of the residual spectrum,
// phi_i = sum_{j>k} lambda_j^i — the inputs of the Jackson–Mudholkar Q
// threshold.
//
// For a partial fit the spectrum beyond the computed m axes is unknown, but
// its total variance is: the covariance trace minus the computed head. The
// tail of a sampled-traffic covariance is a noise floor of many comparable
// eigenvalues (not a continued fast decay), so the tail is modeled as flat —
// tail variance spread evenly over the remaining min(n-1, p) - m covariance
// directions. phi1 is exact either way; the flat model keeps phi2/phi3 from
// being underestimated, which would depress the Q threshold and flood the
// detector with false alarms on wide OD matrices.
func (p *PCA) ResidualMoments(k int) (phi1, phi2, phi3 float64) {
	if k < 0 || k > len(p.Eigenvalues) {
		panic("mat: ResidualMoments k out of range")
	}
	for _, l := range p.Eigenvalues[k:] {
		if l < 0 {
			l = 0
		}
		phi1 += l
		phi2 += l * l
		phi3 += l * l * l
	}
	if m := len(p.Eigenvalues); m < p.vars {
		var head float64
		for _, l := range p.Eigenvalues {
			head += l
		}
		rank := p.n - 1
		if p.vars < rank {
			rank = p.vars
		}
		if tail := p.TotalVar - head; tail > 0 && rank > m {
			cnt := float64(rank - m)
			avg := tail / cnt
			phi1 += tail
			phi2 += cnt * avg * avg
			phi3 += cnt * avg * avg * avg
		}
	}
	return phi1, phi2, phi3
}

// Center returns X with the fitted mean removed (a new matrix).
func (p *PCA) Center(X *Matrix) *Matrix {
	out := X.Clone()
	for i := 0; i < out.Rows(); i++ {
		row := out.RowView(i)
		for j := range row {
			row[j] -= p.Mean[j]
		}
	}
	return out
}

// Scores returns the score matrix T = Xc * V (n x p): the coordinates of
// each centered observation in the principal-axis basis.
func (p *PCA) Scores(X *Matrix) *Matrix {
	return Mul(p.Center(X), p.Components)
}

// Eigenflows returns the matrix U (n x p) whose column i is the i-th
// eigenflow: the i-th score column normalized to unit Euclidean norm. This
// is the formulation of Lakhina et al. (SIGMETRICS 2004): X = U S V^T, so
// eigenflow i is the common temporal pattern along principal axis i.
//
// Columns whose score norm is (near) zero are left as all-zero; they
// correspond to directions with no variance.
func (p *PCA) Eigenflows(X *Matrix) *Matrix {
	scores := p.Scores(X)
	n, k := scores.Rows(), scores.Cols()
	for j := 0; j < k; j++ {
		var norm float64
		for i := 0; i < n; i++ {
			v := scores.At(i, j)
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm < 1e-300 {
			continue
		}
		inv := 1 / norm
		for i := 0; i < n; i++ {
			scores.Set(i, j, scores.At(i, j)*inv)
		}
	}
	return scores
}

// TopComponents returns the p x k matrix V_k whose columns are the top-k
// principal axes — the normal-subspace basis of the subspace method.
func (p *PCA) TopComponents(k int) *Matrix {
	if k < 0 || k > p.NumComputed() {
		panic("mat: TopComponents k out of range")
	}
	vk := New(p.P(), k)
	for j := 0; j < k; j++ {
		for i := 0; i < p.P(); i++ {
			vk.Set(i, j, p.Components.At(i, j))
		}
	}
	return vk
}

// ProjectionSplit reconstructs each row of X as the sum of a modeled part
// (projection onto the top-k principal axes) and a residual part, returning
// (Xhat, Xtilde) with X = Xhat + Xtilde + 1*mean^T. Both returned matrices
// are in the centered coordinate frame; callers inspecting magnitudes of
// state and residual vectors (as the subspace method does) use them
// directly.
func (p *PCA) ProjectionSplit(X *Matrix, k int) (modeled, residual *Matrix) {
	if k < 0 || k > p.NumComputed() {
		panic("mat: ProjectionSplit k out of range")
	}
	xc := p.Center(X)
	// P_k = V_k V_k^T. Applying it row-wise: modeled = Xc V_k V_k^T.
	vk := p.TopComponents(k)
	scores := Mul(xc, vk)         // n x k
	modeled = Mul(scores, vk.T()) // n x p
	residual = Sub(xc, modeled)
	return modeled, residual
}

// VarianceExplained returns the cumulative fraction of total variance
// captured by the top-k components, for k = 1..NumComputed. The denominator
// is the full covariance trace, so partial fits report fractions of the
// true total, not of the computed head.
func (p *PCA) VarianceExplained() []float64 {
	total := p.TotalVar
	if total == 0 {
		for _, v := range p.Eigenvalues {
			total += v
		}
	}
	out := make([]float64, len(p.Eigenvalues))
	run := 0.0
	for i, v := range p.Eigenvalues {
		run += v
		if total > 0 {
			out[i] = run / total
		}
	}
	return out
}
