package mat

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
)

// FitPCAPartial computes the top-m principal components of X without ever
// forming the p x p covariance — the large-p path of the subspace method.
//
// The full FitPCA runs a Jacobi eigendecomposition of the covariance, which
// is O(p³) per sweep: fine at Abilene's p = 121, hopeless at the p = 10⁴⁺
// OD-matrix widths of the synthetic scale-sweep topologies. The subspace
// method only ever consumes the top k ≈ 4 axes plus the residual spectrum
// moments, so for large p this fit runs deterministic block subspace
// iteration directly on the centered data matrix:
//
//	Y = Xc Q        (n x b, two cache-friendly kernels per iteration)
//	Z = Xcᵀ Y       (p x b — this is (n-1)·C·Q without materializing C)
//	Q = orth(Z)
//
// followed by a Rayleigh–Ritz projection onto the converged basis. Every
// iterate costs O(n·p·b) instead of O(p³), and the iteration inherits the
// fast spectral decay of gravity-model traffic (a handful of sweeps).
//
// The returned PCA has Components p x m and Eigenvalues of length m, plus
// the exact covariance trace in TotalVar so threshold computations can
// account for the uncomputed tail variance. The iteration start point is a
// fixed-seed PCG draw, so the fit is reproducible for a given (n, p, m).
func FitPCAPartial(X *Matrix, m int, center bool) (*PCA, error) {
	return FitPCAPartialWarm(X, m, center, nil)
}

// FitPCAPartialWarm is FitPCAPartial with a warm start: warm, when non-nil,
// is a p x mw components matrix from a previous fit (columns = principal
// axes) that seeds the subspace iteration in place of the random draw. When
// the data has drifted only slightly since the previous fit — the nightly
// refit regime of the streaming pipeline — the iteration starts next to its
// fixed point and converges in a couple of sweeps instead of from scratch.
// Extra block directions beyond mw are still drawn from the fixed-seed rng,
// so the fit remains deterministic for a given (X, m, warm).
func FitPCAPartialWarm(X *Matrix, m int, center bool, warm *Matrix) (*PCA, error) {
	n, p := X.Rows(), X.Cols()
	if n < 2 {
		return nil, errors.New("mat: FitPCAPartial needs at least 2 rows")
	}
	if m < 1 || m > p {
		return nil, fmt.Errorf("mat: FitPCAPartial m=%d out of [1,%d]", m, p)
	}
	if m > n-1 {
		// Beyond n-1 the covariance has no more nonzero directions.
		m = n - 1
	}
	work := X.Clone()
	var mean []float64
	if center {
		mean = work.CenterColumns()
	} else {
		mean = make([]float64, p)
	}
	inv := 1 / float64(n-1)
	var total float64
	for _, v := range work.data {
		total += v * v
	}
	total *= inv

	// Oversampled block: a few spare directions speed convergence of the
	// trailing wanted eigenpairs.
	b := m + 8
	if b > p {
		b = p
	}
	if b > n-1 {
		b = n - 1
	}
	if b < m {
		m = b
	}

	// Qt holds the basis row-wise (b x p) so orthonormalization and the
	// product kernels stream contiguous memory.
	rng := rand.New(rand.NewPCG(0x5CA1AB1E, uint64(p)<<20^uint64(n)))
	qt := New(b, p)
	seeded := 0
	if warm != nil && warm.Rows() == p {
		// Row i of Qt starts as axis i of the previous basis.
		mw := warm.Cols()
		if mw > b {
			mw = b
		}
		for i := 0; i < mw; i++ {
			row := qt.data[i*p : (i+1)*p]
			for j := range row {
				row[j] = warm.data[j*warm.cols+i]
			}
		}
		seeded = mw
	}
	for i := seeded * p; i < len(qt.data); i++ {
		qt.data[i] = rng.NormFloat64()
	}
	orthonormalizeRows(qt, rng)

	// The thresholds consuming these eigenvalues are statistical control
	// limits, not spectral decompositions for their own sake: 7 significant
	// digits on the eigenvalues moves the Q limit by far less than one
	// timebin of sampling noise, while a tighter tolerance can triple the
	// iteration count on slowly separating trailing eigenpairs.
	const (
		maxIter = 80
		relTol  = 1e-7
	)
	var prev []float64
	var vals []float64
	for iter := 0; ; iter++ {
		y := MulABt(work, qt) // n x b
		// Rayleigh–Ritz estimates on the current basis: B = YᵀY/(n-1).
		ritz := Scale(inv, MulAtB(y, y))
		var w *Matrix
		var err error
		vals, w, err = SymEigen(ritz)
		if err != nil {
			return nil, fmt.Errorf("mat: FitPCAPartial projection eigen: %w", err)
		}
		if converged(vals, prev, m, relTol) || iter == maxIter-1 {
			// Rotate the basis to the Ritz vectors and finish.
			qt = MulAtB(w, qt) // b x p: row i = i-th Ritz vector
			break
		}
		prev = append(prev[:0], vals...)
		zt := MulAtB(y, work) // b x p: ((n-1)·C·Q)ᵀ
		orthonormalizeRows(zt, rng)
		qt = zt
	}

	comps := New(p, m)
	eig := make([]float64, m)
	for i := 0; i < m; i++ {
		if v := vals[i]; v > 0 {
			eig[i] = v
		}
		row := qt.data[i*p : (i+1)*p]
		for j, v := range row {
			comps.data[j*m+i] = v
		}
	}
	return &PCA{
		Mean:        mean,
		Eigenvalues: eig,
		Components:  comps,
		TotalVar:    total,
		n:           n,
		vars:        p,
	}, nil
}

// converged reports whether the top-m eigenvalue estimates have settled:
// the aggregate movement since the previous iterate is below relTol of the
// captured variance. An aggregate test lets sub-dominant eigenpairs (whose
// individual convergence is slow when gaps are small) stop the iteration
// once their wiggle no longer matters to the statistics built on them.
func converged(vals, prev []float64, m int, relTol float64) bool {
	if prev == nil || len(vals) < m || len(prev) < m {
		return false
	}
	var moved, total float64
	for i := 0; i < m; i++ {
		moved += math.Abs(vals[i] - prev[i])
		total += math.Abs(vals[i])
	}
	return moved <= relTol*(total+1e-300)
}

// orthonormalizeRows runs modified Gram–Schmidt over the rows of q. Rows
// that collapse to (near) zero — rank deficiency in the iterate — are
// refilled from the deterministic rng and re-orthogonalized, keeping the
// basis full-rank without breaking reproducibility.
func orthonormalizeRows(q *Matrix, rng *rand.Rand) {
	rows, cols := q.rows, q.cols
	for i := 0; i < rows; i++ {
		ri := q.data[i*cols : (i+1)*cols]
		for attempt := 0; ; attempt++ {
			for j := 0; j < i; j++ {
				rj := q.data[j*cols : (j+1)*cols]
				d := Dot(ri, rj)
				for c := range ri {
					ri[c] -= d * rj[c]
				}
			}
			norm := Norm2(ri)
			if norm > 1e-12 {
				s := 1 / norm
				for c := range ri {
					ri[c] *= s
				}
				break
			}
			if attempt > 4 {
				// Degenerate data (e.g. fewer independent directions than
				// rows); leave the row zero rather than loop forever.
				for c := range ri {
					ri[c] = 0
				}
				break
			}
			for c := range ri {
				ri[c] = rng.NormFloat64()
			}
		}
	}
}
