package mat

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func lowRankData(rng *rand.Rand, n, p, rank int, noise float64) *Matrix {
	// Sum of `rank` latent sinusoids with random per-column loadings.
	loads := randomMatrix(rng, rank, p)
	x := New(n, p)
	for i := 0; i < n; i++ {
		for r := 0; r < rank; r++ {
			lat := math.Sin(2*math.Pi*float64(r+1)*float64(i)/float64(n)) * float64(10*(rank-r))
			for j := 0; j < p; j++ {
				x.Set(i, j, x.At(i, j)+lat*loads.At(r, j))
			}
		}
		for j := 0; j < p; j++ {
			x.Set(i, j, x.At(i, j)+noise*rng.NormFloat64())
		}
	}
	return x
}

func TestFitPCAErrors(t *testing.T) {
	if _, err := FitPCA(New(1, 3), true); err == nil {
		t.Fatal("accepted single-row input")
	}
}

func TestPCAReconstruction(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	x := lowRankData(rng, 100, 12, 3, 0.5)
	p, err := FitPCA(x, true)
	if err != nil {
		t.Fatal(err)
	}
	modeled, residual := p.ProjectionSplit(x, 4)
	// modeled + residual must equal centered X exactly.
	xc := p.Center(x)
	if d := MaxAbsDiff(Add(modeled, residual), xc); d > 1e-9 {
		t.Fatalf("x != xhat + xtilde, max err %v", d)
	}
}

func TestPCAFullRankResidualZero(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 14))
	x := lowRankData(rng, 50, 6, 2, 1)
	p, err := FitPCA(x, true)
	if err != nil {
		t.Fatal(err)
	}
	_, residual := p.ProjectionSplit(x, 6)
	for i := 0; i < residual.Rows(); i++ {
		if n := Norm2(residual.RowView(i)); n > 1e-8 {
			t.Fatalf("full-rank projection leaves residual %v at row %d", n, i)
		}
	}
}

func TestPCACapturesLowRank(t *testing.T) {
	rng := rand.New(rand.NewPCG(15, 16))
	x := lowRankData(rng, 300, 20, 3, 0.01)
	p, err := FitPCA(x, true)
	if err != nil {
		t.Fatal(err)
	}
	ve := p.VarianceExplained()
	if ve[2] < 0.999 {
		t.Fatalf("top-3 variance explained %v, want > 0.999", ve[2])
	}
	if ve[len(ve)-1] < 0.999999 {
		t.Fatalf("total variance explained %v, want ~1", ve[len(ve)-1])
	}
}

func TestEigenflowsOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 18))
	x := lowRankData(rng, 200, 10, 4, 1)
	p, err := FitPCA(x, true)
	if err != nil {
		t.Fatal(err)
	}
	u := p.Eigenflows(x)
	// Columns with non-negligible eigenvalue must be unit-norm and mutually
	// orthogonal (scores along distinct principal axes are orthogonal).
	for a := 0; a < u.Cols(); a++ {
		ca := u.Col(a)
		na := Norm2(ca)
		if p.Eigenvalues[a] > 1e-9 && math.Abs(na-1) > 1e-8 {
			t.Fatalf("eigenflow %d norm %v", a, na)
		}
		for b := a + 1; b < u.Cols(); b++ {
			if p.Eigenvalues[b] <= 1e-9 {
				continue
			}
			if d := math.Abs(Dot(ca, u.Col(b))); d > 1e-7 {
				t.Fatalf("eigenflows %d,%d not orthogonal: %v", a, b, d)
			}
		}
	}
}

func TestEigenflowMeansNearZero(t *testing.T) {
	// With centered data, each eigenflow has (exactly) zero mean: it is a
	// linear combination of centered columns. The paper's T^2 statistic
	// relies on this ("multivariate mean ... equal to zero by construction").
	rng := rand.New(rand.NewPCG(19, 20))
	x := lowRankData(rng, 150, 8, 3, 1)
	p, err := FitPCA(x, true)
	if err != nil {
		t.Fatal(err)
	}
	u := p.Eigenflows(x)
	for j := 0; j < u.Cols(); j++ {
		if p.Eigenvalues[j] <= 1e-9 {
			continue
		}
		var mean float64
		for i := 0; i < u.Rows(); i++ {
			mean += u.At(i, j)
		}
		mean /= float64(u.Rows())
		if math.Abs(mean) > 1e-9 {
			t.Fatalf("eigenflow %d mean %v", j, mean)
		}
	}
}

func TestScoresVarianceMatchesEigenvalues(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	x := lowRankData(rng, 250, 9, 3, 0.5)
	p, err := FitPCA(x, true)
	if err != nil {
		t.Fatal(err)
	}
	scores := p.Scores(x)
	n := float64(scores.Rows())
	for j := 0; j < scores.Cols(); j++ {
		var ss float64
		for i := 0; i < scores.Rows(); i++ {
			v := scores.At(i, j)
			ss += v * v
		}
		varj := ss / (n - 1)
		if math.Abs(varj-p.Eigenvalues[j]) > 1e-6*(1+p.Eigenvalues[j]) {
			t.Fatalf("score variance %v != eigenvalue %v (component %d)", varj, p.Eigenvalues[j], j)
		}
	}
}

// Property: for any k, ||xc_j||^2 == ||xhat_j||^2 + ||xtilde_j||^2 per row
// (Pythagoras: modeled and residual are orthogonal projections).
func TestPropProjectionPythagoras(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed|1))
		n := 30 + int(seed%30)
		p := 4 + int((seed>>4)%6)
		x := lowRankData(rng, n, p, 2, 1)
		pca, err := FitPCA(x, true)
		if err != nil {
			return false
		}
		k := 1 + int(seed%uint64(p))
		modeled, residual := pca.ProjectionSplit(x, k)
		xc := pca.Center(x)
		for i := 0; i < n; i++ {
			lhs := Dot(xc.RowView(i), xc.RowView(i))
			rhs := Dot(modeled.RowView(i), modeled.RowView(i)) + Dot(residual.RowView(i), residual.RowView(i))
			if math.Abs(lhs-rhs) > 1e-6*(1+lhs) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: residual norms are monotonically non-increasing in k.
func TestPropResidualMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed^0xff, seed))
		x := lowRankData(rng, 40, 6, 3, 1)
		pca, err := FitPCA(x, true)
		if err != nil {
			return false
		}
		prev := math.Inf(1)
		for k := 0; k <= 6; k++ {
			_, residual := pca.ProjectionSplit(x, k)
			var total float64
			for i := 0; i < residual.Rows(); i++ {
				total += Dot(residual.RowView(i), residual.RowView(i))
			}
			if total > prev+1e-6 {
				return false
			}
			prev = total
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSymEigen121(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 1))
	a := randomSymmetric(rng, 121)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := SymEigen(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFitPCAWeek(b *testing.B) {
	rng := rand.New(rand.NewPCG(2, 2))
	x := lowRankData(rng, 2016, 121, 5, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitPCA(x, true); err != nil {
			b.Fatal(err)
		}
	}
}
