package mat

import (
	"errors"
	"math"
	"sort"
)

// maxJacobiSweeps bounds the number of full Jacobi sweeps. Convergence for
// well-conditioned symmetric matrices of the sizes used here (~121x121) is
// typically reached in 6-10 sweeps; 64 leaves an enormous safety margin.
const maxJacobiSweeps = 64

// SymEigen computes the eigendecomposition of a symmetric matrix using the
// cyclic Jacobi method. It returns the eigenvalues in descending order and a
// matrix whose columns are the corresponding orthonormal eigenvectors, so
// that A = V diag(vals) V^T.
//
// SymEigen returns an error if A is not square, not symmetric (to within a
// scale-relative tolerance), or if the iteration fails to converge.
func SymEigen(A *Matrix) (vals []float64, vecs *Matrix, err error) {
	n := A.rows
	if n != A.cols {
		return nil, nil, errors.New("mat: SymEigen on non-square matrix")
	}
	scale := 0.0
	for _, v := range A.data {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	if !A.IsSymmetric(1e-9*scale + 1e-12) {
		return nil, nil, errors.New("mat: SymEigen on non-symmetric matrix")
	}
	a := A.Clone()
	v := Identity(n)

	off := func() float64 {
		var s float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				x := a.data[i*n+j]
				s += 2 * x * x
			}
		}
		return math.Sqrt(s)
	}

	// Convergence threshold relative to the Frobenius norm of A.
	var fro float64
	for _, x := range a.data {
		fro += x * x
	}
	fro = math.Sqrt(fro)
	tol := 1e-14 * (fro + 1)

	converged := false
	for sweep := 0; sweep < maxJacobiSweeps; sweep++ {
		if off() <= tol {
			converged = true
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := a.data[p*n+q]
				if math.Abs(apq) <= tol/float64(n) {
					continue
				}
				app := a.data[p*n+p]
				aqq := a.data[q*n+q]
				// Compute the Jacobi rotation that annihilates a[p][q].
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c

				// Apply rotation: A <- J^T A J on rows/cols p and q.
				for k := 0; k < n; k++ {
					akp := a.data[k*n+p]
					akq := a.data[k*n+q]
					a.data[k*n+p] = c*akp - s*akq
					a.data[k*n+q] = s*akp + c*akq
				}
				for k := 0; k < n; k++ {
					apk := a.data[p*n+k]
					aqk := a.data[q*n+k]
					a.data[p*n+k] = c*apk - s*aqk
					a.data[q*n+k] = s*apk + c*aqk
				}
				// Accumulate eigenvectors: V <- V J.
				for k := 0; k < n; k++ {
					vkp := v.data[k*n+p]
					vkq := v.data[k*n+q]
					v.data[k*n+p] = c*vkp - s*vkq
					v.data[k*n+q] = s*vkp + c*vkq
				}
			}
		}
	}
	if !converged && off() > tol*1e3 {
		return nil, nil, errors.New("mat: Jacobi iteration did not converge")
	}

	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = a.data[i*n+i]
	}
	// Sort eigenpairs by descending eigenvalue.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(x, y int) bool { return vals[idx[x]] > vals[idx[y]] })
	sortedVals := make([]float64, n)
	sortedVecs := New(n, n)
	for newCol, oldCol := range idx {
		sortedVals[newCol] = vals[oldCol]
		for r := 0; r < n; r++ {
			sortedVecs.data[r*n+newCol] = v.data[r*n+oldCol]
		}
	}
	return sortedVals, sortedVecs, nil
}
