package mat

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// The dense kernels with superlinear work (Mul, Gram, and everything built
// on them: Covariance, FitPCA, Scores, ProjectionSplit) split their row
// ranges across a pool of goroutines when the flop count is large enough to
// amortize goroutine startup. The pool size is a package-level tunable so
// callers embedding the kernels in their own concurrent pipelines (one
// scoring worker per traffic measure, say) can budget cores explicitly.

// workerCount is the number of goroutines a single parallel kernel
// invocation may use. Guarded by atomic access; defaults to GOMAXPROCS.
var workerCount atomic.Int64

func init() { workerCount.Store(int64(runtime.GOMAXPROCS(0))) }

// SetWorkers sets the number of goroutines the parallel kernels may use and
// returns the previous setting. n < 1 resets to runtime.GOMAXPROCS(0).
// It is safe to call concurrently with running kernels: in-flight calls
// keep the worker count they started with.
func SetWorkers(n int) int {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	return int(workerCount.Swap(int64(n)))
}

// Workers returns the current parallel-kernel worker count.
func Workers() int { return int(workerCount.Load()) }

// parallelFlopThreshold is the approximate multiply-add count below which
// the serial kernels win: spawning a goroutine costs on the order of a
// microsecond, which buys ~10^4-10^5 flops of dense arithmetic.
const parallelFlopThreshold = 1 << 16

// parallelRows splits [0, n) into at most w contiguous chunks and runs fn
// on each concurrently, returning when all chunks are done. fn must only
// write state disjoint per row range.
func parallelRows(n, w int, fn func(lo, hi int)) {
	if w > n {
		w = n
	}
	if w <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + w - 1) / w
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// mulRange computes rows [lo, hi) of out = a*b. Row i of out depends only
// on row i of a, so disjoint ranges never race.
func mulRange(out, a, b *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		orow := out.data[i*out.cols : (i+1)*out.cols]
		// ikj loop order: stream through b rows for locality.
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// gramUpper accumulates the upper triangle of m[lo:hi]^T m[lo:hi] into out
// (cols x cols). Callers sum partial results and mirror the triangle.
func gramUpper(out *Matrix, m *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for a, va := range row {
			if va == 0 {
				continue
			}
			orow := out.data[a*out.cols : (a+1)*out.cols]
			for b := a; b < len(row); b++ {
				orow[b] += va * row[b]
			}
		}
	}
}

// gramParallel computes the full Gram matrix m^T m using w workers, each
// accumulating a private upper-triangular partial that is reduced serially.
// The reduction is O(w p²), negligible against the O(n p²/2) accumulation.
func gramParallel(m *Matrix, w int) *Matrix {
	partials := make([]*Matrix, w)
	var wg sync.WaitGroup
	chunk := (m.rows + w - 1) / w
	slot := 0
	for lo := 0; lo < m.rows; lo += chunk {
		hi := lo + chunk
		if hi > m.rows {
			hi = m.rows
		}
		p := New(m.cols, m.cols)
		partials[slot] = p
		wg.Add(1)
		go func(p *Matrix, lo, hi int) {
			defer wg.Done()
			gramUpper(p, m, lo, hi)
		}(p, lo, hi)
		slot++
	}
	wg.Wait()
	out := partials[0]
	for _, p := range partials[1:slot] {
		for i, v := range p.data {
			out.data[i] += v
		}
	}
	mirrorUpper(out)
	return out
}

// MulABt returns a * bᵀ without materializing the transpose: out[i][j] is
// the dot product of row i of a and row j of b, so both operands stream
// contiguous memory. It panics on dimension mismatch. Rows of the output
// are split across Workers() goroutines; each element is accumulated by
// exactly one goroutine in a fixed order, so the result is bit-identical
// for every worker count.
func MulABt(a, b *Matrix) *Matrix {
	if a.cols != b.cols {
		panic(fmt.Sprintf("mat: MulABt dimension mismatch %dx%d * (%dx%d)T", a.rows, a.cols, b.rows, b.cols))
	}
	out := New(a.rows, b.rows)
	kernel := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.data[i*a.cols : (i+1)*a.cols]
			orow := out.data[i*out.cols : (i+1)*out.cols]
			for j := range orow {
				orow[j] = Dot(arow, b.data[j*b.cols:(j+1)*b.cols])
			}
		}
	}
	w := Workers()
	if w <= 1 || a.rows*a.cols*b.rows < parallelFlopThreshold {
		kernel(0, a.rows)
		return out
	}
	parallelRows(a.rows, w, kernel)
	return out
}

// MulAtB returns aᵀ * b (a and b sharing their row dimension) without
// materializing the transpose: the rows of a and b are streamed once,
// accumulating rank-1 updates into the output. Large inputs are split into
// row blocks with per-worker partial outputs reduced in block order — the
// same scheme as the Gram kernel, so results are deterministic for a fixed
// worker count.
func MulAtB(a, b *Matrix) *Matrix {
	if a.rows != b.rows {
		panic(fmt.Sprintf("mat: MulAtB dimension mismatch (%dx%d)T * %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	accumulate := func(out *Matrix, lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.data[i*a.cols : (i+1)*a.cols]
			brow := b.data[i*b.cols : (i+1)*b.cols]
			for j, av := range arow {
				if av == 0 {
					continue
				}
				orow := out.data[j*out.cols : (j+1)*out.cols]
				for c, bv := range brow {
					orow[c] += av * bv
				}
			}
		}
	}
	w := Workers()
	if w <= 1 || a.rows*a.cols*b.cols < parallelFlopThreshold {
		out := New(a.cols, b.cols)
		accumulate(out, 0, a.rows)
		return out
	}
	if w > a.rows {
		w = a.rows
	}
	partials := make([]*Matrix, w)
	var wg sync.WaitGroup
	chunk := (a.rows + w - 1) / w
	slot := 0
	for lo := 0; lo < a.rows; lo += chunk {
		hi := lo + chunk
		if hi > a.rows {
			hi = a.rows
		}
		p := New(a.cols, b.cols)
		partials[slot] = p
		wg.Add(1)
		go func(p *Matrix, lo, hi int) {
			defer wg.Done()
			accumulate(p, lo, hi)
		}(p, lo, hi)
		slot++
	}
	wg.Wait()
	out := partials[0]
	for _, p := range partials[1:slot] {
		for i, v := range p.data {
			out.data[i] += v
		}
	}
	return out
}

// mirrorUpper copies the upper triangle of a square matrix onto the lower.
func mirrorUpper(m *Matrix) {
	for a := 0; a < m.rows; a++ {
		for b := a + 1; b < m.cols; b++ {
			m.data[b*m.cols+a] = m.data[a*m.cols+b]
		}
	}
}
