package mat

import (
	"math/rand/v2"
	"testing"
)

// mulSerial is the reference product used to validate the parallel kernel.
func mulSerial(a, b *Matrix) *Matrix {
	out := New(a.rows, b.cols)
	mulRange(out, a, b, 0, a.rows)
	return out
}

func TestMulParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	shapes := [][3]int{
		{1, 1, 1}, // degenerate
		{7, 3, 5}, // below threshold
		{200, 121, 121},
		{2016, 121, 4}, // the streaming scores product
		{333, 64, 97},  // odd sizes that don't divide evenly
	}
	for _, s := range shapes {
		a := randomMatrix(rng, s[0], s[1])
		b := randomMatrix(rng, s[1], s[2])
		want := mulSerial(a, b)
		for _, w := range []int{1, 2, 3, 8, 64} {
			prev := SetWorkers(w)
			got := Mul(a, b)
			SetWorkers(prev)
			if d := MaxAbsDiff(got, want); d != 0 {
				t.Fatalf("%dx%d*%dx%d workers=%d: max diff %v", s[0], s[1], s[1], s[2], w, d)
			}
		}
	}
}

func TestGramParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 14))
	for _, shape := range [][2]int{{3, 2}, {50, 9}, {2016, 121}, {97, 33}} {
		m := randomMatrix(rng, shape[0], shape[1])
		out := New(m.cols, m.cols)
		gramUpper(out, m, 0, m.rows)
		mirrorUpper(out)
		for _, w := range []int{1, 2, 5, 16} {
			prev := SetWorkers(w)
			got := m.Gram()
			SetWorkers(prev)
			// Partial sums reassociate floating-point addition, so allow a
			// tiny tolerance relative to the magnitudes involved.
			if d := MaxAbsDiff(got, out); d > 1e-9*float64(shape[0]) {
				t.Fatalf("Gram %dx%d workers=%d: max diff %v", shape[0], shape[1], w, d)
			}
		}
	}
}

func TestGramParallelMoreWorkersThanRows(t *testing.T) {
	rng := rand.New(rand.NewPCG(15, 16))
	m := randomMatrix(rng, 3, 300) // wide: passes the flop threshold with 3 rows
	want := New(m.cols, m.cols)
	gramUpper(want, m, 0, m.rows)
	mirrorUpper(want)
	prev := SetWorkers(8)
	got := m.Gram()
	SetWorkers(prev)
	if d := MaxAbsDiff(got, want); d > 1e-9 {
		t.Fatalf("wide Gram with excess workers: max diff %v", d)
	}
}

func TestSetWorkers(t *testing.T) {
	orig := Workers()
	defer SetWorkers(orig)
	if prev := SetWorkers(5); prev != orig {
		t.Fatalf("SetWorkers returned %d, want previous %d", prev, orig)
	}
	if Workers() != 5 {
		t.Fatalf("Workers() = %d after SetWorkers(5)", Workers())
	}
	SetWorkers(0) // resets to GOMAXPROCS
	if Workers() < 1 {
		t.Fatalf("Workers() = %d after reset", Workers())
	}
}

func TestCovarianceParallelStable(t *testing.T) {
	// Covariance goes through the parallel Gram; the PSD structure and
	// symmetry must survive the partial-sum reduction.
	rng := rand.New(rand.NewPCG(17, 18))
	m := randomMatrix(rng, 500, 121)
	prev := SetWorkers(4)
	defer SetWorkers(prev)
	cov := m.Covariance()
	if !cov.IsSymmetric(1e-12) {
		t.Fatal("parallel covariance not symmetric")
	}
	for i := 0; i < cov.Rows(); i++ {
		if cov.At(i, i) < 0 {
			t.Fatalf("negative variance at %d: %v", i, cov.At(i, i))
		}
	}
}
