package mat

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func randomMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := New(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

func TestNewDimensions(t *testing.T) {
	m := New(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("got %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("new matrix not zeroed at (%d,%d)", i, j)
			}
		}
	}
}

func TestNewFromRows(t *testing.T) {
	m, err := NewFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(2, 1) != 6 {
		t.Fatalf("At(2,1)=%v, want 6", m.At(2, 1))
	}
	if _, err := NewFromRows([][]float64{{1}, {2, 3}}); err == nil {
		t.Fatal("ragged input accepted")
	}
	if _, err := NewFromRows(nil); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestSetAtRoundTrip(t *testing.T) {
	m := New(2, 2)
	m.Set(1, 0, 7.5)
	if m.At(1, 0) != 7.5 {
		t.Fatalf("At after Set = %v", m.At(1, 0))
	}
}

func TestIndexPanics(t *testing.T) {
	m := New(2, 2)
	for _, f := range []func(){
		func() { m.At(2, 0) },
		func() { m.At(0, -1) },
		func() { m.Set(-1, 0, 1) },
		func() { m.Row(5) },
		func() { m.Col(5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestTranspose(t *testing.T) {
	m, _ := NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	mt := m.T()
	if mt.Rows() != 3 || mt.Cols() != 2 {
		t.Fatalf("transpose shape %dx%d", mt.Rows(), mt.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != mt.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulKnown(t *testing.T) {
	a, _ := NewFromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := NewFromRows([][]float64{{5, 6}, {7, 8}})
	c := Mul(a, b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul[%d][%d]=%v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	m := randomMatrix(rng, 5, 5)
	if d := MaxAbsDiff(Mul(m, Identity(5)), m); d > 1e-15 {
		t.Fatalf("M*I differs from M by %v", d)
	}
	if d := MaxAbsDiff(Mul(Identity(5), m), m); d > 1e-15 {
		t.Fatalf("I*M differs from M by %v", d)
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	m := randomMatrix(rng, 4, 6)
	v := make([]float64, 6)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	got := MulVec(m, v)
	vm := New(6, 1)
	vm.SetCol(0, v)
	want := Mul(m, vm)
	for i := range got {
		if !almostEqual(got[i], want.At(i, 0), 1e-12) {
			t.Fatalf("MulVec[%d]=%v, want %v", i, got[i], want.At(i, 0))
		}
	}
}

func TestAddSubScale(t *testing.T) {
	a, _ := NewFromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := NewFromRows([][]float64{{10, 20}, {30, 40}})
	if got := Add(a, b).At(1, 1); got != 44 {
		t.Fatalf("Add=%v, want 44", got)
	}
	if got := Sub(b, a).At(0, 0); got != 9 {
		t.Fatalf("Sub=%v, want 9", got)
	}
	if got := Scale(2, a).At(1, 0); got != 6 {
		t.Fatalf("Scale=%v, want 6", got)
	}
}

func TestColMeansAndCenter(t *testing.T) {
	m, _ := NewFromRows([][]float64{{1, 10}, {3, 20}, {5, 30}})
	means := m.ColMeans()
	if !almostEqual(means[0], 3, 1e-15) || !almostEqual(means[1], 20, 1e-15) {
		t.Fatalf("means=%v", means)
	}
	c := m.Clone()
	c.CenterColumns()
	cm := c.ColMeans()
	for j, v := range cm {
		if !almostEqual(v, 0, 1e-12) {
			t.Fatalf("centered mean[%d]=%v", j, v)
		}
	}
}

func TestGramMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	m := randomMatrix(rng, 7, 4)
	g := m.Gram()
	want := Mul(m.T(), m)
	if d := MaxAbsDiff(g, want); d > 1e-12 {
		t.Fatalf("Gram differs from X^T X by %v", d)
	}
	if !g.IsSymmetric(1e-12) {
		t.Fatal("Gram not symmetric")
	}
}

func TestCovarianceKnown(t *testing.T) {
	// Two perfectly correlated columns: cov = [[1,2],[2,4]] * var scale.
	m, _ := NewFromRows([][]float64{{0, 0}, {1, 2}, {2, 4}})
	cov := m.Covariance()
	if !almostEqual(cov.At(0, 0), 1, 1e-12) {
		t.Fatalf("cov00=%v, want 1", cov.At(0, 0))
	}
	if !almostEqual(cov.At(0, 1), 2, 1e-12) {
		t.Fatalf("cov01=%v, want 2", cov.At(0, 1))
	}
	if !almostEqual(cov.At(1, 1), 4, 1e-12) {
		t.Fatalf("cov11=%v, want 4", cov.At(1, 1))
	}
}

func TestNorm2AndDot(t *testing.T) {
	if got := Norm2([]float64{3, 4}); !almostEqual(got, 5, 1e-15) {
		t.Fatalf("Norm2=%v", got)
	}
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot=%v", got)
	}
}

func TestRowColViews(t *testing.T) {
	m, _ := NewFromRows([][]float64{{1, 2}, {3, 4}})
	rv := m.RowView(0)
	rv[1] = 99
	if m.At(0, 1) != 99 {
		t.Fatal("RowView does not alias")
	}
	r := m.Row(1)
	r[0] = -1
	if m.At(1, 0) != 3 {
		t.Fatal("Row copy aliases backing store")
	}
	c := m.Col(0)
	if c[0] != 1 || c[1] != 3 {
		t.Fatalf("Col=%v", c)
	}
}

// Property: (A*B)^T == B^T * A^T.
func TestPropMulTranspose(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b9))
		r := 2 + int(seed%5)
		k := 2 + int((seed>>8)%5)
		c := 2 + int((seed>>16)%5)
		a := randomMatrix(rng, r, k)
		b := randomMatrix(rng, k, c)
		lhs := Mul(a, b).T()
		rhs := Mul(b.T(), a.T())
		return MaxAbsDiff(lhs, rhs) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: matrix multiplication distributes over addition.
func TestPropMulDistributes(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, ^seed))
		a := randomMatrix(rng, 4, 3)
		b := randomMatrix(rng, 3, 5)
		c := randomMatrix(rng, 3, 5)
		lhs := Mul(a, Add(b, c))
		rhs := Add(Mul(a, b), Mul(a, c))
		return MaxAbsDiff(lhs, rhs) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: centering makes column means zero and is idempotent.
func TestPropCenterIdempotent(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed+1))
		m := randomMatrix(rng, 8, 4)
		for j := 0; j < 4; j++ {
			shift := rng.NormFloat64() * 100
			for i := 0; i < 8; i++ {
				m.Set(i, j, m.At(i, j)+shift)
			}
		}
		m.CenterColumns()
		first := m.Clone()
		m.CenterColumns()
		return MaxAbsDiff(first, m) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestHeadRowsView(t *testing.T) {
	m := New(4, 3)
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			m.Set(i, j, float64(i*10+j))
		}
	}
	h := m.HeadRows(2)
	if h.Rows() != 2 || h.Cols() != 3 {
		t.Fatalf("HeadRows shape %dx%d", h.Rows(), h.Cols())
	}
	if h.At(1, 2) != 12 {
		t.Fatalf("HeadRows content %v", h.At(1, 2))
	}
	// It is a view: writes are visible both ways.
	h.Set(0, 0, -1)
	if m.At(0, 0) != -1 {
		t.Fatal("HeadRows did not share storage")
	}
	if h := m.HeadRows(0); h.Rows() != 0 {
		t.Fatal("empty head")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range HeadRows did not panic")
		}
	}()
	m.HeadRows(5)
}
