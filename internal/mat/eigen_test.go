package mat

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestSymEigenDiagonal(t *testing.T) {
	a, _ := NewFromRows([][]float64{{3, 0, 0}, {0, 1, 0}, {0, 0, 2}})
	vals, vecs, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, 1}
	for i, v := range want {
		if !almostEqual(vals[i], v, 1e-12) {
			t.Fatalf("vals=%v, want %v", vals, want)
		}
	}
	// Eigenvectors of a diagonal matrix are unit vectors (up to sign).
	for j := 0; j < 3; j++ {
		col := vecs.Col(j)
		if !almostEqual(Norm2(col), 1, 1e-12) {
			t.Fatalf("eigenvector %d not unit norm: %v", j, col)
		}
	}
}

func TestSymEigenKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a, _ := NewFromRows([][]float64{{2, 1}, {1, 2}})
	vals, vecs, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(vals[0], 3, 1e-12) || !almostEqual(vals[1], 1, 1e-12) {
		t.Fatalf("vals=%v, want [3 1]", vals)
	}
	// First eigenvector should be (1,1)/sqrt(2) up to sign.
	v0 := vecs.Col(0)
	if !almostEqual(math.Abs(v0[0]), 1/math.Sqrt2, 1e-10) || !almostEqual(math.Abs(v0[1]), 1/math.Sqrt2, 1e-10) {
		t.Fatalf("v0=%v", v0)
	}
}

func TestSymEigenRejectsBadInput(t *testing.T) {
	if _, _, err := SymEigen(New(2, 3)); err == nil {
		t.Fatal("non-square accepted")
	}
	ns, _ := NewFromRows([][]float64{{1, 2}, {3, 4}})
	if _, _, err := SymEigen(ns); err == nil {
		t.Fatal("non-symmetric accepted")
	}
}

func randomSymmetric(rng *rand.Rand, n int) *Matrix {
	m := randomMatrix(rng, n, n)
	return Scale(0.5, Add(m, m.T()))
}

func checkDecomposition(t *testing.T, a *Matrix, vals []float64, vecs *Matrix, tol float64) {
	t.Helper()
	n := a.Rows()
	// Reconstruct A = V diag(vals) V^T.
	d := New(n, n)
	for i := 0; i < n; i++ {
		d.Set(i, i, vals[i])
	}
	rec := Mul(Mul(vecs, d), vecs.T())
	if diff := MaxAbsDiff(a, rec); diff > tol {
		t.Fatalf("reconstruction error %v > %v", diff, tol)
	}
	// V orthonormal: V^T V = I.
	vtv := Mul(vecs.T(), vecs)
	if diff := MaxAbsDiff(vtv, Identity(n)); diff > tol {
		t.Fatalf("eigenvectors not orthonormal, error %v", diff)
	}
	// Descending order.
	for i := 1; i < n; i++ {
		if vals[i] > vals[i-1]+1e-12 {
			t.Fatalf("eigenvalues not descending: %v", vals)
		}
	}
}

func TestSymEigenRandom(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 43))
	for _, n := range []int{1, 2, 3, 5, 10, 25, 60} {
		a := randomSymmetric(rng, n)
		vals, vecs, err := SymEigen(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		checkDecomposition(t, a, vals, vecs, 1e-9)
	}
}

func TestSymEigenCovarianceSized(t *testing.T) {
	// Exercise the exact size used by the subspace method (121x121) built
	// from a realistic low-rank-plus-noise data matrix.
	rng := rand.New(rand.NewPCG(7, 8))
	n, p := 400, 121
	x := New(n, p)
	// Three latent temporal patterns shared across columns plus noise.
	for i := 0; i < n; i++ {
		tday := float64(i) / 288
		l1 := math.Sin(2 * math.Pi * tday)
		l2 := math.Cos(4 * math.Pi * tday)
		l3 := math.Sin(6 * math.Pi * tday)
		for j := 0; j < p; j++ {
			v := 5*l1*float64(j%7) + 3*l2*float64(j%3) + l3 + rng.NormFloat64()
			x.Set(i, j, v)
		}
	}
	cov := x.Covariance()
	vals, vecs, err := SymEigen(cov)
	if err != nil {
		t.Fatal(err)
	}
	checkDecomposition(t, cov, vals, vecs, 1e-6)
	// The data has ~3 strong latent dimensions: eigenvalue 4 should be far
	// smaller than eigenvalue 1.
	if vals[3] > vals[0]/100 {
		t.Fatalf("expected low-rank spectrum, got %v ...", vals[:5])
	}
}

// Property: trace is preserved by the eigendecomposition.
func TestPropEigenTrace(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed*2+1))
		n := 2 + int(seed%8)
		a := randomSymmetric(rng, n)
		vals, _, err := SymEigen(a)
		if err != nil {
			return false
		}
		var trace, sum float64
		for i := 0; i < n; i++ {
			trace += a.At(i, i)
			sum += vals[i]
		}
		return math.Abs(trace-sum) < 1e-8*(1+math.Abs(trace))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: eigenvalues of A + cI are eigenvalues of A shifted by c.
func TestPropEigenShift(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed^0xabcdef))
		n := 2 + int(seed%6)
		a := randomSymmetric(rng, n)
		c := rng.NormFloat64() * 10
		shifted := Add(a, Scale(c, Identity(n)))
		va, _, err1 := SymEigen(a)
		vs, _, err2 := SymEigen(shifted)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range va {
			if math.Abs(va[i]+c-vs[i]) > 1e-8*(1+math.Abs(va[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
