package mat

import (
	"math"
	"math/rand/v2"
	"testing"
)

// randomLowRankish builds an n x p matrix with a few strong common factors
// plus noise — the shape of OD traffic matrices.
func randomLowRankish(rng *rand.Rand, n, p, factors int) *Matrix {
	basis := New(factors, p)
	for i := range basis.data {
		basis.data[i] = rng.NormFloat64()
	}
	x := New(n, p)
	for i := 0; i < n; i++ {
		row := x.RowView(i)
		for f := 0; f < factors; f++ {
			w := rng.NormFloat64() * float64(10*(factors-f))
			brow := basis.RowView(f)
			for j := range row {
				row[j] += w * brow[j]
			}
		}
		for j := range row {
			row[j] += rng.NormFloat64()
		}
	}
	return x
}

func TestMulKernelsMatchMul(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	a := New(17, 13)
	b := New(29, 13) // for MulABt: a * bT -> 17x29
	c := New(17, 7)  // for MulAtB: aT * c -> 13x7
	for i := range a.data {
		a.data[i] = rng.NormFloat64()
	}
	for i := range b.data {
		b.data[i] = rng.NormFloat64()
	}
	for i := range c.data {
		c.data[i] = rng.NormFloat64()
	}
	if d := MaxAbsDiff(MulABt(a, b), Mul(a, b.T())); d > 1e-12 {
		t.Fatalf("MulABt differs from reference by %v", d)
	}
	if d := MaxAbsDiff(MulAtB(a, c), Mul(a.T(), c)); d > 1e-12 {
		t.Fatalf("MulAtB differs from reference by %v", d)
	}
}

func TestMulABtDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	a := New(301, 97)
	b := New(211, 97)
	for i := range a.data {
		a.data[i] = rng.NormFloat64()
	}
	for i := range b.data {
		b.data[i] = rng.NormFloat64()
	}
	prev := SetWorkers(1)
	one := MulABt(a, b)
	SetWorkers(7)
	many := MulABt(a, b)
	SetWorkers(prev)
	for i := range one.data {
		if one.data[i] != many.data[i] {
			t.Fatalf("MulABt element %d differs across worker counts", i)
		}
	}
}

func TestFitPCAPartialMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 42))
	x := randomLowRankish(rng, 400, 60, 5)
	full, err := FitPCA(x, true)
	if err != nil {
		t.Fatal(err)
	}
	const m = 12
	part, err := FitPCAPartial(x, m, true)
	if err != nil {
		t.Fatal(err)
	}
	if part.P() != 60 || part.NumComputed() != m {
		t.Fatalf("partial shape P=%d m=%d", part.P(), part.NumComputed())
	}
	for i := 0; i < m; i++ {
		f, p := full.Eigenvalues[i], part.Eigenvalues[i]
		// The 5 strong factors must match tightly; the trailing noise-floor
		// eigenvalues are nearly degenerate, so the iteration legitimately
		// stops while they are only loosely resolved.
		tol := 1e-5
		if i >= 5 {
			tol = 0.02
		}
		if rel := math.Abs(f-p) / (f + 1); rel > tol {
			t.Fatalf("eigenvalue %d: full %g partial %g (rel %g)", i, f, p, rel)
		}
	}
	// Axes agree up to sign.
	for i := 0; i < 5; i++ { // the strong factors; trailing noise axes can rotate
		var dot float64
		for j := 0; j < 60; j++ {
			dot += full.Components.At(j, i) * part.Components.At(j, i)
		}
		if math.Abs(dot) < 0.999 {
			t.Fatalf("axis %d misaligned: |dot| = %v", i, math.Abs(dot))
		}
	}
	// TotalVar must equal the full trace.
	if rel := math.Abs(full.TotalVar-part.TotalVar) / full.TotalVar; rel > 1e-12 {
		t.Fatalf("TotalVar drifted: full %g partial %g", full.TotalVar, part.TotalVar)
	}
	// Residual moments: phi1 exact, phi2/phi3 within the flat-tail model's
	// ballpark of the true values.
	k := 4
	f1, f2, f3 := full.ResidualMoments(k)
	p1, p2, p3 := part.ResidualMoments(k)
	if rel := math.Abs(f1-p1) / f1; rel > 1e-9 {
		t.Fatalf("phi1: full %g partial %g", f1, p1)
	}
	if p2 < 0.5*f2 || p2 > 2*f2 {
		t.Fatalf("phi2 off: full %g partial %g", f2, p2)
	}
	if p3 < 0.1*f3 || p3 > 10*f3 {
		t.Fatalf("phi3 off: full %g partial %g", f3, p3)
	}
}

func TestFitPCAPartialDeterministic(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	x := randomLowRankish(rng, 120, 300, 4) // wide: p > n
	a, err := FitPCAPartial(x, 10, true)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FitPCAPartial(x, 10, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Eigenvalues {
		if a.Eigenvalues[i] != b.Eigenvalues[i] {
			t.Fatalf("eigenvalue %d differs between identical fits", i)
		}
	}
	for i := range a.Components.data {
		if a.Components.data[i] != b.Components.data[i] {
			t.Fatal("components differ between identical fits")
		}
	}
}

func TestFitPCAPartialWideValidation(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	x := randomLowRankish(rng, 50, 200, 3)
	if _, err := FitPCAPartial(x, 0, true); err == nil {
		t.Fatal("m=0 accepted")
	}
	if _, err := FitPCAPartial(x, 201, true); err == nil {
		t.Fatal("m>p accepted")
	}
	// m is clamped to n-1 in the wide regime.
	pca, err := FitPCAPartial(x, 120, true)
	if err != nil {
		t.Fatal(err)
	}
	if pca.NumComputed() != 49 {
		t.Fatalf("m clamp gave %d, want 49", pca.NumComputed())
	}
}

// TestFitPCAPartialWarmMatchesCold: a warm-started fit of the same data
// must land on the same subspace as a cold fit — and be deterministic for
// a fixed warm basis.
func TestFitPCAPartialWarmMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 18))
	x := randomLowRankish(rng, 300, 140, 5)
	cold, err := FitPCAPartial(x, 12, true)
	if err != nil {
		t.Fatal(err)
	}
	// Drift the data slightly and refit warm vs cold.
	y := x.Clone()
	for i := 0; i < y.Rows(); i++ {
		row := y.RowView(i)
		for j := range row {
			row[j] *= 1 + 0.01*math.Sin(float64(i+2*j))
		}
	}
	warm, err := FitPCAPartialWarm(y, 12, true, cold.Components)
	if err != nil {
		t.Fatal(err)
	}
	cold2, err := FitPCAPartial(y, 12, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ { // strong factors
		if rel := math.Abs(warm.Eigenvalues[i]-cold2.Eigenvalues[i]) / (cold2.Eigenvalues[i] + 1); rel > 1e-5 {
			t.Fatalf("eigenvalue %d: warm %g cold %g", i, warm.Eigenvalues[i], cold2.Eigenvalues[i])
		}
		var dot float64
		for j := 0; j < y.Cols(); j++ {
			dot += warm.Components.At(j, i) * cold2.Components.At(j, i)
		}
		if math.Abs(dot) < 0.999 {
			t.Fatalf("axis %d misaligned after warm start: |dot| = %v", i, math.Abs(dot))
		}
	}
	// Deterministic: same inputs, same warm basis, same result.
	again, err := FitPCAPartialWarm(y, 12, true, cold.Components)
	if err != nil {
		t.Fatal(err)
	}
	for i := range warm.Components.data {
		if warm.Components.data[i] != again.Components.data[i] {
			t.Fatal("warm fit not deterministic")
		}
	}
	// A warm basis with the wrong variable count is ignored, not fatal.
	if _, err := FitPCAPartialWarm(y, 12, true, New(3, 3)); err != nil {
		t.Fatalf("mismatched warm basis: %v", err)
	}
}
