// Package mat provides the small dense linear-algebra kernel used by the
// subspace method: row-major matrices, a cyclic Jacobi symmetric
// eigendecomposition, and PCA helpers.
//
// The package is deliberately minimal and stdlib-only. The problem sizes in
// this repository are tiny by numerical-computing standards (the covariance
// of the Abilene OD-flow matrix is 121x121), so clarity and robustness are
// preferred over cache blocking or SIMD. The two superlinear kernels — Mul
// and Gram, and through them Covariance, FitPCA and ProjectionSplit — do
// split their row ranges across goroutines when the flop count warrants it;
// see SetWorkers for the tunable pool size.
package mat

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float64.
//
// The zero value is an empty matrix; use New or NewFromRows to construct a
// usable one. Matrix values are mutable; methods that return a new Matrix
// never alias the receiver's backing storage.
type Matrix struct {
	rows, cols int
	data       []float64
}

// New returns a zeroed rows x cols matrix. It panics if either dimension is
// negative or the product overflows.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewFromRows builds a matrix from a slice of equal-length rows. The data is
// copied. It returns an error if rows are ragged or empty.
func NewFromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return nil, errors.New("mat: no rows")
	}
	c := len(rows[0])
	m := New(len(rows), c)
	for i, r := range rows {
		if len(r) != c {
			return nil, fmt.Errorf("mat: ragged input: row %d has %d entries, want %d", i, len(r), c)
		}
		copy(m.data[i*c:(i+1)*c], r)
	}
	return m, nil
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of range %d", i, m.rows))
	}
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// RowView returns row i as a slice sharing the matrix's backing storage.
// Mutating the returned slice mutates the matrix.
func (m *Matrix) RowView(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of range %d", i, m.rows))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: col %d out of range %d", j, m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// SetCol assigns column j from v, which must have length Rows().
func (m *Matrix) SetCol(j int, v []float64) {
	if len(v) != m.rows {
		panic(fmt.Sprintf("mat: SetCol length %d, want %d", len(v), m.rows))
	}
	for i := 0; i < m.rows; i++ {
		m.data[i*m.cols+j] = v[i]
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := New(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// HeadRows returns the first n rows of m as a view sharing the backing
// storage — no copy, unlike most Matrix methods. Mutating either matrix
// mutates the other. Fits clone their input, so passing a view is the
// allocation-free way to train on a leading window of a larger matrix.
func (m *Matrix) HeadRows(n int) *Matrix {
	if n < 0 || n > m.rows {
		panic(fmt.Sprintf("mat: HeadRows %d out of range %d", n, m.rows))
	}
	return &Matrix{rows: n, cols: m.cols, data: m.data[:n*m.cols]}
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	out := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		ri := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range ri {
			out.data[j*out.cols+i] = v
		}
	}
	return out
}

// Mul returns the matrix product a*b. It panics on dimension mismatch.
// Large products are computed by Workers() goroutines over disjoint row
// blocks of a.
func Mul(a, b *Matrix) *Matrix {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: Mul dimension mismatch %dx%d * %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := New(a.rows, b.cols)
	w := Workers()
	if w <= 1 || a.rows*a.cols*b.cols < parallelFlopThreshold {
		mulRange(out, a, b, 0, a.rows)
		return out
	}
	parallelRows(a.rows, w, func(lo, hi int) { mulRange(out, a, b, lo, hi) })
	return out
}

// MulVec returns the matrix-vector product m*v.
func MulVec(m *Matrix, v []float64) []float64 {
	if m.cols != len(v) {
		panic(fmt.Sprintf("mat: MulVec dimension mismatch %dx%d * %d", m.rows, m.cols, len(v)))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, rv := range row {
			s += rv * v[j]
		}
		out[i] = s
	}
	return out
}

// Add returns a+b as a new matrix.
func Add(a, b *Matrix) *Matrix {
	sameShape(a, b, "Add")
	out := a.Clone()
	for i, v := range b.data {
		out.data[i] += v
	}
	return out
}

// Sub returns a-b as a new matrix.
func Sub(a, b *Matrix) *Matrix {
	sameShape(a, b, "Sub")
	out := a.Clone()
	for i, v := range b.data {
		out.data[i] -= v
	}
	return out
}

// Scale returns c*m as a new matrix.
func Scale(c float64, m *Matrix) *Matrix {
	out := m.Clone()
	for i := range out.data {
		out.data[i] *= c
	}
	return out
}

func sameShape(a, b *Matrix, op string) {
	if a.rows != b.rows || a.cols != b.cols {
		panic(fmt.Sprintf("mat: %s shape mismatch %dx%d vs %dx%d", op, a.rows, a.cols, b.rows, b.cols))
	}
}

// ColMeans returns the per-column means of m.
func (m *Matrix) ColMeans() []float64 {
	means := make([]float64, m.cols)
	if m.rows == 0 {
		return means
	}
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			means[j] += v
		}
	}
	inv := 1 / float64(m.rows)
	for j := range means {
		means[j] *= inv
	}
	return means
}

// CenterColumns subtracts the column means in place and returns the means
// that were removed.
func (m *Matrix) CenterColumns() []float64 {
	means := m.ColMeans()
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j := range row {
			row[j] -= means[j]
		}
	}
	return means
}

// Gram returns the Gram matrix m^T m (cols x cols), exploiting symmetry.
// Large accumulations run on Workers() goroutines, each summing a private
// partial triangle that is reduced at the end.
func (m *Matrix) Gram() *Matrix {
	w := Workers()
	if w <= 1 || m.rows*m.cols*m.cols/2 < parallelFlopThreshold {
		out := New(m.cols, m.cols)
		gramUpper(out, m, 0, m.rows)
		mirrorUpper(out)
		return out
	}
	return gramParallel(m, w)
}

// Covariance returns the sample covariance matrix of the columns of m,
// (Xc^T Xc)/(n-1) with Xc the column-centered data. m is not modified.
func (m *Matrix) Covariance() *Matrix {
	if m.rows < 2 {
		panic("mat: Covariance needs at least 2 rows")
	}
	c := m.Clone()
	c.CenterColumns()
	g := c.Gram()
	return Scale(1/float64(m.rows-1), g)
}

// Norm2 returns the Euclidean (Frobenius) norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Dot returns the dot product of a and b, which must have equal length.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// MaxAbsDiff returns the largest absolute elementwise difference between a
// and b. Useful in tests.
func MaxAbsDiff(a, b *Matrix) float64 {
	sameShape(a, b, "MaxAbsDiff")
	var max float64
	for i, v := range a.data {
		d := math.Abs(v - b.data[i])
		if d > max {
			max = d
		}
	}
	return max
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// IsSymmetric reports whether m is square and symmetric to within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			if math.Abs(m.data[i*m.cols+j]-m.data[j*m.cols+i]) > tol {
				return false
			}
		}
	}
	return true
}

// String renders a small matrix for debugging; large matrices are elided.
func (m *Matrix) String() string {
	if m.rows*m.cols > 100 {
		return fmt.Sprintf("Matrix(%dx%d)", m.rows, m.cols)
	}
	s := ""
	for i := 0; i < m.rows; i++ {
		s += fmt.Sprintf("%v\n", m.RowView(i))
	}
	return s
}
