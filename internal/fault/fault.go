// Package fault is the error-injection layer behind the chaos tests: a
// registry of named injection points threaded through the durability and
// detection paths (checkpoint writes, background refits, the checkpoint
// timer) so tests can force the failures that production will eventually
// see — a disk filling up mid-snapshot, a write torn halfway through, a
// refit that takes longer than a drain, a clock that ticks when the test
// says so — without monkey-patching or sleeping.
//
// The zero cost of the healthy path is the design constraint: every hook is
// a method on a *Injector that is nil in production, and every method is
// nil-receiver safe, so an unarmed point costs one pointer comparison.
//
//	var inj *fault.Injector            // nil in production
//	if err := inj.Fire("checkpoint.write"); err != nil { ... } // no-op
//
//	inj := fault.NewInjector()         // in a test
//	inj.Arm("checkpoint.write", fault.Fault{Err: fault.ErrDiskFull})
package fault

import (
	"errors"
	"io"
	"sync"
	"time"
)

// ErrDiskFull is the canonical injected storage failure — what a checkpoint
// write sees when the disk fills mid-snapshot.
var ErrDiskFull = errors.New("fault: injected disk full")

// Fault configures one armed injection point.
type Fault struct {
	// Err is returned by Fire (and by Writer writes) once the fault
	// triggers. A zero Err makes Fire succeed (useful to arm only Delay).
	Err error
	// Skip is how many Fires succeed before the fault starts triggering:
	// Skip 0 fails immediately, Skip 2 lets two calls through. Writer
	// budgets (below) are independent of Skip.
	Skip int
	// Count bounds how many times the fault triggers before the point
	// disarms itself (0 = forever). A Count of 1 injects exactly one
	// failure and then heals — the transient-error shape.
	Count int
	// Delay is slept by Delay() — and by Fire before returning — while the
	// point is armed: the slow-refit / slow-disk injection.
	Delay time.Duration
	// WriteBudget, when >= 0, makes Writer pass exactly that many bytes
	// through to the underlying writer and then fail every subsequent
	// Write with Err — a write torn mid-stream, partial prefix on disk.
	// Negative (the zero value via Arm, which defaults it) means writes
	// are governed by Fire semantics instead.
	WriteBudget int64
}

// point is the mutable state of one armed injection point.
type point struct {
	f       Fault
	fires   int // successful Fires consumed against Skip
	trips   int // times the fault actually triggered
	written int64
}

// Injector is a set of armed fault points keyed by name. The zero value
// and the nil pointer both inject nothing; NewInjector returns one ready
// to Arm. All methods are safe for concurrent use.
type Injector struct {
	mu     sync.Mutex
	points map[string]*point
}

// NewInjector returns an empty injector.
func NewInjector() *Injector { return &Injector{} }

// Arm configures fault injection at a named point, replacing any previous
// arming. A negative WriteBudget is normalized to "no budget".
func (in *Injector) Arm(name string, f Fault) {
	if f.WriteBudget == 0 {
		f.WriteBudget = -1
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.points == nil {
		in.points = map[string]*point{}
	}
	in.points[name] = &point{f: f}
}

// ArmTornWrite is the common torn-write arming: the point's Writer passes n
// bytes and then fails with ErrDiskFull.
func (in *Injector) ArmTornWrite(name string, n int64) {
	in.Arm(name, Fault{Err: ErrDiskFull, WriteBudget: n})
	if n == 0 {
		// WriteBudget 0 is meaningful here (tear before the first byte);
		// Arm normalized it away, so restore it.
		in.mu.Lock()
		in.points[name].f.WriteBudget = 0
		in.mu.Unlock()
	}
}

// Disarm removes a point; subsequent Fires succeed.
func (in *Injector) Disarm(name string) {
	if in == nil {
		return
	}
	in.mu.Lock()
	delete(in.points, name)
	in.mu.Unlock()
}

// Trips reports how many times the named point has actually injected a
// failure — the assertion hook for "the fault fired and was survived".
func (in *Injector) Trips(name string) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if p := in.points[name]; p != nil {
		return p.trips
	}
	return 0
}

// Fire consults the named point: nil when unarmed, still skipping, armed
// with no Err, or exhausted; the configured Err (after the configured
// Delay) when the fault triggers. Safe on a nil receiver.
func (in *Injector) Fire(name string) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	p := in.points[name]
	if p == nil {
		in.mu.Unlock()
		return nil
	}
	d := p.f.Delay
	var err error
	if p.fires < p.f.Skip {
		p.fires++
	} else if p.f.Err != nil {
		err = p.f.Err
		p.trips++
		if p.f.Count > 0 && p.trips >= p.f.Count {
			delete(in.points, name)
		}
	}
	in.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
	return err
}

// Delay sleeps the named point's configured Delay when armed — the
// pure-latency injection (slow refit, slow disk) with no error. Safe on a
// nil receiver.
func (in *Injector) Delay(name string) {
	if in == nil {
		return
	}
	in.mu.Lock()
	var d time.Duration
	if p := in.points[name]; p != nil {
		d = p.f.Delay
		p.trips++
	}
	in.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
}

// Writer wraps w with the named point's write faults. With a WriteBudget
// armed, exactly that many bytes pass through before every subsequent
// Write fails with the point's Err (the torn-write shape: a partial prefix
// lands, the rest never does). Otherwise each Write consults Fire. Safe on
// a nil receiver (returns w unchanged); wrapping is cheap either way.
func (in *Injector) Writer(name string, w io.Writer) io.Writer {
	if in == nil {
		return w
	}
	return &faultWriter{in: in, name: name, w: w}
}

type faultWriter struct {
	in   *Injector
	name string
	w    io.Writer
}

func (fw *faultWriter) Write(b []byte) (int, error) {
	fw.in.mu.Lock()
	p := fw.in.points[fw.name]
	if p != nil && p.f.WriteBudget >= 0 {
		remaining := p.f.WriteBudget - p.written
		if remaining <= 0 {
			p.trips++
			err := p.f.Err
			fw.in.mu.Unlock()
			return 0, err
		}
		if int64(len(b)) > remaining {
			// Tear mid-buffer: the allowed prefix reaches the disk, the
			// Write still reports failure — exactly what a full filesystem
			// does.
			p.written += remaining
			p.trips++
			err := p.f.Err
			fw.in.mu.Unlock()
			n, werr := fw.w.Write(b[:remaining])
			if werr != nil {
				return n, werr
			}
			return n, err
		}
		p.written += int64(len(b))
		fw.in.mu.Unlock()
		return fw.w.Write(b)
	}
	fw.in.mu.Unlock()
	if err := fw.in.Fire(fw.name); err != nil {
		return 0, err
	}
	return fw.w.Write(b)
}

// Clock abstracts the periodic-checkpoint timer so chaos tests can tick it
// deterministically instead of sleeping. The nil *ManualClock-free
// production path uses WallClock.
type Clock interface {
	// Ticker returns a channel delivering ticks at roughly every d, and a
	// stop function releasing its resources.
	Ticker(d time.Duration) (<-chan time.Time, func())
}

// WallClock is the production Clock: a real time.Ticker.
type WallClock struct{}

// Ticker returns a real time.Ticker channel.
func (WallClock) Ticker(d time.Duration) (<-chan time.Time, func()) {
	t := time.NewTicker(d)
	return t.C, t.Stop
}

// ManualClock is the test Clock: ticks fire only when Tick is called, so a
// test drives "the timer went off" as a plain synchronous event.
type ManualClock struct {
	mu sync.Mutex
	ch chan time.Time
}

// NewManualClock returns a clock whose ticker never fires on its own.
func NewManualClock() *ManualClock {
	return &ManualClock{ch: make(chan time.Time, 1)}
}

// Ticker ignores the interval and returns the manually driven channel.
func (c *ManualClock) Ticker(time.Duration) (<-chan time.Time, func()) {
	return c.ch, func() {}
}

// Tick fires one tick, blocking until the consumer picks it up or buffer
// space frees.
func (c *ManualClock) Tick() { c.ch <- time.Time{} }
