package fault

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if err := in.Fire("x"); err != nil {
		t.Fatalf("nil injector fired: %v", err)
	}
	in.Delay("x") // must not panic
	in.Disarm("x")
	if in.Trips("x") != 0 {
		t.Fatal("nil injector counted trips")
	}
	var buf bytes.Buffer
	w := in.Writer("x", &buf)
	if _, err := w.Write([]byte("ok")); err != nil || buf.String() != "ok" {
		t.Fatalf("nil injector writer intercepted: %v %q", err, buf.String())
	}
}

func TestFireSkipAndCount(t *testing.T) {
	in := NewInjector()
	boom := errors.New("boom")
	in.Arm("p", Fault{Err: boom, Skip: 2, Count: 1})
	if err := in.Fire("p"); err != nil {
		t.Fatalf("skip 1: %v", err)
	}
	if err := in.Fire("p"); err != nil {
		t.Fatalf("skip 2: %v", err)
	}
	if err := in.Fire("p"); !errors.Is(err, boom) {
		t.Fatalf("fire 3: got %v, want boom", err)
	}
	// Count 1: the point self-disarms after one trip.
	if err := in.Fire("p"); err != nil {
		t.Fatalf("after self-disarm: %v", err)
	}
	if got := in.Trips("p"); got != 0 {
		t.Fatalf("trips after self-disarm = %d (point deleted), want 0", got)
	}
}

func TestFireForeverAndDisarm(t *testing.T) {
	in := NewInjector()
	boom := errors.New("boom")
	in.Arm("p", Fault{Err: boom})
	for i := 0; i < 3; i++ {
		if err := in.Fire("p"); !errors.Is(err, boom) {
			t.Fatalf("fire %d: %v", i, err)
		}
	}
	if in.Trips("p") != 3 {
		t.Fatalf("trips = %d, want 3", in.Trips("p"))
	}
	in.Disarm("p")
	if err := in.Fire("p"); err != nil {
		t.Fatalf("after disarm: %v", err)
	}
}

func TestTornWriter(t *testing.T) {
	in := NewInjector()
	in.ArmTornWrite("w", 5)
	var buf bytes.Buffer
	w := in.Writer("w", &buf)
	n, err := w.Write([]byte("abc")) // within budget
	if n != 3 || err != nil {
		t.Fatalf("write 1: n=%d err=%v", n, err)
	}
	n, err = w.Write([]byte("defg")) // tears after 2 more bytes
	if n != 2 || !errors.Is(err, ErrDiskFull) {
		t.Fatalf("torn write: n=%d err=%v, want 2, ErrDiskFull", n, err)
	}
	if buf.String() != "abcde" {
		t.Fatalf("disk holds %q, want the 5-byte torn prefix", buf.String())
	}
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrDiskFull) {
		t.Fatalf("post-tear write: %v", err)
	}
	if in.Trips("w") < 2 {
		t.Fatalf("trips = %d, want >= 2", in.Trips("w"))
	}
}

func TestTornWriterZeroBudget(t *testing.T) {
	in := NewInjector()
	in.ArmTornWrite("w", 0)
	var buf bytes.Buffer
	if _, err := in.Writer("w", &buf).Write([]byte("x")); !errors.Is(err, ErrDiskFull) {
		t.Fatalf("zero-budget write: %v", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("zero-budget wrote %d bytes", buf.Len())
	}
}

func TestWriterFireMode(t *testing.T) {
	// Without a budget, the writer defers to Fire semantics: Skip lets
	// whole Writes through, then every Write fails.
	in := NewInjector()
	in.Arm("w", Fault{Err: ErrDiskFull, Skip: 1})
	var buf bytes.Buffer
	w := in.Writer("w", &buf)
	if _, err := w.Write([]byte("ok")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	if _, err := w.Write([]byte("no")); !errors.Is(err, ErrDiskFull) {
		t.Fatalf("write 2: %v", err)
	}
	if buf.String() != "ok" {
		t.Fatalf("disk holds %q", buf.String())
	}
}

func TestDelay(t *testing.T) {
	in := NewInjector()
	in.Arm("slow", Fault{Delay: 30 * time.Millisecond})
	start := time.Now()
	in.Delay("slow")
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("delay slept %v, want ~30ms", d)
	}
	if in.Trips("slow") != 1 {
		t.Fatalf("delay trips = %d, want 1", in.Trips("slow"))
	}
}

func TestManualClock(t *testing.T) {
	c := NewManualClock()
	ch, stop := c.Ticker(time.Hour)
	defer stop()
	select {
	case <-ch:
		t.Fatal("manual clock ticked on its own")
	case <-time.After(10 * time.Millisecond):
	}
	c.Tick()
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("manual tick never delivered")
	}
}
