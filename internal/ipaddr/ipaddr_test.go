package ipaddr

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestParseAndString(t *testing.T) {
	for _, s := range []string{"0.0.0.0", "10.1.2.3", "198.32.8.84", "255.255.255.255"} {
		a, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if a.String() != s {
			t.Fatalf("round trip %q -> %q", s, a.String())
		}
	}
}

func TestParseRejects(t *testing.T) {
	for _, s := range []string{"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "1.2.3.4x"} {
		if _, err := Parse(s); err == nil {
			t.Fatalf("Parse(%q) accepted", s)
		}
	}
}

func TestFromOctets(t *testing.T) {
	a := FromOctets(198, 32, 8, 84)
	if a != 0xC6200854 {
		t.Fatalf("FromOctets = %x", uint32(a))
	}
}

func TestAnonymize(t *testing.T) {
	a := FromOctets(10, 0, 7, 255) // last 11 bits: 0b111_11111111
	anon := a.Anonymize()
	if anon != FromOctets(10, 0, 0, 0) {
		t.Fatalf("Anonymize(%s) = %s", a, anon)
	}
	// Idempotent.
	if anon.Anonymize() != anon {
		t.Fatal("Anonymize not idempotent")
	}
	// Keeps the top 21 bits.
	b := FromOctets(10, 1, 8, 1) // bit 11 set (0x0800)
	if b.Anonymize() != FromOctets(10, 1, 8, 0) {
		t.Fatalf("Anonymize(%s) = %s", b, b.Anonymize())
	}
}

func TestPrefixContains(t *testing.T) {
	p := MustPrefix("10.1.0.0", 16)
	if !p.Contains(FromOctets(10, 1, 200, 3)) {
		t.Fatal("prefix should contain member")
	}
	if p.Contains(FromOctets(10, 2, 0, 0)) {
		t.Fatal("prefix should not contain outsider")
	}
	if p.NumAddrs() != 65536 {
		t.Fatalf("NumAddrs=%d", p.NumAddrs())
	}
	if p.String() != "10.1.0.0/16" {
		t.Fatalf("String=%s", p)
	}
}

func TestNewPrefixCanonicalizes(t *testing.T) {
	p, err := NewPrefix(FromOctets(10, 1, 2, 3), 16)
	if err != nil {
		t.Fatal(err)
	}
	if p.Addr != FromOctets(10, 1, 0, 0) {
		t.Fatalf("host bits not cleared: %s", p)
	}
	if _, err := NewPrefix(0, 33); err == nil {
		t.Fatal("bits=33 accepted")
	}
	if _, err := NewPrefix(0, -1); err == nil {
		t.Fatal("bits=-1 accepted")
	}
}

func TestOverlaps(t *testing.T) {
	a := MustPrefix("10.0.0.0", 8)
	b := MustPrefix("10.5.0.0", 16)
	c := MustPrefix("11.0.0.0", 8)
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Fatal("nested prefixes must overlap")
	}
	if a.Overlaps(c) {
		t.Fatal("disjoint prefixes must not overlap")
	}
}

func TestRandomAndNthWithinPrefix(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	p := MustPrefix("172.16.4.0", 22)
	for i := 0; i < 200; i++ {
		if a := p.Random(rng); !p.Contains(a) {
			t.Fatalf("Random produced %s outside %s", a, p)
		}
	}
	for i := uint64(0); i < 2000; i += 37 {
		if a := p.Nth(i); !p.Contains(a) {
			t.Fatalf("Nth(%d) produced %s outside %s", i, a, p)
		}
	}
	// Nth wraps around the prefix size.
	if p.Nth(0) != p.Nth(p.NumAddrs()) {
		t.Fatal("Nth does not wrap")
	}
}

// Property: anonymization only ever clears bits, never sets them, and
// anonymized addresses of the same /21 collide.
func TestPropAnonymize(t *testing.T) {
	f := func(raw uint32) bool {
		a := Addr(raw)
		anon := a.Anonymize()
		if anon&^a != 0 {
			return false
		}
		// Same upper 21 bits -> same anonymized value.
		sibling := (a &^ 0x7FF) | (a+1)&0x7FF
		return sibling.Anonymize() == anon
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Parse and String are inverse for all addresses.
func TestPropParseStringRoundTrip(t *testing.T) {
	f := func(raw uint32) bool {
		a := Addr(raw)
		b, err := Parse(a.String())
		return err == nil && a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
