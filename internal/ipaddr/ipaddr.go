// Package ipaddr provides the compact IPv4 value types used throughout the
// simulator: addresses as uint32, CIDR prefixes with containment tests, the
// Abilene-style destination anonymization (zeroing the last 11 bits), and
// deterministic synthesis of customer address space.
//
// A dedicated numeric type (rather than net/netip) keeps flow records
// hashable, tiny and allocation-free on the hot path, in the spirit of
// gopacket's Endpoint values.
package ipaddr

import (
	"fmt"
	"math/rand/v2"
)

// Addr is an IPv4 address in host byte order.
type Addr uint32

// AnonBits is the number of trailing destination-address bits zeroed by the
// Abilene anonymization procedure described in the paper (Section 2.1).
const AnonBits = 11

// FromOctets builds an Addr from four octets.
func FromOctets(a, b, c, d byte) Addr {
	return Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// Parse parses dotted-quad notation. It returns an error for anything that
// is not exactly four dot-separated decimal octets.
func Parse(s string) (Addr, error) {
	var a, b, c, d int
	var tail string
	n, err := fmt.Sscanf(s, "%d.%d.%d.%d%s", &a, &b, &c, &d, &tail)
	if err == nil && n == 5 {
		return 0, fmt.Errorf("ipaddr: trailing garbage in %q", s)
	}
	if n != 4 {
		return 0, fmt.Errorf("ipaddr: cannot parse %q", s)
	}
	for _, o := range []int{a, b, c, d} {
		if o < 0 || o > 255 {
			return 0, fmt.Errorf("ipaddr: octet out of range in %q", s)
		}
	}
	return FromOctets(byte(a), byte(b), byte(c), byte(d)), nil
}

// String renders the address as a dotted quad.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// Anonymize zeroes the trailing AnonBits bits, mimicking the privacy
// procedure Abilene applies to destination addresses before export.
func (a Addr) Anonymize() Addr {
	return a &^ Addr(1<<AnonBits-1)
}

// Prefix is a CIDR prefix: the network address plus a mask length.
type Prefix struct {
	Addr Addr
	Bits int
}

// MustPrefix builds a prefix and panics on invalid input; intended for
// static topology tables.
func MustPrefix(s string, bits int) Prefix {
	a, err := Parse(s)
	if err != nil {
		panic(err)
	}
	p, err := NewPrefix(a, bits)
	if err != nil {
		panic(err)
	}
	return p
}

// NewPrefix builds a prefix, validating the mask length and canonicalizing
// the network address (host bits are cleared).
func NewPrefix(a Addr, bits int) (Prefix, error) {
	if bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("ipaddr: prefix length %d out of [0,32]", bits)
	}
	return Prefix{Addr: a & mask(bits), Bits: bits}, nil
}

func mask(bits int) Addr {
	if bits <= 0 {
		return 0
	}
	return ^Addr(0) << (32 - bits)
}

// Contains reports whether the prefix covers address a.
func (p Prefix) Contains(a Addr) bool {
	return a&mask(p.Bits) == p.Addr
}

// Overlaps reports whether two prefixes share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	if p.Bits > q.Bits {
		p, q = q, p
	}
	return q.Addr&mask(p.Bits) == p.Addr
}

// String renders CIDR notation.
func (p Prefix) String() string {
	return fmt.Sprintf("%s/%d", p.Addr, p.Bits)
}

// NumAddrs returns the number of addresses covered by the prefix.
func (p Prefix) NumAddrs() uint64 {
	return 1 << (32 - p.Bits)
}

// Random returns a uniformly random address inside the prefix.
func (p Prefix) Random(rng *rand.Rand) Addr {
	span := p.NumAddrs()
	return p.Addr + Addr(rng.Uint64N(span))
}

// Nth returns the i-th address of the prefix (i modulo the prefix size), a
// deterministic alternative to Random for reproducible host selection.
func (p Prefix) Nth(i uint64) Addr {
	return p.Addr + Addr(i%p.NumAddrs())
}
