// Package routing implements the control-plane substrate of the simulator:
// IS-IS-like shortest-path routing over the Abilene backbone (Dijkstra with
// deterministic ECMP tie-breaking), a binary longest-prefix-match trie in
// the style of a BGP RIB, and the ingress/egress resolution procedure the
// paper uses to aggregate IP flows into OD flows (router configuration files
// for ingress, BGP/IS-IS tables for egress, computed once per day).
package routing

import (
	"netwide/internal/ipaddr"
)

// Trie is a binary (one bit per level) longest-prefix-match trie mapping
// IPv4 prefixes to values of type V. The zero value is an empty trie ready
// to use. It is not safe for concurrent mutation.
type Trie[V any] struct {
	root *trieNode[V]
	size int
}

type trieNode[V any] struct {
	child [2]*trieNode[V]
	val   V
	set   bool
}

// Insert adds or replaces the value for prefix p.
func (t *Trie[V]) Insert(p ipaddr.Prefix, v V) {
	if t.root == nil {
		t.root = &trieNode[V]{}
	}
	n := t.root
	for i := 0; i < p.Bits; i++ {
		b := (p.Addr >> (31 - i)) & 1
		if n.child[b] == nil {
			n.child[b] = &trieNode[V]{}
		}
		n = n.child[b]
	}
	if !n.set {
		t.size++
	}
	n.val, n.set = v, true
}

// Lookup returns the value of the longest prefix containing a, and whether
// any prefix matched.
func (t *Trie[V]) Lookup(a ipaddr.Addr) (V, bool) {
	var best V
	found := false
	n := t.root
	for i := 0; n != nil; i++ {
		if n.set {
			best, found = n.val, true
		}
		if i == 32 {
			break
		}
		b := (a >> (31 - i)) & 1
		n = n.child[b]
	}
	return best, found
}

// LookupPrefix returns the value stored exactly at prefix p.
func (t *Trie[V]) LookupPrefix(p ipaddr.Prefix) (V, bool) {
	n := t.root
	for i := 0; i < p.Bits && n != nil; i++ {
		b := (p.Addr >> (31 - i)) & 1
		n = n.child[b]
	}
	if n == nil || !n.set {
		var zero V
		return zero, false
	}
	return n.val, true
}

// Remove deletes the entry stored exactly at prefix p, reporting whether it
// existed. Interior nodes are left in place (the trie is small and rebuilt
// daily, so no pruning is needed).
func (t *Trie[V]) Remove(p ipaddr.Prefix) bool {
	n := t.root
	for i := 0; i < p.Bits && n != nil; i++ {
		b := (p.Addr >> (31 - i)) & 1
		n = n.child[b]
	}
	if n == nil || !n.set {
		return false
	}
	var zero V
	n.val, n.set = zero, false
	t.size--
	return true
}

// Len returns the number of stored prefixes.
func (t *Trie[V]) Len() int { return t.size }

// Walk visits every stored prefix/value pair in address order.
func (t *Trie[V]) Walk(fn func(ipaddr.Prefix, V)) {
	var rec func(n *trieNode[V], addr ipaddr.Addr, depth int)
	rec = func(n *trieNode[V], addr ipaddr.Addr, depth int) {
		if n == nil {
			return
		}
		if n.set {
			p, _ := ipaddr.NewPrefix(addr, depth)
			fn(p, n.val)
		}
		if depth == 32 {
			return
		}
		rec(n.child[0], addr, depth+1)
		rec(n.child[1], addr|1<<(31-depth), depth+1)
	}
	rec(t.root, 0, 0)
}
