package routing

import (
	"fmt"
	"math/rand/v2"

	"netwide/internal/ipaddr"
	"netwide/internal/topology"
)

// Resolver maps the (source, destination) addresses of an IP flow to the
// Origin-Destination PoP pair carrying it, reproducing the aggregation
// procedure of Section 2.1 of the paper:
//
//   - Ingress PoP: from router configuration files — here, the customer
//     prefix table announced toward the backbone (a longest-prefix match on
//     the source address).
//   - Egress PoP: from BGP and IS-IS tables, augmented with configuration
//     files — a longest-prefix match on the (anonymized) destination
//     address.
//
// Like the paper's tables, a Resolver is a daily snapshot: routing changes
// (e.g. an ingress shift) only take effect when a new snapshot is built.
// The paper resolves ~93% of flows; UnresolvedFraction simulates the
// remainder, dropped uniformly at random.
type Resolver struct {
	ingress Trie[topology.PoP]
	egress  Trie[topology.PoP]
	// UnresolvedFraction is the probability that a flow cannot be resolved
	// (missing config/BGP coverage) and is dropped from OD aggregation.
	UnresolvedFraction float64
}

// BuildResolver constructs the daily snapshot from the topology. The
// overrides map (customer name -> attachment PoP) models "downstream
// traffic engineering": a multihomed customer announcing its prefixes from
// a non-primary home, which is exactly the INGRESS-SHIFT anomaly of the
// paper. A nil map means every customer uses its primary home.
func BuildResolver(top *topology.Topology, overrides map[string]topology.PoP, unresolvedFraction float64) (*Resolver, error) {
	if unresolvedFraction < 0 || unresolvedFraction >= 1 {
		return nil, fmt.Errorf("routing: unresolved fraction %v out of [0,1)", unresolvedFraction)
	}
	r := &Resolver{UnresolvedFraction: unresolvedFraction}
	for i := range top.Customers {
		c := &top.Customers[i]
		home := c.Homes[0]
		if ov, ok := overrides[c.Name]; ok {
			valid := false
			for _, h := range c.Homes {
				if h == ov {
					valid = true
				}
			}
			if !valid {
				return nil, fmt.Errorf("routing: override for %s to %s, but customer is not homed there", c.Name, ov)
			}
			home = ov
		}
		for _, p := range c.Prefixes {
			// The paper notes that Abilene anonymizes the last 11 bits of
			// destination addresses, and that this is not a significant
			// concern because there are few prefixes longer than /21 in the
			// routing tables. Enforce that invariant here.
			if p.Bits > 32-ipaddr.AnonBits {
				return nil, fmt.Errorf("routing: prefix %s longer than /%d cannot be resolved under anonymization", p, 32-ipaddr.AnonBits)
			}
			r.ingress.Insert(p, home)
			r.egress.Insert(p, home)
		}
	}
	return r, nil
}

// ResolveSrc returns the ingress PoP for a flow source address.
func (r *Resolver) ResolveSrc(src ipaddr.Addr) (topology.PoP, bool) {
	return r.ingress.Lookup(src)
}

// ResolveDst returns the egress PoP for a flow destination address. The
// address is anonymized first — the resolver only ever sees what the
// measurement system would export.
func (r *Resolver) ResolveDst(dst ipaddr.Addr) (topology.PoP, bool) {
	return r.egress.Lookup(dst.Anonymize())
}

// Resolve maps a (src, dst) address pair to its OD pair. The rng drives the
// simulated resolution failures; pass nil to disable them.
func (r *Resolver) Resolve(src, dst ipaddr.Addr, rng *rand.Rand) (topology.ODPair, bool) {
	if rng != nil && r.UnresolvedFraction > 0 && rng.Float64() < r.UnresolvedFraction {
		return topology.ODPair{}, false
	}
	in, ok := r.ResolveSrc(src)
	if !ok {
		return topology.ODPair{}, false
	}
	out, ok := r.ResolveDst(dst)
	if !ok {
		return topology.ODPair{}, false
	}
	return topology.ODPair{Origin: in, Dest: out}, true
}

// TableSize returns the number of prefixes in the (ingress, egress) tables.
func (r *Resolver) TableSize() (int, int) {
	return r.ingress.Len(), r.egress.Len()
}
