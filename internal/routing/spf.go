package routing

import (
	"container/heap"
	"fmt"
	"math"

	"netwide/internal/topology"
)

// SPF holds the all-pairs shortest-path state computed from the backbone
// IGP weights of an arbitrary topology: distance and next hop for every
// (source, destination) PoP pair, plus per-directed-link indexes used for
// link-load accounting. The n x n tables are stored flat (row = source).
type SPF struct {
	n       int
	dist    []float64      // n*n, dist[src*n+dst]
	nextHop []topology.PoP // n*n
	// linkIndex maps a directed PoP adjacency to a dense index in [0, 2L).
	linkIndex map[[2]topology.PoP]int
	links     [][2]topology.PoP
}

type pqItem struct {
	pop  topology.PoP
	dist float64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// ComputeSPF runs Dijkstra from every PoP over the topology's IGP weights.
// ECMP ties are broken deterministically toward the lower-numbered neighbor
// so that routing (and therefore every downstream experiment) is
// reproducible.
func ComputeSPF(top *topology.Topology) (*SPF, error) {
	if err := top.Validate(); err != nil {
		return nil, fmt.Errorf("routing: invalid topology: %w", err)
	}
	n := top.NumPoPs()
	s := &SPF{
		n:         n,
		dist:      make([]float64, n*n),
		nextHop:   make([]topology.PoP, n*n),
		linkIndex: map[[2]topology.PoP]int{},
	}
	for _, l := range top.Links {
		s.linkIndex[[2]topology.PoP{l.A, l.B}] = len(s.links)
		s.links = append(s.links, [2]topology.PoP{l.A, l.B})
		s.linkIndex[[2]topology.PoP{l.B, l.A}] = len(s.links)
		s.links = append(s.links, [2]topology.PoP{l.B, l.A})
	}

	type edge struct {
		to topology.PoP
		w  float64
	}
	adj := make([][]edge, n)
	for _, l := range top.Links {
		adj[l.A] = append(adj[l.A], edge{l.B, l.Weight})
		adj[l.B] = append(adj[l.B], edge{l.A, l.Weight})
	}

	dist := make([]float64, n)
	prev := make([]topology.PoP, n)
	done := make([]bool, n)
	for src := topology.PoP(0); int(src) < n; src++ {
		for i := range dist {
			dist[i] = math.Inf(1)
			prev[i] = -1
			done[i] = false
		}
		dist[src] = 0
		q := &pq{{src, 0}}
		for q.Len() > 0 {
			it := heap.Pop(q).(pqItem)
			u := it.pop
			if done[u] {
				continue
			}
			done[u] = true
			for _, e := range adj[u] {
				nd := dist[u] + e.w
				// Deterministic ECMP: on an exact tie prefer the path whose
				// predecessor is the lower-numbered PoP.
				if nd < dist[e.to] || (nd == dist[e.to] && prev[e.to] > u) {
					dist[e.to] = nd
					prev[e.to] = u
					heap.Push(q, pqItem{e.to, nd})
				}
			}
		}
		for dst := topology.PoP(0); int(dst) < n; dst++ {
			s.dist[int(src)*n+int(dst)] = dist[dst]
			if dst == src {
				s.nextHop[int(src)*n+int(dst)] = src
				continue
			}
			// Walk back from dst to find the first hop out of src.
			hop := dst
			for prev[hop] != src {
				hop = prev[hop]
				if hop < 0 {
					return nil, fmt.Errorf("routing: no path %s -> %s", top.PoPName(src), top.PoPName(dst))
				}
			}
			s.nextHop[int(src)*n+int(dst)] = hop
		}
	}
	return s, nil
}

// NumPoPs returns the PoP count of the topology the SPF was computed from.
func (s *SPF) NumPoPs() int { return s.n }

// Dist returns the IGP distance between two PoPs.
func (s *SPF) Dist(a, b topology.PoP) float64 { return s.dist[int(a)*s.n+int(b)] }

// NextHop returns the first hop on the shortest path from src toward dst.
func (s *SPF) NextHop(src, dst topology.PoP) topology.PoP {
	return s.nextHop[int(src)*s.n+int(dst)]
}

// Path returns the full PoP sequence from src to dst inclusive.
func (s *SPF) Path(src, dst topology.PoP) []topology.PoP {
	path := []topology.PoP{src}
	for src != dst {
		src = s.NextHop(src, dst)
		path = append(path, src)
		if len(path) > s.n {
			panic("routing: path longer than PoP count (loop)")
		}
	}
	return path
}

// NumDirectedLinks returns the number of directed backbone links (2 per
// physical link).
func (s *SPF) NumDirectedLinks() int { return len(s.links) }

// DirectedLink returns the (from, to) PoPs of directed link i.
func (s *SPF) DirectedLink(i int) (from, to topology.PoP) {
	return s.links[i][0], s.links[i][1]
}

// LinkLoads routes a per-OD demand vector (indexed by Topology.Index) over
// the shortest paths and returns the resulting per-directed-link loads.
// Demand on self-pairs (origin == destination) never touches the backbone.
// This is the projection from the OD-flow view to the link view of the
// authors' earlier SIGCOMM work, used by the single-link baseline detectors.
func (s *SPF) LinkLoads(demand []float64) ([]float64, error) {
	if len(demand) != s.n*s.n {
		return nil, fmt.Errorf("routing: demand length %d, want %d", len(demand), s.n*s.n)
	}
	loads := make([]float64, len(s.links))
	for i, d := range demand {
		if d == 0 {
			continue
		}
		origin, dest := topology.PoP(i/s.n), topology.PoP(i%s.n)
		if origin == dest {
			continue
		}
		cur := origin
		for cur != dest {
			next := s.NextHop(cur, dest)
			loads[s.linkIndex[[2]topology.PoP{cur, next}]] += d
			cur = next
		}
	}
	return loads, nil
}
