package routing

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"netwide/internal/ipaddr"
	"netwide/internal/topology"
)

func TestTrieBasic(t *testing.T) {
	var tr Trie[string]
	tr.Insert(ipaddr.MustPrefix("10.0.0.0", 8), "eight")
	tr.Insert(ipaddr.MustPrefix("10.1.0.0", 16), "sixteen")
	if tr.Len() != 2 {
		t.Fatalf("len=%d", tr.Len())
	}
	if v, ok := tr.Lookup(ipaddr.FromOctets(10, 1, 2, 3)); !ok || v != "sixteen" {
		t.Fatalf("longest match failed: %v %v", v, ok)
	}
	if v, ok := tr.Lookup(ipaddr.FromOctets(10, 9, 2, 3)); !ok || v != "eight" {
		t.Fatalf("fallback match failed: %v %v", v, ok)
	}
	if _, ok := tr.Lookup(ipaddr.FromOctets(11, 0, 0, 1)); ok {
		t.Fatal("matched outside any prefix")
	}
}

func TestTrieDefaultRoute(t *testing.T) {
	var tr Trie[int]
	tr.Insert(ipaddr.Prefix{Addr: 0, Bits: 0}, 42)
	if v, ok := tr.Lookup(ipaddr.FromOctets(203, 0, 113, 9)); !ok || v != 42 {
		t.Fatal("default route not matched")
	}
}

func TestTrieReplaceRemove(t *testing.T) {
	var tr Trie[int]
	p := ipaddr.MustPrefix("192.168.0.0", 16)
	tr.Insert(p, 1)
	tr.Insert(p, 2)
	if tr.Len() != 1 {
		t.Fatalf("replace should not grow, len=%d", tr.Len())
	}
	if v, _ := tr.LookupPrefix(p); v != 2 {
		t.Fatalf("replace failed: %d", v)
	}
	if !tr.Remove(p) {
		t.Fatal("remove failed")
	}
	if tr.Remove(p) {
		t.Fatal("double remove succeeded")
	}
	if _, ok := tr.Lookup(ipaddr.FromOctets(192, 168, 1, 1)); ok {
		t.Fatal("removed prefix still matches")
	}
}

func TestTrieWalk(t *testing.T) {
	var tr Trie[int]
	pfx := []ipaddr.Prefix{
		ipaddr.MustPrefix("10.0.0.0", 8),
		ipaddr.MustPrefix("10.64.0.0", 10),
		ipaddr.MustPrefix("172.16.0.0", 12),
	}
	for i, p := range pfx {
		tr.Insert(p, i)
	}
	var seen []ipaddr.Prefix
	tr.Walk(func(p ipaddr.Prefix, _ int) { seen = append(seen, p) })
	if len(seen) != 3 {
		t.Fatalf("walk saw %d entries", len(seen))
	}
	// Address order: 10/8 before 10.64/10 before 172.16/12.
	if seen[0] != pfx[0] || seen[1] != pfx[1] || seen[2] != pfx[2] {
		t.Fatalf("walk order %v", seen)
	}
}

// Property: after inserting disjoint /16s, lookup of any address inside a
// /16 returns its value and never another's.
func TestPropTrieDisjoint(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed^1))
		var tr Trie[int]
		n := 1 + rng.IntN(40)
		used := map[uint16]int{}
		for i := 0; i < n; i++ {
			hi := uint16(rng.UintN(65536))
			used[hi] = i
			p, _ := ipaddr.NewPrefix(ipaddr.Addr(uint32(hi)<<16), 16)
			tr.Insert(p, i)
		}
		for hi, want := range used {
			a := ipaddr.Addr(uint32(hi)<<16 | rng.Uint32()&0xFFFF)
			got, ok := tr.Lookup(a)
			if !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSPFPathsValid(t *testing.T) {
	top := topology.Abilene()
	spf, err := ComputeSPF(top)
	if err != nil {
		t.Fatal(err)
	}
	adj := map[[2]topology.PoP]bool{}
	for _, l := range top.Links {
		adj[[2]topology.PoP{l.A, l.B}] = true
		adj[[2]topology.PoP{l.B, l.A}] = true
	}
	for a := topology.PoP(0); a < topology.NumPoPs; a++ {
		for b := topology.PoP(0); b < topology.NumPoPs; b++ {
			path := spf.Path(a, b)
			if path[0] != a || path[len(path)-1] != b {
				t.Fatalf("path %s->%s endpoints wrong: %v", a, b, path)
			}
			for i := 1; i < len(path); i++ {
				if !adj[[2]topology.PoP{path[i-1], path[i]}] {
					t.Fatalf("path %s->%s uses missing link %s-%s", a, b, path[i-1], path[i])
				}
			}
		}
	}
}

func TestSPFDistanceSymmetryAndTriangle(t *testing.T) {
	top := topology.Abilene()
	spf, err := ComputeSPF(top)
	if err != nil {
		t.Fatal(err)
	}
	for a := topology.PoP(0); a < topology.NumPoPs; a++ {
		if spf.Dist(a, a) != 0 {
			t.Fatalf("Dist(%s,%s) = %v", a, a, spf.Dist(a, a))
		}
		for b := topology.PoP(0); b < topology.NumPoPs; b++ {
			if d1, d2 := spf.Dist(a, b), spf.Dist(b, a); math.Abs(d1-d2) > 1e-9*(1+d1) {
				t.Fatalf("asymmetric distance %s<->%s: %v vs %v", a, b, d1, d2)
			}
			for c := topology.PoP(0); c < topology.NumPoPs; c++ {
				if spf.Dist(a, c) > spf.Dist(a, b)+spf.Dist(b, c)+1e-9 {
					t.Fatalf("triangle inequality violated %s-%s-%s", a, b, c)
				}
			}
		}
	}
}

func TestSPFKnownPath(t *testing.T) {
	top := topology.Abilene()
	spf, err := ComputeSPF(top)
	if err != nil {
		t.Fatal(err)
	}
	// Seattle to LA must go through Sunnyvale (the only sane coastal path).
	path := spf.Path(topology.STTL, topology.LOSA)
	if len(path) != 3 || path[1] != topology.SNVA {
		t.Fatalf("STTL->LOSA path %v, want via SNVA", path)
	}
}

func TestLinkLoads(t *testing.T) {
	top := topology.Abilene()
	spf, err := ComputeSPF(top)
	if err != nil {
		t.Fatal(err)
	}
	demand := make([]float64, topology.NumODPairs)
	od := topology.ODPair{Origin: topology.STTL, Dest: topology.LOSA}
	demand[od.Index()] = 100
	// Self traffic should not load the backbone.
	demand[topology.ODPair{Origin: topology.ATLA, Dest: topology.ATLA}.Index()] = 999
	loads, err := spf.LinkLoads(demand)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	loaded := 0
	for i, l := range loads {
		total += l
		if l > 0 {
			loaded++
			from, to := spf.DirectedLink(i)
			if l != 100 {
				t.Fatalf("link %s->%s load %v, want 100", from, to, l)
			}
		}
	}
	// Path STTL->SNVA->LOSA: exactly 2 directed links loaded.
	if loaded != 2 || total != 200 {
		t.Fatalf("loaded=%d total=%v, want 2 links x 100", loaded, total)
	}
	if _, err := spf.LinkLoads(make([]float64, 5)); err == nil {
		t.Fatal("short demand vector accepted")
	}
}

func TestResolverResolves(t *testing.T) {
	top := topology.Abilene()
	r, err := BuildResolver(top, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A LOSA customer source resolves to LOSA.
	losaCust := top.CustomersAt(topology.LOSA)[0]
	src := losaCust.Prefixes[0].Nth(77)
	pop, ok := r.ResolveSrc(src)
	if !ok || pop != topology.LOSA {
		t.Fatalf("ResolveSrc = %v %v", pop, ok)
	}
	// A NYCM customer destination resolves to NYCM even after
	// anonymization.
	nycmCust := top.CustomersAt(topology.NYCM)[0]
	dst := nycmCust.Prefixes[0].Nth(12345)
	pop, ok = r.ResolveDst(dst)
	if !ok || pop != topology.NYCM {
		t.Fatalf("ResolveDst = %v %v", pop, ok)
	}
	od, ok := r.Resolve(src, dst, nil)
	if !ok || od.Origin != topology.LOSA || od.Dest != topology.NYCM {
		t.Fatalf("Resolve = %v %v", od, ok)
	}
	// Unknown space resolves to nothing.
	if _, ok := r.Resolve(ipaddr.FromOctets(203, 0, 113, 5), dst, nil); ok {
		t.Fatal("resolved unknown source")
	}
}

func TestResolverIngressShift(t *testing.T) {
	top := topology.Abilene()
	base, err := BuildResolver(top, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	shifted, err := BuildResolver(top, map[string]topology.PoP{"CALREN": topology.SNVA}, 0)
	if err != nil {
		t.Fatal(err)
	}
	calren := top.CustomerByName("CALREN")
	src := calren.Prefixes[0].Nth(5)
	if pop, _ := base.ResolveSrc(src); pop != topology.LOSA {
		t.Fatalf("baseline CALREN ingress %v, want LOSA", pop)
	}
	if pop, _ := shifted.ResolveSrc(src); pop != topology.SNVA {
		t.Fatalf("shifted CALREN ingress %v, want SNVA", pop)
	}
	// Shifting to a PoP the customer is not homed at must fail.
	if _, err := BuildResolver(top, map[string]topology.PoP{"CALREN": topology.NYCM}, 0); err == nil {
		t.Fatal("invalid override accepted")
	}
	// Unknown override names are ignored (no such customer, no effect).
	if _, err := BuildResolver(top, map[string]topology.PoP{"GHOST": topology.NYCM}, 0); err != nil {
		t.Fatalf("override for absent customer should be a no-op, got %v", err)
	}
}

func TestResolverUnresolvedFraction(t *testing.T) {
	top := topology.Abilene()
	r, err := BuildResolver(top, nil, 0.07)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(9, 9))
	cust := top.CustomersAt(topology.ATLA)[0]
	src := cust.Prefixes[0].Nth(1)
	dst := top.CustomersAt(topology.CHIN)[0].Prefixes[0].Nth(2)
	const n = 20000
	resolved := 0
	for i := 0; i < n; i++ {
		if _, ok := r.Resolve(src, dst, rng); ok {
			resolved++
		}
	}
	frac := float64(resolved) / n
	if frac < 0.90 || frac > 0.96 {
		t.Fatalf("resolved fraction %v, want ~0.93", frac)
	}
	if _, err := BuildResolver(top, nil, 1.5); err == nil {
		t.Fatal("bad unresolved fraction accepted")
	}
}

func TestResolverTableSize(t *testing.T) {
	top := topology.Abilene()
	r, err := BuildResolver(top, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	in, eg := r.TableSize()
	var want int
	for _, c := range top.Customers {
		want += len(c.Prefixes)
	}
	if in != want || eg != want {
		t.Fatalf("table sizes %d/%d, want %d", in, eg, want)
	}
}

// Property: after a random sequence of inserts and removes, Lookup agrees
// with a naive linear longest-prefix scan.
func TestPropTrieMatchesNaive(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0xCAFE))
		var tr Trie[int]
		type entry struct {
			p ipaddr.Prefix
			v int
		}
		var live []entry
		for op := 0; op < 60; op++ {
			bits := rng.IntN(25) // keep prefixes <= /24 so collisions occur
			p, _ := ipaddr.NewPrefix(ipaddr.Addr(rng.Uint32()), bits)
			if rng.Float64() < 0.75 {
				v := rng.IntN(1000)
				tr.Insert(p, v)
				replaced := false
				for i := range live {
					if live[i].p == p {
						live[i].v, replaced = v, true
					}
				}
				if !replaced {
					live = append(live, entry{p, v})
				}
			} else if len(live) > 0 {
				idx := rng.IntN(len(live))
				tr.Remove(live[idx].p)
				live = append(live[:idx], live[idx+1:]...)
			}
		}
		if tr.Len() != len(live) {
			return false
		}
		for probe := 0; probe < 40; probe++ {
			a := ipaddr.Addr(rng.Uint32())
			bestBits, bestVal, found := -1, 0, false
			for _, e := range live {
				if e.p.Contains(a) && e.p.Bits > bestBits {
					bestBits, bestVal, found = e.p.Bits, e.v, true
				}
			}
			got, ok := tr.Lookup(a)
			if ok != found || (found && got != bestVal) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
