package flow

import (
	"testing"
	"testing/quick"

	"netwide/internal/ipaddr"
)

func sampleKey() Key {
	return Key{
		Src:     ipaddr.FromOctets(10, 0, 0, 1),
		Dst:     ipaddr.FromOctets(10, 16, 0, 2),
		SrcPort: 3312,
		DstPort: PortHTTP,
		Proto:   ProtoTCP,
	}
}

func TestKeyReverse(t *testing.T) {
	k := sampleKey()
	r := k.Reverse()
	if r.Src != k.Dst || r.Dst != k.Src || r.SrcPort != k.DstPort || r.DstPort != k.SrcPort {
		t.Fatalf("Reverse = %v", r)
	}
	if r.Reverse() != k {
		t.Fatal("double reverse not identity")
	}
}

func TestFastHashSymmetric(t *testing.T) {
	k := sampleKey()
	if k.FastHash() != k.Reverse().FastHash() {
		t.Fatal("FastHash not symmetric")
	}
}

func TestFastHashSpreads(t *testing.T) {
	// Different flows should (almost always) hash differently; check a
	// small port sweep lands in more than one shard of 8.
	shards := map[uint64]bool{}
	k := sampleKey()
	for p := uint16(1000); p < 1032; p++ {
		k.SrcPort = p
		shards[k.FastHash()&7] = true
	}
	if len(shards) < 4 {
		t.Fatalf("hash concentrated in %d/8 shards", len(shards))
	}
}

func TestKeyUsableAsMapKey(t *testing.T) {
	m := map[Key]int{}
	m[sampleKey()] = 1
	m[sampleKey().Reverse()] = 2
	if len(m) != 2 {
		t.Fatalf("map size %d", len(m))
	}
	if m[sampleKey()] != 1 {
		t.Fatal("lookup failed")
	}
}

func TestProtoString(t *testing.T) {
	if ProtoTCP.String() != "tcp" || ProtoUDP.String() != "udp" || ProtoICMP.String() != "icmp" {
		t.Fatal("proto names wrong")
	}
	if Proto(99).String() != "proto(99)" {
		t.Fatalf("unknown proto = %s", Proto(99))
	}
}

func TestRecordValidate(t *testing.T) {
	r := Record{Key: sampleKey(), Bytes: 1500, Packets: 3}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Record{Key: sampleKey(), Bytes: 100, Packets: 0}).Validate(); err == nil {
		t.Fatal("zero packets accepted")
	}
	if err := (Record{Key: sampleKey(), Bytes: 10, Packets: 3}).Validate(); err == nil {
		t.Fatal("sub-header byte count accepted")
	}
}

// Property: FastHash is invariant under Reverse for arbitrary keys.
func TestPropFastHashSymmetry(t *testing.T) {
	f := func(src, dst uint32, sp, dp uint16, proto uint8) bool {
		k := Key{Src: ipaddr.Addr(src), Dst: ipaddr.Addr(dst), SrcPort: sp, DstPort: dp, Proto: Proto(proto)}
		return k.FastHash() == k.Reverse().FastHash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: distinct directions are distinct map keys unless palindromic.
func TestPropReverseDistinct(t *testing.T) {
	f := func(src, dst uint32, sp, dp uint16) bool {
		k := Key{Src: ipaddr.Addr(src), Dst: ipaddr.Addr(dst), SrcPort: sp, DstPort: dp, Proto: ProtoTCP}
		if k == k.Reverse() {
			return src == dst && sp == dp
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
