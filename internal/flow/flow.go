// Package flow defines the IP-flow data model of the measurement pipeline:
// protocol numbers, well-known ports, the 5-tuple key on which routers
// aggregate sampled packets, and the flow records that the exporter emits.
//
// The design follows gopacket's Flow/Endpoint idea: keys are small
// comparable value types usable directly as map keys, with a cheap
// symmetric FastHash for sharding.
package flow

import (
	"fmt"

	"netwide/internal/ipaddr"
	"netwide/internal/topology"
)

// Proto is an IP protocol number.
type Proto uint8

// Protocol numbers used by the generator and classifiers.
const (
	ProtoICMP Proto = 1
	ProtoTCP  Proto = 6
	ProtoUDP  Proto = 17
)

// String names the common protocols.
func (p Proto) String() string {
	switch p {
	case ProtoICMP:
		return "icmp"
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	default:
		return fmt.Sprintf("proto(%d)", uint8(p))
	}
}

// Well-known ports that the paper's anomaly discussion refers to.
const (
	PortZero     uint16 = 0     // frequent DOS target
	PortDNS      uint16 = 53    // flash crowds
	PortHTTP     uint16 = 80    // flash crowds, web
	PortSMTP     uint16 = 25    // mail
	PortPOP      uint16 = 110   // the 4/10 DOS target ("port 110" in Fig 1)
	PortIdentd   uint16 = 113   // the second DOS target in Fig 1
	PortNNTP     uint16 = 119   // news broadcast (POINT-TO-MULTIPOINT)
	PortNetBIOS  uint16 = 139   // network scans
	PortMSSQL    uint16 = 1433  // SQL-Snake worm
	PortDeloder  uint16 = 445   // Deloder worm
	PortHTTPS    uint16 = 443   // TLS; slow-ramp exfiltration hides here
	PortKazaa    uint16 = 1412  // file sharing ALPHA flows
	PortIperfLo  uint16 = 5000  // bandwidth experiments (SLAC IEPM)
	PortIperfHi  uint16 = 5050  // end of the bandwidth-experiment range
	PortPathdiag uint16 = 56117 // pathdiag measurement tool
)

// Key is the 5-tuple on which sampled packets are aggregated into IP flows
// (source and destination address and port, plus protocol) — the exact
// aggregation the paper's Juniper measurement setup used.
type Key struct {
	Src, Dst         ipaddr.Addr
	SrcPort, DstPort uint16
	Proto            Proto
}

// Reverse returns the key of the opposite direction.
func (k Key) Reverse() Key {
	return Key{Src: k.Dst, Dst: k.Src, SrcPort: k.DstPort, DstPort: k.SrcPort, Proto: k.Proto}
}

// FastHash returns a 64-bit non-cryptographic hash that is symmetric under
// Reverse (like gopacket's Flow.FastHash), so both directions of a
// conversation shard identically.
func (k Key) FastHash() uint64 {
	fwd := k.asymHash(k.Src, k.Dst, k.SrcPort, k.DstPort)
	rev := k.asymHash(k.Dst, k.Src, k.DstPort, k.SrcPort)
	// XOR of the two directional hashes is direction-independent. Each side
	// is avalanche-finalized first: raw FNV-1a hashes of the same byte
	// multiset are congruent modulo small powers of two, so their plain XOR
	// would have degenerate low bits.
	return mix64(fwd) ^ mix64(rev)
}

// mix64 is the splitmix64 finalizer, a cheap full-avalanche bijection.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (k Key) asymHash(a, b ipaddr.Addr, ap, bp uint16) uint64 {
	// FNV-1a over the fields.
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64, bytes int) {
		for i := 0; i < bytes; i++ {
			h ^= (v >> (8 * i)) & 0xFF
			h *= prime
		}
	}
	mix(uint64(a), 4)
	mix(uint64(b), 4)
	mix(uint64(ap), 2)
	mix(uint64(bp), 2)
	mix(uint64(k.Proto), 1)
	return h
}

// String renders "tcp 10.0.0.1:80 -> 10.1.0.2:3312".
func (k Key) String() string {
	return fmt.Sprintf("%s %s:%d -> %s:%d", k.Proto, k.Src, k.SrcPort, k.Dst, k.DstPort)
}

// Record is one exported IP-flow record: a 5-tuple with its measured byte
// and packet volume inside one measurement interval. Bytes and Packets are
// the *sampled* values when the record comes out of the sampling layer.
type Record struct {
	Key     Key
	Bytes   uint64
	Packets uint64
}

// Validate performs basic sanity checks on a record.
func (r Record) Validate() error {
	if r.Packets == 0 {
		return fmt.Errorf("flow: record with zero packets: %v", r.Key)
	}
	if r.Bytes < r.Packets*20 {
		return fmt.Errorf("flow: record %v has %d bytes for %d packets (below minimum IP header)", r.Key, r.Bytes, r.Packets)
	}
	return nil
}

// ODRecord is a flow record annotated with the OD pair it was resolved to —
// the unit of OD-level aggregation.
type ODRecord struct {
	Record
	OD topology.ODPair
}
