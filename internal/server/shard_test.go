package server

// shard_test.go exercises the sharded ingest tier in isolation from the
// loopback matrix: stats consistency under concurrent ingest, late-loss
// accounting when one shard's traffic skews past another's seal horizon,
// and checkpoint v3 round-tripping per-shard state across a kill.

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"netwide"
	"netwide/internal/flowwire"
	"netwide/internal/netflow"
	"netwide/internal/traffic"
)

// enginePkt is pkt with a chosen export engine, for tests that need
// traffic landing on specific shards.
func enginePkt(t *testing.T, engine uint8, seq uint32, bin int, recs []netflow.Record) []byte {
	t.Helper()
	b, err := netflow.EncodePacket(netflow.Header{
		UnixSecs:     uint32(bin) * traffic.BinSeconds,
		FlowSequence: seq,
		EngineID:     engine,
	}, recs)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestStatsUnderIngestRace hammers the stats surface — the same assembly
// the HTTP handler serves, plus its JSON encoding — while packets flow,
// on both the synchronous path and the sharded pipeline. The assertions
// are minimal on purpose: the test exists for the -race CI leg, where any
// unsynchronized counter read or shared-state access between receivers,
// shards and the stats reader is the failure.
func TestStatsUnderIngestRace(t *testing.T) {
	run := testRun(t)
	recs := collectRecords(t, run, 5)
	legs := []struct {
		name string
		cfg  Config
	}{
		{"sync", Config{}},
		{"sharded", Config{Receivers: 2, Shards: 2}},
	}
	for _, leg := range legs {
		leg := leg
		t.Run(leg.name, func(t *testing.T) {
			cfg := leg.cfg
			cfg.Stream = parityStream(run)
			srv, err := New(run, cfg)
			if err != nil {
				t.Fatal(err)
			}

			stop := make(chan struct{})
			var readers sync.WaitGroup
			readers.Add(1)
			go func() {
				defer readers.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					st := srv.Stats()
					json.Marshal(st)
				}
			}()

			const feeders = 2
			var feed sync.WaitGroup
			for f := 0; f < feeders; f++ {
				feed.Add(1)
				go func(f int) {
					defer feed.Done()
					seq := uint32(0)
					for i := 0; i < 300; i++ {
						p := enginePkt(t, uint8(f), seq, i%4, recs)
						seq += uint32(len(recs))
						if srv.sharded() {
							// Each feeder owns one receiver: a receiver's
							// decoder is single-reader state, exactly like
							// its socket goroutine in production.
							srv.ingestOn(srv.recvs[f], p)
						} else {
							srv.IngestPacket(p)
						}
					}
				}(f)
			}
			feed.Wait()
			close(stop)
			readers.Wait()
			drainOK(t, srv)
			if st := srv.Stats(); st.Packets != feeders*300 {
				t.Fatalf("ingested %d packets, want %d", st.Packets, feeders*300)
			}
		})
	}
}

// TestShardSkewLateLoss pins late-loss accounting across the shard seal
// barrier: once the watermark (driven by one shard's engine) seals a bin
// on EVERY shard, a straggler packet for that bin arriving on another
// shard must be dropped and counted late on that shard's own ledger —
// never silently folded into a reopened bin, which would break
// daemon==batch parity.
func TestShardSkewLateLoss(t *testing.T) {
	run := testRun(t)
	srv, err := New(run, Config{Shards: 2, Stream: parityStream(run)})
	if err != nil {
		t.Fatal(err)
	}
	if a, b := srv.shardOf(0), srv.shardOf(1); a == b {
		t.Fatalf("engines 0 and 1 hash to the same shard (%d): the skew scenario needs two shards", a)
	}
	recs := collectRecords(t, run, 10)

	// Engine 0 runs ahead through bin 5; the quiesce lets the coordinator
	// seal through watermark-grace on BOTH shards, including engine 1's,
	// which has seen no traffic at all.
	seq := uint32(0)
	for bin := 0; bin <= 5; bin++ {
		srv.ingestOn(srv.recvs[0], enginePkt(t, 0, seq, bin, recs))
		seq += uint32(len(recs))
	}
	srv.quiesce()
	st := srv.Stats()
	if st.Watermark != 5 || st.LastClosed != 4 {
		t.Fatalf("watermark %d / last closed %d, want 5 / 4 (grace 1)", st.Watermark, st.LastClosed)
	}
	for i, sh := range st.Shards {
		if sh.SealedThrough != 4 {
			t.Fatalf("shard %d sealed through %d, want 4: the bin-close barrier must advance idle shards too", i, sh.SealedThrough)
		}
	}

	// Engine 1 wakes up with traffic for bin 3 — inside its shard's sealed
	// horizon. The records must be counted late on engine 1's shard.
	srv.ingestOn(srv.recvs[0], enginePkt(t, 1, 0, 3, recs))
	srv.quiesce()
	st = srv.Stats()
	if st.LateRecords != uint64(len(recs)) {
		t.Fatalf("late records %d, want %d", st.LateRecords, len(recs))
	}
	skewed := st.Shards[srv.shardOf(1)]
	if skewed.LateRecords != uint64(len(recs)) || skewed.Records != 0 {
		t.Fatalf("skewed shard ledger %+v, want all %d records late and none accepted", skewed, len(recs))
	}
	ahead := st.Shards[srv.shardOf(0)]
	if ahead.LateRecords != 0 || ahead.Records != 6*uint64(len(recs)) {
		t.Fatalf("leading shard ledger %+v, want %d records and no late", ahead, 6*len(recs))
	}
	if st.Records != 6*uint64(len(recs)) {
		t.Fatalf("accepted records %d, want %d", st.Records, 6*len(recs))
	}
	drainOK(t, srv)
}

// TestChaosShardedRestartParity is the sharded half of the crash-safety
// contract: a 4-shard daemon snapshotted at a controlled bin boundary,
// killed with unsnapshotted bins in flight, must restore every shard's
// partition — open bins, sequence cursors, dedupe rings, seal horizon —
// and characterize the remainder of the week exactly like the
// uninterrupted batch path. The duplicate count is asserted exactly: the
// snapshot's one fully-open bin is re-fed packet for packet, and every
// one of those packets must be caught by the restored per-shard dedupe
// rings — no more (phantom dups would mean cursor corruption), no fewer
// (missed dups would double-count traffic and break parity).
//
// Under -short only two days are fed and the assertions stop at restore
// mechanics and ingest integrity.
func TestChaosShardedRestartParity(t *testing.T) {
	run := testRun(t)
	ds := run.Dataset()
	bins := run.Bins()
	full := true
	if testing.Short() {
		bins = 2 * traffic.BinsPerDay
		full = false
	}
	var batch []netwide.Anomaly
	if full {
		if err := run.Detect(netwide.DefaultDetectOptions()); err != nil {
			t.Fatal(err)
		}
		batch = run.Characterize()
		if len(batch) == 0 {
			t.Fatal("batch path characterized nothing; parity check is vacuous")
		}
	}

	path := filepath.Join(t.TempDir(), "daemon.nwcp")
	mk := func(shards int) (*Server, error) {
		return New(run, Config{
			Shards:          shards,
			CheckpointPath:  path,
			CheckpointEvery: 1 << 30, // the explicit CheckpointNow is the only snapshot
			Detect:          netwide.DefaultDetectOptions(),
			Stream:          parityStream(run),
		})
	}

	kill := bins / 2
	srv, err := mk(4)
	if err != nil {
		t.Fatal(err)
	}
	feedBins(t, srv, ds, 0, kill, 0)
	if err := srv.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	// At the boundary the watermark sits on the last fed bin (kill-1),
	// sealed through kill-2 (grace 1): the snapshot holds bin kill-1 fully
	// open across the shards, which is exactly what gets re-fed after the
	// restore and must dedupe packet for packet.
	if st := srv.Stats(); st.LastCheckpointBin != kill-2 {
		t.Fatalf("snapshot covers through bin %d, want %d", st.LastCheckpointBin, kill-2)
	}
	dupPkts := 0
	{
		be, err := newBinExporters(ds, flowwire.FormatNetFlowV5)
		if err != nil {
			t.Fatal(err)
		}
		for b := 0; b < kill; b++ {
			pkts, _, err := be.encodeBin(b, 0)
			if err != nil {
				t.Fatal(err)
			}
			if b == kill-1 {
				dupPkts = len(pkts)
			}
		}
	}
	// A few more bins land after the snapshot and die with the process.
	feedBins(t, srv, ds, kill, kill+3, 0)
	ledgerAtKill := len(srv.Anomalies())
	srv.Kill()

	srv, err = mk(4)
	if err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if !st.Restored || st.RestoreErr != "" {
		t.Fatalf("restart did not restore: %+v", st)
	}
	if st.LastClosed != kill-2 || st.RestoredBin != kill-2 {
		t.Fatalf("restart resumed at bin %d (restored %d), want %d", st.LastClosed, st.RestoredBin, kill-2)
	}
	if len(st.Shards) != 4 {
		t.Fatalf("restored daemon reports %d shards, want 4", len(st.Shards))
	}
	for i, sh := range st.Shards {
		if sh.SealedThrough != kill-2 {
			t.Fatalf("shard %d restored sealed through %d, want %d", i, sh.SealedThrough, kill-2)
		}
	}
	if st.BinsOpen == 0 {
		t.Fatalf("restore dropped the snapshot's open bin: %+v", st)
	}
	if len(srv.Anomalies()) > ledgerAtKill {
		t.Fatalf("restored ledger grew across the crash: %d > %d", len(srv.Anomalies()), ledgerAtKill)
	}

	feedBins(t, srv, ds, kill-1, bins, 0)
	drainOK(t, srv)
	st = srv.Stats()
	if st.LostRecords != 0 || st.BadPackets != 0 || st.LateRecords != 0 || st.Unroutable != 0 || st.WildRecords != 0 {
		t.Fatalf("sharded kill/restart took ingest losses: %+v", st)
	}
	if st.Duplicates != uint64(dupPkts) {
		t.Fatalf("duplicates %d, want exactly %d: every packet of the snapshot's open bin, caught by the restored per-shard dedupe rings", st.Duplicates, dupPkts)
	}
	if st.BinsClosed != bins || st.BinsOpen != 0 {
		t.Fatalf("closed %d bins (open %d), want %d: every bin closed exactly once across the crash", st.BinsClosed, st.BinsOpen, bins)
	}
	if st.LastCheckpointBin != bins-1 {
		t.Fatalf("drain snapshot covers through bin %d, want %d", st.LastCheckpointBin, bins-1)
	}

	if full {
		bk := sortedKeys(batch)
		sk := sortedKeys(srv.Anomalies())
		if len(bk) != len(sk) {
			t.Fatalf("killed sharded daemon characterized %d anomalies, uninterrupted batch %d:\n daemon %v\n batch  %v", len(sk), len(bk), sk, bk)
		}
		for i := range bk {
			if bk[i] != sk[i] {
				t.Errorf("anomaly %d differs:\n batch  %s\n daemon %s", i, bk[i], sk[i])
			}
		}
	} else if srv.Err() != nil {
		t.Fatalf("short sharded chaos run left the daemon unhealthy: %v", srv.Err())
	}

	// The drain left a 4-shard snapshot on disk; a daemon with a different
	// shard layout cannot adopt its partitioned state and must cold-start.
	t.Run("shard count mismatch cold starts", func(t *testing.T) {
		srv, err := mk(3)
		if err != nil {
			t.Fatalf("shard-layout change kept the collector down: %v", err)
		}
		st := srv.Stats()
		if st.CheckpointFallbacks != 1 || !strings.Contains(st.RestoreErr, "shard") {
			t.Fatalf("layout mismatch not surfaced as a fallback: %+v", st)
		}
		if st.Restored || st.LastClosed != -1 {
			t.Fatalf("cold start leaked foreign shard state: %+v", st)
		}
		srv.Kill()
	})
}
