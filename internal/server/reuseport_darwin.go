//go:build darwin

package server

import "syscall"

// soReusePort is SO_REUSEPORT, which darwin's syscall package exports.
const soReusePort = syscall.SO_REUSEPORT
