//go:build !linux && !darwin

package server

import (
	"errors"
	"net"
)

// reusePortSupported: no SO_REUSEPORT here — the receiver pool falls back
// to one shared socket drained by every receiver goroutine. (The fallback
// can split a v9/IPFIX exporter's packets across receivers, so a template
// may be learned by a different receiver than the data that needs it; the
// exporter's periodic template resends converge it. Linux and darwin,
// the supported production platforms, do not take this path.)
const reusePortSupported = false

func listenReusePort(addr string) (*net.UDPConn, error) {
	return nil, errors.New("server: SO_REUSEPORT not supported on this platform")
}
