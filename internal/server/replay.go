package server

import (
	"fmt"
	"net"
	"time"

	"netwide/internal/dataset"
	"netwide/internal/flowwire"
	"netwide/internal/topology"
	"netwide/internal/traffic"
)

// ReplayConfig drives one dataset replay over UDP.
type ReplayConfig struct {
	// Addr is the collector's UDP address.
	Addr string
	// Format is the wire format to replay in (the zero value means
	// NetFlow v5). Any saved scenario replays in any supported format;
	// the collector normalizes them all to the same records.
	Format flowwire.Format
	// From and To bound the replayed bins [From, To); To <= 0 means the
	// whole dataset.
	From, To int
	// PacketsPerSecond paces the send (0 = as fast as the socket takes
	// them). Pacing matters on loopback too: an unpaced replay can overrun
	// the collector's socket buffer, and UDP loss breaks replay parity.
	PacketsPerSecond int
	// Conns sprays the replay across that many source sockets (default 1).
	// Each export engine's packets stick to one socket — SO_REUSEPORT
	// collectors hash datagrams to receivers by the connection 4-tuple, so
	// distinct source ports are what actually spread load across a
	// receiver pool, while per-engine affinity keeps every engine's
	// sequence stream in order on its one path.
	Conns int
	// Epoch is the Unix time stamped into bin From's packet headers (bin b
	// is stamped Epoch + (b)*300); it must match the collector's Epoch.
	// sFlow datagrams carry no wall clock: there the timestamp rides the
	// agent-uptime field in milliseconds, which caps Epoch+To*300 at
	// 2^32/1000 seconds (~49 days' worth) — use Epoch 0 for sFlow replays.
	Epoch uint32
}

// ReplayStats reports what one replay put on the wire.
type ReplayStats struct {
	Bins    int
	Packets int
	Records int
	Bytes   int64
}

// Replay regenerates the resolved flow records of bins [From, To) — the
// exact records the generator folded into the dataset's matrices — and
// exports them over UDP in cfg.Format (NetFlow v5 by default), one export
// engine per origin PoP, packets stamped with the bin's timestamp.
// Replaying into an ingest Server whose detector was trained on the same
// dataset therefore reconstructs the generator's matrices bit for bit on
// the collector side, in every supported format: any scenario the scenario
// engine can generate becomes a live load test.
func Replay(ds *dataset.Dataset, cfg ReplayConfig) (ReplayStats, error) {
	var st ReplayStats
	if cfg.To <= 0 || cfg.To > ds.Bins {
		cfg.To = ds.Bins
	}
	if cfg.From < 0 || cfg.From >= cfg.To {
		return st, fmt.Errorf("server: replay range [%d,%d) outside dataset of %d bins", cfg.From, cfg.To, ds.Bins)
	}
	exps, err := newBinExporters(ds, cfg.Format)
	if err != nil {
		return st, err
	}
	if cfg.Conns <= 0 {
		cfg.Conns = 1
	}
	conns := make([]*net.UDPConn, 0, cfg.Conns)
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	raddr, err := net.ResolveUDPAddr("udp", cfg.Addr)
	if err != nil {
		return st, fmt.Errorf("server: replay addr: %w", err)
	}
	for i := 0; i < cfg.Conns; i++ {
		c, err := net.DialUDP("udp", nil, raddr)
		if err != nil {
			return st, fmt.Errorf("server: replay dial (conn %d/%d): %w", i+1, cfg.Conns, err)
		}
		conns = append(conns, c)
	}

	pace := newPacer(cfg.PacketsPerSecond)
	for bin := cfg.From; bin < cfg.To; bin++ {
		pkts, records, err := exps.encodeBin(bin, cfg.Epoch)
		if err != nil {
			return st, err
		}
		for _, pkt := range pkts {
			pace.wait()
			if _, err := conns[int(pkt.engine)%len(conns)].Write(pkt.data); err != nil {
				return st, fmt.Errorf("server: replay send bin %d: %w", bin, err)
			}
			st.Packets++
			st.Bytes += int64(len(pkt.data))
		}
		st.Records += records
		st.Bins++
	}
	return st, nil
}

// binExporters regenerates and encodes one bin at a time: one export
// engine per origin PoP, sequence counters running across bins just like a
// real router's export engine. Shared by Replay and the ingest benchmark
// (which feeds the packets straight to IngestPacket).
type binExporters struct {
	ds   *dataset.Dataset
	exps []flowwire.Exporter
	// binTime is read by the exporter clocks when packets flush.
	binTime uint32
}

func newBinExporters(ds *dataset.Dataset, format flowwire.Format) (*binExporters, error) {
	if format == flowwire.FormatUnknown {
		format = flowwire.FormatNetFlowV5
	}
	be := &binExporters{ds: ds}
	rate := uint32(1 / ds.Cfg.SamplingRate)
	be.exps = make([]flowwire.Exporter, ds.Top.NumPoPs())
	for i := range be.exps {
		exp, err := flowwire.NewExporter(format, uint32(i), rate, func() (uint32, uint32) {
			// sFlow derives its timestamp from the uptime field; the
			// exporter handles that mapping, so one clock serves all four.
			return be.binTime, be.binTime
		})
		if err != nil {
			return nil, fmt.Errorf("server: replay exporter: %w", err)
		}
		be.exps[i] = exp
	}
	return be, nil
}

// replayPacket is one encoded export packet tagged with the engine that
// produced it, so Replay can pin each engine's sequence stream to one
// source socket.
type replayPacket struct {
	engine uint32
	data   []byte
}

// encodeBin regenerates bin's resolved records across every OD pair and
// returns them encoded as export packets (stamped epoch + bin*300) tagged
// by engine, plus the record count. Every exporter flushes at the end of
// the bin, so no record ever straddles a bin boundary; the returned
// packets own their bytes (Drain detaches the arena).
func (be *binExporters) encodeBin(bin int, epoch uint32) ([]replayPacket, int, error) {
	be.binTime = epoch + uint32(bin)*traffic.BinSeconds
	records := 0
	var addErr error
	for i := 0; i < be.ds.Top.NumODPairs(); i++ {
		od := be.ds.Top.ODAt(i)
		exp := be.exps[od.Origin]
		be.ds.ForEachResolvedRecord(od, bin, func(_ topology.ODPair, rec flowwire.Flow) {
			if addErr != nil {
				return
			}
			if err := exp.Add(rec); err != nil {
				addErr = err
				return
			}
			records++
		})
		if addErr != nil {
			return nil, 0, fmt.Errorf("server: replay bin %d: %w", bin, addErr)
		}
	}
	var pkts []replayPacket
	for i, exp := range be.exps {
		if err := exp.Flush(); err != nil {
			return nil, 0, fmt.Errorf("server: replay flush bin %d: %w", bin, err)
		}
		for _, data := range exp.Drain() {
			pkts = append(pkts, replayPacket{engine: uint32(i), data: data})
		}
	}
	return pkts, records, nil
}

// pacer rations packet sends to a fixed rate with absolute scheduling, so
// sleep granularity never accumulates drift.
type pacer struct {
	interval time.Duration
	start    time.Time
	sent     int64
}

func newPacer(pps int) *pacer {
	p := &pacer{}
	if pps > 0 {
		p.interval = time.Second / time.Duration(pps)
		p.start = time.Now()
	}
	return p
}

func (p *pacer) wait() {
	if p.interval == 0 {
		return
	}
	target := p.start.Add(time.Duration(p.sent) * p.interval)
	if d := time.Until(target); d > 0 {
		time.Sleep(d)
	}
	p.sent++
}
