//go:build linux || darwin

package server

import (
	"context"
	"fmt"
	"net"
	"syscall"
)

// reusePortSupported reports whether this platform can bind multiple UDP
// sockets to one address with SO_REUSEPORT, letting the kernel spread
// datagrams across the receiver pool by flow hash.
const reusePortSupported = true

// listenReusePort binds one UDP socket with SO_REUSEPORT set before bind
// — the option must be on the socket when bind runs, hence the
// ListenConfig control hook rather than a post-bind setsockopt.
func listenReusePort(addr string) (*net.UDPConn, error) {
	var sockErr error
	lc := net.ListenConfig{
		Control: func(network, address string, c syscall.RawConn) error {
			return c.Control(func(fd uintptr) {
				sockErr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
			})
		},
	}
	pc, err := lc.ListenPacket(context.Background(), "udp", addr)
	if err != nil {
		return nil, err
	}
	if sockErr != nil {
		pc.Close()
		return nil, fmt.Errorf("set SO_REUSEPORT: %w", sockErr)
	}
	conn, ok := pc.(*net.UDPConn)
	if !ok {
		pc.Close()
		return nil, fmt.Errorf("unexpected packet conn type %T", pc)
	}
	return conn, nil
}
