// The sharded ingest pipeline: receiver pool → OD-sharded binning workers
// → watermark-driven merge coordinator → the single central detector.
//
// The partition key is the export engine. An engine is an origin PoP, and
// the OD index space is laid out origin-major, so routing whole engines to
// shards gives each shard a disjoint set of OD columns — the merged dense
// vector is an exact concatenation, never a sum of contended cells — and
// keeps each (format, engine) sequence cursor and dedupe ring owned by
// exactly one goroutine. Scoring stays central: the subspace method is
// global, so the one StreamDetector consumes the merged full-length
// vectors in bin order, exactly as the synchronous path feeds it.
//
// Bin-close correctness (the barrier argument, in short — DESIGN.md E18
// has the long form): the coordinator owns the watermark and is the only
// issuer of seal epochs, each with a strictly increasing `through` bin.
// Shard channels are FIFO, so when a shard answers seal N it has binned
// every batch enqueued before the seal, and it drops any later batch for
// a bin ≤ N as late — a sealed partition can never reopen. An epoch
// completes only when all shards answered, epochs complete in issue
// order, and only completed epochs are submitted; therefore the detector
// sees every bin exactly once, fully merged, in ascending order.
package server

import (
	"net"
	"sort"
	"sync"
	"sync/atomic"

	"netwide"
	"netwide/internal/checkpoint"
	"netwide/internal/flowwire"
	"netwide/internal/traffic"
)

const (
	// shardQueueDepth bounds each receiver→shard channel (in batches).
	// Bounded so a stalled shard applies backpressure to the receivers
	// instead of growing an unbounded queue; deep enough to ride out a
	// shard's seal handoff.
	shardQueueDepth = 256
	// maxOutstandingEpochs caps seal epochs in flight. With the merge
	// channel sized len(shards)*(maxOutstandingEpochs+1), every shard can
	// answer every outstanding epoch — plus the drain's final flush epoch
	// — without blocking, which is the pipeline's deadlock-freedom
	// argument: shards always drain their queues.
	maxOutstandingEpochs = 4
)

// receiver is one UDP socket's ingest front end: its own decoder registry
// (flowwire registries are not safe for concurrent use, and v9/IPFIX
// template state is per-socket anyway — the kernel hashes an exporter's
// packets to one socket, and exporters resend templates periodically) and
// its slice of the datagram counters.
type receiver struct {
	id   int
	reg  *flowwire.Registry
	conn *net.UDPConn

	packets, badPackets, bytes atomic.Uint64
}

// shardWorker owns one partition of the OD space: its open-bin
// accumulators, sequence cursors and dedupe rings are touched only by its
// goroutine (and, between barriers, by restore before the goroutine
// starts). The atomic fields are its slice of the stats counters, read
// lock-free by /stats.
type shardWorker struct {
	id int
	ch chan shardMsg

	// Single-threaded worker state.
	bins          map[int]*binAcc
	seq           map[engineKey]*engineSeq
	sealedThrough int
	behindStreak  int

	// Stats mirrors.
	records, duplicates, lateRecords,
	wildRecords, unroutable atomic.Uint64
	binsOpen, sealed atomic.Int64
}

const (
	msgBatch = iota
	msgSeal
	msgDiscard
	msgSync
	msgCapture
	msgStop
)

// shardMsg is the one message type on a receiver→shard channel. kind
// selects which fields are meaningful: a decoded batch (msgBatch, with
// the pooled record slice to return), a seal or discard boundary, a sync
// ack request, a checkpoint capture request, or stop.
type shardMsg struct {
	kind    int
	batch   flowwire.Batch
	recs    *[]flowwire.Record
	epoch   uint64
	through int
	ack     chan<- struct{}
	snap    chan<- checkpoint.ShardState
}

// sealReply is one shard's answer to one seal epoch: the detached bins of
// its partition through the epoch's boundary.
type sealReply struct {
	shard int
	epoch uint64
	bins  []submittedBin
}

const (
	ctlQuiesce = iota
	ctlFlush
	ctlStop
)

// coordMsg is a control-plane request to the coordinator. ctlQuiesce
// drains every outstanding epoch and parks the coordinator until resume
// closes (checkpoint capture); ctlFlush seals everything through the
// watermark and drains (the graceful drain); ctlStop exits the loop.
type coordMsg struct {
	kind   int
	reply  chan struct{}
	resume chan struct{}
}

// recPool recycles decoded-record slices across receivers and shards.
// flowwire records are pure values (no aliasing into the packet buffer),
// so a slice can cross goroutines and be reused freely once its shard has
// folded it in.
var recPool = sync.Pool{New: func() any {
	s := make([]flowwire.Record, 0, 64)
	return &s
}}

// buildPipeline allocates the receivers, shard workers and channels. No
// goroutine starts here: restore must be able to fill shard state first.
func (s *Server) buildPipeline() error {
	s.recvs = make([]*receiver, s.cfg.Receivers)
	for i := range s.recvs {
		reg, err := flowwire.NewRegistry(s.cfg.Formats...)
		if err != nil {
			return err
		}
		s.recvs[i] = &receiver{id: i, reg: reg}
	}
	s.shards = make([]*shardWorker, s.cfg.Shards)
	for i := range s.shards {
		w := &shardWorker{
			id:            i,
			ch:            make(chan shardMsg, shardQueueDepth),
			bins:          map[int]*binAcc{},
			seq:           map[engineKey]*engineSeq{},
			sealedThrough: -1,
		}
		w.sealed.Store(-1)
		s.shards[i] = w
	}
	s.mergeCh = make(chan sealReply, len(s.shards)*(maxOutstandingEpochs+1))
	s.coordBell = make(chan struct{}, 1)
	s.coordCtl = make(chan coordMsg)
	s.coordDone = make(chan struct{})
	s.cpBell = make(chan struct{}, 1)
	s.cpStop = make(chan struct{})
	return nil
}

// startPipeline launches the shard workers, the coordinator and (when
// checkpointing) the checkpointer, seeding the coordinator's cursors from
// whatever restore left behind.
func (s *Server) startPipeline() {
	watermark := int(s.ctr.watermark.Load())
	sealTarget := int(s.ctr.lastClosed.Load())
	for _, w := range s.shards {
		if w.sealedThrough > sealTarget {
			sealTarget = w.sealedThrough
		}
	}
	s.pendingObs.Store(int64(watermark))
	s.shardWG.Add(len(s.shards))
	for _, w := range s.shards {
		go s.shardLoop(w)
	}
	go s.coordinate(watermark, sealTarget)
	if s.cfg.CheckpointPath != "" {
		s.cpWG.Add(1)
		go s.checkpointer()
	}
}

// receiverLoop drains one socket until Drain or Kill closes it.
func (s *Server) receiverLoop(r *receiver) {
	defer s.readersWG.Done()
	buf := make([]byte, 4096)
	for {
		n, _, err := r.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		s.ingestOn(r, buf[:n])
	}
}

// ingestOn runs one datagram through a receiver: decode on the receiver's
// own registry into a pooled record slice, attribute the packet counters,
// and route the batch to its engine's shard. The channel send applies
// backpressure when the shard is behind — by design, the receiver slows
// rather than the queue growing without bound. pauseMu's read side makes
// a datagram atomic with respect to checkpoint capture: the capture's
// write lock waits out in-flight datagrams, then finds every batch either
// fully routed or not started.
func (s *Server) ingestOn(r *receiver, pkt []byte) {
	s.pauseMu.RLock()
	defer s.pauseMu.RUnlock()
	bufp := recPool.Get().(*[]flowwire.Record)
	b, recs, err := r.reg.Decode(pkt, (*bufp)[:0])
	*bufp = recs
	s.ctr.packets.Add(1)
	r.packets.Add(1)
	r.bytes.Add(uint64(len(pkt)))
	var pc *protoCounters
	if b.Format != flowwire.FormatUnknown && b.Format < flowwire.NumFormats {
		pc = &s.proto[b.Format]
		pc.packets.Add(1)
	}
	if err != nil {
		s.ctr.badPackets.Add(1)
		if pc != nil {
			pc.badPackets.Add(1)
		}
		recPool.Put(bufp)
		return
	}
	// Zero-record batches (v9/IPFIX template-only packets) still route:
	// the shard owns the stream's sequence cursor.
	s.shards[s.shardOf(b.Engine)].ch <- shardMsg{kind: msgBatch, batch: b, recs: bufp}
}

// shardLoop is one binning worker: accumulate batches, answer seals,
// serve syncs and captures. All of the worker's mutable state is local to
// this goroutine.
func (s *Server) shardLoop(w *shardWorker) {
	defer s.shardWG.Done()
	for m := range w.ch {
		switch m.kind {
		case msgBatch:
			s.shardIngest(w, m.batch, *m.recs)
			recPool.Put(m.recs)
		case msgSeal:
			bins := detachBins(w.bins, m.through)
			if m.through > w.sealedThrough {
				w.sealedThrough = m.through
			}
			w.sealed.Store(int64(w.sealedThrough))
			w.binsOpen.Store(int64(len(w.bins)))
			// Never blocks: mergeCh is sized for every outstanding epoch.
			s.mergeCh <- sealReply{shard: w.id, epoch: m.epoch, bins: bins}
		case msgDiscard:
			if wild := discardWildBins(w.bins, m.through); wild > 0 {
				s.ctr.wildRecords.Add(wild)
				w.wildRecords.Add(wild)
			}
			w.binsOpen.Store(int64(len(w.bins)))
			w.behindStreak = 0
		case msgSync:
			m.ack <- struct{}{}
		case msgCapture:
			m.snap <- shardStateOf(w.bins, w.seq, w.sealedThrough, w.behindStreak)
		case msgStop:
			return
		}
	}
}

// shardIngest is the sharded counterpart of the synchronous IngestPacket
// body after decode: sequence dedupe on the shard's own cursors, the
// late/wild gates, and accumulation into the shard's partition. The bin
// gate is the shard's sealedThrough — the local mirror of LastClosed that
// makes "a sealed partition never reopens" a single-goroutine invariant.
func (s *Server) shardIngest(w *shardWorker, b flowwire.Batch, recs []flowwire.Record) {
	pc := &s.proto[b.Format]
	if !s.sequenceCheck(w.seq, b) {
		s.ctr.duplicates.Add(1)
		w.duplicates.Add(1)
		pc.duplicates.Add(1)
		return
	}
	if int64(b.UnixSecs) < int64(s.cfg.Epoch) {
		s.ctr.lateRecords.Add(uint64(len(recs)))
		w.lateRecords.Add(uint64(len(recs)))
		return
	}
	bin := int(int64(b.UnixSecs)-int64(s.cfg.Epoch)) / traffic.BinSeconds
	if bin <= w.sealedThrough {
		s.ctr.lateRecords.Add(uint64(len(recs)))
		w.lateRecords.Add(uint64(len(recs)))
		return
	}
	// Gate wild timestamps against the shared observation cursor, not the
	// coordinator-published watermark: shards raise pendingObs synchronously
	// as they accept traffic, while s.ctr.watermark only moves when the
	// coordinator goroutine gets scheduled. On a starved scheduler the
	// watermark can lag the live stream by more than MaxAhead bins, and
	// gating on it would drop legitimate in-order traffic as wild. The
	// security property is unchanged — pendingObs is raised only by
	// accepted routable traffic, never by a packet this gate refuses.
	obs := int(s.pendingObs.Load())
	if obs >= 0 && bin > obs+s.cfg.MaxAhead {
		s.ctr.wildRecords.Add(uint64(len(recs)))
		w.wildRecords.Add(uint64(len(recs)))
		return
	}
	accepted, unroutable, wild := s.accumulateInto(w.bins, bin, b, recs)
	if unroutable > 0 {
		s.ctr.unroutable.Add(uint64(unroutable))
		w.unroutable.Add(uint64(unroutable))
	}
	if wild > 0 {
		s.ctr.wildRecords.Add(uint64(wild))
		w.wildRecords.Add(uint64(wild))
	}
	if accepted > 0 {
		s.ctr.records.Add(uint64(accepted))
		w.records.Add(uint64(accepted))
		pc.records.Add(uint64(accepted))
	}
	w.binsOpen.Store(int64(len(w.bins)))
	switch {
	case accepted == 0:
		// Only routable traffic gets a say in the watermark.
	case bin > obs:
		s.raiseObs(bin)
		w.behindStreak = 0
	case obs-bin > s.cfg.MaxAhead:
		// Stranded-watermark quorum, per shard: the shard seeing the live
		// stream is the one whose streak fills.
		w.behindStreak++
		if w.behindStreak >= watermarkQuorum {
			s.resetBin.Store(int64(bin))
			s.resetReq.Store(true)
			s.ringCoordBell()
			w.behindStreak = 0
		}
	default:
		w.behindStreak = 0
	}
}

// raiseObs lifts the shared highest-observed-bin cursor (CAS max) and
// wakes the coordinator. This is the only watermark input shards produce;
// the coordinator is the only watermark writer.
func (s *Server) raiseObs(bin int) {
	b := int64(bin)
	for {
		cur := s.pendingObs.Load()
		if cur >= b {
			return
		}
		if s.pendingObs.CompareAndSwap(cur, b) {
			s.ringCoordBell()
			return
		}
	}
}

// ringCoordBell wakes the coordinator without blocking (the bell holds at
// most one pending wake; the coordinator always re-reads the shared
// cursors when it wakes).
func (s *Server) ringCoordBell() {
	select {
	case s.coordBell <- struct{}{}:
	default:
	}
}

// epochState is one outstanding seal epoch: the boundary it closes
// through, how many shards still owe an answer, and the merged bins so
// far. Each OD column is owned by one shard, so merging is elementwise
// addition into disjoint cells — exact in float64 (the sums are integer
// counts below 2^53).
type epochState struct {
	id      uint64
	through int
	pending int
	bins    map[int]*binAcc
}

// coordinate is the merge layer: the single owner of the watermark, the
// seal schedule and the detector submit order. It starts from the
// restored cursors (watermark, sealTarget) so a warm start never re-seals
// what the snapshot already closed.
func (s *Server) coordinate(watermark, sealTarget int) {
	defer close(s.coordDone)
	var (
		epochs    []*epochState
		nextEpoch uint64
	)
	issueSeal := func(through int) {
		ep := &epochState{id: nextEpoch, through: through, pending: len(s.shards), bins: map[int]*binAcc{}}
		nextEpoch++
		epochs = append(epochs, ep)
		for _, w := range s.shards {
			w.ch <- shardMsg{kind: msgSeal, epoch: ep.id, through: through}
		}
		sealTarget = through
	}
	finish := func(ep *epochState) {
		if len(ep.bins) == 0 {
			return
		}
		closed := make([]submittedBin, 0, len(ep.bins))
		for bin, acc := range ep.bins {
			closed = append(closed, submittedBin{bin, acc})
		}
		sort.Slice(closed, func(i, j int) bool { return closed[i].bin < closed[j].bin })
		s.ctr.lastClosed.Store(int64(closed[len(closed)-1].bin))
		s.ctr.binsClosed.Add(int64(len(closed)))
		s.submit(closed)
		if s.cfg.CheckpointPath != "" {
			if s.binsSinceCp.Add(int64(len(closed))) >= int64(s.cfg.CheckpointEvery) {
				select {
				case s.cpBell <- struct{}{}:
				default:
				}
			}
		}
	}
	fold := func(rep sealReply) {
		for _, ep := range epochs {
			if ep.id != rep.epoch {
				continue
			}
			ep.pending--
			for _, sb := range rep.bins {
				if acc := ep.bins[sb.bin]; acc == nil {
					ep.bins[sb.bin] = sb.acc
				} else {
					for i := range acc.bytes {
						acc.bytes[i] += sb.acc.bytes[i]
						acc.packets[i] += sb.acc.packets[i]
						acc.flows[i] += sb.acc.flows[i]
					}
					acc.records += sb.acc.records
				}
			}
			return
		}
	}
	completeReady := func() {
		// Epochs complete strictly in issue order: their through bounds
		// increase, so in-order completion is what keeps the submit stream
		// ascending.
		for len(epochs) > 0 && epochs[0].pending == 0 {
			ep := epochs[0]
			epochs = epochs[1:]
			finish(ep)
		}
	}
	step := func() {
		if s.resetReq.CompareAndSwap(true, false) {
			rb := int(s.resetBin.Load())
			for _, w := range s.shards {
				w.ch <- shardMsg{kind: msgDiscard, through: rb + s.cfg.MaxAhead}
			}
			watermark = rb
			s.ctr.watermark.Store(int64(rb))
			s.pendingObs.Store(int64(rb))
			s.ctr.watermarkResets.Add(1)
		}
		if obs := int(s.pendingObs.Load()); obs > watermark {
			watermark = obs
			s.ctr.watermark.Store(int64(watermark))
		}
		if through := watermark - s.cfg.Grace; through > sealTarget && len(epochs) < maxOutstandingEpochs {
			issueSeal(through)
		}
	}
	drainEpochs := func() {
		for len(epochs) > 0 {
			fold(<-s.mergeCh)
			completeReady()
		}
	}
	for {
		select {
		case <-s.coordBell:
			step()
			completeReady()
		case rep := <-s.mergeCh:
			fold(rep)
			completeReady()
			step()
		case msg := <-s.coordCtl:
			switch msg.kind {
			case ctlQuiesce:
				// Settle the pipeline to a barrier: close what the
				// watermark allows, then drain every outstanding epoch so
				// the shards' post-quiesce state is exactly "everything
				// through sealTarget submitted, the rest open".
				step()
				drainEpochs()
				close(msg.reply)
				<-msg.resume
			case ctlFlush:
				// The drain's final close: everything through the
				// watermark itself, grace abandoned — no more traffic is
				// coming to fill it.
				step()
				if watermark > sealTarget {
					drainEpochs()
					issueSeal(watermark)
				}
				drainEpochs()
				close(msg.reply)
			case ctlStop:
				close(msg.reply)
				return
			}
		}
	}
}

// checkpointer serializes the bin-cadence snapshots off the coordinator's
// critical path: the coordinator only rings a bell, and captures that
// would overlap collapse into one.
func (s *Server) checkpointer() {
	defer s.cpWG.Done()
	for {
		select {
		case <-s.cpStop:
			return
		case <-s.cpBell:
			// Failures land on Stats (persist's contract); a capture
			// declined because a drain started is equally fine — the drain
			// writes the final snapshot.
			s.CheckpointNow()
		}
	}
}

// syncShards barriers every shard channel: when it returns, every batch
// enqueued before the call has been folded into its shard's bins.
func (s *Server) syncShards() {
	ack := make(chan struct{}, len(s.shards))
	for _, w := range s.shards {
		w.ch <- shardMsg{kind: msgSync, ack: ack}
	}
	for range s.shards {
		<-ack
	}
}

// quiesce settles the whole pipeline to a consistent barrier — receivers
// paused, shard queues drained, every closeable bin sealed, merged and
// submitted — then resumes it. Tests and benchmarks use it to read
// deterministic stats; checkpoint capture uses the same sequence with the
// pause held longer.
func (s *Server) quiesce() {
	s.pauseMu.Lock()
	defer s.pauseMu.Unlock()
	s.syncShards()
	reply := make(chan struct{})
	resume := make(chan struct{})
	s.coordCtl <- coordMsg{kind: ctlQuiesce, reply: reply, resume: resume}
	<-reply
	close(resume)
}

// captureSharded takes one sharded snapshot: pause the receivers (unless
// the drain already stopped them), drain the shard queues, park the
// coordinator at its barrier, deep-copy every shard's partition state,
// and persist. The pause guarantees the captured counters, shard states,
// template caches and detector barrier all describe the same instant.
func (s *Server) captureSharded(final bool) error {
	if !final {
		s.pauseMu.Lock()
		defer s.pauseMu.Unlock()
	}
	s.syncShards()
	reply := make(chan struct{})
	resume := make(chan struct{})
	s.coordCtl <- coordMsg{kind: ctlQuiesce, reply: reply, resume: resume}
	<-reply
	defer close(resume)
	states := make([]checkpoint.ShardState, len(s.shards))
	for i, w := range s.shards {
		snap := make(chan checkpoint.ShardState, 1)
		w.ch <- shardMsg{kind: msgCapture, snap: snap}
		states[i] = <-snap
	}
	regs := make([]*flowwire.Registry, 0, len(s.recvs))
	for _, r := range s.recvs {
		regs = append(regs, r.reg)
	}
	return s.persist(func(cp netwide.StreamCheckpoint) *checkpoint.State {
		st := s.baseState(cp)
		st.Server.Shards = states
		st.Server.Templates = templatesOf(regs...)
		return st
	})
}

// coordFlush runs the drain's final seal: everything through the
// watermark, merged and submitted. Callers have already stopped the
// receivers and synced the shard queues.
func (s *Server) coordFlush() {
	reply := make(chan struct{})
	s.coordCtl <- coordMsg{kind: ctlFlush, reply: reply}
	<-reply
}

func (s *Server) stopCoordinator() {
	reply := make(chan struct{})
	s.coordCtl <- coordMsg{kind: ctlStop, reply: reply}
	<-reply
	<-s.coordDone
}

func (s *Server) stopShards() {
	for _, w := range s.shards {
		w.ch <- shardMsg{kind: msgStop}
	}
	s.shardWG.Wait()
}
