package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"netwide"
	"netwide/internal/flowwire"
	"netwide/internal/netflow"
	"netwide/internal/topology"
	"netwide/internal/traffic"
)

var (
	runOnce   sync.Once
	sharedRun *netwide.Run
	runErr    error
)

// testRun builds the shared 1-week quick run every server test trains on.
func testRun(t testing.TB) *netwide.Run {
	t.Helper()
	runOnce.Do(func() {
		sharedRun, runErr = netwide.Simulate(netwide.QuickConfig())
	})
	if runErr != nil {
		t.Fatal(runErr)
	}
	return sharedRun
}

// parityStream is the batch-parity detector setup: models trained on the
// full run, no refits (thresholds must not drift for bit-exact parity).
func parityStream(run *netwide.Run) netwide.StreamConfig {
	return netwide.StreamConfig{TrainBins: run.Bins(), BatchSize: 16}
}

func anomalyKey(a netwide.Anomaly) string {
	return fmt.Sprintf("%s|%s|%d-%d|%v|%s|%s", a.Class, a.Measures, a.StartBin, a.EndBin, a.ODs, a.Truth, a.TruthType)
}

// TestLoopbackEndToEnd is the tentpole proof, once per wire format over
// the sharded pipeline plus a synchronous-path control leg: a dataset
// replayed as live export traffic over UDP loopback — NetFlow v5, NetFlow
// v9, IPFIX and sFlow v5 side by side, through 2 SO_REUSEPORT receivers
// and 4 binning shards — ingested by the daemon, must drive the streaming
// detector to exactly the anomalies the batch Detect + Characterize path
// finds on the same data, in every format: the wire hop, the
// normalization, the sharded bin aggregation, the merge barrier and the
// drain must all be lossless.
//
// Under -short (the CI race step) only the first two days are replayed and
// the assertions stop at ingest integrity — batch event windows span the
// whole week, so exact anomaly parity is only meaningful on a full replay.
func TestLoopbackEndToEnd(t *testing.T) {
	run := testRun(t)
	bins := run.Bins()
	fullParity := true
	if testing.Short() {
		bins = 2 * traffic.BinsPerDay
		fullParity = false
	}

	// The batch reference is computed once, up front; every leg's daemon is
	// compared against the same anomaly set.
	var batchKeys []string
	if fullParity {
		if err := run.Detect(netwide.DefaultDetectOptions()); err != nil {
			t.Fatal(err)
		}
		batch := run.Characterize()
		if len(batch) == 0 {
			t.Fatal("batch path characterized nothing; parity check is vacuous")
		}
		batchKeys = make([]string, len(batch))
		for i, a := range batch {
			batchKeys[i] = anomalyKey(a)
		}
		sort.Strings(batchKeys)
	}

	// The four-format matrix runs the sharded pipeline; the plain leg pins
	// the synchronous path against the same reference.
	sharded := Config{
		HTTPAddr:  "127.0.0.1:0",
		Receivers: 2,
		Shards:    4,
		// Receivers drain their sockets independently and the replay sprays
		// them from independent connections, so one receiver can run many
		// bins ahead of the other whenever the scheduler stalls a sender.
		// The replay compresses a week into ~17s (~116 bins/s of bin-time
		// per wall-second), so even a sub-second one-sided stall is dozens
		// of bins of skew: the reorder window and the wild-timestamp bound
		// both need far more headroom here than a real deployment (where a
		// bin is five wall-clock minutes) would ever configure.
		Grace:    96,
		MaxAhead: 576,
		Detect:   netwide.DefaultDetectOptions(),
	}
	for _, format := range flowwire.AllFormats() {
		format := format
		t.Run(format.String(), func(t *testing.T) {
			t.Parallel()
			loopbackLeg(t, run, bins, batchKeys, fullParity, format, sharded, 2)
		})
	}
	t.Run("netflow5-plain", func(t *testing.T) {
		t.Parallel()
		plain := Config{HTTPAddr: "127.0.0.1:0", Detect: netwide.DefaultDetectOptions()}
		loopbackLeg(t, run, bins, batchKeys, fullParity, flowwire.FormatNetFlowV5, plain, 1)
	})
}

// loopbackLeg replays bins [0, bins) over loopback into a daemon built
// from cfg and asserts the full lossless-parity contract.
func loopbackLeg(t *testing.T, run *netwide.Run, bins int, batchKeys []string, fullParity bool, format flowwire.Format, cfg Config, conns int) {
	t.Helper()
	cfg.Stream = parityStream(run)
	srv, err := New(run, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}

	sent, err := Replay(run.Dataset(), ReplayConfig{
		Addr:             srv.UDPAddr().String(),
		Format:           format,
		From:             0,
		To:               bins,
		PacketsPerSecond: 10000,
		Conns:            conns,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sent.Records == 0 || sent.Packets == 0 {
		t.Fatalf("replay sent nothing: %+v", sent)
	}

	// UDP offers no delivery handshake: poll until every sent record
	// has been counted (or the deadline proves loss).
	deadline := time.Now().Add(60 * time.Second)
	for {
		st := srv.Stats()
		if st.Records == uint64(sent.Records) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ingested %d of %d sent records after 60s (lost=%d bad=%d late=%d): UDP loss breaks parity — lower the replay rate",
				st.Records, sent.Records, st.LostRecords, st.BadPackets, st.LateRecords)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Exercise the HTTP surface while the daemon is still live.
	base := "http://" + srv.HTTPAddr().String()
	resp, err := http.Get(base + "/api/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	resp, err = http.Get(base + "/api/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var httpStats Stats
	if err := json.NewDecoder(resp.Body).Decode(&httpStats); err != nil {
		t.Fatalf("stats endpoint: %v", err)
	}
	resp.Body.Close()
	if httpStats.Records != uint64(sent.Records) {
		t.Fatalf("stats endpoint reports %d records, want %d", httpStats.Records, sent.Records)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	st := srv.Stats()
	if st.LostRecords != 0 || st.BadPackets != 0 || st.Duplicates != 0 || st.LateRecords != 0 || st.Unroutable != 0 {
		t.Fatalf("lossless loopback replay took losses: %+v", st)
	}
	if st.BinsClosed != bins || st.BinsOpen != 0 {
		t.Fatalf("closed %d bins (open %d), want %d closed after drain", st.BinsClosed, st.BinsOpen, bins)
	}
	// The per-protocol breakdown must attribute every packet and
	// record to this format, with no loss in its own sequence unit.
	ps, ok := st.Protocols[format.String()]
	if !ok {
		t.Fatalf("stats carry no %q protocol entry: %+v", format, st.Protocols)
	}
	if ps.Records != uint64(sent.Records) || ps.Packets != uint64(sent.Packets) || ps.LostUnits != 0 {
		t.Fatalf("protocol breakdown %+v, want %d packets / %d records lossless", ps, sent.Packets, sent.Records)
	}
	if want := format.SequenceModel().Unit(); ps.SeqUnit != want {
		t.Errorf("protocol seq unit %q, want %q", ps.SeqUnit, want)
	}
	// On the sharded pipeline the per-receiver and per-shard breakdowns
	// must jointly account for every packet and record; the synchronous
	// path must not grow the new fields at all (the stats JSON is a
	// compatibility surface).
	if cfg.Receivers > 1 || cfg.Shards > 1 {
		if len(st.Receivers) != cfg.Receivers || len(st.Shards) != cfg.Shards {
			t.Fatalf("stats carry %d receivers / %d shards, want %d / %d", len(st.Receivers), len(st.Shards), cfg.Receivers, cfg.Shards)
		}
		var rp, sr uint64
		for _, r := range st.Receivers {
			rp += r.Packets
		}
		for _, sh := range st.Shards {
			sr += sh.Records
		}
		if rp != st.Packets || sr != st.Records {
			t.Fatalf("per-receiver packets %d (want %d) / per-shard records %d (want %d)", rp, st.Packets, sr, st.Records)
		}
	} else if st.Receivers != nil || st.Shards != nil {
		t.Fatalf("synchronous daemon leaked sharded stats: %+v", st)
	}

	if !fullParity {
		if srv.Err() != nil {
			t.Fatalf("short replay left the daemon unhealthy: %v", srv.Err())
		}
		return
	}

	// Full week replayed: the daemon's characterized anomalies must
	// match the batch path exactly, whatever the wire format and the
	// pipeline shape were.
	streamed := srv.Anomalies()
	sk := make([]string, len(streamed))
	for i, a := range streamed {
		sk[i] = anomalyKey(a)
	}
	sort.Strings(sk)
	if len(batchKeys) != len(sk) {
		t.Fatalf("daemon characterized %d anomalies, batch %d:\n daemon %v\n batch  %v", len(sk), len(batchKeys), sk, batchKeys)
	}
	for i := range batchKeys {
		if batchKeys[i] != sk[i] {
			t.Errorf("anomaly %d differs:\n batch  %s\n daemon %s", i, batchKeys[i], sk[i])
		}
	}
}

// TestAPIVersionAliases pins the HTTP compatibility contract: every
// endpoint serves identical bytes under its versioned /api/v1/ path and
// its legacy unversioned alias.
func TestAPIVersionAliases(t *testing.T) {
	run := testRun(t)
	srv, err := New(run, Config{HTTPAddr: "127.0.0.1:0", Stream: parityStream(run)})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Drain(ctx)
	}()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + srv.HTTPAddr().String() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, buf.String()
	}
	for _, ep := range []string{"healthz", "stats", "anomalies"} {
		legacyCode, legacyBody := get("/" + ep)
		v1Code, v1Body := get("/api/v1/" + ep)
		if legacyCode != http.StatusOK || v1Code != http.StatusOK {
			t.Fatalf("%s: status %d (legacy) / %d (v1), want 200/200", ep, legacyCode, v1Code)
		}
		if legacyBody != v1Body {
			t.Errorf("%s: legacy and /api/v1 bodies differ:\n legacy %q\n v1     %q", ep, legacyBody, v1Body)
		}
	}
	if _, body := get("/api/v1/anomalies"); strings.TrimSpace(body) != "[]" {
		t.Errorf("empty anomaly log renders %q, want []", body)
	}
}

// collectRecords regenerates resolved records from origin PoP 0 cells of
// one bin until it has n of them — real, resolvable payloads for crafted
// packets.
func collectRecords(t *testing.T, run *netwide.Run, n int) []netflow.Record {
	t.Helper()
	ds := run.Dataset()
	var recs []netflow.Record
	for i := 0; i < ds.Top.NumODPairs() && len(recs) < n; i++ {
		od := ds.Top.ODAt(i)
		if od.Origin != 0 {
			continue
		}
		ds.ForEachResolvedRecord(od, 0, func(_ topology.ODPair, r netflow.Record) {
			if len(recs) < n {
				recs = append(recs, r)
			}
		})
	}
	if len(recs) < n {
		t.Fatalf("collected only %d of %d records", len(recs), n)
	}
	return recs
}

// pkt encodes one v5 packet from engine 0 with the given sequence and bin
// timestamp.
func pkt(t *testing.T, seq uint32, bin int, recs []netflow.Record) []byte {
	t.Helper()
	b, err := netflow.EncodePacket(netflow.Header{
		UnixSecs:     uint32(bin) * traffic.BinSeconds,
		FlowSequence: seq,
		EngineID:     0,
	}, recs)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestOutOfOrderAndDuplicates pins the transport-hardening semantics:
// duplicate packets are dropped by sequence replay detection, bins arriving
// out of time order within the grace window still land in their own bin,
// late packets for closed bins are counted and discarded, and sequence gaps
// are accounted as loss.
func TestOutOfOrderAndDuplicates(t *testing.T) {
	run := testRun(t)
	srv, err := New(run, Config{Grace: 3, Stream: parityStream(run)})
	if err != nil {
		t.Fatal(err)
	}
	recs := collectRecords(t, run, 10)

	p1 := pkt(t, 0, 5, recs)                     // bin 5, seq 0..9
	p2 := pkt(t, 10, 4, recs)                    // bin 4, AFTER bin 5 — within grace
	p3 := pkt(t, 20, 8, recs)                    // bin 8: watermark advances, closes bins <= 5
	p4 := pkt(t, 30, 3, recs)                    // bin 3: now late (closed)
	p5 := pkt(t, 90, 8, recs)                    // seq gap: 50 records presumed lost
	p6 := pkt(t, 40, 8, recs)                    // the reordered packet behind the gap: refund 10
	p7 := pkt(t, 3_000_000_000, 8, recs)         // wild backward sequence: exporter restart, resync
	p8 := pkt(t, 3_000_000_010+(1<<30), 8, recs) // wild FORWARD jump: restart too, not a phantom 2^30-record gap
	srv.IngestPacket(p1)
	srv.IngestPacket(p1) // exact duplicate: must not double-count
	srv.IngestPacket(p2)
	srv.IngestPacket(p3)
	srv.IngestPacket(p4)
	srv.IngestPacket(p5)
	srv.IngestPacket(p6)
	srv.IngestPacket(p7)
	srv.IngestPacket(p8)

	st := srv.Stats()
	if st.Duplicates != 1 {
		t.Errorf("duplicates %d, want 1", st.Duplicates)
	}
	if want := uint64(70); st.Records != want { // p1 + p2 + p3 + p5 + p6 + p7 + p8
		t.Errorf("records %d, want %d", st.Records, want)
	}
	if st.LateRecords != 10 {
		t.Errorf("late records %d, want 10", st.LateRecords)
	}
	if st.LostRecords != 40 {
		t.Errorf("lost records %d, want 40 (50-record gap minus the reordered refund; restarts charge nothing)", st.LostRecords)
	}
	if st.BinsClosed != 2 || st.LastClosed != 5 || st.Watermark != 8 {
		t.Errorf("bin state %+v, want 2 closed through 5, watermark 8", st)
	}
	if st.BinsOpen != 1 {
		t.Errorf("open bins %d, want 1 (bin 8)", st.BinsOpen)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if st := srv.Stats(); st.BinsClosed != 3 || st.BinsOpen != 0 {
		t.Errorf("after drain: %d closed / %d open, want 3 / 0", st.BinsClosed, st.BinsOpen)
	}
}

// TestDrainFlushesInFlightBins pins the graceful-shutdown contract: bins
// still inside the grace window when the daemon stops must be submitted,
// scored and characterized before Drain returns — an operator stopping the
// daemon loses nothing that reached it.
func TestDrainFlushesInFlightBins(t *testing.T) {
	run := testRun(t)
	srv, err := New(run, Config{Grace: 4, Stream: parityStream(run)})
	if err != nil {
		t.Fatal(err)
	}
	recs := collectRecords(t, run, 10)
	for bin := 0; bin < 3; bin++ { // all three bins stay inside grace 4
		srv.IngestPacket(pkt(t, uint32(bin*10), bin, recs))
	}
	if st := srv.Stats(); st.BinsClosed != 0 || st.BinsOpen != 3 {
		t.Fatalf("pre-drain bin state %+v, want 0 closed / 3 open", st)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	st := srv.Stats()
	if st.BinsClosed != 3 || st.BinsOpen != 0 || st.LastClosed != 2 {
		t.Fatalf("after drain %+v, want all 3 bins closed", st)
	}
	if !st.Draining {
		t.Error("stats do not report the drain")
	}
	// A second drain is a caller bug: it fails fast with a descriptive
	// error instead of silently waiting behind a shutdown that already
	// happened (the old behavior hid double-shutdown bugs in operators).
	if err := srv.Drain(ctx); err == nil || !strings.Contains(err.Error(), "already") {
		t.Fatalf("second drain: %v, want an 'already in progress or completed' error", err)
	}
}

// TestDrainRejectsDeadContext pins the other half of the drain contract:
// the context bounds only the HTTP shutdown, so a context that is already
// done on entry would silently run an unbounded drain — it is rejected up
// front instead.
func TestDrainRejectsDeadContext(t *testing.T) {
	run := testRun(t)
	srv, err := New(run, Config{Stream: parityStream(run)})
	if err != nil {
		t.Fatal(err)
	}
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	if err := srv.Drain(dead); err == nil || !strings.Contains(err.Error(), "context") {
		t.Fatalf("drain with dead context: %v, want a context error", err)
	}
	// The rejected call must not have flipped the daemon into draining: a
	// live context afterwards still performs the real shutdown.
	ctx, cancelLive := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelLive()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain after rejected call: %v", err)
	}
	if !srv.Stats().Draining {
		t.Error("stats do not report the drain")
	}
}

// TestConcurrentDrain: exactly one of N concurrent Drain calls wins; the
// rest fail promptly with the descriptive error rather than piling up
// behind the winner.
func TestConcurrentDrain(t *testing.T) {
	run := testRun(t)
	srv, err := New(run, Config{Stream: parityStream(run)})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	errs := make(chan error, 4)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- srv.Drain(ctx)
		}()
	}
	wg.Wait()
	close(errs)
	var ok, rejected int
	for err := range errs {
		switch {
		case err == nil:
			ok++
		case strings.Contains(err.Error(), "already"):
			rejected++
		default:
			t.Errorf("unexpected drain error: %v", err)
		}
	}
	if ok != 1 || rejected != 3 {
		t.Fatalf("%d drains succeeded and %d were rejected, want 1 and 3", ok, rejected)
	}
}

// TestHostileDatagrams feeds the daemon the decoder's whole rogues'
// gallery: every datagram must be counted and dropped without disturbing
// ingest state, and records that decode but cannot be routed (unknown
// engine, unresolvable destination) must be counted unroutable — untrusted
// bytes never panic the daemon and never leak into the matrices.
func TestHostileDatagrams(t *testing.T) {
	run := testRun(t)
	srv, err := New(run, Config{Stream: parityStream(run)})
	if err != nil {
		t.Fatal(err)
	}
	recs := collectRecords(t, run, 5)
	good := pkt(t, 0, 0, recs)

	srv.IngestPacket(nil)                        // empty datagram
	srv.IngestPacket([]byte{1, 2, 3})            // runt
	srv.IngestPacket(good[:netflow.HeaderLen+7]) // truncated mid-record
	badVersion := append([]byte(nil), good...)
	badVersion[1] = 9
	srv.IngestPacket(badVersion)
	hostileCount := append([]byte(nil), good...)
	hostileCount[2], hostileCount[3] = 0xFF, 0xFF
	srv.IngestPacket(hostileCount)
	srv.IngestPacket(bytes.Repeat([]byte{0xAB}, 2048)) // garbage

	st := srv.Stats()
	if st.BadPackets != 6 {
		t.Errorf("bad packets %d, want 6", st.BadPackets)
	}
	if st.Records != 0 || st.BinsOpen != 0 {
		t.Errorf("hostile datagrams leaked into ingest state: %+v", st)
	}

	// A decodable packet from an engine the topology does not know.
	unknownEngine, err := netflow.EncodePacket(netflow.Header{EngineID: 200, FlowSequence: 0}, recs)
	if err != nil {
		t.Fatal(err)
	}
	srv.IngestPacket(unknownEngine)
	if st := srv.Stats(); st.Unroutable != uint64(len(recs)) {
		t.Errorf("unroutable %d, want %d", st.Unroutable, len(recs))
	}

	// The daemon is still healthy and still ingests good traffic.
	if srv.Err() != nil {
		t.Fatalf("hostile datagrams broke the daemon: %v", srv.Err())
	}
	srv.IngestPacket(good)
	if st := srv.Stats(); st.Records != uint64(len(recs)) {
		t.Errorf("good packet after hostile burst: %d records, want %d", st.Records, len(recs))
	}

	// A spoofed far-future timestamp must neither move the watermark (it
	// would force-close partial bins and stall every legitimate bin) nor
	// open a bin; its records are refused as wild.
	wild, err := netflow.EncodePacket(netflow.Header{
		UnixSecs:     uint32(1000 * traffic.BinSeconds),
		FlowSequence: uint32(len(recs)),
	}, recs)
	if err != nil {
		t.Fatal(err)
	}
	srv.IngestPacket(wild)
	st = srv.Stats()
	if st.WildRecords != uint64(len(recs)) {
		t.Errorf("wild records %d, want %d", st.WildRecords, len(recs))
	}
	if st.Watermark != 0 || st.BinsOpen != 1 {
		t.Errorf("spoofed timestamp moved bin state: watermark %d, open %d", st.Watermark, st.BinsOpen)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestWatermarkRecovery pins the stranded-watermark self-heal: a
// far-future FIRST packet (nothing exists to bound it against) parks the
// watermark where no legitimate bin could ever close — until a quorum of
// consecutive routable packets running far below it re-anchors the
// watermark, discards the stranded bin as wild, and bin close resumes.
func TestWatermarkRecovery(t *testing.T) {
	run := testRun(t)
	srv, err := New(run, Config{Stream: parityStream(run)})
	if err != nil {
		t.Fatal(err)
	}
	recs := collectRecords(t, run, 10)

	srv.IngestPacket(pkt(t, 0, 1000, recs)) // hostile first packet: bin 1000
	if st := srv.Stats(); st.Watermark != 1000 {
		t.Fatalf("first packet set watermark %d, want 1000", st.Watermark)
	}
	// Legitimate traffic: bins 0,1,2,... — all far below the stranded
	// watermark. After the quorum the watermark must snap back.
	seq := uint32(10)
	for bin := 0; bin < 12; bin++ {
		srv.IngestPacket(pkt(t, seq, bin, recs))
		seq += uint32(len(recs))
	}
	st := srv.Stats()
	if st.WatermarkResets != 1 {
		t.Fatalf("watermark resets %d, want 1 (stats: %+v)", st.WatermarkResets, st)
	}
	if st.Watermark >= 1000 {
		t.Fatalf("watermark still stranded at %d", st.Watermark)
	}
	if st.WildRecords != uint64(len(recs)) {
		t.Errorf("stranded bin's %d records not discarded as wild (got %d)", len(recs), st.WildRecords)
	}
	if st.BinsClosed == 0 {
		t.Error("bin close never resumed after watermark recovery")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}
