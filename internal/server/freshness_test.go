package server

// freshness_test.go covers the daemon's model-lifecycle surface: the
// /stats freshness gauges under an active lifecycle, their absence on a
// static-model daemon (whose JSON must stay byte-identical to the
// pre-lifecycle format), and a checkpointed restart under the incremental
// lifecycle carrying the tracker across the kill.

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"netwide"
	"netwide/internal/dataset"
)

// incrementalStream is parityStream under the incremental lifecycle:
// models trained on the full run, per-bin subspace tracking, no periodic
// drift corrections.
func incrementalStream(run *netwide.Run) netwide.StreamConfig {
	cfg := parityStream(run)
	cfg.Updater = "incremental"
	return cfg
}

// TestStatsModelFreshness: with a model lifecycle active, Stats carries
// one freshness gauge per measure — updater kind, generation, per-bin
// updates absorbed, staleness — and the incremental lifecycle keeps
// staleness at one bin. On the static-model setup the field is absent
// from the JSON entirely.
func TestStatsModelFreshness(t *testing.T) {
	run := testRun(t)
	srv, err := New(run, Config{Grace: 2, Stream: incrementalStream(run)})
	if err != nil {
		t.Fatal(err)
	}
	recs := collectRecords(t, run, 10)
	const bins = 6
	for bin := 0; bin < bins; bin++ {
		srv.IngestPacket(pkt(t, uint32(bin*10), bin, recs))
	}
	drainOK(t, srv)

	st := srv.Stats()
	if len(st.ModelFreshness) != int(dataset.NumMeasures) {
		t.Fatalf("%d freshness gauges, want one per measure (%d)", len(st.ModelFreshness), dataset.NumMeasures)
	}
	for i, fr := range st.ModelFreshness {
		if fr.Measure != dataset.Measure(i).String() {
			t.Errorf("gauge %d labeled %q, want %q", i, fr.Measure, dataset.Measure(i))
		}
		if fr.Updater != "incremental" {
			t.Errorf("measure %s: updater %q", fr.Measure, fr.Updater)
		}
		if fr.Generation != 0 {
			t.Errorf("measure %s: generation %d without drift corrections", fr.Measure, fr.Generation)
		}
		if fr.Updates != bins {
			t.Errorf("measure %s: %d per-bin updates, want %d (one per closed bin)", fr.Measure, fr.Updates, bins)
		}
		if fr.StalenessBins > 1 {
			t.Errorf("measure %s: staleness %d bins under the incremental lifecycle", fr.Measure, fr.StalenessBins)
		}
	}
	body, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `"model_freshness"`) {
		t.Error("stats JSON does not carry the freshness gauges")
	}

	// The static-model daemon (no refits, no tracking) must not grow the
	// field: operators diffing /stats across the upgrade see no change.
	plain, err := New(run, Config{Stream: parityStream(run)})
	if err != nil {
		t.Fatal(err)
	}
	if body, err := json.Marshal(plain.Stats()); err != nil {
		t.Fatal(err)
	} else if strings.Contains(string(body), "model_freshness") {
		t.Errorf("static-model daemon leaks freshness gauges: %s", body)
	}
	drainOK(t, plain)
}

// TestIncrementalRestartCarriesTracker: a daemon running the incremental
// lifecycle is killed and restarted from its snapshot; the restored
// tracker must pick up exactly where it left off — the per-bin update
// count survives the crash and keeps advancing as new bins close.
func TestIncrementalRestartCarriesTracker(t *testing.T) {
	run := testRun(t)
	cfg := Config{
		Grace:          2,
		CheckpointPath: filepath.Join(t.TempDir(), "daemon.nwcp"),
		Stream:         incrementalStream(run),
	}
	srv, err := New(run, cfg)
	if err != nil {
		t.Fatal(err)
	}
	feedBins(t, srv, run.Dataset(), 0, 5, 0)
	drainOK(t, srv)
	closed := srv.Stats().BinsClosed

	srv, err = New(run, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if !st.Restored {
		t.Fatalf("restart did not restore: %+v", st)
	}
	for _, fr := range st.ModelFreshness {
		if fr.Updater != "incremental" || int(fr.Updates) != closed {
			t.Fatalf("restored gauge %+v, want incremental with %d updates", fr, closed)
		}
	}
	feedBins(t, srv, run.Dataset(), 5, 8, 0)
	drainOK(t, srv)
	for _, fr := range srv.Stats().ModelFreshness {
		if int(fr.Updates) != 8 {
			t.Fatalf("tracker did not advance past the crash: %+v", fr)
		}
	}
}
