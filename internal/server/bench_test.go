package server

import (
	"encoding/binary"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"netwide"
	"netwide/internal/flowwire"
)

// benchIngest measures the sustained per-datagram ingest path — decode,
// sequence accounting, OD resolution, bin accumulation — at a given
// topology scale and wire format. One iteration ingests one full bin of
// replay packets; the packets' sequence numbers are restamped each pass so
// the replay detector sees a continuous stream instead of duplicates, and
// the bin timestamp stays fixed so no detector submission mixes into the
// measured path. records/sec is the daemon's headline sustained-ingest
// rate.
func benchIngest(b *testing.B, topo string, format flowwire.Format) {
	cfg := netwide.QuickConfig()
	cfg.MeanRateBps = 4e5
	cfg.Topology = topo
	run, err := netwide.Simulate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := New(run, Config{Stream: netwide.StreamConfig{TrainBins: run.Bins(), BatchSize: 16}})
	if err != nil {
		b.Fatal(err)
	}
	be, err := newBinExporters(run.Dataset(), format)
	if err != nil {
		b.Fatal(err)
	}
	pkts, records, err := be.encodeBin(0, 0)
	if err != nil {
		b.Fatal(err)
	}
	// One unmeasured decode pass learns each packet's engine identity and
	// sequence advance (for v9/IPFIX it also seeds nothing — the server
	// under test keeps its own template caches, learned on the first
	// measured pass from the template sets the packets carry).
	type pktMeta struct{ engine, advance uint32 }
	meta := make([]pktMeta, len(pkts))
	preReg, err := flowwire.NewRegistry(format)
	if err != nil {
		b.Fatal(err)
	}
	for j, p := range pkts {
		bt, _, err := preReg.Decode(p.data, nil)
		if err != nil {
			b.Fatal(err)
		}
		meta[j] = pktMeta{engine: bt.Engine, advance: bt.SeqAdvance}
	}
	// restamp rewrites packet j's sequence number(s) to start at cur, in
	// the format's own sequence field.
	restamp := func(p []byte, cur uint32) {
		switch format {
		case flowwire.FormatNetFlowV5:
			binary.BigEndian.PutUint32(p[16:], cur)
		case flowwire.FormatNetFlowV9:
			binary.BigEndian.PutUint32(p[12:], cur)
		case flowwire.FormatIPFIX:
			binary.BigEndian.PutUint32(p[8:], cur)
		case flowwire.FormatSFlow:
			// Every flow sample carries its own sequence number and the
			// batch sequence is the first one: renumber them all.
			off := 28
			for off+8 <= len(p) {
				sl := int(binary.BigEndian.Uint32(p[off+4:]))
				if binary.BigEndian.Uint32(p[off:]) == 1 { // flow sample
					binary.BigEndian.PutUint32(p[off+8:], cur)
					cur++
				}
				off += 8 + sl
			}
		}
	}
	// Several passes per iteration lift one op above the perf gate's timer
	// noise floor AND average out scheduler/GC hiccups within the op —
	// at -benchtime=1x a single-bin op varies ±2x run to run, which the
	// gate's 20% threshold cannot tolerate, while 16 bins of work per op
	// keeps repeat runs within a few percent.
	const passes = 16
	seq := map[uint32]uint32{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for pass := 0; pass < passes; pass++ {
			for j, p := range pkts {
				m := meta[j]
				restamp(p.data, seq[m.engine])
				seq[m.engine] += m.advance
				srv.IngestPacket(p.data)
			}
		}
	}
	b.StopTimer()
	total := b.N * passes * records
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "records/sec")
	if got := srv.Stats().Records; got != uint64(total) {
		b.Fatalf("ingested %d records, want %d — the bench is not measuring a lossless path", got, total)
	}
}

// BenchmarkServerIngest is the gated sustained-ingest benchmark: the
// reference Abilene scale (121 OD pairs) and the Géant scale (529) over
// NetFlow v5 — the sub-benchmark names predate the multi-format wire
// layer and stay stable for baseline comparability — plus one Abilene
// variant per additional wire format.
func BenchmarkServerIngest(b *testing.B) {
	b.Run("abilene", func(b *testing.B) { benchIngest(b, "abilene", flowwire.FormatNetFlowV5) })
	b.Run("geant", func(b *testing.B) { benchIngest(b, "geant", flowwire.FormatNetFlowV5) })
	b.Run("abilene-netflow9", func(b *testing.B) { benchIngest(b, "abilene", flowwire.FormatNetFlowV9) })
	b.Run("abilene-ipfix", func(b *testing.B) { benchIngest(b, "abilene", flowwire.FormatIPFIX) })
	b.Run("abilene-sflow", func(b *testing.B) { benchIngest(b, "abilene", flowwire.FormatSFlow) })
}

// benchIngestParallel measures aggregate sustained ingest through the
// sharded pipeline — per-receiver decode, receiver→shard routing, shard
// bin accumulation — with the packet stream partitioned across receivers
// by export engine, exactly how SO_REUSEPORT's 4-tuple hash spreads a
// real replay's per-engine source sockets. One iteration ingests 16 full
// bins of packets, split across `receivers` concurrently-fed receivers;
// the bin timestamp stays fixed so no seal or detector submission mixes
// into the measured path, and the trailing quiesce + lossless assert
// prove the measured path dropped nothing. records/sec is the aggregate
// rate across the pool; scaling across the sub-benchmarks is the
// pipeline's whole point, but it can only materialize on multi-core
// hosts — at GOMAXPROCS=1 all receivers time-slice one core and the
// curve is flat (the perf gate compares each sub-benchmark only against
// its own baseline, never across receiver counts).
func benchIngestParallel(b *testing.B, receivers int) {
	cfg := netwide.QuickConfig()
	cfg.MeanRateBps = 4e5
	run, err := netwide.Simulate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := New(run, Config{
		Receivers: receivers,
		Shards:    4,
		Stream:    netwide.StreamConfig{TrainBins: run.Bins(), BatchSize: 16},
	})
	if err != nil {
		b.Fatal(err)
	}
	be, err := newBinExporters(run.Dataset(), flowwire.FormatNetFlowV5)
	if err != nil {
		b.Fatal(err)
	}
	pkts, records, err := be.encodeBin(0, 0)
	if err != nil {
		b.Fatal(err)
	}
	// Partition packets by engine so each engine's sequence stream stays on
	// one receiver (mirroring per-engine socket affinity), decode once for
	// per-packet sequence advances, and keep one cursor map per group — an
	// engine never crosses groups, so the maps are race-free.
	type pktMeta struct {
		data    []byte
		advance uint32
		engine  uint32
	}
	groups := make([][]pktMeta, receivers)
	preReg, err := flowwire.NewRegistry(flowwire.FormatNetFlowV5)
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range pkts {
		bt, _, err := preReg.Decode(p.data, nil)
		if err != nil {
			b.Fatal(err)
		}
		g := int(bt.Engine) % receivers
		groups[g] = append(groups[g], pktMeta{data: p.data, advance: bt.SeqAdvance, engine: bt.Engine})
	}
	seqs := make([]map[uint32]uint32, receivers)
	for g := range seqs {
		seqs[g] = map[uint32]uint32{}
	}
	const passes = 16
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for g := 0; g < receivers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				r := srv.recvs[g]
				seq := seqs[g]
				for pass := 0; pass < passes; pass++ {
					for _, m := range groups[g] {
						binary.BigEndian.PutUint32(m.data[16:], seq[m.engine])
						seq[m.engine] += m.advance
						srv.ingestOn(r, m.data)
					}
				}
			}(g)
		}
		wg.Wait()
	}
	b.StopTimer()
	srv.quiesce()
	total := b.N * passes * records
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "records/sec")
	if got := srv.Stats().Records; got != uint64(total) {
		b.Fatalf("ingested %d records, want %d — the bench is not measuring a lossless path", got, total)
	}
}

// BenchmarkServerIngestParallel is the gated sharded-ingest benchmark:
// the Abilene reference scale over NetFlow v5 at 1, 2, 4 and 8 receivers,
// always with 4 binning shards. The receivers=1 sub-benchmark doubles as
// the sharded pipeline's serial baseline against BenchmarkServerIngest's
// synchronous path.
func BenchmarkServerIngestParallel(b *testing.B) {
	for _, r := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("receivers=%d", r), func(b *testing.B) { benchIngestParallel(b, r) })
	}
}

// benchCheckpoint measures one full snapshot — pipeline barrier round
// trip, ledger sync, state assembly (model parameters, refit windows,
// open bins, sequence cursors), gob encode, and the checksummed atomic
// file replace. This is the stall the ingest path absorbs every
// CheckpointEvery closed bins, so its cost is gated alongside the ingest
// rate itself.
func benchCheckpoint(b *testing.B, topo string) {
	cfg := netwide.QuickConfig()
	cfg.MeanRateBps = 4e5
	cfg.Topology = topo
	run, err := netwide.Simulate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := New(run, Config{
		CheckpointPath:  filepath.Join(b.TempDir(), "bench.nwcp"),
		CheckpointEvery: 1 << 30, // only the measured CheckpointNow calls snapshot
		Stream:          netwide.StreamConfig{TrainBins: run.Bins(), BatchSize: 16},
	})
	if err != nil {
		b.Fatal(err)
	}
	// A few ingested bins make the snapshot structurally honest: an open
	// accumulator, live sequence cursors, a started detector cursor.
	be, err := newBinExporters(run.Dataset(), flowwire.FormatNetFlowV5)
	if err != nil {
		b.Fatal(err)
	}
	for bin := 0; bin < 3; bin++ {
		pkts, _, err := be.encodeBin(bin, 0)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pkts {
			srv.IngestPacket(p.data)
		}
	}
	// One unmeasured snapshot first: the process's first gob encode
	// registers types and allocates encoder state, which would otherwise
	// make allocs/op depend on benchmark ordering within the suite.
	if err := srv.CheckpointNow(); err != nil {
		b.Fatal(err)
	}
	// Several snapshots per iteration: a single snapshot is dominated by
	// fsync, whose latency varies enough run to run to trip the perf
	// gate's 20% threshold at -benchtime=1x; averaging keeps the op
	// stable. ns/op therefore times `snapshots` full snapshots.
	const snapshots = 8
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for s := 0; s < snapshots; s++ {
			if err := srv.CheckpointNow(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkCheckpointSnapshot is the gated snapshot-cost benchmark at both
// topology scales.
func BenchmarkCheckpointSnapshot(b *testing.B) {
	b.Run("abilene", func(b *testing.B) { benchCheckpoint(b, "abilene") })
	b.Run("geant", func(b *testing.B) { benchCheckpoint(b, "geant") })
}
