package server

import (
	"encoding/binary"
	"testing"

	"netwide"
)

// benchIngest measures the sustained per-datagram ingest path — decode,
// sequence accounting, OD resolution, bin accumulation — at a given
// topology scale. One iteration ingests one full bin of replay packets;
// the headers' flow sequences are restamped each pass so the replay
// detector sees a continuous stream instead of duplicates, and the bin
// timestamp stays fixed so no detector submission mixes into the measured
// path. records/sec is the daemon's headline sustained-ingest rate.
func benchIngest(b *testing.B, topo string) {
	cfg := netwide.QuickConfig()
	cfg.MeanRateBps = 4e5
	cfg.Topology = topo
	run, err := netwide.Simulate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := New(run, Config{Stream: netwide.StreamConfig{TrainBins: run.Bins(), BatchSize: 16}})
	if err != nil {
		b.Fatal(err)
	}
	pkts, records, err := newBinExporters(run.Dataset()).encodeBin(0, 0)
	if err != nil {
		b.Fatal(err)
	}
	counts := make([]uint32, len(pkts))
	for i, p := range pkts {
		counts[i] = uint32(binary.BigEndian.Uint16(p[2:]))
	}
	// Several passes per iteration lift one op above the perf gate's timer
	// noise floor, so a regression on this path actually fails the gate.
	const passes = 4
	var seq [256]uint32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for pass := 0; pass < passes; pass++ {
			for j, p := range pkts {
				engine := p[21]
				binary.BigEndian.PutUint32(p[16:], seq[engine])
				seq[engine] += counts[j]
				srv.IngestPacket(p)
			}
		}
	}
	b.StopTimer()
	total := b.N * passes * records
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "records/sec")
	if got := srv.Stats().Records; got != uint64(total) {
		b.Fatalf("ingested %d records, want %d — the bench is not measuring a lossless path", got, total)
	}
}

// BenchmarkServerIngest is the gated sustained-ingest benchmark at the
// reference Abilene scale (121 OD pairs) and the Géant scale (529).
func BenchmarkServerIngest(b *testing.B) {
	b.Run("abilene", func(b *testing.B) { benchIngest(b, "abilene") })
	b.Run("geant", func(b *testing.B) { benchIngest(b, "geant") })
}
