package server

// chaos_test.go is the fault-injection end-to-end suite: every scenario
// here kills, starves or corrupts the daemon somewhere production
// eventually will, and asserts the crash-safety contract — a restart
// resumes from the last snapshot and characterizes the remainder of the
// week exactly as an uninterrupted daemon would, a failed snapshot write
// degrades the daemon instead of killing it, and a bad file on disk can
// never keep the collector down.

import (
	"context"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"netwide"
	"netwide/internal/checkpoint"
	"netwide/internal/dataset"
	"netwide/internal/fault"
	"netwide/internal/flowwire"
	"netwide/internal/stream"
	"netwide/internal/traffic"
)

// feedBins drives the dataset's regenerated v5 packets straight into
// IngestPacket. Bins [0, to) are always encoded — the exporters' sequence
// numbers must be the ones a single uninterrupted export engine would have
// produced — but only bins [from, to) are ingested, which is how a test
// resumes a restored daemon mid-week: the re-fed bins are bit-identical to
// the originals, so the one packet the snapshot already holds is caught by
// the restored dedupe ring. partial additionally ingests up to that many
// packets of bin to itself — the mid-bin crash shape.
func feedBins(t *testing.T, srv *Server, ds *dataset.Dataset, from, to, partial int) {
	t.Helper()
	be, err := newBinExporters(ds, flowwire.FormatNetFlowV5)
	if err != nil {
		t.Fatal(err)
	}
	for bin := 0; bin < to; bin++ {
		pkts, _, err := be.encodeBin(bin, 0)
		if err != nil {
			t.Fatal(err)
		}
		if bin < from {
			continue
		}
		for _, p := range pkts {
			srv.IngestPacket(p.data)
		}
	}
	if partial > 0 {
		pkts, _, err := be.encodeBin(to, 0)
		if err != nil {
			t.Fatal(err)
		}
		if partial > len(pkts) {
			partial = len(pkts)
		}
		for _, p := range pkts[:partial] {
			srv.IngestPacket(p.data)
		}
	}
}

func drainOK(t *testing.T, srv *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestChaosKillRestartParity is the tentpole proof of crash safety: the
// daemon is killed twice mid-week — once mid-bin at an arbitrary point,
// once in the middle of an anomaly's event window, the worst case for the
// aggregator's open events — restarted from its snapshot each time, and
// fed the rest of the week. The final anomaly ledger must match the batch
// Detect + Characterize output on the same data exactly: restored models
// score bit-identically, reopened events extend across the crash, and the
// restored sequence cursors dedupe the one packet the snapshot already
// held.
//
// Under -short only two days are fed and the assertions stop at restore
// mechanics and ingest integrity (batch event windows span the week, so
// exact anomaly parity is only meaningful on a full feed).
func TestChaosKillRestartParity(t *testing.T) {
	run := testRun(t)
	ds := run.Dataset()
	bins := run.Bins()
	full := true
	if testing.Short() {
		bins = 2 * traffic.BinsPerDay
		full = false
	}

	kills := []int{bins / 3, 2 * bins / 3}
	var batch []netwide.Anomaly
	if full {
		if err := run.Detect(netwide.DefaultDetectOptions()); err != nil {
			t.Fatal(err)
		}
		batch = run.Characterize()
		if len(batch) == 0 {
			t.Fatal("batch path characterized nothing; parity check is vacuous")
		}
		// Put the second kill inside an anomaly's window when one fits: the
		// crash then lands while the aggregator holds the event open, and
		// only the snapshot's reopened event can stitch it back together.
		for _, a := range batch {
			if a.StartBin > kills[0]+8 && a.EndBin < bins-8 && a.EndBin > a.StartBin {
				kills[1] = (a.StartBin + a.EndBin) / 2
				break
			}
		}
	}

	path := filepath.Join(t.TempDir(), "daemon.nwcp")
	newSrv := func() *Server {
		srv, err := New(run, Config{
			CheckpointPath:  path,
			CheckpointEvery: 7,
			Detect:          netwide.DefaultDetectOptions(),
			Stream:          parityStream(run),
		})
		if err != nil {
			t.Fatal(err)
		}
		return srv
	}

	srv := newSrv()
	if srv.Stats().Restored {
		t.Fatal("fresh daemon claims to have restored")
	}
	from := 0
	for i, kill := range kills {
		feedBins(t, srv, ds, from, kill, 5) // 5 packets into the kill bin: a mid-bin crash
		if st := srv.Stats(); st.CheckpointsWritten == 0 {
			t.Fatalf("segment %d wrote no snapshot before the kill", i)
		}
		ledgerAtKill := len(srv.Anomalies())
		srv.Kill()

		srv = newSrv()
		st := srv.Stats()
		if !st.Restored || st.RestoreErr != "" {
			t.Fatalf("restart %d did not restore: %+v", i, st)
		}
		if st.LastClosed <= from-1 || st.LastClosed >= kill {
			t.Fatalf("restart %d resumed at bin %d, outside segment [%d,%d)", i, st.LastClosed, from, kill)
		}
		if st.RestoredBin != st.LastClosed || st.LastCheckpointBin != st.LastClosed {
			t.Fatalf("restart %d cursor bookkeeping inconsistent: %+v", i, st)
		}
		// At CheckpointEvery 7 the snapshot is at most 7 closed bins stale.
		if kill-1-st.LastClosed > 7+1 {
			t.Fatalf("restart %d snapshot %d bins stale, cadence promises at most 8", i, kill-1-st.LastClosed)
		}
		if len(srv.Anomalies()) > ledgerAtKill {
			t.Fatalf("restart %d ledger grew across the crash: %d > %d", i, len(srv.Anomalies()), ledgerAtKill)
		}
		from = st.LastClosed + 1
	}
	feedBins(t, srv, ds, from, bins, 0)
	drainOK(t, srv)

	st := srv.Stats()
	if st.LostRecords != 0 || st.BadPackets != 0 || st.LateRecords != 0 || st.Unroutable != 0 || st.WildRecords != 0 {
		t.Fatalf("kill/restart cycles took ingest losses: %+v", st)
	}
	if st.Duplicates != uint64(len(kills)) {
		t.Fatalf("duplicates %d, want exactly %d: one snapshot-overlap packet per restore, caught by the restored dedupe ring", st.Duplicates, len(kills))
	}
	if st.BinsClosed != bins || st.BinsOpen != 0 {
		t.Fatalf("closed %d bins (open %d), want %d: every bin closed exactly once across the crashes", st.BinsClosed, st.BinsOpen, bins)
	}
	if st.LastCheckpointBin != bins-1 {
		t.Fatalf("drain snapshot covers through bin %d, want %d", st.LastCheckpointBin, bins-1)
	}
	if !full {
		if srv.Err() != nil {
			t.Fatalf("short chaos run left the daemon unhealthy: %v", srv.Err())
		}
		return
	}

	streamed := srv.Anomalies()
	bk := sortedKeys(batch)
	sk := sortedKeys(streamed)
	if len(bk) != len(sk) {
		t.Fatalf("killed-twice daemon characterized %d anomalies, uninterrupted batch %d:\n daemon %v\n batch  %v", len(sk), len(bk), sk, bk)
	}
	for i := range bk {
		if bk[i] != sk[i] {
			t.Errorf("anomaly %d differs:\n batch  %s\n daemon %s", i, bk[i], sk[i])
		}
	}
}

func sortedKeys(as []netwide.Anomaly) []string {
	keys := make([]string, len(as))
	for i, a := range as {
		keys[i] = anomalyKey(a)
	}
	sort.Strings(keys)
	return keys
}

// TestChaosDiskFullDegradesNotDies: checkpoint writes failing on a full
// disk must not take the collector down — ingest continues, the failure is
// counted and surfaced on /stats, the previous snapshot stays intact, and
// the first successful write after the disk clears heals the error.
func TestChaosDiskFullDegradesNotDies(t *testing.T) {
	run := testRun(t)
	ds := run.Dataset()
	path := filepath.Join(t.TempDir(), "daemon.nwcp")
	inj := fault.NewInjector()
	srv, err := New(run, Config{
		CheckpointPath:  path,
		CheckpointEvery: 1,
		Faults:          inj,
		Stream:          parityStream(run),
	})
	if err != nil {
		t.Fatal(err)
	}

	feedBins(t, srv, ds, 0, 4, 0)
	healthy := srv.Stats()
	if healthy.CheckpointsWritten == 0 || healthy.CheckpointErr != "" {
		t.Fatalf("healthy cadence: %+v", healthy)
	}

	inj.Arm(checkpoint.FaultWrite, fault.Fault{Err: fault.ErrDiskFull})
	feedBins(t, srv, ds, 4, 8, 0)
	st := srv.Stats()
	if st.CheckpointErrors == 0 || !strings.Contains(st.CheckpointErr, "disk full") {
		t.Fatalf("full disk not surfaced: %+v", st)
	}
	if st.CheckpointsWritten != healthy.CheckpointsWritten || st.LastCheckpointBin != healthy.LastCheckpointBin {
		t.Fatalf("snapshot bookkeeping advanced during the outage: %+v", st)
	}
	if srv.Err() != nil {
		t.Fatalf("full disk killed the daemon: %v", srv.Err())
	}
	if st.Records <= healthy.Records || st.BinsClosed <= healthy.BinsClosed {
		t.Fatalf("ingest stalled during the disk outage: %+v", st)
	}
	// The snapshot on disk is still the pre-outage one, and still restores.
	onDisk, err := checkpoint.ReadFile(path)
	if err != nil {
		t.Fatalf("previous snapshot unreadable after failed writes: %v", err)
	}
	if onDisk.Server.LastClosed != healthy.LastCheckpointBin {
		t.Fatalf("on-disk snapshot covers bin %d, want pre-outage %d", onDisk.Server.LastClosed, healthy.LastCheckpointBin)
	}

	inj.Disarm(checkpoint.FaultWrite)
	feedBins(t, srv, ds, 8, 10, 0)
	st = srv.Stats()
	if st.CheckpointErr != "" || st.CheckpointsWritten <= healthy.CheckpointsWritten {
		t.Fatalf("disk recovery did not heal the error: %+v", st)
	}
	if st.LastCheckpointBin <= healthy.LastCheckpointBin {
		t.Fatalf("snapshot cursor stuck after recovery: %+v", st)
	}
	drainOK(t, srv)
}

// TestChaosTornWritePreservesSnapshot: a write torn mid-envelope (power
// cut, full filesystem) must error, count, and leave the previous snapshot
// both present and restorable — the atomic-replace contract, observed from
// the daemon rather than the file layer.
func TestChaosTornWritePreservesSnapshot(t *testing.T) {
	run := testRun(t)
	ds := run.Dataset()
	path := filepath.Join(t.TempDir(), "daemon.nwcp")
	inj := fault.NewInjector()
	srv, err := New(run, Config{
		CheckpointPath:  path,
		CheckpointEvery: 1 << 30, // CheckpointNow drives every snapshot
		Faults:          inj,
		Stream:          parityStream(run),
	})
	if err != nil {
		t.Fatal(err)
	}
	feedBins(t, srv, ds, 0, 3, 0)
	if err := srv.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	good := srv.Stats().LastCheckpointBin

	inj.ArmTornWrite(checkpoint.FaultWrite, 100)
	feedBins(t, srv, ds, 3, 5, 0)
	if err := srv.CheckpointNow(); err == nil {
		t.Fatal("torn write reported success")
	}
	if inj.Trips(checkpoint.FaultWrite) == 0 {
		t.Fatal("torn-write fault never fired")
	}
	st := srv.Stats()
	if st.CheckpointErrors != 1 || st.CheckpointErr == "" || st.LastCheckpointBin != good {
		t.Fatalf("torn write misaccounted: %+v", st)
	}
	onDisk, err := checkpoint.ReadFile(path)
	if err != nil {
		t.Fatalf("previous snapshot unreadable after torn write: %v", err)
	}
	if onDisk.Server.LastClosed != good {
		t.Fatalf("torn write replaced the snapshot (covers %d, want %d)", onDisk.Server.LastClosed, good)
	}

	inj.Disarm(checkpoint.FaultWrite)
	if err := srv.CheckpointNow(); err != nil {
		t.Fatalf("snapshot after disarm: %v", err)
	}
	if st := srv.Stats(); st.CheckpointErr != "" || st.LastCheckpointBin <= good {
		t.Fatalf("recovery snapshot misaccounted: %+v", st)
	}
	drainOK(t, srv)
}

// TestChaosSlowRefitDuringDrain: a background refit that is still grinding
// (injected latency) when the operator drains must neither deadlock the
// drain nor fail it — the drain settles the refit and completes.
func TestChaosSlowRefitDuringDrain(t *testing.T) {
	run := testRun(t)
	ds := run.Dataset()
	half := run.Bins() / 2
	inj := fault.NewInjector()
	inj.Arm(stream.FaultRefit, fault.Fault{Delay: 500 * time.Millisecond})
	srv, err := New(run, Config{
		Faults: inj,
		Stream: netwide.StreamConfig{
			TrainBins:  half,
			BatchSize:  16,
			RefitEvery: 36,
			Window:     half,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Feed just past the refit hand-off point (each lane hands its first
	// refit to the slowed refitter at the 36th observed bin) and drain
	// immediately — the refits are still sleeping when the drain starts.
	feedBins(t, srv, ds, half, half+40, 0)

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		done <- srv.Drain(ctx)
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain during slow refit: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("drain deadlocked behind a slow refit")
	}
	if st := srv.Stats(); st.DegradedErr != "" || st.Err != "" {
		t.Fatalf("latency-only injection degraded the daemon: %+v", st)
	}
}

// TestChaosCheckpointTimer: with no bins closing (dead exporters), the
// wall-clock timer is the only thing that gets state to disk. The manual
// clock makes "the timer went off" a synchronous test event.
func TestChaosCheckpointTimer(t *testing.T) {
	run := testRun(t)
	ds := run.Dataset()
	path := filepath.Join(t.TempDir(), "daemon.nwcp")
	clock := fault.NewManualClock()
	srv, err := New(run, Config{
		CheckpointPath:     path,
		CheckpointEvery:    1 << 30, // bin cadence off: the timer is on trial
		CheckpointInterval: time.Hour,
		Clock:              clock,
		Stream:             parityStream(run),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	feedBins(t, srv, ds, 0, 2, 0)
	if st := srv.Stats(); st.CheckpointsWritten != 0 {
		t.Fatalf("bin cadence fired with CheckpointEvery maxed: %+v", st)
	}
	clock.Tick()
	deadline := time.Now().Add(30 * time.Second)
	for srv.Stats().CheckpointsWritten == 0 {
		if time.Now().After(deadline) {
			t.Fatal("timer tick produced no snapshot")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := srv.Stats(); st.LastCheckpointBin != st.LastClosed {
		t.Fatalf("timer snapshot cursor %d, want last closed %d", st.LastCheckpointBin, st.LastClosed)
	}
	written := srv.Stats().CheckpointsWritten
	drainOK(t, srv)
	// The drain stopped the timer and wrote the final snapshot.
	if st := srv.Stats(); st.CheckpointsWritten != written+1 {
		t.Fatalf("drain wrote %d snapshots on top of %d, want exactly one final", st.CheckpointsWritten-written, written)
	}
	if _, err := checkpoint.ReadFile(path); err != nil {
		t.Fatal(err)
	}
}

// TestChaosClockSkewAcrossRestart: a stranded watermark (hostile or
// clock-skewed far-future first packet) snapshotted and then restored must
// not wedge the restarted daemon — the watermark-reset quorum machinery
// has to work on restored state exactly as it does on live state.
func TestChaosClockSkewAcrossRestart(t *testing.T) {
	run := testRun(t)
	path := filepath.Join(t.TempDir(), "daemon.nwcp")
	cfg := Config{CheckpointPath: path, Stream: parityStream(run)}
	srv, err := New(run, cfg)
	if err != nil {
		t.Fatal(err)
	}
	recs := collectRecords(t, run, 10)
	srv.IngestPacket(pkt(t, 0, 1000, recs)) // skewed first packet strands the watermark
	if err := srv.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	srv.Kill()

	srv, err = New(run, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if !st.Restored || st.Watermark != 1000 || st.BinsOpen != 1 {
		t.Fatalf("restore did not carry the stranded state: %+v", st)
	}
	// Legitimate traffic far below the restored watermark: the quorum must
	// re-anchor it and bin close must resume, same as on a live daemon.
	seq := uint32(10)
	for bin := 0; bin < 12; bin++ {
		srv.IngestPacket(pkt(t, seq, bin, recs))
		seq += uint32(len(recs))
	}
	st = srv.Stats()
	if st.WatermarkResets != 1 {
		t.Fatalf("restored watermark never re-anchored: %+v", st)
	}
	if st.Watermark >= 1000 || st.BinsClosed == 0 {
		t.Fatalf("bin close never resumed after the reset: %+v", st)
	}
	if st.WildRecords != uint64(len(recs)) {
		t.Errorf("stranded bin's records not discarded as wild: %+v", st)
	}
	drainOK(t, srv)
}

// TestChaosCorruptCheckpointColdStarts is the server-level half of the
// hostile-snapshot suite (the envelope half lives in internal/checkpoint):
// whatever is on disk at startup — torn, bit-flipped, garbage, a snapshot
// from a differently configured daemon, or a semantically inconsistent
// one — New must come up cold, counting the fallback and carrying the
// reason on /stats, and the daemon must ingest normally. It must never
// panic and never trust the file.
func TestChaosCorruptCheckpointColdStarts(t *testing.T) {
	run := testRun(t)
	base := Config{Stream: parityStream(run)}

	// One genuine snapshot to corrupt: a short run, snapshotted, killed.
	seedPath := filepath.Join(t.TempDir(), "seed.nwcp")
	seedCfg := base
	seedCfg.CheckpointPath = seedPath
	srv, err := New(run, seedCfg)
	if err != nil {
		t.Fatal(err)
	}
	feedBins(t, srv, run.Dataset(), 0, 3, 0)
	srv.Kill()
	raw, err := os.ReadFile(seedPath)
	if err != nil {
		t.Fatal(err)
	}
	valid, err := checkpoint.ReadFile(seedPath)
	if err != nil {
		t.Fatal(err)
	}

	mutate := func(f func(*checkpoint.State)) func(string) {
		return func(path string) {
			st := *valid
			f(&st)
			if err := checkpoint.WriteFile(path, &st, nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	writeRaw := func(b []byte) func(string) {
		return func(path string) {
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	bitflip := append([]byte(nil), raw...)
	bitflip[len(bitflip)/2] ^= 0x10

	cases := []struct {
		name  string
		write func(path string)
	}{
		{"truncated mid-payload", writeRaw(raw[:len(raw)/2])},
		{"truncated mid-header", writeRaw(raw[:9])},
		{"empty file", writeRaw(nil)},
		{"bit flip", writeRaw(bitflip)},
		{"garbage", writeRaw([]byte("notnwcp: a week of garbage"))},
		{"wrong detector config", mutate(func(st *checkpoint.State) { st.K += 2 })},
		{"wrong topology", mutate(func(st *checkpoint.State) { st.Topology = "geant" })},
		{"ledger shorter than emitted", mutate(func(st *checkpoint.State) { st.Stream.Emitted += 3 })},
		{"open bin behind cursor", mutate(func(st *checkpoint.State) {
			st.Server.Shards[0].OpenBins = append(st.Server.Shards[0].OpenBins, checkpoint.OpenBin{
				Bin:     st.Server.LastClosed,
				Bytes:   make([]float64, st.ODPairs),
				Packets: make([]float64, st.ODPairs),
				Flows:   make([]float64, st.ODPairs),
			})
		})},
		{"dedupe ring out of shape", mutate(func(st *checkpoint.State) {
			st.Server.Shards[0].Engines = []checkpoint.EngineState{{ID: 0, Recent: make([]uint32, 200), Pos: 0}}
		})},
		{"wrong shard count", mutate(func(st *checkpoint.State) {
			st.Shards = 4
			st.Server.Shards = make([]checkpoint.ShardState, 4)
		})},
		// A snapshot from a daemon running the other model lifecycle: the
		// lane states would carry tracker vectors this refit daemon cannot
		// adopt, so the fingerprint rejects it up front.
		{"wrong model lifecycle", mutate(func(st *checkpoint.State) { st.Updater = "incremental" })},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "daemon.nwcp")
			tc.write(path)
			cfg := base
			cfg.CheckpointPath = path
			srv, err := New(run, cfg)
			if err != nil {
				t.Fatalf("bad snapshot kept the collector down: %v", err)
			}
			st := srv.Stats()
			if st.CheckpointFallbacks != 1 || st.RestoreErr == "" {
				t.Fatalf("fallback not accounted: %+v", st)
			}
			if st.Restored || st.Records != 0 || st.LastClosed != -1 {
				t.Fatalf("cold start leaked snapshot state: %+v", st)
			}
			// The cold daemon works: ingest a little and shut down clean
			// (overwriting the bad file with a good snapshot on the way out).
			feedBins(t, srv, run.Dataset(), 0, 2, 0)
			if srv.Err() != nil {
				t.Fatalf("cold-started daemon unhealthy: %v", srv.Err())
			}
			drainOK(t, srv)
			if _, err := checkpoint.ReadFile(path); err != nil {
				t.Fatalf("drain did not replace the bad snapshot: %v", err)
			}
		})
	}

	t.Run("no snapshot at all", func(t *testing.T) {
		cfg := base
		cfg.CheckpointPath = filepath.Join(t.TempDir(), "never-written.nwcp")
		srv, err := New(run, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if st := srv.Stats(); st.CheckpointFallbacks != 0 || st.RestoreErr != "" {
			t.Fatalf("a missing file is a first boot, not a fallback: %+v", st)
		}
		drainOK(t, srv)
	})

	// A replayed clean-drain snapshot must restore with zero staleness.
	t.Run("clean drain restores exactly", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "daemon.nwcp")
		cfg := base
		cfg.CheckpointPath = path
		first, err := New(run, cfg)
		if err != nil {
			t.Fatal(err)
		}
		feedBins(t, first, run.Dataset(), 0, 4, 0)
		drainOK(t, first)
		closed := first.Stats().BinsClosed

		second, err := New(run, cfg)
		if err != nil {
			t.Fatal(err)
		}
		st := second.Stats()
		if !st.Restored || st.BinsClosed != closed || st.BinsOpen != 0 {
			t.Fatalf("clean-drain restore lost bins: %+v (want %d closed)", st, closed)
		}
		if len(second.Anomalies()) != len(first.Anomalies()) {
			t.Fatalf("restored ledger %d anomalies, drained daemon had %d", len(second.Anomalies()), len(first.Anomalies()))
		}
		drainOK(t, second)
	})
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
