// Package server is the live front door of the reproduction: a long-running
// ingest daemon that stands where the paper's collection infrastructure
// stood — between the routers exporting sampled flow telemetry and the
// subspace detector consuming OD-aggregated timebins.
//
// The daemon runs one of two ingest paths around the same decode and
// accumulation arithmetic:
//
//   - The synchronous path (Receivers and Shards both 1, the default): one
//     UDP socket, one goroutine chain. Every datagram is decoded through a
//     flowwire.Registry — NetFlow v5, NetFlow v9, IPFIX and sFlow v5,
//     detected by version word, with hostile bytes counted and dropped,
//     never trusted — deduplicated by a per-(format, engine) sequence
//     cursor honoring each format's own sequence semantics
//     (flowwire.SequenceModel), resolved to an origin-destination PoP pair
//     exactly as the offline pipeline does it, and accumulated into
//     per-bin byte/packet/flow vectors. When the reorder grace window
//     moves past a bin, the bin closes and is submitted to a
//     StreamDetector.
//
//   - The sharded pipeline (Receivers > 1 or Shards > 1): a pool of
//     SO_REUSEPORT receiver sockets (single shared socket where the
//     platform lacks the option), each with its own decoder registry and
//     template cache, routing decoded batches by export engine to a set
//     of shard workers that each own a disjoint partition of the OD
//     space — bin accumulators, dedupe rings and sequence cursors stay
//     shard-local, so no lock is shared across the hot path. A central
//     coordinator advances the watermark, seals every shard's slice of a
//     closing bin at a barrier, merges the per-shard vectors into the
//     dense OD vector (exact: the partition is by origin PoP, so each OD
//     column is written by exactly one shard) and submits it to the one
//     central StreamDetector. Scoring stays central because the subspace
//     method is global: network-wide anomalies only appear in the full OD
//     matrix. See DESIGN.md E18.
//
// Batch parity: every per-record sum the server computes is an integer
// count below 2^53 folded into a float64, so the accumulated vectors are
// exact regardless of packet arrival order or shard interleaving; a
// replayed dataset therefore reproduces the generator's matrices bit for
// bit, and the daemon's characterized anomalies match the batch
// Characterize output on the same bins (the loopback end-to-end test pins
// this for both paths).
//
// The HTTP side is deliberately small: healthz (liveness, 503 once the
// detector has recorded an error), stats (ingest counters as JSON,
// including a per-protocol breakdown and — when sharded — per-receiver
// and per-shard counters with channel-depth gauges) and anomalies (the
// characterized anomaly log as JSON). Each endpoint is served both under
// the versioned /api/v1/ prefix and at its original unversioned path.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"netwide"
	"netwide/internal/checkpoint"
	"netwide/internal/dataset"
	"netwide/internal/engine"
	"netwide/internal/fault"
	"netwide/internal/flowwire"
	"netwide/internal/routing"
	"netwide/internal/topology"
	"netwide/internal/traffic"
)

// Config tunes an ingest daemon. The zero value listens on an ephemeral
// loopback UDP port with no HTTP endpoint.
type Config struct {
	// UDPAddr is the flow-export listen address (default "127.0.0.1:0";
	// the standard NetFlow port is 2055).
	UDPAddr string
	// Formats is the wire-format allowlist (nil or empty enables all four:
	// NetFlow v5, NetFlow v9, IPFIX, sFlow v5). A datagram in a disabled
	// format is counted as a bad packet and dropped.
	Formats []flowwire.Format
	// HTTPAddr is the status endpoint listen address ("" disables HTTP).
	HTTPAddr string
	// Epoch is the Unix time of bin 0: a record exported at UnixSecs lands
	// in bin (UnixSecs-Epoch)/300. Replayed datasets use Epoch 0 and stamp
	// headers with bin*300 directly.
	Epoch uint32
	// Grace is the reorder window in bins: a bin closes (and is submitted
	// to the detector) once a record arrives for a bin Grace or more bins
	// ahead of it, so packets delayed or reordered across a bin boundary
	// still land in their bin. Records for already-closed bins are counted
	// late and dropped. Default 1.
	Grace int
	// MaxAhead bounds how far ahead of the watermark a packet's bin may
	// claim to be (default 64 bins ≈ 5.3 hours). The bin timestamp is
	// attacker-controlled input that drives every bin close: without the
	// bound, one spoofed far-future datagram would force-close every open
	// bin with partial data and park the watermark where no legitimate bin
	// could ever close again. Packets beyond the bound are dropped and
	// counted (Stats.WildRecords). Values at or below Grace are raised to
	// 2*Grace: the bound must clear the reorder window, or a warm restart
	// (restored watermark Grace ahead of the resuming stream) would look
	// like a stranded watermark and discard restored bins.
	MaxAhead int
	// MaxOpenBins caps the accumulating (not yet closed) bins (default
	// 256; per shard when sharded). Records that would open a bin beyond
	// the cap are dropped and counted wild — bounding the daemon's memory
	// even against spoofed timestamps that scatter records across
	// arbitrary bins.
	MaxOpenBins int
	// ReadBuffer is the UDP socket receive buffer in bytes, applied to
	// every receiver socket (default 4MB — the sockets must absorb export
	// bursts while a bin close runs).
	ReadBuffer int
	// Receivers sizes the UDP receiver pool (default 1). With more than
	// one, the daemon binds that many sockets to the same address with
	// SO_REUSEPORT so the kernel spreads datagrams across them by flow
	// hash; on platforms without the option it falls back to one shared
	// socket drained by Receivers reader goroutines. Each receiver owns
	// its own decoder registry (and therefore its own v9/IPFIX template
	// cache — exporters resend templates periodically, so every receiver
	// converges on the set it needs).
	Receivers int
	// Shards sizes the binning tier (default 1). With Receivers or Shards
	// above 1 the daemon runs the sharded pipeline: decoded batches are
	// routed by export engine to Shards workers, each owning a disjoint
	// hash-partition of the OD space with its own accumulators, dedupe
	// rings and sequence cursors; a central coordinator seals, merges and
	// submits closing bins to the single detector. The shard count is part
	// of the checkpoint fingerprint — restarting with a different count
	// cold-starts.
	Shards int
	// CheckpointPath enables crash-safe operation: the daemon periodically
	// snapshots its full recovery state (model generations, open events,
	// open bins, sequence cursors, watermark, anomaly ledger) to this file,
	// atomically, and New restores from it when it exists — falling back to
	// a cold start (with the reason on /stats) when the file is torn,
	// corrupt, from a different format version, or from a different
	// network model. "" disables checkpointing.
	CheckpointPath string
	// CheckpointEvery is the snapshot cadence in closed bins (default 1
	// when CheckpointPath is set): a snapshot is taken after every N bins
	// are closed and submitted. At the default every-bin cadence a restart
	// resumes at most one bin stale.
	CheckpointEvery int
	// CheckpointInterval adds a wall-clock snapshot timer (0 disables it):
	// a safety net for quiet periods when no bins close — e.g. the
	// exporters died — so the ledger and counters still reach disk.
	CheckpointInterval time.Duration
	// Clock drives the CheckpointInterval timer (default the wall clock;
	// chaos tests install a manual one).
	Clock fault.Clock
	// Faults, when non-nil, threads error injection through the checkpoint
	// write path and the detector's background refits. Nil in production.
	Faults *fault.Injector
	// Detect and Stream configure the underlying StreamDetector.
	Detect netwide.DetectOptions
	Stream netwide.StreamConfig
}

func (c Config) withDefaults() Config {
	if c.UDPAddr == "" {
		c.UDPAddr = "127.0.0.1:0"
	}
	if c.Grace <= 0 {
		c.Grace = 1
	}
	if c.MaxAhead <= 0 {
		c.MaxAhead = 64
	}
	// The wild-timestamp bound must clear the reorder window: after a warm
	// restart the restored watermark sits up to Grace bins ahead of where
	// the live stream resumes, and a MaxAhead at or below Grace would read
	// that as a stranded watermark — resetting it and discarding restored
	// open bins on every resume. Widening the bound is safe (it only
	// loosens a spoofing defense, never drops traffic); honoring a
	// too-small explicit value would break restarts silently.
	if c.MaxAhead <= c.Grace {
		c.MaxAhead = 2 * c.Grace
	}
	if c.MaxOpenBins <= 0 {
		c.MaxOpenBins = 256
	}
	if c.ReadBuffer <= 0 {
		c.ReadBuffer = 4 << 20
	}
	if c.Receivers <= 0 {
		c.Receivers = 1
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.CheckpointPath != "" && c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 1
	}
	if c.Clock == nil {
		c.Clock = fault.WallClock{}
	}
	return c
}

// Stats is a snapshot of the daemon's ingest counters, shaped for the
// /stats JSON endpoint.
type Stats struct {
	// Packets counts datagrams received; BadPackets the subset rejected by
	// the decoder (truncated, bad version, hostile counts); Duplicates the
	// subset dropped by per-engine sequence replay detection.
	Packets    uint64 `json:"packets"`
	BadPackets uint64 `json:"bad_packets"`
	Duplicates uint64 `json:"duplicate_packets"`
	// Records counts decoded flow records accepted for aggregation.
	// LostRecords is the sequence-gap estimate of records dropped in
	// transit, summed over the formats whose sequence unit is a record
	// (NetFlow v5 flows, IPFIX data records); the per-protocol breakdown
	// carries every format's loss in its own unit. LateRecords arrived for
	// bins already closed; Unroutable records carried an unknown engine
	// identity or an unresolvable destination.
	Records     uint64 `json:"records"`
	LostRecords uint64 `json:"lost_records"`
	LateRecords uint64 `json:"late_records"`
	Unroutable  uint64 `json:"unroutable_records"`
	// Protocols breaks the ingest counters down per wire format; only
	// formats that have received at least one datagram appear.
	Protocols map[string]ProtoStats `json:"protocols,omitempty"`
	// WildRecords carried bin timestamps the daemon refused to trust: more
	// than MaxAhead bins past the watermark, or needing an open bin beyond
	// MaxOpenBins. WatermarkResets counts stranded-watermark recoveries
	// (a far-future first packet or exporter clock jump, re-anchored once
	// a quorum of routable traffic ran consistently below it).
	WildRecords     uint64 `json:"wild_records"`
	WatermarkResets uint64 `json:"watermark_resets"`
	// BinsClosed bins have been submitted to the detector; BinsOpen are
	// still accumulating. Watermark is the highest bin seen, LastClosed the
	// highest submitted.
	BinsClosed int `json:"bins_closed"`
	BinsOpen   int `json:"bins_open"`
	Watermark  int `json:"watermark"`
	LastClosed int `json:"last_closed"`
	// AlarmBins counts scored bins where any measure alarmed; Anomalies is
	// the running count of fully characterized anomalies.
	AlarmBins int `json:"alarm_bins"`
	Anomalies int `json:"anomalies"`
	// Generations is the per-measure model generation (B, P, F): the number
	// of completed background refits.
	Generations [dataset.NumMeasures]uint64 `json:"generations"`
	// ModelFreshness reports the per-measure model-lifecycle gauges (B, P,
	// F order): updater kind, generation, per-bin updates folded into the
	// current generation, bins since the last full (re)fit, and staleness
	// in bins. Present only when a model lifecycle is active (incremental
	// updater, or a refit cadence) — absent on a static-model daemon, so
	// that configuration's JSON surface stays byte-identical.
	ModelFreshness []FreshnessStat `json:"model_freshness,omitempty"`
	// Receivers and Shards break the ingest down across the sharded
	// pipeline (absent on the synchronous path): per-receiver datagram
	// counters and per-shard record counters with queue-depth gauges.
	// MergeQueueLen is the seal-reply queue depth between the shards and
	// the coordinator.
	Receivers     []ReceiverStats `json:"receivers,omitempty"`
	Shards        []ShardStats    `json:"shards,omitempty"`
	MergeQueueLen int             `json:"merge_queue_len,omitempty"`
	// Checkpointing state. CheckpointsWritten / CheckpointErrors count
	// snapshot attempts; LastCheckpointBin is the highest closed bin the
	// latest snapshot covers (-1 before the first). Restored reports this
	// process recovered from a snapshot covering bins through RestoredBin.
	// CheckpointFallbacks counts startups that found a snapshot but had to
	// cold-start instead (torn, corrupt, version skew, wrong fingerprint)
	// — the reason lands in RestoreErr. CheckpointErr carries the most
	// recent snapshot-write failure (a full disk shows up here, not as a
	// crash).
	CheckpointsWritten  uint64 `json:"checkpoints_written,omitempty"`
	CheckpointErrors    uint64 `json:"checkpoint_errors,omitempty"`
	LastCheckpointBin   int    `json:"last_checkpoint_bin"`
	Restored            bool   `json:"restored,omitempty"`
	RestoredBin         int    `json:"restored_bin,omitempty"`
	CheckpointFallbacks uint64 `json:"checkpoint_fallbacks,omitempty"`
	RestoreErr          string `json:"restore_err,omitempty"`
	CheckpointErr       string `json:"checkpoint_err,omitempty"`
	// Draining reports a shutdown in progress. Err carries the first FATAL
	// error — an ingest submit failure or a detector scoring failure ("",
	// and /healthz 200, when healthy). DegradedErr carries a background
	// refit failure: the daemon keeps serving correct verdicts on the
	// previous model generation, so it is reported without failing the
	// liveness probe.
	Draining    bool   `json:"draining"`
	Err         string `json:"err,omitempty"`
	DegradedErr string `json:"degraded_err,omitempty"`
}

// FreshnessStat is one measure lane's model-freshness gauges.
type FreshnessStat struct {
	// Measure is the lane's single-letter code ("B", "P", "F").
	Measure string `json:"measure"`
	// Updater is the lifecycle kind keeping the lane's model current
	// ("refit", "incremental").
	Updater string `json:"updater"`
	// Generation counts adopted full (re)fits; Updates counts per-bin
	// incremental folds into the current generation (0 under refit).
	Generation uint64 `json:"generation"`
	Updates    uint64 `json:"updates"`
	// BinsSinceCorrection is how many bins ago the last full (re)fit was
	// adopted; StalenessBins is how many observed bins the scoring model
	// has not absorbed — up to RefitEvery under the refit lifecycle, at
	// most 1 under the incremental one.
	BinsSinceCorrection int `json:"bins_since_correction"`
	StalenessBins       int `json:"staleness_bins"`
}

// ProtoStats is one wire format's slice of the ingest counters, keyed in
// Stats.Protocols by the format name ("netflow5", "netflow9", "ipfix",
// "sflow").
type ProtoStats struct {
	Packets    uint64 `json:"packets"`
	BadPackets uint64 `json:"bad_packets"`
	Duplicates uint64 `json:"duplicate_packets"`
	Records    uint64 `json:"records"`
	// LostUnits is the sequence-gap loss estimate in the format's own
	// sequence unit — flows for v5, export packets for v9, data records
	// for IPFIX, flow samples for sFlow — named by SeqUnit.
	LostUnits uint64 `json:"lost_units"`
	SeqUnit   string `json:"seq_unit"`
}

// ReceiverStats is one receiver socket's slice of the ingest counters.
type ReceiverStats struct {
	Packets    uint64 `json:"packets"`
	BadPackets uint64 `json:"bad_packets"`
	Bytes      uint64 `json:"bytes"`
}

// ShardStats is one binning shard's slice of the ingest counters plus its
// queue gauges: QueueLen/QueueCap expose the receiver→shard channel depth
// (a persistently full queue means the shard is the bottleneck);
// SealedThrough is the highest bin the shard has handed to the merge
// layer.
type ShardStats struct {
	Records       uint64 `json:"records"`
	Duplicates    uint64 `json:"duplicate_packets"`
	LateRecords   uint64 `json:"late_records"`
	WildRecords   uint64 `json:"wild_records"`
	Unroutable    uint64 `json:"unroutable_records"`
	BinsOpen      int    `json:"bins_open"`
	SealedThrough int    `json:"sealed_through"`
	QueueLen      int    `json:"queue_len"`
	QueueCap      int    `json:"queue_cap"`
}

// counters is the daemon's hot counter block. Everything here is mutated
// on the ingest path — by the one ingest goroutine on the synchronous
// path, by receivers, shard workers and the coordinator concurrently on
// the sharded one — and read lock-free by the /stats handler, so every
// field is atomic. The watermark and lastClosed gauges have a single
// writer (the ingest goroutine or the coordinator); the rest are add-only
// except for the saturating loss refunds.
type counters struct {
	packets, badPackets, duplicates, records,
	lostRecords, lateRecords, unroutable,
	wildRecords, watermarkResets atomic.Uint64
	binsClosed, binsOpen, watermark, lastClosed atomic.Int64
}

// protoCounters is the internal mutable form of ProtoStats, held in a flat
// per-format array. The counters are shared across receivers and shards
// (a format is not shard-local), hence atomic.
type protoCounters struct {
	packets, badPackets, duplicates, records, lostUnits atomic.Uint64
}

// state snapshots the per-format counters, reporting whether any is
// nonzero (zero-valued formats are omitted from /stats and checkpoints).
func (p *protoCounters) state(f flowwire.Format) (checkpoint.ProtoState, bool) {
	ps := checkpoint.ProtoState{
		Format:     uint8(f),
		Packets:    p.packets.Load(),
		BadPackets: p.badPackets.Load(),
		Duplicates: p.duplicates.Load(),
		Records:    p.records.Load(),
		LostUnits:  p.lostUnits.Load(),
	}
	seen := ps.Packets != 0 || ps.BadPackets != 0 || ps.Duplicates != 0 || ps.Records != 0 || ps.LostUnits != 0
	return ps, seen
}

// satSub subtracts up to n from c, saturating at zero — the sequence
// refund path, where two concurrent refunds against a shared per-format
// counter must never wrap below zero.
func satSub(c *atomic.Uint64, n uint64) {
	for {
		cur := c.Load()
		sub := n
		if sub > cur {
			sub = cur
		}
		if c.CompareAndSwap(cur, cur-sub) {
			return
		}
	}
}

// binAcc accumulates one open timebin: the three per-OD vectors the
// detector scores. The slices are handed to the detector at close (which
// retains them), so a bin is never reused after submission.
type binAcc struct {
	bytes, packets, flows []float64
	records               uint64
}

// Server is a running ingest daemon. Construct with New (trains the
// detector), call Start (binds sockets, spawns the readers), and stop with
// Drain, which flushes every in-flight bin through the detector before
// returning — no accepted record is ever dropped by a shutdown.
type Server struct {
	cfg Config
	run *netwide.Run
	det *netwide.StreamDetector
	top *topology.Topology
	res *routing.Resolver

	conns   []*net.UDPConn
	httpLn  net.Listener
	httpSrv *http.Server

	readersWG  sync.WaitGroup
	consumerWG sync.WaitGroup

	// ingestMu serializes the synchronous ingest path: the full
	// IngestPacket body (including the out-of-mu detector submit), the
	// drain flush, and checkpoint capture. It is always taken before mu
	// and never by the verdict consumer or the HTTP handlers, so holding
	// it across a detector submit cannot deadlock. Unused by the sharded
	// pipeline, which serializes per shard instead.
	ingestMu sync.Mutex
	// binsSinceCp counts bins closed since the last snapshot — the
	// bin-driven checkpoint cadence. Atomic because the coordinator
	// increments it while the checkpointer goroutine resets it.
	binsSinceCp atomic.Int64
	// cpTimerStop ends the wall-clock checkpoint timer goroutine.
	cpTimerStop chan struct{}
	timerWG     sync.WaitGroup

	// ledgerCond (on mu) wakes checkpoint capture when the verdict
	// consumer grows the anomaly ledger: a snapshot waits until the ledger
	// holds every anomaly emitted before its barrier.
	ledgerCond *sync.Cond

	// reg decodes every datagram on the synchronous path; it owns the
	// v9/IPFIX template caches there, so it is ingestMu state. The sharded
	// pipeline decodes on per-receiver registries instead (flowwire
	// registries are not safe for concurrent use) and keeps this one only
	// for the enabled-format fingerprint.
	reg *flowwire.Registry
	// recs is the synchronous path's reusable record buffer.
	recs []flowwire.Record
	// seq tracks one sequence cursor per (format, engine) export stream.
	// The key space is attacker-influenced (v9/IPFIX source IDs are 32
	// bits on the wire), so the map is capped at maxEngineCursors.
	// Synchronous path only; shard workers own their own maps.
	seq map[engineKey]*engineSeq
	// bins holds the open accumulators (synchronous path only).
	bins map[int]*binAcc
	// behindStreak counts consecutive routable packets landing more than
	// MaxAhead bins below the watermark — the stranded-watermark signal.
	// Synchronous path only; shard workers count their own.
	behindStreak int

	ctr counters
	// proto is the per-format counter array behind Stats.Protocols
	// (index FormatUnknown stays zero; undetectable garbage only reaches
	// the global BadPackets).
	proto [flowwire.NumFormats]protoCounters

	// Sharded pipeline state (empty on the synchronous path). See shard.go
	// for the moving parts and DESIGN.md E18 for the architecture.
	recvs     []*receiver
	shards    []*shardWorker
	mergeCh   chan sealReply
	coordBell chan struct{}
	coordCtl  chan coordMsg
	coordDone chan struct{}
	shardWG   sync.WaitGroup
	// pauseMu freezes the receiver pool for a consistent sharded
	// checkpoint capture: receivers hold the read side per datagram, the
	// capture takes the write side.
	pauseMu sync.RWMutex
	// pendingObs is the highest bin any shard has accepted routable
	// traffic for (CAS-max); the coordinator folds it into the watermark.
	pendingObs atomic.Int64
	// resetReq/resetBin carry a shard's stranded-watermark quorum signal
	// to the coordinator.
	resetReq atomic.Bool
	resetBin atomic.Int64
	// cpMu serializes sharded checkpoint captures against each other and
	// against the drain teardown.
	cpMu   sync.Mutex
	cpBell chan struct{}
	cpStop chan struct{}
	cpWG   sync.WaitGroup

	// mu guards everything below. It is never held across a detector
	// Submit: backpressure from the pipeline must not deadlock against the
	// verdict consumer (which takes mu to append anomalies) or block the
	// HTTP handlers.
	mu          sync.Mutex
	anoms       []netwide.Anomaly
	gens        [dataset.NumMeasures]uint64
	alarmBins   int
	cpWritten   uint64
	cpErrors    uint64
	lastCpBin   int
	restored    bool
	restoredBin int
	cpFallbacks uint64
	restoreErr  string
	cpErr       string
	started     bool
	draining    bool
	firstError  error
}

// sharded reports whether the daemon runs the receiver→shard→merge
// pipeline (Receivers or Shards above 1) rather than the synchronous
// single-goroutine path.
func (s *Server) sharded() bool { return len(s.shards) > 0 }

// numShards is the binning partition count (1 on the synchronous path) —
// checkpoint fingerprint material.
func (s *Server) numShards() int {
	if len(s.shards) > 0 {
		return len(s.shards)
	}
	return 1
}

// shardOf maps an export engine to its binning shard. The engine is the
// origin PoP, and the OD index space is partitioned by origin, so routing
// whole engines keeps every OD column (and every sequence cursor) owned
// by exactly one shard. Fibonacci hashing spreads dense small engine IDs;
// the mapping is deterministic for a given shard count, which is what
// lets checkpointed shard state restore in place.
func (s *Server) shardOf(engine uint32) int {
	n := len(s.shards)
	if n <= 1 {
		return 0
	}
	return int(uint64(engine*0x9E3779B1) * uint64(n) >> 32)
}

// New trains one detector lane per traffic measure on the run (see
// netwide.StreamConfig — the paper-parity setup trains on the run's full
// matrices) and assembles the daemon around it. The run doubles as the
// daemon's network model: its topology resolves engine IDs and destination
// prefixes, its seasonal baselines classify the anomalies the detector
// finds. No sockets are bound until Start, but the sharded pipeline's
// workers start here so tests and benchmarks can drive ingest without a
// socket.
// New also attempts crash recovery when cfg.CheckpointPath names an
// existing snapshot: if the file verifies (checksum, version, fingerprint
// — including the shard count) the daemon resumes from it — restored
// models, reopened events, refilled open bins, sequence cursors,
// watermark, anomaly ledger — and is at most CheckpointEvery bins stale.
// A snapshot that fails any check triggers a cold start instead, with the
// reason on Stats.RestoreErr: a bad file on disk must never keep the
// collector down.
func New(run *netwide.Run, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	cfg.Stream.Faults = cfg.Faults
	ds := run.Dataset()
	// The daemon resolves what actually arrives: unlike the generator's
	// resolver it simulates no resolution failures of its own (fraction 0),
	// so a replayed record resolves exactly as it did at generation time.
	res, err := routing.BuildResolver(ds.Top, nil, 0)
	if err != nil {
		return nil, fmt.Errorf("server: build resolver: %w", err)
	}
	reg, err := flowwire.NewRegistry(cfg.Formats...)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	s := &Server{
		cfg:  cfg,
		run:  run,
		top:  ds.Top,
		res:  res,
		reg:  reg,
		seq:  map[engineKey]*engineSeq{},
		bins: map[int]*binAcc{},
	}
	s.ledgerCond = sync.NewCond(&s.mu)
	s.ctr.watermark.Store(-1)
	s.ctr.lastClosed.Store(-1)
	s.lastCpBin = -1
	if cfg.Receivers > 1 || cfg.Shards > 1 {
		if err := s.buildPipeline(); err != nil {
			return nil, err
		}
	}

	if cfg.CheckpointPath != "" {
		if st, err := checkpoint.ReadFile(cfg.CheckpointPath); err != nil {
			if !errors.Is(err, os.ErrNotExist) {
				// A snapshot exists but cannot be trusted: cold-start and
				// say why, rather than crash-loop on a bad file.
				s.cpFallbacks++
				s.restoreErr = err.Error()
			}
		} else if err := s.restore(st); err != nil {
			s.cpFallbacks++
			s.restoreErr = err.Error()
			s.det = nil // discard any partially built detector
			// Discard any template-cache state a partial restore left in
			// the registries: a cold start must not trust checkpoint bytes.
			s.reg, _ = flowwire.NewRegistry(cfg.Formats...)
			s.seq = map[engineKey]*engineSeq{}
			for _, r := range s.recvs {
				r.reg, _ = flowwire.NewRegistry(cfg.Formats...)
			}
		}
	}
	if s.det == nil {
		det, err := run.NewStreamDetector(cfg.Detect, cfg.Stream)
		if err != nil {
			return nil, fmt.Errorf("server: train detector: %w", err)
		}
		s.det = det
	}
	if s.sharded() {
		s.startPipeline()
	}
	s.consumerWG.Add(1)
	go s.consumeVerdicts()
	return s, nil
}

// detectOpts returns the effective detector options (Config.Detect, with
// the zero value meaning the defaults — the same resolution New applies).
func (s *Server) detectOpts() netwide.DetectOptions {
	opts := s.cfg.Detect
	if opts.K == 0 {
		opts = netwide.DefaultDetectOptions()
	}
	return opts
}

// streamKind returns the effective model-lifecycle kind and drift-
// correction cadence: Config.Stream after the same zero-value defaulting
// netwide applies, because the raw config may be all-zero while the
// detector actually runs the defaults.
func (s *Server) streamKind() (engine.UpdaterKind, int) {
	eff := s.cfg.Stream.WithDefaults()
	kind, err := engine.ParseUpdaterKind(eff.Updater)
	if err != nil {
		// Unreachable once the detector constructor accepted the config;
		// fall back to the default kind to keep this accessor total.
		kind = engine.UpdaterRefit
	}
	return kind, eff.RefitEvery
}

// fingerprint checks that a snapshot was written by a daemon built around
// the same network model, detector configuration and shard layout as this
// one.
func (s *Server) fingerprint(st *checkpoint.State) error {
	ds := s.run.Dataset()
	opts := s.detectOpts()
	kind, _ := s.streamKind()
	switch {
	case st.Topology != ds.Top.Name:
		return fmt.Errorf("snapshot topology %q, daemon runs %q", st.Topology, ds.Top.Name)
	case st.ODPairs != ds.NumODPairs():
		return fmt.Errorf("snapshot has %d OD pairs, topology %q has %d", st.ODPairs, ds.Top.Name, ds.NumODPairs())
	case st.Measures != int(dataset.NumMeasures):
		return fmt.Errorf("snapshot has %d measures, want %d", st.Measures, dataset.NumMeasures)
	case st.K != opts.K || st.Alpha != opts.Alpha:
		return fmt.Errorf("snapshot detector (K=%d, alpha=%v), daemon configured (K=%d, alpha=%v)", st.K, st.Alpha, opts.K, opts.Alpha)
	case st.Epoch != s.cfg.Epoch:
		return fmt.Errorf("snapshot epoch %d, daemon epoch %d", st.Epoch, s.cfg.Epoch)
	case !slices.Equal(st.Formats, s.enabledFormats()):
		return fmt.Errorf("snapshot formats %v, daemon enables %v", st.Formats, s.enabledFormats())
	case st.Shards != s.numShards():
		// Open bins and cursors are partitioned by engine hash under the
		// snapshot's shard count; a different layout cannot adopt them.
		return fmt.Errorf("snapshot captured with %d shards, daemon runs %d", st.Shards, s.numShards())
	case st.Updater != string(kind):
		// Lane states embed lifecycle-specific payloads (refit windows vs
		// tracker vectors); a daemon running the other lifecycle cannot
		// adopt them.
		return fmt.Errorf("snapshot captured under the %q model lifecycle, daemon runs %q", st.Updater, kind)
	}
	return nil
}

// enabledFormats lists the registry's enabled wire formats in wire-version
// order — checkpoint fingerprint material, since engine cursors and
// template caches only make sense under the same decoder set.
func (s *Server) enabledFormats() []uint8 {
	var out []uint8
	for _, f := range flowwire.AllFormats() {
		if s.reg.Enabled(f) {
			out = append(out, uint8(f))
		}
	}
	return out
}

// restore rebuilds the daemon's state from a verified snapshot. Every
// stored field is cross-validated before it is believed — the snapshot
// passed the checksum, but shape and invariants are this layer's job (the
// detector's own state validates inside RestoreStreamDetector). Any error
// leaves the caller to cold-start. Runs before any pipeline goroutine
// starts, so plain assignment into shard workers is safe.
func (s *Server) restore(st *checkpoint.State) error {
	if err := s.fingerprint(st); err != nil {
		return err
	}
	sv := &st.Server
	if uint64(len(st.Anomalies)) != st.Stream.Emitted {
		return fmt.Errorf("snapshot ledger holds %d anomalies, detector emitted %d: inconsistent snapshot", len(st.Anomalies), st.Stream.Emitted)
	}
	if st.Stream.Started {
		if sv.LastClosed != st.Stream.LastBin {
			return fmt.Errorf("snapshot last closed bin %d disagrees with detector cursor %d", sv.LastClosed, st.Stream.LastBin)
		}
	} else if sv.LastClosed != -1 {
		return fmt.Errorf("snapshot closed bins through %d but detector never started", sv.LastClosed)
	}
	if len(sv.Shards) != s.numShards() {
		return fmt.Errorf("snapshot holds %d shard states, daemon runs %d shards", len(sv.Shards), s.numShards())
	}
	p := s.top.NumODPairs()
	shBins := make([]map[int]*binAcc, len(sv.Shards))
	shSeq := make([]map[engineKey]*engineSeq, len(sv.Shards))
	for i := range sv.Shards {
		ss := &sv.Shards[i]
		if ss.SealedThrough < sv.LastClosed {
			return fmt.Errorf("snapshot shard %d sealed through %d, behind last closed %d", i, ss.SealedThrough, sv.LastClosed)
		}
		if len(ss.OpenBins) > s.cfg.MaxOpenBins {
			return fmt.Errorf("snapshot shard %d holds %d open bins, cap is %d", i, len(ss.OpenBins), s.cfg.MaxOpenBins)
		}
		bins := make(map[int]*binAcc, len(ss.OpenBins))
		for _, ob := range ss.OpenBins {
			if ob.Bin <= ss.SealedThrough {
				return fmt.Errorf("snapshot shard %d open bin %d at or behind its seal point %d", i, ob.Bin, ss.SealedThrough)
			}
			if len(ob.Bytes) != p || len(ob.Packets) != p || len(ob.Flows) != p {
				return fmt.Errorf("snapshot open bin %d vectors sized (%d,%d,%d), want %d", ob.Bin, len(ob.Bytes), len(ob.Packets), len(ob.Flows), p)
			}
			for _, vec := range [][]float64{ob.Bytes, ob.Packets, ob.Flows} {
				for _, v := range vec {
					if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
						return fmt.Errorf("snapshot open bin %d carries non-finite or negative traffic", ob.Bin)
					}
				}
			}
			if bins[ob.Bin] != nil {
				return fmt.Errorf("snapshot shard %d lists open bin %d twice", i, ob.Bin)
			}
			bins[ob.Bin] = &binAcc{
				bytes:   append([]float64(nil), ob.Bytes...),
				packets: append([]float64(nil), ob.Packets...),
				flows:   append([]float64(nil), ob.Flows...),
				records: ob.Records,
			}
		}
		if len(ss.Engines) > maxEngineCursors {
			return fmt.Errorf("snapshot shard %d holds %d engine cursors, cap is %d", i, len(ss.Engines), maxEngineCursors)
		}
		seq := make(map[engineKey]*engineSeq, len(ss.Engines))
		for _, es := range ss.Engines {
			f := flowwire.Format(es.Format)
			if f == flowwire.FormatUnknown || f >= flowwire.NumFormats || !s.reg.Enabled(f) {
				return fmt.Errorf("snapshot engine cursor for unknown or disabled format %d", es.Format)
			}
			if len(sv.Shards) > 1 && s.shardOf(es.ID) != i {
				return fmt.Errorf("snapshot shard %d holds cursor for engine %d, which hashes to shard %d", i, es.ID, s.shardOf(es.ID))
			}
			key := engineKey{f, es.ID}
			if seq[key] != nil {
				return fmt.Errorf("snapshot lists engine %v/%d twice", f, es.ID)
			}
			if len(es.Recent) > dedupeWindow || es.Pos < 0 || es.Pos >= dedupeWindow {
				return fmt.Errorf("snapshot engine %v/%d dedupe ring out of shape (%d entries, pos %d)", f, es.ID, len(es.Recent), es.Pos)
			}
			e := &engineSeq{started: true, next: es.Next, fill: len(es.Recent), pos: es.Pos}
			copy(e.recent[:], es.Recent)
			seq[key] = e
		}
		shBins[i], shSeq[i] = bins, seq
	}
	type protoVals struct{ packets, badPackets, duplicates, records, lostUnits uint64 }
	var proto [flowwire.NumFormats]protoVals
	protoSeen := map[uint8]bool{}
	for _, ps := range sv.Protocols {
		f := flowwire.Format(ps.Format)
		if f == flowwire.FormatUnknown || f >= flowwire.NumFormats {
			return fmt.Errorf("snapshot protocol counters for unknown format %d", ps.Format)
		}
		if protoSeen[ps.Format] {
			return fmt.Errorf("snapshot lists protocol %v twice", f)
		}
		protoSeen[ps.Format] = true
		proto[f] = protoVals{ps.Packets, ps.BadPackets, ps.Duplicates, ps.Records, ps.LostUnits}
	}
	tmpl := map[flowwire.Format][]flowwire.TemplateSnapshot{}
	for _, ts := range sv.Templates {
		f := flowwire.Format(ts.Format)
		if f != flowwire.FormatNetFlowV9 && f != flowwire.FormatIPFIX {
			return fmt.Errorf("snapshot template for non-template format %d", ts.Format)
		}
		fields := make([]flowwire.FieldSpec, len(ts.Fields))
		for i, fd := range ts.Fields {
			fields[i] = flowwire.FieldSpec{ID: fd.ID, Enterprise: fd.Enterprise, Length: fd.Length}
		}
		tmpl[f] = append(tmpl[f], flowwire.TemplateSnapshot{
			Source: ts.Source, ID: ts.ID, Scope: ts.Scope, Fields: fields,
		})
	}
	// The registries revalidate every definition exactly like a hostile
	// wire template; a failure here (or below) makes New rebuild them, so
	// a partially restored cache never survives into a cold start. Every
	// receiver gets the full set — the kernel may hash any engine's
	// packets to any socket.
	for f, snaps := range tmpl {
		if err := s.reg.RestoreTemplates(f, snaps); err != nil {
			return fmt.Errorf("snapshot template restore (%v): %w", f, err)
		}
		for _, r := range s.recvs {
			if err := r.reg.RestoreTemplates(f, snaps); err != nil {
				return fmt.Errorf("snapshot template restore (%v): %w", f, err)
			}
		}
	}

	det, err := s.run.RestoreStreamDetector(st.Stream, s.cfg.Stream)
	if err != nil {
		return err
	}
	s.det = det
	if s.sharded() {
		for i, w := range s.shards {
			w.bins = shBins[i]
			w.seq = shSeq[i]
			w.sealedThrough = sv.Shards[i].SealedThrough
			w.behindStreak = sv.Shards[i].BehindStreak
			w.binsOpen.Store(int64(len(w.bins)))
			w.sealed.Store(int64(w.sealedThrough))
		}
	} else {
		s.bins = shBins[0]
		s.seq = shSeq[0]
		s.behindStreak = sv.Shards[0].BehindStreak
		s.ctr.binsOpen.Store(int64(len(s.bins)))
	}
	for f := flowwire.Format(1); f < flowwire.NumFormats; f++ {
		pv := proto[f]
		s.proto[f].packets.Store(pv.packets)
		s.proto[f].badPackets.Store(pv.badPackets)
		s.proto[f].duplicates.Store(pv.duplicates)
		s.proto[f].records.Store(pv.records)
		s.proto[f].lostUnits.Store(pv.lostUnits)
	}
	s.anoms = append([]netwide.Anomaly(nil), st.Anomalies...)
	s.ctr.packets.Store(sv.Packets)
	s.ctr.badPackets.Store(sv.BadPackets)
	s.ctr.duplicates.Store(sv.Duplicates)
	s.ctr.records.Store(sv.Records)
	s.ctr.lostRecords.Store(sv.LostRecords)
	s.ctr.lateRecords.Store(sv.LateRecords)
	s.ctr.unroutable.Store(sv.Unroutable)
	s.ctr.wildRecords.Store(sv.WildRecords)
	s.ctr.watermarkResets.Store(sv.WatermarkResets)
	s.ctr.binsClosed.Store(int64(sv.BinsClosed))
	s.ctr.watermark.Store(int64(sv.Watermark))
	s.ctr.lastClosed.Store(int64(sv.LastClosed))
	s.alarmBins = sv.AlarmBins
	s.restored = true
	s.restoredBin = sv.LastClosed
	s.lastCpBin = sv.LastClosed
	return nil
}

// persist takes one snapshot around the caller-supplied assembler: barrier
// the detector, wait for the anomaly ledger to catch up to the barrier,
// assemble the on-disk state (under mu; the caller guarantees the ingest
// state it reads is frozen — ingestMu on the synchronous path, a paused
// and quiesced pipeline on the sharded one), and atomically replace the
// snapshot file. Write failures (a full disk, an injected fault) are
// counted and surfaced on /stats, never fatal: the daemon keeps
// collecting, one snapshot staler.
func (s *Server) persist(assemble func(netwide.StreamCheckpoint) *checkpoint.State) error {
	cp, err := s.det.Checkpoint()
	if err == nil {
		s.mu.Lock()
		// The barrier guarantees every pre-barrier verdict has been
		// delivered to the consumer; wait for the consumer to fold them in
		// so the snapshot's ledger is exactly the pre-barrier set.
		for uint64(len(s.anoms)) < cp.Emitted {
			s.ledgerCond.Wait()
		}
		st := assemble(cp)
		s.mu.Unlock()
		err = checkpoint.WriteFile(s.cfg.CheckpointPath, st, s.cfg.Faults)
	}
	s.mu.Lock()
	if err != nil {
		s.cpErrors++
		s.cpErr = err.Error()
	} else {
		s.cpWritten++
		s.lastCpBin = int(s.ctr.lastClosed.Load())
		s.cpErr = ""
	}
	s.mu.Unlock()
	if err == nil {
		s.binsSinceCp.Store(0)
	}
	return err
}

// baseState assembles the snapshot fields common to both ingest paths:
// fingerprint, counters, per-protocol breakdown and the anomaly ledger as
// of the detector barrier. Callers hold mu (via persist).
func (s *Server) baseState(cp netwide.StreamCheckpoint) *checkpoint.State {
	ds := s.run.Dataset()
	opts := s.detectOpts()
	kind, _ := s.streamKind()
	st := &checkpoint.State{
		Topology:  ds.Top.Name,
		ODPairs:   ds.NumODPairs(),
		Measures:  int(dataset.NumMeasures),
		K:         opts.K,
		Alpha:     opts.Alpha,
		Epoch:     s.cfg.Epoch,
		Formats:   s.enabledFormats(),
		Shards:    s.numShards(),
		Updater:   string(kind),
		Stream:    cp,
		Anomalies: append([]netwide.Anomaly(nil), s.anoms[:cp.Emitted]...),
	}
	sv := &st.Server
	sv.Packets = s.ctr.packets.Load()
	sv.BadPackets = s.ctr.badPackets.Load()
	sv.Duplicates = s.ctr.duplicates.Load()
	sv.Records = s.ctr.records.Load()
	sv.LostRecords = s.ctr.lostRecords.Load()
	sv.LateRecords = s.ctr.lateRecords.Load()
	sv.Unroutable = s.ctr.unroutable.Load()
	sv.WildRecords = s.ctr.wildRecords.Load()
	sv.WatermarkResets = s.ctr.watermarkResets.Load()
	sv.BinsClosed = int(s.ctr.binsClosed.Load())
	sv.Watermark = int(s.ctr.watermark.Load())
	sv.LastClosed = int(s.ctr.lastClosed.Load())
	sv.AlarmBins = s.alarmBins
	for f := flowwire.Format(1); f < flowwire.NumFormats; f++ {
		if ps, seen := s.proto[f].state(f); seen {
			sv.Protocols = append(sv.Protocols, ps)
		}
	}
	return st
}

// shardStateOf deep-copies one binning partition's in-flight state into
// its checkpoint form: open bins sorted by bin, started engine cursors in
// (format, engine) order.
func shardStateOf(bins map[int]*binAcc, seq map[engineKey]*engineSeq, sealedThrough, behindStreak int) checkpoint.ShardState {
	sh := checkpoint.ShardState{SealedThrough: sealedThrough, BehindStreak: behindStreak}
	sh.OpenBins = make([]checkpoint.OpenBin, 0, len(bins))
	for bin, acc := range bins {
		sh.OpenBins = append(sh.OpenBins, checkpoint.OpenBin{
			Bin:     bin,
			Records: acc.records,
			Bytes:   append([]float64(nil), acc.bytes...),
			Packets: append([]float64(nil), acc.packets...),
			Flows:   append([]float64(nil), acc.flows...),
		})
	}
	sort.Slice(sh.OpenBins, func(i, j int) bool { return sh.OpenBins[i].Bin < sh.OpenBins[j].Bin })
	keys := make([]engineKey, 0, len(seq))
	for k, e := range seq {
		if e.started {
			keys = append(keys, k)
		}
	}
	// The map iterates in random order; the snapshot must not.
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].format != keys[j].format {
			return keys[i].format < keys[j].format
		}
		return keys[i].engine < keys[j].engine
	})
	for _, k := range keys {
		e := seq[k]
		// recent[:fill] is exactly the valid ring entries: the ring fills
		// from slot 0 and pos only wraps once fill reaches the window.
		sh.Engines = append(sh.Engines, checkpoint.EngineState{
			Format: uint8(k.format),
			ID:     k.engine,
			Next:   e.next,
			Recent: append([]uint32(nil), e.recent[:e.fill]...),
			Pos:    e.pos,
		})
	}
	return sh
}

// templatesOf snapshots the v9/IPFIX template caches of the given
// registries, deduplicated by (format, source, template ID) — with
// multiple receivers, several registries typically hold the same
// definitions. Template caches are decode state a mid-stream restart
// cannot relearn until the exporters resend, so they checkpoint too.
func templatesOf(regs ...*flowwire.Registry) []checkpoint.TemplateState {
	type tmplKey struct {
		f   flowwire.Format
		src uint32
		id  uint16
	}
	seen := map[tmplKey]bool{}
	var out []checkpoint.TemplateState
	for _, reg := range regs {
		for _, f := range []flowwire.Format{flowwire.FormatNetFlowV9, flowwire.FormatIPFIX} {
			for _, ts := range reg.TemplateSnapshots(f) {
				k := tmplKey{f, ts.Source, ts.ID}
				if seen[k] {
					continue
				}
				seen[k] = true
				fields := make([]checkpoint.TemplateField, len(ts.Fields))
				for i, fd := range ts.Fields {
					fields[i] = checkpoint.TemplateField{ID: fd.ID, Enterprise: fd.Enterprise, Length: fd.Length}
				}
				out = append(out, checkpoint.TemplateState{
					Format: uint8(f),
					Source: ts.Source,
					ID:     ts.ID,
					Scope:  ts.Scope,
					Fields: fields,
				})
			}
		}
	}
	return out
}

// checkpointSync takes one synchronous-path snapshot. Callers hold
// ingestMu, which is what freezes the open bins, sequence cursors and
// template cache the assembler reads.
func (s *Server) checkpointSync() error {
	return s.persist(func(cp netwide.StreamCheckpoint) *checkpoint.State {
		st := s.baseState(cp)
		st.Server.Shards = []checkpoint.ShardState{
			shardStateOf(s.bins, s.seq, int(s.ctr.lastClosed.Load()), s.behindStreak),
		}
		st.Server.Templates = templatesOf(s.reg)
		return st
	})
}

// CheckpointNow takes a snapshot immediately, outside the bin-driven
// cadence — the wall-clock timer's entry point, also callable by tests and
// operators. It fails when checkpointing is disabled or a drain is in
// progress (the drain takes its own final snapshot).
func (s *Server) CheckpointNow() error {
	if s.cfg.CheckpointPath == "" {
		return errors.New("server: checkpointing disabled (no CheckpointPath)")
	}
	if s.sharded() {
		s.cpMu.Lock()
		defer s.cpMu.Unlock()
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		if draining {
			return errors.New("server: draining; the drain writes the final checkpoint")
		}
		return s.captureSharded(false)
	}
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		return errors.New("server: draining; the drain writes the final checkpoint")
	}
	return s.checkpointSync()
}

// checkpointTimer snapshots every CheckpointInterval of wall-clock time —
// the safety net for quiet periods when no bins close and the bin-driven
// cadence therefore never fires.
func (s *Server) checkpointTimer(stop chan struct{}) {
	defer s.timerWG.Done()
	ticks, stopTicker := s.cfg.Clock.Ticker(s.cfg.CheckpointInterval)
	defer stopTicker()
	for {
		select {
		case <-stop:
			return
		case <-ticks:
			s.CheckpointNow() // failures land on Stats; draining is declined
		}
	}
}

// consumeVerdicts drains the detector's verdict stream for the daemon's
// lifetime, folding characterized anomalies and alarm counts into the
// served state. It exits when the stream closes (after Drain).
func (s *Server) consumeVerdicts() {
	defer s.consumerWG.Done()
	for v := range s.det.Verdicts() {
		s.mu.Lock()
		if v.Alarm() {
			s.alarmBins++
		}
		s.gens = v.Generations
		s.anoms = append(s.anoms, v.Anomalies...)
		s.ledgerCond.Broadcast()
		s.mu.Unlock()
	}
	tail := s.det.TailAnomalies()
	s.mu.Lock()
	s.anoms = append(s.anoms, tail...)
	s.ledgerCond.Broadcast()
	s.mu.Unlock()
}

// Start binds the UDP and HTTP sockets and launches the reader goroutines.
func (s *Server) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return errors.New("server: already started")
	}
	if err := s.bindSockets(); err != nil {
		return err
	}
	if s.cfg.HTTPAddr != "" {
		ln, err := net.Listen("tcp", s.cfg.HTTPAddr)
		if err != nil {
			for _, c := range s.conns {
				c.Close()
			}
			s.conns = nil
			return fmt.Errorf("server: listen http: %w", err)
		}
		s.httpLn = ln
		mux := http.NewServeMux()
		// Every endpoint lives under the versioned /api/v1/ prefix; the
		// original unversioned paths remain as aliases so existing probes
		// and dashboards keep working.
		for _, p := range []string{"/api/v1/healthz", "/healthz"} {
			mux.HandleFunc(p, s.handleHealthz)
		}
		for _, p := range []string{"/api/v1/stats", "/stats"} {
			mux.HandleFunc(p, s.handleStats)
		}
		for _, p := range []string{"/api/v1/anomalies", "/anomalies"} {
			mux.HandleFunc(p, s.handleAnomalies)
		}
		// The status port faces the same network as the flow socket, so
		// it gets the same hostile-input posture: a client that dribbles a
		// header, stalls mid-request or parks an idle connection must not
		// pin a daemon goroutine forever.
		srv := &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       10 * time.Second,
			IdleTimeout:       60 * time.Second,
		}
		s.httpSrv = srv
		go func() {
			if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				s.fail(fmt.Errorf("server: http: %w", err))
			}
		}()
	}
	if s.cfg.CheckpointPath != "" && s.cfg.CheckpointInterval > 0 {
		s.cpTimerStop = make(chan struct{})
		s.timerWG.Add(1)
		go s.checkpointTimer(s.cpTimerStop)
	}
	s.started = true
	if s.sharded() {
		for i, r := range s.recvs {
			r.conn = s.conns[i%len(s.conns)]
		}
		s.readersWG.Add(len(s.recvs))
		for _, r := range s.recvs {
			go s.receiverLoop(r)
		}
	} else {
		s.readersWG.Add(1)
		go s.readLoop(s.conns[0])
	}
	return nil
}

// bindSockets binds the receiver sockets: one plain socket on the
// synchronous path or with a single receiver; Receivers SO_REUSEPORT
// sockets on the same address when the platform supports the option (the
// kernel then spreads datagrams across them by flow hash); one shared
// socket drained by every receiver goroutine otherwise.
func (s *Server) bindSockets() error {
	n := 1
	if s.sharded() && reusePortSupported {
		n = s.cfg.Receivers
	}
	if n <= 1 {
		addr, err := net.ResolveUDPAddr("udp", s.cfg.UDPAddr)
		if err != nil {
			return fmt.Errorf("server: udp addr: %w", err)
		}
		conn, err := net.ListenUDP("udp", addr)
		if err != nil {
			return fmt.Errorf("server: listen udp: %w", err)
		}
		// Best effort: the kernel may clamp to rmem_max, which still beats
		// the default. A too-small buffer shows up as LostRecords, not
		// silence.
		_ = conn.SetReadBuffer(s.cfg.ReadBuffer)
		s.conns = []*net.UDPConn{conn}
		return nil
	}
	conns := make([]*net.UDPConn, 0, n)
	first, err := listenReusePort(s.cfg.UDPAddr)
	if err != nil {
		return fmt.Errorf("server: listen udp (reuseport): %w", err)
	}
	conns = append(conns, first)
	// The configured address may carry port 0; the remaining sockets must
	// bind the port the kernel actually picked.
	actual := first.LocalAddr().String()
	for i := 1; i < n; i++ {
		c, err := listenReusePort(actual)
		if err != nil {
			for _, pc := range conns {
				pc.Close()
			}
			return fmt.Errorf("server: listen udp (reuseport %d/%d): %w", i+1, n, err)
		}
		conns = append(conns, c)
	}
	for _, c := range conns {
		_ = c.SetReadBuffer(s.cfg.ReadBuffer)
	}
	s.conns = conns
	return nil
}

// UDPAddr returns the bound flow-export listen address (nil before Start).
func (s *Server) UDPAddr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.conns) == 0 {
		return nil
	}
	return s.conns[0].LocalAddr()
}

// HTTPAddr returns the bound status endpoint address (nil before Start or
// when HTTP is disabled).
func (s *Server) HTTPAddr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.httpLn == nil {
		return nil
	}
	return s.httpLn.Addr()
}

// readLoop receives datagrams until the socket is closed by Drain. Every
// supported format keeps its export packets under the common 1500-byte
// MTU; the buffer leaves headroom so an overlong datagram arrives intact
// and is rejected by the decoder instead of being silently truncated into
// a "valid" prefix.
func (s *Server) readLoop(conn *net.UDPConn) {
	defer s.readersWG.Done()
	buf := make([]byte, 4096)
	for {
		n, _, err := conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed (Drain) or fatally broken
		}
		s.IngestPacket(buf[:n])
	}
}

// IngestPacket runs the full per-datagram ingest path — decode, sequence
// dedupe, OD resolution, bin accumulation, bin close, and the bin-driven
// checkpoint cadence — synchronously on the caller's goroutine. The read
// loop is its only caller in production; tests and benchmarks call it
// directly to drive the daemon without a socket. ingestMu serializes
// concurrent callers and excludes checkpoint capture mid-packet. On a
// sharded daemon the packet enters the pipeline through receiver 0
// instead, and the accumulation happens asynchronously.
func (s *Server) IngestPacket(pkt []byte) {
	if s.sharded() {
		s.ingestOn(s.recvs[0], pkt)
		return
	}
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	b, recs, err := s.reg.Decode(pkt, s.recs[:0])
	s.recs = recs
	s.ctr.packets.Add(1)
	// Decode attributes even failed packets to a format when the version
	// word detected one; garbage that detects as nothing only reaches the
	// global counters.
	var pc *protoCounters
	if b.Format != flowwire.FormatUnknown && b.Format < flowwire.NumFormats {
		pc = &s.proto[b.Format]
		pc.packets.Add(1)
	}
	if err != nil {
		s.ctr.badPackets.Add(1)
		if pc != nil {
			pc.badPackets.Add(1)
		}
		return
	}
	if !s.sequenceCheck(s.seq, b) {
		s.ctr.duplicates.Add(1)
		pc.duplicates.Add(1)
		return
	}
	if int64(b.UnixSecs) < int64(s.cfg.Epoch) {
		// Before bin 0 — and integer division would truncate it INTO bin 0.
		s.ctr.lateRecords.Add(uint64(len(recs)))
		return
	}
	bin := int(int64(b.UnixSecs)-int64(s.cfg.Epoch)) / traffic.BinSeconds
	if bin <= int(s.ctr.lastClosed.Load()) {
		s.ctr.lateRecords.Add(uint64(len(recs)))
		return
	}
	wm := int(s.ctr.watermark.Load())
	if wm >= 0 && bin > wm+s.cfg.MaxAhead {
		// The bin timestamp is untrusted input and it drives every bin
		// close: refusing wild jumps keeps one spoofed datagram from
		// force-closing partial bins and parking the watermark out of
		// legitimate traffic's reach.
		s.ctr.wildRecords.Add(uint64(len(recs)))
		return
	}
	accepted, unroutable, wild := s.accumulateInto(s.bins, bin, b, recs)
	if unroutable > 0 {
		s.ctr.unroutable.Add(uint64(unroutable))
	}
	if wild > 0 {
		s.ctr.wildRecords.Add(uint64(wild))
	}
	if accepted > 0 {
		s.ctr.records.Add(uint64(accepted))
		pc.records.Add(uint64(accepted))
	}
	s.ctr.binsOpen.Store(int64(len(s.bins)))
	var closed []submittedBin
	switch {
	case accepted == 0:
		// Only routable traffic moves the watermark: a datagram that
		// contributed nothing to any bin gets no say in when bins close.
	case bin > wm:
		s.ctr.watermark.Store(int64(bin))
		s.behindStreak = 0
		closed = detachBins(s.bins, bin-s.cfg.Grace)
	case wm-bin > s.cfg.MaxAhead:
		// Routable traffic consistently far below the watermark means the
		// watermark is stranded — a far-future first packet or an exporter
		// clock jump (MaxAhead can't bound the first packet: there is
		// nothing to bound it against). In normal operation this branch is
		// unreachable: bins more than MaxAhead behind the watermark are
		// already behind LastClosed and were dropped as late above. A
		// quorum of consecutive packets re-anchors the watermark at the
		// stream that is actually flowing, unwedging bin close.
		s.behindStreak++
		if s.behindStreak >= watermarkQuorum {
			s.resetWatermarkSync(bin)
		}
	default:
		s.behindStreak = 0
	}
	if len(closed) > 0 {
		// detachBins returns ascending bins, all above the previous
		// LastClosed (anything at or below was dropped late above).
		s.ctr.lastClosed.Store(int64(closed[len(closed)-1].bin))
		s.ctr.binsClosed.Add(int64(len(closed)))
		s.ctr.binsOpen.Store(int64(len(s.bins)))
	}
	s.submit(closed)
	if s.cfg.CheckpointPath != "" && len(closed) > 0 {
		if s.binsSinceCp.Add(int64(len(closed))) >= int64(s.cfg.CheckpointEvery) {
			s.checkpointSync()
		}
	}
}

const (
	// dedupeWindow is how many recent packet sequence numbers each engine
	// remembers for exact duplicate detection. A replayed packet older
	// than the window slips through — the window trades a little replay
	// protection for not discarding merely-reordered traffic.
	dedupeWindow = 64
	// reorderTolerance is how far (in the stream's sequence units) behind
	// the cursor a packet may fall and still be network reordering;
	// anything further back is an exporter restart and resets the cursor,
	// so a spoofed wild sequence number can never permanently wedge an
	// engine's stream.
	reorderTolerance = 1 << 20
	// maxEngineCursors caps each sequence-cursor map (one per shard). The
	// v9/IPFIX exporter identity is a 32-bit field in attacker-influenced
	// packets; beyond the cap, packets from new streams are accepted
	// without sequence accounting rather than growing daemon memory
	// without bound.
	maxEngineCursors = 4096
)

// engineKey identifies one export stream. Sequence spaces are independent
// per wire format — a v5 engine 3 and an IPFIX observation domain 3 are
// different streams — so the format is part of the identity.
type engineKey struct {
	format flowwire.Format
	engine uint32
}

// sequenceCheck updates the batch's per-stream sequence state and reports
// whether the packet should be ingested, honoring the batch's own sequence
// semantics: the cursor advances by SeqAdvance units of SeqModel's unit
// (flows, packets, records or samples), and a gap ahead of the cursor is
// that many units lost in transit — credited to the stream's format in
// Stats.Protocols, and folded into the global LostRecords only when the
// unit is a record (v5, IPFIX). A batch behind the cursor is, in order of
// precedence: a replayed duplicate if its sequence number was recently
// seen (dropped — counting it twice would corrupt the bin); plain network
// reordering if it is within reorderTolerance (accepted, and the loss the
// earlier gap charged for it is refunded); otherwise an exporter restart,
// which resets the cursor. Batches without sequence information (SeqNone)
// pass through untracked. The seq map is the caller's single-threaded
// state (the synchronous path's map under ingestMu, or a shard worker's
// own); the loss counters it touches are shared and atomic.
func (s *Server) sequenceCheck(seq map[engineKey]*engineSeq, b flowwire.Batch) bool {
	if b.SeqModel == flowwire.SeqNone {
		return true
	}
	key := engineKey{b.Format, b.Engine}
	e := seq[key]
	if e == nil {
		if len(seq) >= maxEngineCursors {
			return true // accept, untracked: see maxEngineCursors
		}
		e = &engineSeq{}
		seq[key] = e
	}
	pc := &s.proto[b.Format]
	countsRecords := b.SeqModel.CountsRecords()
	if !e.started {
		e.started = true
		e.next = b.Seq + b.SeqAdvance
		e.remember(b.Seq)
		return true
	}
	delta := int32(b.Seq - e.next) // uint32 arithmetic handles wraparound
	switch {
	case delta >= 0:
		if delta > reorderTolerance {
			// A forward jump too wild to be transit loss is the same event
			// as the backward one: an exporter restart (or a spoofed
			// sequence) — resynchronize rather than charging a phantom
			// multi-billion-unit gap to the loss counters.
			e.clear()
		} else {
			pc.lostUnits.Add(uint64(delta))
			if countsRecords {
				s.ctr.lostRecords.Add(uint64(delta))
			}
		}
		e.next = b.Seq + b.SeqAdvance
	case e.seen(b.Seq):
		return false
	case delta >= -reorderTolerance:
		// Reordered delivery: the gap this batch left was already counted
		// lost when its successor arrived first, so refund it. The cursor
		// stays where the stream's front is. The refund saturates — with
		// shards, another stream sharing the format counter may have
		// refunded first.
		satSub(&pc.lostUnits, uint64(b.SeqAdvance))
		if countsRecords {
			satSub(&s.ctr.lostRecords, uint64(b.SeqAdvance))
		}
	default:
		// Exporter restart (or a spoofed wild sequence): resynchronize.
		e.next = b.Seq + b.SeqAdvance
		e.clear()
	}
	e.remember(b.Seq)
	return true
}

// accumulateInto folds one packet's records into its bin's vectors in the
// given open-bin set, resolving each record to an OD pair: origin from the
// engine ID, egress by longest-prefix match on the anonymized destination
// — the same procedure, and therefore the same (OD, bin) cell, as the
// offline generator. It returns how many records were folded in and how
// many were unroutable or wild (cap overflow); the caller folds those into
// the counters it owns. A packet that contributes nothing must not advance
// the watermark. The bins map is the caller's single-threaded state; the
// topology and resolver lookups are read-only and safe from every shard.
func (s *Server) accumulateInto(bins map[int]*binAcc, bin int, b flowwire.Batch, recs []flowwire.Record) (accepted, unroutable, wild int) {
	origin := topology.PoP(b.Engine)
	originOK := s.top.ContainsPoP(origin)
	acc := bins[bin]
	for _, rec := range recs {
		if !originOK {
			unroutable++
			continue
		}
		egress, ok := s.res.ResolveDst(rec.Dst)
		if !ok {
			unroutable++
			continue
		}
		if acc == nil {
			// Open the bin lazily, on the first routable record, and under
			// a cap: unroutable or wild garbage must not grow the open set.
			if len(bins) >= s.cfg.MaxOpenBins {
				wild++
				continue
			}
			p := s.top.NumODPairs()
			acc = &binAcc{
				bytes:   make([]float64, p),
				packets: make([]float64, p),
				flows:   make([]float64, p),
			}
			bins[bin] = acc
		}
		col := s.top.Index(topology.ODPair{Origin: origin, Dest: egress})
		acc.bytes[col] += float64(rec.Bytes)
		acc.packets[col] += float64(rec.Packets)
		// Flow-export records each carry one flow (Flows == 1), keeping
		// bit-for-bit parity with the v5-era `flows[col]++`; sFlow samples
		// estimate flow counts, and the estimate rides the same field.
		acc.flows[col] += float64(rec.Flows)
		acc.records++
		accepted++
	}
	return accepted, unroutable, wild
}

// watermarkQuorum is how many consecutive routable packets must land more
// than MaxAhead bins below the watermark before the daemon concludes the
// watermark is stranded and re-anchors it.
const watermarkQuorum = 8

// resetWatermarkSync re-anchors a stranded watermark at the bin the live
// stream actually flows in, discarding open bins stranded in the far
// future (their contents were the lie that moved the watermark there).
// Synchronous path; callers hold ingestMu.
func (s *Server) resetWatermarkSync(bin int) {
	if wild := discardWildBins(s.bins, bin+s.cfg.MaxAhead); wild > 0 {
		s.ctr.wildRecords.Add(wild)
	}
	s.ctr.binsOpen.Store(int64(len(s.bins)))
	s.ctr.watermark.Store(int64(bin))
	s.ctr.watermarkResets.Add(1)
	s.behindStreak = 0
}

// discardWildBins drops every open bin above keepThrough, returning the
// record count they held.
func discardWildBins(bins map[int]*binAcc, keepThrough int) (wild uint64) {
	for b, acc := range bins {
		if b > keepThrough {
			wild += acc.records
			delete(bins, b)
		}
	}
	return wild
}

// engineSeq is one export stream's sequence cursor plus a small ring of
// recently seen packet sequence numbers for duplicate detection.
type engineSeq struct {
	next    uint32
	started bool
	recent  [dedupeWindow]uint32
	fill    int // entries of recent in use
	pos     int // next ring slot to overwrite
}

func (e *engineSeq) remember(seq uint32) {
	e.recent[e.pos] = seq
	e.pos = (e.pos + 1) % dedupeWindow
	if e.fill < dedupeWindow {
		e.fill++
	}
}

func (e *engineSeq) seen(seq uint32) bool {
	for i := 0; i < e.fill; i++ {
		if e.recent[i] == seq {
			return true
		}
	}
	return false
}

func (e *engineSeq) clear() { e.fill, e.pos = 0, 0 }

// submittedBin pairs a detached accumulator with its bin index.
type submittedBin struct {
	bin int
	acc *binAcc
}

// detachBins removes every open bin <= limit from the open set and
// returns them in ascending bin order (nil when none). Pure map surgery:
// the caller owns the close counters.
func detachBins(bins map[int]*binAcc, limit int) []submittedBin {
	var out []submittedBin
	for bin, acc := range bins {
		if bin <= limit {
			out = append(out, submittedBin{bin, acc})
		}
	}
	if len(out) == 0 {
		return nil
	}
	sort.Slice(out, func(i, j int) bool { return out[i].bin < out[j].bin })
	for _, sb := range out {
		delete(bins, sb.bin)
	}
	return out
}

// submit feeds detached bins to the detector in ascending order, recording
// the first failure. Bins are only ever detached in ascending order across
// calls (by the one ingest goroutine or the one coordinator), so the
// detector's non-decreasing contract holds.
func (s *Server) submit(closed []submittedBin) {
	for _, sb := range closed {
		if err := s.det.Submit(sb.bin, sb.acc.bytes, sb.acc.packets, sb.acc.flows); err != nil {
			s.fail(fmt.Errorf("server: submit bin %d: %w", sb.bin, err))
			return
		}
	}
}

// fail records the first ingest-side error.
func (s *Server) fail(err error) {
	s.mu.Lock()
	if s.firstError == nil {
		s.firstError = err
	}
	s.mu.Unlock()
}

// Err returns the first error the daemon has seen: an ingest-side submit
// failure or a background detector failure.
func (s *Server) Err() error {
	s.mu.Lock()
	err := s.firstError
	s.mu.Unlock()
	if err != nil {
		return err
	}
	return s.det.Err()
}

// Stats returns a snapshot of the ingest counters. Safe to call
// concurrently with ingest from any goroutine: the hot counters are
// atomics, so the snapshot is lock-free against the packet path (the
// counters may be mid-packet inconsistent with each other by a record or
// two, never torn).
func (s *Server) Stats() Stats {
	st := Stats{
		Packets:         s.ctr.packets.Load(),
		BadPackets:      s.ctr.badPackets.Load(),
		Duplicates:      s.ctr.duplicates.Load(),
		Records:         s.ctr.records.Load(),
		LostRecords:     s.ctr.lostRecords.Load(),
		LateRecords:     s.ctr.lateRecords.Load(),
		Unroutable:      s.ctr.unroutable.Load(),
		WildRecords:     s.ctr.wildRecords.Load(),
		WatermarkResets: s.ctr.watermarkResets.Load(),
		BinsClosed:      int(s.ctr.binsClosed.Load()),
		BinsOpen:        int(s.ctr.binsOpen.Load()),
		Watermark:       int(s.ctr.watermark.Load()),
		LastClosed:      int(s.ctr.lastClosed.Load()),
	}
	for f := flowwire.Format(1); f < flowwire.NumFormats; f++ {
		ps, seen := s.proto[f].state(f)
		if !seen {
			continue
		}
		if st.Protocols == nil {
			st.Protocols = make(map[string]ProtoStats, 4)
		}
		st.Protocols[f.String()] = ProtoStats{
			Packets:    ps.Packets,
			BadPackets: ps.BadPackets,
			Duplicates: ps.Duplicates,
			Records:    ps.Records,
			LostUnits:  ps.LostUnits,
			SeqUnit:    f.SequenceModel().Unit(),
		}
	}
	if s.sharded() {
		st.Receivers = make([]ReceiverStats, len(s.recvs))
		for i, r := range s.recvs {
			st.Receivers[i] = ReceiverStats{
				Packets:    r.packets.Load(),
				BadPackets: r.badPackets.Load(),
				Bytes:      r.bytes.Load(),
			}
		}
		st.Shards = make([]ShardStats, len(s.shards))
		open := 0
		for i, w := range s.shards {
			o := int(w.binsOpen.Load())
			open += o
			st.Shards[i] = ShardStats{
				Records:       w.records.Load(),
				Duplicates:    w.duplicates.Load(),
				LateRecords:   w.lateRecords.Load(),
				WildRecords:   w.wildRecords.Load(),
				Unroutable:    w.unroutable.Load(),
				BinsOpen:      o,
				SealedThrough: int(w.sealed.Load()),
				QueueLen:      len(w.ch),
				QueueCap:      cap(w.ch),
			}
		}
		st.BinsOpen = open
		st.MergeQueueLen = len(s.mergeCh)
	}
	s.mu.Lock()
	st.AlarmBins = s.alarmBins
	st.Anomalies = len(s.anoms)
	st.Generations = s.gens
	st.CheckpointsWritten = s.cpWritten
	st.CheckpointErrors = s.cpErrors
	st.LastCheckpointBin = s.lastCpBin
	st.Restored = s.restored
	st.RestoredBin = s.restoredBin
	st.CheckpointFallbacks = s.cpFallbacks
	st.RestoreErr = s.restoreErr
	st.CheckpointErr = s.cpErr
	st.Draining = s.draining
	if s.firstError != nil {
		st.Err = s.firstError.Error()
	}
	s.mu.Unlock()
	// Freshness gauges appear only when a model lifecycle is active, so a
	// static-model daemon's JSON surface stays exactly as it was. The
	// detector's freshness reads are atomics — no lock needed.
	if kind, refitEvery := s.streamKind(); kind == engine.UpdaterIncremental || refitEvery > 0 {
		fr := s.det.Freshness()
		st.ModelFreshness = make([]FreshnessStat, len(fr))
		for i, f := range fr {
			st.ModelFreshness[i] = FreshnessStat{
				Measure:             dataset.Measure(i).String(),
				Updater:             string(f.Kind),
				Generation:          f.Gen,
				Updates:             f.Updates,
				BinsSinceCorrection: f.SinceCorrection,
				StalenessBins:       f.Staleness,
			}
		}
	}
	if st.Err == "" {
		if err := s.det.Err(); err != nil {
			st.Err = err.Error()
		}
	}
	if err := s.det.RefitErr(); err != nil {
		st.DegradedErr = err.Error()
	}
	return st
}

// Anomalies returns the characterized anomalies collected so far, oldest
// first.
func (s *Server) Anomalies() []netwide.Anomaly {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]netwide.Anomaly, len(s.anoms))
	copy(out, s.anoms)
	return out
}

// Drain performs the graceful shutdown: stop accepting datagrams, flush
// every in-flight bin through the detector (nothing accepted is dropped),
// write the final checkpoint (when enabled), wait for the verdict stream
// to complete — folding still-open events into the anomaly log — and
// finally stop the HTTP endpoint. The context bounds only the HTTP
// shutdown; the detector drain always runs to completion, so a context
// that is already done on entry is rejected up front rather than silently
// running a long drain whose deadline has passed. Drain may be called once:
// a second or concurrent call fails immediately with a descriptive error
// instead of blocking behind the first — the caller holding the real drain
// is the one that gets its result.
func (s *Server) Drain(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("server: drain: context already done before shutdown began: %w", err)
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("server: drain already in progress or completed")
	}
	s.draining = true
	conns := s.conns
	stop := s.cpTimerStop
	s.cpTimerStop = nil
	s.mu.Unlock()

	if stop != nil {
		close(stop) // no timer snapshot may race the final one below
		s.timerWG.Wait()
	}
	for _, c := range conns {
		c.Close() // unblocks the reader goroutines
	}
	s.readersWG.Wait()

	if s.sharded() {
		// An in-flight bin-cadence capture may still hold cpMu; stop the
		// checkpointer, then take cpMu for the whole teardown so nothing
		// interleaves with the flush and the final snapshot.
		if s.cpStop != nil {
			close(s.cpStop)
			s.cpWG.Wait()
		}
		s.cpMu.Lock()
		s.syncShards() // receiver-enqueued batches all binned
		s.coordFlush() // every bin through the watermark sealed, merged, submitted
		if s.cfg.CheckpointPath != "" {
			s.captureSharded(true)
		}
		s.stopCoordinator()
		s.stopShards()
		s.cpMu.Unlock()
	} else {
		// The read loop has exited and the socket is closed: no new bins
		// can appear. Flush the tail, then persist the final snapshot — it
		// carries every closed bin, so a restart after a clean drain
		// resumes zero bins stale. ingestMu excludes a straggling direct
		// IngestPacket caller.
		s.ingestMu.Lock()
		closed := detachBins(s.bins, int(s.ctr.watermark.Load()))
		if len(closed) > 0 {
			s.ctr.lastClosed.Store(int64(closed[len(closed)-1].bin))
			s.ctr.binsClosed.Add(int64(len(closed)))
			s.ctr.binsOpen.Store(int64(len(s.bins)))
		}
		s.submit(closed)
		if s.cfg.CheckpointPath != "" {
			s.checkpointSync()
		}
		s.ingestMu.Unlock()
	}

	s.det.Close()
	s.consumerWG.Wait() // verdict stream fully drained, tail folded in
	s.det.Wait()        // settle background refits before reading errors
	if err := s.det.Err(); err != nil {
		// Fatal only: a refit failure means the daemon ran degraded, not
		// that the drain failed — it stays on Stats.DegradedErr.
		s.fail(fmt.Errorf("server: detector: %w", err))
	}

	s.mu.Lock()
	srv, ln := s.httpSrv, s.httpLn
	s.httpSrv, s.httpLn = nil, nil
	s.mu.Unlock()
	if srv != nil {
		if err := srv.Shutdown(ctx); err != nil {
			srv.Close()
		}
	} else if ln != nil {
		ln.Close()
	}
	return s.Err()
}

// Kill stops the daemon the way a crash would: sockets closed, goroutines
// reaped, but no flush, no final checkpoint — the open bins and the
// in-memory ledger are simply gone, and the snapshot on disk stays
// whatever the last periodic write made it. This is the chaos tests' kill
// switch; production shutdown is Drain.
func (s *Server) Kill() {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return
	}
	s.draining = true
	conns := s.conns
	stop := s.cpTimerStop
	s.cpTimerStop = nil
	srv, ln := s.httpSrv, s.httpLn
	s.httpSrv, s.httpLn = nil, nil
	s.mu.Unlock()

	if stop != nil {
		close(stop)
		s.timerWG.Wait()
	}
	for _, c := range conns {
		c.Close()
	}
	s.readersWG.Wait()
	if srv != nil {
		srv.Close() // abrupt: no graceful connection drain
	} else if ln != nil {
		ln.Close()
	}
	if s.sharded() {
		// Let an in-flight capture finish against a live pipeline, then
		// tear the pipeline down with no flush — whatever the shards still
		// held is lost, exactly like a crash.
		if s.cpStop != nil {
			close(s.cpStop)
			s.cpWG.Wait()
		}
		s.cpMu.Lock()
		s.stopCoordinator()
		s.stopShards()
		s.cpMu.Unlock()
	}
	// Reap the detector goroutines so a killed daemon leaks nothing into
	// the test process; the verdicts it delivers on the way down land in a
	// ledger nobody will read again.
	s.det.Close()
	s.consumerWG.Wait()
	s.det.Wait()
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if err := s.Err(); err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Stats())
}

func (s *Server) handleAnomalies(w http.ResponseWriter, r *http.Request) {
	anoms := s.Anomalies()
	if anoms == nil {
		anoms = []netwide.Anomaly{} // render [] rather than null
	}
	writeJSON(w, anoms)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
