// Package server is the live front door of the reproduction: a long-running
// ingest daemon that stands where the paper's collection infrastructure
// stood — between the routers exporting sampled flow telemetry and the
// subspace detector consuming OD-aggregated timebins.
//
// One Server owns one UDP socket. Every datagram is decoded through a
// flowwire.Registry — NetFlow v5, NetFlow v9, IPFIX and sFlow v5, detected
// by version word, with hostile bytes counted and dropped, never trusted —
// and deduplicated by a per-(format, engine) sequence cursor honoring each
// format's own sequence semantics (flowwire.SequenceModel). Each normalized
// record is resolved to an origin-destination PoP pair exactly as the
// offline pipeline does it: the origin from the export engine identity
// (interface-based configuration resolution), the egress by longest-prefix
// match on the anonymized destination address (internal/routing). Resolved
// records accumulate into per-bin byte/packet/flow vectors — the same three
// measures, the same 5-minute binning, the same accumulation arithmetic as
// dataset.Generate — and when the reorder grace window moves past a bin,
// the bin is closed and submitted to a StreamDetector, which scores,
// attributes, aggregates and classifies at streaming time. Characterized
// anomalies collect on the server and stream out of the /anomalies
// endpoint.
//
// Batch parity: every per-record sum the server computes is an integer
// count below 2^53 folded into a float64, so the accumulated vectors are
// exact regardless of packet arrival order; a replayed dataset therefore
// reproduces the generator's matrices bit for bit, and the daemon's
// characterized anomalies match the batch Characterize output on the same
// bins (the loopback end-to-end test pins this).
//
// The HTTP side is deliberately small: healthz (liveness, 503 once the
// detector has recorded a background error), stats (ingest counters as
// JSON, including a per-protocol breakdown) and anomalies (the
// characterized anomaly log as JSON). Each endpoint is served both under
// the versioned /api/v1/ prefix and at its original unversioned path.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"slices"
	"sort"
	"sync"
	"time"

	"netwide"
	"netwide/internal/checkpoint"
	"netwide/internal/dataset"
	"netwide/internal/fault"
	"netwide/internal/flowwire"
	"netwide/internal/routing"
	"netwide/internal/topology"
	"netwide/internal/traffic"
)

// Config tunes an ingest daemon. The zero value listens on an ephemeral
// loopback UDP port with no HTTP endpoint.
type Config struct {
	// UDPAddr is the flow-export listen address (default "127.0.0.1:0";
	// the standard NetFlow port is 2055).
	UDPAddr string
	// Formats is the wire-format allowlist (nil or empty enables all four:
	// NetFlow v5, NetFlow v9, IPFIX, sFlow v5). A datagram in a disabled
	// format is counted as a bad packet and dropped.
	Formats []flowwire.Format
	// HTTPAddr is the status endpoint listen address ("" disables HTTP).
	HTTPAddr string
	// Epoch is the Unix time of bin 0: a record exported at UnixSecs lands
	// in bin (UnixSecs-Epoch)/300. Replayed datasets use Epoch 0 and stamp
	// headers with bin*300 directly.
	Epoch uint32
	// Grace is the reorder window in bins: a bin closes (and is submitted
	// to the detector) once a record arrives for a bin Grace or more bins
	// ahead of it, so packets delayed or reordered across a bin boundary
	// still land in their bin. Records for already-closed bins are counted
	// late and dropped. Default 1.
	Grace int
	// MaxAhead bounds how far ahead of the watermark a packet's bin may
	// claim to be (default 64 bins ≈ 5.3 hours). The bin timestamp is
	// attacker-controlled input that drives every bin close: without the
	// bound, one spoofed far-future datagram would force-close every open
	// bin with partial data and park the watermark where no legitimate bin
	// could ever close again. Packets beyond the bound are dropped and
	// counted (Stats.WildRecords).
	MaxAhead int
	// MaxOpenBins caps the accumulating (not yet closed) bins (default
	// 256). Records that would open a bin beyond the cap are dropped and
	// counted wild — bounding the daemon's memory even against spoofed
	// timestamps that scatter records across arbitrary bins.
	MaxOpenBins int
	// ReadBuffer is the UDP socket receive buffer in bytes (default 4MB —
	// the socket must absorb export bursts while a bin close runs).
	ReadBuffer int
	// CheckpointPath enables crash-safe operation: the daemon periodically
	// snapshots its full recovery state (model generations, open events,
	// open bins, sequence cursors, watermark, anomaly ledger) to this file,
	// atomically, and New restores from it when it exists — falling back to
	// a cold start (with the reason on /stats) when the file is torn,
	// corrupt, from a different format version, or from a different
	// network model. "" disables checkpointing.
	CheckpointPath string
	// CheckpointEvery is the snapshot cadence in closed bins (default 1
	// when CheckpointPath is set): a snapshot is taken after every N bins
	// are closed and submitted. At the default every-bin cadence a restart
	// resumes at most one bin stale.
	CheckpointEvery int
	// CheckpointInterval adds a wall-clock snapshot timer (0 disables it):
	// a safety net for quiet periods when no bins close — e.g. the
	// exporters died — so the ledger and counters still reach disk.
	CheckpointInterval time.Duration
	// Clock drives the CheckpointInterval timer (default the wall clock;
	// chaos tests install a manual one).
	Clock fault.Clock
	// Faults, when non-nil, threads error injection through the checkpoint
	// write path and the detector's background refits. Nil in production.
	Faults *fault.Injector
	// Detect and Stream configure the underlying StreamDetector.
	Detect netwide.DetectOptions
	Stream netwide.StreamConfig
}

func (c Config) withDefaults() Config {
	if c.UDPAddr == "" {
		c.UDPAddr = "127.0.0.1:0"
	}
	if c.Grace <= 0 {
		c.Grace = 1
	}
	if c.MaxAhead <= 0 {
		c.MaxAhead = 64
	}
	if c.MaxOpenBins <= 0 {
		c.MaxOpenBins = 256
	}
	if c.ReadBuffer <= 0 {
		c.ReadBuffer = 4 << 20
	}
	if c.CheckpointPath != "" && c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 1
	}
	if c.Clock == nil {
		c.Clock = fault.WallClock{}
	}
	return c
}

// Stats is a snapshot of the daemon's ingest counters, shaped for the
// /stats JSON endpoint.
type Stats struct {
	// Packets counts datagrams received; BadPackets the subset rejected by
	// the decoder (truncated, bad version, hostile counts); Duplicates the
	// subset dropped by per-engine sequence replay detection.
	Packets    uint64 `json:"packets"`
	BadPackets uint64 `json:"bad_packets"`
	Duplicates uint64 `json:"duplicate_packets"`
	// Records counts decoded flow records accepted for aggregation.
	// LostRecords is the sequence-gap estimate of records dropped in
	// transit, summed over the formats whose sequence unit is a record
	// (NetFlow v5 flows, IPFIX data records); the per-protocol breakdown
	// carries every format's loss in its own unit. LateRecords arrived for
	// bins already closed; Unroutable records carried an unknown engine
	// identity or an unresolvable destination.
	Records     uint64 `json:"records"`
	LostRecords uint64 `json:"lost_records"`
	LateRecords uint64 `json:"late_records"`
	Unroutable  uint64 `json:"unroutable_records"`
	// Protocols breaks the ingest counters down per wire format; only
	// formats that have received at least one datagram appear.
	Protocols map[string]ProtoStats `json:"protocols,omitempty"`
	// WildRecords carried bin timestamps the daemon refused to trust: more
	// than MaxAhead bins past the watermark, or needing an open bin beyond
	// MaxOpenBins. WatermarkResets counts stranded-watermark recoveries
	// (a far-future first packet or exporter clock jump, re-anchored once
	// a quorum of routable traffic ran consistently below it).
	WildRecords     uint64 `json:"wild_records"`
	WatermarkResets uint64 `json:"watermark_resets"`
	// BinsClosed bins have been submitted to the detector; BinsOpen are
	// still accumulating. Watermark is the highest bin seen, LastClosed the
	// highest submitted.
	BinsClosed int `json:"bins_closed"`
	BinsOpen   int `json:"bins_open"`
	Watermark  int `json:"watermark"`
	LastClosed int `json:"last_closed"`
	// AlarmBins counts scored bins where any measure alarmed; Anomalies is
	// the running count of fully characterized anomalies.
	AlarmBins int `json:"alarm_bins"`
	Anomalies int `json:"anomalies"`
	// Generations is the per-measure model generation (B, P, F): the number
	// of completed background refits.
	Generations [dataset.NumMeasures]uint64 `json:"generations"`
	// Checkpointing state. CheckpointsWritten / CheckpointErrors count
	// snapshot attempts; LastCheckpointBin is the highest closed bin the
	// latest snapshot covers (-1 before the first). Restored reports this
	// process recovered from a snapshot covering bins through RestoredBin.
	// CheckpointFallbacks counts startups that found a snapshot but had to
	// cold-start instead (torn, corrupt, version skew, wrong fingerprint)
	// — the reason lands in RestoreErr. CheckpointErr carries the most
	// recent snapshot-write failure (a full disk shows up here, not as a
	// crash).
	CheckpointsWritten  uint64 `json:"checkpoints_written,omitempty"`
	CheckpointErrors    uint64 `json:"checkpoint_errors,omitempty"`
	LastCheckpointBin   int    `json:"last_checkpoint_bin"`
	Restored            bool   `json:"restored,omitempty"`
	RestoredBin         int    `json:"restored_bin,omitempty"`
	CheckpointFallbacks uint64 `json:"checkpoint_fallbacks,omitempty"`
	RestoreErr          string `json:"restore_err,omitempty"`
	CheckpointErr       string `json:"checkpoint_err,omitempty"`
	// Draining reports a shutdown in progress. Err carries the first FATAL
	// error — an ingest submit failure or a detector scoring failure ("",
	// and /healthz 200, when healthy). DegradedErr carries a background
	// refit failure: the daemon keeps serving correct verdicts on the
	// previous model generation, so it is reported without failing the
	// liveness probe.
	Draining    bool   `json:"draining"`
	Err         string `json:"err,omitempty"`
	DegradedErr string `json:"degraded_err,omitempty"`
}

// ProtoStats is one wire format's slice of the ingest counters, keyed in
// Stats.Protocols by the format name ("netflow5", "netflow9", "ipfix",
// "sflow").
type ProtoStats struct {
	Packets    uint64 `json:"packets"`
	BadPackets uint64 `json:"bad_packets"`
	Duplicates uint64 `json:"duplicate_packets"`
	Records    uint64 `json:"records"`
	// LostUnits is the sequence-gap loss estimate in the format's own
	// sequence unit — flows for v5, export packets for v9, data records
	// for IPFIX, flow samples for sFlow — named by SeqUnit.
	LostUnits uint64 `json:"lost_units"`
	SeqUnit   string `json:"seq_unit"`
}

// protoCounters is the internal mutable form of ProtoStats, held in a flat
// per-format array on the hot path.
type protoCounters struct {
	packets, badPackets, duplicates, records, lostUnits uint64
}

// binAcc accumulates one open timebin: the three per-OD vectors the
// detector scores. The slices are handed to the detector at close (which
// retains them), so a bin is never reused after submission.
type binAcc struct {
	bytes, packets, flows []float64
	records               uint64
}

// Server is a running ingest daemon. Construct with New (trains the
// detector), call Start (binds sockets, spawns the reader), and stop with
// Drain, which flushes every in-flight bin through the detector before
// returning — no accepted record is ever dropped by a shutdown.
type Server struct {
	cfg Config
	run *netwide.Run
	det *netwide.StreamDetector
	top *topology.Topology
	res *routing.Resolver

	conn    *net.UDPConn
	httpLn  net.Listener
	httpSrv *http.Server

	readerDone chan struct{} // closed when the UDP read loop exits
	consumerWG sync.WaitGroup

	// ingestMu serializes the states a checkpoint must see whole: the full
	// IngestPacket path (including the out-of-mu detector submit), the
	// drain flush, and checkpoint capture itself. It is always taken
	// before mu and never by the verdict consumer or the HTTP handlers, so
	// holding it across a detector submit cannot deadlock. The read loop
	// is IngestPacket's only production caller, so in the healthy path the
	// lock is uncontended.
	ingestMu sync.Mutex
	// binsSinceCp counts bins closed since the last snapshot — the
	// bin-driven checkpoint cadence. Guarded by ingestMu.
	binsSinceCp int
	// cpTimerStop ends the wall-clock checkpoint timer goroutine.
	cpTimerStop chan struct{}
	timerWG     sync.WaitGroup

	// ledgerCond (on mu) wakes checkpoint capture when the verdict
	// consumer grows the anomaly ledger: a snapshot waits until the ledger
	// holds every anomaly emitted before its barrier.
	ledgerCond *sync.Cond

	// reg decodes every datagram; it owns the v9/IPFIX template caches, so
	// it is ingestMu state (the checkpoint snapshots those caches).
	reg *flowwire.Registry
	// recs is the reusable per-packet record buffer; the read loop is the
	// only goroutine that touches it.
	recs []flowwire.Record
	// seq tracks one sequence cursor per (format, engine) export stream.
	// The key space is attacker-influenced (v9/IPFIX source IDs are 32
	// bits on the wire), so the map is capped at maxEngineCursors.
	seq map[engineKey]*engineSeq

	// mu guards everything below. It is never held across a detector
	// Submit: backpressure from the pipeline must not deadlock against the
	// verdict consumer (which takes mu to append anomalies) or block the
	// HTTP handlers.
	mu    sync.Mutex
	bins  map[int]*binAcc
	stats Stats
	// proto is the per-format counter array behind Stats.Protocols
	// (index FormatUnknown stays zero; undetectable garbage only reaches
	// the global BadPackets).
	proto [flowwire.NumFormats]protoCounters
	anoms []netwide.Anomaly
	// behindStreak counts consecutive routable packets landing more than
	// MaxAhead bins below the watermark — the stranded-watermark signal.
	behindStreak int
	started      bool
	draining     bool
	firstError   error
}

// New trains one detector lane per traffic measure on the run (see
// netwide.StreamConfig — the paper-parity setup trains on the run's full
// matrices) and assembles the daemon around it. The run doubles as the
// daemon's network model: its topology resolves engine IDs and destination
// prefixes, its seasonal baselines classify the anomalies the detector
// finds. No sockets are bound until Start.
// New also attempts crash recovery when cfg.CheckpointPath names an
// existing snapshot: if the file verifies (checksum, version, fingerprint)
// the daemon resumes from it — restored models, reopened events, refilled
// open bins, sequence cursors, watermark, anomaly ledger — and is at most
// CheckpointEvery bins stale. A snapshot that fails any check triggers a
// cold start instead, with the reason on Stats.RestoreErr: a bad file on
// disk must never keep the collector down.
func New(run *netwide.Run, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	cfg.Stream.Faults = cfg.Faults
	ds := run.Dataset()
	// The daemon resolves what actually arrives: unlike the generator's
	// resolver it simulates no resolution failures of its own (fraction 0),
	// so a replayed record resolves exactly as it did at generation time.
	res, err := routing.BuildResolver(ds.Top, nil, 0)
	if err != nil {
		return nil, fmt.Errorf("server: build resolver: %w", err)
	}
	reg, err := flowwire.NewRegistry(cfg.Formats...)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	s := &Server{
		cfg:        cfg,
		run:        run,
		top:        ds.Top,
		res:        res,
		reg:        reg,
		seq:        map[engineKey]*engineSeq{},
		bins:       map[int]*binAcc{},
		readerDone: make(chan struct{}),
	}
	s.ledgerCond = sync.NewCond(&s.mu)
	s.stats.LastClosed = -1
	s.stats.Watermark = -1
	s.stats.LastCheckpointBin = -1

	if cfg.CheckpointPath != "" {
		if st, err := checkpoint.ReadFile(cfg.CheckpointPath); err != nil {
			if !errors.Is(err, os.ErrNotExist) {
				// A snapshot exists but cannot be trusted: cold-start and
				// say why, rather than crash-loop on a bad file.
				s.stats.CheckpointFallbacks++
				s.stats.RestoreErr = err.Error()
			}
		} else if err := s.restore(st); err != nil {
			s.stats.CheckpointFallbacks++
			s.stats.RestoreErr = err.Error()
			s.det = nil // discard any partially built detector
			// Discard any template-cache state a partial restore left in
			// the registry: a cold start must not trust checkpoint bytes.
			s.reg, _ = flowwire.NewRegistry(cfg.Formats...)
			s.seq = map[engineKey]*engineSeq{}
		}
	}
	if s.det == nil {
		det, err := run.NewStreamDetector(cfg.Detect, cfg.Stream)
		if err != nil {
			return nil, fmt.Errorf("server: train detector: %w", err)
		}
		s.det = det
	}
	s.consumerWG.Add(1)
	go s.consumeVerdicts()
	return s, nil
}

// detectOpts returns the effective detector options (Config.Detect, with
// the zero value meaning the defaults — the same resolution New applies).
func (s *Server) detectOpts() netwide.DetectOptions {
	opts := s.cfg.Detect
	if opts.K == 0 {
		opts = netwide.DefaultDetectOptions()
	}
	return opts
}

// fingerprint checks that a snapshot was written by a daemon built around
// the same network model and detector configuration as this one.
func (s *Server) fingerprint(st *checkpoint.State) error {
	ds := s.run.Dataset()
	opts := s.detectOpts()
	switch {
	case st.Topology != ds.Top.Name:
		return fmt.Errorf("snapshot topology %q, daemon runs %q", st.Topology, ds.Top.Name)
	case st.ODPairs != ds.NumODPairs():
		return fmt.Errorf("snapshot has %d OD pairs, topology %q has %d", st.ODPairs, ds.Top.Name, ds.NumODPairs())
	case st.Measures != int(dataset.NumMeasures):
		return fmt.Errorf("snapshot has %d measures, want %d", st.Measures, dataset.NumMeasures)
	case st.K != opts.K || st.Alpha != opts.Alpha:
		return fmt.Errorf("snapshot detector (K=%d, alpha=%v), daemon configured (K=%d, alpha=%v)", st.K, st.Alpha, opts.K, opts.Alpha)
	case st.Epoch != s.cfg.Epoch:
		return fmt.Errorf("snapshot epoch %d, daemon epoch %d", st.Epoch, s.cfg.Epoch)
	case !slices.Equal(st.Formats, s.enabledFormats()):
		return fmt.Errorf("snapshot formats %v, daemon enables %v", st.Formats, s.enabledFormats())
	}
	return nil
}

// enabledFormats lists the registry's enabled wire formats in wire-version
// order — checkpoint fingerprint material, since engine cursors and
// template caches only make sense under the same decoder set.
func (s *Server) enabledFormats() []uint8 {
	var out []uint8
	for _, f := range flowwire.AllFormats() {
		if s.reg.Enabled(f) {
			out = append(out, uint8(f))
		}
	}
	return out
}

// restore rebuilds the daemon's state from a verified snapshot. Every
// stored field is cross-validated before it is believed — the snapshot
// passed the checksum, but shape and invariants are this layer's job (the
// detector's own state validates inside RestoreStreamDetector). Any error
// leaves the caller to cold-start.
func (s *Server) restore(st *checkpoint.State) error {
	if err := s.fingerprint(st); err != nil {
		return err
	}
	sv := &st.Server
	if uint64(len(st.Anomalies)) != st.Stream.Emitted {
		return fmt.Errorf("snapshot ledger holds %d anomalies, detector emitted %d: inconsistent snapshot", len(st.Anomalies), st.Stream.Emitted)
	}
	if st.Stream.Started {
		if sv.LastClosed != st.Stream.LastBin {
			return fmt.Errorf("snapshot last closed bin %d disagrees with detector cursor %d", sv.LastClosed, st.Stream.LastBin)
		}
	} else if sv.LastClosed != -1 {
		return fmt.Errorf("snapshot closed bins through %d but detector never started", sv.LastClosed)
	}
	if len(sv.OpenBins) > s.cfg.MaxOpenBins {
		return fmt.Errorf("snapshot holds %d open bins, cap is %d", len(sv.OpenBins), s.cfg.MaxOpenBins)
	}
	p := s.top.NumODPairs()
	bins := make(map[int]*binAcc, len(sv.OpenBins))
	for _, ob := range sv.OpenBins {
		if ob.Bin <= sv.LastClosed {
			return fmt.Errorf("snapshot open bin %d at or behind last closed %d", ob.Bin, sv.LastClosed)
		}
		if len(ob.Bytes) != p || len(ob.Packets) != p || len(ob.Flows) != p {
			return fmt.Errorf("snapshot open bin %d vectors sized (%d,%d,%d), want %d", ob.Bin, len(ob.Bytes), len(ob.Packets), len(ob.Flows), p)
		}
		for _, vec := range [][]float64{ob.Bytes, ob.Packets, ob.Flows} {
			for _, v := range vec {
				if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
					return fmt.Errorf("snapshot open bin %d carries non-finite or negative traffic", ob.Bin)
				}
			}
		}
		if bins[ob.Bin] != nil {
			return fmt.Errorf("snapshot lists open bin %d twice", ob.Bin)
		}
		bins[ob.Bin] = &binAcc{
			bytes:   append([]float64(nil), ob.Bytes...),
			packets: append([]float64(nil), ob.Packets...),
			flows:   append([]float64(nil), ob.Flows...),
			records: ob.Records,
		}
	}
	if len(sv.Engines) > maxEngineCursors {
		return fmt.Errorf("snapshot holds %d engine cursors, cap is %d", len(sv.Engines), maxEngineCursors)
	}
	seq := make(map[engineKey]*engineSeq, len(sv.Engines))
	for _, es := range sv.Engines {
		f := flowwire.Format(es.Format)
		if f == flowwire.FormatUnknown || f >= flowwire.NumFormats || !s.reg.Enabled(f) {
			return fmt.Errorf("snapshot engine cursor for unknown or disabled format %d", es.Format)
		}
		key := engineKey{f, es.ID}
		if seq[key] != nil {
			return fmt.Errorf("snapshot lists engine %v/%d twice", f, es.ID)
		}
		if len(es.Recent) > dedupeWindow || es.Pos < 0 || es.Pos >= dedupeWindow {
			return fmt.Errorf("snapshot engine %v/%d dedupe ring out of shape (%d entries, pos %d)", f, es.ID, len(es.Recent), es.Pos)
		}
		e := &engineSeq{started: true, next: es.Next, fill: len(es.Recent), pos: es.Pos}
		copy(e.recent[:], es.Recent)
		seq[key] = e
	}
	var proto [flowwire.NumFormats]protoCounters
	protoSeen := map[uint8]bool{}
	for _, ps := range sv.Protocols {
		f := flowwire.Format(ps.Format)
		if f == flowwire.FormatUnknown || f >= flowwire.NumFormats {
			return fmt.Errorf("snapshot protocol counters for unknown format %d", ps.Format)
		}
		if protoSeen[ps.Format] {
			return fmt.Errorf("snapshot lists protocol %v twice", f)
		}
		protoSeen[ps.Format] = true
		proto[f] = protoCounters{
			packets:    ps.Packets,
			badPackets: ps.BadPackets,
			duplicates: ps.Duplicates,
			records:    ps.Records,
			lostUnits:  ps.LostUnits,
		}
	}
	tmpl := map[flowwire.Format][]flowwire.TemplateSnapshot{}
	for _, ts := range sv.Templates {
		f := flowwire.Format(ts.Format)
		if f != flowwire.FormatNetFlowV9 && f != flowwire.FormatIPFIX {
			return fmt.Errorf("snapshot template for non-template format %d", ts.Format)
		}
		fields := make([]flowwire.FieldSpec, len(ts.Fields))
		for i, fd := range ts.Fields {
			fields[i] = flowwire.FieldSpec{ID: fd.ID, Enterprise: fd.Enterprise, Length: fd.Length}
		}
		tmpl[f] = append(tmpl[f], flowwire.TemplateSnapshot{
			Source: ts.Source, ID: ts.ID, Scope: ts.Scope, Fields: fields,
		})
	}
	// The registry revalidates every definition exactly like a hostile wire
	// template; a failure here (or below) makes New rebuild the registry,
	// so a partially restored cache never survives into a cold start.
	for f, snaps := range tmpl {
		if err := s.reg.RestoreTemplates(f, snaps); err != nil {
			return fmt.Errorf("snapshot template restore (%v): %w", f, err)
		}
	}

	det, err := s.run.RestoreStreamDetector(st.Stream, s.cfg.Stream)
	if err != nil {
		return err
	}
	s.det = det
	s.bins = bins
	s.seq = seq
	s.proto = proto
	s.anoms = append([]netwide.Anomaly(nil), st.Anomalies...)
	s.behindStreak = sv.BehindStreak
	s.stats.Packets = sv.Packets
	s.stats.BadPackets = sv.BadPackets
	s.stats.Duplicates = sv.Duplicates
	s.stats.Records = sv.Records
	s.stats.LostRecords = sv.LostRecords
	s.stats.LateRecords = sv.LateRecords
	s.stats.Unroutable = sv.Unroutable
	s.stats.WildRecords = sv.WildRecords
	s.stats.WatermarkResets = sv.WatermarkResets
	s.stats.BinsClosed = sv.BinsClosed
	s.stats.BinsOpen = len(bins)
	s.stats.Watermark = sv.Watermark
	s.stats.LastClosed = sv.LastClosed
	s.stats.AlarmBins = sv.AlarmBins
	s.stats.Anomalies = len(s.anoms)
	s.stats.Restored = true
	s.stats.RestoredBin = sv.LastClosed
	s.stats.LastCheckpointBin = sv.LastClosed
	return nil
}

// checkpointLocked takes one snapshot: barrier the detector, wait for the
// anomaly ledger to catch up to the barrier, freeze the ingest state, and
// atomically replace the snapshot file. Callers hold ingestMu, which is
// what makes the frozen state consistent — no bin can be accumulated,
// closed or submitted while the capture runs. Write failures (a full disk,
// an injected fault) are counted and surfaced on /stats, never fatal: the
// daemon keeps collecting, one snapshot staler.
func (s *Server) checkpointLocked() error {
	cp, err := s.det.Checkpoint()
	if err == nil {
		s.mu.Lock()
		// The barrier guarantees every pre-barrier verdict has been
		// delivered to the consumer; wait for the consumer to fold them in
		// so the snapshot's ledger is exactly the pre-barrier set.
		for uint64(len(s.anoms)) < cp.Emitted {
			s.ledgerCond.Wait()
		}
		st := s.snapshotLocked(cp)
		s.mu.Unlock()
		err = checkpoint.WriteFile(s.cfg.CheckpointPath, st, s.cfg.Faults)
	}
	s.mu.Lock()
	if err != nil {
		s.stats.CheckpointErrors++
		s.stats.CheckpointErr = err.Error()
	} else {
		s.stats.CheckpointsWritten++
		s.stats.LastCheckpointBin = s.stats.LastClosed
		s.stats.CheckpointErr = ""
	}
	s.mu.Unlock()
	if err == nil {
		s.binsSinceCp = 0
	}
	return err
}

// snapshotLocked assembles the full on-disk snapshot around a detector
// checkpoint. Callers hold mu (for the ledger and counters) and ingestMu
// (which freezes the open bins and sequence cursors).
func (s *Server) snapshotLocked(cp netwide.StreamCheckpoint) *checkpoint.State {
	ds := s.run.Dataset()
	opts := s.detectOpts()
	st := &checkpoint.State{
		Topology:  ds.Top.Name,
		ODPairs:   ds.NumODPairs(),
		Measures:  int(dataset.NumMeasures),
		K:         opts.K,
		Alpha:     opts.Alpha,
		Epoch:     s.cfg.Epoch,
		Formats:   s.enabledFormats(),
		Stream:    cp,
		Anomalies: append([]netwide.Anomaly(nil), s.anoms[:cp.Emitted]...),
	}
	sv := &st.Server
	sv.Packets = s.stats.Packets
	sv.BadPackets = s.stats.BadPackets
	sv.Duplicates = s.stats.Duplicates
	sv.Records = s.stats.Records
	sv.LostRecords = s.stats.LostRecords
	sv.LateRecords = s.stats.LateRecords
	sv.Unroutable = s.stats.Unroutable
	sv.WildRecords = s.stats.WildRecords
	sv.WatermarkResets = s.stats.WatermarkResets
	sv.BinsClosed = s.stats.BinsClosed
	sv.Watermark = s.stats.Watermark
	sv.LastClosed = s.stats.LastClosed
	sv.AlarmBins = s.stats.AlarmBins
	sv.BehindStreak = s.behindStreak
	sv.OpenBins = make([]checkpoint.OpenBin, 0, len(s.bins))
	for bin, acc := range s.bins {
		sv.OpenBins = append(sv.OpenBins, checkpoint.OpenBin{
			Bin:     bin,
			Records: acc.records,
			Bytes:   append([]float64(nil), acc.bytes...),
			Packets: append([]float64(nil), acc.packets...),
			Flows:   append([]float64(nil), acc.flows...),
		})
	}
	sort.Slice(sv.OpenBins, func(i, j int) bool { return sv.OpenBins[i].Bin < sv.OpenBins[j].Bin })
	keys := make([]engineKey, 0, len(s.seq))
	for k, e := range s.seq {
		if e.started {
			keys = append(keys, k)
		}
	}
	// The map iterates in random order; the snapshot must not.
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].format != keys[j].format {
			return keys[i].format < keys[j].format
		}
		return keys[i].engine < keys[j].engine
	})
	for _, k := range keys {
		e := s.seq[k]
		// recent[:fill] is exactly the valid ring entries: the ring fills
		// from slot 0 and pos only wraps once fill reaches the window.
		sv.Engines = append(sv.Engines, checkpoint.EngineState{
			Format: uint8(k.format),
			ID:     k.engine,
			Next:   e.next,
			Recent: append([]uint32(nil), e.recent[:e.fill]...),
			Pos:    e.pos,
		})
	}
	for f := flowwire.Format(1); f < flowwire.NumFormats; f++ {
		pc := s.proto[f]
		if pc == (protoCounters{}) {
			continue
		}
		sv.Protocols = append(sv.Protocols, checkpoint.ProtoState{
			Format:     uint8(f),
			Packets:    pc.packets,
			BadPackets: pc.badPackets,
			Duplicates: pc.duplicates,
			Records:    pc.records,
			LostUnits:  pc.lostUnits,
		})
	}
	// Template caches are decode state a mid-stream restart cannot relearn
	// until the exporters resend, so they checkpoint too. Callers hold
	// ingestMu, which is what makes reading the registry here safe.
	for _, f := range []flowwire.Format{flowwire.FormatNetFlowV9, flowwire.FormatIPFIX} {
		for _, ts := range s.reg.TemplateSnapshots(f) {
			fields := make([]checkpoint.TemplateField, len(ts.Fields))
			for i, fd := range ts.Fields {
				fields[i] = checkpoint.TemplateField{ID: fd.ID, Enterprise: fd.Enterprise, Length: fd.Length}
			}
			sv.Templates = append(sv.Templates, checkpoint.TemplateState{
				Format: uint8(f),
				Source: ts.Source,
				ID:     ts.ID,
				Scope:  ts.Scope,
				Fields: fields,
			})
		}
	}
	return st
}

// CheckpointNow takes a snapshot immediately, outside the bin-driven
// cadence — the wall-clock timer's entry point, also callable by tests and
// operators. It fails when checkpointing is disabled or a drain is in
// progress (the drain takes its own final snapshot).
func (s *Server) CheckpointNow() error {
	if s.cfg.CheckpointPath == "" {
		return errors.New("server: checkpointing disabled (no CheckpointPath)")
	}
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		return errors.New("server: draining; the drain writes the final checkpoint")
	}
	return s.checkpointLocked()
}

// checkpointTimer snapshots every CheckpointInterval of wall-clock time —
// the safety net for quiet periods when no bins close and the bin-driven
// cadence therefore never fires.
func (s *Server) checkpointTimer(stop chan struct{}) {
	defer s.timerWG.Done()
	ticks, stopTicker := s.cfg.Clock.Ticker(s.cfg.CheckpointInterval)
	defer stopTicker()
	for {
		select {
		case <-stop:
			return
		case <-ticks:
			s.CheckpointNow() // failures land on Stats; draining is declined
		}
	}
}

// consumeVerdicts drains the detector's verdict stream for the daemon's
// lifetime, folding characterized anomalies and alarm counts into the
// served state. It exits when the stream closes (after Drain).
func (s *Server) consumeVerdicts() {
	defer s.consumerWG.Done()
	for v := range s.det.Verdicts() {
		s.mu.Lock()
		if v.Alarm() {
			s.stats.AlarmBins++
		}
		s.stats.Generations = v.Generations
		s.anoms = append(s.anoms, v.Anomalies...)
		s.stats.Anomalies = len(s.anoms)
		s.ledgerCond.Broadcast()
		s.mu.Unlock()
	}
	tail := s.det.TailAnomalies()
	s.mu.Lock()
	s.anoms = append(s.anoms, tail...)
	s.stats.Anomalies = len(s.anoms)
	s.ledgerCond.Broadcast()
	s.mu.Unlock()
}

// Start binds the UDP and HTTP sockets and launches the read loop.
func (s *Server) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return errors.New("server: already started")
	}
	addr, err := net.ResolveUDPAddr("udp", s.cfg.UDPAddr)
	if err != nil {
		return fmt.Errorf("server: udp addr: %w", err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return fmt.Errorf("server: listen udp: %w", err)
	}
	// Best effort: the kernel may clamp to rmem_max, which still beats the
	// default. A too-small buffer shows up as LostRecords, not silence.
	_ = conn.SetReadBuffer(s.cfg.ReadBuffer)
	s.conn = conn
	if s.cfg.HTTPAddr != "" {
		ln, err := net.Listen("tcp", s.cfg.HTTPAddr)
		if err != nil {
			conn.Close()
			s.conn = nil
			return fmt.Errorf("server: listen http: %w", err)
		}
		s.httpLn = ln
		mux := http.NewServeMux()
		// Every endpoint lives under the versioned /api/v1/ prefix; the
		// original unversioned paths remain as aliases so existing probes
		// and dashboards keep working.
		for _, p := range []string{"/api/v1/healthz", "/healthz"} {
			mux.HandleFunc(p, s.handleHealthz)
		}
		for _, p := range []string{"/api/v1/stats", "/stats"} {
			mux.HandleFunc(p, s.handleStats)
		}
		for _, p := range []string{"/api/v1/anomalies", "/anomalies"} {
			mux.HandleFunc(p, s.handleAnomalies)
		}
		// The status port faces the same network as the flow socket, so
		// it gets the same hostile-input posture: a client that dribbles a
		// header, stalls mid-request or parks an idle connection must not
		// pin a daemon goroutine forever.
		srv := &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       10 * time.Second,
			IdleTimeout:       60 * time.Second,
		}
		s.httpSrv = srv
		go func() {
			if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				s.fail(fmt.Errorf("server: http: %w", err))
			}
		}()
	}
	if s.cfg.CheckpointPath != "" && s.cfg.CheckpointInterval > 0 {
		s.cpTimerStop = make(chan struct{})
		s.timerWG.Add(1)
		go s.checkpointTimer(s.cpTimerStop)
	}
	s.started = true
	go s.readLoop(conn)
	return nil
}

// UDPAddr returns the bound flow-export listen address (nil before Start).
func (s *Server) UDPAddr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.conn == nil {
		return nil
	}
	return s.conn.LocalAddr()
}

// HTTPAddr returns the bound status endpoint address (nil before Start or
// when HTTP is disabled).
func (s *Server) HTTPAddr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.httpLn == nil {
		return nil
	}
	return s.httpLn.Addr()
}

// readLoop receives datagrams until the socket is closed by Drain. Every
// supported format keeps its export packets under the common 1500-byte
// MTU; the buffer leaves headroom so an overlong datagram arrives intact
// and is rejected by the decoder instead of being silently truncated into
// a "valid" prefix.
func (s *Server) readLoop(conn *net.UDPConn) {
	defer close(s.readerDone)
	buf := make([]byte, 4096)
	for {
		n, _, err := conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed (Drain) or fatally broken
		}
		s.IngestPacket(buf[:n])
	}
}

// IngestPacket runs the full per-datagram ingest path — decode, sequence
// dedupe, OD resolution, bin accumulation, bin close, and the bin-driven
// checkpoint cadence — synchronously on the caller's goroutine. The read
// loop is its only caller in production; tests and benchmarks call it
// directly to drive the daemon without a socket. ingestMu serializes
// concurrent callers and excludes checkpoint capture mid-packet.
func (s *Server) IngestPacket(pkt []byte) {
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	b, recs, err := s.reg.Decode(pkt, s.recs[:0])
	s.recs = recs
	s.mu.Lock()
	s.stats.Packets++
	// Decode attributes even failed packets to a format when the version
	// word detected one; garbage that detects as nothing only reaches the
	// global counters.
	var pc *protoCounters
	if b.Format != flowwire.FormatUnknown && b.Format < flowwire.NumFormats {
		pc = &s.proto[b.Format]
		pc.packets++
	}
	if err != nil {
		s.stats.BadPackets++
		if pc != nil {
			pc.badPackets++
		}
		s.mu.Unlock()
		return
	}
	if !s.sequenceCheck(b) {
		s.stats.Duplicates++
		pc.duplicates++
		s.mu.Unlock()
		return
	}
	if int64(b.UnixSecs) < int64(s.cfg.Epoch) {
		// Before bin 0 — and integer division would truncate it INTO bin 0.
		s.stats.LateRecords += uint64(len(recs))
		s.mu.Unlock()
		return
	}
	bin := int(int64(b.UnixSecs)-int64(s.cfg.Epoch)) / traffic.BinSeconds
	if bin <= s.stats.LastClosed {
		s.stats.LateRecords += uint64(len(recs))
		s.mu.Unlock()
		return
	}
	if s.stats.Watermark >= 0 && bin > s.stats.Watermark+s.cfg.MaxAhead {
		// The bin timestamp is untrusted input and it drives every bin
		// close: refusing wild jumps keeps one spoofed datagram from
		// force-closing partial bins and parking the watermark out of
		// legitimate traffic's reach.
		s.stats.WildRecords += uint64(len(recs))
		s.mu.Unlock()
		return
	}
	accepted := s.accumulate(bin, b, recs)
	pc.records += uint64(accepted)
	var closed []submittedBin
	switch {
	case accepted == 0:
		// Only routable traffic moves the watermark: a datagram that
		// contributed nothing to any bin gets no say in when bins close.
	case bin > s.stats.Watermark:
		s.stats.Watermark = bin
		s.behindStreak = 0
		closed = s.detachThrough(bin - s.cfg.Grace)
	case s.stats.Watermark-bin > s.cfg.MaxAhead:
		// Routable traffic consistently far below the watermark means the
		// watermark is stranded — a far-future first packet or an exporter
		// clock jump (MaxAhead can't bound the first packet: there is
		// nothing to bound it against). In normal operation this branch is
		// unreachable: bins more than MaxAhead behind the watermark are
		// already behind LastClosed and were dropped as late above. A
		// quorum of consecutive packets re-anchors the watermark at the
		// stream that is actually flowing, unwedging bin close.
		s.behindStreak++
		if s.behindStreak >= watermarkQuorum {
			s.resetWatermark(bin)
		}
	default:
		s.behindStreak = 0
	}
	s.mu.Unlock()
	// Submit outside mu: pipeline backpressure must not wedge the HTTP
	// handlers or deadlock the verdict consumer (ingestMu is still held,
	// which is safe — the consumer and the handlers never take it).
	s.submit(closed)
	if s.cfg.CheckpointPath != "" && len(closed) > 0 {
		s.binsSinceCp += len(closed)
		if s.binsSinceCp >= s.cfg.CheckpointEvery {
			s.checkpointLocked()
		}
	}
}

const (
	// dedupeWindow is how many recent packet sequence numbers each engine
	// remembers for exact duplicate detection. A replayed packet older
	// than the window slips through — the window trades a little replay
	// protection for not discarding merely-reordered traffic.
	dedupeWindow = 64
	// reorderTolerance is how far (in the stream's sequence units) behind
	// the cursor a packet may fall and still be network reordering;
	// anything further back is an exporter restart and resets the cursor,
	// so a spoofed wild sequence number can never permanently wedge an
	// engine's stream.
	reorderTolerance = 1 << 20
	// maxEngineCursors caps the sequence-cursor map. The v9/IPFIX exporter
	// identity is a 32-bit field in attacker-influenced packets; beyond
	// the cap, packets from new streams are accepted without sequence
	// accounting rather than growing daemon memory without bound.
	maxEngineCursors = 4096
)

// engineKey identifies one export stream. Sequence spaces are independent
// per wire format — a v5 engine 3 and an IPFIX observation domain 3 are
// different streams — so the format is part of the identity.
type engineKey struct {
	format flowwire.Format
	engine uint32
}

// sequenceCheck updates the batch's per-stream sequence state and reports
// whether the packet should be ingested, honoring the batch's own sequence
// semantics: the cursor advances by SeqAdvance units of SeqModel's unit
// (flows, packets, records or samples), and a gap ahead of the cursor is
// that many units lost in transit — credited to the stream's format in
// Stats.Protocols, and folded into the global LostRecords only when the
// unit is a record (v5, IPFIX). A batch behind the cursor is, in order of
// precedence: a replayed duplicate if its sequence number was recently
// seen (dropped — counting it twice would corrupt the bin); plain network
// reordering if it is within reorderTolerance (accepted, and the loss the
// earlier gap charged for it is refunded); otherwise an exporter restart,
// which resets the cursor. Batches without sequence information (SeqNone)
// pass through untracked. Callers hold mu.
func (s *Server) sequenceCheck(b flowwire.Batch) bool {
	if b.SeqModel == flowwire.SeqNone {
		return true
	}
	key := engineKey{b.Format, b.Engine}
	e := s.seq[key]
	if e == nil {
		if len(s.seq) >= maxEngineCursors {
			return true // accept, untracked: see maxEngineCursors
		}
		e = &engineSeq{}
		s.seq[key] = e
	}
	pc := &s.proto[b.Format]
	countsRecords := b.SeqModel.CountsRecords()
	if !e.started {
		e.started = true
		e.next = b.Seq + b.SeqAdvance
		e.remember(b.Seq)
		return true
	}
	delta := int32(b.Seq - e.next) // uint32 arithmetic handles wraparound
	switch {
	case delta >= 0:
		if delta > reorderTolerance {
			// A forward jump too wild to be transit loss is the same event
			// as the backward one: an exporter restart (or a spoofed
			// sequence) — resynchronize rather than charging a phantom
			// multi-billion-unit gap to the loss counters.
			e.clear()
		} else {
			pc.lostUnits += uint64(delta)
			if countsRecords {
				s.stats.LostRecords += uint64(delta)
			}
		}
		e.next = b.Seq + b.SeqAdvance
	case e.seen(b.Seq):
		return false
	case delta >= -reorderTolerance:
		// Reordered delivery: the gap this batch left was already counted
		// lost when its successor arrived first, so refund it. The cursor
		// stays where the stream's front is.
		refund := uint64(b.SeqAdvance)
		if refund > pc.lostUnits {
			refund = pc.lostUnits
		}
		pc.lostUnits -= refund
		if countsRecords {
			refund = uint64(b.SeqAdvance)
			if refund > s.stats.LostRecords {
				refund = s.stats.LostRecords
			}
			s.stats.LostRecords -= refund
		}
	default:
		// Exporter restart (or a spoofed wild sequence): resynchronize.
		e.next = b.Seq + b.SeqAdvance
		e.clear()
	}
	e.remember(b.Seq)
	return true
}

// accumulate folds one packet's records into its bin's vectors, resolving
// each record to an OD pair: origin from the engine ID, egress by
// longest-prefix match on the anonymized destination — the same procedure,
// and therefore the same (OD, bin) cell, as the offline generator. It
// returns how many records were actually folded in; a packet that
// contributes nothing must not advance the watermark. Callers hold mu.
func (s *Server) accumulate(bin int, b flowwire.Batch, recs []flowwire.Record) (accepted int) {
	origin := topology.PoP(b.Engine)
	originOK := s.top.ContainsPoP(origin)
	acc := s.bins[bin]
	for _, rec := range recs {
		if !originOK {
			s.stats.Unroutable++
			continue
		}
		egress, ok := s.res.ResolveDst(rec.Dst)
		if !ok {
			s.stats.Unroutable++
			continue
		}
		if acc == nil {
			// Open the bin lazily, on the first routable record, and under
			// a cap: unroutable or wild garbage must not grow the open set.
			if len(s.bins) >= s.cfg.MaxOpenBins {
				s.stats.WildRecords++
				continue
			}
			p := s.top.NumODPairs()
			acc = &binAcc{
				bytes:   make([]float64, p),
				packets: make([]float64, p),
				flows:   make([]float64, p),
			}
			s.bins[bin] = acc
			s.stats.BinsOpen = len(s.bins)
		}
		col := s.top.Index(topology.ODPair{Origin: origin, Dest: egress})
		acc.bytes[col] += float64(rec.Bytes)
		acc.packets[col] += float64(rec.Packets)
		// Flow-export records each carry one flow (Flows == 1), keeping
		// bit-for-bit parity with the v5-era `flows[col]++`; sFlow samples
		// estimate flow counts, and the estimate rides the same field.
		acc.flows[col] += float64(rec.Flows)
		acc.records++
		s.stats.Records++
		accepted++
	}
	return accepted
}

// watermarkQuorum is how many consecutive routable packets must land more
// than MaxAhead bins below the watermark before the daemon concludes the
// watermark is stranded and re-anchors it.
const watermarkQuorum = 8

// resetWatermark re-anchors a stranded watermark at the bin the live
// stream actually flows in, discarding open bins stranded in the far
// future (their contents were the lie that moved the watermark there).
// Callers hold mu.
func (s *Server) resetWatermark(bin int) {
	for b, acc := range s.bins {
		if b > bin+s.cfg.MaxAhead {
			s.stats.WildRecords += acc.records
			delete(s.bins, b)
		}
	}
	s.stats.BinsOpen = len(s.bins)
	s.stats.Watermark = bin
	s.stats.WatermarkResets++
	s.behindStreak = 0
}

// engineSeq is one export stream's sequence cursor plus a small ring of
// recently seen packet sequence numbers for duplicate detection.
type engineSeq struct {
	next    uint32
	started bool
	recent  [dedupeWindow]uint32
	fill    int // entries of recent in use
	pos     int // next ring slot to overwrite
}

func (e *engineSeq) remember(seq uint32) {
	e.recent[e.pos] = seq
	e.pos = (e.pos + 1) % dedupeWindow
	if e.fill < dedupeWindow {
		e.fill++
	}
}

func (e *engineSeq) seen(seq uint32) bool {
	for i := 0; i < e.fill; i++ {
		if e.recent[i] == seq {
			return true
		}
	}
	return false
}

func (e *engineSeq) clear() { e.fill, e.pos = 0, 0 }

// submittedBin pairs a detached accumulator with its bin index.
type submittedBin struct {
	bin int
	acc *binAcc
}

// detachThrough removes every open bin <= limit from the open set, in
// ascending bin order, updating the close counters. Callers hold mu; the
// actual detector submission happens outside the lock via submit.
func (s *Server) detachThrough(limit int) []submittedBin {
	var out []submittedBin
	for bin, acc := range s.bins {
		if bin <= limit {
			out = append(out, submittedBin{bin, acc})
		}
	}
	if len(out) == 0 {
		return nil
	}
	sort.Slice(out, func(i, j int) bool { return out[i].bin < out[j].bin })
	for _, sb := range out {
		delete(s.bins, sb.bin)
		if sb.bin > s.stats.LastClosed {
			s.stats.LastClosed = sb.bin
		}
	}
	s.stats.BinsClosed += len(out)
	s.stats.BinsOpen = len(s.bins)
	return out
}

// submit feeds detached bins to the detector in ascending order, recording
// the first failure. Bins are only ever detached in ascending order across
// calls, so the detector's non-decreasing contract holds.
func (s *Server) submit(closed []submittedBin) {
	for _, sb := range closed {
		if err := s.det.Submit(sb.bin, sb.acc.bytes, sb.acc.packets, sb.acc.flows); err != nil {
			s.fail(fmt.Errorf("server: submit bin %d: %w", sb.bin, err))
			return
		}
	}
}

// fail records the first ingest-side error.
func (s *Server) fail(err error) {
	s.mu.Lock()
	if s.firstError == nil {
		s.firstError = err
	}
	s.mu.Unlock()
}

// Err returns the first error the daemon has seen: an ingest-side submit
// failure or a background detector failure.
func (s *Server) Err() error {
	s.mu.Lock()
	err := s.firstError
	s.mu.Unlock()
	if err != nil {
		return err
	}
	return s.det.Err()
}

// Stats returns a snapshot of the ingest counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	st := s.stats
	st.Draining = s.draining
	st.BinsOpen = len(s.bins)
	for f := flowwire.Format(1); f < flowwire.NumFormats; f++ {
		pc := s.proto[f]
		if pc == (protoCounters{}) {
			continue
		}
		if st.Protocols == nil {
			st.Protocols = make(map[string]ProtoStats, 4)
		}
		st.Protocols[f.String()] = ProtoStats{
			Packets:    pc.packets,
			BadPackets: pc.badPackets,
			Duplicates: pc.duplicates,
			Records:    pc.records,
			LostUnits:  pc.lostUnits,
			SeqUnit:    f.SequenceModel().Unit(),
		}
	}
	if s.firstError != nil {
		st.Err = s.firstError.Error()
	}
	s.mu.Unlock()
	if st.Err == "" {
		if err := s.det.Err(); err != nil {
			st.Err = err.Error()
		}
	}
	if err := s.det.RefitErr(); err != nil {
		st.DegradedErr = err.Error()
	}
	return st
}

// Anomalies returns the characterized anomalies collected so far, oldest
// first.
func (s *Server) Anomalies() []netwide.Anomaly {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]netwide.Anomaly, len(s.anoms))
	copy(out, s.anoms)
	return out
}

// Drain performs the graceful shutdown: stop accepting datagrams, flush
// every in-flight bin through the detector (nothing accepted is dropped),
// write the final checkpoint (when enabled), wait for the verdict stream
// to complete — folding still-open events into the anomaly log — and
// finally stop the HTTP endpoint. The context bounds only the HTTP
// shutdown; the detector drain always runs to completion, so a context
// that is already done on entry is rejected up front rather than silently
// running a long drain whose deadline has passed. Drain may be called once:
// a second or concurrent call fails immediately with a descriptive error
// instead of blocking behind the first — the caller holding the real drain
// is the one that gets its result.
func (s *Server) Drain(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("server: drain: context already done before shutdown began: %w", err)
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("server: drain already in progress or completed")
	}
	s.draining = true
	conn := s.conn
	stop := s.cpTimerStop
	s.cpTimerStop = nil
	s.mu.Unlock()

	if stop != nil {
		close(stop) // no snapshot may race the final one below
		s.timerWG.Wait()
	}
	if conn != nil {
		conn.Close() // unblocks the read loop
		<-s.readerDone
	}

	// The read loop has exited and the socket is closed: no new bins can
	// appear. Flush the tail, then persist the final snapshot — it carries
	// every closed bin, so a restart after a clean drain resumes zero bins
	// stale. ingestMu excludes a straggling direct IngestPacket caller.
	s.ingestMu.Lock()
	s.mu.Lock()
	closed := s.detachThrough(s.stats.Watermark)
	s.mu.Unlock()
	s.submit(closed)
	if s.cfg.CheckpointPath != "" {
		s.checkpointLocked()
	}
	s.ingestMu.Unlock()

	s.det.Close()
	s.consumerWG.Wait() // verdict stream fully drained, tail folded in
	s.det.Wait()        // settle background refits before reading errors
	if err := s.det.Err(); err != nil {
		// Fatal only: a refit failure means the daemon ran degraded, not
		// that the drain failed — it stays on Stats.DegradedErr.
		s.fail(fmt.Errorf("server: detector: %w", err))
	}

	s.mu.Lock()
	srv, ln := s.httpSrv, s.httpLn
	s.httpSrv, s.httpLn = nil, nil
	s.mu.Unlock()
	if srv != nil {
		if err := srv.Shutdown(ctx); err != nil {
			srv.Close()
		}
	} else if ln != nil {
		ln.Close()
	}
	return s.Err()
}

// Kill stops the daemon the way a crash would: sockets closed, goroutines
// reaped, but no flush, no final checkpoint — the open bins and the
// in-memory ledger are simply gone, and the snapshot on disk stays
// whatever the last periodic write made it. This is the chaos tests' kill
// switch; production shutdown is Drain.
func (s *Server) Kill() {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return
	}
	s.draining = true
	conn := s.conn
	stop := s.cpTimerStop
	s.cpTimerStop = nil
	srv, ln := s.httpSrv, s.httpLn
	s.httpSrv, s.httpLn = nil, nil
	s.mu.Unlock()

	if stop != nil {
		close(stop)
		s.timerWG.Wait()
	}
	if conn != nil {
		conn.Close()
		<-s.readerDone
	}
	if srv != nil {
		srv.Close() // abrupt: no graceful connection drain
	} else if ln != nil {
		ln.Close()
	}
	// Reap the detector goroutines so a killed daemon leaks nothing into
	// the test process; the verdicts it delivers on the way down land in a
	// ledger nobody will read again.
	s.det.Close()
	s.consumerWG.Wait()
	s.det.Wait()
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if err := s.Err(); err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Stats())
}

func (s *Server) handleAnomalies(w http.ResponseWriter, r *http.Request) {
	anoms := s.Anomalies()
	if anoms == nil {
		anoms = []netwide.Anomaly{} // render [] rather than null
	}
	writeJSON(w, anoms)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
