// Package server is the live front door of the reproduction: a long-running
// ingest daemon that stands where the paper's collection infrastructure
// stood — between the routers exporting sampled NetFlow v5 and the subspace
// detector consuming OD-aggregated timebins.
//
// One Server owns one UDP socket. Every datagram is decoded with the
// hardened internal/netflow codec (hostile bytes are counted and dropped,
// never trusted), deduplicated by per-engine flow sequence, and each record
// is resolved to an origin-destination PoP pair exactly as the offline
// pipeline does it: the origin from the export engine ID (interface-based
// configuration resolution), the egress by longest-prefix match on the
// anonymized destination address (internal/routing). Resolved records
// accumulate into per-bin byte/packet/flow vectors — the same three
// measures, the same 5-minute binning, the same accumulation arithmetic as
// dataset.Generate — and when the reorder grace window moves past a bin,
// the bin is closed and submitted to a StreamDetector, which scores,
// attributes, aggregates and classifies at streaming time. Characterized
// anomalies collect on the server and stream out of the /anomalies
// endpoint.
//
// Batch parity: every per-record sum the server computes is an integer
// count below 2^53 folded into a float64, so the accumulated vectors are
// exact regardless of packet arrival order; a replayed dataset therefore
// reproduces the generator's matrices bit for bit, and the daemon's
// characterized anomalies match the batch Characterize output on the same
// bins (the loopback end-to-end test pins this).
//
// The HTTP side is deliberately small: /healthz (liveness, 503 once the
// detector has recorded a background error), /stats (ingest counters as
// JSON) and /anomalies (the characterized anomaly log as JSON).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"

	"netwide"
	"netwide/internal/dataset"
	"netwide/internal/netflow"
	"netwide/internal/routing"
	"netwide/internal/topology"
	"netwide/internal/traffic"
)

// Config tunes an ingest daemon. The zero value listens on an ephemeral
// loopback UDP port with no HTTP endpoint.
type Config struct {
	// UDPAddr is the NetFlow listen address (default "127.0.0.1:0"; the
	// standard NetFlow port is 2055).
	UDPAddr string
	// HTTPAddr is the status endpoint listen address ("" disables HTTP).
	HTTPAddr string
	// Epoch is the Unix time of bin 0: a record exported at UnixSecs lands
	// in bin (UnixSecs-Epoch)/300. Replayed datasets use Epoch 0 and stamp
	// headers with bin*300 directly.
	Epoch uint32
	// Grace is the reorder window in bins: a bin closes (and is submitted
	// to the detector) once a record arrives for a bin Grace or more bins
	// ahead of it, so packets delayed or reordered across a bin boundary
	// still land in their bin. Records for already-closed bins are counted
	// late and dropped. Default 1.
	Grace int
	// MaxAhead bounds how far ahead of the watermark a packet's bin may
	// claim to be (default 64 bins ≈ 5.3 hours). The bin timestamp is
	// attacker-controlled input that drives every bin close: without the
	// bound, one spoofed far-future datagram would force-close every open
	// bin with partial data and park the watermark where no legitimate bin
	// could ever close again. Packets beyond the bound are dropped and
	// counted (Stats.WildRecords).
	MaxAhead int
	// MaxOpenBins caps the accumulating (not yet closed) bins (default
	// 256). Records that would open a bin beyond the cap are dropped and
	// counted wild — bounding the daemon's memory even against spoofed
	// timestamps that scatter records across arbitrary bins.
	MaxOpenBins int
	// ReadBuffer is the UDP socket receive buffer in bytes (default 4MB —
	// the socket must absorb export bursts while a bin close runs).
	ReadBuffer int
	// Detect and Stream configure the underlying StreamDetector.
	Detect netwide.DetectOptions
	Stream netwide.StreamConfig
}

func (c Config) withDefaults() Config {
	if c.UDPAddr == "" {
		c.UDPAddr = "127.0.0.1:0"
	}
	if c.Grace <= 0 {
		c.Grace = 1
	}
	if c.MaxAhead <= 0 {
		c.MaxAhead = 64
	}
	if c.MaxOpenBins <= 0 {
		c.MaxOpenBins = 256
	}
	if c.ReadBuffer <= 0 {
		c.ReadBuffer = 4 << 20
	}
	return c
}

// Stats is a snapshot of the daemon's ingest counters, shaped for the
// /stats JSON endpoint.
type Stats struct {
	// Packets counts datagrams received; BadPackets the subset rejected by
	// the decoder (truncated, bad version, hostile counts); Duplicates the
	// subset dropped by per-engine sequence replay detection.
	Packets    uint64 `json:"packets"`
	BadPackets uint64 `json:"bad_packets"`
	Duplicates uint64 `json:"duplicate_packets"`
	// Records counts decoded flow records accepted for aggregation.
	// LostRecords is the v5 sequence-gap estimate of records dropped in
	// transit; LateRecords arrived for bins already closed; Unroutable
	// records carried an unknown engine ID or an unresolvable destination.
	Records     uint64 `json:"records"`
	LostRecords uint64 `json:"lost_records"`
	LateRecords uint64 `json:"late_records"`
	Unroutable  uint64 `json:"unroutable_records"`
	// WildRecords carried bin timestamps the daemon refused to trust: more
	// than MaxAhead bins past the watermark, or needing an open bin beyond
	// MaxOpenBins. WatermarkResets counts stranded-watermark recoveries
	// (a far-future first packet or exporter clock jump, re-anchored once
	// a quorum of routable traffic ran consistently below it).
	WildRecords     uint64 `json:"wild_records"`
	WatermarkResets uint64 `json:"watermark_resets"`
	// BinsClosed bins have been submitted to the detector; BinsOpen are
	// still accumulating. Watermark is the highest bin seen, LastClosed the
	// highest submitted.
	BinsClosed int `json:"bins_closed"`
	BinsOpen   int `json:"bins_open"`
	Watermark  int `json:"watermark"`
	LastClosed int `json:"last_closed"`
	// AlarmBins counts scored bins where any measure alarmed; Anomalies is
	// the running count of fully characterized anomalies.
	AlarmBins int `json:"alarm_bins"`
	Anomalies int `json:"anomalies"`
	// Generations is the per-measure model generation (B, P, F): the number
	// of completed background refits.
	Generations [dataset.NumMeasures]uint64 `json:"generations"`
	// Draining reports a shutdown in progress. Err carries the first FATAL
	// error — an ingest submit failure or a detector scoring failure ("",
	// and /healthz 200, when healthy). DegradedErr carries a background
	// refit failure: the daemon keeps serving correct verdicts on the
	// previous model generation, so it is reported without failing the
	// liveness probe.
	Draining    bool   `json:"draining"`
	Err         string `json:"err,omitempty"`
	DegradedErr string `json:"degraded_err,omitempty"`
}

// binAcc accumulates one open timebin: the three per-OD vectors the
// detector scores. The slices are handed to the detector at close (which
// retains them), so a bin is never reused after submission.
type binAcc struct {
	bytes, packets, flows []float64
	records               uint64
}

// Server is a running ingest daemon. Construct with New (trains the
// detector), call Start (binds sockets, spawns the reader), and stop with
// Drain, which flushes every in-flight bin through the detector before
// returning — no accepted record is ever dropped by a shutdown.
type Server struct {
	cfg Config
	run *netwide.Run
	det *netwide.StreamDetector
	top *topology.Topology
	res *routing.Resolver

	conn    *net.UDPConn
	httpLn  net.Listener
	httpSrv *http.Server

	readerDone chan struct{} // closed when the UDP read loop exits
	consumerWG sync.WaitGroup

	// recs is the reusable per-packet record buffer; the read loop is the
	// only goroutine that touches it.
	recs []netflow.Record
	// seq tracks the per-engine v5 flow sequence cursor (engine IDs are 8
	// bits, so a flat array beats a map on the per-packet path).
	seq [256]engineSeq

	// mu guards everything below. It is never held across a detector
	// Submit: backpressure from the pipeline must not deadlock against the
	// verdict consumer (which takes mu to append anomalies) or block the
	// HTTP handlers.
	mu    sync.Mutex
	bins  map[int]*binAcc
	stats Stats
	anoms []netwide.Anomaly
	// behindStreak counts consecutive routable packets landing more than
	// MaxAhead bins below the watermark — the stranded-watermark signal.
	behindStreak int
	started      bool
	draining     bool
	firstError   error
}

// New trains one detector lane per traffic measure on the run (see
// netwide.StreamConfig — the paper-parity setup trains on the run's full
// matrices) and assembles the daemon around it. The run doubles as the
// daemon's network model: its topology resolves engine IDs and destination
// prefixes, its seasonal baselines classify the anomalies the detector
// finds. No sockets are bound until Start.
func New(run *netwide.Run, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	det, err := run.NewStreamDetector(cfg.Detect, cfg.Stream)
	if err != nil {
		return nil, fmt.Errorf("server: train detector: %w", err)
	}
	ds := run.Dataset()
	// The daemon resolves what actually arrives: unlike the generator's
	// resolver it simulates no resolution failures of its own (fraction 0),
	// so a replayed record resolves exactly as it did at generation time.
	res, err := routing.BuildResolver(ds.Top, nil, 0)
	if err != nil {
		return nil, fmt.Errorf("server: build resolver: %w", err)
	}
	s := &Server{
		cfg:        cfg,
		run:        run,
		det:        det,
		top:        ds.Top,
		res:        res,
		bins:       map[int]*binAcc{},
		readerDone: make(chan struct{}),
	}
	s.stats.LastClosed = -1
	s.stats.Watermark = -1
	s.consumerWG.Add(1)
	go s.consumeVerdicts()
	return s, nil
}

// consumeVerdicts drains the detector's verdict stream for the daemon's
// lifetime, folding characterized anomalies and alarm counts into the
// served state. It exits when the stream closes (after Drain).
func (s *Server) consumeVerdicts() {
	defer s.consumerWG.Done()
	for v := range s.det.Verdicts() {
		s.mu.Lock()
		if v.Alarm() {
			s.stats.AlarmBins++
		}
		s.stats.Generations = v.Generations
		s.anoms = append(s.anoms, v.Anomalies...)
		s.stats.Anomalies = len(s.anoms)
		s.mu.Unlock()
	}
	tail := s.det.TailAnomalies()
	s.mu.Lock()
	s.anoms = append(s.anoms, tail...)
	s.stats.Anomalies = len(s.anoms)
	s.mu.Unlock()
}

// Start binds the UDP and HTTP sockets and launches the read loop.
func (s *Server) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return errors.New("server: already started")
	}
	addr, err := net.ResolveUDPAddr("udp", s.cfg.UDPAddr)
	if err != nil {
		return fmt.Errorf("server: udp addr: %w", err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return fmt.Errorf("server: listen udp: %w", err)
	}
	// Best effort: the kernel may clamp to rmem_max, which still beats the
	// default. A too-small buffer shows up as LostRecords, not silence.
	_ = conn.SetReadBuffer(s.cfg.ReadBuffer)
	s.conn = conn
	if s.cfg.HTTPAddr != "" {
		ln, err := net.Listen("tcp", s.cfg.HTTPAddr)
		if err != nil {
			conn.Close()
			s.conn = nil
			return fmt.Errorf("server: listen http: %w", err)
		}
		s.httpLn = ln
		mux := http.NewServeMux()
		mux.HandleFunc("/healthz", s.handleHealthz)
		mux.HandleFunc("/stats", s.handleStats)
		mux.HandleFunc("/anomalies", s.handleAnomalies)
		s.httpSrv = &http.Server{Handler: mux}
		go s.httpSrv.Serve(ln)
	}
	s.started = true
	go s.readLoop(conn)
	return nil
}

// UDPAddr returns the bound NetFlow listen address (nil before Start).
func (s *Server) UDPAddr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.conn == nil {
		return nil
	}
	return s.conn.LocalAddr()
}

// HTTPAddr returns the bound status endpoint address (nil before Start or
// when HTTP is disabled).
func (s *Server) HTTPAddr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.httpLn == nil {
		return nil
	}
	return s.httpLn.Addr()
}

// readLoop receives datagrams until the socket is closed by Drain. A v5
// packet is at most 1464 bytes; the buffer leaves headroom so an overlong
// datagram arrives intact and is rejected by the decoder instead of being
// silently truncated into a "valid" prefix.
func (s *Server) readLoop(conn *net.UDPConn) {
	defer close(s.readerDone)
	buf := make([]byte, 4096)
	for {
		n, _, err := conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed (Drain) or fatally broken
		}
		s.IngestPacket(buf[:n])
	}
}

// IngestPacket runs the full per-datagram ingest path — decode, sequence
// dedupe, OD resolution, bin accumulation, bin close — synchronously on
// the caller's goroutine. The read loop is its only caller in production;
// tests and benchmarks call it directly to drive the daemon without a
// socket. Not safe for concurrent callers.
func (s *Server) IngestPacket(pkt []byte) {
	h, recs, err := netflow.DecodePacketAppend(s.recs[:0], pkt)
	s.recs = recs
	s.mu.Lock()
	s.stats.Packets++
	if err != nil {
		s.stats.BadPackets++
		s.mu.Unlock()
		return
	}
	if !s.sequenceCheck(h) {
		s.stats.Duplicates++
		s.mu.Unlock()
		return
	}
	if int64(h.UnixSecs) < int64(s.cfg.Epoch) {
		// Before bin 0 — and integer division would truncate it INTO bin 0.
		s.stats.LateRecords += uint64(len(recs))
		s.mu.Unlock()
		return
	}
	bin := int(int64(h.UnixSecs)-int64(s.cfg.Epoch)) / traffic.BinSeconds
	if bin <= s.stats.LastClosed {
		s.stats.LateRecords += uint64(len(recs))
		s.mu.Unlock()
		return
	}
	if s.stats.Watermark >= 0 && bin > s.stats.Watermark+s.cfg.MaxAhead {
		// The bin timestamp is untrusted input and it drives every bin
		// close: refusing wild jumps keeps one spoofed datagram from
		// force-closing partial bins and parking the watermark out of
		// legitimate traffic's reach.
		s.stats.WildRecords += uint64(len(recs))
		s.mu.Unlock()
		return
	}
	accepted := s.accumulate(bin, h, recs)
	var closed []submittedBin
	switch {
	case accepted == 0:
		// Only routable traffic moves the watermark: a datagram that
		// contributed nothing to any bin gets no say in when bins close.
	case bin > s.stats.Watermark:
		s.stats.Watermark = bin
		s.behindStreak = 0
		closed = s.detachThrough(bin - s.cfg.Grace)
	case s.stats.Watermark-bin > s.cfg.MaxAhead:
		// Routable traffic consistently far below the watermark means the
		// watermark is stranded — a far-future first packet or an exporter
		// clock jump (MaxAhead can't bound the first packet: there is
		// nothing to bound it against). In normal operation this branch is
		// unreachable: bins more than MaxAhead behind the watermark are
		// already behind LastClosed and were dropped as late above. A
		// quorum of consecutive packets re-anchors the watermark at the
		// stream that is actually flowing, unwedging bin close.
		s.behindStreak++
		if s.behindStreak >= watermarkQuorum {
			s.resetWatermark(bin)
		}
	default:
		s.behindStreak = 0
	}
	s.mu.Unlock()
	// Submit outside the lock: pipeline backpressure must not wedge the
	// HTTP handlers or deadlock the verdict consumer.
	s.submit(closed)
}

const (
	// dedupeWindow is how many recent packet sequence numbers each engine
	// remembers for exact duplicate detection. A replayed packet older
	// than the window slips through — the window trades a little replay
	// protection for not discarding merely-reordered traffic.
	dedupeWindow = 64
	// reorderTolerance is how far (in records) behind the cursor a packet
	// may fall and still be network reordering; anything further back is
	// an exporter restart and resets the cursor, so a spoofed wild
	// sequence number can never permanently wedge an engine's stream.
	reorderTolerance = 1 << 20
)

// sequenceCheck updates per-engine v5 sequence state and reports whether
// the packet should be ingested. In-order packets advance the cursor; a
// gap ahead of the cursor estimates records lost in transit (v5's only
// loss signal). A packet behind the cursor is, in order of precedence: a
// replayed duplicate if its sequence number was recently seen (dropped —
// counting it twice would corrupt the bin); plain network reordering if
// it is within reorderTolerance (accepted, and the loss the earlier gap
// charged for it is refunded); otherwise an exporter restart, which
// resets the cursor. Callers hold mu.
func (s *Server) sequenceCheck(h netflow.Header) bool {
	e := &s.seq[h.EngineID]
	if !e.started {
		e.started = true
		e.next = h.FlowSequence + uint32(h.Count)
		e.remember(h.FlowSequence)
		return true
	}
	delta := int32(h.FlowSequence - e.next) // uint32 arithmetic handles wraparound
	switch {
	case delta >= 0:
		if delta > reorderTolerance {
			// A forward jump too wild to be transit loss is the same event
			// as the backward one: an exporter restart (or a spoofed
			// sequence) — resynchronize rather than charging a phantom
			// multi-billion-record gap to the loss counter.
			e.clear()
		} else {
			s.stats.LostRecords += uint64(delta)
		}
		e.next = h.FlowSequence + uint32(h.Count)
	case e.seen(h.FlowSequence):
		return false
	case delta >= -reorderTolerance:
		// Reordered delivery: the gap this packet left was already counted
		// lost when its successor arrived first, so refund it. The cursor
		// stays where the stream's front is.
		refund := uint64(h.Count)
		if refund > s.stats.LostRecords {
			refund = s.stats.LostRecords
		}
		s.stats.LostRecords -= refund
	default:
		// Exporter restart (or a spoofed wild sequence): resynchronize.
		e.next = h.FlowSequence + uint32(h.Count)
		e.clear()
	}
	e.remember(h.FlowSequence)
	return true
}

// accumulate folds one packet's records into its bin's vectors, resolving
// each record to an OD pair: origin from the engine ID, egress by
// longest-prefix match on the anonymized destination — the same procedure,
// and therefore the same (OD, bin) cell, as the offline generator. It
// returns how many records were actually folded in; a packet that
// contributes nothing must not advance the watermark. Callers hold mu.
func (s *Server) accumulate(bin int, h netflow.Header, recs []netflow.Record) (accepted int) {
	origin := topology.PoP(h.EngineID)
	originOK := s.top.ContainsPoP(origin)
	acc := s.bins[bin]
	for _, rec := range recs {
		if !originOK {
			s.stats.Unroutable++
			continue
		}
		egress, ok := s.res.ResolveDst(rec.Key.Dst)
		if !ok {
			s.stats.Unroutable++
			continue
		}
		if acc == nil {
			// Open the bin lazily, on the first routable record, and under
			// a cap: unroutable or wild garbage must not grow the open set.
			if len(s.bins) >= s.cfg.MaxOpenBins {
				s.stats.WildRecords++
				continue
			}
			p := s.top.NumODPairs()
			acc = &binAcc{
				bytes:   make([]float64, p),
				packets: make([]float64, p),
				flows:   make([]float64, p),
			}
			s.bins[bin] = acc
			s.stats.BinsOpen = len(s.bins)
		}
		col := s.top.Index(topology.ODPair{Origin: origin, Dest: egress})
		acc.bytes[col] += float64(rec.Bytes)
		acc.packets[col] += float64(rec.Packets)
		acc.flows[col]++
		acc.records++
		s.stats.Records++
		accepted++
	}
	return accepted
}

// watermarkQuorum is how many consecutive routable packets must land more
// than MaxAhead bins below the watermark before the daemon concludes the
// watermark is stranded and re-anchors it.
const watermarkQuorum = 8

// resetWatermark re-anchors a stranded watermark at the bin the live
// stream actually flows in, discarding open bins stranded in the far
// future (their contents were the lie that moved the watermark there).
// Callers hold mu.
func (s *Server) resetWatermark(bin int) {
	for b, acc := range s.bins {
		if b > bin+s.cfg.MaxAhead {
			s.stats.WildRecords += acc.records
			delete(s.bins, b)
		}
	}
	s.stats.BinsOpen = len(s.bins)
	s.stats.Watermark = bin
	s.stats.WatermarkResets++
	s.behindStreak = 0
}

// engineSeq is one engine's v5 sequence cursor plus a small ring of
// recently seen packet sequence numbers for duplicate detection.
type engineSeq struct {
	next    uint32
	started bool
	recent  [dedupeWindow]uint32
	fill    int // entries of recent in use
	pos     int // next ring slot to overwrite
}

func (e *engineSeq) remember(seq uint32) {
	e.recent[e.pos] = seq
	e.pos = (e.pos + 1) % dedupeWindow
	if e.fill < dedupeWindow {
		e.fill++
	}
}

func (e *engineSeq) seen(seq uint32) bool {
	for i := 0; i < e.fill; i++ {
		if e.recent[i] == seq {
			return true
		}
	}
	return false
}

func (e *engineSeq) clear() { e.fill, e.pos = 0, 0 }

// submittedBin pairs a detached accumulator with its bin index.
type submittedBin struct {
	bin int
	acc *binAcc
}

// detachThrough removes every open bin <= limit from the open set, in
// ascending bin order, updating the close counters. Callers hold mu; the
// actual detector submission happens outside the lock via submit.
func (s *Server) detachThrough(limit int) []submittedBin {
	var out []submittedBin
	for bin, acc := range s.bins {
		if bin <= limit {
			out = append(out, submittedBin{bin, acc})
		}
	}
	if len(out) == 0 {
		return nil
	}
	sort.Slice(out, func(i, j int) bool { return out[i].bin < out[j].bin })
	for _, sb := range out {
		delete(s.bins, sb.bin)
		if sb.bin > s.stats.LastClosed {
			s.stats.LastClosed = sb.bin
		}
	}
	s.stats.BinsClosed += len(out)
	s.stats.BinsOpen = len(s.bins)
	return out
}

// submit feeds detached bins to the detector in ascending order, recording
// the first failure. Bins are only ever detached in ascending order across
// calls, so the detector's non-decreasing contract holds.
func (s *Server) submit(closed []submittedBin) {
	for _, sb := range closed {
		if err := s.det.Submit(sb.bin, sb.acc.bytes, sb.acc.packets, sb.acc.flows); err != nil {
			s.fail(fmt.Errorf("server: submit bin %d: %w", sb.bin, err))
			return
		}
	}
}

// fail records the first ingest-side error.
func (s *Server) fail(err error) {
	s.mu.Lock()
	if s.firstError == nil {
		s.firstError = err
	}
	s.mu.Unlock()
}

// Err returns the first error the daemon has seen: an ingest-side submit
// failure or a background detector failure.
func (s *Server) Err() error {
	s.mu.Lock()
	err := s.firstError
	s.mu.Unlock()
	if err != nil {
		return err
	}
	return s.det.Err()
}

// Stats returns a snapshot of the ingest counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	st := s.stats
	st.Draining = s.draining
	st.BinsOpen = len(s.bins)
	if s.firstError != nil {
		st.Err = s.firstError.Error()
	}
	s.mu.Unlock()
	if st.Err == "" {
		if err := s.det.Err(); err != nil {
			st.Err = err.Error()
		}
	}
	if err := s.det.RefitErr(); err != nil {
		st.DegradedErr = err.Error()
	}
	return st
}

// Anomalies returns the characterized anomalies collected so far, oldest
// first.
func (s *Server) Anomalies() []netwide.Anomaly {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]netwide.Anomaly, len(s.anoms))
	copy(out, s.anoms)
	return out
}

// Drain performs the graceful shutdown: stop accepting datagrams, flush
// every in-flight bin through the detector (nothing accepted is dropped),
// wait for the verdict stream to complete — folding still-open events into
// the anomaly log — and finally stop the HTTP endpoint. The context bounds
// only the HTTP shutdown; the detector drain always runs to completion.
// Drain returns the first error the daemon saw, if any, and is idempotent.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.consumerWG.Wait()
		return s.Err()
	}
	s.draining = true
	conn := s.conn
	s.mu.Unlock()

	if conn != nil {
		conn.Close() // unblocks the read loop
		<-s.readerDone
	}

	// The read loop has exited: no new bins can appear. Flush the tail.
	s.mu.Lock()
	closed := s.detachThrough(s.stats.Watermark)
	s.mu.Unlock()
	s.submit(closed)

	s.det.Close()
	s.consumerWG.Wait() // verdict stream fully drained, tail folded in
	s.det.Wait()        // settle background refits before reading errors
	if err := s.det.Err(); err != nil {
		// Fatal only: a refit failure means the daemon ran degraded, not
		// that the drain failed — it stays on Stats.DegradedErr.
		s.fail(fmt.Errorf("server: detector: %w", err))
	}

	s.mu.Lock()
	srv, ln := s.httpSrv, s.httpLn
	s.httpSrv, s.httpLn = nil, nil
	s.mu.Unlock()
	if srv != nil {
		if err := srv.Shutdown(ctx); err != nil {
			srv.Close()
		}
	} else if ln != nil {
		ln.Close()
	}
	return s.Err()
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if err := s.Err(); err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Stats())
}

func (s *Server) handleAnomalies(w http.ResponseWriter, r *http.Request) {
	anoms := s.Anomalies()
	if anoms == nil {
		anoms = []netwide.Anomaly{} // render [] rather than null
	}
	writeJSON(w, anoms)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
