//go:build linux

package server

// soReusePort is SO_REUSEPORT on Linux (kernel 3.9+). The frozen syscall
// package predates the option on this platform, so the value is spelled
// out; it is part of the stable kernel ABI.
const soReusePort = 0xf
