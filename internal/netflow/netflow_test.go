package netflow

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"netwide/internal/flow"
	"netwide/internal/ipaddr"
)

func mkRecord(i int) Record {
	return Record{
		Key: flow.Key{
			Src:     ipaddr.FromOctets(10, byte(i), 0, 1),
			Dst:     ipaddr.FromOctets(10, 16, byte(i), 2),
			SrcPort: uint16(1024 + i),
			DstPort: flow.PortHTTP,
			Proto:   flow.ProtoTCP,
		},
		Packets:  uint64(i + 1),
		Bytes:    uint64((i + 1) * 600),
		First:    100,
		Last:     160,
		TCPFlags: 0x18,
		SrcAS:    11537,
		DstAS:    11537,
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	h := Header{SysUptime: 42, UnixSecs: 1050000000, FlowSequence: 7, EngineID: 3, SamplingInterval: 100}
	recs := []Record{mkRecord(0), mkRecord(1), mkRecord(2)}
	pkt, err := EncodePacket(h, recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkt) != HeaderLen+3*RecordLen {
		t.Fatalf("packet length %d", len(pkt))
	}
	h2, recs2, err := DecodePacket(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Count != 3 || h2.FlowSequence != 7 || h2.EngineID != 3 || h2.SamplingInterval != 100 || h2.UnixSecs != h.UnixSecs {
		t.Fatalf("header mismatch: %+v", h2)
	}
	for i := range recs {
		if recs2[i] != recs[i] {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, recs2[i], recs[i])
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	pkt, _ := EncodePacket(Header{}, []Record{mkRecord(0)})

	if _, _, err := DecodePacket(pkt[:10]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short header: %v", err)
	}
	if _, _, err := DecodePacket(pkt[:len(pkt)-1]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated record: %v", err)
	}
	long := append(append([]byte{}, pkt...), 0)
	if _, _, err := DecodePacket(long); !errors.Is(err, ErrBadCount) {
		t.Fatalf("overlong packet: %v", err)
	}
	bad := append([]byte{}, pkt...)
	bad[0], bad[1] = 0, 9
	if _, _, err := DecodePacket(bad); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("bad version: %v", err)
	}
}

func TestEncodeLimits(t *testing.T) {
	recs := make([]Record, MaxRecordsPerPacket+1)
	if _, err := EncodePacket(Header{}, recs); err == nil {
		t.Fatal("oversized batch accepted")
	}
	big := mkRecord(0)
	big.Bytes = 1 << 33
	if _, err := EncodePacket(Header{}, []Record{big}); err == nil {
		t.Fatal("counter overflow accepted")
	}
}

func TestExporterBatching(t *testing.T) {
	e := NewExporter(1, 100, nil)
	for i := 0; i < 65; i++ {
		if err := e.Add(mkRecord(i % 10)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	pkts := e.Drain()
	// 65 records = 2 full packets of 30 + 1 packet of 5.
	if len(pkts) != 3 {
		t.Fatalf("packets=%d, want 3", len(pkts))
	}
	h0, r0, _ := DecodePacket(pkts[0])
	h2, r2, _ := DecodePacket(pkts[2])
	if len(r0) != 30 || len(r2) != 5 {
		t.Fatalf("batch sizes %d/%d", len(r0), len(r2))
	}
	if h0.FlowSequence != 0 || h2.FlowSequence != 60 {
		t.Fatalf("sequences %d/%d", h0.FlowSequence, h2.FlowSequence)
	}
	// Drain clears.
	if len(e.Drain()) != 0 {
		t.Fatal("drain did not clear")
	}
	// Flush with nothing pending is a no-op.
	if err := e.Flush(); err != nil || len(e.Drain()) != 0 {
		t.Fatal("empty flush emitted a packet")
	}
}

func TestExporterResetReuse(t *testing.T) {
	e := NewExporter(1, 100, nil)
	c := NewCollector()
	// Two back-to-back uses of the same exporter/collector pair, as the
	// per-cell measurement loop does: results must match fresh instances,
	// and sequence state must not leak across Reset (no phantom loss).
	for round := 0; round < 2; round++ {
		e.Reset(uint8(round+1), 64)
		c.Reset()
		for i := 0; i < 35; i++ {
			if err := e.Add(mkRecord(i % 7)); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
		var visited int
		if err := e.ForEachPacket(func(pkt []byte) error {
			visited++
			return c.Ingest(pkt)
		}); err != nil {
			t.Fatal(err)
		}
		if visited != 2 {
			t.Fatalf("round %d: visited %d packets, want 2", round, visited)
		}
		if c.Lost != 0 {
			t.Fatalf("round %d: lost=%d after reset, want 0", round, c.Lost)
		}
		if len(c.Records) != 35 {
			t.Fatalf("round %d: records=%d, want 35", round, len(c.Records))
		}
		for i, rec := range c.Records {
			if rec != mkRecord(i%7) {
				t.Fatalf("round %d: record %d corrupted by buffer reuse", round, i)
			}
		}
	}
	// ForEachPacket does not clear: a second pass sees the same packets.
	var again int
	if err := e.ForEachPacket(func([]byte) error { again++; return nil }); err != nil {
		t.Fatal(err)
	}
	if again != 2 {
		t.Fatalf("second visit saw %d packets, want 2", again)
	}
}

func TestDrainSurvivesReset(t *testing.T) {
	e := NewExporter(3, 100, nil)
	want := mkRecord(4)
	_ = e.Add(want)
	_ = e.Flush()
	pkts := e.Drain()
	if len(pkts) != 1 {
		t.Fatalf("packets=%d", len(pkts))
	}
	// Reset and refill with different records; the drained packet owns its
	// bytes and must be unaffected.
	e.Reset(3, 100)
	for i := 0; i < 30; i++ {
		_ = e.Add(mkRecord(9))
	}
	_ = e.Flush()
	_, recs, err := DecodePacket(pkts[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0] != want {
		t.Fatalf("drained packet corrupted after reset: %+v", recs)
	}
}

func TestAppendPacketSharesArena(t *testing.T) {
	h := Header{EngineID: 2, SamplingInterval: 100}
	arena, err := AppendPacket(nil, h, []Record{mkRecord(0), mkRecord(1)})
	if err != nil {
		t.Fatal(err)
	}
	first := len(arena)
	h.FlowSequence = 2
	arena, err = AppendPacket(arena, h, []Record{mkRecord(2)})
	if err != nil {
		t.Fatal(err)
	}
	if len(arena) != first+HeaderLen+RecordLen {
		t.Fatalf("arena length %d", len(arena))
	}
	// Both packets decode independently and identically to EncodePacket.
	if _, recs, err := DecodePacket(arena[:first]); err != nil || len(recs) != 2 || recs[1] != mkRecord(1) {
		t.Fatalf("first packet: %v %+v", err, recs)
	}
	h.FlowSequence = 2
	single, _ := EncodePacket(h, []Record{mkRecord(2)})
	if !bytes.Equal(arena[first:], single) {
		t.Fatal("appended packet differs from standalone encoding")
	}
	// An encode error leaves the arena exactly as it was.
	bad := mkRecord(0)
	bad.Bytes = 1 << 33
	out, err := AppendPacket(arena, h, []Record{bad})
	if err == nil {
		t.Fatal("counter overflow accepted")
	}
	if len(out) != len(arena) {
		t.Fatalf("failed append left %d bytes, want %d", len(out), len(arena))
	}
}

func TestCollectorCountsLoss(t *testing.T) {
	e := NewExporter(7, 100, nil)
	for i := 0; i < 90; i++ {
		_ = e.Add(mkRecord(i % 5))
	}
	_ = e.Flush()
	pkts := e.Drain()
	if len(pkts) != 3 {
		t.Fatalf("packets=%d", len(pkts))
	}
	c := NewCollector()
	// Drop the middle packet (30 records).
	if err := c.Ingest(pkts[0]); err != nil {
		t.Fatal(err)
	}
	if err := c.Ingest(pkts[2]); err != nil {
		t.Fatal(err)
	}
	if c.Lost != 30 {
		t.Fatalf("lost=%d, want 30", c.Lost)
	}
	if len(c.Records) != 60 {
		t.Fatalf("records=%d, want 60", len(c.Records))
	}
}

func TestCollectorPerEngineSequences(t *testing.T) {
	e1 := NewExporter(1, 100, nil)
	e2 := NewExporter(2, 100, nil)
	for i := 0; i < 30; i++ {
		_ = e1.Add(mkRecord(i % 3))
	}
	for i := 0; i < 30; i++ {
		_ = e2.Add(mkRecord(i % 3))
	}
	c := NewCollector()
	// Interleaving engines must not look like loss.
	for _, p := range append(e1.Drain(), e2.Drain()...) {
		if err := c.Ingest(p); err != nil {
			t.Fatal(err)
		}
	}
	if c.Lost != 0 {
		t.Fatalf("lost=%d across engines, want 0", c.Lost)
	}
}

func TestClockInHeaders(t *testing.T) {
	e := NewExporter(1, 100, func() (uint32, uint32) { return 777, 1071000000 })
	_ = e.Add(mkRecord(0))
	_ = e.Flush()
	h, _, err := DecodePacket(e.Drain()[0])
	if err != nil {
		t.Fatal(err)
	}
	if h.SysUptime != 777 || h.UnixSecs != 1071000000 {
		t.Fatalf("header clock %d/%d", h.SysUptime, h.UnixSecs)
	}
}

// Property: encode->decode is the identity for arbitrary valid records.
func TestPropRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed^0xdead))
		n := rng.IntN(MaxRecordsPerPacket + 1)
		recs := make([]Record, n)
		for i := range recs {
			recs[i] = Record{
				Key: flow.Key{
					Src:     ipaddr.Addr(rng.Uint32()),
					Dst:     ipaddr.Addr(rng.Uint32()),
					SrcPort: uint16(rng.UintN(65536)),
					DstPort: uint16(rng.UintN(65536)),
					Proto:   flow.Proto(rng.UintN(256)),
				},
				Packets:    uint64(rng.Uint32()),
				Bytes:      uint64(rng.Uint32()),
				First:      rng.Uint32(),
				Last:       rng.Uint32(),
				TCPFlags:   uint8(rng.UintN(256)),
				InputSNMP:  uint16(rng.UintN(65536)),
				OutputSNMP: uint16(rng.UintN(65536)),
				SrcAS:      uint16(rng.UintN(65536)),
				DstAS:      uint16(rng.UintN(65536)),
			}
		}
		h := Header{SysUptime: rng.Uint32(), UnixSecs: rng.Uint32(), FlowSequence: rng.Uint32(), EngineID: uint8(rng.UintN(256)), SamplingInterval: uint16(rng.UintN(1 << 14))}
		pkt, err := EncodePacket(h, recs)
		if err != nil {
			return false
		}
		h2, recs2, err := DecodePacket(pkt)
		if err != nil {
			return false
		}
		if h2.FlowSequence != h.FlowSequence || int(h2.Count) != n {
			return false
		}
		for i := range recs {
			if recs[i] != recs2[i] {
				return false
			}
		}
		// Re-encoding must be byte-identical (lossless).
		pkt2, err := EncodePacket(h2, recs2)
		return err == nil && bytes.Equal(pkt, pkt2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: DecodePacket never panics and never fabricates records on
// arbitrary input bytes — it either errors or returns exactly Count
// records.
func TestPropDecodeRobust(t *testing.T) {
	f := func(seed uint64, size uint16) bool {
		rng := rand.New(rand.NewPCG(seed, 0xF00D))
		buf := make([]byte, int(size)%2048)
		for i := range buf {
			buf[i] = byte(rng.UintN(256))
		}
		h, recs, err := DecodePacket(buf)
		if err != nil {
			return recs == nil
		}
		return len(recs) == int(h.Count) && len(buf) == HeaderLen+int(h.Count)*RecordLen
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: flipping the version field always yields ErrBadVersion, never
// a successful parse.
func TestPropDecodeVersionStrict(t *testing.T) {
	f := func(v uint16, seed uint64) bool {
		if v == Version {
			return true
		}
		pkt, err := EncodePacket(Header{FlowSequence: uint32(seed % 1000)}, []Record{mkRecord(int(seed % 7))})
		if err != nil {
			return false
		}
		pkt[0] = byte(v >> 8)
		pkt[1] = byte(v)
		_, _, err = DecodePacket(pkt)
		return errors.Is(err, ErrBadVersion)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeHostileCount pins the untrusted-ingest guard: a header claiming
// more records than a v5 packet can carry is rejected before any record
// allocation, even when the buffer length is padded to match the claim.
func TestDecodeHostileCount(t *testing.T) {
	pkt, _ := EncodePacket(Header{}, []Record{mkRecord(0)})
	hostile := make([]byte, HeaderLen+(MaxRecordsPerPacket+1)*RecordLen)
	copy(hostile, pkt[:HeaderLen])
	binary.BigEndian.PutUint16(hostile[2:], MaxRecordsPerPacket+1)
	if _, _, err := DecodePacket(hostile); !errors.Is(err, ErrBadCount) {
		t.Fatalf("hostile count accepted: %v", err)
	}
	// The absurd case: a 64KB-record claim in a minimal datagram must fail on
	// the count limit (not attempt a 3MB allocation and fail on length).
	tiny := make([]byte, HeaderLen)
	copy(tiny, pkt[:HeaderLen])
	binary.BigEndian.PutUint16(tiny[2:], 0xFFFF)
	if _, _, err := DecodePacket(tiny); !errors.Is(err, ErrBadCount) {
		t.Fatalf("absurd count not rejected as bad count: %v", err)
	}
}

// TestDecodePacketAppendReuse checks the allocation-free collector path:
// decoding into a reused slice appends exactly the packet's records and
// leaves earlier contents intact.
func TestDecodePacketAppendReuse(t *testing.T) {
	pkt1, _ := EncodePacket(Header{FlowSequence: 0}, []Record{mkRecord(0), mkRecord(1)})
	pkt2, _ := EncodePacket(Header{FlowSequence: 2}, []Record{mkRecord(2)})
	var recs []Record
	_, recs, err := DecodePacketAppend(recs, pkt1)
	if err != nil {
		t.Fatal(err)
	}
	_, recs, err = DecodePacketAppend(recs, pkt2)
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{mkRecord(0), mkRecord(1), mkRecord(2)}
	if len(recs) != len(want) {
		t.Fatalf("appended %d records, want %d", len(recs), len(want))
	}
	for i := range want {
		if recs[i] != want[i] {
			t.Fatalf("record %d mismatch: %+v != %+v", i, recs[i], want[i])
		}
	}
	// Steady state: capacity suffices, so decoding must not allocate.
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, err := DecodePacketAppend(recs[:0], pkt1); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("DecodePacketAppend allocates %v per packet at steady state", allocs)
	}
}

// FuzzDecodePacket feeds arbitrary bytes to the packet decoder: it must
// never panic, never fabricate records, and every packet it does accept
// must re-encode to a packet that decodes to the identical header and
// records (the fields the codec models round-trip losslessly).
func FuzzDecodePacket(f *testing.F) {
	valid, _ := EncodePacket(Header{SysUptime: 1, UnixSecs: 2, FlowSequence: 3, EngineID: 4, SamplingInterval: 100},
		[]Record{mkRecord(0), mkRecord(1)})
	f.Add(valid)
	f.Add(valid[:HeaderLen])
	f.Add(valid[:len(valid)-1])
	f.Add(append(append([]byte{}, valid...), 0xFF))
	empty, _ := EncodePacket(Header{}, nil)
	f.Add(empty)
	hostile := append([]byte{}, valid[:HeaderLen]...)
	binary.BigEndian.PutUint16(hostile[2:], 0xFFFF)
	f.Add(hostile)
	f.Fuzz(func(t *testing.T, data []byte) {
		h, recs, err := DecodePacket(data)
		if err != nil {
			return
		}
		if len(recs) != int(h.Count) || h.Count > MaxRecordsPerPacket {
			t.Fatalf("accepted packet with %d records for count %d", len(recs), h.Count)
		}
		if len(data) != HeaderLen+int(h.Count)*RecordLen {
			t.Fatalf("accepted %d-byte packet for count %d", len(data), h.Count)
		}
		out, err := EncodePacket(h, recs)
		if err != nil {
			t.Fatalf("re-encode of accepted packet failed: %v", err)
		}
		h2, recs2, err := DecodePacket(out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if h2 != h {
			t.Fatalf("header did not round-trip: %+v != %+v", h2, h)
		}
		for i := range recs {
			if recs2[i] != recs[i] {
				t.Fatalf("record %d did not round-trip: %+v != %+v", i, recs2[i], recs[i])
			}
		}
	})
}
