// Package netflow implements the measurement-plane wire format of the
// simulator: a NetFlow v5 compatible binary codec plus an exporter/collector
// pair.
//
// The paper's data was collected with Juniper Traffic Sampling, which (like
// Cisco NetFlow, referenced in the paper's introduction) exports sampled
// flow records from every router. Reproducing the export/collect hop keeps
// the pipeline honest: the OD aggregation layer consumes exactly what a
// collector could have parsed off the wire, nothing more.
//
// Layout (all fields big-endian, as on the wire):
//
//	header (24 bytes): version, count, sysUptime, unixSecs, unixNsecs,
//	                   flowSequence, engineType, engineID, samplingInterval
//	record (48 bytes): srcAddr, dstAddr, nextHop, input, output, dPkts,
//	                   dOctets, first, last, srcPort, dstPort, pad, tcpFlags,
//	                   proto, tos, srcAS, dstAS, srcMask, dstMask, pad
package netflow

import (
	"encoding/binary"
	"errors"
	"fmt"
	"slices"

	"netwide/internal/flow"
	"netwide/internal/ipaddr"
)

// Version is the only export format version the codec speaks.
const Version = 5

// HeaderLen and RecordLen are the NetFlow v5 wire sizes.
const (
	HeaderLen = 24
	RecordLen = 48
	// MaxRecordsPerPacket is the v5 limit (a full packet stays under the
	// common 1500-byte MTU).
	MaxRecordsPerPacket = 30
)

// Errors returned by the decoder.
var (
	ErrTruncated  = errors.New("netflow: truncated packet")
	ErrBadVersion = errors.New("netflow: unsupported version")
	ErrBadCount   = errors.New("netflow: record count does not match packet length")
)

// Header is the decoded packet header.
type Header struct {
	Count            uint16
	SysUptime        uint32
	UnixSecs         uint32
	UnixNsecs        uint32
	FlowSequence     uint32
	EngineType       uint8
	EngineID         uint8
	SamplingInterval uint16 // low 14 bits: 1-in-N packet sampling
}

// Record is one decoded flow record. It carries the subset of v5 fields the
// pipeline uses plus the raw extras so that re-encoding is lossless.
type Record struct {
	Key          flow.Key
	Packets      uint64
	Bytes        uint64
	First, Last  uint32 // router uptime at first/last packet of the flow
	TCPFlags     uint8
	InputSNMP    uint16
	OutputSNMP   uint16
	SrcAS, DstAS uint16
}

// EncodePacket serializes a header and up to MaxRecordsPerPacket records.
func EncodePacket(h Header, recs []Record) ([]byte, error) {
	return AppendPacket(nil, h, recs)
}

// AppendPacket encodes the packet onto dst and returns the extended slice,
// reusing dst's capacity. It is the allocation-free form of EncodePacket for
// callers that batch many packets into one arena.
func AppendPacket(dst []byte, h Header, recs []Record) ([]byte, error) {
	if len(recs) > MaxRecordsPerPacket {
		return dst, fmt.Errorf("netflow: %d records exceeds packet limit %d", len(recs), MaxRecordsPerPacket)
	}
	h.Count = uint16(len(recs))
	base := len(dst)
	dst = slices.Grow(dst, HeaderLen+RecordLen*len(recs))
	dst = dst[:base+HeaderLen+RecordLen*len(recs)]
	buf := dst[base:]
	clear(buf) // unwritten fields (nextHop, padding) must be zero on the wire
	be := binary.BigEndian
	be.PutUint16(buf[0:], Version)
	be.PutUint16(buf[2:], h.Count)
	be.PutUint32(buf[4:], h.SysUptime)
	be.PutUint32(buf[8:], h.UnixSecs)
	be.PutUint32(buf[12:], h.UnixNsecs)
	be.PutUint32(buf[16:], h.FlowSequence)
	buf[20] = h.EngineType
	buf[21] = h.EngineID
	be.PutUint16(buf[22:], h.SamplingInterval)

	for i, r := range recs {
		off := HeaderLen + i*RecordLen
		if r.Packets > 0xFFFFFFFF || r.Bytes > 0xFFFFFFFF {
			return dst[:base], fmt.Errorf("netflow: record %d counters exceed 32 bits", i)
		}
		be.PutUint32(buf[off+0:], uint32(r.Key.Src))
		be.PutUint32(buf[off+4:], uint32(r.Key.Dst))
		// nextHop (off+8) left zero: the simulator does not model it.
		be.PutUint16(buf[off+12:], r.InputSNMP)
		be.PutUint16(buf[off+14:], r.OutputSNMP)
		be.PutUint32(buf[off+16:], uint32(r.Packets))
		be.PutUint32(buf[off+20:], uint32(r.Bytes))
		be.PutUint32(buf[off+24:], r.First)
		be.PutUint32(buf[off+28:], r.Last)
		be.PutUint16(buf[off+32:], r.Key.SrcPort)
		be.PutUint16(buf[off+34:], r.Key.DstPort)
		buf[off+37] = r.TCPFlags
		buf[off+38] = uint8(r.Key.Proto)
		be.PutUint16(buf[off+40:], r.SrcAS)
		be.PutUint16(buf[off+42:], r.DstAS)
	}
	return dst, nil
}

// decodeHeader parses and validates the header of one export packet. The
// validation order is deliberate for hostile input: fixed-size header first,
// then version, then the record count against the v5 packet limit, and only
// then the count-vs-length consistency check — so an attacker-controlled
// count can never drive an allocation or a read past the buffer.
func decodeHeader(buf []byte) (Header, error) {
	if len(buf) < HeaderLen {
		return Header{}, fmt.Errorf("%w: %d bytes, header needs %d", ErrTruncated, len(buf), HeaderLen)
	}
	be := binary.BigEndian
	if v := be.Uint16(buf[0:]); v != Version {
		return Header{}, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	h := Header{
		Count:            be.Uint16(buf[2:]),
		SysUptime:        be.Uint32(buf[4:]),
		UnixSecs:         be.Uint32(buf[8:]),
		UnixNsecs:        be.Uint32(buf[12:]),
		FlowSequence:     be.Uint32(buf[16:]),
		EngineType:       buf[20],
		EngineID:         buf[21],
		SamplingInterval: be.Uint16(buf[22:]),
	}
	if h.Count > MaxRecordsPerPacket {
		return Header{}, fmt.Errorf("%w: count %d exceeds v5 packet limit %d", ErrBadCount, h.Count, MaxRecordsPerPacket)
	}
	want := HeaderLen + int(h.Count)*RecordLen
	if len(buf) != want {
		if len(buf) < want {
			return Header{}, fmt.Errorf("%w: %d bytes, count %d needs %d", ErrTruncated, len(buf), h.Count, want)
		}
		return Header{}, fmt.Errorf("%w: %d trailing bytes after %d records", ErrBadCount, len(buf)-want, h.Count)
	}
	return h, nil
}

// decodeRecord parses the RecordLen bytes at buf into a Record.
func decodeRecord(buf []byte) Record {
	be := binary.BigEndian
	return Record{
		Key: flow.Key{
			Src:     ipaddr.Addr(be.Uint32(buf[0:])),
			Dst:     ipaddr.Addr(be.Uint32(buf[4:])),
			SrcPort: be.Uint16(buf[32:]),
			DstPort: be.Uint16(buf[34:]),
			Proto:   flow.Proto(buf[38]),
		},
		InputSNMP:  be.Uint16(buf[12:]),
		OutputSNMP: be.Uint16(buf[14:]),
		Packets:    uint64(be.Uint32(buf[16:])),
		Bytes:      uint64(be.Uint32(buf[20:])),
		First:      be.Uint32(buf[24:]),
		Last:       be.Uint32(buf[28:]),
		TCPFlags:   buf[37],
		SrcAS:      be.Uint16(buf[40:]),
		DstAS:      be.Uint16(buf[42:]),
	}
}

// DecodePacket parses one export packet. The packet is validated as a whole
// before any record is decoded: a truncated buffer, an unsupported version,
// a record count above the v5 packet limit, or a count inconsistent with the
// packet length all return an error without touching the record bytes, so
// hostile datagrams can neither over-allocate nor read out of bounds.
func DecodePacket(buf []byte) (Header, []Record, error) {
	return DecodePacketAppend(nil, buf)
}

// DecodePacketAppend is DecodePacket decoding into dst's spare capacity. It
// is the allocation-free form for long-running collectors: reuse one record
// slice across packets (truncate to [:0] between them) and the per-packet
// decode settles into zero allocations.
func DecodePacketAppend(dst []Record, buf []byte) (Header, []Record, error) {
	h, err := decodeHeader(buf)
	if err != nil {
		return Header{}, dst, err
	}
	dst = slices.Grow(dst, int(h.Count))
	for i := 0; i < int(h.Count); i++ {
		dst = append(dst, decodeRecord(buf[HeaderLen+i*RecordLen:]))
	}
	return h, dst, nil
}

// Exporter batches flow records into export packets, maintaining the v5
// flow sequence counter. One Exporter models one router's export engine.
//
// Encoded packets accumulate in a single contiguous arena whose capacity
// survives Reset, so a hot loop that exports millions of records through one
// Exporter settles into zero per-packet allocations.
type Exporter struct {
	EngineID         uint8
	SamplingInterval uint16
	seq              uint32
	pending          []Record
	// arena holds the encoded packets back to back; ends[i] is the offset
	// one past packet i, so packet i spans arena[ends[i-1]:ends[i]].
	arena []byte
	ends  []int
	now   func() (sysUptime, unixSecs uint32)
}

// NewExporter creates an exporter; clock supplies (sysUptime, unixSecs) for
// packet headers and may be nil for a fixed zero clock (useful in tests).
func NewExporter(engineID uint8, samplingInterval uint16, clock func() (uint32, uint32)) *Exporter {
	if clock == nil {
		clock = func() (uint32, uint32) { return 0, 0 }
	}
	return &Exporter{EngineID: engineID, SamplingInterval: samplingInterval, now: clock}
}

// Add queues a record, flushing a packet when the batch is full.
func (e *Exporter) Add(r Record) error {
	e.pending = append(e.pending, r)
	if len(e.pending) >= MaxRecordsPerPacket {
		return e.Flush()
	}
	return nil
}

// Flush emits any pending records as a packet.
func (e *Exporter) Flush() error {
	if len(e.pending) == 0 {
		return nil
	}
	up, secs := e.now()
	h := Header{
		SysUptime:        up,
		UnixSecs:         secs,
		FlowSequence:     e.seq,
		EngineID:         e.EngineID,
		SamplingInterval: e.SamplingInterval,
	}
	arena, err := AppendPacket(e.arena, h, e.pending)
	if err != nil {
		return err
	}
	e.arena = arena
	e.ends = append(e.ends, len(e.arena))
	e.seq += uint32(len(e.pending))
	e.pending = e.pending[:0]
	return nil
}

// ForEachPacket visits every accumulated packet without copying or clearing
// it. The slices alias the exporter's internal arena: they are valid until
// the next Reset and must not be retained past it. This is the zero-copy
// path a collector loop should prefer over Drain.
func (e *Exporter) ForEachPacket(fn func(pkt []byte) error) error {
	start := 0
	for _, end := range e.ends {
		if err := fn(e.arena[start:end:end]); err != nil {
			return err
		}
		start = end
	}
	return nil
}

// Drain returns and clears the accumulated packets. The returned slices own
// the arena they alias: the exporter detaches it and allocates fresh on the
// next Flush, so drained packets stay valid indefinitely.
func (e *Exporter) Drain() [][]byte {
	if len(e.ends) == 0 {
		return nil
	}
	out := make([][]byte, len(e.ends))
	start := 0
	for i, end := range e.ends {
		out[i] = e.arena[start:end:end]
		start = end
	}
	e.arena = nil
	e.ends = e.ends[:0]
	return out
}

// Reset reconfigures the exporter for a new engine and clears all batching
// state (sequence counter, pending records, accumulated packets) while
// keeping the allocated buffers for reuse. Packets previously obtained from
// ForEachPacket are invalidated; packets obtained from Drain are not.
func (e *Exporter) Reset(engineID uint8, samplingInterval uint16) {
	e.EngineID = engineID
	e.SamplingInterval = samplingInterval
	e.seq = 0
	e.pending = e.pending[:0]
	e.arena = e.arena[:0]
	e.ends = e.ends[:0]
}

// Collector parses export packets and tracks per-engine sequence numbers to
// count records lost in transit (v5's only loss signal).
type Collector struct {
	Records    []Record
	Lost       uint64
	nextSeq    map[uint8]uint32
	seqStarted map[uint8]bool
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{nextSeq: map[uint8]uint32{}, seqStarted: map[uint8]bool{}}
}

// Reset clears the collected records, loss counter and per-engine sequence
// state while keeping the allocated capacity, readying the collector for the
// next batch of packets.
func (c *Collector) Reset() {
	c.Records = c.Records[:0]
	c.Lost = 0
	clear(c.nextSeq)
	clear(c.seqStarted)
}

// Ingest parses one packet, appending its records. Records are decoded
// directly into the collector's Records slice, reusing its capacity.
func (c *Collector) Ingest(pkt []byte) error {
	h, err := decodeHeader(pkt)
	if err != nil {
		return err
	}
	n := int(h.Count)
	if c.seqStarted[h.EngineID] {
		if exp := c.nextSeq[h.EngineID]; h.FlowSequence != exp {
			// Sequence gap: records were dropped between collector and
			// exporter (uint32 arithmetic handles wraparound).
			c.Lost += uint64(h.FlowSequence - exp)
		}
	}
	c.seqStarted[h.EngineID] = true
	c.nextSeq[h.EngineID] = h.FlowSequence + uint32(n)
	c.Records = slices.Grow(c.Records, n)
	for i := 0; i < n; i++ {
		c.Records = append(c.Records, decodeRecord(pkt[HeaderLen+i*RecordLen:]))
	}
	return nil
}
