// Package netflow is the NetFlow v5 compatibility shim over the
// format-agnostic wire layer in netwide/internal/flowwire, which now owns
// the codec (byte-identical semantics) alongside NetFlow v9, IPFIX and
// sFlow decoders behind one Decoder API.
//
// Deprecated: new code should use netwide/internal/flowwire — the
// flowwire.Registry for decoding (any format, auto-detected) and
// flowwire.NewExporter for encoding. This package remains so existing
// callers, tests and benchmarks compile unchanged; every identifier is an
// alias for or a thin delegation to its flowwire counterpart, so values
// interoperate freely between the two packages.
package netflow

import "netwide/internal/flowwire"

// Version is the NetFlow version this codec speaks.
//
// Deprecated: use flowwire.V5Version.
const Version = flowwire.V5Version

// HeaderLen and RecordLen are the NetFlow v5 wire sizes.
//
// Deprecated: use flowwire.V5HeaderLen and flowwire.V5RecordLen.
const (
	HeaderLen = flowwire.V5HeaderLen
	RecordLen = flowwire.V5RecordLen
	// MaxRecordsPerPacket is the v5 limit (a full packet stays under the
	// common 1500-byte MTU).
	//
	// Deprecated: use flowwire.V5MaxRecordsPerPacket.
	MaxRecordsPerPacket = flowwire.V5MaxRecordsPerPacket
)

// Decode errors.
//
// Deprecated: use the flowwire errors, which these now alias; errors.Is
// matches across both names.
var (
	ErrTruncated  = flowwire.ErrTruncated
	ErrBadVersion = flowwire.ErrBadVersion
	ErrBadCount   = flowwire.ErrBadCount
)

// Header is the decoded v5 packet header.
//
// Deprecated: use flowwire.V5Header.
type Header = flowwire.V5Header

// Record is one full-fidelity flow record.
//
// Deprecated: use flowwire.Flow.
type Record = flowwire.Flow

// EncodePacket serializes a header and up to MaxRecordsPerPacket records.
//
// Deprecated: use flowwire.EncodeV5Packet.
func EncodePacket(h Header, recs []Record) ([]byte, error) {
	return flowwire.EncodeV5Packet(h, recs)
}

// AppendPacket encodes the packet onto dst and returns the extended slice,
// reusing dst's capacity.
//
// Deprecated: use flowwire.AppendV5Packet.
func AppendPacket(dst []byte, h Header, recs []Record) ([]byte, error) {
	return flowwire.AppendV5Packet(dst, h, recs)
}

// DecodePacket parses one export packet, validating it as a whole before
// any record is decoded.
//
// Deprecated: use flowwire.DecodeV5Packet, or a flowwire.Registry for
// format-agnostic decoding.
func DecodePacket(buf []byte) (Header, []Record, error) {
	return flowwire.DecodeV5Packet(buf)
}

// DecodePacketAppend is DecodePacket decoding into dst's spare capacity.
//
// Deprecated: use flowwire.DecodeV5PacketAppend.
func DecodePacketAppend(dst []Record, buf []byte) (Header, []Record, error) {
	return flowwire.DecodeV5PacketAppend(dst, buf)
}

// Exporter batches flow records into v5 export packets.
//
// Deprecated: use flowwire.V5Exporter, or flowwire.NewExporter to emit any
// supported format.
type Exporter = flowwire.V5Exporter

// NewExporter creates an exporter; clock supplies (sysUptime, unixSecs)
// for packet headers and may be nil for a fixed zero clock.
//
// Deprecated: use flowwire.NewV5Exporter.
func NewExporter(engineID uint8, samplingInterval uint16, clock func() (uint32, uint32)) *Exporter {
	return flowwire.NewV5Exporter(engineID, samplingInterval, clock)
}

// Collector parses v5 export packets and tracks per-engine sequence
// numbers to count records lost in transit.
//
// Deprecated: use flowwire.V5Collector, or a flowwire.Registry with
// per-protocol sequence accounting.
type Collector = flowwire.V5Collector

// NewCollector returns an empty collector.
//
// Deprecated: use flowwire.NewV5Collector.
func NewCollector() *Collector {
	return flowwire.NewV5Collector()
}
