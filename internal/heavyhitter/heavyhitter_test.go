package heavyhitter

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestExactBelowCapacity(t *testing.T) {
	s := New(8)
	s.Add(1, 10)
	s.Add(2, 5)
	s.Add(1, 10)
	if s.Total() != 25 {
		t.Fatalf("total=%v", s.Total())
	}
	top := s.Top(2)
	if len(top) != 2 || top[0].Key != 1 || top[0].Count != 20 || top[0].Err != 0 {
		t.Fatalf("top=%v", top)
	}
}

func TestZeroWeightIgnored(t *testing.T) {
	s := New(2)
	s.Add(1, 0)
	s.Add(1, -3)
	if s.Total() != 0 || s.Len() != 0 {
		t.Fatal("zero/negative weights were recorded")
	}
}

func TestEvictionKeepsHeavyKey(t *testing.T) {
	s := New(4)
	// One heavy key among many light ones.
	rng := rand.New(rand.NewPCG(1, 1))
	for i := 0; i < 5000; i++ {
		s.Add(42, 10)
		s.Add(uint64(100+rng.IntN(500)), 1)
	}
	top := s.Top(1)
	if top[0].Key != 42 {
		t.Fatalf("heavy key lost, top=%v", top)
	}
	// 42's true weight is 50000; its share must be detected as dominant.
	if _, dom := s.Dominant(0.2); !dom {
		t.Fatal("dominant key not detected")
	}
}

func TestDominantNegative(t *testing.T) {
	s := New(16)
	for k := uint64(0); k < 16; k++ {
		s.Add(k, 1)
	}
	if _, dom := s.Dominant(0.2); dom {
		t.Fatal("uniform stream reported a dominant key")
	}
	// Empty sketch.
	if _, dom := New(4).Dominant(0.2); dom {
		t.Fatal("empty sketch reported dominance")
	}
}

func TestTopOrderingDeterministic(t *testing.T) {
	s := New(8)
	s.Add(5, 3)
	s.Add(9, 3)
	s.Add(1, 3)
	top := s.Top(3)
	if top[0].Key != 1 || top[1].Key != 5 || top[2].Key != 9 {
		t.Fatalf("tie order not by key: %v", top)
	}
}

func TestMerge(t *testing.T) {
	a := New(8)
	b := New(8)
	a.Add(1, 10)
	a.Add(2, 4)
	b.Add(1, 7)
	b.Add(3, 2)
	a.Merge(b)
	if a.Total() != 23 {
		t.Fatalf("merged total %v", a.Total())
	}
	top := a.Top(1)
	if top[0].Key != 1 || top[0].Count != 17 {
		t.Fatalf("merged top %v", top)
	}
}

func TestMergeOverCapacity(t *testing.T) {
	a := New(2)
	b := New(2)
	a.Add(1, 100)
	a.Add(2, 50)
	b.Add(3, 200)
	b.Add(4, 1)
	a.Merge(b)
	if a.Len() > 2 {
		t.Fatalf("capacity exceeded: %d", a.Len())
	}
	if a.Total() != 351 {
		t.Fatalf("total %v", a.Total())
	}
	top := a.Top(2)
	if top[0].Key != 3 {
		t.Fatalf("heavy key lost in merge: %v", top)
	}
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity 0 accepted")
		}
	}()
	New(0)
}

// Property: Space-Saving error bound — for any stream, the estimate of any
// reported key overestimates its true count by at most Total/capacity.
func TestPropErrorBound(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed*7+3))
		cap := 4 + rng.IntN(12)
		s := New(cap)
		truth := map[uint64]float64{}
		n := 50 + rng.IntN(500)
		for i := 0; i < n; i++ {
			k := uint64(rng.IntN(50))
			w := float64(1 + rng.IntN(9))
			truth[k] += w
			s.Add(k, w)
		}
		bound := s.Total() / float64(cap)
		for _, it := range s.Top(cap) {
			if it.Count-truth[it.Key] > bound+1e-9 {
				return false
			}
			if it.Count < truth[it.Key]-1e-9 { // never underestimates
				return false
			}
			if it.Err > bound+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: any key with true share > total/capacity is present in the
// sketch (the Space-Saving guarantee that no heavy hitter is lost).
func TestPropHeavyHitterRetained(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed^0xbeef, seed))
		cap := 8
		s := New(cap)
		truth := map[uint64]float64{}
		for i := 0; i < 400; i++ {
			var k uint64
			if rng.Float64() < 0.4 {
				k = 7 // heavy key
			} else {
				k = uint64(10 + rng.IntN(200))
			}
			truth[k]++
			s.Add(k, 1)
		}
		threshold := s.Total() / float64(cap)
		reported := map[uint64]bool{}
		for _, it := range s.Top(cap) {
			reported[it.Key] = true
		}
		for k, c := range truth {
			if c > threshold && !reported[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
