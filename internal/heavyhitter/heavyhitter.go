// Package heavyhitter implements the Space-Saving algorithm (Metwally,
// Agrawal, El Abbadi 2005) for weighted top-k tracking over attribute
// streams.
//
// The anomaly classifier needs, for every (OD pair, timebin), the dominant
// source/destination addresses and ports by bytes, packets and flows. The
// full attribute distribution is far too large to retain, but dominance at
// threshold p = 0.2 (the paper's heuristic) only requires a sketch whose
// error is bounded well below p — Space-Saving with k counters guarantees
// per-item error at most total/k.
package heavyhitter

import (
	"fmt"
	"sort"
)

// Sketch tracks approximate weighted counts for the heaviest keys of a
// stream. The zero value is unusable; construct with New.
type Sketch struct {
	capacity int
	counts   map[uint64]*entry
	total    float64
}

type entry struct {
	key    uint64
	count  float64 // estimated weight (upper bound)
	errOff float64 // maximum overestimation
}

// New returns a sketch with the given counter capacity. A capacity of k
// bounds the estimation error by Total()/k, so testing dominance at
// threshold p is exact whenever k > 1/p with margin; the classifier uses
// p=0.2 and k=16 by default.
func New(capacity int) *Sketch {
	if capacity <= 0 {
		panic(fmt.Sprintf("heavyhitter: capacity %d must be positive", capacity))
	}
	return &Sketch{capacity: capacity, counts: make(map[uint64]*entry, capacity)}
}

// Add records weight w for key. Zero or negative weights are ignored.
func (s *Sketch) Add(key uint64, w float64) {
	if w <= 0 {
		return
	}
	s.total += w
	if e, ok := s.counts[key]; ok {
		e.count += w
		return
	}
	if len(s.counts) < s.capacity {
		s.counts[key] = &entry{key: key, count: w}
		return
	}
	// Evict the minimum-count entry, inheriting its count as error bound.
	min := s.minEntry()
	delete(s.counts, min.key)
	s.counts[key] = &entry{key: key, count: min.count + w, errOff: min.count}
}

// minEntry returns the minimum-count entry, ties broken by smallest key so
// eviction — and through it the sketch contents — is deterministic and
// independent of map iteration order. Two independent summarizations of
// the same stream (the batch and streaming characterization paths) must
// agree exactly.
func (s *Sketch) minEntry() *entry {
	var min *entry
	for _, e := range s.counts {
		if min == nil || e.count < min.count || (e.count == min.count && e.key < min.key) {
			min = e
		}
	}
	return min
}

// Total returns the total weight added.
func (s *Sketch) Total() float64 { return s.total }

// Item is a reported heavy hitter.
type Item struct {
	Key uint64
	// Count is the estimated weight (an upper bound on the true weight).
	Count float64
	// Err is the maximum amount by which Count overestimates.
	Err float64
}

// Fraction returns the estimated share of the total stream weight.
func (it Item) Fraction(total float64) float64 {
	if total <= 0 {
		return 0
	}
	return it.Count / total
}

// GuaranteedFraction returns a lower bound on the item's true share.
func (it Item) GuaranteedFraction(total float64) float64 {
	if total <= 0 {
		return 0
	}
	return (it.Count - it.Err) / total
}

// Top returns up to n items sorted by descending estimated count, ties
// broken by key for determinism.
func (s *Sketch) Top(n int) []Item {
	items := make([]Item, 0, len(s.counts))
	for _, e := range s.counts {
		items = append(items, Item{Key: e.key, Count: e.count, Err: e.errOff})
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].Count != items[j].Count {
			return items[i].Count > items[j].Count
		}
		return items[i].Key < items[j].Key
	})
	if n < len(items) {
		items = items[:n]
	}
	return items
}

// Dominant returns the key with the largest estimated count and whether its
// guaranteed share of the stream meets the threshold frac. This is the
// paper's dominance test ("an address range or port is dominant if it
// accounts for more than a fraction p of the total traffic in the
// timebin").
func (s *Sketch) Dominant(frac float64) (uint64, bool) {
	top := s.Top(1)
	if len(top) == 0 {
		return 0, false
	}
	return top[0].Key, top[0].GuaranteedFraction(s.total) >= frac
}

// Merge folds other into s (used when 1-minute sketches are combined into
// 5-minute bins). Merging keeps the error bounds conservative: counts and
// error offsets add.
func (s *Sketch) Merge(other *Sketch) {
	// Fold in ascending key order: with eviction deterministic (minEntry),
	// the merged sketch is a pure function of the two operands.
	keys := make([]uint64, 0, len(other.counts))
	for k := range other.counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		e := other.counts[k]
		if mine, ok := s.counts[e.key]; ok {
			mine.count += e.count
			mine.errOff += e.errOff
			continue
		}
		if len(s.counts) < s.capacity {
			s.counts[e.key] = &entry{key: e.key, count: e.count, errOff: e.errOff}
			continue
		}
		min := s.minEntry()
		if e.count <= min.count {
			// Dropped entry: its mass still counts toward the total, and
			// every surviving minimum absorbs the uncertainty.
			continue
		}
		delete(s.counts, min.key)
		s.counts[e.key] = &entry{key: e.key, count: min.count + e.count, errOff: min.count + e.errOff}
	}
	s.total += other.total
}

// Len returns the number of live counters.
func (s *Sketch) Len() int { return len(s.counts) }
