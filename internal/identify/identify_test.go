package identify

import (
	"math"
	"math/rand/v2"
	"testing"

	"netwide/internal/core"
	"netwide/internal/mat"
)

// buildSpiked returns an analysis of low-rank traffic with known spikes.
func buildSpiked(t *testing.T, spikes map[int][]int, mag float64) (*core.Result, *mat.Matrix) {
	t.Helper()
	rng := rand.New(rand.NewPCG(10, 20))
	n, p := 600, 10
	x := mat.New(n, p)
	for i := 0; i < n; i++ {
		base := 100 * (1 + 0.5*math.Sin(2*math.Pi*float64(i)/288))
		for j := 0; j < p; j++ {
			x.Set(i, j, base*float64(1+j%4)+rng.NormFloat64())
		}
	}
	for bin, ods := range spikes {
		for _, od := range ods {
			x.Set(bin, od, x.At(bin, od)+mag)
		}
	}
	r, err := core.Analyze(x, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return r, x
}

func TestAttributeSingleFlowSpike(t *testing.T) {
	r, _ := buildSpiked(t, map[int][]int{300: {4}}, 250)
	atts := Attribute(r)
	var found bool
	for _, a := range atts {
		if a.Alarm.Bin != 300 {
			continue
		}
		found = true
		if len(a.ODs) == 0 || a.ODs[0] != 4 {
			t.Fatalf("identified %v (stat %v), want flow 4 first", a.ODs, a.Alarm.Stat)
		}
		if a.Residuals[0] <= 0 {
			t.Fatalf("spike residual sign %v, want positive", a.Residuals[0])
		}
		if a.Alarm.Stat == core.StatSPE {
			// Removing the identified set must bring SPE under the limit.
			if got := Verify(r.Residual, 300, a.ODs); got > a.Alarm.Limit {
				t.Fatalf("verification failed: %v > %v", got, a.Alarm.Limit)
			}
		}
	}
	if !found {
		t.Fatal("spike at bin 300 not alarmed")
	}
}

func TestAttributeMultiFlowSpike(t *testing.T) {
	// A spike shared by 3 flows. Depending on how much of the anomaly
	// direction PCA absorbs, the alarm is raised by SPE or by T² — the
	// paper's point about needing both statistics. Either way, the
	// identified set must cover the injected flows.
	r, _ := buildSpiked(t, map[int][]int{200: {2, 5, 7}}, 180)
	atts := Attribute(r)
	for _, a := range atts {
		if a.Alarm.Bin != 200 {
			continue
		}
		// The smallest-set procedure may stop after fewer flows than were
		// injected (removing one can suffice); what it must not do is
		// start from an uninvolved flow.
		injected := map[int]bool{2: true, 5: true, 7: true}
		if len(a.ODs) == 0 || !injected[a.ODs[0]] {
			t.Fatalf("multi-flow anomaly (%v): identified %v, want first from {2,5,7}", a.Alarm.Stat, a.ODs)
		}
		if a.Alarm.Stat == core.StatSPE {
			if got := Verify(r.Residual, 200, a.ODs); got > a.Alarm.Limit {
				t.Fatalf("verification failed: %v > %v", got, a.Alarm.Limit)
			}
		}
		return
	}
	t.Fatal("spike at bin 200 not alarmed")
}

func TestAttributeDipSign(t *testing.T) {
	r, _ := buildSpiked(t, map[int][]int{450: {3}}, -260)
	atts := Attribute(r)
	for _, a := range atts {
		if a.Alarm.Bin != 450 {
			continue
		}
		if a.ODs[0] != 3 {
			t.Fatalf("identified %v, want 3", a.ODs)
		}
		if a.Residuals[0] >= 0 {
			t.Fatalf("dip residual sign %v, want negative", a.Residuals[0])
		}
		return
	}
	t.Fatal("dip not alarmed")
}

func TestAttributeT2Alarm(t *testing.T) {
	// Build traffic where a huge common-mode shift lands in the normal
	// subspace (same construction as the core T² test).
	rng := rand.New(rand.NewPCG(30, 40))
	n, p := 800, 8
	x := mat.New(n, p)
	dir := []float64{0.5, 0.4, 0.35, 0.3, 0.3, 0.3, 0.25, 0.25}
	for i := 0; i < n; i++ {
		f := 40 * math.Sin(2*math.Pi*float64(i)/288)
		for j := 0; j < p; j++ {
			x.Set(i, j, f*dir[j]+0.4*rng.NormFloat64())
		}
	}
	for j := 0; j < p; j++ {
		x.Set(333, j, x.At(333, j)+400*dir[j])
	}
	r, err := core.Analyze(x, core.Options{K: 2, Alpha: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	atts := Attribute(r)
	for _, a := range atts {
		if a.Alarm.Bin == 333 && a.Alarm.Stat == core.StatT2 {
			if len(a.ODs) == 0 {
				t.Fatal("T² attribution empty")
			}
			// Flow 0 has the largest loading, hence largest contribution.
			if a.ODs[0] != 0 {
				t.Fatalf("T² attribution picked %v first, want 0", a.ODs)
			}
			return
		}
	}
	t.Fatal("no T² alarm at bin 333")
}

func TestAttributionCapped(t *testing.T) {
	// A shift across every flow at once must stop at MaxODsPerAlarm.
	spikes := map[int][]int{100: {0, 1, 2, 3, 4, 5, 6, 7, 8, 9}}
	r, _ := buildSpiked(t, spikes, 120)
	for _, a := range Attribute(r) {
		if len(a.ODs) > MaxODsPerAlarm {
			t.Fatalf("attribution size %d exceeds cap", len(a.ODs))
		}
	}
}

func TestVerifyRemovesContribution(t *testing.T) {
	res := mat.New(2, 3)
	res.Set(1, 0, 3)
	res.Set(1, 1, 4)
	if got := Verify(res, 1, nil); got != 25 {
		t.Fatalf("Verify no removal = %v", got)
	}
	if got := Verify(res, 1, []int{0}); got != 16 {
		t.Fatalf("Verify remove 0 = %v", got)
	}
	if got := Verify(res, 1, []int{0, 1}); got != 0 {
		t.Fatalf("Verify remove all = %v", got)
	}
}
