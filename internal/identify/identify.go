// Package identify pins down the OD flows responsible for each alarm
// raised by the subspace method, using the paper's procedure: "determine
// the smallest set of OD flows, which if removed from the corresponding
// statistic, would bring it under threshold" (Section 4).
//
// Exact minimality is a set-cover-like search; as in the paper's own
// practice, a greedy largest-contribution-first removal is used, which is
// exact whenever one flow dominates the statistic (the common case) and
// near-minimal otherwise.
//
// Two entry points share one greedy core: Attribute walks the alarms of a
// batch analysis (core.Result), and AttributeLive attributes a single
// streamed vector against the engine model generation that scored it —
// the identification step of the streaming characterization chain.
package identify

import (
	"sort"

	"netwide/internal/core"
	"netwide/internal/engine"
	"netwide/internal/mat"
)

// Attribution is the outcome for one alarm.
type Attribution struct {
	Alarm core.Alarm
	// ODs are the column indexes (OD-pair indexes) whose removal brings
	// the statistic under its threshold, in decreasing order of
	// contribution.
	ODs []int
	// Residuals holds the centered residual (SPE alarms) or centered
	// traffic (T² alarms) value of each identified OD at the alarm bin;
	// the sign distinguishes spikes from dips.
	Residuals []float64
}

// MaxODsPerAlarm caps the identified set; alarms needing more flows than
// this are network-wide shifts and keeping every flow would not sharpen
// classification.
const MaxODsPerAlarm = 24

// Attribute identifies the responsible OD flows for every alarm of a
// subspace result.
func Attribute(r *core.Result) []Attribution {
	out := make([]Attribution, 0, len(r.Alarms))
	for _, a := range r.Alarms {
		var att Attribution
		switch a.Stat {
		case core.StatSPE:
			att = attributeSPE(r, a)
		case core.StatT2:
			att = attributeT2(r, a)
		}
		out = append(out, att)
	}
	return out
}

// AttributeLive attributes one streamed, already-scored traffic vector
// against the model generation that scored it, returning one Attribution
// per alarmed statistic (nil when the vector is clean). The vector is
// decomposed with engine.Model.Split, whose residual is bit-identical to
// the batch analysis residual under the same model, so live attributions
// match Attribute on a replayed run.
func AttributeLive(m *engine.Model, bin int, x []float64, pt engine.Point) ([]Attribution, error) {
	if !pt.SPEAlarm && !pt.T2Alarm {
		return nil, nil
	}
	modeled, residual, err := m.Split(x)
	if err != nil {
		return nil, err
	}
	qLimit, t2Limit := m.Limits()
	var out []Attribution
	if pt.SPEAlarm {
		a := core.Alarm{Bin: bin, Stat: core.StatSPE, Value: pt.SPE, Limit: qLimit}
		ods, res := speFlows(residual, pt.SPE, qLimit)
		out = append(out, Attribution{Alarm: a, ODs: ods, Residuals: res})
	}
	if pt.T2Alarm {
		a := core.Alarm{Bin: bin, Stat: core.StatT2, Value: pt.T2, Limit: t2Limit}
		// Centered traffic = modeled + residual, summed in the same order
		// as the batch path so greedy tie-breaks agree.
		xc := make([]float64, len(modeled))
		for i := range xc {
			xc[i] = modeled[i] + residual[i]
		}
		ods, res := t2Flows(m.PCA(), m.Opts().K, xc, t2Limit)
		out = append(out, Attribution{Alarm: a, ODs: ods, Residuals: res})
	}
	return out, nil
}

// attributeSPE removes OD flows from the residual vector in decreasing
// order of squared residual until ‖x̃‖² <= δ².
func attributeSPE(r *core.Result, a core.Alarm) Attribution {
	ods, res := speFlows(r.Residual.RowView(a.Bin), a.Value, a.Limit)
	return Attribution{Alarm: a, ODs: ods, Residuals: res}
}

// speFlows is the greedy SPE identification over one residual vector.
func speFlows(row []float64, value, limit float64) (ods []int, residuals []float64) {
	type contrib struct {
		od  int
		sq  float64
		val float64
	}
	cs := make([]contrib, len(row))
	for od, v := range row {
		cs[od] = contrib{od: od, sq: v * v, val: v}
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i].sq > cs[j].sq })
	remaining := value
	for _, c := range cs {
		if remaining <= limit || len(ods) >= MaxODsPerAlarm {
			break
		}
		ods = append(ods, c.od)
		residuals = append(residuals, c.val)
		remaining -= c.sq
	}
	if len(ods) == 0 && len(cs) > 0 {
		// Defensive: an SPE alarm always has at least one contributor.
		ods = append(ods, cs[0].od)
		residuals = append(residuals, cs[0].val)
	}
	return ods, residuals
}

// attributeT2 attributes a T² alarm of a batch result. The centered
// traffic row is reconstructed as modeled + residual (both centered).
func attributeT2(r *core.Result, a core.Alarm) Attribution {
	p := r.PCA.P()
	xc := make([]float64, p)
	mrow := r.Modeled.RowView(a.Bin)
	rrow := r.Residual.RowView(a.Bin)
	for i := range xc {
		xc[i] = mrow[i] + rrow[i]
	}
	ods, res := t2Flows(r.PCA, r.Opts.K, xc, a.Limit)
	return Attribution{Alarm: a, ODs: ods, Residuals: res}
}

// t2Flows greedily removes the OD flow whose exclusion most reduces the T²
// statistic until it is under the limit. Removing OD flow f changes each
// normal-subspace score s_i by -xc_f * v_i[f], where xc is the centered
// traffic vector.
func t2Flows(pca *mat.PCA, k int, xc []float64, limit float64) (ods []int, residuals []float64) {
	p := pca.P()
	scores := make([]float64, k)
	for i := 0; i < k; i++ {
		for f := 0; f < p; f++ {
			scores[i] += xc[f] * pca.Components.At(f, i)
		}
	}
	t2 := func(s []float64) float64 {
		var v float64
		for i := 0; i < k; i++ {
			l := pca.Eigenvalues[i]
			if l <= 0 {
				continue
			}
			v += s[i] * s[i] / l
		}
		return v
	}

	removed := make([]bool, p)
	cur := t2(scores)
	for cur > limit && len(ods) < MaxODsPerAlarm {
		best, bestDrop := -1, 0.0
		var bestScores []float64
		for f := 0; f < p; f++ {
			if removed[f] {
				continue
			}
			trial := make([]float64, k)
			for i := 0; i < k; i++ {
				trial[i] = scores[i] - xc[f]*pca.Components.At(f, i)
			}
			drop := cur - t2(trial)
			if drop > bestDrop {
				best, bestDrop, bestScores = f, drop, trial
			}
		}
		if best < 0 {
			break // no single removal reduces the statistic further
		}
		removed[best] = true
		ods = append(ods, best)
		residuals = append(residuals, xc[best])
		scores = bestScores
		cur = t2(scores)
	}
	if len(ods) == 0 {
		// Fall back to the largest |centered traffic| flow.
		best, bestAbs := 0, 0.0
		for f := 0; f < p; f++ {
			v := xc[f]
			if v < 0 {
				v = -v
			}
			if v > bestAbs {
				best, bestAbs = f, v
			}
		}
		ods = append(ods, best)
		residuals = append(residuals, xc[best])
	}
	return ods, residuals
}

// Verify recomputes the SPE of a bin with the given OD flows removed;
// exported for tests and for the ablation experiment.
func Verify(residual *mat.Matrix, bin int, remove []int) float64 {
	row := residual.RowView(bin)
	skip := map[int]bool{}
	for _, od := range remove {
		skip[od] = true
	}
	var spe float64
	for od, v := range row {
		if !skip[od] {
			spe += v * v
		}
	}
	return spe
}
