// Package identify pins down the OD flows responsible for each alarm
// raised by the subspace method, using the paper's procedure: "determine
// the smallest set of OD flows, which if removed from the corresponding
// statistic, would bring it under threshold" (Section 4).
//
// Exact minimality is a set-cover-like search; as in the paper's own
// practice, a greedy largest-contribution-first removal is used, which is
// exact whenever one flow dominates the statistic (the common case) and
// near-minimal otherwise.
package identify

import (
	"sort"

	"netwide/internal/core"
	"netwide/internal/mat"
)

// Attribution is the outcome for one alarm.
type Attribution struct {
	Alarm core.Alarm
	// ODs are the column indexes (OD-pair indexes) whose removal brings
	// the statistic under its threshold, in decreasing order of
	// contribution.
	ODs []int
	// Residuals holds the centered residual (SPE alarms) or centered
	// traffic (T² alarms) value of each identified OD at the alarm bin;
	// the sign distinguishes spikes from dips.
	Residuals []float64
}

// MaxODsPerAlarm caps the identified set; alarms needing more flows than
// this are network-wide shifts and keeping every flow would not sharpen
// classification.
const MaxODsPerAlarm = 24

// Attribute identifies the responsible OD flows for every alarm of a
// subspace result.
func Attribute(r *core.Result) []Attribution {
	out := make([]Attribution, 0, len(r.Alarms))
	for _, a := range r.Alarms {
		var att Attribution
		switch a.Stat {
		case core.StatSPE:
			att = attributeSPE(r, a)
		case core.StatT2:
			att = attributeT2(r, a)
		}
		out = append(out, att)
	}
	return out
}

// attributeSPE removes OD flows from the residual vector in decreasing
// order of squared residual until ‖x̃‖² <= δ².
func attributeSPE(r *core.Result, a core.Alarm) Attribution {
	row := r.Residual.RowView(a.Bin)
	type contrib struct {
		od  int
		sq  float64
		val float64
	}
	cs := make([]contrib, len(row))
	for od, v := range row {
		cs[od] = contrib{od: od, sq: v * v, val: v}
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i].sq > cs[j].sq })
	att := Attribution{Alarm: a}
	remaining := a.Value
	for _, c := range cs {
		if remaining <= a.Limit || len(att.ODs) >= MaxODsPerAlarm {
			break
		}
		att.ODs = append(att.ODs, c.od)
		att.Residuals = append(att.Residuals, c.val)
		remaining -= c.sq
	}
	if len(att.ODs) == 0 && len(cs) > 0 {
		// Defensive: an SPE alarm always has at least one contributor.
		att.ODs = append(att.ODs, cs[0].od)
		att.Residuals = append(att.Residuals, cs[0].val)
	}
	return att
}

// attributeT2 greedily removes the OD flow whose exclusion most reduces
// the T² statistic until it is under the limit. Removing OD flow f changes
// each normal-subspace score s_i by -xc_f * v_i[f], where xc is the
// centered traffic vector.
func attributeT2(r *core.Result, a core.Alarm) Attribution {
	k := r.Opts.K
	p := r.PCA.P()
	// Centered traffic row = modeled + residual (both are centered).
	xc := make([]float64, p)
	mrow := r.Modeled.RowView(a.Bin)
	rrow := r.Residual.RowView(a.Bin)
	for i := range xc {
		xc[i] = mrow[i] + rrow[i]
	}
	scores := make([]float64, k)
	for i := 0; i < k; i++ {
		for f := 0; f < p; f++ {
			scores[i] += xc[f] * r.PCA.Components.At(f, i)
		}
	}
	t2 := func(s []float64) float64 {
		var v float64
		for i := 0; i < k; i++ {
			l := r.PCA.Eigenvalues[i]
			if l <= 0 {
				continue
			}
			v += s[i] * s[i] / l
		}
		return v
	}

	att := Attribution{Alarm: a}
	removed := make([]bool, p)
	cur := t2(scores)
	for cur > a.Limit && len(att.ODs) < MaxODsPerAlarm {
		best, bestDrop := -1, 0.0
		var bestScores []float64
		for f := 0; f < p; f++ {
			if removed[f] {
				continue
			}
			trial := make([]float64, k)
			for i := 0; i < k; i++ {
				trial[i] = scores[i] - xc[f]*r.PCA.Components.At(f, i)
			}
			drop := cur - t2(trial)
			if drop > bestDrop {
				best, bestDrop, bestScores = f, drop, trial
			}
		}
		if best < 0 {
			break // no single removal reduces the statistic further
		}
		removed[best] = true
		att.ODs = append(att.ODs, best)
		att.Residuals = append(att.Residuals, xc[best])
		scores = bestScores
		cur = t2(scores)
	}
	if len(att.ODs) == 0 {
		// Fall back to the largest |centered traffic| flow.
		best, bestAbs := 0, 0.0
		for f := 0; f < p; f++ {
			v := xc[f]
			if v < 0 {
				v = -v
			}
			if v > bestAbs {
				best, bestAbs = f, v
			}
		}
		att.ODs = append(att.ODs, best)
		att.Residuals = append(att.Residuals, xc[best])
	}
	return att
}

// Verify recomputes the SPE of a bin with the given OD flows removed;
// exported for tests and for the ablation experiment.
func Verify(residual *mat.Matrix, bin int, remove []int) float64 {
	row := residual.RowView(bin)
	skip := map[int]bool{}
	for _, od := range remove {
		skip[od] = true
	}
	var spe float64
	for od, v := range row {
		if !skip[od] {
			spe += v * v
		}
	}
	return spe
}
