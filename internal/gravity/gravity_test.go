package gravity

import (
	"math"
	"testing"

	"netwide/internal/topology"
)

func TestFractionsNormalized(t *testing.T) {
	top := topology.Abilene()
	m, err := New(top, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for i := 0; i < topology.NumODPairs; i++ {
		f := m.Fraction(topology.ODPairFromIndex(i))
		if f <= 0 {
			t.Fatalf("fraction %v at %s", f, topology.ODPairFromIndex(i))
		}
		sum += f
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("fractions sum to %v", sum)
	}
}

func TestGravityOrdering(t *testing.T) {
	top := topology.Abilene()
	m, err := New(top, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	// NYCM and WASH are the heaviest PoPs; KSCY and DNVR the lightest.
	big := m.Fraction(topology.ODPair{Origin: topology.NYCM, Dest: topology.WASH})
	small := m.Fraction(topology.ODPair{Origin: topology.KSCY, Dest: topology.DNVR})
	if big <= small {
		t.Fatalf("gravity ordering: big=%v small=%v", big, small)
	}
	// Gravity is symmetric when weights are.
	ab := m.Fraction(topology.ODPair{Origin: topology.ATLA, Dest: topology.CHIN})
	ba := m.Fraction(topology.ODPair{Origin: topology.CHIN, Dest: topology.ATLA})
	if math.Abs(ab-ba) > 1e-15 {
		t.Fatalf("asymmetric gravity %v vs %v", ab, ba)
	}
}

func TestSelfFactorSuppressesSelfPairs(t *testing.T) {
	top := topology.Abilene()
	m0, _ := New(top, 0)
	for p := topology.PoP(0); p < topology.NumPoPs; p++ {
		if f := m0.Fraction(topology.ODPair{Origin: p, Dest: p}); f != 0 {
			t.Fatalf("self pair %s has fraction %v with factor 0", p, f)
		}
	}
	if _, err := New(top, -0.1); err == nil {
		t.Fatal("negative self factor accepted")
	}
	if _, err := New(top, 1.1); err == nil {
		t.Fatal("self factor > 1 accepted")
	}
}

func TestDemandsScale(t *testing.T) {
	top := topology.Abilene()
	m, _ := New(top, 0.2)
	d := m.Demands(1e9)
	var sum float64
	for _, v := range d {
		sum += v
	}
	if math.Abs(sum-1e9)/1e9 > 1e-12 {
		t.Fatalf("demands sum %v, want 1e9", sum)
	}
}
