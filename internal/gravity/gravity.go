// Package gravity implements the gravity model for origin-destination
// traffic demands: the long-run mean demand between PoPs o and d is
// proportional to W(o)*W(d), where W is the PoP's attached customer weight.
//
// Gravity models are the standard first-order structure of backbone traffic
// matrices (Zhang et al., and the Lakhina et al. structural-analysis work
// the paper builds on): a few big PoPs dominate, giving the OD matrix the
// low-effective-rank temporal structure that makes the subspace method
// work.
package gravity

import (
	"fmt"

	"netwide/internal/topology"
)

// Model holds normalized OD demand fractions; Fraction sums to 1 over all
// OD pairs (self-pairs included, scaled by SelfFactor).
type Model struct {
	n    int // PoP count of the topology the model was built from
	frac []float64
}

// New builds a gravity model from the topology's PoP weights.
//
// selfFactor in [0,1] scales demand of self-pairs (traffic entering and
// leaving at the same PoP) relative to what the raw product W(o)^2 would
// give; backbone customers exchange most traffic across the network, so
// values around 0.2 are typical.
func New(top *topology.Topology, selfFactor float64) (*Model, error) {
	if selfFactor < 0 || selfFactor > 1 {
		return nil, fmt.Errorf("gravity: self factor %v out of [0,1]", selfFactor)
	}
	n := top.NumPoPs()
	m := &Model{n: n, frac: make([]float64, top.NumODPairs())}
	var total float64
	for o := topology.PoP(0); int(o) < n; o++ {
		for d := topology.PoP(0); int(d) < n; d++ {
			v := top.PoPWeight(o) * top.PoPWeight(d)
			if o == d {
				v *= selfFactor
			}
			m.frac[top.Index(topology.ODPair{Origin: o, Dest: d})] = v
			total += v
		}
	}
	if total <= 0 {
		return nil, fmt.Errorf("gravity: degenerate topology weights")
	}
	for i := range m.frac {
		m.frac[i] /= total
	}
	return m, nil
}

// Fraction returns the share of total network demand carried by the OD
// pair.
func (m *Model) Fraction(od topology.ODPair) float64 {
	return m.frac[int(od.Origin)*m.n+int(od.Dest)]
}

// Demands returns the full demand vector (indexed by Topology.Index) scaled
// to the given total volume.
func (m *Model) Demands(totalVolume float64) []float64 {
	out := make([]float64, len(m.frac))
	for i, f := range m.frac {
		out[i] = f * totalVolume
	}
	return out
}
