// Package topology models the Abilene Internet2 backbone as it stood during
// the paper's measurement period (April and December 2003): 11 points of
// presence spanning the continental US, the 14 OC-192 backbone links between
// them, and the customer networks attached at each PoP.
//
// The topology is the substrate every other layer builds on: routing derives
// IS-IS weights from the link distances; the traffic generator derives OD
// demands from PoP weights (gravity model); ingress/egress resolution maps
// customer prefixes to PoPs.
package topology

import (
	"fmt"
	"math"

	"netwide/internal/ipaddr"
)

// PoP identifies an Abilene point of presence. Values are dense indexes so
// OD pairs can be addressed as PoP*NumPoPs+PoP.
type PoP int

// The 11 Abilene PoPs (2003). The three-to-four-letter codes are the ones
// used by the Abilene NOC and by the paper (e.g. "LOSA outage on 4/17",
// "measurement failure from CHIN on 12/21").
const (
	ATLA PoP = iota // Atlanta
	CHIN            // Chicago
	DNVR            // Denver
	HSTN            // Houston
	IPLS            // Indianapolis
	KSCY            // Kansas City
	LOSA            // Los Angeles
	NYCM            // New York City
	SNVA            // Sunnyvale
	STTL            // Seattle
	WASH            // Washington DC

	// NumPoPs is the number of PoPs; the OD matrix is NumPoPs^2 = 121 wide.
	NumPoPs = 11
)

// NumODPairs is the number of origin-destination pairs (including the
// self-pairs PoP->same PoP, which carry locally exchanged customer traffic,
// exactly as in the paper's p = 121).
const NumODPairs = NumPoPs * NumPoPs

var popNames = [NumPoPs]string{
	"ATLA", "CHIN", "DNVR", "HSTN", "IPLS", "KSCY", "LOSA", "NYCM", "SNVA", "STTL", "WASH",
}

// String returns the NOC code of the PoP.
func (p PoP) String() string {
	if p < 0 || p >= NumPoPs {
		return fmt.Sprintf("PoP(%d)", int(p))
	}
	return popNames[p]
}

// Valid reports whether p is a real PoP index.
func (p PoP) Valid() bool { return p >= 0 && p < NumPoPs }

// ParsePoP resolves a NOC code (e.g. "LOSA") to a PoP.
func ParsePoP(code string) (PoP, error) {
	for i, n := range popNames {
		if n == code {
			return PoP(i), nil
		}
	}
	return 0, fmt.Errorf("topology: unknown PoP %q", code)
}

// coord is a geographic coordinate in degrees.
type coord struct{ lat, lon float64 }

// Approximate PoP locations, used to derive IS-IS-like link weights from
// great-circle distances (Abilene's IGP metrics were distance-based).
var popCoords = [NumPoPs]coord{
	ATLA: {33.76, -84.39},
	CHIN: {41.88, -87.63},
	DNVR: {39.74, -104.99},
	HSTN: {29.76, -95.37},
	IPLS: {39.77, -86.16},
	KSCY: {39.10, -94.58},
	LOSA: {34.05, -118.24},
	NYCM: {40.71, -74.01},
	SNVA: {37.37, -122.04},
	STTL: {47.61, -122.33},
	WASH: {38.91, -77.04},
}

// Link is an undirected backbone link between two PoPs.
type Link struct {
	A, B PoP
	// CapacityBps is the link capacity in bits per second (Abilene ran
	// OC-192, ~10 Gb/s).
	CapacityBps float64
	// Weight is the IGP metric used by shortest-path routing; derived from
	// great-circle distance in kilometers.
	Weight float64
}

// ODPair is an (origin PoP, destination PoP) pair — the aggregation level of
// the paper's traffic matrices.
type ODPair struct {
	Origin, Dest PoP
}

// Index returns the dense index of the pair in [0, NumODPairs).
func (od ODPair) Index() int { return int(od.Origin)*NumPoPs + int(od.Dest) }

// ODPairFromIndex inverts Index.
func ODPairFromIndex(i int) ODPair {
	return ODPair{Origin: PoP(i / NumPoPs), Dest: PoP(i % NumPoPs)}
}

// String renders "LOSA->NYCM".
func (od ODPair) String() string { return od.Origin.String() + "->" + od.Dest.String() }

// Customer is a network attached to the backbone at one or more PoPs (a
// university, a regional aggregation network, or a peer). Multihomed
// customers (several Homes) are the ones that can perform ingress shifts.
type Customer struct {
	Name string
	// Homes lists attachment PoPs in preference order: traffic enters and
	// leaves via Homes[0] unless an ingress shift or outage moves it.
	Homes []PoP
	// Prefixes is the customer's address space, announced at its homes.
	Prefixes []ipaddr.Prefix
	// Weight scales the customer's traffic volume in the gravity model.
	Weight float64
}

// Topology is the full network model.
type Topology struct {
	Links     []Link
	Customers []Customer
	// popWeight caches the summed customer weight per PoP for the gravity
	// model.
	popWeight [NumPoPs]float64
}

// haversineKm returns the great-circle distance between two coordinates.
func haversineKm(a, b coord) float64 {
	const earthRadiusKm = 6371
	rad := math.Pi / 180
	dLat := (b.lat - a.lat) * rad
	dLon := (b.lon - a.lon) * rad
	s := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(a.lat*rad)*math.Cos(b.lat*rad)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadiusKm * math.Asin(math.Sqrt(s))
}

// abileneAdjacency is the 14-link Abilene backbone of 2003.
var abileneAdjacency = [][2]PoP{
	{STTL, SNVA}, {STTL, DNVR},
	{SNVA, LOSA}, {SNVA, DNVR},
	{LOSA, HSTN},
	{DNVR, KSCY},
	{KSCY, HSTN}, {KSCY, IPLS},
	{HSTN, ATLA},
	{IPLS, CHIN}, {IPLS, ATLA},
	{CHIN, NYCM},
	{ATLA, WASH},
	{NYCM, WASH},
}

// Abilene constructs the reference topology: the 2003 backbone plus a
// synthetic-but-structured customer population. Each PoP hosts several
// single-homed customers with deterministic address space carved from
// 10.0.0.0/8; LOSA and SNVA share one multihomed customer ("CALREN", the
// customer whose ingress shift around the 4/17 LOSA outage the paper
// describes).
func Abilene() *Topology {
	t := &Topology{}
	const oc192 = 10e9
	for _, adj := range abileneAdjacency {
		d := haversineKm(popCoords[adj[0]], popCoords[adj[1]])
		t.Links = append(t.Links, Link{A: adj[0], B: adj[1], CapacityBps: oc192, Weight: d})
	}

	// Customer address plan: PoP i owns 10.(16*i).0.0/12; customer c at
	// PoP i owns 10.(16*i+c).0.0/16. This keeps ingress resolution a pure
	// prefix lookup, like the BGP/config-file procedure in the paper.
	customersPerPoP := [NumPoPs]int{
		ATLA: 5, CHIN: 6, DNVR: 3, HSTN: 4, IPLS: 5, KSCY: 3,
		LOSA: 5, NYCM: 7, SNVA: 6, STTL: 4, WASH: 6,
	}
	// Relative sizes loosely follow the PoP's academic population; these
	// drive the gravity model.
	popScale := [NumPoPs]float64{
		ATLA: 1.0, CHIN: 1.6, DNVR: 0.6, HSTN: 0.8, IPLS: 1.1, KSCY: 0.5,
		LOSA: 1.3, NYCM: 1.8, SNVA: 1.4, STTL: 0.9, WASH: 1.5,
	}
	for p := PoP(0); p < NumPoPs; p++ {
		n := customersPerPoP[p]
		for c := 0; c < n; c++ {
			pfx, err := ipaddr.NewPrefix(ipaddr.FromOctets(10, byte(16*int(p)+c), 0, 0), 16)
			if err != nil {
				panic(err)
			}
			// Within a PoP, customer sizes decay geometrically so a few
			// large customers dominate, as in real aggregation networks.
			w := popScale[p] * math.Pow(0.65, float64(c))
			t.Customers = append(t.Customers, Customer{
				Name:     fmt.Sprintf("%s-CUST%d", p, c),
				Homes:    []PoP{p},
				Prefixes: []ipaddr.Prefix{pfx},
				Weight:   w,
			})
		}
	}
	// The multihomed regional customer: primary LOSA, backup SNVA.
	calren, err := ipaddr.NewPrefix(ipaddr.FromOctets(10, 200, 0, 0), 14)
	if err != nil {
		panic(err)
	}
	t.Customers = append(t.Customers, Customer{
		Name:     "CALREN",
		Homes:    []PoP{LOSA, SNVA},
		Prefixes: []ipaddr.Prefix{calren},
		Weight:   1.2,
	})

	for _, c := range t.Customers {
		t.popWeight[c.Homes[0]] += c.Weight
	}
	return t
}

// PoPWeight returns the gravity-model weight of PoP p (sum of primary-homed
// customer weights).
func (t *Topology) PoPWeight(p PoP) float64 { return t.popWeight[p] }

// TotalWeight returns the sum of all PoP weights.
func (t *Topology) TotalWeight() float64 {
	var s float64
	for _, w := range t.popWeight {
		s += w
	}
	return s
}

// Neighbors returns the PoPs adjacent to p along with the connecting link
// weights.
func (t *Topology) Neighbors(p PoP) []struct {
	PoP    PoP
	Weight float64
} {
	var out []struct {
		PoP    PoP
		Weight float64
	}
	for _, l := range t.Links {
		switch p {
		case l.A:
			out = append(out, struct {
				PoP    PoP
				Weight float64
			}{l.B, l.Weight})
		case l.B:
			out = append(out, struct {
				PoP    PoP
				Weight float64
			}{l.A, l.Weight})
		}
	}
	return out
}

// CustomerByName finds a customer; it returns nil if absent.
func (t *Topology) CustomerByName(name string) *Customer {
	for i := range t.Customers {
		if t.Customers[i].Name == name {
			return &t.Customers[i]
		}
	}
	return nil
}

// CustomersAt returns the customers whose primary home is p.
func (t *Topology) CustomersAt(p PoP) []*Customer {
	var out []*Customer
	for i := range t.Customers {
		if t.Customers[i].Homes[0] == p {
			out = append(out, &t.Customers[i])
		}
	}
	return out
}

// Validate checks structural invariants: PoP indexes in range, no self
// links, no duplicate links, connected backbone, customers non-empty with
// valid homes and non-overlapping prefixes.
func (t *Topology) Validate() error {
	seen := map[[2]PoP]bool{}
	adj := make([][]PoP, NumPoPs)
	for _, l := range t.Links {
		if !l.A.Valid() || !l.B.Valid() {
			return fmt.Errorf("topology: link %v has invalid PoP", l)
		}
		if l.A == l.B {
			return fmt.Errorf("topology: self link at %s", l.A)
		}
		key := [2]PoP{l.A, l.B}
		if l.B < l.A {
			key = [2]PoP{l.B, l.A}
		}
		if seen[key] {
			return fmt.Errorf("topology: duplicate link %s-%s", l.A, l.B)
		}
		seen[key] = true
		if l.Weight <= 0 || l.CapacityBps <= 0 {
			return fmt.Errorf("topology: non-positive weight/capacity on %s-%s", l.A, l.B)
		}
		adj[l.A] = append(adj[l.A], l.B)
		adj[l.B] = append(adj[l.B], l.A)
	}
	// Connectivity (BFS from PoP 0).
	visited := make([]bool, NumPoPs)
	queue := []PoP{0}
	visited[0] = true
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		for _, q := range adj[p] {
			if !visited[q] {
				visited[q] = true
				queue = append(queue, q)
			}
		}
	}
	for p, v := range visited {
		if !v {
			return fmt.Errorf("topology: PoP %s unreachable", PoP(p))
		}
	}
	if len(t.Customers) == 0 {
		return fmt.Errorf("topology: no customers")
	}
	for i := range t.Customers {
		c := &t.Customers[i]
		if len(c.Homes) == 0 {
			return fmt.Errorf("topology: customer %s has no homes", c.Name)
		}
		for _, h := range c.Homes {
			if !h.Valid() {
				return fmt.Errorf("topology: customer %s home invalid", c.Name)
			}
		}
		if len(c.Prefixes) == 0 {
			return fmt.Errorf("topology: customer %s has no prefixes", c.Name)
		}
		if c.Weight <= 0 {
			return fmt.Errorf("topology: customer %s non-positive weight", c.Name)
		}
		for j := 0; j < i; j++ {
			for _, p1 := range c.Prefixes {
				for _, p2 := range t.Customers[j].Prefixes {
					if p1.Overlaps(p2) {
						return fmt.Errorf("topology: customers %s and %s have overlapping prefixes", c.Name, t.Customers[j].Name)
					}
				}
			}
		}
	}
	return nil
}
