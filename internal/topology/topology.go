// Package topology models PoP-level backbone networks: points of presence,
// the backbone links between them, and the customer networks attached at
// each PoP.
//
// The package is data-driven: a Spec (nodes, links with capacities and IGP
// metrics, customer attachments) is compiled by New into a validated
// Topology. Three constructors cover the built-in scenarios:
//
//   - Abilene: the 11-PoP Internet2 backbone as it stood during the paper's
//     measurement period (April and December 2003) — the reference topology
//     whose generated datasets are kept byte-identical across refactors;
//   - Geant: a 23-PoP European research backbone in the style of GÉANT,
//     for cross-topology validation of detection quality;
//   - Synthetic: deterministic random backbones of 2..200 PoPs (up to
//     40 000 OD pairs) for scale sweeps of the measurement and detection
//     pipelines.
//
// The topology is the substrate every other layer builds on: routing derives
// IS-IS weights from the link distances; the traffic generator derives OD
// demands from PoP weights (gravity model); ingress/egress resolution maps
// customer prefixes to PoPs.
package topology

import (
	"fmt"
	"math"
	"math/rand/v2"
	"strconv"
	"strings"

	"netwide/internal/ipaddr"
)

// PoP identifies a point of presence by dense index, so OD pairs can be
// addressed as Origin*n+Dest within an n-PoP topology.
type PoP int

// The 11 Abilene PoPs (2003). The three-to-four-letter codes are the ones
// used by the Abilene NOC and by the paper (e.g. "LOSA outage on 4/17",
// "measurement failure from CHIN on 12/21").
const (
	ATLA PoP = iota // Atlanta
	CHIN            // Chicago
	DNVR            // Denver
	HSTN            // Houston
	IPLS            // Indianapolis
	KSCY            // Kansas City
	LOSA            // Los Angeles
	NYCM            // New York City
	SNVA            // Sunnyvale
	STTL            // Seattle
	WASH            // Washington DC

	// NumPoPs is the PoP count of the reference Abilene topology; its OD
	// matrix is NumPoPs^2 = 121 wide. Arbitrary topologies report their own
	// size via Topology.NumPoPs.
	NumPoPs = 11
)

// NumODPairs is the number of origin-destination pairs of the reference
// Abilene topology (including the self-pairs PoP->same PoP, which carry
// locally exchanged customer traffic, exactly as in the paper's p = 121).
const NumODPairs = NumPoPs * NumPoPs

// MaxPoPs bounds the PoP count of any topology. The NetFlow export layer
// encodes the origin PoP in a uint8 engine ID, and Synthetic stops well
// short of that at 200.
const MaxPoPs = 250

var popNames = [NumPoPs]string{
	"ATLA", "CHIN", "DNVR", "HSTN", "IPLS", "KSCY", "LOSA", "NYCM", "SNVA", "STTL", "WASH",
}

// String returns the Abilene NOC code for reference-topology indexes and a
// generic "PoP(i)" otherwise. Arbitrary topologies name their PoPs via
// Topology.PoPName.
func (p PoP) String() string {
	if p < 0 || p >= NumPoPs {
		return fmt.Sprintf("PoP(%d)", int(p))
	}
	return popNames[p]
}

// Valid reports whether p is a real PoP index of the reference Abilene
// topology. Size-aware checks against an arbitrary topology use
// Topology.ContainsPoP.
func (p PoP) Valid() bool { return p >= 0 && p < NumPoPs }

// ParsePoP resolves an Abilene NOC code (e.g. "LOSA") to a PoP.
func ParsePoP(code string) (PoP, error) {
	for i, n := range popNames {
		if n == code {
			return PoP(i), nil
		}
	}
	return 0, fmt.Errorf("topology: unknown PoP %q", code)
}

// coord is a geographic coordinate in degrees.
type coord struct{ lat, lon float64 }

// Approximate PoP locations, used to derive IS-IS-like link weights from
// great-circle distances (Abilene's IGP metrics were distance-based).
var popCoords = [NumPoPs]coord{
	ATLA: {33.76, -84.39},
	CHIN: {41.88, -87.63},
	DNVR: {39.74, -104.99},
	HSTN: {29.76, -95.37},
	IPLS: {39.77, -86.16},
	KSCY: {39.10, -94.58},
	LOSA: {34.05, -118.24},
	NYCM: {40.71, -74.01},
	SNVA: {37.37, -122.04},
	STTL: {47.61, -122.33},
	WASH: {38.91, -77.04},
}

// Link is an undirected backbone link between two PoPs.
type Link struct {
	A, B PoP
	// CapacityBps is the link capacity in bits per second (Abilene ran
	// OC-192, ~10 Gb/s).
	CapacityBps float64
	// Weight is the IGP metric used by shortest-path routing; derived from
	// great-circle distance in kilometers.
	Weight float64
}

// ODPair is an (origin PoP, destination PoP) pair — the aggregation level of
// the paper's traffic matrices.
type ODPair struct {
	Origin, Dest PoP
}

// Index returns the dense index of the pair within the reference 11-PoP
// Abilene topology. For arbitrary topologies use Topology.Index.
func (od ODPair) Index() int { return int(od.Origin)*NumPoPs + int(od.Dest) }

// ODPairFromIndex inverts Index (reference Abilene indexing).
func ODPairFromIndex(i int) ODPair {
	return ODPair{Origin: PoP(i / NumPoPs), Dest: PoP(i % NumPoPs)}
}

// String renders "LOSA->NYCM" using reference Abilene PoP codes; arbitrary
// topologies render OD pairs via Topology.ODName.
func (od ODPair) String() string { return od.Origin.String() + "->" + od.Dest.String() }

// Customer is a network attached to the backbone at one or more PoPs (a
// university, a regional aggregation network, or a peer). Multihomed
// customers (several Homes) are the ones that can perform ingress shifts.
type Customer struct {
	Name string
	// Homes lists attachment PoPs in preference order: traffic enters and
	// leaves via Homes[0] unless an ingress shift or outage moves it.
	Homes []PoP
	// Prefixes is the customer's address space, announced at its homes.
	Prefixes []ipaddr.Prefix
	// Weight scales the customer's traffic volume in the gravity model.
	Weight float64
}

// Node is one point of presence of a Spec: a name plus the geographic
// coordinates its distance-derived link metrics come from.
type Node struct {
	Name     string
	Lat, Lon float64
}

// LinkSpec is an undirected link between two named nodes. Weight 0 derives
// the IGP metric from the great-circle distance between the node
// coordinates, which is how both Abilene and the bundled Géant-like spec
// weight their links.
type LinkSpec struct {
	A, B        string
	CapacityBps float64
	Weight      float64
}

// CustomerSpec attaches a customer network to one or more named nodes.
type CustomerSpec struct {
	Name     string
	Homes    []string // attachment nodes, primary first
	Prefixes []ipaddr.Prefix
	Weight   float64
}

// Spec is the declarative form of a topology: everything New needs to build
// and validate a Topology.
type Spec struct {
	Name      string
	Nodes     []Node
	Links     []LinkSpec
	Customers []CustomerSpec
}

// Topology is the full network model.
type Topology struct {
	// Name identifies the topology ("abilene", "geant", "synthetic-100", ...).
	Name      string
	Links     []Link
	Customers []Customer
	nodes     []Node
	// popWeight caches the summed customer weight per PoP for the gravity
	// model.
	popWeight []float64
}

// NumPoPs returns the number of PoPs.
func (t *Topology) NumPoPs() int { return len(t.nodes) }

// NumODPairs returns the width of the OD matrix: NumPoPs squared, self-pairs
// included.
func (t *Topology) NumODPairs() int { return len(t.nodes) * len(t.nodes) }

// ContainsPoP reports whether p is a PoP index of this topology.
func (t *Topology) ContainsPoP(p PoP) bool { return p >= 0 && int(p) < len(t.nodes) }

// PoPName returns the node name of p.
func (t *Topology) PoPName(p PoP) string {
	if !t.ContainsPoP(p) {
		return fmt.Sprintf("PoP(%d)", int(p))
	}
	return t.nodes[p].Name
}

// PoPByName resolves a node name to its PoP index.
func (t *Topology) PoPByName(name string) (PoP, error) {
	for i := range t.nodes {
		if t.nodes[i].Name == name {
			return PoP(i), nil
		}
	}
	return 0, fmt.Errorf("topology: unknown PoP %q in %s", name, t.Name)
}

// Index returns the dense index of od in [0, NumODPairs()).
func (t *Topology) Index(od ODPair) int { return int(od.Origin)*len(t.nodes) + int(od.Dest) }

// ODAt inverts Index.
func (t *Topology) ODAt(i int) ODPair {
	n := len(t.nodes)
	return ODPair{Origin: PoP(i / n), Dest: PoP(i % n)}
}

// ODName renders od as "ORIG->DEST" using this topology's node names.
func (t *Topology) ODName(od ODPair) string {
	return t.PoPName(od.Origin) + "->" + t.PoPName(od.Dest)
}

// haversineKm returns the great-circle distance between two coordinates.
func haversineKm(a, b coord) float64 {
	const earthRadiusKm = 6371
	rad := math.Pi / 180
	dLat := (b.lat - a.lat) * rad
	dLon := (b.lon - a.lon) * rad
	s := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(a.lat*rad)*math.Cos(b.lat*rad)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadiusKm * math.Asin(math.Sqrt(s))
}

// New compiles a Spec into a Topology, deriving distance-based link weights
// where the spec leaves Weight zero, and validates the result. It is the
// single construction path: every built-in constructor goes through it, so
// no malformed topology can escape Validate.
func New(spec Spec) (*Topology, error) {
	if len(spec.Nodes) == 0 {
		return nil, fmt.Errorf("topology: spec %q has no nodes", spec.Name)
	}
	if len(spec.Nodes) > MaxPoPs {
		return nil, fmt.Errorf("topology: spec %q has %d nodes, max %d", spec.Name, len(spec.Nodes), MaxPoPs)
	}
	t := &Topology{
		Name:      spec.Name,
		nodes:     append([]Node(nil), spec.Nodes...),
		popWeight: make([]float64, len(spec.Nodes)),
	}
	index := make(map[string]PoP, len(spec.Nodes))
	for i, nd := range spec.Nodes {
		if nd.Name == "" {
			return nil, fmt.Errorf("topology: spec %q node %d unnamed", spec.Name, i)
		}
		if _, dup := index[nd.Name]; dup {
			return nil, fmt.Errorf("topology: spec %q duplicate node %q", spec.Name, nd.Name)
		}
		index[nd.Name] = PoP(i)
	}
	resolve := func(name string) (PoP, error) {
		p, ok := index[name]
		if !ok {
			return 0, fmt.Errorf("topology: spec %q references unknown node %q", spec.Name, name)
		}
		return p, nil
	}
	for _, ls := range spec.Links {
		a, err := resolve(ls.A)
		if err != nil {
			return nil, err
		}
		b, err := resolve(ls.B)
		if err != nil {
			return nil, err
		}
		w := ls.Weight
		if w == 0 {
			w = haversineKm(coord{t.nodes[a].Lat, t.nodes[a].Lon}, coord{t.nodes[b].Lat, t.nodes[b].Lon})
		}
		t.Links = append(t.Links, Link{A: a, B: b, CapacityBps: ls.CapacityBps, Weight: w})
	}
	for _, cs := range spec.Customers {
		c := Customer{Name: cs.Name, Prefixes: cs.Prefixes, Weight: cs.Weight}
		for _, h := range cs.Homes {
			p, err := resolve(h)
			if err != nil {
				return nil, err
			}
			c.Homes = append(c.Homes, p)
		}
		t.Customers = append(t.Customers, c)
	}
	for _, c := range t.Customers {
		if len(c.Homes) == 0 {
			return nil, fmt.Errorf("topology: customer %s has no homes", c.Name)
		}
		t.popWeight[c.Homes[0]] += c.Weight
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// mustNew builds a compiled-in spec; a failure is a bug in the spec table,
// not a runtime condition, so it panics.
func mustNew(spec Spec) *Topology {
	t, err := New(spec)
	if err != nil {
		panic(fmt.Sprintf("topology: built-in spec %q invalid: %v", spec.Name, err))
	}
	return t
}

// abileneAdjacency is the 14-link Abilene backbone of 2003.
var abileneAdjacency = [][2]PoP{
	{STTL, SNVA}, {STTL, DNVR},
	{SNVA, LOSA}, {SNVA, DNVR},
	{LOSA, HSTN},
	{DNVR, KSCY},
	{KSCY, HSTN}, {KSCY, IPLS},
	{HSTN, ATLA},
	{IPLS, CHIN}, {IPLS, ATLA},
	{CHIN, NYCM},
	{ATLA, WASH},
	{NYCM, WASH},
}

// AbileneSpec returns the declarative form of the reference topology: the
// 2003 backbone plus a synthetic-but-structured customer population. Each
// PoP hosts several single-homed customers with deterministic address space
// carved from 10.0.0.0/8; LOSA and SNVA share one multihomed customer
// ("CALREN", the customer whose ingress shift around the 4/17 LOSA outage
// the paper describes).
func AbileneSpec() Spec {
	spec := Spec{Name: "abilene"}
	for p := PoP(0); p < NumPoPs; p++ {
		spec.Nodes = append(spec.Nodes, Node{Name: popNames[p], Lat: popCoords[p].lat, Lon: popCoords[p].lon})
	}
	const oc192 = 10e9
	for _, adj := range abileneAdjacency {
		spec.Links = append(spec.Links, LinkSpec{A: popNames[adj[0]], B: popNames[adj[1]], CapacityBps: oc192})
	}

	// Customer address plan: PoP i owns 10.(16*i).0.0/12; customer c at
	// PoP i owns 10.(16*i+c).0.0/16. This keeps ingress resolution a pure
	// prefix lookup, like the BGP/config-file procedure in the paper.
	customersPerPoP := [NumPoPs]int{
		ATLA: 5, CHIN: 6, DNVR: 3, HSTN: 4, IPLS: 5, KSCY: 3,
		LOSA: 5, NYCM: 7, SNVA: 6, STTL: 4, WASH: 6,
	}
	// Relative sizes loosely follow the PoP's academic population; these
	// drive the gravity model.
	popScale := [NumPoPs]float64{
		ATLA: 1.0, CHIN: 1.6, DNVR: 0.6, HSTN: 0.8, IPLS: 1.1, KSCY: 0.5,
		LOSA: 1.3, NYCM: 1.8, SNVA: 1.4, STTL: 0.9, WASH: 1.5,
	}
	for p := PoP(0); p < NumPoPs; p++ {
		n := customersPerPoP[p]
		for c := 0; c < n; c++ {
			pfx, err := ipaddr.NewPrefix(ipaddr.FromOctets(10, byte(16*int(p)+c), 0, 0), 16)
			if err != nil {
				panic(err)
			}
			// Within a PoP, customer sizes decay geometrically so a few
			// large customers dominate, as in real aggregation networks.
			w := popScale[p] * math.Pow(0.65, float64(c))
			spec.Customers = append(spec.Customers, CustomerSpec{
				Name:     fmt.Sprintf("%s-CUST%d", p, c),
				Homes:    []string{popNames[p]},
				Prefixes: []ipaddr.Prefix{pfx},
				Weight:   w,
			})
		}
	}
	// The multihomed regional customer: primary LOSA, backup SNVA.
	calren, err := ipaddr.NewPrefix(ipaddr.FromOctets(10, 200, 0, 0), 14)
	if err != nil {
		panic(err)
	}
	spec.Customers = append(spec.Customers, CustomerSpec{
		Name:     "CALREN",
		Homes:    []string{popNames[LOSA], popNames[SNVA]},
		Prefixes: []ipaddr.Prefix{calren},
		Weight:   1.2,
	})
	return spec
}

// Abilene constructs the reference topology. Its output — links, weights,
// customers, gravity weights — is byte-identical to the pre-Spec
// implementation; the golden-hash regression test in the dataset package
// holds the whole generation pipeline to that contract.
func Abilene() *Topology { return mustNew(AbileneSpec()) }

// geantNodes is a 23-PoP European research backbone in the style of the
// GÉANT network (city PoPs, distance-weighted links). The customer counts
// and scales are structured like Abilene's: a few large NRENs dominate.
var geantNodes = []struct {
	name     string
	lat, lon float64
	custs    int
	scale    float64
}{
	{"LON", 51.51, -0.13, 6, 1.8}, // London
	{"PAR", 48.86, 2.35, 6, 1.7},  // Paris
	{"FRA", 50.11, 8.68, 7, 1.9},  // Frankfurt
	{"AMS", 52.37, 4.90, 5, 1.5},  // Amsterdam
	{"GEN", 46.20, 6.14, 4, 1.2},  // Geneva
	{"MIL", 45.46, 9.19, 4, 1.1},  // Milan
	{"MAD", 40.42, -3.70, 4, 1.0}, // Madrid
	{"LIS", 38.72, -9.14, 2, 0.5}, // Lisbon
	{"BRU", 50.85, 4.35, 3, 0.7},  // Brussels
	{"LUX", 49.61, 6.13, 2, 0.4},  // Luxembourg
	{"CPH", 55.68, 12.57, 3, 0.9}, // Copenhagen
	{"STO", 59.33, 18.07, 4, 1.0}, // Stockholm
	{"HEL", 60.17, 24.94, 2, 0.6}, // Helsinki
	{"OSL", 59.91, 10.75, 2, 0.6}, // Oslo
	{"WAR", 52.23, 21.01, 3, 0.8}, // Warsaw
	{"PRA", 50.08, 14.44, 3, 0.7}, // Prague
	{"VIE", 48.21, 16.37, 4, 1.0}, // Vienna
	{"BUD", 47.50, 19.04, 2, 0.5}, // Budapest
	{"ZAG", 45.81, 15.98, 2, 0.4}, // Zagreb
	{"BUC", 44.43, 26.10, 2, 0.5}, // Bucharest
	{"SOF", 42.70, 23.32, 2, 0.4}, // Sofia
	{"ATH", 37.98, 23.73, 2, 0.5}, // Athens
	{"DUB", 53.35, -6.26, 2, 0.6}, // Dublin
}

// geantAdjacency mirrors the mesh-plus-ring structure of the GÉANT core:
// a dense western mesh and an eastern ring.
var geantAdjacency = [][2]string{
	{"LON", "PAR"}, {"LON", "AMS"}, {"LON", "DUB"}, {"LON", "FRA"},
	{"PAR", "GEN"}, {"PAR", "MAD"}, {"PAR", "BRU"}, {"PAR", "LUX"},
	{"FRA", "AMS"}, {"FRA", "GEN"}, {"FRA", "PRA"}, {"FRA", "CPH"}, {"FRA", "LUX"},
	{"AMS", "BRU"}, {"AMS", "CPH"},
	{"GEN", "MIL"}, {"GEN", "MAD"},
	{"MIL", "VIE"}, {"MIL", "ZAG"},
	{"MAD", "LIS"},
	{"CPH", "STO"}, {"CPH", "OSL"},
	{"STO", "HEL"}, {"STO", "OSL"}, {"STO", "WAR"},
	{"HEL", "WAR"},
	{"WAR", "PRA"}, {"WAR", "BUD"},
	{"PRA", "VIE"},
	{"VIE", "BUD"}, {"VIE", "ZAG"},
	{"BUD", "BUC"},
	{"ZAG", "SOF"},
	{"BUC", "SOF"},
	{"SOF", "ATH"},
	{"MIL", "ATH"},
	{"DUB", "AMS"},
}

// GeantSpec returns the bundled 23-PoP Géant-like spec. The address plan
// allocates one /16 from 10.0.0.0/8 per customer in construction order
// (10.0/16, 10.1/16, ...), with the multihomed NREN ("SURFNET-MH", primary
// AMS, backup FRA) taking the next /14-aligned block after them.
func GeantSpec() Spec {
	spec := Spec{Name: "geant"}
	for _, nd := range geantNodes {
		spec.Nodes = append(spec.Nodes, Node{Name: nd.name, Lat: nd.lat, Lon: nd.lon})
	}
	const capacity = 10e9
	for _, adj := range geantAdjacency {
		spec.Links = append(spec.Links, LinkSpec{A: adj[0], B: adj[1], CapacityBps: capacity})
	}
	next := 0
	for _, nd := range geantNodes {
		for c := 0; c < nd.custs; c++ {
			pfx, err := ipaddr.NewPrefix(ipaddr.FromOctets(10, byte(next), 0, 0), 16)
			if err != nil {
				panic(err)
			}
			next++
			spec.Customers = append(spec.Customers, CustomerSpec{
				Name:     fmt.Sprintf("%s-NREN%d", nd.name, c),
				Homes:    []string{nd.name},
				Prefixes: []ipaddr.Prefix{pfx},
				Weight:   nd.scale * math.Pow(0.65, float64(c)),
			})
		}
	}
	mh, err := ipaddr.NewPrefix(ipaddr.FromOctets(10, 200, 0, 0), 14)
	if err != nil {
		panic(err)
	}
	spec.Customers = append(spec.Customers, CustomerSpec{
		Name:     "SURFNET-MH",
		Homes:    []string{"AMS", "FRA"},
		Prefixes: []ipaddr.Prefix{mh},
		Weight:   1.1,
	})
	return spec
}

// Geant constructs the bundled 23-PoP Géant-like topology.
func Geant() *Topology { return mustNew(GeantSpec()) }

// SyntheticMaxPoPs caps Synthetic backbones; 200 PoPs is a 40 000-wide OD
// matrix, already far beyond any research backbone.
const SyntheticMaxPoPs = 200

// Synthetic builds a deterministic random backbone of n PoPs (2 <= n <=
// SyntheticMaxPoPs): nodes scattered over a continental-scale coordinate
// box, a random spanning tree plus ~n/2 chords (so the graph is connected
// with realistic redundancy), distance-derived link weights, 2-4 customers
// per PoP with geometrically decaying weights, and one multihomed customer
// homed at PoPs 0 and 1. The same (n, seed) always yields the same
// topology, so scale-sweep experiments are reproducible.
//
// The address plan carves sequential /20s from 10.0.0.0/8 (4096 available;
// at most 200*4+1 are used), keeping every prefix resolvable under the
// 11-bit destination anonymization.
func Synthetic(n int, seed uint64) (*Topology, error) {
	if n < 2 || n > SyntheticMaxPoPs {
		return nil, fmt.Errorf("topology: synthetic size %d out of [2,%d]", n, SyntheticMaxPoPs)
	}
	rng := rand.New(rand.NewPCG(seed, 0x70B0))
	spec := Spec{Name: fmt.Sprintf("synthetic-%d", n)}
	for i := 0; i < n; i++ {
		spec.Nodes = append(spec.Nodes, Node{
			Name: fmt.Sprintf("P%03d", i),
			Lat:  25 + rng.Float64()*25,   // 25..50 N
			Lon:  -125 + rng.Float64()*60, // 125..65 W
		})
	}
	const capacity = 10e9
	type edge struct{ a, b int }
	seen := map[edge]bool{}
	addLink := func(a, b int) bool {
		if a == b {
			return false
		}
		if b < a {
			a, b = b, a
		}
		if seen[edge{a, b}] {
			return false
		}
		seen[edge{a, b}] = true
		spec.Links = append(spec.Links, LinkSpec{
			A: spec.Nodes[a].Name, B: spec.Nodes[b].Name, CapacityBps: capacity,
		})
		return true
	}
	// Random spanning tree: connect each node to a uniformly chosen earlier
	// node, guaranteeing connectivity.
	for i := 1; i < n; i++ {
		addLink(i, rng.IntN(i))
	}
	// Redundancy chords.
	for extra := n / 2; extra > 0; {
		if addLink(rng.IntN(n), rng.IntN(n)) {
			extra--
		}
	}
	nextPfx := 0
	alloc := func() ipaddr.Prefix {
		// Sequential /20s: 10.x.y.0/20 with (x, y) from the running index.
		pfx, err := ipaddr.NewPrefix(ipaddr.FromOctets(10, byte(nextPfx>>4), byte((nextPfx&0xF)<<4), 0), 20)
		if err != nil {
			panic(err)
		}
		nextPfx++
		return pfx
	}
	for i := 0; i < n; i++ {
		custs := 2 + rng.IntN(3)
		scale := 0.5 + rng.Float64()*1.5
		for c := 0; c < custs; c++ {
			spec.Customers = append(spec.Customers, CustomerSpec{
				Name:     fmt.Sprintf("%s-CUST%d", spec.Nodes[i].Name, c),
				Homes:    []string{spec.Nodes[i].Name},
				Prefixes: []ipaddr.Prefix{alloc()},
				Weight:   scale * math.Pow(0.65, float64(c)),
			})
		}
	}
	// One multihomed customer so ingress-shift anomalies stay expressible.
	spec.Customers = append(spec.Customers, CustomerSpec{
		Name:     "MULTI-0",
		Homes:    []string{spec.Nodes[0].Name, spec.Nodes[1].Name},
		Prefixes: []ipaddr.Prefix{alloc()},
		Weight:   1.0,
	})
	return New(spec)
}

// Ref is a serializable reference to a deterministically constructible
// topology: dataset files store a Ref instead of the whole topology and
// rebuild it on load. The zero Ref means Abilene.
type Ref struct {
	// Kind is "abilene" (or ""), "geant" or "synthetic".
	Kind string
	// N is the PoP count of a synthetic topology.
	N int
	// Seed drives synthetic construction (0 means 1).
	Seed uint64
}

// ParseRef parses "abilene", "geant", "synthetic:N" or "synthetic:N:seed".
func ParseRef(s string) (Ref, error) {
	switch {
	case s == "" || s == "abilene":
		return Ref{Kind: "abilene"}, nil
	case s == "geant":
		return Ref{Kind: "geant"}, nil
	case strings.HasPrefix(s, "synthetic:"):
		parts := strings.Split(s[len("synthetic:"):], ":")
		if len(parts) < 1 || len(parts) > 2 {
			return Ref{}, fmt.Errorf("topology: ref %q, want synthetic:N or synthetic:N:seed", s)
		}
		n, err := strconv.Atoi(parts[0])
		if err != nil {
			return Ref{}, fmt.Errorf("topology: ref %q: bad PoP count: %w", s, err)
		}
		r := Ref{Kind: "synthetic", N: n}
		if len(parts) == 2 {
			seed, err := strconv.ParseUint(parts[1], 10, 64)
			if err != nil {
				return Ref{}, fmt.Errorf("topology: ref %q: bad seed: %w", s, err)
			}
			r.Seed = seed
		}
		return r, nil
	default:
		return Ref{}, fmt.Errorf("topology: unknown ref %q (want abilene, geant or synthetic:N[:seed])", s)
	}
}

// String renders the ref in the form ParseRef accepts.
func (r Ref) String() string {
	switch r.Kind {
	case "", "abilene":
		return "abilene"
	case "geant":
		return "geant"
	case "synthetic":
		if r.Seed != 0 {
			return fmt.Sprintf("synthetic:%d:%d", r.N, r.Seed)
		}
		return fmt.Sprintf("synthetic:%d", r.N)
	default:
		return r.Kind
	}
}

// Build constructs the referenced topology.
func (r Ref) Build() (*Topology, error) {
	switch r.Kind {
	case "", "abilene":
		return Abilene(), nil
	case "geant":
		return Geant(), nil
	case "synthetic":
		seed := r.Seed
		if seed == 0 {
			seed = 1
		}
		return Synthetic(r.N, seed)
	default:
		return nil, fmt.Errorf("topology: unknown ref kind %q", r.Kind)
	}
}

// PoPWeight returns the gravity-model weight of PoP p (sum of primary-homed
// customer weights).
func (t *Topology) PoPWeight(p PoP) float64 { return t.popWeight[p] }

// TotalWeight returns the sum of all PoP weights.
func (t *Topology) TotalWeight() float64 {
	var s float64
	for _, w := range t.popWeight {
		s += w
	}
	return s
}

// Neighbors returns the PoPs adjacent to p along with the connecting link
// weights.
func (t *Topology) Neighbors(p PoP) []struct {
	PoP    PoP
	Weight float64
} {
	var out []struct {
		PoP    PoP
		Weight float64
	}
	for _, l := range t.Links {
		switch p {
		case l.A:
			out = append(out, struct {
				PoP    PoP
				Weight float64
			}{l.B, l.Weight})
		case l.B:
			out = append(out, struct {
				PoP    PoP
				Weight float64
			}{l.A, l.Weight})
		}
	}
	return out
}

// CustomerByName finds a customer; it returns nil if absent.
func (t *Topology) CustomerByName(name string) *Customer {
	for i := range t.Customers {
		if t.Customers[i].Name == name {
			return &t.Customers[i]
		}
	}
	return nil
}

// CustomersAt returns the customers whose primary home is p.
func (t *Topology) CustomersAt(p PoP) []*Customer {
	var out []*Customer
	for i := range t.Customers {
		if t.Customers[i].Homes[0] == p {
			out = append(out, &t.Customers[i])
		}
	}
	return out
}

// Multihomed returns the primary and secondary homes of the first
// multihomed customer, or ok=false when the topology has none.
func (t *Topology) Multihomed() (from, to PoP, ok bool) {
	for _, c := range t.Customers {
		if len(c.Homes) >= 2 {
			return c.Homes[0], c.Homes[1], true
		}
	}
	return 0, 0, false
}

// Validate checks structural invariants: PoP indexes in range, no self
// links, no duplicate links, connected backbone, customers non-empty with
// valid homes and non-overlapping prefixes. Every constructor (New, and
// through it Abilene, Geant and Synthetic) calls Validate, so a topology in
// circulation is always structurally sound.
func (t *Topology) Validate() error {
	n := len(t.nodes)
	if n == 0 {
		return fmt.Errorf("topology: %s has no nodes", t.Name)
	}
	inRange := func(p PoP) bool { return p >= 0 && int(p) < n }
	seen := map[[2]PoP]bool{}
	adj := make([][]PoP, n)
	for _, l := range t.Links {
		if !inRange(l.A) || !inRange(l.B) {
			return fmt.Errorf("topology: link %v has invalid PoP", l)
		}
		if l.A == l.B {
			return fmt.Errorf("topology: self link at %s", t.PoPName(l.A))
		}
		key := [2]PoP{l.A, l.B}
		if l.B < l.A {
			key = [2]PoP{l.B, l.A}
		}
		if seen[key] {
			return fmt.Errorf("topology: duplicate link %s-%s", t.PoPName(l.A), t.PoPName(l.B))
		}
		seen[key] = true
		if l.Weight <= 0 || l.CapacityBps <= 0 {
			return fmt.Errorf("topology: non-positive weight/capacity on %s-%s", t.PoPName(l.A), t.PoPName(l.B))
		}
		adj[l.A] = append(adj[l.A], l.B)
		adj[l.B] = append(adj[l.B], l.A)
	}
	// Connectivity (BFS from PoP 0).
	visited := make([]bool, n)
	queue := []PoP{0}
	visited[0] = true
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		for _, q := range adj[p] {
			if !visited[q] {
				visited[q] = true
				queue = append(queue, q)
			}
		}
	}
	for p, v := range visited {
		if !v {
			return fmt.Errorf("topology: PoP %s unreachable", t.PoPName(PoP(p)))
		}
	}
	if len(t.Customers) == 0 {
		return fmt.Errorf("topology: no customers")
	}
	for i := range t.Customers {
		c := &t.Customers[i]
		if len(c.Homes) == 0 {
			return fmt.Errorf("topology: customer %s has no homes", c.Name)
		}
		for _, h := range c.Homes {
			if !inRange(h) {
				return fmt.Errorf("topology: customer %s home invalid", c.Name)
			}
		}
		if len(c.Prefixes) == 0 {
			return fmt.Errorf("topology: customer %s has no prefixes", c.Name)
		}
		if c.Weight <= 0 {
			return fmt.Errorf("topology: customer %s non-positive weight", c.Name)
		}
		for j := 0; j < i; j++ {
			for _, p1 := range c.Prefixes {
				for _, p2 := range t.Customers[j].Prefixes {
					if p1.Overlaps(p2) {
						return fmt.Errorf("topology: customers %s and %s have overlapping prefixes", c.Name, t.Customers[j].Name)
					}
				}
			}
		}
	}
	return nil
}
