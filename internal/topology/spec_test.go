package topology

import (
	"crypto/sha256"
	"fmt"
	"math"
	"strings"
	"testing"

	"netwide/internal/ipaddr"
)

// abileneFingerprint hashes everything downstream layers consume from the
// topology: link endpoints, capacities and float-exact weights, customer
// names/homes/prefixes/weights, and the cached gravity PoP weights.
func topologyFingerprint(t *Topology) string {
	h := sha256.New()
	for _, l := range t.Links {
		fmt.Fprintf(h, "%d-%d cap=%x w=%x;", l.A, l.B, math.Float64bits(l.CapacityBps), math.Float64bits(l.Weight))
	}
	for _, c := range t.Customers {
		fmt.Fprintf(h, "%s homes=%v w=%x", c.Name, c.Homes, math.Float64bits(c.Weight))
		for _, p := range c.Prefixes {
			fmt.Fprintf(h, " %s", p)
		}
		fmt.Fprint(h, ";")
	}
	for p := 0; p < t.NumPoPs(); p++ {
		fmt.Fprintf(h, "pw%d=%x;", p, math.Float64bits(t.PoPWeight(PoP(p))))
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// TestAbileneByteIdentical pins the Spec-driven constructor to the exact
// output of the pre-refactor hardcoded Abilene: same link weights to the
// last float bit, same customers, same gravity weights. The golden hash was
// captured from the original implementation.
func TestAbileneByteIdentical(t *testing.T) {
	const golden = "6bed1de162ce3a0e9a5cd6c2fb4f63cb8196b5ab4b1462a35b6ce6f63c0b8b3d"
	if got := topologyFingerprint(Abilene()); got != golden {
		t.Fatalf("Abilene fingerprint drifted:\n got  %s\n want %s", got, golden)
	}
}

func TestGeant(t *testing.T) {
	top := Geant()
	if top.NumPoPs() != 23 {
		t.Fatalf("geant has %d PoPs, want 23", top.NumPoPs())
	}
	if top.NumODPairs() != 23*23 {
		t.Fatalf("geant OD width %d", top.NumODPairs())
	}
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := top.Multihomed(); !ok {
		t.Fatal("geant must have a multihomed customer for ingress shifts")
	}
	p, err := top.PoPByName("AMS")
	if err != nil {
		t.Fatal(err)
	}
	if top.PoPName(p) != "AMS" {
		t.Fatalf("PoPName round trip gave %q", top.PoPName(p))
	}
	if got := top.ODName(ODPair{Origin: p, Dest: p + 1}); !strings.HasPrefix(got, "AMS->") {
		t.Fatalf("ODName %q", got)
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a, err := Synthetic(40, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthetic(40, 7)
	if err != nil {
		t.Fatal(err)
	}
	if fa, fb := topologyFingerprint(a), topologyFingerprint(b); fa != fb {
		t.Fatal("Synthetic(40, 7) is not deterministic")
	}
	c, err := Synthetic(40, 8)
	if err != nil {
		t.Fatal(err)
	}
	if topologyFingerprint(a) == topologyFingerprint(c) {
		t.Fatal("different seeds produced identical topologies")
	}
	if a.NumPoPs() != 40 {
		t.Fatalf("NumPoPs %d", a.NumPoPs())
	}
	if _, _, ok := a.Multihomed(); !ok {
		t.Fatal("synthetic topologies must keep a multihomed customer")
	}
}

func TestSyntheticBounds(t *testing.T) {
	if _, err := Synthetic(1, 1); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := Synthetic(SyntheticMaxPoPs+1, 1); err == nil {
		t.Fatal("oversized synthetic accepted")
	}
	top, err := Synthetic(SyntheticMaxPoPs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestNewValidates covers the bugfix that constructors must run Validate:
// malformed specs are rejected with errors instead of being accepted
// silently.
func TestNewValidates(t *testing.T) {
	pfx := func(b byte) ipaddr.Prefix {
		p, err := ipaddr.NewPrefix(ipaddr.FromOctets(10, b, 0, 0), 16)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	base := Spec{
		Name:  "t",
		Nodes: []Node{{Name: "A"}, {Name: "B"}},
		Links: []LinkSpec{{A: "A", B: "B", CapacityBps: 1e9, Weight: 10}},
		Customers: []CustomerSpec{
			{Name: "c0", Homes: []string{"A"}, Prefixes: []ipaddr.Prefix{pfx(0)}, Weight: 1},
			{Name: "c1", Homes: []string{"B"}, Prefixes: []ipaddr.Prefix{pfx(1)}, Weight: 1},
		},
	}
	if _, err := New(base); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"unknown link node", func(s *Spec) { s.Links[0].B = "Z" }},
		{"duplicate node", func(s *Spec) { s.Nodes = append(s.Nodes, Node{Name: "A"}) }},
		{"self link", func(s *Spec) { s.Links[0].B = "A" }},
		{"negative weight link", func(s *Spec) { s.Links[0].Weight = -1 }},
		{"disconnected", func(s *Spec) {
			s.Nodes = append(s.Nodes, Node{Name: "C"})
		}},
		{"customer without prefixes", func(s *Spec) { s.Customers[0].Prefixes = nil }},
		{"customer without homes", func(s *Spec) { s.Customers[0].Homes = nil }},
		{"overlapping prefixes", func(s *Spec) { s.Customers[1].Prefixes = []ipaddr.Prefix{pfx(0)} }},
		{"no customers", func(s *Spec) { s.Customers = nil }},
		{"no nodes", func(s *Spec) { s.Nodes = nil }},
	}
	for _, tc := range cases {
		spec := Spec{
			Name:  base.Name,
			Nodes: append([]Node(nil), base.Nodes...),
			Links: append([]LinkSpec(nil), base.Links...),
			Customers: []CustomerSpec{
				{Name: "c0", Homes: []string{"A"}, Prefixes: []ipaddr.Prefix{pfx(0)}, Weight: 1},
				{Name: "c1", Homes: []string{"B"}, Prefixes: []ipaddr.Prefix{pfx(1)}, Weight: 1},
			},
		}
		tc.mutate(&spec)
		if _, err := New(spec); err == nil {
			t.Errorf("%s: malformed spec accepted", tc.name)
		}
	}
}

func TestRefParseRoundTrip(t *testing.T) {
	for _, s := range []string{"abilene", "geant", "synthetic:50", "synthetic:50:9"} {
		ref, err := ParseRef(s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if ref.String() != s {
			t.Fatalf("round trip %q -> %q", s, ref.String())
		}
		if _, err := ref.Build(); err != nil {
			t.Fatalf("build %s: %v", s, err)
		}
	}
	if ref, err := ParseRef(""); err != nil || ref.Kind != "abilene" {
		t.Fatalf("empty ref: %v %v", ref, err)
	}
	for _, s := range []string{"atlantis", "synthetic:", "synthetic:x", "synthetic:10:x", "synthetic:1:2:3"} {
		if _, err := ParseRef(s); err == nil {
			t.Fatalf("%q accepted", s)
		}
	}
	if _, err := (Ref{Kind: "synthetic", N: 0}).Build(); err == nil {
		t.Fatal("synthetic:0 built")
	}
}
