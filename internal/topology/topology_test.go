package topology

import (
	"testing"
	"testing/quick"
)

func TestAbileneValid(t *testing.T) {
	top := Abilene()
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAbileneShape(t *testing.T) {
	top := Abilene()
	if len(top.Links) != 14 {
		t.Fatalf("links=%d, want 14 (2003 Abilene backbone)", len(top.Links))
	}
	if NumODPairs != 121 {
		t.Fatalf("NumODPairs=%d, want 121", NumODPairs)
	}
	// Every PoP has at least one customer.
	for p := PoP(0); p < NumPoPs; p++ {
		if len(top.CustomersAt(p)) == 0 {
			t.Fatalf("PoP %s has no customers", p)
		}
		if top.PoPWeight(p) <= 0 {
			t.Fatalf("PoP %s weight %v", p, top.PoPWeight(p))
		}
	}
}

func TestMultihomedCustomer(t *testing.T) {
	top := Abilene()
	c := top.CustomerByName("CALREN")
	if c == nil {
		t.Fatal("CALREN missing")
	}
	if len(c.Homes) != 2 || c.Homes[0] != LOSA || c.Homes[1] != SNVA {
		t.Fatalf("CALREN homes = %v, want [LOSA SNVA]", c.Homes)
	}
	if top.CustomerByName("NOPE") != nil {
		t.Fatal("unknown customer resolved")
	}
}

func TestPoPStringParse(t *testing.T) {
	for p := PoP(0); p < NumPoPs; p++ {
		got, err := ParsePoP(p.String())
		if err != nil {
			t.Fatal(err)
		}
		if got != p {
			t.Fatalf("ParsePoP(%s) = %v", p, got)
		}
	}
	if _, err := ParsePoP("XXXX"); err == nil {
		t.Fatal("unknown code accepted")
	}
	if PoP(99).String() != "PoP(99)" {
		t.Fatalf("out-of-range String = %s", PoP(99))
	}
	if PoP(-1).Valid() || PoP(NumPoPs).Valid() {
		t.Fatal("Valid() wrong at boundaries")
	}
}

func TestODPairIndexRoundTrip(t *testing.T) {
	f := func(raw uint8) bool {
		i := int(raw) % NumODPairs
		od := ODPairFromIndex(i)
		return od.Index() == i && od.Origin.Valid() && od.Dest.Valid()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
	od := ODPair{Origin: LOSA, Dest: NYCM}
	if od.String() != "LOSA->NYCM" {
		t.Fatalf("String = %s", od)
	}
}

func TestNeighborsSymmetric(t *testing.T) {
	top := Abilene()
	for p := PoP(0); p < NumPoPs; p++ {
		for _, nb := range top.Neighbors(p) {
			found := false
			for _, back := range top.Neighbors(nb.PoP) {
				if back.PoP == p && back.Weight == nb.Weight {
					found = true
				}
			}
			if !found {
				t.Fatalf("asymmetric adjacency %s <-> %s", p, nb.PoP)
			}
		}
	}
	// Degree spot checks against the 2003 map.
	if len(top.Neighbors(KSCY)) != 3 {
		t.Fatalf("KSCY degree %d, want 3", len(top.Neighbors(KSCY)))
	}
	if len(top.Neighbors(LOSA)) != 2 {
		t.Fatalf("LOSA degree %d, want 2", len(top.Neighbors(LOSA)))
	}
}

func TestLinkWeightsLookPhysical(t *testing.T) {
	top := Abilene()
	for _, l := range top.Links {
		// Great-circle distances between these cities are 400-2000 km.
		if l.Weight < 200 || l.Weight > 3000 {
			t.Fatalf("link %s-%s weight %v km implausible", l.A, l.B, l.Weight)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	mk := func(mutate func(*Topology)) error {
		top := Abilene()
		mutate(top)
		return top.Validate()
	}
	if err := mk(func(tp *Topology) { tp.Links[0].B = tp.Links[0].A }); err == nil {
		t.Fatal("self link accepted")
	}
	if err := mk(func(tp *Topology) { tp.Links = append(tp.Links, tp.Links[0]) }); err == nil {
		t.Fatal("duplicate link accepted")
	}
	if err := mk(func(tp *Topology) { tp.Links = tp.Links[:4] }); err == nil {
		t.Fatal("disconnected backbone accepted")
	}
	if err := mk(func(tp *Topology) { tp.Customers[0].Weight = 0 }); err == nil {
		t.Fatal("zero-weight customer accepted")
	}
	if err := mk(func(tp *Topology) { tp.Customers[1].Prefixes = tp.Customers[0].Prefixes }); err == nil {
		t.Fatal("overlapping prefixes accepted")
	}
	if err := mk(func(tp *Topology) { tp.Customers[0].Homes = nil }); err == nil {
		t.Fatal("homeless customer accepted")
	}
}
