// Package engine is the single shared implementation of the subspace
// detection model. Every detection path in the repository — the batch
// analysis (core.Analyze), the one-vector-at-a-time online detector
// (core.OnlineDetector) and the concurrent streaming pipeline
// (stream.Pipeline) — is an adapter over one *Model fitted here.
//
// A Model is an immutable generation of the method's state: the PCA of a
// training window (full Jacobi eigendecomposition where affordable, block
// subspace iteration on wide OD matrices), the Jackson–Mudholkar Q
// threshold and the Hotelling T² control limit derived from it, and the
// cached normal-subspace basis used by batch scoring. Refit produces the
// next generation from a new training window, warm-starting the partial
// PCA from the previous generation's basis: nightly refits of
// slowly-drifting traffic start next to the fixed point of the subspace
// iteration and converge in a couple of sweeps instead of from scratch.
package engine

import (
	"errors"
	"fmt"
	"math"

	"netwide/internal/mat"
	"netwide/internal/stats"
)

// Options configures the subspace method.
type Options struct {
	// K is the dimension of the normal subspace. The paper uses 4.
	K int
	// Alpha is the false-alarm rate of both thresholds; the paper computes
	// thresholds at the 99.9% confidence level (alpha = 0.001).
	Alpha float64
}

// DefaultOptions returns the paper's parameters (k = 4, 99.9% confidence).
func DefaultOptions() Options { return Options{K: 4, Alpha: 0.001} }

// StatKind identifies which statistic raised an alarm.
type StatKind int

// The two detection statistics.
const (
	StatSPE StatKind = iota // squared prediction error (Q-statistic)
	StatT2                  // Hotelling T² in the normal subspace
)

// String names the statistic.
func (s StatKind) String() string {
	switch s {
	case StatSPE:
		return "SPE"
	case StatT2:
		return "T2"
	default:
		return fmt.Sprintf("StatKind(%d)", int(s))
	}
}

// Alarm is one timebin flagged by one statistic.
type Alarm struct {
	Bin   int
	Stat  StatKind
	Value float64 // the statistic's value at the bin
	Limit float64 // the threshold it exceeded
}

// Point is the verdict for one scored traffic vector.
type Point struct {
	SPE      float64
	T2       float64
	SPEAlarm bool
	T2Alarm  bool
	// TopResidualOD is the OD (column) with the largest squared residual —
	// the first flow an operator should look at when either alarm fires.
	TopResidualOD int
}

// MaxFullPCAVars is the OD-matrix width beyond which Fit abandons the full
// O(p³) Jacobi eigendecomposition for the partial subspace-iteration fit.
// 512 keeps the reference Abilene path (p = 121) and every similarly sized
// topology on the exact full fit while making 100+-PoP synthetic backbones
// (p = 10⁴⁺) tractable.
const MaxFullPCAVars = 512

// Model is one immutable generation of the fitted subspace model: PCA,
// both detection thresholds, and the cached normal-subspace basis. All
// methods are safe for concurrent use; refitting returns a new Model
// rather than mutating the receiver, so scoring paths can hold one behind
// an atomic pointer.
type Model struct {
	opts    Options
	pca     *mat.PCA
	qLimit  float64
	t2Limit float64
	// vk (p x k) holds the normal-subspace axes extracted once at fit
	// time; vkT is its transpose. Batch scoring applies them as two dense
	// products instead of per-element Components.At lookups.
	vk, vkT *mat.Matrix
	gen     uint64
	// updates counts the per-bin incremental updates folded into this
	// model since generation gen was fitted — 0 for every batch fit or
	// refit, incremented by IncrementalUpdater per published bin.
	updates uint64
	// train is the training window the model was fitted on, retained (as a
	// reference, not a copy — fits clone internally) so callers can reuse
	// it: the streaming pipeline seeds its rolling refit windows from it.
	train *mat.Matrix
}

// Fit trains generation 0 of the model on a training matrix (rows =
// timebins, cols = OD flows), which should be anomaly-light; as in the
// batch method, moderate contamination only inflates the thresholds
// slightly. Matrices wider than MaxFullPCAVars (or with fewer timebins
// than flows) are fitted via the partial-PCA path.
func Fit(train *mat.Matrix, opts Options) (*Model, error) {
	return fit(train, opts, nil, 0)
}

// Refit fits the next generation of the model on a new training window,
// keeping the options. When the model sits on the partial-PCA path, the
// subspace iteration is warm-started from the receiver's basis. The
// receiver is not modified. Unlike Fit, the new generation does not
// retain the window: refit windows are throwaway snapshots, and pinning
// one per generation would hold a dead Window x p matrix per lane for
// the lifetime of the model.
func (m *Model) Refit(train *mat.Matrix) (*Model, error) {
	next, err := fit(train, m.opts, m.pca, m.gen+1)
	if err != nil {
		return nil, err
	}
	next.train = nil
	return next, nil
}

// fitPCA picks the PCA strategy for an n x p traffic matrix: the exact
// full fit where it is affordable and statistically possible (p small and
// n > p, the paper's regime), otherwise a partial fit of the top 2k+8
// axes — several times the k the method consumes, which pins down the head
// of the residual spectrum; the flat-tail model in ResidualMoments covers
// the rest of the Q-threshold inputs. A previous generation's PCA, when
// given, warm-starts the partial iteration.
func fitPCA(X *mat.Matrix, k int, warm *mat.PCA) (*mat.PCA, error) {
	n, p := X.Rows(), X.Cols()
	if p <= MaxFullPCAVars && n > p {
		return mat.FitPCA(X, true)
	}
	m := 2*k + 8
	if m > p {
		m = p
	}
	var basis *mat.Matrix
	if warm != nil && warm.P() == p {
		basis = warm.Components
	}
	return mat.FitPCAPartialWarm(X, m, true, basis)
}

func fit(train *mat.Matrix, opts Options, warm *mat.PCA, gen uint64) (*Model, error) {
	n, p := train.Rows(), train.Cols()
	if opts.K <= 0 || opts.K >= p {
		return nil, fmt.Errorf("engine: k=%d out of range (0,%d)", opts.K, p)
	}
	if !(opts.Alpha > 0 && opts.Alpha < 1) {
		return nil, fmt.Errorf("engine: alpha=%v out of (0,1)", opts.Alpha)
	}
	if n <= opts.K {
		return nil, fmt.Errorf("engine: training needs more than k=%d timebins, have %d", opts.K, n)
	}
	pca, err := fitPCA(train, opts.K, warm)
	if err != nil {
		return nil, err
	}
	phi1, phi2, phi3 := pca.ResidualMoments(opts.K)
	qLimit, err := stats.QThresholdFromMoments(phi1, phi2, phi3, opts.Alpha)
	if err != nil {
		return nil, fmt.Errorf("engine: Q threshold: %w", err)
	}
	t2Limit, err := stats.T2Threshold(opts.K, n, opts.Alpha)
	if err != nil {
		return nil, fmt.Errorf("engine: T2 threshold: %w", err)
	}
	vk := pca.TopComponents(opts.K)
	return &Model{
		opts: opts, pca: pca,
		qLimit: qLimit, t2Limit: t2Limit,
		vk: vk, vkT: vk.T(),
		gen: gen, train: train,
	}, nil
}

// ModelState is the serializable form of one model generation: everything
// Restore needs to reassemble a scoring-equivalent *Model in a fresh
// process — the fitted PCA (mean, spectrum, axes), both detection
// thresholds, and the generation counter. It is plain data (gob/JSON
// friendly) by construction; the retained training window is deliberately
// excluded (the streaming pipeline checkpoints its rolling refit window
// separately, which is the live superset).
type ModelState struct {
	Opts Options
	Gen  uint64
	// Updates is the number of per-bin incremental updates folded into
	// this generation (0 under the refit lifecycle).
	Updates uint64
	// QLimit and T2Limit are stored rather than recomputed: the T²
	// threshold depends on the training row count and the Q threshold on
	// the residual spectrum model, and a restored model must alarm exactly
	// as the checkpointed one did.
	QLimit, T2Limit float64
	// N is the observation count of the fit, TotalVar the covariance
	// trace — both feed the residual-moment model of the NEXT refit.
	N        int
	TotalVar float64
	Mean     []float64
	// Eigenvalues pair with Components' columns; Components holds the
	// component matrix as p rows of m coefficients.
	Eigenvalues []float64
	Components  [][]float64
}

// State captures the model as plain serializable data. The slices are
// copies: the state stays valid however long the caller holds it, and a
// later mutation of the state cannot reach back into the (immutable,
// possibly still scoring) model.
func (m *Model) State() ModelState {
	p := m.pca.P()
	st := ModelState{
		Opts:        m.opts,
		Gen:         m.gen,
		Updates:     m.updates,
		QLimit:      m.qLimit,
		T2Limit:     m.t2Limit,
		N:           m.pca.N(),
		TotalVar:    m.pca.TotalVar,
		Mean:        append([]float64(nil), m.pca.Mean...),
		Eigenvalues: append([]float64(nil), m.pca.Eigenvalues...),
		Components:  make([][]float64, p),
	}
	for i := 0; i < p; i++ {
		st.Components[i] = append([]float64(nil), m.pca.Components.RowView(i)...)
	}
	return st
}

// Restore reassembles a Model from a State captured by State — the crash
// recovery path. The state is untrusted input (it crossed a disk): every
// shape and value is validated before it can reach a scoring path, and a
// state that fails validation returns a descriptive error rather than a
// model that panics later. The restored model scores bit-identically to
// the checkpointed generation (same mean, axes, eigenvalues, thresholds)
// and refits warm-start from its basis exactly as the original would.
func Restore(st ModelState) (*Model, error) {
	p := len(st.Mean)
	if p == 0 {
		return nil, errors.New("engine: restore: empty mean")
	}
	if st.Opts.K <= 0 || st.Opts.K >= p {
		return nil, fmt.Errorf("engine: restore: k=%d out of range (0,%d)", st.Opts.K, p)
	}
	if !(st.Opts.Alpha > 0 && st.Opts.Alpha < 1) {
		return nil, fmt.Errorf("engine: restore: alpha=%v out of (0,1)", st.Opts.Alpha)
	}
	if st.Opts.K > len(st.Eigenvalues) {
		return nil, fmt.Errorf("engine: restore: k=%d exceeds %d stored axes", st.Opts.K, len(st.Eigenvalues))
	}
	if len(st.Components) != p {
		return nil, fmt.Errorf("engine: restore: %d component rows, want %d", len(st.Components), p)
	}
	for i, row := range st.Components {
		if len(row) != len(st.Eigenvalues) {
			return nil, fmt.Errorf("engine: restore: component row %d has %d cols, want %d", i, len(row), len(st.Eigenvalues))
		}
		for _, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("engine: restore: non-finite component in row %d", i)
			}
		}
	}
	for _, v := range st.Mean {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, errors.New("engine: restore: non-finite mean")
		}
	}
	if !(st.QLimit > 0) || math.IsInf(st.QLimit, 0) {
		return nil, fmt.Errorf("engine: restore: Q limit %v not a positive finite threshold", st.QLimit)
	}
	if !(st.T2Limit > 0) || math.IsInf(st.T2Limit, 0) {
		return nil, fmt.Errorf("engine: restore: T2 limit %v not a positive finite threshold", st.T2Limit)
	}
	comps, err := mat.NewFromRows(st.Components)
	if err != nil {
		return nil, fmt.Errorf("engine: restore: components: %w", err)
	}
	pca, err := mat.NewPCA(st.Mean, st.Eigenvalues, comps, st.TotalVar, st.N)
	if err != nil {
		return nil, fmt.Errorf("engine: restore: %w", err)
	}
	vk := pca.TopComponents(st.Opts.K)
	return &Model{
		opts: st.Opts, pca: pca,
		qLimit: st.QLimit, t2Limit: st.T2Limit,
		vk: vk, vkT: vk.T(),
		gen: st.Gen, updates: st.Updates,
	}, nil
}

// P returns the number of OD flows (vector length) the model scores.
func (m *Model) P() int { return m.pca.P() }

// Opts returns the options the model was fitted with.
func (m *Model) Opts() Options { return m.opts }

// Gen returns the model generation: 0 for Fit, incremented by each Refit.
func (m *Model) Gen() uint64 { return m.gen }

// Updates returns the number of per-bin incremental updates folded into
// this generation (0 for batch fits and refits).
func (m *Model) Updates() uint64 { return m.updates }

// Limits returns the (Q, T²) thresholds of this generation.
func (m *Model) Limits() (qLimit, t2Limit float64) { return m.qLimit, m.t2Limit }

// PCA exposes the fitted principal component analysis.
func (m *Model) PCA() *mat.PCA { return m.pca }

// Train returns the training window the model was fitted on — the
// caller's matrix, not a copy; treat it as read-only. Only generation 0
// retains its window (the streaming pipeline seeds refit rings from it);
// Refit generations return nil.
func (m *Model) Train() *mat.Matrix { return m.train }

// ReleaseTrain drops the retained training window. Adapters that never
// read Train (the serial online detector, the batch analysis) call it so
// a long-lived model does not pin a transient training matrix.
func (m *Model) ReleaseTrain() { m.train = nil }

// Score evaluates one traffic vector x (length = number of OD flows).
func (m *Model) Score(x []float64) (Point, error) {
	p := m.pca.P()
	if len(x) != p {
		return Point{}, fmt.Errorf("engine: vector length %d, want %d", len(x), p)
	}
	// Center.
	xc := make([]float64, p)
	for i, v := range x {
		xc[i] = v - m.pca.Mean[i]
	}
	// Scores on the top-k axes and T².
	var pt Point
	proj := make([]float64, p) // modeled part accumulated across axes
	for i := 0; i < m.opts.K; i++ {
		var s float64
		for f := 0; f < p; f++ {
			s += xc[f] * m.pca.Components.At(f, i)
		}
		if l := m.pca.Eigenvalues[i]; l > 0 {
			pt.T2 += s * s / l
		}
		for f := 0; f < p; f++ {
			proj[f] += s * m.pca.Components.At(f, i)
		}
	}
	best, bestSq := 0, 0.0
	for f := 0; f < p; f++ {
		r := xc[f] - proj[f]
		sq := r * r
		pt.SPE += sq
		if sq > bestSq {
			best, bestSq = f, sq
		}
	}
	pt.TopResidualOD = best
	pt.SPEAlarm = pt.SPE > m.qLimit
	pt.T2Alarm = pt.T2 > m.t2Limit
	return pt, nil
}

// ScoreBatch evaluates a batch of traffic vectors in one pass, appending
// the verdicts to dst (which may be nil) and returning it. The batch is
// staged as an m x p matrix so the subspace projection becomes two dense
// products on the cached normal-subspace basis — tight slice loops instead
// of Score's per-element accessor arithmetic, and parallel across
// mat.Workers() goroutines when the batch is large enough. Results are in
// input order and numerically identical to scoring each vector alone.
func (m *Model) ScoreBatch(xs [][]float64, dst []Point) ([]Point, error) {
	n := len(xs)
	if n == 0 {
		return dst, nil
	}
	p, k := m.pca.P(), m.opts.K
	xc := mat.New(n, p)
	for i, x := range xs {
		if len(x) != p {
			return dst, fmt.Errorf("engine: batch vector %d length %d, want %d", i, len(x), p)
		}
		row := xc.RowView(i)
		for f, v := range x {
			row[f] = v - m.pca.Mean[f]
		}
	}
	scores := mat.Mul(xc, m.vk)    // n x k: coordinates in the normal subspace
	proj := mat.Mul(scores, m.vkT) // n x p: modeled part of each vector
	for i := 0; i < n; i++ {
		var pt Point
		srow := scores.RowView(i)
		for j := 0; j < k; j++ {
			if l := m.pca.Eigenvalues[j]; l > 0 {
				pt.T2 += srow[j] * srow[j] / l
			}
		}
		xrow, prow := xc.RowView(i), proj.RowView(i)
		best, bestSq := 0, 0.0
		for f, v := range xrow {
			r := v - prow[f]
			sq := r * r
			pt.SPE += sq
			if sq > bestSq {
				best, bestSq = f, sq
			}
		}
		pt.TopResidualOD = best
		pt.SPEAlarm = pt.SPE > m.qLimit
		pt.T2Alarm = pt.T2 > m.t2Limit
		dst = append(dst, pt)
	}
	return dst, nil
}

// Split decomposes one traffic vector into its modeled (normal-subspace
// projection) and residual parts, both in the centered coordinate frame —
// the per-vector form of PCA.ProjectionSplit, used by live anomaly
// attribution. The products run in the same order as ScoreBatch, so the
// residual is bit-identical to the batch analysis residual of the same
// vector under the same model.
func (m *Model) Split(x []float64) (modeled, residual []float64, err error) {
	p := m.pca.P()
	if len(x) != p {
		return nil, nil, fmt.Errorf("engine: vector length %d, want %d", len(x), p)
	}
	xc := mat.New(1, p)
	row := xc.RowView(0)
	for f, v := range x {
		row[f] = v - m.pca.Mean[f]
	}
	scores := mat.Mul(xc, m.vk)
	proj := mat.Mul(scores, m.vkT)
	modeled = proj.RowView(0)
	residual = make([]float64, p)
	for f, v := range row {
		residual[f] = v - modeled[f]
	}
	return modeled, residual, nil
}
