package engine

import (
	"math"
	"math/rand/v2"
	"testing"

	"netwide/internal/mat"
)

// synthTraffic builds an n x p traffic-like matrix: a few shared temporal
// patterns (diurnal plus slower weekly structure) with per-flow loadings
// and noise, so the covariance has the fast spectral decay of gravity-model
// OD traffic.
func synthTraffic(rng *rand.Rand, n, p int, noise float64) *mat.Matrix {
	m := mat.New(n, p)
	load1 := make([]float64, p)
	load2 := make([]float64, p)
	for j := 0; j < p; j++ {
		load1[j] = 1 + rng.Float64()*3
		load2[j] = rng.Float64() * 2
	}
	for i := 0; i < n; i++ {
		daily := math.Sin(2 * math.Pi * float64(i) / 288)
		weekly := math.Sin(2 * math.Pi * float64(i) / 2016)
		row := m.RowView(i)
		for j := range row {
			row[j] = 100 + 40*daily*load1[j] + 15*weekly*load2[j] + noise*rng.NormFloat64()
		}
	}
	return m
}

func TestFitValidation(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	train := synthTraffic(rng, 200, 8, 1)
	if _, err := Fit(train, Options{K: 0, Alpha: 0.001}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := Fit(train, Options{K: 8, Alpha: 0.001}); err == nil {
		t.Fatal("k=p accepted")
	}
	if _, err := Fit(train, Options{K: 4, Alpha: 2}); err == nil {
		t.Fatal("alpha=2 accepted")
	}
	if _, err := Fit(synthTraffic(rng, 4, 8, 1), Options{K: 4, Alpha: 0.001}); err == nil {
		t.Fatal("n<=k accepted")
	}
	// n <= p trains through the partial-PCA path (wide OD matrices).
	if _, err := Fit(synthTraffic(rng, 6, 8, 1), Options{K: 4, Alpha: 0.001}); err != nil {
		t.Fatalf("wide training matrix rejected: %v", err)
	}
}

func TestScoreBatchMatchesScore(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	train := synthTraffic(rng, 400, 10, 2)
	m, err := Fit(train, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var xs [][]float64
	var want []Point
	for bin := 0; bin < 48; bin++ {
		x := train.Row(bin * 8)
		if bin == 17 {
			x[3] += 700
		}
		xs = append(xs, x)
		pt, err := m.Score(x)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, pt)
	}
	got, err := m.ScoreBatch(xs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if math.Abs(got[i].SPE-want[i].SPE) > 1e-9*(1+want[i].SPE) ||
			got[i].SPEAlarm != want[i].SPEAlarm || got[i].T2Alarm != want[i].T2Alarm ||
			got[i].TopResidualOD != want[i].TopResidualOD {
			t.Fatalf("point %d: batch %+v, serial %+v", i, got[i], want[i])
		}
	}
}

func TestSplitReconstructsVector(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	train := synthTraffic(rng, 300, 12, 2)
	m, err := Fit(train, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	x := train.Row(100)
	x[7] += 300
	modeled, residual, err := m.Split(x)
	if err != nil {
		t.Fatal(err)
	}
	// modeled + residual must reconstruct the centered vector, and the SPE
	// implied by the residual must match Score.
	pt, err := m.Score(x)
	if err != nil {
		t.Fatal(err)
	}
	var spe float64
	for f := range residual {
		xc := x[f] - m.PCA().Mean[f]
		if math.Abs(modeled[f]+residual[f]-xc) > 1e-9*(1+math.Abs(xc)) {
			t.Fatalf("flow %d: modeled %v + residual %v != centered %v", f, modeled[f], residual[f], xc)
		}
		spe += residual[f] * residual[f]
	}
	if math.Abs(spe-pt.SPE) > 1e-9*(1+pt.SPE) {
		t.Fatalf("Split SPE %v, Score SPE %v", spe, pt.SPE)
	}
	if _, _, err := m.Split(make([]float64, 3)); err == nil {
		t.Fatal("short vector accepted")
	}
}

// TestRefitGenerationsAndImmutability: Refit returns a new model with the
// next generation and leaves the receiver untouched.
func TestRefitGenerationsAndImmutability(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	trainA := synthTraffic(rng, 300, 8, 1)
	m0, err := Fit(trainA, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if m0.Gen() != 0 {
		t.Fatalf("initial generation %d, want 0", m0.Gen())
	}
	q0, t20 := m0.Limits()
	// A much noisier regime: the refit must raise the Q threshold.
	trainB := synthTraffic(rng, 300, 8, 20)
	m1, err := m0.Refit(trainB)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Gen() != 1 {
		t.Fatalf("refit generation %d, want 1", m1.Gen())
	}
	q1, _ := m1.Limits()
	if q1 <= q0 {
		t.Fatalf("refit on noisier data should raise Q: %v <= %v", q1, q0)
	}
	if q, t2 := m0.Limits(); q != q0 || t2 != t20 {
		t.Fatal("Refit mutated the receiver")
	}
	if m0.Train() != trainA {
		t.Fatal("generation 0 does not retain its training window")
	}
	if m1.Train() != nil {
		t.Fatal("refit generation pinned its throwaway window")
	}
}

// warmCase exercises the warm-started refit on the partial-PCA path at one
// (n, p) scale: the warm fit must agree with a cold fit of the same window
// within tolerance, on thresholds and on the scores it assigns.
func warmCase(t *testing.T, n, p int) {
	t.Helper()
	rng := rand.New(rand.NewPCG(uint64(n), uint64(p)))
	winA := synthTraffic(rng, n, p, 2)
	m0, err := Fit(winA, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if m0.PCA().NumComputed() >= p && p > MaxFullPCAVars {
		t.Fatalf("p=%d expected the partial-PCA path", p)
	}
	// Drift the window slightly — the nightly-refit regime.
	winB := winA.Clone()
	for i := 0; i < n; i++ {
		row := winB.RowView(i)
		for j := range row {
			row[j] *= 1 + 0.02*math.Sin(float64(i+j))
		}
	}
	warm, err := m0.Refit(winB)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Fit(winB, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	qw, t2w := warm.Limits()
	qc, t2c := cold.Limits()
	if math.Abs(qw-qc) > 1e-3*qc || math.Abs(t2w-t2c) > 1e-6*t2c {
		t.Fatalf("warm limits (%v,%v) differ from cold (%v,%v)", qw, t2w, qc, t2c)
	}
	for bin := 0; bin < n; bin += n / 7 {
		x := winB.Row(bin)
		pw, err := warm.Score(x)
		if err != nil {
			t.Fatal(err)
		}
		pc, err := cold.Score(x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(pw.SPE-pc.SPE) > 1e-4*(1+pc.SPE) || math.Abs(pw.T2-pc.T2) > 1e-4*(1+pc.T2) {
			t.Fatalf("bin %d: warm scores (%v,%v), cold (%v,%v)", bin, pw.SPE, pw.T2, pc.SPE, pc.T2)
		}
	}
}

// TestWarmRefitAgreesWithCold checks warm-vs-cold agreement at the two
// partial-path scales the acceptance criteria name: the 23-PoP Géant
// backbone (529 OD pairs) and a 50-PoP synthetic backbone (2500 OD pairs).
func TestWarmRefitAgreesWithCold(t *testing.T) {
	t.Run("geant", func(t *testing.T) { warmCase(t, 700, 529) })
	t.Run("synthetic50", func(t *testing.T) { warmCase(t, 400, 2500) })
}
