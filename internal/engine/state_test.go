package engine

import (
	"bytes"
	"encoding/gob"
	"math"
	"math/rand/v2"
	"testing"
)

// TestStateRestoreScoresIdentically pins the checkpoint/restore contract at
// the model layer: a model rebuilt from its serialized State must score
// every vector bit-identically to the original — same statistics, same
// alarms, same top-residual OD — and report the same generation and
// thresholds. The state additionally survives a gob round trip, which is
// how the checkpoint envelope actually carries it.
func TestStateRestoreScoresIdentically(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	train := synthTraffic(rng, 400, 12, 2)
	m, err := Fit(train, Options{K: 4, Alpha: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	// Advance a generation so Gen survival is non-trivially pinned.
	m2, err := m.Refit(synthTraffic(rng, 400, 12, 2))
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m2.State()); err != nil {
		t.Fatal(err)
	}
	var st ModelState
	if err := gob.NewDecoder(&buf).Decode(&st); err != nil {
		t.Fatal(err)
	}
	r, err := Restore(st)
	if err != nil {
		t.Fatal(err)
	}

	if r.Gen() != m2.Gen() || r.Gen() != 1 {
		t.Fatalf("restored gen %d, want %d", r.Gen(), m2.Gen())
	}
	if r.P() != m2.P() || r.Opts() != m2.Opts() {
		t.Fatalf("restored shape/opts differ: P %d/%d opts %+v/%+v", r.P(), m2.P(), r.Opts(), m2.Opts())
	}
	q1, t1 := m2.Limits()
	q2, t2 := r.Limits()
	if q1 != q2 || t1 != t2 {
		t.Fatalf("restored limits (%v,%v), want (%v,%v)", q2, t2, q1, t1)
	}

	probe := synthTraffic(rng, 64, 12, 30) // noisy: some rows alarm
	alarms := 0
	for i := 0; i < probe.Rows(); i++ {
		x := probe.RowView(i)
		a, err := m2.Score(x)
		if err != nil {
			t.Fatal(err)
		}
		b, err := r.Score(x)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("row %d: original %+v, restored %+v", i, a, b)
		}
		if a.SPEAlarm || a.T2Alarm {
			alarms++
		}
	}
	if alarms == 0 {
		t.Fatal("probe raised no alarms; parity check is vacuous")
	}

	// A restored model must keep refitting (warm-started from its basis).
	r2, err := r.Refit(synthTraffic(rng, 400, 12, 2))
	if err != nil {
		t.Fatalf("refit of restored model: %v", err)
	}
	if r2.Gen() != 2 {
		t.Fatalf("refit gen %d, want 2", r2.Gen())
	}
}

// TestRestoreRejectsCorruptState walks the validation surface: every
// corruption of a valid state must be refused with an error, never build a
// model (or panic).
func TestRestoreRejectsCorruptState(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 5))
	m, err := Fit(synthTraffic(rng, 300, 10, 2), Options{K: 4, Alpha: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	good := m.State()

	cases := []struct {
		name string
		mut  func(st *ModelState)
	}{
		{"empty mean", func(st *ModelState) { st.Mean = nil }},
		{"k zero", func(st *ModelState) { st.Opts.K = 0 }},
		{"k >= p", func(st *ModelState) { st.Opts.K = len(st.Mean) }},
		{"k beyond axes", func(st *ModelState) { st.Eigenvalues = st.Eigenvalues[:2]; trimCols(st, 2) }},
		{"absurd alpha", func(st *ModelState) { st.Opts.Alpha = 40 }},
		{"component rows truncated", func(st *ModelState) { st.Components = st.Components[:3] }},
		{"ragged component row", func(st *ModelState) { st.Components[2] = st.Components[2][:1] }},
		{"NaN mean", func(st *ModelState) { st.Mean[0] = math.NaN() }},
		{"NaN component", func(st *ModelState) { st.Components[1][1] = math.NaN() }},
		{"negative eigenvalue", func(st *ModelState) { st.Eigenvalues[0] = -1 }},
		{"Inf eigenvalue", func(st *ModelState) { st.Eigenvalues[0] = math.Inf(1) }},
		{"zero Q limit", func(st *ModelState) { st.QLimit = 0 }},
		{"NaN Q limit", func(st *ModelState) { st.QLimit = math.NaN() }},
		{"negative T2 limit", func(st *ModelState) { st.T2Limit = -3 }},
		{"absurd N", func(st *ModelState) { st.N = 1 }},
		{"negative total variance", func(st *ModelState) { st.TotalVar = -1 }},
	}
	for _, tc := range cases {
		st := cloneState(good)
		tc.mut(&st)
		if _, err := Restore(st); err == nil {
			t.Errorf("%s: corrupt state restored silently", tc.name)
		}
	}

	// The untouched state still restores: the cases above failed for their
	// own reasons, not because cloning broke something.
	if _, err := Restore(cloneState(good)); err != nil {
		t.Fatalf("pristine state rejected: %v", err)
	}
}

func cloneState(st ModelState) ModelState {
	out := st
	out.Mean = append([]float64(nil), st.Mean...)
	out.Eigenvalues = append([]float64(nil), st.Eigenvalues...)
	out.Components = make([][]float64, len(st.Components))
	for i, row := range st.Components {
		out.Components[i] = append([]float64(nil), row...)
	}
	return out
}

func trimCols(st *ModelState, m int) {
	for i := range st.Components {
		st.Components[i] = st.Components[i][:m]
	}
}
