package engine

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"

	"netwide/internal/mat"
)

// synthRich builds genuinely stationary traffic with r spectrally
// separated factors: iid Gaussian factor scores with geometrically
// decaying scale on fixed random loadings. synthTraffic's sinusoidal
// patterns are NOT stationary over sub-cycle windows (their sample
// cross-correlations rotate the trailing eigenvectors between windows),
// and it has only two structured factors anyway, leaving k=4 fits with
// noise directions that differ arbitrarily between samples.
func synthRich(rng *rand.Rand, n, p, r int, noise float64) *mat.Matrix {
	// Orthonormal random loadings scaled to sqrt(p), so factor f
	// contributes eigenvalue (60·0.5^f)²·p exactly — consecutive
	// eigenvalue ratios of 4 keep every tracked direction identifiable.
	loads := make([][]float64, r)
	for f := range loads {
		v := make([]float64, p)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		for _, prev := range loads[:f] {
			var dot float64
			for j := range v {
				dot += v[j] * prev[j]
			}
			for j := range v {
				v[j] -= dot / float64(p) * prev[j]
			}
		}
		var nv float64
		for _, c := range v {
			nv += c * c
		}
		scale := math.Sqrt(float64(p) / nv)
		for j := range v {
			v[j] *= scale
		}
		loads[f] = v
	}
	m := mat.New(n, p)
	for i := 0; i < n; i++ {
		row := m.RowView(i)
		for j := range row {
			row[j] = 100 + noise*rng.NormFloat64()
		}
		for f := 0; f < r; f++ {
			s := 60 * math.Pow(0.5, float64(f)) * rng.NormFloat64()
			for j := range row {
				row[j] += s * loads[f][j]
			}
		}
	}
	return m
}

func fitOn(t *testing.T, train *mat.Matrix) *Model {
	t.Helper()
	m, err := Fit(train, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestParseUpdaterKind(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want UpdaterKind
	}{{"", UpdaterRefit}, {"refit", UpdaterRefit}, {"incremental", UpdaterIncremental}} {
		got, err := ParseUpdaterKind(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseUpdaterKind(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseUpdaterKind("oja"); err == nil {
		t.Error("unknown updater kind accepted")
	}
}

// TestUpdaterConfigValidation pins the descriptive errors for incoherent
// kind/RefitEvery/Window combinations.
func TestUpdaterConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewPCG(40, 41))
	m := fitOn(t, synthTraffic(rng, 200, 8, 1)) // p = 8
	cases := []struct {
		name string
		kind UpdaterKind
		cfg  UpdaterConfig
		want string // error substring; "" = must be accepted
	}{
		{"refit defaults", UpdaterRefit, UpdaterConfig{}, ""},
		{"refit with window", UpdaterRefit, UpdaterConfig{RefitEvery: 10, Window: 40}, ""},
		{"incremental no window", UpdaterIncremental, UpdaterConfig{}, ""},
		{"incremental with horizon", UpdaterIncremental, UpdaterConfig{Window: 40}, ""},
		{"incremental drift-corrected", UpdaterIncremental, UpdaterConfig{RefitEvery: 20, Window: 40}, ""},
		{"negative cadence", UpdaterRefit, UpdaterConfig{RefitEvery: -1}, "negative refit cadence"},
		{"negative window", UpdaterRefit, UpdaterConfig{Window: -1}, "negative window"},
		{"correction without window", UpdaterRefit, UpdaterConfig{RefitEvery: 10}, "Window=0 disables"},
		{"incremental correction without window", UpdaterIncremental, UpdaterConfig{RefitEvery: 10}, "Window=0 disables"},
		{"refit window too small", UpdaterRefit, UpdaterConfig{RefitEvery: 10, Window: 8}, "must exceed the vector length"},
		{"window without cadence", UpdaterRefit, UpdaterConfig{Window: 40}, "never refits"},
		{"incremental horizon too small", UpdaterIncremental, UpdaterConfig{Window: 8}, "forgetting horizon"},
	}
	for _, tc := range cases {
		_, err := NewUpdater(tc.kind, m, tc.cfg)
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: rejected: %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// TestRefitUpdaterLifecycle pins the extracted generation-swap behavior:
// one snapshot per cadence on a full window, at most one outstanding
// hand-off, Install swaps the generation and resets the staleness gauge,
// Install(nil) clears the way for a retry.
func TestRefitUpdaterLifecycle(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 43))
	train := synthTraffic(rng, 60, 8, 1)
	m := fitOn(t, train)
	up, err := NewUpdater(UpdaterRefit, m, UpdaterConfig{RefitEvery: 10, Window: 20})
	if err != nil {
		t.Fatal(err)
	}
	if up.Kind() != UpdaterRefit || up.InBand() {
		t.Fatalf("refit updater reports kind %q inBand %v", up.Kind(), up.InBand())
	}
	live := synthTraffic(rng, 100, 8, 1)
	var snaps []*mat.Matrix
	for i := 0; i < 10; i++ {
		snap, err := up.Observe(live.RowView(i))
		if err != nil {
			t.Fatal(err)
		}
		if snap != nil {
			snaps = append(snaps, snap)
		}
	}
	if len(snaps) != 1 {
		t.Fatalf("10 bins at cadence 10 handed out %d snapshots, want 1", len(snaps))
	}
	if r, c := snaps[0].Rows(), snaps[0].Cols(); r != 20 || c != 8 {
		t.Fatalf("snapshot is %dx%d, want 20x8 (window seeded from training tail)", r, c)
	}
	// While the hand-off is outstanding, cadence hits hand nothing out.
	for i := 10; i < 30; i++ {
		if snap, _ := up.Observe(live.RowView(i)); snap != nil {
			t.Fatal("second snapshot handed out while the first was pending")
		}
	}
	fr := up.Freshness()
	if fr.Gen != 0 || fr.Staleness != 30 || fr.SinceCorrection != 30 {
		t.Fatalf("pre-swap freshness = %+v, want gen 0, staleness 30", fr)
	}
	next, err := up.Model().Refit(snaps[0])
	if err != nil {
		t.Fatal(err)
	}
	up.Install(next)
	if g := up.Model().Gen(); g != 1 {
		t.Fatalf("generation after install = %d, want 1", g)
	}
	if fr := up.Freshness(); fr.Staleness != 0 {
		t.Fatalf("staleness after install = %d, want 0", fr.Staleness)
	}
	// since kept accruing while pending, so the next Observe hands off
	// immediately now that the slot is free.
	snap, err := up.Observe(live.RowView(30))
	if err != nil || snap == nil {
		t.Fatalf("no hand-off after install (snap %v, err %v)", snap, err)
	}
	// A failed fit (Install(nil)) keeps the generation but frees the slot.
	up.Install(nil)
	if g := up.Model().Gen(); g != 1 {
		t.Fatalf("generation after failed fit = %d, want 1", g)
	}
}

// subspaceAngle returns the largest principal angle (radians) between the
// column spaces of two p x k orthonormal bases: acos of the smallest
// singular value of A^T B.
func subspaceAngle(t *testing.T, a, b *mat.Matrix) float64 {
	t.Helper()
	cross := mat.Mul(a.T(), b)      // k x k
	g := mat.Mul(cross.T(), cross)  // k x k, eigenvalues = squared singular values
	vals, _, err := mat.SymEigen(g) // descending
	if err != nil {
		t.Fatal(err)
	}
	min := vals[len(vals)-1]
	if min < 0 {
		min = 0
	}
	c := math.Sqrt(min)
	if c > 1 {
		c = 1
	}
	return math.Acos(c)
}

// TestIncrementalStationarySubspace is the drift-free property test: on a
// stationary window the per-bin tracker must preserve the fitted subspace
// — the largest principal angle between the tracked top-k basis and the
// seed fit's stays near zero, and the thresholds stay in the same regime.
func TestIncrementalStationarySubspace(t *testing.T) {
	rng := rand.New(rand.NewPCG(44, 45))
	// A generous forgetting horizon keeps the amnesic weight (1+l)/n small
	// so the tracker's stochastic-approximation noise settles near zero on
	// stationary input instead of hovering at the short-horizon noise floor.
	const n, p, extra = 600, 24, 2000
	all := synthRich(rng, n+extra, p, 6, 2)
	seed := fitOn(t, all.HeadRows(n))
	up, err := NewUpdater(UpdaterIncremental, seed, UpdaterConfig{Window: 4032})
	if err != nil {
		t.Fatal(err)
	}
	if !up.InBand() {
		t.Fatal("incremental updater must be in-band")
	}
	for i := n; i < n+extra; i++ {
		if _, err := up.Observe(all.RowView(i)); err != nil {
			t.Fatal(err)
		}
	}
	k := seed.Opts().K
	angle := subspaceAngle(t, seed.PCA().TopComponents(k), up.Model().PCA().TopComponents(k))
	if angle > 0.1 {
		t.Errorf("largest principal angle after %d stationary updates = %.4f rad, want ~0 (<= 0.1)", extra, angle)
	}
	q0, t20 := seed.Limits()
	q1, t21 := up.Model().Limits()
	if q1 < q0/3 || q1 > q0*3 {
		t.Errorf("stationary tracking moved the Q limit %.4g -> %.4g (want within 3x)", q0, q1)
	}
	if t21 < t20/3 || t21 > t20*3 {
		t.Errorf("stationary tracking moved the T2 limit %.4g -> %.4g (want within 3x)", t20, t21)
	}
	fr := up.Freshness()
	if fr.Updates != extra || fr.Staleness != 1 || fr.Gen != 0 {
		t.Errorf("freshness = %+v, want %d updates, staleness 1, gen 0", fr, extra)
	}
	if got := up.Model().Updates(); got != extra {
		t.Errorf("model updates counter = %d, want %d", got, extra)
	}
}

// TestIncrementalDivergenceBound documents the divergence bound the
// streaming parity suite relies on: after a window of per-bin updates the
// tracked subspace stays within a small principal angle of the exact
// batch refit over the same rolling window.
func TestIncrementalDivergenceBound(t *testing.T) {
	rng := rand.New(rand.NewPCG(46, 47))
	const n, p, window = 600, 24, 600
	all := synthRich(rng, n+window, p, 6, 2)
	seed := fitOn(t, all.HeadRows(n))
	up, err := NewUpdater(UpdaterIncremental, seed, UpdaterConfig{Window: window})
	if err != nil {
		t.Fatal(err)
	}
	for i := n; i < n+window; i++ {
		if _, err := up.Observe(all.RowView(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Exact refit over the same trailing window the tracker just absorbed.
	exactWin := mat.New(window, p)
	for i := 0; i < window; i++ {
		copy(exactWin.RowView(i), all.RowView(n+i))
	}
	exact, err := seed.Refit(exactWin)
	if err != nil {
		t.Fatal(err)
	}
	k := seed.Opts().K
	angle := subspaceAngle(t, exact.PCA().TopComponents(k), up.Model().PCA().TopComponents(k))
	const bound = 0.35 // radians; documented in DESIGN.md E19
	if angle > bound {
		t.Errorf("tracked vs exact-refit largest principal angle = %.4f rad, want <= %.2f", angle, bound)
	}
	// The exported divergence metric must agree with the test's own
	// computation — it is the API callers monitor this bound through.
	got, err := SubspaceAngle(up.Model(), exact)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-angle) > 1e-9 {
		t.Errorf("SubspaceAngle = %.6f rad, test helper computed %.6f", got, angle)
	}
	if _, err := SubspaceAngle(up.Model(), fitOn(t, synthRich(rng, 80, p+1, 4, 2).HeadRows(80))); err == nil {
		t.Error("SubspaceAngle across different vector lengths did not error")
	}
}

// TestIncrementalDetectsSpike: threshold maintenance keeps the tracker a
// working detector — a volume spike on one flow still alarms after many
// per-bin updates.
func TestIncrementalDetectsSpike(t *testing.T) {
	rng := rand.New(rand.NewPCG(48, 49))
	const n, p = 600, 24
	all := synthTraffic(rng, n+200, p, 2)
	seed := fitOn(t, all.HeadRows(n))
	up, err := NewUpdater(UpdaterIncremental, seed, UpdaterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := n; i < n+200; i++ {
		if _, err := up.Observe(all.RowView(i)); err != nil {
			t.Fatal(err)
		}
	}
	x := append([]float64(nil), all.RowView(n+199)...)
	x[5] += 800
	pt, err := up.Model().Score(x)
	if err != nil {
		t.Fatal(err)
	}
	if !pt.SPEAlarm {
		t.Errorf("spiked vector did not alarm after 200 updates (SPE %.4g, limit %.4g)", pt.SPE, mustQ(up.Model()))
	}
	if pt.TopResidualOD != 5 {
		t.Errorf("top residual OD = %d, want 5", pt.TopResidualOD)
	}
}

func mustQ(m *Model) float64 { q, _ := m.Limits(); return q }

// TestIncrementalDriftCorrection: with RefitEvery > 0 the incremental
// updater hands out window snapshots on cadence, and an installed exact
// refit is adopted at the next Observe — generation bumps, the update
// counter resets, and the tracker reseeds from the corrected basis.
func TestIncrementalDriftCorrection(t *testing.T) {
	rng := rand.New(rand.NewPCG(50, 51))
	const n, p = 200, 8
	all := synthTraffic(rng, n+100, p, 1)
	seed := fitOn(t, all.HeadRows(n))
	up, err := NewUpdater(UpdaterIncremental, seed, UpdaterConfig{RefitEvery: 10, Window: 40})
	if err != nil {
		t.Fatal(err)
	}
	var snap *mat.Matrix
	bin := n
	for ; bin < n+20; bin++ {
		s, err := up.Observe(all.RowView(bin))
		if err != nil {
			t.Fatal(err)
		}
		if s != nil {
			if snap != nil {
				t.Fatal("second snapshot while the first was pending")
			}
			snap = s
		}
	}
	if snap == nil {
		t.Fatal("no drift-correction snapshot after 20 bins at cadence 10")
	}
	next, err := up.Model().Refit(snap)
	if err != nil {
		t.Fatal(err)
	}
	up.Install(next)
	// Adoption is deferred to the next Observe.
	if g := up.Model().Gen(); g != 0 {
		t.Fatalf("generation moved to %d before the next Observe", g)
	}
	if _, err := up.Observe(all.RowView(bin)); err != nil {
		t.Fatal(err)
	}
	if g := up.Model().Gen(); g != 1 {
		t.Fatalf("generation after adoption = %d, want 1", g)
	}
	if u := up.Model().Updates(); u != 1 {
		t.Fatalf("updates after adoption = %d, want 1 (the adopting bin)", u)
	}
	fr := up.Freshness()
	if fr.Gen != 1 || fr.SinceCorrection != 1 {
		t.Fatalf("freshness after correction = %+v", fr)
	}
}

// TestUpdaterStateRoundTrip: an updater restored from State must publish
// bit-identical models for identical subsequent input, for both kinds.
func TestUpdaterStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(52, 53))
	const n, p = 200, 8
	all := synthTraffic(rng, n+80, p, 1)
	seed := fitOn(t, all.HeadRows(n))
	for _, kind := range []UpdaterKind{UpdaterRefit, UpdaterIncremental} {
		cfg := UpdaterConfig{RefitEvery: 25, Window: 40}
		up, err := NewUpdater(kind, seed, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := n; i < n+20; i++ {
			if _, err := up.Observe(all.RowView(i)); err != nil {
				t.Fatal(err)
			}
		}
		restored, err := RestoreUpdater(up.State(), cfg)
		if err != nil {
			t.Fatalf("%s: restore: %v", kind, err)
		}
		if restored.Kind() != kind {
			t.Fatalf("restored kind %q, want %q", restored.Kind(), kind)
		}
		for i := n + 20; i < n+80; i++ {
			s1, e1 := up.Observe(all.RowView(i))
			s2, e2 := restored.Observe(all.RowView(i))
			if (s1 == nil) != (s2 == nil) || (e1 == nil) != (e2 == nil) {
				t.Fatalf("%s: hand-off/error divergence at bin %d", kind, i)
			}
		}
		x := all.RowView(n + 40)
		pt1, err1 := up.Model().Score(x)
		pt2, err2 := restored.Model().Score(x)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if pt1 != pt2 {
			t.Errorf("%s: restored updater diverged: %+v vs %+v", kind, pt1, pt2)
		}
	}
}

// TestRestoreUpdaterValidation: corrupted states are refused with errors,
// never panics.
func TestRestoreUpdaterValidation(t *testing.T) {
	rng := rand.New(rand.NewPCG(54, 55))
	seed := fitOn(t, synthTraffic(rng, 200, 8, 1))
	cfg := UpdaterConfig{RefitEvery: 10, Window: 40}
	up, err := NewUpdater(UpdaterIncremental, seed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	good := up.State()
	mutate := []struct {
		name string
		f    func(st *UpdaterState)
	}{
		{"unknown kind", func(st *UpdaterState) { st.Kind = "sketchy" }},
		{"no tracker", func(st *UpdaterState) { st.Tracker = nil }},
		{"tracker on refit state", func(st *UpdaterState) { st.Kind = UpdaterRefit }},
		{"short mean", func(st *UpdaterState) { st.Tracker.Mean = st.Tracker.Mean[:3] }},
		{"NaN mean", func(st *UpdaterState) { st.Tracker.Mean[0] = math.NaN() }},
		{"no axes", func(st *UpdaterState) { st.Tracker.Axes = nil }},
		{"too many axes", func(st *UpdaterState) {
			for len(st.Tracker.Axes) <= len(st.Model.Mean) {
				st.Tracker.Axes = append(st.Tracker.Axes, make([]float64, len(st.Model.Mean)))
			}
		}},
		{"ragged axis", func(st *UpdaterState) { st.Tracker.Axes[0] = st.Tracker.Axes[0][:2] }},
		{"Inf axis", func(st *UpdaterState) { st.Tracker.Axes[0][0] = math.Inf(1) }},
		{"bad horizon", func(st *UpdaterState) { st.Tracker.Horizon = 1 }},
		{"count over horizon", func(st *UpdaterState) { st.Tracker.N = st.Tracker.Horizon + 1 }},
		{"negative trace", func(st *UpdaterState) { st.Tracker.TotalVar = -1 }},
		{"negative since", func(st *UpdaterState) { st.Since = -1 }},
		{"oversized window", func(st *UpdaterState) {
			for len(st.Window) <= 40 {
				st.Window = append(st.Window, make([]float64, 8))
			}
		}},
		{"ragged window", func(st *UpdaterState) { st.Window = append(st.Window, make([]float64, 5)) }},
	}
	for _, tc := range mutate {
		st := good
		st.Model = good.Model // shallow copy is fine; mutations below clone what they touch
		tr := *good.Tracker
		tr.Mean = append([]float64(nil), good.Tracker.Mean...)
		tr.Axes = make([][]float64, len(good.Tracker.Axes))
		for i, a := range good.Tracker.Axes {
			tr.Axes[i] = append([]float64(nil), a...)
		}
		st.Tracker = &tr
		st.Window = append([][]float64(nil), good.Window...)
		tc.f(&st)
		if _, err := RestoreUpdater(st, cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// The untouched state must restore.
	if _, err := RestoreUpdater(good, cfg); err != nil {
		t.Errorf("pristine state rejected: %v", err)
	}
}
