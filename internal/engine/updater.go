// The model lifecycle: how a fitted Model keeps up with drifting traffic.
//
// Historically the streaming pipeline hard-coded one lifecycle — hand a
// rolling-window snapshot to a background goroutine every RefitEvery bins,
// refit from scratch (warm-started), atomically swap the new generation in.
// That leaves scoring up to RefitEvery bins stale and burns a full O(n·p²)
// fit per swap. The Updater interface makes the lifecycle pluggable: the
// generation-swap refit survives as one implementation (and as the periodic
// drift-correction fallback of the other), and IncrementalUpdater tracks
// the subspace with rank-1 updates per closed bin instead.
package engine

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"netwide/internal/mat"
)

// UpdaterKind names a model-lifecycle strategy.
type UpdaterKind string

const (
	// UpdaterRefit is the generation-swap lifecycle: the model is immutable
	// between full refits of a rolling window every RefitEvery bins. The
	// default, and byte-compatible with the pre-Updater pipeline.
	UpdaterRefit UpdaterKind = "refit"
	// UpdaterIncremental folds every closed bin into the model with a
	// CCIPCA rank-1 subspace update plus streaming residual-moment and
	// threshold maintenance, optionally anchored by periodic exact refits
	// (drift corrections) every RefitEvery bins.
	UpdaterIncremental UpdaterKind = "incremental"
)

// ParseUpdaterKind maps a flag/config string to a kind; "" means the
// default refit lifecycle.
func ParseUpdaterKind(s string) (UpdaterKind, error) {
	switch UpdaterKind(s) {
	case "", UpdaterRefit:
		return UpdaterRefit, nil
	case UpdaterIncremental:
		return UpdaterIncremental, nil
	}
	return "", fmt.Errorf("engine: unknown updater %q (want %q or %q)", s, UpdaterRefit, UpdaterIncremental)
}

// UpdaterConfig tunes a model lifecycle.
type UpdaterConfig struct {
	// RefitEvery is the full-refit cadence in accepted bins: the refit
	// updater's swap period, the incremental updater's drift-correction
	// fallback period. 0 disables full refits.
	RefitEvery int
	// Window is the rolling window length in bins. For the refit updater
	// it is the training window of every refit (required > p when
	// RefitEvery > 0). For the incremental updater it doubles as the
	// forgetting horizon of the tracker and, when RefitEvery > 0, the
	// drift-correction refit window; 0 defaults the horizon to the seed
	// fit's observation count.
	Window int
}

// validate rejects incoherent kind/RefitEvery/Window combinations with a
// descriptive error instead of silently accepting a configuration that
// cannot do what it says. p is the model's vector length.
func (cfg UpdaterConfig) validate(kind UpdaterKind, p int) error {
	if cfg.RefitEvery < 0 {
		return fmt.Errorf("engine: negative refit cadence %d", cfg.RefitEvery)
	}
	if cfg.Window < 0 {
		return fmt.Errorf("engine: negative window %d", cfg.Window)
	}
	if cfg.RefitEvery > 0 && cfg.Window == 0 {
		return fmt.Errorf("engine: RefitEvery=%d requests periodic model corrections but Window=0 disables the rolling refit window they train on; set Window > %d or RefitEvery=0", cfg.RefitEvery, p)
	}
	switch kind {
	case UpdaterRefit:
		if cfg.RefitEvery > 0 && cfg.Window <= p {
			return fmt.Errorf("engine: refit window %d must exceed the vector length %d (the PCA fit needs more timebins than flows)", cfg.Window, p)
		}
		if cfg.RefitEvery == 0 && cfg.Window > 0 {
			return fmt.Errorf("engine: Window=%d configured but RefitEvery=0 never refits under the %q updater; set a refit cadence, drop the window, or use the %q updater", cfg.Window, UpdaterRefit, UpdaterIncremental)
		}
	case UpdaterIncremental:
		if cfg.Window > 0 && cfg.Window <= p {
			return fmt.Errorf("engine: incremental updater window %d must exceed the vector length %d (it is the tracker's forgetting horizon and the drift-correction refit window)", cfg.Window, p)
		}
	}
	return nil
}

// Freshness is the set of model-freshness gauges one lifecycle exposes.
type Freshness struct {
	Kind UpdaterKind
	// Gen is the scoring model's generation (full fits/refits).
	Gen uint64
	// Updates is the number of per-bin incremental updates folded into the
	// scoring model since its generation was fitted (0 under refit).
	Updates uint64
	// SinceCorrection is the number of bins observed since the last full
	// (re)fit was adopted.
	SinceCorrection int
	// Staleness is how many bins of observed traffic the scoring model has
	// not absorbed: up to RefitEvery under the refit lifecycle, at most 1
	// under the incremental one.
	Staleness int
}

// SubspaceAngle returns the largest principal angle, in radians, between
// the normal subspaces (top-k principal axes) of two models of the same
// vector space: ~0 when they agree on the subspace, pi/2 when some normal
// direction of one is entirely abnormal to the other. It is the divergence
// metric behind the incremental tracker's documented bound (DESIGN.md E19),
// exported so callers can monitor tracked-vs-refit drift.
func SubspaceAngle(a, b *Model) (float64, error) {
	pa, pb := a.PCA(), b.PCA()
	if pa.P() != pb.P() {
		return 0, fmt.Errorf("engine: subspace angle across vector lengths %d and %d", pa.P(), pb.P())
	}
	k := a.opts.K
	if bk := b.opts.K; bk < k {
		k = bk
	}
	if k > pa.NumComputed() || k > pb.NumComputed() {
		return 0, fmt.Errorf("engine: subspace angle needs %d computed axes on both models", k)
	}
	// Largest angle = acos of the smallest singular value of A^T B; the
	// squared singular values are the eigenvalues of (A^T B)^T (A^T B).
	cross := mat.Mul(pa.TopComponents(k).T(), pb.TopComponents(k))
	vals, _, err := mat.SymEigen(mat.Mul(cross.T(), cross))
	if err != nil {
		return 0, fmt.Errorf("engine: subspace angle: %w", err)
	}
	c := vals[len(vals)-1]
	if c < 0 {
		c = 0
	}
	c = math.Sqrt(c)
	if c > 1 {
		c = 1
	}
	return math.Acos(c), nil
}

// Updater is a pluggable model lifecycle. Exactly one goroutine (the
// owning lane worker) calls Observe and State; Model and Freshness are safe
// from any goroutine; Install is called from the caller's refit goroutine.
//
// Observe folds one closed, already-scored bin into the lifecycle. It may
// swap the scoring model in-band (incremental tracking) and may return a
// non-nil training-window snapshot when an out-of-band full refit is due —
// the caller fits it wherever it likes (typically a background goroutine)
// and hands the result back through Install, or Install(nil) if the fit
// failed. An updater hands out at most one window at a time: no second
// snapshot is returned until Install settles the first, so a caller
// forwarding snapshots over a 1-buffered channel never blocks. An Observe
// error is the degraded condition — the previous model keeps scoring.
type Updater interface {
	Kind() UpdaterKind
	// Model returns the model that scores the next bin.
	Model() *Model
	// InBand reports whether Observe itself advances the scoring model —
	// true for the incremental tracker, whose per-bin swap means callers
	// must finish scoring a bin before observing it.
	InBand() bool
	Observe(x []float64) (refit *mat.Matrix, err error)
	// Install adopts a model fitted from a window Observe handed out, or
	// records the fit's failure when next is nil. Under the incremental
	// lifecycle adoption is deferred to the next Observe so the tracker
	// reseeds on its owning goroutine.
	Install(next *Model)
	Freshness() Freshness
	// State captures the lifecycle's full serializable recovery state
	// (deep copies throughout).
	State() UpdaterState
}

// UpdaterState is the serializable recovery state of an Updater: plain
// data, gob-friendly, validated on restore like any untrusted input.
type UpdaterState struct {
	Kind  UpdaterKind
	Model ModelState
	// Window is the rolling refit/drift-correction window, oldest first;
	// nil when full refits are disabled.
	Window [][]float64
	// Since is the number of bins accrued toward the next full refit.
	Since int
	// Tracker carries the incremental tracker's vectors; nil under the
	// refit lifecycle.
	Tracker *TrackerState
}

// NewUpdater wraps a freshly fitted model in the lifecycle of the given
// kind. When RefitEvery > 0 and the model retained its training window,
// the rolling window is pre-seeded from the trailing training rows so the
// first full refit does not wait for a whole window of live traffic.
func NewUpdater(kind UpdaterKind, m *Model, cfg UpdaterConfig) (Updater, error) {
	kind, err := ParseUpdaterKind(string(kind))
	if err != nil {
		return nil, err
	}
	if m == nil {
		return nil, errors.New("engine: updater needs a fitted model")
	}
	if err := cfg.validate(kind, m.P()); err != nil {
		return nil, err
	}
	switch kind {
	case UpdaterRefit:
		u := newRefitUpdater(m, cfg)
		u.ring.seedFromTrain(m, cfg)
		return u, nil
	default:
		u := newIncrementalUpdater(m, cfg)
		u.ring.seedFromTrain(m, cfg)
		return u, nil
	}
}

// RestoreUpdater reassembles an Updater from a captured State — the crash
// recovery path. The state is untrusted (it crossed a disk): the model,
// window and tracker vectors are all validated before they can reach a
// scoring path. cfg must be coherent with the state's kind.
func RestoreUpdater(st UpdaterState, cfg UpdaterConfig) (Updater, error) {
	kind, err := ParseUpdaterKind(string(st.Kind))
	if err != nil {
		return nil, err
	}
	m, err := Restore(st.Model)
	if err != nil {
		return nil, err
	}
	if err := cfg.validate(kind, m.P()); err != nil {
		return nil, err
	}
	if cfg.RefitEvery > 0 {
		if len(st.Window) > cfg.Window {
			return nil, fmt.Errorf("engine: restored window of %d rows exceeds configured window %d", len(st.Window), cfg.Window)
		}
		if st.Since < 0 {
			return nil, fmt.Errorf("engine: negative restored refit phase %d", st.Since)
		}
		for i, row := range st.Window {
			if len(row) != m.P() {
				return nil, fmt.Errorf("engine: restored window row %d has length %d, want %d", i, len(row), m.P())
			}
		}
		// Deep-copy the window: the state crossed a process boundary and the
		// caller may reuse or mutate it after the restore.
		win := make([][]float64, len(st.Window))
		for i, row := range st.Window {
			win[i] = append([]float64(nil), row...)
		}
		st.Window = win
	}
	switch kind {
	case UpdaterRefit:
		if st.Tracker != nil {
			return nil, errors.New("engine: refit updater state carries tracker state")
		}
		u := newRefitUpdater(m, cfg)
		if cfg.RefitEvery > 0 {
			u.ring.seed(st.Window)
			u.ring.since = st.Since
		}
		return u, nil
	default:
		return restoreIncremental(m, st, cfg)
	}
}

// winRing is the rolling window shared by both lifecycles: a fixed ring of
// accepted-bin row references plus the phase counter toward the next full
// refit. Owned by the Observe goroutine.
type winRing struct {
	rows  [][]float64
	next  int
	fill  int
	since int
	p     int
}

func newWinRing(window, p int) winRing {
	r := winRing{p: p}
	if window > 0 {
		r.rows = make([][]float64, window)
	}
	return r
}

// seed pre-fills the ring with rows, oldest first (trailing training rows
// on a fresh start, the captured window on a restore).
func (r *winRing) seed(rows [][]float64) {
	if r.rows == nil {
		return
	}
	n := len(rows)
	if n > len(r.rows) {
		rows = rows[n-len(r.rows):]
		n = len(r.rows)
	}
	copy(r.rows, rows)
	r.next = n % len(r.rows)
	r.fill = n
}

// seedFromTrain seeds the ring from the model's retained training window
// (the engine keeps a reference, not a copy).
func (r *winRing) seedFromTrain(m *Model, cfg UpdaterConfig) {
	t := m.Train()
	if r.rows == nil || t == nil {
		return
	}
	n := t.Rows()
	if n > cfg.Window {
		n = cfg.Window
	}
	rows := make([][]float64, n)
	for j := 0; j < n; j++ {
		rows[j] = t.RowView(t.Rows() - n + j)
	}
	r.seed(rows)
}

// push appends one accepted bin and reports whether a full refit is due
// (cadence reached on a full ring).
func (r *winRing) push(x []float64, refitEvery int) (due bool) {
	if r.rows == nil {
		return false
	}
	r.rows[r.next] = x
	r.next = (r.next + 1) % len(r.rows)
	if r.fill < len(r.rows) {
		r.fill++
	}
	r.since++
	return r.since >= refitEvery && r.fill == len(r.rows)
}

// snapshot copies the window out in storage order (row order does not
// affect a PCA fit) and resets the phase counter.
func (r *winRing) snapshot() *mat.Matrix {
	snap := mat.New(r.fill, r.p)
	for i := 0; i < r.fill; i++ {
		copy(snap.RowView(i), r.rows[i])
	}
	r.since = 0
	return snap
}

// chron returns deep copies of the window rows in chronological order,
// oldest first — the serializable form.
func (r *winRing) chron() [][]float64 {
	if r.rows == nil {
		return nil
	}
	out := make([][]float64, 0, r.fill)
	for i := 0; i < r.fill; i++ {
		row := r.rows[(r.next-r.fill+i+len(r.rows))%len(r.rows)]
		out = append(out, append([]float64(nil), row...))
	}
	return out
}

// RefitUpdater is the generation-swap lifecycle extracted from the stream
// pipeline: Observe maintains the rolling window and, every RefitEvery
// accepted bins, hands out a snapshot for an out-of-band warm-started
// refit; Install swaps the fitted generation in with one atomic store.
// Between swaps the scoring model does not move. A busy refit (snapshot
// handed out, Install not yet called) just delays the next hand-off —
// Since keeps accruing and Observe retries once the fit settles.
type RefitUpdater struct {
	model      atomic.Pointer[Model]
	refitEvery int
	ring       winRing

	// pending is true while a handed-out window is being fitted; it
	// guarantees at most one snapshot is ever outstanding.
	pending atomic.Bool
	// sinceSwap counts observed bins since the last adopted refit — the
	// staleness gauge.
	sinceSwap atomic.Int64
}

func newRefitUpdater(m *Model, cfg UpdaterConfig) *RefitUpdater {
	u := &RefitUpdater{refitEvery: cfg.RefitEvery}
	u.model.Store(m)
	if cfg.RefitEvery > 0 {
		u.ring = newWinRing(cfg.Window, m.P())
	}
	return u
}

// Kind returns UpdaterRefit.
func (u *RefitUpdater) Kind() UpdaterKind { return UpdaterRefit }

// InBand returns false: the scoring model only moves on Install.
func (u *RefitUpdater) InBand() bool { return false }

// Model returns the current scoring generation.
func (u *RefitUpdater) Model() *Model { return u.model.Load() }

// Observe appends the bin to the rolling window and returns a snapshot
// when a refit is due and none is outstanding.
func (u *RefitUpdater) Observe(x []float64) (*mat.Matrix, error) {
	if len(x) != u.Model().P() {
		return nil, fmt.Errorf("engine: updater vector length %d, want %d", len(x), u.Model().P())
	}
	u.sinceSwap.Add(1)
	if !u.ring.push(x, u.refitEvery) || u.pending.Load() {
		return nil, nil
	}
	u.pending.Store(true)
	return u.ring.snapshot(), nil
}

// Install adopts a refit generation (or, with nil, records the fit's
// failure), clearing the way for the next hand-off.
func (u *RefitUpdater) Install(next *Model) {
	if next != nil {
		u.model.Store(next)
		u.sinceSwap.Store(0)
	}
	u.pending.Store(false)
}

// Freshness reports the generation-swap gauges: staleness equals the bins
// since the last adopted refit.
func (u *RefitUpdater) Freshness() Freshness {
	s := int(u.sinceSwap.Load())
	return Freshness{Kind: UpdaterRefit, Gen: u.Model().Gen(), SinceCorrection: s, Staleness: s}
}

// State captures the lifecycle's serializable recovery state.
func (u *RefitUpdater) State() UpdaterState {
	return UpdaterState{
		Kind:   UpdaterRefit,
		Model:  u.Model().State(),
		Window: u.ring.chron(),
		Since:  u.ring.since,
	}
}

// finiteRows validates a restored [][]float64 payload.
func finiteRows(rows [][]float64, p int, what string) error {
	for i, row := range rows {
		if len(row) != p {
			return fmt.Errorf("engine: restore: %s row %d has length %d, want %d", what, i, len(row), p)
		}
		for _, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("engine: restore: non-finite value in %s row %d", what, i)
			}
		}
	}
	return nil
}
