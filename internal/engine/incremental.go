package engine

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"netwide/internal/mat"
	"netwide/internal/stats"
)

// amnesia is the CCIPCA amnesic-averaging parameter l: each update weights
// the new observation (1+l)/n instead of 1/n, gradually down-weighting old
// data so the tracker follows slow drift instead of freezing on its seed.
// 2 is the value recommended by Weng, Zhang & Hwang (2003).
const amnesia = 2.0

// tinyNorm is the axis-norm floor below which a tracked direction is
// considered lost and re-initialized from the current residual.
const tinyNorm = 1e-150

// maxTrackedAxes bounds the tracked head of the spectrum at 2k+8 —
// mirroring the partial-PCA fit, which computes the same head and models
// the residual tail as flat (mat.PCA.ResidualMoments).
func maxTrackedAxes(k, p int) int {
	m := 2*k + 8
	if m > p {
		m = p
	}
	return m
}

// IncrementalUpdater is the per-bin lifecycle: a CCIPCA (candid
// covariance-free incremental PCA) tracker seeded from an exact batch fit.
// Every Observe folds the closed bin into the running mean, the covariance
// trace and the top-m eigenpairs with one O(p·m) rank-1 sweep, rebuilds
// the Jackson–Mudholkar Q threshold from the tracked residual moments and
// the T² limit from the effective observation count, and publishes a fresh
// immutable Model — so the scoring model is never more than one bin stale
// and no full refit is ever required for freshness.
//
// Tracker math, per axis i in dominance order (Weng et al. 2003): with
// u the centered observation after deflation against axes < i,
//
//	v_i ← (n-1-l)/n · v_i + (1+l)/n · (uᵀv_i/‖v_i‖) · u
//	u   ← u − (uᵀv_i/‖v_i‖²) · v_i
//
// where ‖v_i‖ estimates eigenvalue λ_i and v_i/‖v_i‖ the axis. n is capped
// at the forgetting horizon (UpdaterConfig.Window), turning the recursion
// into an exponential forgetting scheme once the horizon is reached.
//
// When RefitEvery > 0 the updater also maintains the rolling window and
// hands out snapshots for periodic exact refits — the drift-correction
// fallback that bounds accumulated tracking error. The fitted correction
// is adopted at the next Observe (the tracker reseeds from it on its
// owning goroutine), bumping the model generation exactly as a refit swap
// would.
type IncrementalUpdater struct {
	opts       Options
	p, m       int
	horizon    int
	refitEvery int

	model atomic.Pointer[Model]
	// correction holds a drift-correction model fitted out-of-band,
	// awaiting adoption by the next Observe.
	correction atomic.Pointer[Model]
	pending    atomic.Bool
	updates    atomic.Uint64

	// Tracker state, owned by the Observe goroutine.
	mean     []float64
	axes     [][]float64 // m vectors of length p; ‖axes[i]‖ estimates λ_i
	totalVar float64
	n        int

	ring winRing

	resid []float64 // deflation scratch
}

// TrackerState is the incremental tracker's serializable recovery state.
type TrackerState struct {
	// N is the effective observation count (capped at Horizon).
	N int
	// Horizon is the forgetting horizon in bins.
	Horizon int
	// TotalVar is the tracked covariance trace.
	TotalVar float64
	Mean     []float64
	// Axes[i] is tracked vector i (length p), norm = eigenvalue estimate.
	Axes [][]float64
}

func newIncrementalUpdater(m *Model, cfg UpdaterConfig) *IncrementalUpdater {
	u := &IncrementalUpdater{
		opts:       m.Opts(),
		p:          m.P(),
		refitEvery: cfg.RefitEvery,
		horizon:    cfg.Window,
	}
	if u.horizon <= 0 {
		u.horizon = m.PCA().N()
	}
	u.m = maxTrackedAxes(u.opts.K, u.p)
	if nc := m.PCA().NumComputed(); u.m > nc {
		u.m = nc
	}
	u.model.Store(m)
	u.seedTracker(m)
	if cfg.RefitEvery > 0 {
		u.ring = newWinRing(cfg.Window, u.p)
	}
	u.resid = make([]float64, u.p)
	return u
}

// seedTracker re-centers the tracker on an exactly fitted model: axes are
// the model's top-m eigenvectors scaled by their eigenvalues (so the norm
// carries the eigenvalue estimate), the mean, trace and count come from
// the fit.
func (u *IncrementalUpdater) seedTracker(m *Model) {
	pca := m.PCA()
	u.mean = append(u.mean[:0], pca.Mean...)
	if u.axes == nil {
		u.axes = make([][]float64, u.m)
		for i := range u.axes {
			u.axes[i] = make([]float64, u.p)
		}
	}
	for i := range u.axes {
		l := pca.Eigenvalues[i]
		v := u.axes[i]
		for f := 0; f < u.p; f++ {
			v[f] = pca.Components.At(f, i) * l
		}
	}
	u.totalVar = pca.TotalVar
	u.n = pca.N()
	if u.n > u.horizon {
		u.n = u.horizon
	}
}

// Kind returns UpdaterIncremental.
func (u *IncrementalUpdater) Kind() UpdaterKind { return UpdaterIncremental }

// InBand returns true: Observe itself swaps the scoring model, so callers
// must score a bin before observing it.
func (u *IncrementalUpdater) InBand() bool { return true }

// Model returns the current scoring model.
func (u *IncrementalUpdater) Model() *Model { return u.model.Load() }

// Observe folds one closed bin into the tracker and publishes the updated
// model. With drift correction enabled it also maintains the rolling
// window, returns a snapshot when an exact refit is due, and adopts a
// previously installed correction before touching the tracker. An error
// leaves the previous model scoring (degraded, not fatal).
func (u *IncrementalUpdater) Observe(x []float64) (*mat.Matrix, error) {
	if len(x) != u.p {
		return nil, fmt.Errorf("engine: updater vector length %d, want %d", len(x), u.p)
	}
	if c := u.correction.Swap(nil); c != nil {
		u.seedTracker(c)
		u.model.Store(c)
		u.updates.Store(0)
		u.pending.Store(false)
	}
	var snap *mat.Matrix
	if u.ring.push(x, u.refitEvery) && !u.pending.Load() {
		u.pending.Store(true)
		snap = u.ring.snapshot()
	}
	u.track(x)
	if err := u.publish(); err != nil {
		return snap, fmt.Errorf("engine: incremental update: %w", err)
	}
	return snap, nil
}

// track runs the amnesic CCIPCA sweep: mean, covariance trace, then each
// tracked axis with deflation.
func (u *IncrementalUpdater) track(x []float64) {
	if u.n < u.horizon {
		u.n++
	}
	n := float64(u.n)
	w2 := (1 + amnesia) / n
	if w2 > 1 {
		w2 = 1
	}
	w1 := 1 - w2
	res := u.resid
	var sq float64
	for j, v := range x {
		u.mean[j] = w1*u.mean[j] + w2*v
		r := v - u.mean[j]
		res[j] = r
		sq += r * r
	}
	u.totalVar = w1*u.totalVar + w2*sq
	for _, v := range u.axes {
		var nv2, y float64
		for j, c := range v {
			nv2 += c * c
			y += res[j] * c
		}
		nv := math.Sqrt(nv2)
		if nv <= tinyNorm {
			// Direction lost: re-initialize from the residual, which is
			// then fully explained.
			copy(v, res)
			for j := range res {
				res[j] = 0
			}
			continue
		}
		y /= nv // projection of the residual on the unit axis
		var dot2, norm2 float64
		for j := range v {
			v[j] = w1*v[j] + w2*y*res[j]
			norm2 += v[j] * v[j]
			dot2 += res[j] * v[j]
		}
		if norm2 > tinyNorm*tinyNorm {
			c := dot2 / norm2
			for j := range res {
				res[j] -= c * v[j]
			}
		}
	}
}

// publish assembles an immutable Model from the tracker state — tracked
// eigenpairs sorted by dominance, thresholds recomputed from the streaming
// residual moments — and swaps it in. The covariance trace is floored at
// the tracked head so the flat-tail residual model never sees a negative
// tail.
func (u *IncrementalUpdater) publish() error {
	cur := u.model.Load()
	eigs := make([]float64, u.m)
	order := make([]int, u.m)
	var head float64
	for i, v := range u.axes {
		var nv2 float64
		for _, c := range v {
			nv2 += c * c
		}
		eigs[i] = math.Sqrt(nv2)
		head += eigs[i]
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return eigs[order[a]] > eigs[order[b]] })
	sorted := make([]float64, u.m)
	comps := mat.New(u.p, u.m)
	for c, idx := range order {
		l := eigs[idx]
		sorted[c] = l
		if l <= tinyNorm {
			continue // zero column: a lost direction contributes no variance
		}
		inv := 1 / l
		v := u.axes[idx]
		for r := 0; r < u.p; r++ {
			comps.Set(r, c, v[r]*inv)
		}
	}
	tv := u.totalVar
	if tv < head {
		tv = head
	}
	pca, err := mat.NewPCA(append([]float64(nil), u.mean...), sorted, comps, tv, u.n)
	if err != nil {
		return err
	}
	phi1, phi2, phi3 := pca.ResidualMoments(u.opts.K)
	qLimit, err := stats.QThresholdFromMoments(phi1, phi2, phi3, u.opts.Alpha)
	if err != nil {
		return fmt.Errorf("Q threshold: %w", err)
	}
	t2Limit, err := stats.T2Threshold(u.opts.K, u.n, u.opts.Alpha)
	if err != nil {
		return fmt.Errorf("T2 threshold: %w", err)
	}
	vk := pca.TopComponents(u.opts.K)
	next := &Model{
		opts: u.opts, pca: pca,
		qLimit: qLimit, t2Limit: t2Limit,
		vk: vk, vkT: vk.T(),
		gen: cur.gen, updates: cur.updates + 1,
	}
	u.model.Store(next)
	u.updates.Add(1)
	return nil
}

// Install stages a drift-correction model fitted from a window Observe
// handed out (or, with nil, records the fit's failure). Adoption is
// deferred to the next Observe so the tracker reseeds on the goroutine
// that owns it.
func (u *IncrementalUpdater) Install(next *Model) {
	if next != nil {
		u.correction.Store(next)
		return
	}
	u.pending.Store(false)
}

// Freshness reports the per-bin gauges: the scoring model is at most one
// bin stale by construction.
func (u *IncrementalUpdater) Freshness() Freshness {
	upd := u.updates.Load()
	st := 0
	if upd > 0 {
		st = 1
	}
	return Freshness{
		Kind:            UpdaterIncremental,
		Gen:             u.Model().Gen(),
		Updates:         upd,
		SinceCorrection: int(upd),
		Staleness:       st,
	}
}

// State captures the full lifecycle state: scoring model, tracker vectors
// and the drift-correction window (deep copies throughout).
func (u *IncrementalUpdater) State() UpdaterState {
	tr := &TrackerState{
		N:        u.n,
		Horizon:  u.horizon,
		TotalVar: u.totalVar,
		Mean:     append([]float64(nil), u.mean...),
		Axes:     make([][]float64, len(u.axes)),
	}
	for i, v := range u.axes {
		tr.Axes[i] = append([]float64(nil), v...)
	}
	return UpdaterState{
		Kind:    UpdaterIncremental,
		Model:   u.Model().State(),
		Window:  u.ring.chron(),
		Since:   u.ring.since,
		Tracker: tr,
	}
}

// restoreIncremental validates and reassembles an incremental updater from
// its captured state. m is the already-restored scoring model.
func restoreIncremental(m *Model, st UpdaterState, cfg UpdaterConfig) (*IncrementalUpdater, error) {
	tr := st.Tracker
	if tr == nil {
		return nil, errors.New("engine: incremental updater state has no tracker")
	}
	p := m.P()
	if len(tr.Mean) != p {
		return nil, fmt.Errorf("engine: restore: tracker mean length %d, want %d", len(tr.Mean), p)
	}
	for _, v := range tr.Mean {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, errors.New("engine: restore: non-finite tracker mean")
		}
	}
	if max := maxTrackedAxes(m.Opts().K, p); len(tr.Axes) == 0 || len(tr.Axes) > max {
		return nil, fmt.Errorf("engine: restore: %d tracked axes out of range (0,%d]", len(tr.Axes), max)
	}
	if err := finiteRows(tr.Axes, p, "tracker axis"); err != nil {
		return nil, err
	}
	if tr.Horizon < 2 {
		return nil, fmt.Errorf("engine: restore: tracker horizon %d, want >= 2", tr.Horizon)
	}
	if tr.N < 2 || tr.N > tr.Horizon {
		return nil, fmt.Errorf("engine: restore: tracker count %d outside [2,%d]", tr.N, tr.Horizon)
	}
	if math.IsNaN(tr.TotalVar) || math.IsInf(tr.TotalVar, 0) || tr.TotalVar < 0 {
		return nil, errors.New("engine: restore: tracker trace not finite and non-negative")
	}
	if cfg.Window > 0 && tr.Horizon != cfg.Window {
		return nil, fmt.Errorf("engine: restore: tracker horizon %d does not match configured window %d", tr.Horizon, cfg.Window)
	}
	u := &IncrementalUpdater{
		opts:       m.Opts(),
		p:          p,
		m:          len(tr.Axes),
		horizon:    tr.Horizon,
		refitEvery: cfg.RefitEvery,
		totalVar:   tr.TotalVar,
		n:          tr.N,
		mean:       append([]float64(nil), tr.Mean...),
		axes:       make([][]float64, len(tr.Axes)),
		resid:      make([]float64, p),
	}
	for i, v := range tr.Axes {
		u.axes[i] = append([]float64(nil), v...)
	}
	u.model.Store(m)
	u.updates.Store(m.Updates())
	if cfg.RefitEvery > 0 {
		u.ring = newWinRing(cfg.Window, p)
		u.ring.seed(st.Window)
		u.ring.since = st.Since
	}
	return u, nil
}
