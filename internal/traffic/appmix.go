package traffic

import (
	"fmt"

	"netwide/internal/flow"
)

// SizeClass is one mode of an application's flow-size mixture.
type SizeClass struct {
	// VolumeFrac is the fraction of the app's byte volume carried by flows
	// of this class; fractions sum to 1 within an app.
	VolumeFrac float64
	// PktsPerFlow is the true per-flow packet count of the class.
	PktsPerFlow uint64
	// BytesPerPkt is the mean packet size.
	BytesPerPkt float64
}

// App is one application in the background mix.
type App struct {
	Name string
	// VolumeShare is the app's fraction of total background bytes; shares
	// sum to 1 across the mix.
	VolumeShare float64
	Proto       flow.Proto
	// DstPort is the app's service port template (the attribute the
	// classifier keys on).
	DstPort PortTemplate
	// Sizes is the flow-size mixture, heavy-tailed for bulk apps.
	Sizes []SizeClass
}

// Mix is a complete application mix.
type Mix []App

// DefaultMix models an academic backbone circa 2003: web-dominated byte
// volume, a long tail of small DNS/mail flows (which dominate flow counts),
// news feeds, ssh, and early P2P file sharing on port 1412
// (kazaa/morpheus, called out by the paper as an ALPHA-flow port).
func DefaultMix() Mix {
	return Mix{
		{
			Name: "web", VolumeShare: 0.46, Proto: flow.ProtoTCP,
			DstPort: PortTemplate{Mode: PortFixed, Port: flow.PortHTTP},
			Sizes: []SizeClass{
				{VolumeFrac: 0.35, PktsPerFlow: 10, BytesPerPkt: 600},
				{VolumeFrac: 0.40, PktsPerFlow: 60, BytesPerPkt: 800},
				{VolumeFrac: 0.25, PktsPerFlow: 700, BytesPerPkt: 1100},
			},
		},
		{
			Name: "https", VolumeShare: 0.08, Proto: flow.ProtoTCP,
			DstPort: PortTemplate{Mode: PortFixed, Port: 443},
			Sizes: []SizeClass{
				{VolumeFrac: 0.5, PktsPerFlow: 14, BytesPerPkt: 650},
				{VolumeFrac: 0.5, PktsPerFlow: 90, BytesPerPkt: 900},
			},
		},
		{
			Name: "dns", VolumeShare: 0.03, Proto: flow.ProtoUDP,
			DstPort: PortTemplate{Mode: PortFixed, Port: flow.PortDNS},
			Sizes: []SizeClass{
				{VolumeFrac: 1.0, PktsPerFlow: 2, BytesPerPkt: 90},
			},
		},
		{
			Name: "mail", VolumeShare: 0.06, Proto: flow.ProtoTCP,
			DstPort: PortTemplate{Mode: PortFixed, Port: flow.PortSMTP},
			Sizes: []SizeClass{
				{VolumeFrac: 0.6, PktsPerFlow: 20, BytesPerPkt: 500},
				{VolumeFrac: 0.4, PktsPerFlow: 150, BytesPerPkt: 900},
			},
		},
		{
			Name: "nntp", VolumeShare: 0.07, Proto: flow.ProtoTCP,
			DstPort: PortTemplate{Mode: PortFixed, Port: flow.PortNNTP},
			Sizes: []SizeClass{
				{VolumeFrac: 1.0, PktsPerFlow: 1200, BytesPerPkt: 1200},
			},
		},
		{
			Name: "ssh", VolumeShare: 0.04, Proto: flow.ProtoTCP,
			DstPort: PortTemplate{Mode: PortFixed, Port: 22},
			Sizes: []SizeClass{
				{VolumeFrac: 0.7, PktsPerFlow: 40, BytesPerPkt: 250},
				{VolumeFrac: 0.3, PktsPerFlow: 800, BytesPerPkt: 700},
			},
		},
		{
			Name: "p2p", VolumeShare: 0.22, Proto: flow.ProtoTCP,
			DstPort: PortTemplate{Mode: PortFixed, Port: flow.PortKazaa},
			Sizes: []SizeClass{
				{VolumeFrac: 0.3, PktsPerFlow: 30, BytesPerPkt: 400},
				{VolumeFrac: 0.7, PktsPerFlow: 1200, BytesPerPkt: 1200},
			},
		},
		{
			Name: "grid-ftp", VolumeShare: 0.04, Proto: flow.ProtoTCP,
			DstPort: PortTemplate{Mode: PortRange, Lo: 2811, Hi: 2813},
			Sizes: []SizeClass{
				{VolumeFrac: 1.0, PktsPerFlow: 2000, BytesPerPkt: 1400},
			},
		},
	}
}

// Validate checks that volume shares and per-app size fractions are
// normalized and that every size class is measurable.
func (m Mix) Validate() error {
	if len(m) == 0 {
		return fmt.Errorf("traffic: empty mix")
	}
	var share float64
	for _, a := range m {
		if a.VolumeShare <= 0 {
			return fmt.Errorf("traffic: app %s non-positive share", a.Name)
		}
		share += a.VolumeShare
		if len(a.Sizes) == 0 {
			return fmt.Errorf("traffic: app %s has no size classes", a.Name)
		}
		var frac float64
		for _, s := range a.Sizes {
			if s.VolumeFrac <= 0 {
				return fmt.Errorf("traffic: app %s non-positive size fraction", a.Name)
			}
			frac += s.VolumeFrac
			c := FlowClass{Count: 1, PktsPerFlow: s.PktsPerFlow, BytesPerPkt: s.BytesPerPkt}
			if err := c.Validate(); err != nil {
				return fmt.Errorf("traffic: app %s: %w", a.Name, err)
			}
		}
		if frac < 0.999 || frac > 1.001 {
			return fmt.Errorf("traffic: app %s size fractions sum to %v", a.Name, frac)
		}
	}
	if share < 0.999 || share > 1.001 {
		return fmt.Errorf("traffic: volume shares sum to %v", share)
	}
	return nil
}

// MeanFlowBytes returns the mix's average true bytes per flow — the
// conversion factor between byte volume and flow counts.
func (m Mix) MeanFlowBytes() float64 {
	// Per app: flows per byte = sum over classes of frac/(pkts*bpp).
	var totalFlowsPerByte float64
	for _, a := range m {
		for _, s := range a.Sizes {
			totalFlowsPerByte += a.VolumeShare * s.VolumeFrac / (float64(s.PktsPerFlow) * s.BytesPerPkt)
		}
	}
	if totalFlowsPerByte <= 0 {
		return 0
	}
	return 1 / totalFlowsPerByte
}
