package traffic

import (
	"fmt"
	"math/rand/v2"

	"netwide/internal/gravity"
	"netwide/internal/sampling"
	"netwide/internal/topology"
)

// Background generates the anomaly-free offered load of the network as
// FlowClass groups, deterministically keyed by (seed, OD pair, bin): the
// same bin can be regenerated in isolation at any time, which the dataset
// layer exploits to recompute attribute detail only where anomalies were
// detected.
type Background struct {
	Top     *topology.Topology
	Gravity *gravity.Model
	Realm   *Realm
	Mix     Mix
	Profile Profile
	// MeanRateBps is the network-wide long-run mean offered load in
	// bytes/second.
	MeanRateBps float64
	// NoiseSigma is the lognormal sigma of per-(OD,bin) volume noise.
	NoiseSigma float64
	// Seed drives all randomness.
	Seed uint64
}

// NewBackground wires a Background over the topology with the default mix
// and profile.
func NewBackground(top *topology.Topology, meanRateBps float64, seed uint64) (*Background, error) {
	if meanRateBps <= 0 {
		return nil, fmt.Errorf("traffic: mean rate %v must be positive", meanRateBps)
	}
	g, err := gravity.New(top, 0.2)
	if err != nil {
		return nil, err
	}
	mix := DefaultMix()
	if err := mix.Validate(); err != nil {
		return nil, err
	}
	return &Background{
		Top:         top,
		Gravity:     g,
		Realm:       NewRealm(top),
		Mix:         mix,
		Profile:     DefaultProfile(),
		MeanRateBps: meanRateBps,
		NoiseSigma:  0.12,
		Seed:        seed,
	}, nil
}

// BinRNG derives the deterministic RNG stream for (od, bin). All layers
// that add randomness to a bin must draw from this stream (or from
// LognormalNoise) so that regeneration is exact.
func (b *Background) BinRNG(od topology.ODPair, bin int) *rand.Rand {
	s1 := b.Seed ^ (uint64(b.Top.Index(od))+1)*0x9E3779B97F4A7C15
	s2 := (uint64(bin) + 1) * 0xBF58476D1CE4E5B9
	return rand.New(rand.NewPCG(s1, s2))
}

// TrueVolume returns the true (pre-sampling) background byte volume offered
// by the OD pair during the bin.
func (b *Background) TrueVolume(od topology.ODPair, bin int) float64 {
	mean := b.MeanRateBps * BinSeconds * b.Gravity.Fraction(od)
	return mean * b.Profile.At(bin) * LognormalNoise(b.Seed, b.Top.Index(od), bin, b.NoiseSigma)
}

// Classes returns the background flow classes for (od, bin), scaling the
// mix to the bin's true volume. Flow counts are Poisson around their
// expectation, drawn from the bin's deterministic RNG stream.
func (b *Background) Classes(od topology.ODPair, bin int, rng *rand.Rand) []FlowClass {
	return b.ClassesForVolume(od, b.TrueVolume(od, bin), rng)
}

// ClassesForVolume is Classes with an explicit true byte volume; anomaly
// injectors use it to scale the background up or down (outages, ingress
// shifts) before the mix is expanded into classes.
func (b *Background) ClassesForVolume(od topology.ODPair, vol float64, rng *rand.Rand) []FlowClass {
	return b.AppendClassesForVolume(make([]FlowClass, 0, 16), od, vol, rng)
}

// AppendClassesForVolume appends the bin's classes to out and returns the
// extended slice. It is the allocation-free form of ClassesForVolume: the
// generation hot loop passes a per-worker scratch slice whose capacity is
// reused across cells. The rng stream is consumed identically either way.
func (b *Background) AppendClassesForVolume(out []FlowClass, od topology.ODPair, vol float64, rng *rand.Rand) []FlowClass {
	for _, app := range b.Mix {
		appBytes := vol * app.VolumeShare
		for _, sc := range app.Sizes {
			classBytes := appBytes * sc.VolumeFrac
			meanFlows := classBytes / (float64(sc.PktsPerFlow) * sc.BytesPerPkt)
			count := sampling.Poisson(meanFlows, rng)
			if count == 0 {
				continue
			}
			out = append(out, FlowClass{
				Count:       count,
				PktsPerFlow: sc.PktsPerFlow,
				BytesPerPkt: sc.BytesPerPkt,
				Proto:       app.Proto,
				Src:         AddrTemplate{Mode: AddrRandomAtPoP, PoP: od.Origin},
				Dst:         AddrTemplate{Mode: AddrRandomAtPoP, PoP: od.Dest},
				SrcPort:     PortTemplate{Mode: PortEphemeral},
				DstPort:     app.DstPort,
			})
		}
	}
	return out
}
