package traffic

import (
	"math"
	"math/rand/v2"

	"netwide/internal/flow"
	"netwide/internal/sampling"
)

// Measure converts a FlowClass into the sampled flow records a router would
// export for it, invoking emit for each visible record.
//
// The statistics reproduce per-flow packet sampling without materializing
// true flows:
//
//   - the number of flows visible at all is Binomial(Count, 1-(1-q)^n);
//   - each visible flow's sampled packet count is Binomial(n, q)
//     conditioned on being at least 1 (resampled by clamping, whose bias is
//     negligible at the class sizes used here);
//   - addresses and ports are drawn per visible flow from the class
//     templates.
//
// The return values are the total sampled bytes, packets and flow count for
// the class, which the caller accumulates into the B/P/F matrices.
func Measure(c FlowClass, s sampling.Sampler, realm *Realm, rng *rand.Rand, emit func(flow.Record)) (bytes, packets, flows uint64) {
	if c.Count == 0 {
		return 0, 0, 0
	}
	pVis := s.FlowDetectionProb(c.PktsPerFlow)
	visible := sampling.Binomial(c.Count, pVis, rng)
	if visible == 0 {
		return 0, 0, 0
	}
	for i := uint64(0); i < visible; i++ {
		pkts := sampling.BinomialAtLeastOne(c.PktsPerFlow, s.Rate, rng)
		b := uint64(math.Round(float64(pkts) * c.BytesPerPkt))
		rec := flow.Record{
			Key: flow.Key{
				Src:     realm.DrawAddr(c.Src, rng),
				Dst:     realm.DrawAddr(c.Dst, rng),
				SrcPort: DrawPort(c.SrcPort, rng),
				DstPort: DrawPort(c.DstPort, rng),
				Proto:   c.Proto,
			},
			Bytes:   b,
			Packets: pkts,
		}
		bytes += b
		packets += pkts
		flows++
		if emit != nil {
			emit(rec)
		}
	}
	return bytes, packets, flows
}
