package traffic

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"netwide/internal/flow"
	"netwide/internal/ipaddr"
	"netwide/internal/sampling"
	"netwide/internal/topology"
)

func TestProfileShape(t *testing.T) {
	p := DefaultProfile()
	// Peak hour beats 4am.
	peakBin := int(p.PeakHour * BinsPerHour)
	nightBin := 4 * BinsPerHour
	if p.At(peakBin) <= p.At(nightBin) {
		t.Fatalf("peak %v <= night %v", p.At(peakBin), p.At(nightBin))
	}
	// Weekend suppression: same hour Saturday vs Wednesday.
	wed := 2*BinsPerDay + peakBin
	sat := 5*BinsPerDay + peakBin
	if p.At(sat) >= p.At(wed) {
		t.Fatalf("weekend %v >= weekday %v", p.At(sat), p.At(wed))
	}
	// Strictly positive everywhere.
	for bin := 0; bin < BinsPerWeek; bin++ {
		if p.At(bin) <= 0 {
			t.Fatalf("profile non-positive at bin %d", bin)
		}
	}
	if p.At(-5) != p.At(0) {
		t.Fatal("negative bins should clamp")
	}
}

func TestProfilePeriodicOverWeeks(t *testing.T) {
	p := DefaultProfile()
	for bin := 0; bin < BinsPerWeek; bin += 17 {
		if p.At(bin) != p.At(bin+BinsPerWeek) {
			t.Fatalf("profile not week-periodic at bin %d", bin)
		}
	}
}

func TestLognormalNoiseDeterministicAndUnitMean(t *testing.T) {
	a := LognormalNoise(7, 3, 100, 0.3)
	b := LognormalNoise(7, 3, 100, 0.3)
	if a != b {
		t.Fatal("noise not deterministic")
	}
	if LognormalNoise(8, 3, 100, 0.3) == a {
		t.Fatal("noise ignores seed")
	}
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += LognormalNoise(1, i%121, i/121, 0.3)
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.01 {
		t.Fatalf("noise mean %v, want ~1", mean)
	}
}

func TestDefaultMixValidates(t *testing.T) {
	if err := DefaultMix().Validate(); err != nil {
		t.Fatal(err)
	}
	if DefaultMix().MeanFlowBytes() <= 0 {
		t.Fatal("mean flow bytes must be positive")
	}
	var empty Mix
	if err := empty.Validate(); err == nil {
		t.Fatal("empty mix accepted")
	}
	bad := DefaultMix()
	bad[0].VolumeShare = 0.01
	if err := bad.Validate(); err == nil {
		t.Fatal("unnormalized mix accepted")
	}
}

func TestRealmTemplates(t *testing.T) {
	top := topology.Abilene()
	realm := NewRealm(top)
	rng := rand.New(rand.NewPCG(1, 2))

	// AddrRandomAtPoP yields addresses inside some customer of that PoP.
	tpl := AddrTemplate{Mode: AddrRandomAtPoP, PoP: topology.NYCM}
	for i := 0; i < 200; i++ {
		a := realm.DrawAddr(tpl, rng)
		found := false
		for _, c := range top.CustomersAt(topology.NYCM) {
			for _, p := range c.Prefixes {
				if p.Contains(a) {
					found = true
				}
			}
		}
		if !found {
			t.Fatalf("address %s outside NYCM customer space", a)
		}
	}

	// AddrHostSetAtPoP draws from a bounded host population.
	tpl = AddrTemplate{Mode: AddrHostSetAtPoP, PoP: topology.CHIN, Hosts: 4}
	seen := map[ipaddr.Addr]bool{}
	for i := 0; i < 200; i++ {
		seen[realm.DrawAddr(tpl, rng)] = true
	}
	if len(seen) > 4 {
		t.Fatalf("host set produced %d distinct hosts, want <= 4", len(seen))
	}

	// Fixed address.
	want := ipaddr.FromOctets(10, 1, 2, 3)
	if got := realm.DrawAddr(AddrTemplate{Mode: AddrFixed, Fixed: want}, rng); got != want {
		t.Fatalf("fixed addr %s", got)
	}

	// Prefix-constrained.
	pfx := ipaddr.MustPrefix("10.200.0.0", 14)
	for i := 0; i < 100; i++ {
		if a := realm.DrawAddr(AddrTemplate{Mode: AddrRandomInPrefix, Prefix: pfx}, rng); !pfx.Contains(a) {
			t.Fatalf("prefix draw %s outside %s", a, pfx)
		}
	}
}

func TestDrawPortModes(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	if p := DrawPort(PortTemplate{Mode: PortFixed, Port: 80}, rng); p != 80 {
		t.Fatalf("fixed port %d", p)
	}
	for i := 0; i < 200; i++ {
		if p := DrawPort(PortTemplate{Mode: PortEphemeral}, rng); p < 1024 {
			t.Fatalf("ephemeral port %d below 1024", p)
		}
		p := DrawPort(PortTemplate{Mode: PortRange, Lo: 5000, Hi: 5050}, rng)
		if p < 5000 || p > 5050 {
			t.Fatalf("range port %d", p)
		}
	}
}

func TestBackgroundVolumesFollowGravityAndProfile(t *testing.T) {
	top := topology.Abilene()
	bg, err := NewBackground(top, 2e6, 42)
	if err != nil {
		t.Fatal(err)
	}
	bg.NoiseSigma = 0 // isolate the deterministic structure
	big := topology.ODPair{Origin: topology.NYCM, Dest: topology.WASH}
	small := topology.ODPair{Origin: topology.KSCY, Dest: topology.DNVR}
	if bg.TrueVolume(big, 100) <= bg.TrueVolume(small, 100) {
		t.Fatal("gravity ordering violated")
	}
	peak := int(bg.Profile.PeakHour * BinsPerHour)
	night := 4 * BinsPerHour
	if bg.TrueVolume(big, peak) <= bg.TrueVolume(big, night) {
		t.Fatal("diurnal ordering violated")
	}
	if _, err := NewBackground(top, 0, 1); err == nil {
		t.Fatal("zero rate accepted")
	}
}

func TestBackgroundClassesDeterministic(t *testing.T) {
	top := topology.Abilene()
	bg, err := NewBackground(top, 2e6, 7)
	if err != nil {
		t.Fatal(err)
	}
	od := topology.ODPair{Origin: topology.ATLA, Dest: topology.LOSA}
	c1 := bg.Classes(od, 55, bg.BinRNG(od, 55))
	c2 := bg.Classes(od, 55, bg.BinRNG(od, 55))
	if len(c1) != len(c2) {
		t.Fatalf("regeneration differs: %d vs %d classes", len(c1), len(c2))
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatalf("class %d differs between regenerations", i)
		}
	}
	for _, c := range c1 {
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMeasureStatistics(t *testing.T) {
	top := topology.Abilene()
	realm := NewRealm(top)
	s, _ := sampling.NewSampler(0.01)
	rng := rand.New(rand.NewPCG(5, 6))
	// 20k flows of 100 packets: expect ~20k*0.634 visible... with n=100,
	// pVis = 1-0.99^100 = 0.634; total sampled packets ~ 20k*100*0.01=20000.
	c := FlowClass{
		Count: 20000, PktsPerFlow: 100, BytesPerPkt: 500, Proto: flow.ProtoTCP,
		Src:     AddrTemplate{Mode: AddrRandomAtPoP, PoP: topology.ATLA},
		Dst:     AddrTemplate{Mode: AddrRandomAtPoP, PoP: topology.CHIN},
		SrcPort: PortTemplate{Mode: PortEphemeral},
		DstPort: PortTemplate{Mode: PortFixed, Port: 80},
	}
	var emitted int
	bytes, pkts, flows := Measure(c, s, realm, rng, func(r flow.Record) {
		emitted++
		if r.Packets == 0 {
			t.Fatal("emitted zero-packet record")
		}
		if r.Key.DstPort != 80 {
			t.Fatalf("dst port %d", r.Key.DstPort)
		}
	})
	if uint64(emitted) != flows {
		t.Fatalf("emitted %d != flows %d", emitted, flows)
	}
	wantVis := 20000 * 0.6340
	if math.Abs(float64(flows)-wantVis)/wantVis > 0.05 {
		t.Fatalf("visible flows %d, want ~%v", flows, wantVis)
	}
	wantPkts := 20000.0 * 100 * 0.01
	if math.Abs(float64(pkts)-wantPkts)/wantPkts > 0.05 {
		t.Fatalf("sampled packets %d, want ~%v", pkts, wantPkts)
	}
	wantBytes := wantPkts * 500
	if math.Abs(float64(bytes)-wantBytes)/wantBytes > 0.05 {
		t.Fatalf("sampled bytes %d, want ~%v", bytes, wantBytes)
	}
}

func TestMeasureSingleAlphaFlow(t *testing.T) {
	// One enormous flow (an ALPHA transfer): always visible, one record.
	top := topology.Abilene()
	realm := NewRealm(top)
	s, _ := sampling.NewSampler(0.01)
	rng := rand.New(rand.NewPCG(7, 8))
	c := FlowClass{
		Count: 1, PktsPerFlow: 1_000_000, BytesPerPkt: 1400, Proto: flow.ProtoTCP,
		Src:     AddrTemplate{Mode: AddrFixed, Fixed: ipaddr.FromOctets(10, 0, 0, 1)},
		Dst:     AddrTemplate{Mode: AddrFixed, Fixed: ipaddr.FromOctets(10, 96, 0, 1)},
		SrcPort: PortTemplate{Mode: PortFixed, Port: 5001},
		DstPort: PortTemplate{Mode: PortFixed, Port: 5001},
	}
	_, pkts, flows := Measure(c, s, realm, rng, nil)
	if flows != 1 {
		t.Fatalf("flows=%d, want 1", flows)
	}
	if math.Abs(float64(pkts)-10000)/10000 > 0.1 {
		t.Fatalf("sampled pkts %d, want ~10000", pkts)
	}
}

func TestMeasureEmptyClass(t *testing.T) {
	s, _ := sampling.NewSampler(0.01)
	realm := NewRealm(topology.Abilene())
	rng := rand.New(rand.NewPCG(9, 10))
	b, p, f := Measure(FlowClass{}, s, realm, rng, nil)
	if b != 0 || p != 0 || f != 0 {
		t.Fatal("empty class produced traffic")
	}
}

// Property: measured totals are internally consistent (flows>0 iff
// packets>0, bytes scale with packets).
func TestPropMeasureConsistency(t *testing.T) {
	top := topology.Abilene()
	realm := NewRealm(top)
	s, _ := sampling.NewSampler(0.01)
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		c := FlowClass{
			Count:       uint64(rng.IntN(5000)),
			PktsPerFlow: uint64(1 + rng.IntN(2000)),
			BytesPerPkt: 40 + rng.Float64()*1400,
			Proto:       flow.ProtoTCP,
			Src:         AddrTemplate{Mode: AddrRandomAtPoP, PoP: topology.PoP(rng.IntN(topology.NumPoPs))},
			Dst:         AddrTemplate{Mode: AddrRandomAtPoP, PoP: topology.PoP(rng.IntN(topology.NumPoPs))},
			SrcPort:     PortTemplate{Mode: PortEphemeral},
			DstPort:     PortTemplate{Mode: PortFixed, Port: 80},
		}
		bytes, pkts, flows := Measure(c, s, realm, rng, nil)
		if (flows == 0) != (pkts == 0) || (flows == 0) != (bytes == 0) {
			return false
		}
		return pkts >= flows // every visible flow has at least 1 packet
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
