// Package traffic synthesizes the network's offered load: diurnal and
// weekly profiles, an application mix with heavy-tailed flow sizes, and the
// flow-class abstraction that both background traffic and anomaly injectors
// are expressed in.
//
// A FlowClass describes a homogeneous group of true IP flows ("Count flows
// of PktsPerFlow packets from sources matching Src to destinations matching
// Dst"). The measurement layer turns classes into sampled flow records
// without ever materializing the true flows, which keeps a 4-week network
// simulation tractable while remaining statistically faithful to 1%
// packet sampling.
package traffic

import (
	"fmt"
	"math/rand/v2"

	"netwide/internal/flow"
	"netwide/internal/ipaddr"
	"netwide/internal/topology"
)

// AddrMode selects how a flow endpoint address is drawn.
type AddrMode uint8

const (
	// AddrFixed always yields Template.Fixed.
	AddrFixed AddrMode = iota
	// AddrRandomAtPoP yields a random host of a random customer (weighted
	// by customer size) homed at Template.PoP.
	AddrRandomAtPoP
	// AddrHostSetAtPoP yields one of Template.Hosts deterministic hosts of
	// the largest customer at Template.PoP (a "topologically clustered"
	// population, as in flash crowds).
	AddrHostSetAtPoP
	// AddrRandomInPrefix yields a random host inside Template.Prefix.
	AddrRandomInPrefix
	// AddrSpoofed yields a uniformly random 32-bit address (DOS source
	// spoofing).
	AddrSpoofed
)

// AddrTemplate describes one endpoint's address population.
type AddrTemplate struct {
	Mode   AddrMode
	Fixed  ipaddr.Addr
	Prefix ipaddr.Prefix
	PoP    topology.PoP
	Hosts  uint64
}

// PortMode selects how a port is drawn.
type PortMode uint8

const (
	// PortFixed always yields Template.Port.
	PortFixed PortMode = iota
	// PortEphemeral yields a random port in [1024, 65535].
	PortEphemeral
	// PortRandom yields any port, 0 included (network scans).
	PortRandom
	// PortRange yields a random port in [Template.Lo, Template.Hi].
	PortRange
)

// PortTemplate describes a port population.
type PortTemplate struct {
	Mode   PortMode
	Port   uint16
	Lo, Hi uint16
}

// FlowClass is a homogeneous group of true IP flows within one (OD pair,
// timebin).
type FlowClass struct {
	// Count is the number of true flows in the group.
	Count uint64
	// PktsPerFlow is the true packet count of each flow.
	PktsPerFlow uint64
	// BytesPerPkt is the mean packet size in bytes.
	BytesPerPkt float64
	Proto       flow.Proto
	Src, Dst    AddrTemplate
	SrcPort     PortTemplate
	DstPort     PortTemplate
}

// Validate rejects classes the measurement layer cannot handle.
func (c FlowClass) Validate() error {
	if c.PktsPerFlow == 0 {
		return fmt.Errorf("traffic: class with zero packets per flow")
	}
	if c.BytesPerPkt < 20 {
		return fmt.Errorf("traffic: bytes per packet %v below IP header size", c.BytesPerPkt)
	}
	return nil
}

// TrueBytes returns the true byte volume of the class.
func (c FlowClass) TrueBytes() float64 {
	return float64(c.Count) * float64(c.PktsPerFlow) * c.BytesPerPkt
}

// Realm carries the address-space context needed to instantiate templates:
// for each PoP, the weighted customer prefixes homed there.
type Realm struct {
	spaces []weightedPrefixes
}

type weightedPrefixes struct {
	prefixes []ipaddr.Prefix
	cum      []float64 // cumulative weights for O(log n) sampling
	total    float64
}

// NewRealm indexes the topology's customers by home PoP. Multihomed
// customers contribute their address space at their primary home (address
// space does not move during ingress shifts; only routing does).
func NewRealm(top *topology.Topology) *Realm {
	r := &Realm{spaces: make([]weightedPrefixes, top.NumPoPs())}
	for i := range top.Customers {
		c := &top.Customers[i]
		sp := &r.spaces[c.Homes[0]]
		for _, p := range c.Prefixes {
			sp.prefixes = append(sp.prefixes, p)
			sp.total += c.Weight
			sp.cum = append(sp.cum, sp.total)
		}
	}
	return r
}

// prefixAt picks a customer prefix at the PoP, weighted by customer size.
func (r *Realm) prefixAt(p topology.PoP, rng *rand.Rand) ipaddr.Prefix {
	sp := &r.spaces[p]
	if len(sp.prefixes) == 0 {
		panic(fmt.Sprintf("traffic: no customer prefixes at %s", p))
	}
	x := rng.Float64() * sp.total
	lo, hi := 0, len(sp.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if sp.cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return sp.prefixes[lo]
}

// largestPrefixAt returns the first (largest-weight) prefix at the PoP.
func (r *Realm) largestPrefixAt(p topology.PoP) ipaddr.Prefix {
	sp := &r.spaces[p]
	if len(sp.prefixes) == 0 {
		panic(fmt.Sprintf("traffic: no customer prefixes at %s", p))
	}
	return sp.prefixes[0]
}

// DrawAddr instantiates an address template.
func (r *Realm) DrawAddr(t AddrTemplate, rng *rand.Rand) ipaddr.Addr {
	switch t.Mode {
	case AddrFixed:
		return t.Fixed
	case AddrRandomAtPoP:
		return r.prefixAt(t.PoP, rng).Random(rng)
	case AddrHostSetAtPoP:
		hosts := t.Hosts
		if hosts == 0 {
			hosts = 1
		}
		return r.largestPrefixAt(t.PoP).Nth(rng.Uint64N(hosts))
	case AddrRandomInPrefix:
		return t.Prefix.Random(rng)
	case AddrSpoofed:
		return ipaddr.Addr(rng.Uint32())
	default:
		panic(fmt.Sprintf("traffic: unknown addr mode %d", t.Mode))
	}
}

// DrawPort instantiates a port template.
func DrawPort(t PortTemplate, rng *rand.Rand) uint16 {
	switch t.Mode {
	case PortFixed:
		return t.Port
	case PortEphemeral:
		return uint16(1024 + rng.UintN(65536-1024))
	case PortRandom:
		return uint16(rng.UintN(65536))
	case PortRange:
		if t.Hi < t.Lo {
			panic(fmt.Sprintf("traffic: port range [%d,%d] inverted", t.Lo, t.Hi))
		}
		return t.Lo + uint16(rng.UintN(uint(t.Hi-t.Lo)+1))
	default:
		panic(fmt.Sprintf("traffic: unknown port mode %d", t.Mode))
	}
}
