package traffic

import (
	"math"
)

// Timebin constants for the paper's 5-minute binning.
const (
	BinSeconds  = 300
	BinsPerHour = 12
	BinsPerDay  = 288
	BinsPerWeek = 7 * BinsPerDay
)

// Profile is the deterministic temporal shape of network demand: a daily
// cycle (low at night, peak in the afternoon), a weaker semi-diurnal
// harmonic, and a weekday/weekend factor. Values are multiplicative around
// a mean of roughly 1.
type Profile struct {
	// DailyAmp is the amplitude of the 24h harmonic (0 disables).
	DailyAmp float64
	// SemiAmp is the amplitude of the 12h harmonic.
	SemiAmp float64
	// PeakHour is the local hour of the daily maximum.
	PeakHour float64
	// WeekendFactor scales Saturday and Sunday (academic networks drop to
	// ~60% on weekends).
	WeekendFactor float64
}

// DefaultProfile mimics the diurnal structure visible in the paper's
// Figure 1 state-vector plots.
func DefaultProfile() Profile {
	return Profile{DailyAmp: 0.45, SemiAmp: 0.12, PeakHour: 15, WeekendFactor: 0.65}
}

// At returns the demand multiplier for a bin index (bin 0 is Monday
// 00:00). The multiplier is always positive.
func (p Profile) At(bin int) float64 {
	if bin < 0 {
		bin = 0
	}
	dayBin := bin % BinsPerDay
	hour := float64(dayBin) / BinsPerHour
	day := (bin / BinsPerDay) % 7
	v := 1 +
		p.DailyAmp*math.Cos(2*math.Pi*(hour-p.PeakHour)/24) +
		p.SemiAmp*math.Cos(4*math.Pi*(hour-p.PeakHour)/24)
	if day >= 5 { // Saturday, Sunday
		v *= p.WeekendFactor
	}
	if v < 0.05 {
		v = 0.05
	}
	return v
}

// noiseMix hashes (seed, od, bin, salt) into a deterministic uniform in
// (0,1); the generator uses it for reproducible per-bin randomness that can
// be re-derived in isolation (pass 2 of the pipeline regenerates single
// bins without replaying the whole stream).
func noiseMix(seed uint64, od, bin int, salt uint64) float64 {
	x := seed ^ 0x9E3779B97F4A7C15
	x ^= uint64(od) * 0xBF58476D1CE4E5B9
	x ^= uint64(bin) * 0x94D049BB133111EB
	x ^= salt * 0xD6E8FEB86659FD93
	// splitmix64 finalizer.
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	// Map to (0,1) avoiding exact 0.
	return (float64(x>>11) + 0.5) / (1 << 53)
}

// LognormalNoise returns a deterministic multiplicative noise factor
// exp(sigma*Z) with E[factor] normalized to 1, keyed by (seed, od, bin).
func LognormalNoise(seed uint64, od, bin int, sigma float64) float64 {
	u1 := noiseMix(seed, od, bin, 1)
	u2 := noiseMix(seed, od, bin, 2)
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return math.Exp(sigma*z - sigma*sigma/2)
}
