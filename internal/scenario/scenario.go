// Package scenario is the declarative anomaly-injection engine: a Scenario
// (a plain Go struct, loadable from JSON by the command-line tools)
// schedules anomaly episodes — DDoS, scans, flash crowds, alpha flows,
// outages, worm-like multi-origin sweeps — with per-episode magnitude,
// duration and OD targeting, and compiles them into the injector Ledger the
// measurement pipeline consumes.
//
// It replaces the baked-in random schedule as the way to drive experiments:
// where anomaly.DefaultSchedule reproduces the paper's Table 3 prevalence
// on whatever topology it is given, a Scenario pins down exactly which
// anomalies hit which OD pairs when — the controlled input that detection
// quality sweeps across topologies need. Episode fields left zero fall back
// to the same magnitude and duration distributions the default schedule
// uses, so a scenario can be as loose ("20 scans somewhere, sometime") or
// as pinned ("a 9x DDoS against LOSA from 3 origins at bin 288") as the
// experiment demands.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"os"

	"netwide/internal/anomaly"
	"netwide/internal/flow"
	"netwide/internal/ipaddr"
	"netwide/internal/topology"
	"netwide/internal/traffic"
)

// Episode schedules Count anomalies of one type. Zero-valued fields choose
// the same defaults the random schedule uses, drawn deterministically from
// the scenario seed.
type Episode struct {
	// Type is one of the honest classes "alpha", "dos", "ddos", "flash",
	// "scan", "portscan", "worm", "ptmult", "outage", "ingress-shift", or
	// the adversarial classes "stealth-ddos", "coordinated", "slow-ramp",
	// "contamination" (see anomaly's adversarial injectors).
	Type string `json:"type"`
	// Count is the number of copies to schedule (0 means 1).
	Count int `json:"count,omitempty"`
	// StartBin pins the start; -1 (or omitted-as--1) places each copy at a
	// random bin. Note that 0 is a valid pinned start, so JSON scenarios
	// wanting random placement must write "start_bin": -1.
	StartBin int `json:"start_bin"`
	// DurationBins pins the length; 0 draws the type's default duration.
	DurationBins int `json:"duration_bins,omitempty"`
	// Magnitude scales the episode's intensity as a multiple of the mean
	// per-(OD,bin) traffic volume; 0 draws the type's default range. For
	// "outage" it is instead the surviving traffic fraction (0 -> default
	// 2-7% residual); for "ingress-shift" the shifted customer share.
	Magnitude float64 `json:"magnitude,omitempty"`
	// Origin and Dest name PoPs of the target OD pair ("" means random).
	// For "outage", Origin names the failing PoP; for "ingress-shift",
	// Origin and Dest name the from/to PoPs (default: the topology's
	// multihomed customer homes).
	Origin string `json:"origin,omitempty"`
	Dest   string `json:"dest,omitempty"`
	// Origins is the origin-PoP fan-in of "ddos" and "worm" episodes
	// (0 means 2-4 at random).
	Origins int `json:"origins,omitempty"`
	// Port pins the service/attack port; 0 draws the type's default.
	Port uint16 `json:"port,omitempty"`
}

// Scenario is a full injection plan.
type Scenario struct {
	Name string `json:"name"`
	// Seed drives all randomness left open by the episodes (targets,
	// durations, magnitudes); 0 derives it from the dataset seed, so the
	// same scenario file played under different dataset seeds yields
	// different concrete placements.
	Seed     uint64    `json:"seed,omitempty"`
	Episodes []Episode `json:"episodes"`
}

// episodeTypes lists the accepted Episode.Type values.
var episodeTypes = map[string]bool{
	"alpha": true, "dos": true, "ddos": true, "flash": true, "scan": true,
	"portscan": true, "worm": true, "ptmult": true, "outage": true,
	"ingress-shift": true,
	"stealth-ddos":  true, "coordinated": true, "slow-ramp": true,
	"contamination": true,
}

// FromJSON parses a scenario, rejecting unknown fields and trailing
// content so typos in episode keys or stray text fail loudly instead of
// silently injecting defaults.
func FromJSON(data []byte) (*Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parse: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("scenario: trailing content after the scenario object")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadFile reads and parses a scenario JSON file.
func LoadFile(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	s, err := FromJSON(data)
	if err != nil {
		return nil, fmt.Errorf("scenario: %s: %w", path, err)
	}
	return s, nil
}

// JSON renders the scenario as indented JSON (the format LoadFile reads).
func (s *Scenario) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Shape limits enforced by Validate.
const (
	// MaxMagnitude caps the volume multiplier of every additive episode
	// class: beyond it the flow counts overflow any realistic bin and the
	// scenario is almost certainly a typo.
	MaxMagnitude = 1e4
	// MaxStealthMagnitude caps "stealth-ddos": the class exists to model
	// attacks holding under the detection threshold, and past a few
	// multiples of the mean OD load the episode is an ordinary ddos.
	MaxStealthMagnitude = 8
	// MaxContaminationBoost caps the "contamination" volume boost: the
	// class models a plateau subtle enough to survive inside a training
	// window, not a flood.
	MaxContaminationBoost = 4
	// MaxDurationBins caps a pinned episode duration at four weeks — longer
	// than any run the generator produces, so a bigger value is a typo
	// caught here rather than a Build error naming the wrong limit.
	MaxDurationBins = 4 * traffic.BinsPerWeek
)

// Validate checks episode shapes (types, counts, durations, magnitudes).
// Topology-dependent checks — PoP names, bin ranges — happen in Build,
// where the topology and run length are known.
func (s *Scenario) Validate() error {
	if len(s.Episodes) == 0 {
		return fmt.Errorf("scenario: %q has no episodes", s.Name)
	}
	for i, e := range s.Episodes {
		if !episodeTypes[e.Type] {
			return fmt.Errorf("scenario: episode %d: unknown type %q", i, e.Type)
		}
		if e.Count < 0 {
			return fmt.Errorf("scenario: episode %d: negative count", i)
		}
		if e.StartBin < -1 {
			return fmt.Errorf("scenario: episode %d: start_bin %d (want >= 0, or -1 for random)", i, e.StartBin)
		}
		if e.DurationBins < 0 {
			return fmt.Errorf("scenario: episode %d: negative duration", i)
		}
		if e.DurationBins > MaxDurationBins {
			return fmt.Errorf("scenario: episode %d: duration %d bins exceeds the %d-bin (4-week) cap", i, e.DurationBins, MaxDurationBins)
		}
		if e.Magnitude < 0 {
			return fmt.Errorf("scenario: episode %d: negative magnitude", i)
		}
		if e.Magnitude > MaxMagnitude {
			return fmt.Errorf("scenario: episode %d: magnitude %v implausible (want <= %v times the mean OD load)", i, e.Magnitude, float64(MaxMagnitude))
		}
		if e.Origins < 0 {
			return fmt.Errorf("scenario: episode %d: negative origins", i)
		}
		switch e.Type {
		case "outage":
			if e.Magnitude >= 1 {
				return fmt.Errorf("scenario: episode %d: outage magnitude %v is the surviving fraction, want < 1", i, e.Magnitude)
			}
		case "ingress-shift":
			if e.Magnitude > 1 {
				return fmt.Errorf("scenario: episode %d: ingress-shift magnitude %v is the shifted share, want <= 1", i, e.Magnitude)
			}
		case "stealth-ddos":
			if e.Magnitude > MaxStealthMagnitude {
				return fmt.Errorf("scenario: episode %d: stealth-ddos magnitude %v is not stealthy (want <= %d times the mean OD load; use ddos for overt attacks)", i, e.Magnitude, MaxStealthMagnitude)
			}
		case "contamination":
			if e.Magnitude > MaxContaminationBoost {
				return fmt.Errorf("scenario: episode %d: contamination magnitude %v is the extra volume fraction, want <= %d (use dos/ddos for floods)", i, e.Magnitude, MaxContaminationBoost)
			}
		case "slow-ramp":
			if e.DurationBins == 1 {
				return fmt.Errorf("scenario: episode %d: slow-ramp duration 1 bin cannot ramp (want >= 2 bins or 0 for the default)", i)
			}
		}
	}
	return nil
}

// builder carries the compilation state of one Build call.
type builder struct {
	top       *topology.Topology
	bg        *traffic.Background
	rng       *rand.Rand
	totalBins int
	refBytes  float64
	id        int
}

// Build compiles the scenario into a ground-truth Ledger for a run of the
// given number of weeks over the topology/background pair. All randomness
// left open by the episodes comes from the scenario seed (or the background
// seed when unset), so compilation is reproducible.
func (s *Scenario) Build(top *topology.Topology, bg *traffic.Background, weeks int) (*anomaly.Ledger, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if weeks <= 0 {
		return nil, fmt.Errorf("scenario: weeks %d must be positive", weeks)
	}
	seed := s.Seed
	if seed == 0 {
		seed = bg.Seed
	}
	b := &builder{
		top: top, bg: bg,
		rng:       rand.New(rand.NewPCG(seed, 0x5CE9A210)),
		totalBins: weeks * traffic.BinsPerWeek,
		refBytes:  bg.MeanRateBps * traffic.BinSeconds / float64(top.NumODPairs()),
	}
	led := &anomaly.Ledger{}
	for i, e := range s.Episodes {
		count := e.Count
		if count == 0 {
			count = 1
		}
		for c := 0; c < count; c++ {
			inj, err := b.compile(e)
			if err != nil {
				return nil, fmt.Errorf("scenario: episode %d (%s): %w", i, e.Type, err)
			}
			led.Injectors = append(led.Injectors, inj)
		}
	}
	return led, nil
}

func (b *builder) nextID() int { b.id++; return b.id }

// pop resolves a PoP name, or draws one at random when the name is empty.
func (b *builder) pop(name string) (topology.PoP, error) {
	if name == "" {
		return topology.PoP(b.rng.IntN(b.top.NumPoPs())), nil
	}
	return b.top.PoPByName(name)
}

// od resolves the episode's target OD pair.
func (b *builder) od(e Episode) (topology.ODPair, error) {
	o, err := b.pop(e.Origin)
	if err != nil {
		return topology.ODPair{}, err
	}
	d, err := b.pop(e.Dest)
	if err != nil {
		return topology.ODPair{}, err
	}
	return topology.ODPair{Origin: o, Dest: d}, nil
}

// hostAt picks a deterministic host of a random customer at the PoP.
func (b *builder) hostAt(p topology.PoP, salt uint64) ipaddr.Addr {
	custs := b.top.CustomersAt(p)
	c := custs[b.rng.IntN(len(custs))]
	return c.Prefixes[0].Nth(salt)
}

// window picks the episode's (start, duration): pinned values are honored,
// open ones drawn from the type default passed in defDur.
func (b *builder) window(e Episode, defDur int) (start, dur int, err error) {
	dur = e.DurationBins
	if dur == 0 {
		dur = defDur
	}
	if dur >= b.totalBins {
		return 0, 0, fmt.Errorf("duration %d bins exceeds the %d-bin run", dur, b.totalBins)
	}
	start = e.StartBin
	if start < 0 {
		start = b.rng.IntN(b.totalBins - dur)
	}
	// A pinned window must fit entirely inside the run: a silently
	// truncated episode would record ground-truth bins that were never
	// injected, breaking recall accounting.
	if start+dur > b.totalBins {
		return 0, 0, fmt.Errorf("window [%d,%d] extends past the %d-bin run", start, start+dur-1, b.totalBins)
	}
	return start, dur, nil
}

// mag returns the episode magnitude, or a draw from [lo, hi) when unset.
func (b *builder) mag(e Episode, lo, hi float64) float64 {
	if e.Magnitude > 0 {
		return e.Magnitude
	}
	return lo + b.rng.Float64()*(hi-lo)
}

// port returns the pinned port or a deterministic draw from defaults.
func (b *builder) port(e Episode, defaults ...uint16) uint16 {
	if e.Port != 0 {
		return e.Port
	}
	return defaults[b.rng.IntN(len(defaults))]
}

// origins draws a multi-origin OD set targeting dst; the fan-in defaults to
// [defLo, defLo+defSpan) when the episode leaves Origins unset.
func (b *builder) originODs(e Episode, dst topology.PoP, distinct bool, defLo, defSpan int) []topology.ODPair {
	n := e.Origins
	if n == 0 {
		n = defLo + b.rng.IntN(defSpan)
	}
	if max := b.top.NumPoPs() - 1; distinct && n > max {
		n = max
	}
	seen := map[topology.PoP]bool{dst: true}
	var ods []topology.ODPair
	for len(ods) < n {
		o := topology.PoP(b.rng.IntN(b.top.NumPoPs()))
		if distinct {
			if seen[o] {
				continue
			}
			seen[o] = true
		}
		ods = append(ods, topology.ODPair{Origin: o, Dest: dst})
	}
	return ods
}

// compile materializes one copy of the episode as an injector. The
// magnitude and duration defaults mirror anomaly.DefaultSchedule, so an
// unpinned scenario episode is statistically indistinguishable from a
// schedule-generated anomaly of the same type.
func (b *builder) compile(e Episode) (anomaly.Injector, error) {
	switch e.Type {
	case "alpha":
		od, err := b.od(e)
		if err != nil {
			return nil, err
		}
		start, dur, err := b.window(e, 1+b.rng.IntN(2))
		if err != nil {
			return nil, err
		}
		vol := b.refBytes * b.mag(e, 6, 20)
		port := b.port(e, flow.PortIperfLo, 5001, 5010, flow.PortIperfHi, flow.PortPathdiag, flow.PortKazaa)
		return anomaly.NewAlpha(b.nextID(), od, start, dur,
			b.hostAt(od.Origin, b.rng.Uint64N(1000)), b.hostAt(od.Dest, b.rng.Uint64N(1000)),
			port, vol), nil

	case "dos":
		od, err := b.od(e)
		if err != nil {
			return nil, err
		}
		start, dur, err := b.window(e, 1+b.rng.IntN(4))
		if err != nil {
			return nil, err
		}
		victim := b.hostAt(od.Dest, b.rng.Uint64N(100))
		flows := uint64(b.refBytes / 4700 * b.mag(e, 8, 33))
		return anomaly.NewDOS(b.nextID(), []topology.ODPair{od}, start, dur,
			victim, b.port(e, flow.PortZero, flow.PortZero, flow.PortPOP, flow.PortIdentd),
			flows, uint64(2+b.rng.IntN(12))), nil

	case "ddos":
		dst, err := b.pop(e.Dest)
		if err != nil {
			return nil, err
		}
		ods := b.originODs(e, dst, true, 2, 3)
		start, dur, err := b.window(e, 1+b.rng.IntN(4))
		if err != nil {
			return nil, err
		}
		victim := b.hostAt(dst, b.rng.Uint64N(100))
		flows := uint64(b.refBytes / 4700 * b.mag(e, 5, 17))
		return anomaly.NewDOS(b.nextID(), ods, start, dur,
			victim, b.port(e, flow.PortZero), flows, uint64(2+b.rng.IntN(10))), nil

	case "flash":
		od, err := b.od(e)
		if err != nil {
			return nil, err
		}
		start, dur, err := b.window(e, 1+b.rng.IntN(3))
		if err != nil {
			return nil, err
		}
		server := b.hostAt(od.Dest, b.rng.Uint64N(20))
		port := e.Port
		if port == 0 {
			port = flow.PortHTTP
			if b.rng.Float64() < 0.15 {
				port = flow.PortDNS
			}
		}
		clients := b.top.CustomersAt(od.Origin)
		pfx := clients[b.rng.IntN(len(clients))].Prefixes[0]
		flows := uint64(b.refBytes / 4700 * b.mag(e, 10, 35))
		return anomaly.NewFlash(b.nextID(), od, start, dur, server, port, pfx, flows), nil

	case "scan":
		od, err := b.od(e)
		if err != nil {
			return nil, err
		}
		start, dur, err := b.window(e, 1+b.rng.IntN(2))
		if err != nil {
			return nil, err
		}
		scanner := b.hostAt(od.Origin, b.rng.Uint64N(5000))
		flows := uint64(b.refBytes / 4700 * b.mag(e, 15, 55))
		return anomaly.NewNetworkScan(b.nextID(), od, start, dur, scanner,
			b.port(e, flow.PortNetBIOS, flow.PortNetBIOS, flow.PortMSSQL, flow.PortDeloder), flows), nil

	case "portscan":
		od, err := b.od(e)
		if err != nil {
			return nil, err
		}
		start, dur, err := b.window(e, 1+b.rng.IntN(2))
		if err != nil {
			return nil, err
		}
		scanner := b.hostAt(od.Origin, b.rng.Uint64N(5000))
		target := b.hostAt(od.Dest, b.rng.Uint64N(100))
		flows := uint64(b.refBytes / 4700 * b.mag(e, 15, 55))
		return anomaly.NewPortScan(b.nextID(), od, start, dur, scanner, target, flows), nil

	case "worm":
		var ods []topology.ODPair
		n := e.Origins
		if n == 0 {
			n = 2 + b.rng.IntN(3)
		}
		for len(ods) < n {
			od, err := b.od(e)
			if err != nil {
				return nil, err
			}
			ods = append(ods, od)
		}
		start, dur, err := b.window(e, 2+b.rng.IntN(4))
		if err != nil {
			return nil, err
		}
		flows := uint64(b.refBytes / 4700 * b.mag(e, 12, 32))
		return anomaly.NewWorm(b.nextID(), ods, start, dur,
			b.port(e, flow.PortMSSQL, flow.PortDeloder), flows), nil

	case "ptmult":
		od, err := b.od(e)
		if err != nil {
			return nil, err
		}
		start, dur, err := b.window(e, 1+b.rng.IntN(3))
		if err != nil {
			return nil, err
		}
		server := b.hostAt(od.Origin, b.rng.Uint64N(10))
		recvs := uint64(40 + b.rng.IntN(200))
		pkts := uint64(b.refBytes * b.mag(e, 6, 16) / float64(recvs) / 1100)
		if pkts == 0 {
			pkts = 1
		}
		return anomaly.NewPointMultipoint(b.nextID(), od, start, dur, server, flow.PortNNTP, recvs, pkts), nil

	case "outage":
		pop, err := b.pop(e.Origin)
		if err != nil {
			return nil, err
		}
		start, dur, err := b.window(e, 24+b.rng.IntN(48))
		if err != nil {
			return nil, err
		}
		residual := e.Magnitude
		if residual == 0 {
			residual = 0.02 + b.rng.Float64()*0.05
		}
		return anomaly.NewOutage(b.nextID(), b.top, pop, start, dur, residual), nil

	case "ingress-shift":
		from, to := topology.PoP(0), topology.PoP(1)
		if f, t, ok := b.top.Multihomed(); ok {
			from, to = f, t
		}
		var err error
		if e.Origin != "" {
			if from, err = b.top.PoPByName(e.Origin); err != nil {
				return nil, err
			}
		}
		if e.Dest != "" {
			if to, err = b.top.PoPByName(e.Dest); err != nil {
				return nil, err
			}
		}
		if from == to {
			return nil, fmt.Errorf("ingress shift from %s to itself", b.top.PoPName(from))
		}
		start, dur, err := b.window(e, 4+b.rng.IntN(20))
		if err != nil {
			return nil, err
		}
		share := e.Magnitude
		if share == 0 {
			share = 0.5 + b.rng.Float64()*0.4
		}
		return anomaly.NewIngressShift(b.nextID(), b.top, from, to, start, dur, share), nil

	case "stealth-ddos":
		dst, err := b.pop(e.Dest)
		if err != nil {
			return nil, err
		}
		// Wider fan-in than an honest ddos: the point is to dilute the
		// per-flow residual.
		ods := b.originODs(e, dst, true, 4, 4)
		start, dur, err := b.window(e, 12+b.rng.IntN(24))
		if err != nil {
			return nil, err
		}
		victim := b.hostAt(dst, b.rng.Uint64N(100))
		total := b.refBytes / 4700 * b.mag(e, 1.5, 3)
		perOD := uint64(total / float64(len(ods)))
		if perOD == 0 {
			perOD = 1
		}
		return anomaly.NewStealthDDOS(b.nextID(), ods, start, dur,
			victim, b.port(e, flow.PortZero), perOD, uint64(1+b.rng.IntN(3))), nil

	case "coordinated":
		ods, err := b.meshODs(e)
		if err != nil {
			return nil, err
		}
		start, dur, err := b.window(e, 2+b.rng.IntN(4))
		if err != nil {
			return nil, err
		}
		total := b.refBytes / 4700 * b.mag(e, 5, 12)
		perOD := uint64(total / float64(len(ods)))
		if perOD == 0 {
			perOD = 1
		}
		return anomaly.NewCoordFlood(b.nextID(), ods, start, dur,
			b.port(e, flow.PortHTTP, flow.PortDNS, flow.PortZero), perOD, 2), nil

	case "slow-ramp":
		od, err := b.od(e)
		if err != nil {
			return nil, err
		}
		start, dur, err := b.window(e, 48+b.rng.IntN(48))
		if err != nil {
			return nil, err
		}
		peak := b.refBytes * b.mag(e, 8, 18)
		return anomaly.NewSlowRamp(b.nextID(), od, start, dur,
			b.hostAt(od.Origin, b.rng.Uint64N(1000)), b.hostAt(od.Dest, b.rng.Uint64N(1000)),
			b.port(e, flow.PortHTTPS), peak), nil

	case "contamination":
		dst, err := b.pop(e.Dest)
		if err != nil {
			return nil, err
		}
		var ods []topology.ODPair
		if e.Origin != "" {
			o, err := b.top.PoPByName(e.Origin)
			if err != nil {
				return nil, err
			}
			ods = []topology.ODPair{{Origin: o, Dest: dst}}
		} else {
			ods = b.originODs(e, dst, true, 2, 2)
		}
		start, dur, err := b.window(e, 144+b.rng.IntN(144))
		if err != nil {
			return nil, err
		}
		boost := e.Magnitude
		if boost == 0 {
			boost = 0.6 + b.rng.Float64()*0.6
		}
		return anomaly.NewContamination(b.nextID(), ods, start, dur, boost), nil

	default:
		return nil, fmt.Errorf("unknown type %q", e.Type)
	}
}

// meshODs draws the OD mesh of a "coordinated" episode: distinct origins
// paired with distinct destinations (a cyclic shift of the same PoP draw,
// so origin never equals destination), spreading the volume so that no
// single flow — and no single destination — dominates.
func (b *builder) meshODs(e Episode) ([]topology.ODPair, error) {
	n := e.Origins
	if n == 0 {
		n = 6 + b.rng.IntN(4)
	}
	if n < 2 {
		return nil, fmt.Errorf("coordinated mesh needs at least 2 origins, have %d", n)
	}
	if max := b.top.NumPoPs(); n > max {
		n = max
	}
	pops := b.rng.Perm(b.top.NumPoPs())[:n]
	ods := make([]topology.ODPair, n)
	for i := 0; i < n; i++ {
		ods[i] = topology.ODPair{
			Origin: topology.PoP(pops[i]),
			Dest:   topology.PoP(pops[(i+1)%n]),
		}
	}
	return ods, nil
}
