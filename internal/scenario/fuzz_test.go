package scenario

import (
	"os"
	"path/filepath"
	"testing"

	"netwide/internal/topology"
	"netwide/internal/traffic"
)

// FuzzLoadScenario drives hostile bytes through the scenario loader — the
// same FromJSON path LoadFile and the CLI tools take for user-supplied
// files. Anything that parses must then survive the full lifecycle: a
// JSON round trip that reproduces the same scenario, and compilation
// against a real topology without panicking — Build does RNG arithmetic
// (fan-ins, permutations, windows) directly on attacker-controlled
// integers.
func FuzzLoadScenario(f *testing.F) {
	// Seed with the bundled scenarios plus shapes chosen to sit on the
	// validation edges.
	for _, name := range []string{"six-classes.json", "adversarial.json"} {
		data, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"name":"x","episodes":[{"type":"scan","start_bin":-1}]}`))
	f.Add([]byte(`{"name":"x","episodes":[{"type":"coordinated","start_bin":0,"origins":200}]}`))
	f.Add([]byte(`{"name":"x","episodes":[{"type":"stealth-ddos","start_bin":0,"magnitude":8,"origins":64}]}`))
	f.Add([]byte(`{"name":"x","episodes":[{"type":"contamination","start_bin":2015,"duration_bins":1,"magnitude":4}]}`))
	f.Add([]byte(`{"name":"x","seed":18446744073709551615,"episodes":[{"type":"outage","start_bin":0,"magnitude":0.999}]}`))

	top := topology.Abilene()
	bg, err := traffic.NewBackground(top, 8e5, 2004)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := FromJSON(data)
		if err != nil {
			return // rejected input is the success case
		}
		out, err := s.JSON()
		if err != nil {
			t.Fatalf("accepted scenario does not re-serialize: %v", err)
		}
		back, err := FromJSON(out)
		if err != nil {
			t.Fatalf("re-serialized scenario rejected: %v\n%s", err, out)
		}
		if len(back.Episodes) != len(s.Episodes) {
			t.Fatalf("round trip changed episode count: %d -> %d", len(s.Episodes), len(back.Episodes))
		}
		// Cap the injector volume before compiling: Count is multiplicative
		// and a fuzzer-chosen huge count would only test the allocator.
		total := 0
		for _, e := range s.Episodes {
			c := e.Count
			if c == 0 {
				c = 1
			}
			total += c
		}
		if total > 32 {
			return
		}
		led, err := s.Build(top, bg, 1)
		if err != nil {
			return // topology-level rejection is fine; panics are not
		}
		for _, spec := range led.Specs() {
			if spec.StartBin < 0 || spec.EndBin < spec.StartBin || spec.EndBin >= traffic.BinsPerWeek {
				t.Fatalf("compiled window [%d,%d] outside the 1-week run", spec.StartBin, spec.EndBin)
			}
			if len(spec.ODs) == 0 {
				t.Fatalf("compiled %v episode targets no ODs", spec.Type)
			}
		}
	})
}
