package scenario

// Satellite coverage for the scenario schema: every episode class must
// reject out-of-range magnitudes, durations and OD targets with an error
// that names the offending value or constraint — a scenario author's only
// debugging surface is the error string.

import (
	"strings"
	"testing"

	"netwide/internal/topology"
	"netwide/internal/traffic"
)

// allEpisodeTypes mirrors the accepted Type values; the completeness test
// below keeps it in sync with the real table.
var allEpisodeTypes = []string{
	"alpha", "dos", "ddos", "flash", "scan", "portscan", "worm", "ptmult",
	"outage", "ingress-shift",
	"stealth-ddos", "coordinated", "slow-ramp", "contamination",
}

func TestAllEpisodeTypesCovered(t *testing.T) {
	if len(allEpisodeTypes) != len(episodeTypes) {
		t.Fatalf("test covers %d types, schema accepts %d — update the validation table", len(allEpisodeTypes), len(episodeTypes))
	}
	for _, typ := range allEpisodeTypes {
		if !episodeTypes[typ] {
			t.Fatalf("test lists %q which the schema does not accept", typ)
		}
	}
}

// TestValidateRejectsPerClass drives one invalid magnitude, one invalid
// duration and one invalid OD target through every episode class.
// Magnitude and duration are shape errors (Validate, reachable through
// FromJSON); OD targets resolve against a topology, so those cases go
// through Build.
func TestValidateRejectsPerClass(t *testing.T) {
	top := topology.Abilene()
	bg := testBG(t, top)

	type tc struct {
		name    string
		ep      Episode
		build   bool   // route through Build (topology-dependent) instead of Validate
		wantErr string // substring the error must contain
	}
	var cases []tc
	for _, typ := range allEpisodeTypes {
		// Every additive class shares the implausible-magnitude cap; the
		// ratio-like classes have tighter, semantically distinct caps.
		switch typ {
		case "outage":
			cases = append(cases, tc{typ + "/magnitude", Episode{Type: typ, StartBin: 0, Magnitude: 1.5}, false, "surviving fraction"})
		case "ingress-shift":
			cases = append(cases, tc{typ + "/magnitude", Episode{Type: typ, StartBin: 0, Magnitude: 1.2}, false, "shifted share"})
		case "stealth-ddos":
			cases = append(cases, tc{typ + "/magnitude", Episode{Type: typ, StartBin: 0, Magnitude: MaxStealthMagnitude + 1}, false, "not stealthy"})
		case "contamination":
			cases = append(cases, tc{typ + "/magnitude", Episode{Type: typ, StartBin: 0, Magnitude: MaxContaminationBoost + 1}, false, "extra volume fraction"})
		default:
			cases = append(cases, tc{typ + "/magnitude", Episode{Type: typ, StartBin: 0, Magnitude: MaxMagnitude + 1}, false, "implausible"})
		}
		// Negative magnitudes are rejected for every class.
		cases = append(cases, tc{typ + "/negative-magnitude", Episode{Type: typ, StartBin: 0, Magnitude: -1}, false, "negative magnitude"})
		// Durations: the 4-week shape cap, and the run-length check in Build.
		cases = append(cases, tc{typ + "/duration-cap", Episode{Type: typ, StartBin: 0, DurationBins: MaxDurationBins + 1}, false, "4-week"})
		cases = append(cases, tc{typ + "/duration-run", Episode{Type: typ, StartBin: 0, DurationBins: traffic.BinsPerWeek + 10}, true, "exceeds"})
		// OD targets: a PoP name the topology does not have. The
		// "coordinated" class takes no Origin/Dest — its mesh size is the
		// targeting knob, and a 1-origin mesh cannot spread anything.
		if typ == "coordinated" {
			cases = append(cases, tc{typ + "/od-target", Episode{Type: typ, StartBin: -1, Origins: 1}, true, "at least 2 origins"})
		} else {
			field := "dest"
			ep := Episode{Type: typ, StartBin: -1, Dest: "NOSUCHPOP"}
			if typ == "scan" || typ == "portscan" || typ == "outage" {
				field = "origin"
				ep = Episode{Type: typ, StartBin: -1, Origin: "NOSUCHPOP"}
			}
			cases = append(cases, tc{typ + "/od-target-" + field, ep, true, "NOSUCHPOP"})
		}
	}
	// Slow-ramp has one class-specific shape rule on top of the shared ones.
	cases = append(cases, tc{"slow-ramp/one-bin", Episode{Type: "slow-ramp", StartBin: 0, DurationBins: 1}, false, "cannot ramp"})

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := &Scenario{Name: "bad", Episodes: []Episode{c.ep}}
			var err error
			if c.build {
				_, err = s.Build(top, bg, 1)
			} else {
				err = s.Validate()
			}
			if err == nil {
				t.Fatalf("invalid %s episode accepted: %+v", c.ep.Type, c.ep)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not mention %q — not descriptive enough to debug a scenario file", err, c.wantErr)
			}
		})
	}
}

// TestValidateAcceptsBoundaryValues pins the inclusive side of every cap:
// the limit values themselves are legal.
func TestValidateAcceptsBoundaryValues(t *testing.T) {
	for _, ep := range []Episode{
		{Type: "ddos", StartBin: -1, Magnitude: MaxMagnitude},
		{Type: "stealth-ddos", StartBin: -1, Magnitude: MaxStealthMagnitude},
		{Type: "contamination", StartBin: -1, Magnitude: MaxContaminationBoost},
		{Type: "scan", StartBin: -1, DurationBins: MaxDurationBins},
		{Type: "slow-ramp", StartBin: -1, DurationBins: 2},
		{Type: "outage", StartBin: -1, Magnitude: 0.99},
		{Type: "ingress-shift", StartBin: -1, Magnitude: 1},
	} {
		s := &Scenario{Name: "boundary", Episodes: []Episode{ep}}
		if err := s.Validate(); err != nil {
			t.Errorf("boundary %s episode rejected: %v", ep.Type, err)
		}
	}
}

// TestBuildCompilesAdversarialTypes extends the every-type compile check
// to the adversarial family and pins their targeting semantics.
func TestBuildCompilesAdversarialTypes(t *testing.T) {
	top := topology.Abilene()
	bg := testBG(t, top)
	s := &Scenario{
		Name: "adversarial",
		Seed: 9,
		Episodes: []Episode{
			{Type: "stealth-ddos", StartBin: 100, DurationBins: 24, Magnitude: 2, Dest: "LOSA", Origins: 6},
			{Type: "coordinated", StartBin: 400, DurationBins: 4, Origins: 8},
			{Type: "slow-ramp", StartBin: 700, DurationBins: 48, Origin: "CHIN", Dest: "NYCM"},
			{Type: "contamination", StartBin: 1000, DurationBins: 144, Magnitude: 1, Origin: "STTL", Dest: "LOSA"},
		},
	}
	led, err := s.Build(top, bg, 1)
	if err != nil {
		t.Fatal(err)
	}
	specs := led.Specs()
	if len(specs) != 4 {
		t.Fatalf("built %d injectors, want 4", len(specs))
	}
	losa, _ := top.PoPByName("LOSA")
	if got := len(specs[0].ODs); got != 6 {
		t.Errorf("stealth-ddos fan %d, want the pinned 6", got)
	}
	for _, od := range specs[0].ODs {
		if od.Dest != losa {
			t.Errorf("stealth-ddos OD %v does not target LOSA", od)
		}
		if od.Origin == losa {
			t.Error("stealth-ddos origin equals the victim PoP")
		}
	}
	// The coordinated mesh must have no dominant destination: origins and
	// destinations are both distinct.
	seenO, seenD := map[topology.PoP]bool{}, map[topology.PoP]bool{}
	for _, od := range specs[1].ODs {
		if od.Origin == od.Dest {
			t.Errorf("coordinated OD %v loops back to its origin", od)
		}
		seenO[od.Origin] = true
		seenD[od.Dest] = true
	}
	if len(seenO) != 8 || len(seenD) != 8 {
		t.Errorf("coordinated mesh has %d distinct origins / %d dests, want 8/8", len(seenO), len(seenD))
	}
	if got := len(specs[2].ODs); got != 1 {
		t.Errorf("slow-ramp targets %d ODs, want 1", got)
	}
	if got := len(specs[3].ODs); got != 1 {
		t.Errorf("contamination with a named origin targets %d ODs, want 1", got)
	}
	if specs[3].StartBin != 1000 || specs[3].EndBin != 1143 {
		t.Errorf("contamination window [%d,%d], want [1000,1143]", specs[3].StartBin, specs[3].EndBin)
	}
}
