package scenario

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"netwide/internal/anomaly"
	"netwide/internal/topology"
	"netwide/internal/traffic"
)

func testBG(t *testing.T, top *topology.Topology) *traffic.Background {
	t.Helper()
	bg, err := traffic.NewBackground(top, 8e5, 2004)
	if err != nil {
		t.Fatal(err)
	}
	return bg
}

func TestJSONRoundTrip(t *testing.T) {
	s := &Scenario{
		Name: "mixed",
		Seed: 42,
		Episodes: []Episode{
			{Type: "ddos", StartBin: 288, DurationBins: 4, Magnitude: 9, Dest: "LOSA", Origins: 3},
			{Type: "scan", StartBin: -1, Count: 5},
			{Type: "outage", StartBin: 100, DurationBins: 30, Origin: "CHIN", Magnitude: 0.05},
		},
	}
	data, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Fatalf("round trip drifted:\n%+v\n%+v", s, back)
	}
}

func TestLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.json")
	body := `{
  "name": "one-ddos",
  "episodes": [
    {"type": "ddos", "start_bin": 500, "duration_bins": 3, "magnitude": 8, "dest": "NYCM"}
  ]
}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Episodes) != 1 || s.Episodes[0].Dest != "NYCM" {
		t.Fatalf("loaded %+v", s)
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestFromJSONRejects(t *testing.T) {
	cases := map[string]string{
		"unknown field":    `{"name":"x","episodes":[{"type":"scan","start_bin":-1,"magnitud":3}]}`,
		"unknown type":     `{"name":"x","episodes":[{"type":"meteor","start_bin":0}]}`,
		"no episodes":      `{"name":"x","episodes":[]}`,
		"negative count":   `{"name":"x","episodes":[{"type":"scan","start_bin":0,"count":-1}]}`,
		"bad start":        `{"name":"x","episodes":[{"type":"scan","start_bin":-2}]}`,
		"outage magnitude": `{"name":"x","episodes":[{"type":"outage","start_bin":0,"magnitude":2}]}`,
		"trailing content": `{"name":"x","episodes":[{"type":"scan","start_bin":-1}]} stray`,
	}
	for name, body := range cases {
		if _, err := FromJSON([]byte(body)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestBuildCompilesEveryType(t *testing.T) {
	top := topology.Abilene()
	bg := testBG(t, top)
	types := []string{"alpha", "dos", "ddos", "flash", "scan", "portscan", "worm", "ptmult", "outage", "ingress-shift"}
	s := &Scenario{Name: "all", Seed: 7}
	for _, typ := range types {
		s.Episodes = append(s.Episodes, Episode{Type: typ, StartBin: -1})
	}
	led, err := s.Build(top, bg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(led.Injectors) != len(types) {
		t.Fatalf("built %d injectors, want %d", len(led.Injectors), len(types))
	}
	want := map[anomaly.Type]int{
		anomaly.Alpha: 1, anomaly.DOS: 1, anomaly.DDOS: 1, anomaly.FlashCrowd: 1,
		anomaly.Scan: 2, anomaly.Worm: 1, anomaly.PointMultipoint: 1,
		anomaly.Outage: 1, anomaly.IngressShift: 1,
	}
	if got := led.CountByType(); !reflect.DeepEqual(got, want) {
		t.Fatalf("type counts %v, want %v", got, want)
	}
	for _, spec := range led.Specs() {
		if spec.StartBin < 0 || spec.EndBin >= traffic.BinsPerWeek {
			t.Fatalf("%v scheduled outside the run: [%d,%d]", spec.Type, spec.StartBin, spec.EndBin)
		}
	}
}

func TestBuildHonorsPinning(t *testing.T) {
	top := topology.Abilene()
	bg := testBG(t, top)
	s := &Scenario{
		Name: "pinned",
		Episodes: []Episode{{
			Type: "ddos", StartBin: 300, DurationBins: 4, Magnitude: 9,
			Dest: "LOSA", Origins: 3,
		}},
	}
	led, err := s.Build(top, bg, 1)
	if err != nil {
		t.Fatal(err)
	}
	spec := led.Specs()[0]
	if spec.StartBin != 300 || spec.EndBin != 303 {
		t.Fatalf("window [%d,%d], want [300,303]", spec.StartBin, spec.EndBin)
	}
	if len(spec.ODs) != 3 {
		t.Fatalf("%d origin ODs, want 3", len(spec.ODs))
	}
	losa, _ := top.PoPByName("LOSA")
	for _, od := range spec.ODs {
		if od.Dest != losa {
			t.Fatalf("OD %v does not target LOSA", od)
		}
		if od.Origin == losa {
			t.Fatal("DDOS origin equals the victim PoP")
		}
	}
}

func TestBuildCountAndDeterminism(t *testing.T) {
	top := topology.Geant()
	bg := testBG(t, top)
	s := &Scenario{
		Name:     "count",
		Seed:     11,
		Episodes: []Episode{{Type: "scan", StartBin: -1, Count: 6}},
	}
	a, err := s.Build(top, bg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Injectors) != 6 {
		t.Fatalf("count gave %d injectors", len(a.Injectors))
	}
	b, err := s.Build(top, bg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Specs(), b.Specs()) {
		t.Fatal("same seed built different ledgers")
	}
}

func TestBuildRejects(t *testing.T) {
	top := topology.Abilene()
	bg := testBG(t, top)
	cases := []Episode{
		{Type: "ddos", StartBin: -1, Dest: "NOWHERE"},
		{Type: "alpha", StartBin: -1, Origin: "XXXX"},
		{Type: "outage", StartBin: 0, DurationBins: 3000},                  // longer than the run
		{Type: "scan", StartBin: traffic.BinsPerWeek + 5},                  // starts past the end
		{Type: "ddos", StartBin: traffic.BinsPerWeek - 2, DurationBins: 4}, // window overruns the run
		{Type: "ingress-shift", StartBin: -1, Origin: "LOSA", Dest: "LOSA"},
	}
	for i, e := range cases {
		s := &Scenario{Name: "bad", Episodes: []Episode{e}}
		if _, err := s.Build(top, bg, 1); err == nil {
			t.Errorf("case %d (%s): accepted", i, e.Type)
		}
	}
}
