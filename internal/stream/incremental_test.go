package stream

import (
	"math/rand/v2"
	"testing"

	"netwide/internal/engine"
)

// TestIncrementalPipelineScoresInBand: under the incremental lifecycle the
// pipeline delivers ordered verdicts whose scoring model advances every
// bin — staleness stays at one bin, generations stay at 0 (no full refits)
// — and the barrier captures tracker state.
func TestIncrementalPipelineScoresInBand(t *testing.T) {
	rng := rand.New(rand.NewPCG(141, 142))
	const p, lanes, n = 8, 2, 50
	models := make([]*engine.Model, lanes)
	for i := range models {
		models[i] = fitLane(t, rng, 300, p)
	}
	pipe, err := New(models, Config{BatchSize: 7, Updater: engine.UpdaterIncremental})
	if err != nil {
		t.Fatal(err)
	}
	live := synth(rand.New(rand.NewPCG(143, 144)), n, p, 2)
	done := collect(pipe)
	for bin := 0; bin < n; bin++ {
		if err := pipe.Submit(Sample{Bin: bin, Vecs: laneVecs(live, lanes, bin)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := pipe.Barrier(); err != nil {
		t.Fatal(err)
	}
	pipe.Close()
	if err := pipe.Wait(); err != nil {
		t.Fatal(err)
	}
	vs := <-done
	if len(vs) != n+1 {
		t.Fatalf("got %d verdicts, want %d data + 1 barrier", len(vs), n)
	}
	for i, v := range vs[:n] {
		if v.Bin != i {
			t.Fatalf("verdict %d has bin %d", i, v.Bin)
		}
		for l, g := range v.Gens {
			if g != 0 {
				t.Fatalf("bin %d lane %d: generation %d without full refits", v.Bin, l, g)
			}
		}
	}
	bar := vs[n].Barrier
	if bar == nil {
		t.Fatal("final verdict is not the barrier")
	}
	for l, st := range bar.Lanes {
		if st.Updater.Kind != engine.UpdaterIncremental {
			t.Fatalf("lane %d captured kind %q", l, st.Updater.Kind)
		}
		if st.Updater.Tracker == nil {
			t.Fatalf("lane %d barrier carries no tracker state", l)
		}
		if st.Updater.Model.Updates != n {
			t.Fatalf("lane %d model absorbed %d bins, want %d", l, st.Updater.Model.Updates, n)
		}
	}
	for l, fr := range pipe.Freshness() {
		if fr.Kind != engine.UpdaterIncremental || fr.Staleness != 1 || fr.Updates != n {
			t.Fatalf("lane %d freshness %+v, want incremental, staleness 1, %d updates", l, fr, n)
		}
	}
}

// TestIncrementalRestoreParity is checkpoint/restore under the incremental
// lifecycle: a pipeline rebuilt from a barrier (tracker vectors included)
// must score the remaining bins bit-identically to an uninterrupted run.
// This is a sharper property than the refit-lifecycle parity test: the
// model mutates every bin, so any lost tracker state shows up immediately.
func TestIncrementalRestoreParity(t *testing.T) {
	rng := rand.New(rand.NewPCG(151, 152))
	const p, lanes, n, cut = 8, 2, 90, 41
	models := make([]*engine.Model, lanes)
	for i := range models {
		models[i] = fitLane(t, rng, 300, p)
	}
	live := synth(rand.New(rand.NewPCG(153, 154)), n, p, 6)
	cfg := Config{BatchSize: 7, Updater: engine.UpdaterIncremental, Attribute: true}

	full, err := New(models, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := feed(t, full, live, lanes, n)

	head, err := New(models, cfg)
	if err != nil {
		t.Fatal(err)
	}
	headDone := collect(head)
	for bin := 0; bin < cut; bin++ {
		if err := head.Submit(Sample{Bin: bin, Vecs: laneVecs(live, lanes, bin)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := head.Barrier(); err != nil {
		t.Fatal(err)
	}
	head.Close()
	if err := head.Wait(); err != nil {
		t.Fatal(err)
	}
	headVs := <-headDone
	bar := headVs[len(headVs)-1].Barrier
	if bar == nil {
		t.Fatal("final verdict of the head run is not the barrier")
	}

	tail, err := NewRestored(bar.Lanes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tailDone := collect(tail)
	for bin := cut; bin < n; bin++ {
		if err := tail.Submit(Sample{Bin: bin, Vecs: laneVecs(live, lanes, bin)}); err != nil {
			t.Fatal(err)
		}
	}
	tail.Close()
	if err := tail.Wait(); err != nil {
		t.Fatal(err)
	}
	got := append(headVs[:len(headVs)-1], <-tailDone...)

	if len(got) != len(want) {
		t.Fatalf("split run emitted %d verdicts, uninterrupted %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Bin != w.Bin {
			t.Fatalf("verdict %d: bin %d vs %d", i, g.Bin, w.Bin)
		}
		for l := range w.Points {
			if g.Points[l] != w.Points[l] || g.Gens[l] != w.Gens[l] {
				t.Fatalf("bin %d lane %d: split %+v gen %d, uninterrupted %+v gen %d",
					w.Bin, l, g.Points[l], g.Gens[l], w.Points[l], w.Gens[l])
			}
			if len(g.Attribs[l]) != len(w.Attribs[l]) {
				t.Fatalf("bin %d lane %d: %d attributions vs %d", w.Bin, l, len(g.Attribs[l]), len(w.Attribs[l]))
			}
		}
	}
}

// TestIncrementalDriftCorrectionAdvancesGeneration: with RefitEvery set,
// the incremental pipeline periodically hands the rolling window to the
// refitter and adopts the corrected model — the generation moves while
// per-bin updates keep staleness at one bin throughout.
func TestIncrementalDriftCorrectionAdvancesGeneration(t *testing.T) {
	rng := rand.New(rand.NewPCG(161, 162))
	const p, lanes, n = 6, 2, 120
	models := make([]*engine.Model, lanes)
	for i := range models {
		models[i] = fitLane(t, rng, 200, p)
	}
	cfg := Config{BatchSize: 4, Updater: engine.UpdaterIncremental, RefitEvery: 10, Window: 40}
	pipe, err := New(models, cfg)
	if err != nil {
		t.Fatal(err)
	}
	live := synth(rand.New(rand.NewPCG(163, 164)), n, p, 2)
	got := feed(t, pipe, live, lanes, n)
	if len(got) != n {
		t.Fatalf("got %d verdicts, want %d", len(got), n)
	}
	advanced := false
	for _, v := range got {
		if v.Gens[0] > 0 {
			advanced = true
		}
	}
	if !advanced {
		t.Fatal("drift correction never advanced the generation")
	}
	for l, fr := range pipe.Freshness() {
		if fr.Staleness > 1 {
			t.Fatalf("lane %d staleness %d bins under the incremental lifecycle", l, fr.Staleness)
		}
	}
}
