package stream

import (
	"errors"
	"math"
	"math/rand/v2"
	"strings"
	"testing"

	"netwide/internal/engine"
	"netwide/internal/mat"
)

// synth builds an n x p traffic-like matrix: a shared sinusoidal daily
// pattern plus per-flow noise, so the PCA has a clear low-dimensional
// normal subspace like real OD traffic.
func synth(rng *rand.Rand, n, p int, noise float64) *mat.Matrix {
	m := mat.New(n, p)
	for i := 0; i < n; i++ {
		daily := math.Sin(2 * math.Pi * float64(i) / 288)
		row := m.RowView(i)
		for j := range row {
			row[j] = 100 + 40*daily*float64(1+j%3) + noise*rng.NormFloat64()
		}
	}
	return m
}

func fitLane(t *testing.T, rng *rand.Rand, n, p int) *engine.Model {
	t.Helper()
	det, err := engine.Fit(synth(rng, n, p, 2), engine.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return det
}

// feed submits n bins drawn from live (one row per lane vector, lane l
// offset by l to make lanes distinguishable) and returns the collected
// verdicts, in arrival order.
func feed(t *testing.T, pipe *Pipeline, live *mat.Matrix, lanes, n int) []Verdict {
	t.Helper()
	done := make(chan []Verdict)
	go func() {
		var got []Verdict
		for v := range pipe.Verdicts() {
			got = append(got, v)
		}
		done <- got
	}()
	for bin := 0; bin < n; bin++ {
		vecs := make([][]float64, lanes)
		for l := range vecs {
			row := live.Row(bin % live.Rows())
			for j := range row {
				row[j] += float64(l)
			}
			vecs[l] = row
		}
		if err := pipe.Submit(Sample{Bin: bin, Vecs: vecs}); err != nil {
			t.Fatal(err)
		}
	}
	pipe.Close()
	if err := pipe.Wait(); err != nil {
		t.Fatal(err)
	}
	return <-done
}

func TestPipelineOrderedAndMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 32))
	const p, lanes, n = 8, 3, 500
	dets := make([]*engine.Model, lanes)
	for i := range dets {
		dets[i] = fitLane(t, rng, 300, p)
	}
	pipe, err := New(dets, Config{BatchSize: 7}) // batch that doesn't divide n
	if err != nil {
		t.Fatal(err)
	}
	live := synth(rand.New(rand.NewPCG(33, 34)), n, p, 2)
	got := feed(t, pipe, live, lanes, n)
	if len(got) != n {
		t.Fatalf("got %d verdicts, want %d", len(got), n)
	}
	for i, v := range got {
		if v.Bin != i {
			t.Fatalf("verdict %d has bin %d: stream reordered", i, v.Bin)
		}
	}
	// Spot-check against serial scoring through the same models.
	for _, i := range []int{0, 6, 7, 250, n - 1} {
		vecs := make([][]float64, lanes)
		for l := range vecs {
			row := live.Row(i % live.Rows())
			for j := range row {
				row[j] += float64(l)
			}
			vecs[l] = row
		}
		for l, det := range dets {
			want, err := det.Score(vecs[l])
			if err != nil {
				t.Fatal(err)
			}
			gotPt := got[i].Points[l]
			if math.Abs(gotPt.SPE-want.SPE) > 1e-9*(1+want.SPE) || gotPt.SPEAlarm != want.SPEAlarm {
				t.Fatalf("bin %d lane %d: stream SPE %v, serial %v", i, l, gotPt.SPE, want.SPE)
			}
		}
	}
}

func TestPipelineRefitDuringScoring(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 42))
	const p, lanes, n = 8, 3, 1200
	dets := make([]*engine.Model, lanes)
	for i := range dets {
		dets[i] = fitLane(t, rng, 200, p)
	}
	pipe, err := New(dets, Config{BatchSize: 4, RefitEvery: 50, Window: 100})
	if err != nil {
		t.Fatal(err)
	}
	live := synth(rand.New(rand.NewPCG(43, 44)), n, p, 2)
	got := feed(t, pipe, live, lanes, n)
	if len(got) != n {
		t.Fatalf("got %d verdicts, want %d: refit dropped bins", len(got), n)
	}
	for i, v := range got {
		if v.Bin != i {
			t.Fatalf("verdict %d has bin %d: refit reordered the stream", i, v.Bin)
		}
	}
	for l, g := range pipe.Generations() {
		if g == 0 {
			t.Fatalf("lane %d never refitted over %d bins (RefitEvery=50)", l, n)
		}
	}
	// Generations recorded on verdicts must be monotone per lane and reach
	// the final generation.
	for l := 0; l < lanes; l++ {
		var prev uint64
		for i, v := range got {
			if v.Gens[l] < prev {
				t.Fatalf("lane %d gen went backwards at bin %d: %d -> %d", l, i, prev, v.Gens[l])
			}
			prev = v.Gens[l]
		}
	}
}

func TestPipelineFlagsAnomaly(t *testing.T) {
	rng := rand.New(rand.NewPCG(51, 52))
	const p = 8
	det := fitLane(t, rng, 400, p)
	pipe, err := New([]*engine.Model{det}, Config{BatchSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	clean := synth(rand.New(rand.NewPCG(53, 54)), 4, p, 2)
	dirty := clean.Row(2)
	dirty[5] += 5000
	done := make(chan []Verdict)
	go func() {
		var got []Verdict
		for v := range pipe.Verdicts() {
			got = append(got, v)
		}
		done <- got
	}()
	for bin := 0; bin < 4; bin++ {
		x := clean.Row(bin)
		if bin == 2 {
			x = dirty
		}
		if err := pipe.Submit(Sample{Bin: bin, Vecs: [][]float64{x}}); err != nil {
			t.Fatal(err)
		}
	}
	pipe.Close()
	if err := pipe.Wait(); err != nil {
		t.Fatal(err)
	}
	got := <-done
	if got[0].Alarm() {
		t.Fatalf("clean bin alarmed: %+v", got[0].Points[0])
	}
	if !got[2].Alarm() {
		t.Fatalf("spiked bin not alarmed: %+v", got[2].Points[0])
	}
	if lanes := got[2].AlarmLanes(); len(lanes) != 1 || lanes[0] != 0 {
		t.Fatalf("AlarmLanes = %v, want [0]", lanes)
	}
	if got[2].Points[0].TopResidualOD != 5 {
		t.Fatalf("top residual OD %d, want 5", got[2].Points[0].TopResidualOD)
	}
}

func TestPipelineValidation(t *testing.T) {
	rng := rand.New(rand.NewPCG(61, 62))
	det := fitLane(t, rng, 200, 8)

	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("empty detector list accepted")
	}
	if _, err := New([]*engine.Model{det}, Config{RefitEvery: 10, Window: 8}); err == nil {
		t.Fatal("window <= p accepted with refitting on")
	}

	pipe, err := New([]*engine.Model{det}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if pipe.Lanes() != 1 {
		t.Fatalf("Lanes() = %d, want 1", pipe.Lanes())
	}
	if err := pipe.Submit(Sample{Vecs: [][]float64{{1, 2}, {3, 4}}}); err == nil {
		t.Fatal("wrong lane count accepted")
	}
	if err := pipe.Submit(Sample{Vecs: [][]float64{{1, 2, 3}}}); err == nil {
		t.Fatal("wrong vector length accepted")
	}
	pipe.Close()
	pipe.Close() // idempotent
	if err := pipe.Submit(Sample{Vecs: [][]float64{make([]float64, 8)}}); err == nil {
		t.Fatal("submit after Close accepted")
	}
	if err := pipe.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestPipelineAttributesAlarms: with Attribute on, an alarmed bin's verdict
// carries per-lane attributions naming the responsible OD flows against the
// scoring model.
func TestPipelineAttributesAlarms(t *testing.T) {
	rng := rand.New(rand.NewPCG(71, 72))
	const p = 8
	det := fitLane(t, rng, 400, p)
	pipe, err := New([]*engine.Model{det}, Config{BatchSize: 2, Attribute: true})
	if err != nil {
		t.Fatal(err)
	}
	clean := synth(rand.New(rand.NewPCG(73, 74)), 4, p, 2)
	dirty := clean.Row(2)
	dirty[5] += 5000
	done := make(chan []Verdict)
	go func() {
		var got []Verdict
		for v := range pipe.Verdicts() {
			got = append(got, v)
		}
		done <- got
	}()
	for bin := 0; bin < 4; bin++ {
		x := clean.Row(bin)
		if bin == 2 {
			x = dirty
		}
		if err := pipe.Submit(Sample{Bin: bin, Vecs: [][]float64{x}}); err != nil {
			t.Fatal(err)
		}
	}
	pipe.Close()
	if err := pipe.Wait(); err != nil {
		t.Fatal(err)
	}
	got := <-done
	if len(got[0].Attribs[0]) != 0 {
		t.Fatalf("clean bin attributed: %+v", got[0].Attribs[0])
	}
	atts := got[2].Attribs[0]
	if len(atts) == 0 {
		t.Fatal("alarmed bin has no attributions")
	}
	for _, att := range atts {
		if att.Alarm.Bin != 2 {
			t.Fatalf("attribution bin %d, want 2", att.Alarm.Bin)
		}
		if len(att.ODs) == 0 || att.ODs[0] != 5 {
			t.Fatalf("attribution ODs %v, want leading OD 5", att.ODs)
		}
		if att.Residuals[0] <= 0 {
			t.Fatalf("spike attributed with non-positive residual %v", att.Residuals[0])
		}
	}
}

// TestLaneErrorPropagates is the regression test for the lane-worker panic:
// a scoring failure on a background goroutine used to kill the whole
// process. Now the first error is recorded on the pipeline, the verdict
// stream still delivers every submitted bin (with placeholder points for
// the failed lane), and Wait surfaces the error.
func TestLaneErrorPropagates(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	const p = 8
	model := fitLane(t, rng, 64, p)
	pipe, err := New([]*engine.Model{model}, Config{BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Swap in a model of a different width behind Submit's validation: every
	// subsequent batch fails ScoreBatch exactly like a corrupted refit or a
	// model/vector drift bug would, without tripping the edge checks.
	bad := fitLane(t, rng, 64, p-2)
	pipe.lanes[0].up.Install(bad)

	live := synth(rng, 6, p, 2)
	done := make(chan []Verdict)
	go func() {
		var vs []Verdict
		for v := range pipe.Verdicts() {
			vs = append(vs, v)
		}
		done <- vs
	}()
	for bin := 0; bin < live.Rows(); bin++ {
		if err := pipe.Submit(Sample{Bin: bin, Vecs: [][]float64{live.RowView(bin)}}); err != nil {
			t.Fatal(err)
		}
	}
	pipe.Close()
	verdicts := <-done
	if err := pipe.Wait(); err == nil {
		t.Fatal("scoring failure did not surface from Wait")
	} else if want := "lane 0 score"; !strings.Contains(err.Error(), want) {
		t.Fatalf("Wait error %q does not name the failing stage (%q)", err, want)
	}
	if pipe.Err() == nil {
		t.Fatal("Err() nil after failure")
	}
	// The ordered verdict stream must stay complete: every submitted bin
	// comes back, in order, with placeholder (non-alarming) points.
	if len(verdicts) != live.Rows() {
		t.Fatalf("got %d verdicts for %d submitted bins", len(verdicts), live.Rows())
	}
	for i, v := range verdicts {
		if v.Bin != i {
			t.Fatalf("verdict %d carries bin %d", i, v.Bin)
		}
		if v.Alarm() {
			t.Fatalf("placeholder verdict for failed bin %d alarms", i)
		}
	}
}

// TestAttributeErrorPropagates drives the attribution error path the same
// way: scoring succeeds, attribution fails, the pipeline records the error
// and still emits the scored points.
func TestAttributeErrorPropagates(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 11))
	const p = 8
	model := fitLane(t, rng, 64, p)
	pipe, err := New([]*engine.Model{model}, Config{BatchSize: 1, Attribute: true})
	if err != nil {
		t.Fatal(err)
	}
	live := synth(rng, 4, p, 2)
	done := make(chan int)
	go func() {
		n := 0
		for range pipe.Verdicts() {
			n++
		}
		done <- n
	}()
	// A NaN-poisoned vector scores (NaN statistics do not error) but makes
	// attribution reject the residual it cannot rank.
	for bin := 0; bin < live.Rows(); bin++ {
		row := live.RowView(bin)
		if bin == 2 {
			poisoned := make([]float64, p)
			copy(poisoned, row)
			poisoned[0] = math.NaN()
			row = poisoned
		}
		if err := pipe.Submit(Sample{Bin: bin, Vecs: [][]float64{row}}); err != nil {
			t.Fatal(err)
		}
	}
	pipe.Close()
	n := <-done
	err = pipe.Wait()
	if n != live.Rows() {
		t.Fatalf("got %d verdicts for %d submitted bins", n, live.Rows())
	}
	// Whether the NaN trips attribution is an identify-internal contract;
	// what this test pins is that IF it errors the process survives and the
	// verdict stream completes — which the assertions above already did.
	t.Logf("Wait after NaN bin: %v", err)
}

// TestRefitErrorIsDegradedNotFatal pins the operational split between the
// two background failure classes: a refit failure leaves the pipeline
// degraded — Err() (the liveness signal) stays nil, RefitErr() reports
// it, and Wait() returns it once the stream ends — while a scoring
// failure is fatal and takes precedence everywhere.
func TestRefitErrorIsDegradedNotFatal(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 13))
	model := fitLane(t, rng, 64, 8)
	pipe, err := New([]*engine.Model{model}, Config{BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	pipe.failRefit(errors.New("synthetic refit failure"))
	if pipe.Err() != nil {
		t.Fatalf("refit failure leaked into the fatal Err(): %v", pipe.Err())
	}
	if pipe.RefitErr() == nil {
		t.Fatal("RefitErr() lost the refit failure")
	}
	go func() {
		for range pipe.Verdicts() {
		}
	}()
	pipe.Close()
	if err := pipe.Wait(); err == nil || !strings.Contains(err.Error(), "refit") {
		t.Fatalf("Wait() = %v, want the refit failure", err)
	}

	// Fatal beats degraded.
	pipe.fail(errors.New("scoring failure"))
	if err := pipe.Err(); err == nil || !strings.Contains(err.Error(), "scoring") {
		t.Fatalf("Err() = %v, want the scoring failure", err)
	}
	if err := pipe.Wait(); err == nil || !strings.Contains(err.Error(), "scoring") {
		t.Fatalf("Wait() = %v, want the scoring failure to take precedence", err)
	}
}
