// Package stream is the concurrent streaming detection pipeline: the
// "practical, online diagnosis of network-wide anomalies" the paper's
// conclusion calls for, built to keep up with live collection.
//
// One Pipeline owns one detector lane per traffic measure (bytes, packets,
// IP-flows in the paper's setup, but any set of fitted engine.Model lanes
// works). Each submitted Sample — one 5-minute timebin carrying one
// traffic vector per lane — is fanned out over channels to the lane
// workers, which score vectors in batches (engine.Model.ScoreBatch, two
// dense matrix products per batch instead of per-vector accessor
// arithmetic) and attribute every alarm to its responsible OD flows
// against the model generation that scored it (identify.AttributeLive). A
// single aggregator merges the per-lane verdicts back into one stream of
// per-bin Verdicts, emitted strictly in submission order regardless of how
// lane scheduling interleaves.
//
// Each lane keeps its model current through a pluggable engine.Updater —
// the model lifecycle. Under the default refit lifecycle the updater
// maintains a rolling window of accepted vectors (seeded from the engine's
// retained training window, so the first refit does not have to wait for a
// full window of live traffic) and periodically hands out a snapshot; the
// fit runs on a separate refitter goroutine while the worker keeps scoring
// with the current model, and the finished generation is swapped in with a
// single atomic pointer store. Under the incremental lifecycle the lane
// worker folds every closed bin into the model in-band — a rank-1 subspace
// update per bin, so the scoring model is never more than one bin stale —
// and the refitter goroutine only serves the periodic drift-correction
// refits (RefitEvery becomes the fallback cadence). Refits are warm-started
// from the previous generation's basis (engine.Model.Refit), so on wide OD
// matrices the subspace iteration converges in a few sweeps. Scoring never
// stalls, and no verdict is dropped or reordered across a swap; each
// Verdict records the model generation that scored it.
package stream

import (
	"errors"
	"fmt"
	"sync"

	"netwide/internal/engine"
	"netwide/internal/fault"
	"netwide/internal/identify"
	"netwide/internal/mat"
)

// Config tunes a Pipeline. The zero value gets sensible defaults.
type Config struct {
	// BatchSize is the number of vectors a lane worker scores per model
	// application (default 16). Larger batches amortize the projection
	// products but add up to BatchSize bins of verdict latency. Lanes
	// running an in-band updater score bin-by-bin regardless — a bin must
	// be scored before the model absorbs it.
	BatchSize int
	// Buffer is the per-channel depth between pipeline stages (default
	// 4*BatchSize): how far the dispatcher may run ahead of a slow lane.
	Buffer int
	// Updater selects the model lifecycle (engine.UpdaterRefit,
	// engine.UpdaterIncremental); "" means the default refit lifecycle.
	Updater engine.UpdaterKind
	// RefitEvery is the number of accepted bins between background full
	// refits of a lane's model (0 disables them). Under the incremental
	// updater this is the drift-correction fallback cadence.
	RefitEvery int
	// Window is the rolling training window length in bins. Required when
	// RefitEvery > 0; must exceed the vector length p for the PCA fit to
	// be well-posed (the fit itself demands n > p). Under the incremental
	// updater it doubles as the tracker's forgetting horizon.
	Window int
	// Attribute enables live OD attribution of every alarm inside the lane
	// workers — the identification step of streaming characterization.
	Attribute bool
	// Faults, when non-nil, threads error injection through the pipeline's
	// background paths (currently FaultRefit). Nil in production.
	Faults *fault.Injector
}

// FaultRefit is the injection point consulted before every background
// refit: arm a Delay for a slow refit, an Err for a failing one.
const FaultRefit = "stream.refit"

func (c Config) withDefaults() Config {
	if c.BatchSize <= 0 {
		c.BatchSize = 16
	}
	if c.Buffer <= 0 {
		c.Buffer = 4 * c.BatchSize
	}
	return c
}

// updaterConfig is the engine-level lifecycle tuning this pipeline config
// implies.
func (c Config) updaterConfig() engine.UpdaterConfig {
	return engine.UpdaterConfig{RefitEvery: c.RefitEvery, Window: c.Window}
}

// Sample is one timebin of traffic: one vector per lane, in lane order.
type Sample struct {
	Bin  int
	Vecs [][]float64
	// barrier marks a checkpoint barrier control message (injected by
	// Barrier, never constructible by callers): it flows through the same
	// channels as data, so its position in the verdict stream is exactly
	// its position in the submission order.
	barrier bool
}

// LaneState is one lane's recovery state, captured at a Barrier: the full
// lifecycle state (scoring model, rolling window, refit phase, tracker
// vectors) as of every bin before the barrier, deep-copied and
// serializable.
type LaneState struct {
	Updater engine.UpdaterState
}

// Barrier is a consistent pipeline snapshot: every lane's state captured
// at the same point in the submission order. It arrives as a Verdict with
// a non-nil Barrier field, ordered among the data verdicts exactly where
// Pipeline.Barrier was called among the Submits — everything before it has
// been scored and emitted, nothing after it has.
type Barrier struct {
	Lanes []LaneState
}

// Verdict is the merged scoring of one bin across every lane. Verdicts are
// delivered in submission order.
type Verdict struct {
	// Bin is the submitted timebin, or -1 for a barrier verdict.
	Bin int
	// Points holds each lane's statistics for the bin, indexed by lane.
	Points []engine.Point
	// Gens[i] is the model generation of lane i that scored this bin
	// (0 = the initial fit, incremented per adopted full refit; per-bin
	// incremental updates advance the model without bumping it).
	Gens []uint64
	// Attribs[i] lists lane i's attributed alarms for the bin (one entry
	// per alarmed statistic; nil when the lane is clean or attribution is
	// disabled).
	Attribs [][]identify.Attribution
	// Barrier is non-nil on a checkpoint barrier verdict, which carries no
	// scoring (Points/Gens/Attribs are nil, Bin is -1).
	Barrier *Barrier
}

// Alarm reports whether any lane flagged the bin on either statistic.
func (v Verdict) Alarm() bool {
	for _, pt := range v.Points {
		if pt.SPEAlarm || pt.T2Alarm {
			return true
		}
	}
	return false
}

// AlarmLanes returns the lane indices that flagged the bin.
func (v Verdict) AlarmLanes() []int {
	var out []int
	for i, pt := range v.Points {
		if pt.SPEAlarm || pt.T2Alarm {
			out = append(out, i)
		}
	}
	return out
}

// laneTask is one vector en route to a lane worker. seq is the global
// submission index the aggregator reorders on.
type laneTask struct {
	seq     int
	bin     int
	x       []float64
	barrier bool
}

// laneResult is one scored vector en route to the aggregator. A barrier
// result carries the lane's captured state instead of a scoring.
type laneResult struct {
	lane  int
	seq   int
	bin   int
	pt    engine.Point
	gen   uint64
	att   []identify.Attribution
	state *LaneState
}

// lane is one detector worker: a model lifecycle (the updater owns the
// scoring model, the rolling window and any tracker state), a task
// channel, and the hand-off channel to the lane's refitter goroutine.
type lane struct {
	id int
	up engine.Updater
	in chan laneTask
	p  int // vector length the lane's model scores

	refitIn chan *mat.Matrix // capacity 1; nil when full refits are disabled
}

// Pipeline is the running detection pipeline. Construct with New, feed with
// Submit, then Close and drain Verdicts; Wait blocks until the verdict
// stream is complete and reports any background refit error.
type Pipeline struct {
	cfg   Config
	lanes []*lane
	in    chan Sample
	out   chan Verdict
	agg   chan laneResult

	workerWG sync.WaitGroup // dispatcher + lane workers
	refitWG  sync.WaitGroup
	done     chan struct{} // closed when the aggregator finishes

	seq int

	// closeMu serializes Submit against Close so a concurrent shutdown can
	// neither double-close the input channel nor race a send on it.
	closeMu sync.Mutex
	closed  bool

	errMu sync.Mutex
	err   error // first fatal failure (scoring or attribution)
	// refitErr is the first background model-update failure — a failed
	// full refit or a failed incremental fold. It is tracked apart from
	// err because the two mean different things operationally: an update
	// failure leaves the pipeline DEGRADED (scoring continues, correctly,
	// on the previous model), while a scoring failure means the verdicts
	// themselves are bad.
	refitErr error
}

// fail records the first fatal background error. Later errors are
// dropped: the first failure is the root cause, everything after it is
// fallout.
func (p *Pipeline) fail(err error) {
	p.errMu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.errMu.Unlock()
}

// failRefit records the first background model-update failure — the
// degraded (not fatal) condition.
func (p *Pipeline) failRefit(err error) {
	p.errMu.Lock()
	if p.refitErr == nil {
		p.refitErr = err
	}
	p.errMu.Unlock()
}

// Err returns the first fatal background error (scoring or attribution)
// recorded so far, without waiting for the pipeline to finish. Model
// update failures do not surface here — scoring continues on the previous
// model — see RefitErr.
func (p *Pipeline) Err() error {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	return p.err
}

// RefitErr returns the first background model-update failure, the signal
// that the pipeline is running degraded on an aging model.
func (p *Pipeline) RefitErr() error {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	return p.refitErr
}

// New builds a pipeline with one lane per fitted engine model, each
// wrapped in the lifecycle cfg.Updater selects. The models are immutable
// generations, so sharing them with the caller is safe; when
// cfg.RefitEvery > 0 each lane's rolling window is pre-seeded from its
// model's retained training window (the engine keeps a reference, not a
// copy), so the first background refit is due after RefitEvery bins rather
// than after a full window of live traffic.
func New(models []*engine.Model, cfg Config) (*Pipeline, error) {
	if len(models) == 0 {
		return nil, errors.New("stream: no models")
	}
	ups := make([]engine.Updater, len(models))
	for i, m := range models {
		if m == nil {
			return nil, fmt.Errorf("stream: lane %d has no model", i)
		}
		up, err := engine.NewUpdater(cfg.Updater, m, cfg.updaterConfig())
		if err != nil {
			return nil, fmt.Errorf("stream: lane %d: %w", i, err)
		}
		ups[i] = up
	}
	return newPipeline(ups, cfg)
}

// NewRestored builds a pipeline from per-lane recovery states — the
// restart half of checkpointing: the states come from a Barrier captured
// in a previous process, and the new pipeline resumes with the same model
// generations, windows, tracker vectors and refit phase the old one had.
// Each state's lifecycle kind must match cfg.Updater — a checkpoint from
// one lifecycle cannot silently resume under another.
func NewRestored(states []LaneState, cfg Config) (*Pipeline, error) {
	if len(states) == 0 {
		return nil, errors.New("stream: no lane states")
	}
	want, err := engine.ParseUpdaterKind(string(cfg.Updater))
	if err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}
	ups := make([]engine.Updater, len(states))
	for i, st := range states {
		if st.Updater.Kind != want {
			return nil, fmt.Errorf("stream: lane %d state was captured under the %q updater but the pipeline is configured for %q", i, st.Updater.Kind, want)
		}
		up, err := engine.RestoreUpdater(st.Updater, cfg.updaterConfig())
		if err != nil {
			return nil, fmt.Errorf("stream: lane %d: %w", i, err)
		}
		ups[i] = up
	}
	return newPipeline(ups, cfg)
}

// newPipeline wires lanes around ready lifecycles — the shared tail of New
// and NewRestored.
func newPipeline(ups []engine.Updater, cfg Config) (*Pipeline, error) {
	cfg = cfg.withDefaults()
	p := &Pipeline{
		cfg:  cfg,
		in:   make(chan Sample, cfg.Buffer),
		out:  make(chan Verdict, cfg.Buffer),
		agg:  make(chan laneResult, cfg.Buffer*len(ups)),
		done: make(chan struct{}),
	}
	for i, up := range ups {
		l := &lane{id: i, up: up, in: make(chan laneTask, cfg.Buffer), p: up.Model().P()}
		if cfg.RefitEvery > 0 {
			l.refitIn = make(chan *mat.Matrix, 1)
			p.refitWG.Add(1)
			go p.refitter(l)
		}
		p.lanes = append(p.lanes, l)
		p.workerWG.Add(1)
		go p.laneWorker(l)
	}
	p.workerWG.Add(1)
	go p.dispatch()
	go p.aggregate()
	return p, nil
}

// Lanes returns the number of detector lanes.
func (p *Pipeline) Lanes() int { return len(p.lanes) }

// Generations returns each lane's current model generation: the number of
// adopted full refits.
func (p *Pipeline) Generations() []uint64 {
	out := make([]uint64, len(p.lanes))
	for i, l := range p.lanes {
		out[i] = l.up.Model().Gen()
	}
	return out
}

// Freshness returns each lane's model-freshness gauges.
func (p *Pipeline) Freshness() []engine.Freshness {
	out := make([]engine.Freshness, len(p.lanes))
	for i, l := range p.lanes {
		out[i] = l.up.Freshness()
	}
	return out
}

// Submit feeds one timebin into the pipeline. Vectors are validated here so
// the concurrent stages never see a malformed sample; the pipeline retains
// the slices, so callers streaming from a reused buffer must copy first.
// Submit blocks when the pipeline is more than Buffer bins behind.
func (p *Pipeline) Submit(s Sample) error {
	if len(s.Vecs) != len(p.lanes) {
		return fmt.Errorf("stream: sample has %d vectors, want %d", len(s.Vecs), len(p.lanes))
	}
	for i, x := range s.Vecs {
		if len(x) != p.lanes[i].p {
			return fmt.Errorf("stream: lane %d vector length %d, want %d", i, len(x), p.lanes[i].p)
		}
	}
	p.closeMu.Lock()
	defer p.closeMu.Unlock()
	if p.closed {
		return errors.New("stream: submit after Close")
	}
	p.in <- s
	return nil
}

// Barrier injects a checkpoint barrier into the submission order: a
// control message that fans out to every lane behind all earlier Submits,
// captures each lane's state after the lane has scored everything before
// it, and surfaces in the verdict stream as a Verdict with a non-nil
// Barrier field, ordered exactly where this call fell among the Submits.
// Like Submit it blocks when the pipeline is Buffer bins behind, and fails
// after Close.
func (p *Pipeline) Barrier() error {
	p.closeMu.Lock()
	defer p.closeMu.Unlock()
	if p.closed {
		return errors.New("stream: barrier after Close")
	}
	p.in <- Sample{barrier: true}
	return nil
}

// Close signals end of input. It is idempotent and safe to call
// concurrently with Submit; it does not wait — drain Verdicts (the channel
// is closed after the final verdict) or call Wait.
func (p *Pipeline) Close() {
	p.closeMu.Lock()
	defer p.closeMu.Unlock()
	if !p.closed {
		p.closed = true
		close(p.in)
	}
}

// Verdicts returns the ordered verdict stream. The channel is closed once
// every submitted bin has been scored and merged.
func (p *Pipeline) Verdicts() <-chan Verdict { return p.out }

// Wait blocks until the pipeline has emitted every verdict (the consumer
// must be draining Verdicts) and all background refits have settled, then
// returns the first background error — a lane scoring or attribution
// failure, or a model update failure. A failed run still delivers a
// complete, ordered verdict stream (failed bins carry zero-valued
// placeholder points), so Wait is the only place a background failure
// surfaces.
func (p *Pipeline) Wait() error {
	<-p.done
	p.refitWG.Wait()
	p.errMu.Lock()
	defer p.errMu.Unlock()
	if p.err != nil {
		return p.err
	}
	return p.refitErr
}

// dispatch fans each submitted sample out to every lane, stamping the
// global sequence number the aggregator reorders on.
func (p *Pipeline) dispatch() {
	defer p.workerWG.Done()
	for s := range p.in {
		seq := p.seq
		p.seq++
		if s.barrier {
			for _, l := range p.lanes {
				l.in <- laneTask{seq: seq, barrier: true}
			}
			continue
		}
		for i, l := range p.lanes {
			l.in <- laneTask{seq: seq, bin: s.Bin, x: s.Vecs[i]}
		}
	}
	for _, l := range p.lanes {
		close(l.in)
	}
}

// laneWorker scores its lane's vectors in batches against whatever model is
// current, attributes alarms to OD flows against the same model, and feeds
// every scored bin to the lane's updater. An in-band updater (the
// incremental tracker) advances the scoring model inside Observe, so the
// worker flushes — scores — each bin before observing it: a bin must never
// be scored by a model that has already absorbed it. An out-of-band
// updater leaves the model alone between refit swaps, so the worker keeps
// the full scoring batch.
//
// Scoring and attribution failures do not panic: a panic on a background
// goroutine would kill the whole process on the first malformed batch. The
// first error is recorded on the pipeline (surfaced by Err and Wait) and
// the lane keeps draining its queue, emitting zero-valued placeholder
// results so the ordered verdict stream stays complete — consumers see
// every submitted bin, then learn from Wait that the run failed.
func (p *Pipeline) laneWorker(l *lane) {
	defer p.workerWG.Done()
	if l.refitIn != nil {
		defer close(l.refitIn)
	}
	inBand := l.up.InBand()
	batch := make([]laneTask, 0, p.cfg.BatchSize)
	vecs := make([][]float64, 0, p.cfg.BatchSize)
	pts := make([]engine.Point, 0, p.cfg.BatchSize)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		m := l.up.Model()
		var err error
		pts, err = m.ScoreBatch(vecs, pts[:0])
		if err != nil {
			p.fail(fmt.Errorf("stream: lane %d score: %w", l.id, err))
			for _, t := range batch {
				p.agg <- laneResult{lane: l.id, seq: t.seq, bin: t.bin, gen: m.Gen()}
			}
			batch, vecs = batch[:0], vecs[:0]
			return
		}
		for i, t := range batch {
			var att []identify.Attribution
			if p.cfg.Attribute {
				if att, err = identify.AttributeLive(m, t.bin, t.x, pts[i]); err != nil {
					p.fail(fmt.Errorf("stream: lane %d attribute: %w", l.id, err))
					att = nil
				}
			}
			p.agg <- laneResult{lane: l.id, seq: t.seq, bin: t.bin, pt: pts[i], gen: m.Gen(), att: att}
		}
		batch, vecs = batch[:0], vecs[:0]
	}
	for t := range l.in {
		if t.barrier {
			// Score everything before the barrier first, so the captured
			// state (model, window, tracker, refit phase) is exactly the
			// state as of the last pre-barrier bin.
			flush()
			p.agg <- laneResult{lane: l.id, seq: t.seq, bin: -1, state: &LaneState{Updater: l.up.State()}}
			continue
		}
		batch = append(batch, t)
		vecs = append(vecs, t.x)
		if inBand || len(batch) >= p.cfg.BatchSize {
			flush()
		}
		p.observe(l, t.x)
	}
	flush()
}

// observe feeds one scored bin to the lane's lifecycle. A returned
// snapshot is handed to the refitter; the updater guarantees at most one
// outstanding hand-off, so the capacity-1 send never blocks. An update
// failure degrades the pipeline — the previous model keeps scoring.
func (p *Pipeline) observe(l *lane, x []float64) {
	snap, err := l.up.Observe(x)
	if err != nil {
		p.failRefit(fmt.Errorf("stream: lane %d update: %w", l.id, err))
	}
	if snap != nil && l.refitIn != nil {
		l.refitIn <- snap
	}
}

// refitter fits replacement models on window snapshots and hands them back
// to the lifecycle. The fit is warm-started from the current generation's
// basis; adoption is a single atomic store (refit lifecycle) or deferred
// to the next Observe (incremental drift correction): in-flight batches
// finish on the old model, the next batch loads the new one.
func (p *Pipeline) refitter(l *lane) {
	defer p.refitWG.Done()
	for snap := range l.refitIn {
		// FaultRefit: an armed Delay makes this refit slow (it holds the
		// hand-off slot, delaying subsequent refits — never scoring); an
		// armed Err fails it, leaving the pipeline degraded on the current
		// generation.
		if err := p.cfg.Faults.Fire(FaultRefit); err != nil {
			p.failRefit(fmt.Errorf("stream: lane %d refit: %w", l.id, err))
			l.up.Install(nil)
			continue
		}
		cur := l.up.Model()
		next, err := cur.Refit(snap)
		if err != nil {
			p.failRefit(fmt.Errorf("stream: lane %d refit: %w", l.id, err))
			l.up.Install(nil) // keep scoring on the current model
			continue
		}
		l.up.Install(next)
	}
}

// aggregate merges per-lane results back into per-bin verdicts, emitted
// strictly in submission order.
func (p *Pipeline) aggregate() {
	go func() {
		p.workerWG.Wait()
		close(p.agg)
	}()
	type partial struct {
		v    Verdict
		left int
	}
	pending := make(map[int]*partial)
	next := 0
	for r := range p.agg {
		pt, ok := pending[r.seq]
		if !ok {
			if r.state != nil {
				pt = &partial{
					v:    Verdict{Bin: -1, Barrier: &Barrier{Lanes: make([]LaneState, len(p.lanes))}},
					left: len(p.lanes),
				}
			} else {
				pt = &partial{
					v: Verdict{
						Bin:     r.bin,
						Points:  make([]engine.Point, len(p.lanes)),
						Gens:    make([]uint64, len(p.lanes)),
						Attribs: make([][]identify.Attribution, len(p.lanes)),
					},
					left: len(p.lanes),
				}
			}
			pending[r.seq] = pt
		}
		if r.state != nil {
			pt.v.Barrier.Lanes[r.lane] = *r.state
		} else {
			pt.v.Points[r.lane] = r.pt
			pt.v.Gens[r.lane] = r.gen
			pt.v.Attribs[r.lane] = r.att
		}
		pt.left--
		for {
			done, ok := pending[next]
			if !ok || done.left > 0 {
				break
			}
			delete(pending, next)
			p.out <- done.v
			next++
		}
	}
	close(p.out)
	close(p.done)
}
