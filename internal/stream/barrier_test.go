package stream

import (
	"errors"
	"math/rand/v2"
	"strings"
	"testing"

	"netwide/internal/engine"
	"netwide/internal/fault"
	"netwide/internal/mat"
)

// laneVecs builds the per-lane vectors for one bin the way feed does: one
// row of live, lane l offset by l.
func laneVecs(live *mat.Matrix, lanes, bin int) [][]float64 {
	vecs := make([][]float64, lanes)
	for l := range vecs {
		row := live.Row(bin % live.Rows())
		for j := range row {
			row[j] += float64(l)
		}
		vecs[l] = row
	}
	return vecs
}

func collect(pipe *Pipeline) chan []Verdict {
	done := make(chan []Verdict, 1)
	go func() {
		var got []Verdict
		for v := range pipe.Verdicts() {
			got = append(got, v)
		}
		done <- got
	}()
	return done
}

// TestBarrierOrderedAmongSubmits pins the barrier's core guarantee: it
// surfaces in the verdict stream exactly where it was called in the
// submission order, with every lane's state captured.
func TestBarrierOrderedAmongSubmits(t *testing.T) {
	rng := rand.New(rand.NewPCG(91, 92))
	const p, lanes, n = 8, 3, 60
	models := make([]*engine.Model, lanes)
	for i := range models {
		models[i] = fitLane(t, rng, 300, p)
	}
	pipe, err := New(models, Config{BatchSize: 7})
	if err != nil {
		t.Fatal(err)
	}
	live := synth(rand.New(rand.NewPCG(93, 94)), n, p, 2)
	done := collect(pipe)
	cuts := map[int]bool{0: true, 23: true, n: true} // barrier before bin 0, before 23, after all
	for bin := 0; bin < n; bin++ {
		if cuts[bin] {
			if err := pipe.Barrier(); err != nil {
				t.Fatal(err)
			}
		}
		if err := pipe.Submit(Sample{Bin: bin, Vecs: laneVecs(live, lanes, bin)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := pipe.Barrier(); err != nil {
		t.Fatal(err)
	}
	pipe.Close()
	if err := pipe.Wait(); err != nil {
		t.Fatal(err)
	}
	got := <-done
	if len(got) != n+3 {
		t.Fatalf("got %d verdicts, want %d data + 3 barriers", len(got), n)
	}
	nextBin := 0
	for i, v := range got {
		if v.Barrier != nil {
			if v.Bin != -1 || v.Points != nil {
				t.Fatalf("verdict %d: barrier carries bin %d / points %v", i, v.Bin, v.Points)
			}
			if !cuts[nextBin] {
				t.Fatalf("verdict %d: barrier surfaced before bin %d, not at a cut", i, nextBin)
			}
			if len(v.Barrier.Lanes) != lanes {
				t.Fatalf("verdict %d: barrier has %d lane states", i, len(v.Barrier.Lanes))
			}
			for l, st := range v.Barrier.Lanes {
				if len(st.Updater.Model.Mean) == 0 {
					t.Fatalf("verdict %d lane %d: no model captured", i, l)
				}
				if st.Updater.Kind != engine.UpdaterRefit {
					t.Fatalf("verdict %d lane %d: lifecycle kind %q, want %q", i, l, st.Updater.Kind, engine.UpdaterRefit)
				}
				if st.Updater.Window != nil {
					t.Fatalf("verdict %d lane %d: window captured with refits disabled", i, l)
				}
			}
			continue
		}
		if v.Bin != nextBin {
			t.Fatalf("verdict %d has bin %d, want %d", i, v.Bin, nextBin)
		}
		nextBin++
	}
	if pipe.Barrier() == nil {
		t.Fatal("barrier after Close succeeded")
	}
}

// TestBarrierRestoreParity is the checkpoint/restore property at the
// pipeline layer: cut a run at a barrier, rebuild a pipeline from the
// captured lane states, feed it the rest — the combined verdicts must be
// bit-identical to an uninterrupted run (refits disabled, so the models
// are the only state that matters).
func TestBarrierRestoreParity(t *testing.T) {
	rng := rand.New(rand.NewPCG(101, 102))
	const p, lanes, n, cut = 8, 3, 90, 41
	models := make([]*engine.Model, lanes)
	for i := range models {
		models[i] = fitLane(t, rng, 300, p)
	}
	live := synth(rand.New(rand.NewPCG(103, 104)), n, p, 6)
	cfg := Config{BatchSize: 7, Attribute: true}

	full, err := New(models, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := feed(t, full, live, lanes, n)

	head, err := New(models, cfg)
	if err != nil {
		t.Fatal(err)
	}
	headDone := collect(head)
	for bin := 0; bin < cut; bin++ {
		if err := head.Submit(Sample{Bin: bin, Vecs: laneVecs(live, lanes, bin)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := head.Barrier(); err != nil {
		t.Fatal(err)
	}
	head.Close()
	if err := head.Wait(); err != nil {
		t.Fatal(err)
	}
	headVs := <-headDone
	bar := headVs[len(headVs)-1].Barrier
	if bar == nil {
		t.Fatal("final verdict of the head run is not the barrier")
	}

	tail, err := NewRestored(bar.Lanes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tailDone := collect(tail)
	for bin := cut; bin < n; bin++ {
		if err := tail.Submit(Sample{Bin: bin, Vecs: laneVecs(live, lanes, bin)}); err != nil {
			t.Fatal(err)
		}
	}
	tail.Close()
	if err := tail.Wait(); err != nil {
		t.Fatal(err)
	}
	got := append(headVs[:len(headVs)-1], <-tailDone...)

	if len(got) != len(want) {
		t.Fatalf("split run emitted %d verdicts, uninterrupted %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Bin != w.Bin {
			t.Fatalf("verdict %d: bin %d vs %d", i, g.Bin, w.Bin)
		}
		for l := range w.Points {
			if g.Points[l] != w.Points[l] || g.Gens[l] != w.Gens[l] {
				t.Fatalf("bin %d lane %d: split %+v gen %d, uninterrupted %+v gen %d",
					w.Bin, l, g.Points[l], g.Gens[l], w.Points[l], w.Gens[l])
			}
			if len(g.Attribs[l]) != len(w.Attribs[l]) {
				t.Fatalf("bin %d lane %d: %d attributions vs %d", w.Bin, l, len(g.Attribs[l]), len(w.Attribs[l]))
			}
		}
	}
}

// TestBarrierCapturesRefitState: with refitting enabled the barrier carries
// each lane's rolling window (newest row = last pre-barrier vector) and
// refit phase, and a pipeline restored from it keeps refitting — the model
// generation advances past the captured one.
func TestBarrierCapturesRefitState(t *testing.T) {
	rng := rand.New(rand.NewPCG(111, 112))
	const p, lanes, n = 6, 2, 80
	models := make([]*engine.Model, lanes)
	for i := range models {
		models[i] = fitLane(t, rng, 200, p)
	}
	cfg := Config{BatchSize: 4, RefitEvery: 10, Window: 40, Faults: fault.NewInjector()}
	pipe, err := New(models, cfg)
	if err != nil {
		t.Fatal(err)
	}
	live := synth(rand.New(rand.NewPCG(113, 114)), n, p, 2)
	done := collect(pipe)
	for bin := 0; bin < n; bin++ {
		if err := pipe.Submit(Sample{Bin: bin, Vecs: laneVecs(live, lanes, bin)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := pipe.Barrier(); err != nil {
		t.Fatal(err)
	}
	pipe.Close()
	if err := pipe.Wait(); err != nil {
		t.Fatal(err)
	}
	vs := <-done
	bar := vs[len(vs)-1].Barrier
	if bar == nil {
		t.Fatal("no barrier verdict")
	}
	for l, st := range bar.Lanes {
		if len(st.Updater.Window) != cfg.Window {
			t.Fatalf("lane %d window %d rows, want %d", l, len(st.Updater.Window), cfg.Window)
		}
		wantLast := laneVecs(live, lanes, n-1)[l]
		last := st.Updater.Window[len(st.Updater.Window)-1]
		for j := range wantLast {
			if last[j] != wantLast[j] {
				t.Fatalf("lane %d: newest window row is not the last pre-barrier vector", l)
			}
		}
		// Since can exceed RefitEvery when a hand-off found the refitter
		// busy, but never goes negative.
		if st.Updater.Since < 0 {
			t.Fatalf("lane %d: negative refit phase %d", l, st.Updater.Since)
		}
	}

	restored, err := NewRestored(bar.Lanes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rDone := collect(restored)
	for bin := n; bin < n+2*cfg.RefitEvery+2*cfg.BatchSize; bin++ {
		if err := restored.Submit(Sample{Bin: bin, Vecs: laneVecs(live, lanes, bin)}); err != nil {
			t.Fatal(err)
		}
	}
	restored.Close()
	if err := restored.Wait(); err != nil {
		t.Fatal(err)
	}
	rvs := <-rDone
	startGen := bar.Lanes[0].Updater.Model.Gen
	advanced := false
	for _, v := range rvs {
		if v.Gens[0] > startGen {
			advanced = true
		}
	}
	if !advanced {
		t.Fatalf("restored pipeline never refit past generation %d", startGen)
	}
}

// TestRefitFaultDegradesPipeline: an armed FaultRefit error turns every
// background refit into the degraded condition — scoring continues on
// generation 0, Wait reports the injected failure, Err stays nil.
func TestRefitFaultDegradesPipeline(t *testing.T) {
	rng := rand.New(rand.NewPCG(121, 122))
	const p, lanes, n = 6, 2, 60
	models := make([]*engine.Model, lanes)
	for i := range models {
		models[i] = fitLane(t, rng, 200, p)
	}
	inj := fault.NewInjector()
	inj.Arm(FaultRefit, fault.Fault{Err: errors.New("injected refit failure")})
	pipe, err := New(models, Config{BatchSize: 4, RefitEvery: 10, Window: 40, Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	live := synth(rand.New(rand.NewPCG(123, 124)), n, p, 2)
	got := feedExpectErr(t, pipe, live, lanes, n, "injected refit failure")
	if len(got) != n {
		t.Fatalf("degraded pipeline emitted %d verdicts, want %d", len(got), n)
	}
	for _, v := range got {
		for l := range v.Gens {
			if v.Gens[l] != 0 {
				t.Fatalf("bin %d lane %d scored on generation %d despite failing refits", v.Bin, l, v.Gens[l])
			}
		}
	}
	if inj.Trips(FaultRefit) == 0 {
		t.Fatal("refit fault never fired")
	}
	if pipe.Err() != nil {
		t.Fatalf("refit fault escalated to fatal: %v", pipe.Err())
	}
}

// feedExpectErr is feed for runs whose Wait must fail with a message
// containing want.
func feedExpectErr(t *testing.T, pipe *Pipeline, live *mat.Matrix, lanes, n int, want string) []Verdict {
	t.Helper()
	done := collect(pipe)
	for bin := 0; bin < n; bin++ {
		if err := pipe.Submit(Sample{Bin: bin, Vecs: laneVecs(live, lanes, bin)}); err != nil {
			t.Fatal(err)
		}
	}
	pipe.Close()
	err := pipe.Wait()
	if err == nil || !strings.Contains(err.Error(), want) {
		t.Fatalf("Wait() = %v, want %q", err, want)
	}
	return <-done
}

// TestNewRestoredValidation: malformed lane states are refused.
func TestNewRestoredValidation(t *testing.T) {
	rng := rand.New(rand.NewPCG(131, 132))
	m := fitLane(t, rng, 200, 6)
	ms := m.State()
	win := func(rows, p int) [][]float64 {
		out := make([][]float64, rows)
		for i := range out {
			out[i] = make([]float64, p)
		}
		return out
	}
	refitState := func(window [][]float64, since int) LaneState {
		return LaneState{Updater: engine.UpdaterState{
			Kind: engine.UpdaterRefit, Model: ms, Window: window, Since: since,
		}}
	}
	cases := []struct {
		name   string
		states []LaneState
		cfg    Config
	}{
		{"no states", nil, Config{}},
		{"empty state", []LaneState{{}}, Config{}},
		{"window too small for refit", []LaneState{refitState(nil, 0)}, Config{RefitEvery: 5, Window: 6}},
		{"restored window too long", []LaneState{refitState(win(50, 6), 0)}, Config{RefitEvery: 5, Window: 40}},
		{"negative refit phase", []LaneState{refitState(nil, -1)}, Config{RefitEvery: 5, Window: 40}},
		{"ragged window row", []LaneState{refitState(win(10, 5), 0)}, Config{RefitEvery: 5, Window: 40}},
		{"lifecycle kind mismatch", []LaneState{refitState(nil, 0)}, Config{Updater: engine.UpdaterIncremental}},
	}
	for _, tc := range cases {
		if _, err := NewRestored(tc.states, tc.cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
