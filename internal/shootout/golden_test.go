package shootout_test

// Golden ROC fixtures: every detector's quality numbers on the
// deterministic six-class scenario and the four adversarial scenarios are
// pinned byte-for-byte. A change that shifts any detector's ROC, latency
// or attribution — for better or worse — fails here and must regenerate
// the fixtures with
//
//	go test ./internal/shootout/ -run TestGolden -update
//
// and justify the diff in review. The degradation tests below the golden
// comparison are executable documentation of the adversarial results: the
// subspace detector is demonstrably degraded on the stealth-DDoS scenario
// (residual dilution) and its refitting variant on the poisoning scenario
// (threshold inflation through a contaminated refit window).

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"netwide/internal/dataset"
	"netwide/internal/sampling"
	"netwide/internal/scenario"
	"netwide/internal/shootout"
)

var update = flag.Bool("update", false, "rewrite the golden fixtures")

// trainBins is the first full week of a quick two-week run. A full week
// matters: the background has a weekday/weekend factor, and a model
// trained on weekdays only spends the whole weekend in alarm. Every
// fixture scenario schedules its episodes in week two.
const trainBins = 2016

// roster builds the contestants. Fresh instances per run: detectors are
// stateful across Run only via recorded errors, but fixtures must never
// depend on a previous scenario's run.
func roster() []shootout.Detector {
	return []shootout.Detector{
		&shootout.Subspace{},
		// Window 288 > 121 OD pairs keeps the engine on the full-PCA path;
		// the cadence refits twice a day, the regime the contamination
		// scenario poisons.
		&shootout.Subspace{RefitEvery: 144, Window: 288},
		// The per-bin lifecycle on the same 288-bin horizon, no periodic
		// corrections: the tracker forgets exponentially instead of
		// swallowing whole windows at refit boundaries.
		&shootout.SubspaceIncremental{Window: 288},
		&shootout.Empirical{},
		&shootout.EWMA{},
	}
}

var scenarioNames = []string{
	"six-classes-eval", "stealth-ddos", "coordinated", "slow-ramp", "poison",
}

var (
	reportsOnce sync.Once
	reports     map[string]shootout.Report
	reportsErr  error
)

// reportFor lazily runs every fixture scenario through the full pipeline
// and the whole roster, once per test binary — the degradation tests read
// the same reports the golden comparison pins.
func reportFor(t *testing.T, name string) shootout.Report {
	t.Helper()
	reportsOnce.Do(func() {
		reports = make(map[string]shootout.Report, len(scenarioNames))
		for _, n := range scenarioNames {
			scen, err := scenario.LoadFile(filepath.Join("testdata", n+".json"))
			if err != nil {
				reportsErr = err
				return
			}
			ds, err := dataset.Generate(dataset.Config{
				Weeks: 2, Seed: 2004, MeanRateBps: 8e5,
				SamplingRate:       sampling.AbileneRate,
				UnresolvedFraction: 0.07,
				Scenario:           scen,
			})
			if err != nil {
				reportsErr = err
				return
			}
			ms, err := shootout.RunAll(ds, roster(), trainBins)
			if err != nil {
				reportsErr = err
				return
			}
			reports[n] = shootout.NewReport(n, trainBins, ms)
		}
	})
	if reportsErr != nil {
		t.Fatal(reportsErr)
	}
	return reports[name]
}

func TestGoldenFixtures(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline runs over five scenarios")
	}
	for _, name := range scenarioNames {
		t.Run(name, func(t *testing.T) {
			r := reportFor(t, name)
			var buf bytes.Buffer
			if err := r.WriteJSON(&buf); err != nil {
				t.Fatal(err)
			}
			checkGolden(t, filepath.Join("testdata", "golden", name+".json"), buf.Bytes())
			// The text table rides along as the human-readable face of the
			// same numbers.
			checkGolden(t, filepath.Join("testdata", "golden", name+".txt"), []byte(r.String()))
		})
	}
}

func checkGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from the golden fixture.\n--- got ---\n%s\n--- want ---\n%s\nIf the change is intended, regenerate with -update and justify the diff.",
			path, got, want)
	}
}

// metricsOf pulls one detector's scorecard out of a report.
func metricsOf(t *testing.T, r shootout.Report, detector string) shootout.Metrics {
	t.Helper()
	for _, m := range r.Detectors {
		if m.Detector == detector {
			return m
		}
	}
	t.Fatalf("report %s has no detector %q", r.Scenario, detector)
	return shootout.Metrics{}
}

// tprAtCap reads the ROC sweep's TPR at one of the fixed FPR caps. The
// degradation tests compare detectors at matched false-alarm cost through
// the sweep, not at the native thresholds: the generator's sampled traffic
// is heavy-tailed enough that the nominal-alpha thresholds run at a much
// higher bin-level FPR than alpha (documented in the golden fixtures), so
// native-alarm comparisons would mostly compare threshold miscalibration.
func tprAtCap(t *testing.T, m shootout.Metrics, cap float64) float64 {
	t.Helper()
	for _, pt := range m.ROC {
		if pt.FPR == cap {
			return pt.TPR
		}
	}
	t.Fatalf("detector %s has no ROC point at FPR cap %v", m.Detector, cap)
	return 0
}

// TestSubspaceCatchesOvertClasses anchors the baseline the degradation
// tests are measured against: on the overt six-class scenario the static
// subspace detector finds every episode, and its score separates the
// anomalous bins at tiny false-alarm cost.
func TestSubspaceCatchesOvertClasses(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline")
	}
	m := metricsOf(t, reportFor(t, "six-classes-eval"), "subspace")
	if m.EpisodesDetected < m.EpisodesTotal {
		t.Errorf("static subspace detected %d/%d overt episodes; the degradation tests assume it catches all of them",
			m.EpisodesDetected, m.EpisodesTotal)
	}
	if tpr := tprAtCap(t, m, 0.01); tpr < 0.9 {
		t.Errorf("static subspace TPR at FPR<=0.01 is %v on overt classes, want >= 0.9", tpr)
	}
}

// TestStealthDDOSDegradesSubspace documents the residual-dilution attack:
// the same flow budget that an overt DDoS concentrates on a few OD pairs
// is spread across a wide origin fan, so no per-flow residual stands out
// and the subspace score of attack bins drops into the clean-bin range.
// The degradation is relative to the detector's own overt performance
// (TestSubspaceCatchesOvertClasses): same method, same traffic floor,
// evasively shaped episodes.
func TestStealthDDOSDegradesSubspace(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline")
	}
	r := reportFor(t, "stealth-ddos")
	sub := metricsOf(t, r, "subspace")
	if tpr := tprAtCap(t, sub, 0.05); tpr > 0.2 {
		t.Errorf("subspace TPR at FPR<=0.05 is %v on stealth traffic; the scenario no longer demonstrates evasion (want <= 0.2)", tpr)
	}
	if sub.EpisodesDetected == sub.EpisodesTotal {
		t.Errorf("subspace natively detected all %d stealth episodes; the scenario no longer demonstrates evasion",
			sub.EpisodesTotal)
	}
}

// TestIncrementalTracksOvertClasses: the per-bin lifecycle must not trade
// detection quality for freshness on overt anomalies — on the six-class
// scenario it catches and attributes every episode, and its bin-level
// separability stays close to the static model's (golden: AUC 0.9891 vs
// 1.0000 static, well above the refit variant's 0.9156).
func TestIncrementalTracksOvertClasses(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline")
	}
	m := metricsOf(t, reportFor(t, "six-classes-eval"), "subspace-incremental")
	if m.EpisodesDetected < m.EpisodesTotal {
		t.Errorf("incremental lifecycle detected %d/%d overt episodes, want all", m.EpisodesDetected, m.EpisodesTotal)
	}
	if m.AUC < 0.95 {
		t.Errorf("incremental lifecycle AUC %v on overt classes, want >= 0.95", m.AUC)
	}
}

// TestIncrementalNoWorseThanRefitUnderPoison is the contamination-parity
// bound: the per-bin lifecycle absorbs the poisoned bins gradually (an
// exponential forgetting scheme) where the refit variant swallows whole
// contaminated windows, so under the poisoning attack its bin-level
// separability must degrade no worse than the refit variant pinned by
// TestPoisonDegradesRefit (golden: incremental AUC 0.7202 vs refit
// 0.7137), and it must still catch the post-poisoning DDoS.
func TestIncrementalNoWorseThanRefitUnderPoison(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline")
	}
	r := reportFor(t, "poison")
	refit := metricsOf(t, r, "subspace-refit")
	incr := metricsOf(t, r, "subspace-incremental")
	if incr.AUC < refit.AUC-0.01 {
		t.Errorf("poisoned incremental AUC %v vs refit %v; per-bin updates degrade worse than generation swaps", incr.AUC, refit.AUC)
	}
	if incr.EpisodesDetected < incr.EpisodesTotal {
		t.Errorf("poisoned incremental detected %d/%d episodes, want all (the overt DDoS must survive the contamination)",
			incr.EpisodesDetected, incr.EpisodesTotal)
	}
}

// TestPoisonDegradesRefit documents the training-contamination attack: a
// sustained modest boost absorbed into the rolling refit windows inflates
// the refitted model's thresholds and bends its subspace toward the
// contaminated directions, so the refitting variant separates the overt
// post-poisoning DDoS from clean traffic far worse than the static model
// fitted before the contamination began.
func TestPoisonDegradesRefit(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline")
	}
	r := reportFor(t, "poison")
	static := metricsOf(t, r, "subspace")
	refit := metricsOf(t, r, "subspace-refit")
	st, rt := tprAtCap(t, static, 0.01), tprAtCap(t, refit, 0.01)
	if rt > st-0.25 {
		t.Errorf("poisoned refit TPR at FPR<=0.01 is %v vs static %v; refit poisoning no longer demonstrated (want a gap >= 0.25)", rt, st)
	}
	if refit.AUC > static.AUC-0.1 {
		t.Errorf("poisoned refit AUC %v vs static %v; refit poisoning no longer demonstrated (want a gap >= 0.1)", refit.AUC, static.AUC)
	}
}
