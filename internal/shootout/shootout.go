// Package shootout is the detector-comparison harness: it runs several
// anomaly detectors — the repo's subspace method and baselines drawn from
// the related literature — over the same scenario-driven dataset and the
// same ground-truth ledger, and reduces each to comparable quality
// numbers: bin-level ROC (TPR/FPR at the native operating point, a
// threshold-sweep AUC, TPR at fixed FPR caps), per-episode detection
// latency, and attribution accuracy.
//
// The harness is the repo's detection-quality gate: golden fixture tests
// pin every detector's numbers on the deterministic six-class scenario and
// on the adversarial family (stealth DDoS, coordinated floods, slow-ramp
// exfiltration, refit poisoning), so a change that silently degrades
// detection quality — not just speed — fails CI the same way a perf
// regression does.
package shootout

import (
	"fmt"
	"math"
	"sort"

	"netwide/internal/anomaly"
	"netwide/internal/dataset"
)

// BinVerdict is one detector's verdict for one evaluation bin. Score is a
// continuous anomaly score normalized so 1.0 is the detector's native
// alarm threshold; Alarm is the verdict at that native operating point;
// TopOD is the OD column the detector blames most (-1 when it has no
// attribution to offer).
type BinVerdict struct {
	Bin   int
	Score float64
	Alarm bool
	TopOD int
}

// Detector is one contestant: it trains on the leading trainBins bins of
// the dataset's three measure matrices and returns one verdict per bin in
// [trainBins, ds.Bins), in order.
type Detector interface {
	Name() string
	Run(ds *dataset.Dataset, trainBins int) ([]BinVerdict, error)
}

// ROCPoint is one point of the score-threshold sweep.
type ROCPoint struct {
	FPR float64 `json:"fpr"`
	TPR float64 `json:"tpr"`
}

// EpisodeOutcome is one ground-truth episode's fate under one detector.
type EpisodeOutcome struct {
	ID       int    `json:"id"`
	Type     string `json:"type"`
	StartBin int    `json:"start_bin"`
	EndBin   int    `json:"end_bin"`
	ODs      int    `json:"ods"`
	Detected bool   `json:"detected"`
	// LatencyBins is first-alarm bin minus the episode's first evaluated
	// bin; -1 when undetected.
	LatencyBins int `json:"latency_bins"`
	// Attributed reports whether the detector's top OD at the first
	// alarmed bin belongs to the episode's OD set.
	Attributed bool `json:"attributed"`
}

// Metrics is one detector's full scorecard over one scenario run.
type Metrics struct {
	Detector      string `json:"detector"`
	EvalBins      int    `json:"eval_bins"`
	AnomalousBins int    `json:"anomalous_bins"`
	// TPR and FPR are bin-level rates at the native operating point.
	TPR float64 `json:"tpr"`
	FPR float64 `json:"fpr"`
	// AUC is the area under the bin-level ROC swept over Score.
	AUC float64 `json:"auc"`
	// ROC samples the sweep at fixed FPR caps (the best TPR achievable
	// within each cap), low-FPR head first.
	ROC []ROCPoint `json:"roc"`
	// Episode-level quality.
	EpisodesTotal    int `json:"episodes_total"`
	EpisodesDetected int `json:"episodes_detected"`
	// MeanLatencyBins averages detection latency over detected episodes
	// (-1 when nothing was detected).
	MeanLatencyBins float64 `json:"mean_latency_bins"`
	// AttributionAccuracy is the fraction of detected episodes whose first
	// alarm was attributed inside the episode's OD set (-1 when nothing
	// was detected).
	AttributionAccuracy float64          `json:"attribution_accuracy"`
	Episodes            []EpisodeOutcome `json:"episodes"`
}

// rocFPRCaps is the fixed FPR grid sampled into Metrics.ROC.
var rocFPRCaps = []float64{0.001, 0.005, 0.01, 0.05, 0.1}

// Evaluate runs one detector over the dataset and scores it against the
// ground-truth ledger. Bins before trainBins are the training period and
// are excluded from evaluation; an episode overlapping the boundary is
// scored on its evaluated part only.
func Evaluate(ds *dataset.Dataset, det Detector, trainBins int) (Metrics, error) {
	if trainBins <= 0 || trainBins >= ds.Bins {
		return Metrics{}, fmt.Errorf("shootout: trainBins %d outside (0,%d)", trainBins, ds.Bins)
	}
	verdicts, err := det.Run(ds, trainBins)
	if err != nil {
		return Metrics{}, fmt.Errorf("shootout: %s: %w", det.Name(), err)
	}
	evalBins := ds.Bins - trainBins
	if len(verdicts) != evalBins {
		return Metrics{}, fmt.Errorf("shootout: %s returned %d verdicts, want %d", det.Name(), len(verdicts), evalBins)
	}
	specs := ds.Ledger.Specs()
	truth := make([]bool, evalBins)
	for _, s := range specs {
		for b := max(s.StartBin, trainBins); b <= s.EndBin && b < ds.Bins; b++ {
			truth[b-trainBins] = true
		}
	}

	m := Metrics{Detector: det.Name(), EvalBins: evalBins}
	for i, v := range verdicts {
		if want := trainBins + i; v.Bin != want {
			return Metrics{}, fmt.Errorf("shootout: %s verdict %d is for bin %d, want %d", det.Name(), i, v.Bin, want)
		}
		if truth[i] {
			m.AnomalousBins++
			if v.Alarm {
				m.TPR++
			}
		} else if v.Alarm {
			m.FPR++
		}
	}
	if m.AnomalousBins > 0 {
		m.TPR /= float64(m.AnomalousBins)
	}
	if n := evalBins - m.AnomalousBins; n > 0 {
		m.FPR /= float64(n)
	}
	m.AUC, m.ROC = rocSweep(verdicts, truth)
	m.Episodes = episodeOutcomes(ds, specs, verdicts, trainBins)
	m.EpisodesTotal = len(m.Episodes)
	var latSum float64
	var attributed int
	for _, ep := range m.Episodes {
		if !ep.Detected {
			continue
		}
		m.EpisodesDetected++
		latSum += float64(ep.LatencyBins)
		if ep.Attributed {
			attributed++
		}
	}
	if m.EpisodesDetected > 0 {
		m.MeanLatencyBins = latSum / float64(m.EpisodesDetected)
		m.AttributionAccuracy = float64(attributed) / float64(m.EpisodesDetected)
	} else {
		m.MeanLatencyBins = -1
		m.AttributionAccuracy = -1
	}
	return m, nil
}

// RunAll evaluates every detector over the same dataset.
func RunAll(ds *dataset.Dataset, dets []Detector, trainBins int) ([]Metrics, error) {
	out := make([]Metrics, 0, len(dets))
	for _, det := range dets {
		m, err := Evaluate(ds, det, trainBins)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// rocSweep computes the bin-level ROC over the continuous scores: AUC by
// the trapezoid rule (ties grouped, so equal scores contribute a single
// diagonal segment) and the best TPR within each fixed FPR cap.
func rocSweep(verdicts []BinVerdict, truth []bool) (float64, []ROCPoint) {
	type sv struct {
		score float64
		pos   bool
	}
	pos, neg := 0, 0
	svs := make([]sv, len(verdicts))
	for i, v := range verdicts {
		svs[i] = sv{v.Score, truth[i]}
		if truth[i] {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		// ROC undefined without both classes; report a degenerate sweep.
		return 0, make([]ROCPoint, len(rocFPRCaps))
	}
	sort.Slice(svs, func(i, j int) bool { return svs[i].score > svs[j].score })
	var auc, tp, fp float64
	bestAtCap := make([]float64, len(rocFPRCaps))
	prevTP, prevFP := 0.0, 0.0
	flush := func() {
		auc += (fp - prevFP) / float64(neg) * (tp + prevTP) / (2 * float64(pos))
		fpr, tpr := fp/float64(neg), tp/float64(pos)
		for c, cap := range rocFPRCaps {
			if fpr <= cap && tpr > bestAtCap[c] {
				bestAtCap[c] = tpr
			}
		}
		prevTP, prevFP = tp, fp
	}
	for i, s := range svs {
		if i > 0 && s.score != svs[i-1].score {
			flush()
		}
		if s.pos {
			tp++
		} else {
			fp++
		}
	}
	flush()
	roc := make([]ROCPoint, len(rocFPRCaps))
	for c := range rocFPRCaps {
		roc[c] = ROCPoint{FPR: rocFPRCaps[c], TPR: bestAtCap[c]}
	}
	return auc, roc
}

// episodeOutcomes scores each ground-truth episode overlapping the
// evaluation range: detected when any evaluated bin inside its window
// alarmed, latency from its first evaluated bin to the first alarm, and
// attribution by whether the first alarm's top OD belongs to the episode.
func episodeOutcomes(ds *dataset.Dataset, specs []anomaly.Spec, verdicts []BinVerdict, trainBins int) []EpisodeOutcome {
	var out []EpisodeOutcome
	for _, s := range specs {
		if s.EndBin < trainBins {
			continue // entirely inside the training period
		}
		first := max(s.StartBin, trainBins)
		ep := EpisodeOutcome{
			ID: s.ID, Type: s.Type.String(),
			StartBin: s.StartBin, EndBin: s.EndBin, ODs: len(s.ODs),
			LatencyBins: -1,
		}
		odSet := make(map[int]bool, len(s.ODs))
		for _, od := range s.ODs {
			odSet[ds.Top.Index(od)] = true
		}
		for b := first; b <= s.EndBin && b < ds.Bins; b++ {
			v := verdicts[b-trainBins]
			if !v.Alarm {
				continue
			}
			ep.Detected = true
			ep.LatencyBins = b - first
			ep.Attributed = odSet[v.TopOD]
			break
		}
		out = append(out, ep)
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Round truncates the floating-point fields of the metrics to fixed
// precision (1e-4 for rates and AUC, 1e-2 for latency) so serialized
// reports — golden fixtures in particular — are stable against
// last-ulp noise while still pinning four meaningful digits.
func Round(ms []Metrics) []Metrics {
	out := append([]Metrics(nil), ms...)
	r4 := func(x float64) float64 { return math.Round(x*1e4) / 1e4 }
	r2 := func(x float64) float64 { return math.Round(x*1e2) / 1e2 }
	for i := range out {
		out[i].TPR = r4(out[i].TPR)
		out[i].FPR = r4(out[i].FPR)
		out[i].AUC = r4(out[i].AUC)
		out[i].MeanLatencyBins = r2(out[i].MeanLatencyBins)
		out[i].AttributionAccuracy = r4(out[i].AttributionAccuracy)
		roc := append([]ROCPoint(nil), out[i].ROC...)
		for j := range roc {
			roc[j].TPR = r4(roc[j].TPR)
		}
		out[i].ROC = roc
	}
	return out
}
