package shootout

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Report is the serializable result of one shootout: the scenario label
// plus every detector's metrics, in roster order.
type Report struct {
	Scenario  string    `json:"scenario"`
	TrainBins int       `json:"train_bins"`
	Detectors []Metrics `json:"detectors"`
}

// NewReport bundles rounded metrics into a report (rounding makes the
// JSON form fixture-stable; see Round).
func NewReport(scenario string, trainBins int, ms []Metrics) Report {
	return Report{Scenario: scenario, TrainBins: trainBins, Detectors: Round(ms)}
}

// WriteJSON writes the report as indented JSON.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText renders the report as two fixed-width tables: the per-detector
// scorecard, then the per-episode outcome grid (episodes as rows, one
// hit/miss column per detector).
func (r Report) WriteText(w io.Writer) error {
	bw := &errWriter{w: w}
	bw.printf("shootout: %s (train %d bins)\n\n", r.Scenario, r.TrainBins)
	bw.printf("%-20s %7s %7s %7s  %9s %8s %6s", "DETECTOR", "AUC", "TPR", "FPR", "EPISODES", "LATENCY", "ATTR")
	for _, p := range rocFPRCaps {
		bw.printf(" %8s", fmt.Sprintf("T@%g", p))
	}
	bw.printf("\n")
	for _, m := range r.Detectors {
		lat, attr := "-", "-"
		if m.MeanLatencyBins >= 0 {
			lat = fmt.Sprintf("%.1f", m.MeanLatencyBins)
		}
		if m.AttributionAccuracy >= 0 {
			attr = fmt.Sprintf("%.0f%%", 100*m.AttributionAccuracy)
		}
		bw.printf("%-20s %7.4f %7.4f %7.4f  %5d/%-3d %8s %6s",
			m.Detector, m.AUC, m.TPR, m.FPR, m.EpisodesDetected, m.EpisodesTotal, lat, attr)
		for _, pt := range m.ROC {
			bw.printf(" %8.4f", pt.TPR)
		}
		bw.printf("\n")
	}
	if len(r.Detectors) == 0 || len(r.Detectors[0].Episodes) == 0 {
		return bw.err
	}
	bw.printf("\nepisodes (d = detected, a = detected + attributed, . = missed):\n")
	bw.printf("%-4s %-13s %-11s %4s", "ID", "TYPE", "BINS", "ODS")
	for _, m := range r.Detectors {
		bw.printf(" %-20s", m.Detector)
	}
	bw.printf("\n")
	for i, ep := range r.Detectors[0].Episodes {
		bw.printf("%-4d %-13s %5d-%-5d %4d", ep.ID, ep.Type, ep.StartBin, ep.EndBin, ep.ODs)
		for _, m := range r.Detectors {
			cell := "."
			if i < len(m.Episodes) && m.Episodes[i].Detected {
				cell = "d"
				if m.Episodes[i].Attributed {
					cell = "a"
				}
				cell = fmt.Sprintf("%s+%d", cell, m.Episodes[i].LatencyBins)
			}
			bw.printf(" %-20s", cell)
		}
		bw.printf("\n")
	}
	return bw.err
}

// String renders the text report.
func (r Report) String() string {
	var sb strings.Builder
	_ = r.WriteText(&sb)
	return sb.String()
}

// errWriter latches the first write error so table rendering stays linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
