package shootout

import (
	"fmt"
	"math"

	"netwide/internal/dataset"
)

// EWMA is the per-flow heuristic contestant: an online robust z-test per
// (measure, OD flow) against an exponentially weighted level and absolute
// deviation, the multivariate generalization of baseline.EWMADetector. It
// has no network-wide model at all — each flow is tracked independently —
// so it is immune to subspace poisoning but blind to anything that stays
// within each individual flow's normal band.
type EWMA struct {
	// Alpha is the EWMA smoothing factor in (0,1]; 0 means 0.3.
	Alpha float64
	// Z is the alarm level in deviation units; 0 means 32. Far above the
	// classical 4-6 of single-series control charts on purpose: sampled
	// per-flow traffic is compound-Poisson with very fat tails, and with
	// 3 x p marginal tests per bin the max z over the network sits near 15
	// on perfectly clean bins — at z = 6 the heuristic alarms on >90% of
	// bins. 32 puts the native false-alarm rate near 10%, comparable to
	// the subspace detector's empirical operating point on this traffic.
	Z float64
}

// Name returns "ewma".
func (e *EWMA) Name() string { return "ewma" }

// Run warms the per-flow levels through the training prefix (absorbing
// everything, anomalies included — the heuristic has no clean-training
// privilege) and then scores each later bin as the worst per-flow z-score
// over deviation units, normalized so 1.0 is the native alarm level.
// Alarmed values are not absorbed into the level estimate, exactly as in
// the single-series baseline detector.
func (e *EWMA) Run(ds *dataset.Dataset, trainBins int) ([]BinVerdict, error) {
	alpha, z := e.Alpha, e.Z
	if alpha == 0 {
		alpha = 0.3
	}
	if !(alpha > 0 && alpha <= 1) {
		return nil, fmt.Errorf("ewma: alpha %v out of (0,1]", alpha)
	}
	if z == 0 {
		z = 32
	}
	if z <= 0 {
		return nil, fmt.Errorf("ewma: threshold %v must be positive", z)
	}
	p := ds.NumODPairs()
	// The deviation estimate is floored at a fraction of the measure's
	// network-wide mean cell value. The floor must be network-scale, not
	// per-flow: a near-idle OD pair sits at a tiny absolute deviation, so
	// one sampled multi-packet flow landing on it produces a thousand-sigma
	// excursion, and with 3 x p marginal tests per bin some idle pair does
	// that almost every bin. Flooring by the network mean makes the
	// heuristic deliberately deaf to flows far below the mean cell volume —
	// the price a per-flow z-test pays for a workable false-alarm rate.
	var floor [dataset.NumMeasures]float64
	var level, dev [dataset.NumMeasures][]float64
	for m := dataset.Measure(0); m < dataset.NumMeasures; m++ {
		var mean float64
		X := ds.Matrix(m)
		for bin := 0; bin < trainBins; bin++ {
			for _, v := range X.RowView(bin) {
				mean += v
			}
		}
		mean /= float64(trainBins) * float64(p)
		floor[m] = 0.05*mean + 1
		level[m] = make([]float64, p)
		dev[m] = make([]float64, p)
		for od := 0; od < p; od++ {
			x := X.At(0, od)
			level[m][od], dev[m][od] = x, math.Abs(x)*0.1+floor[m]
		}
		for bin := 1; bin < trainBins; bin++ {
			row := X.RowView(bin)
			for od := 0; od < p; od++ {
				diff := row[od] - level[m][od]
				level[m][od] += alpha * diff
				dev[m][od] = alpha*math.Abs(diff) + (1-alpha)*dev[m][od]
				if dev[m][od] < floor[m] {
					dev[m][od] = floor[m]
				}
			}
		}
	}
	verdicts := make([]BinVerdict, 0, ds.Bins-trainBins)
	for bin := trainBins; bin < ds.Bins; bin++ {
		v := BinVerdict{Bin: bin, TopOD: -1}
		for m := dataset.Measure(0); m < dataset.NumMeasures; m++ {
			row := ds.Matrix(m).RowView(bin)
			for od := 0; od < p; od++ {
				diff := row[od] - level[m][od]
				if score := math.Abs(diff) / dev[m][od] / z; score > v.Score {
					v.Score = score
					v.TopOD = od
				}
				if math.Abs(diff) > z*dev[m][od] {
					v.Alarm = true
					continue // do not absorb the anomaly
				}
				level[m][od] += alpha * diff
				dev[m][od] = alpha*math.Abs(diff) + (1-alpha)*dev[m][od]
				if dev[m][od] < floor[m] {
					dev[m][od] = floor[m]
				}
			}
		}
		verdicts = append(verdicts, v)
	}
	return verdicts, nil
}
