package shootout

import (
	"math"
	"testing"
)

func verdictsFrom(scores []float64) []BinVerdict {
	vs := make([]BinVerdict, len(scores))
	for i, s := range scores {
		vs[i] = BinVerdict{Bin: i, Score: s}
	}
	return vs
}

func TestROCSweepSeparable(t *testing.T) {
	// Positives strictly above negatives: perfect ranking.
	scores := []float64{0.1, 0.2, 0.9, 0.8, 0.3, 0.95}
	truth := []bool{false, false, true, true, false, true}
	auc, roc := rocSweep(verdictsFrom(scores), truth)
	if math.Abs(auc-1) > 1e-12 {
		t.Fatalf("AUC %v on separable scores, want 1", auc)
	}
	for _, pt := range roc {
		if pt.TPR != 1 {
			t.Fatalf("TPR %v at cap %v on separable scores, want 1", pt.TPR, pt.FPR)
		}
	}
}

func TestROCSweepAntiSeparable(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.1, 0.2}
	truth := []bool{false, false, true, true}
	auc, roc := rocSweep(verdictsFrom(scores), truth)
	if math.Abs(auc) > 1e-12 {
		t.Fatalf("AUC %v on inverted ranking, want 0", auc)
	}
	for _, pt := range roc {
		if pt.TPR != 0 {
			t.Fatalf("TPR %v at cap %v on inverted ranking, want 0", pt.TPR, pt.FPR)
		}
	}
}

func TestROCSweepTiesAreHalfCredit(t *testing.T) {
	// All scores identical: the sweep is a single diagonal segment and the
	// AUC must be exactly 1/2 (ties grouped), not 0 or 1.
	scores := []float64{5, 5, 5, 5}
	truth := []bool{true, false, true, false}
	auc, _ := rocSweep(verdictsFrom(scores), truth)
	if math.Abs(auc-0.5) > 1e-12 {
		t.Fatalf("AUC %v on all-tied scores, want exactly 0.5", auc)
	}
}

func TestROCSweepDegenerateClasses(t *testing.T) {
	for _, truth := range [][]bool{{true, true}, {false, false}} {
		auc, roc := rocSweep(verdictsFrom([]float64{1, 2}), truth)
		if auc != 0 {
			t.Fatalf("AUC %v with a single class present, want the degenerate 0", auc)
		}
		if len(roc) != len(rocFPRCaps) {
			t.Fatalf("degenerate sweep has %d points, want %d", len(roc), len(rocFPRCaps))
		}
	}
}

func TestRoundIsStableAndNonDestructive(t *testing.T) {
	in := []Metrics{{
		Detector: "x",
		TPR:      0.123456789, FPR: 1.0 / 3, AUC: 0.999999,
		MeanLatencyBins: 10.0 / 3, AttributionAccuracy: -1,
		ROC: []ROCPoint{{FPR: 0.01, TPR: 2.0 / 3}},
	}}
	out := Round(in)
	if out[0].TPR != 0.1235 || out[0].FPR != 0.3333 || out[0].AUC != 1 {
		t.Fatalf("rounded rates wrong: %+v", out[0])
	}
	if out[0].MeanLatencyBins != 3.33 {
		t.Fatalf("latency rounded to %v, want 3.33", out[0].MeanLatencyBins)
	}
	if out[0].AttributionAccuracy != -1 {
		t.Fatalf("the -1 sentinel must survive rounding, got %v", out[0].AttributionAccuracy)
	}
	if out[0].ROC[0].TPR != 0.6667 {
		t.Fatalf("ROC TPR rounded to %v, want 0.6667", out[0].ROC[0].TPR)
	}
	// The input (and its ROC backing array) must be untouched.
	if in[0].TPR != 0.123456789 || in[0].ROC[0].TPR != 2.0/3 {
		t.Fatalf("Round mutated its input: %+v", in[0])
	}
}
