package shootout

import (
	"fmt"

	"netwide/internal/dataset"
	"netwide/internal/engine"
)

// SubspaceIncremental adapts the incremental model lifecycle
// (engine.IncrementalUpdater) to the shootout interface: the subspace is
// seeded by a full fit on the training window and then tracked with one
// CCIPCA rank-1 update per evaluated bin, thresholds re-derived from
// streaming residual moments, so the scoring model is never more than one
// bin stale. With RefitEvery > 0 the lifecycle's periodic drift-correction
// refits run too — synchronously here, same as Subspace, so verdicts are
// bit-deterministic and fixture-safe.
//
// In the contamination scenario this is the variant the per-bin lifecycle
// is judged on: the tracker absorbs the poisoned bins gradually (an
// exponential forgetting scheme) instead of swallowing a whole
// contaminated window at a refit boundary.
type SubspaceIncremental struct {
	// Label is the detector name; empty means "subspace-incremental".
	Label string
	// Opts configures the seed fit; the zero value means engine defaults.
	Opts engine.Options
	// RefitEvery is the drift-correction cadence in bins (0: pure
	// per-bin tracking, never a full refit).
	RefitEvery int
	// Window is the tracker's forgetting horizon and, when RefitEvery > 0,
	// the drift-correction refit window (0: the seed fit's bin count).
	Window int

	// LastRefitErr records the first model-update failure of the latest
	// Run, if any — degraded operation, not fatal, mirroring the streaming
	// pipeline's RefitErr semantics.
	LastRefitErr error
}

// Name returns the detector label.
func (s *SubspaceIncremental) Name() string {
	if s.Label != "" {
		return s.Label
	}
	return "subspace-incremental"
}

// Run seeds one model per measure on the training prefix, then walks the
// evaluation bins scoring each on the current tracked model before folding
// it in — the same score-then-observe order as the streaming pipeline's
// in-band lane worker. The combined score and attribution follow Subspace
// exactly, so the two variants differ only in lifecycle.
func (s *SubspaceIncremental) Run(ds *dataset.Dataset, trainBins int) ([]BinVerdict, error) {
	s.LastRefitErr = nil
	opts := s.Opts
	if opts.K == 0 && opts.Alpha == 0 {
		opts = engine.DefaultOptions()
	}
	cfg := engine.UpdaterConfig{RefitEvery: s.RefitEvery, Window: s.Window}
	var ups [dataset.NumMeasures]engine.Updater
	for m := dataset.Measure(0); m < dataset.NumMeasures; m++ {
		model, err := engine.Fit(ds.Matrix(m).HeadRows(trainBins), opts)
		if err != nil {
			return nil, fmt.Errorf("subspace-incremental: fit %v: %w", m, err)
		}
		up, err := engine.NewUpdater(engine.UpdaterIncremental, model, cfg)
		if err != nil {
			return nil, fmt.Errorf("subspace-incremental: %v: %w", m, err)
		}
		ups[m] = up
	}
	verdicts := make([]BinVerdict, 0, ds.Bins-trainBins)
	for bin := trainBins; bin < ds.Bins; bin++ {
		v := BinVerdict{Bin: bin, TopOD: -1}
		for m := dataset.Measure(0); m < dataset.NumMeasures; m++ {
			row := ds.Matrix(m).RowView(bin)
			model := ups[m].Model()
			pt, err := model.Score(row)
			if err != nil {
				return nil, fmt.Errorf("subspace-incremental: score %v bin %d: %w", m, bin, err)
			}
			qLimit, t2Limit := model.Limits()
			score := pt.SPE / qLimit
			if t2 := pt.T2 / t2Limit; t2 > score {
				score = t2
			}
			if score > v.Score {
				v.Score = score
				v.TopOD = pt.TopResidualOD
			}
			v.Alarm = v.Alarm || pt.SPEAlarm || pt.T2Alarm
			snap, err := ups[m].Observe(row)
			if err != nil {
				if s.LastRefitErr == nil {
					s.LastRefitErr = fmt.Errorf("subspace-incremental: update %v bin %d: %w", m, bin, err)
				}
				continue
			}
			if snap != nil {
				// Synchronous drift correction (the pipeline does this on the
				// refitter goroutine); adoption happens at the next Observe.
				next, err := ups[m].Model().Refit(snap)
				if err != nil {
					if s.LastRefitErr == nil {
						s.LastRefitErr = fmt.Errorf("subspace-incremental: refit %v after bin %d: %w", m, bin, err)
					}
					ups[m].Install(nil)
					continue
				}
				ups[m].Install(next)
			}
		}
		verdicts = append(verdicts, v)
	}
	return verdicts, nil
}
