package shootout

import (
	"fmt"

	"netwide/internal/dataset"
	"netwide/internal/engine"
	"netwide/internal/mat"
)

// Subspace adapts the repo's subspace detection engine to the shootout
// interface. With RefitEvery == 0 it is the paper's static model: fit once
// on the training window, score everything after it. With RefitEvery > 0
// it periodically refits each measure's model on a rolling window of the
// most recent Window bins via engine.Model.Refit — the same code path the
// streaming pipeline's background refitter takes, but synchronous, so
// verdicts are bit-deterministic and fixture-safe. The refit variant is
// the one the contamination scenario poisons: anomalous bins absorbed
// into a refit window inflate the next generation's thresholds.
type Subspace struct {
	// Label is the detector name; empty picks "subspace" or
	// "subspace-refit" by RefitEvery.
	Label string
	// Opts configures the engine; the zero value means engine defaults
	// (k = 4, alpha = 0.001).
	Opts engine.Options
	// RefitEvery is the refit cadence in bins (0: never refit).
	RefitEvery int
	// Window is the rolling refit window length in bins; it must exceed
	// the OD-pair count for the engine's full-PCA path. Ignored when
	// RefitEvery == 0.
	Window int

	// LastRefitErr records the first refit failure of the latest Run, if
	// any. A failed refit is degraded operation, not a fatal error — the
	// detector keeps scoring on the previous generation, mirroring the
	// streaming pipeline's RefitErr semantics.
	LastRefitErr error
}

// Name returns the detector label.
func (s *Subspace) Name() string {
	if s.Label != "" {
		return s.Label
	}
	if s.RefitEvery > 0 {
		return "subspace-refit"
	}
	return "subspace"
}

// Run fits one model per measure on the training prefix and scores every
// later bin. The combined score is the worst statistic-to-threshold ratio
// across the three measures and both statistics (SPE and T²), so 1.0 is
// exactly the native alarm boundary; the blamed OD is the top residual OD
// of the measure that produced the combined score.
func (s *Subspace) Run(ds *dataset.Dataset, trainBins int) ([]BinVerdict, error) {
	s.LastRefitErr = nil
	opts := s.Opts
	if opts.K == 0 && opts.Alpha == 0 {
		opts = engine.DefaultOptions()
	}
	p := ds.NumODPairs()
	var models [dataset.NumMeasures]*engine.Model
	for m := dataset.Measure(0); m < dataset.NumMeasures; m++ {
		model, err := engine.Fit(ds.Matrix(m).HeadRows(trainBins), opts)
		if err != nil {
			return nil, fmt.Errorf("subspace: fit %v: %w", m, err)
		}
		model.ReleaseTrain()
		models[m] = model
	}
	// Rolling refit windows, one ring per measure, seeded with the
	// training tail so the first refit already has a full window.
	var rings [dataset.NumMeasures]*ring
	if s.RefitEvery > 0 {
		if s.Window <= p {
			return nil, fmt.Errorf("subspace: refit window %d must exceed %d OD pairs", s.Window, p)
		}
		if s.Window > trainBins {
			return nil, fmt.Errorf("subspace: refit window %d exceeds %d training bins", s.Window, trainBins)
		}
		for m := dataset.Measure(0); m < dataset.NumMeasures; m++ {
			rings[m] = newRing(s.Window, p)
			for b := trainBins - s.Window; b < trainBins; b++ {
				rings[m].push(ds.Matrix(m).RowView(b))
			}
		}
	}
	verdicts := make([]BinVerdict, 0, ds.Bins-trainBins)
	sinceRefit := 0
	for bin := trainBins; bin < ds.Bins; bin++ {
		v := BinVerdict{Bin: bin, TopOD: -1}
		for m := dataset.Measure(0); m < dataset.NumMeasures; m++ {
			row := ds.Matrix(m).RowView(bin)
			pt, err := models[m].Score(row)
			if err != nil {
				return nil, fmt.Errorf("subspace: score %v bin %d: %w", m, bin, err)
			}
			qLimit, t2Limit := models[m].Limits()
			score := pt.SPE / qLimit
			if t2 := pt.T2 / t2Limit; t2 > score {
				score = t2
			}
			if score > v.Score {
				v.Score = score
				v.TopOD = pt.TopResidualOD
			}
			v.Alarm = v.Alarm || pt.SPEAlarm || pt.T2Alarm
			if rings[m] != nil {
				rings[m].push(row)
			}
		}
		verdicts = append(verdicts, v)
		if s.RefitEvery > 0 {
			if sinceRefit++; sinceRefit >= s.RefitEvery {
				sinceRefit = 0
				for m := dataset.Measure(0); m < dataset.NumMeasures; m++ {
					next, err := models[m].Refit(rings[m].snapshot())
					if err != nil {
						if s.LastRefitErr == nil {
							s.LastRefitErr = fmt.Errorf("subspace: refit %v after bin %d: %w", m, bin, err)
						}
						continue // degraded: keep the previous generation
					}
					models[m] = next
				}
			}
		}
	}
	return verdicts, nil
}

// ring is a fixed-size window of row copies in arrival order.
type ring struct {
	rows *mat.Matrix // window x p backing store
	next int
}

func newRing(window, p int) *ring { return &ring{rows: mat.New(window, p)} }

func (r *ring) push(row []float64) {
	copy(r.rows.RowView(r.next), row)
	r.next = (r.next + 1) % r.rows.Rows()
}

// snapshot copies the window out in a stable (storage) order. Row order
// does not affect a PCA fit, so the rotation offset is irrelevant.
func (r *ring) snapshot() *mat.Matrix { return r.rows.Clone() }
