package shootout

import (
	"fmt"

	"netwide/internal/dataset"
	"netwide/internal/empirical"
)

// Empirical adapts the empirical-measure (method-of-types) detector: one
// per-measure large-deviations scorer, combined by the worst
// rate-to-threshold ratio across the three measures.
type Empirical struct {
	// Opts configures each per-measure detector; the zero value means
	// empirical.DefaultOptions.
	Opts empirical.Options
}

// Name returns "empirical".
func (e *Empirical) Name() string { return "empirical" }

// Run fits one detector per measure on the training prefix and streams
// every later bin through all three, in time order (the empirical
// detector is stateful — its sliding windows advance per call).
func (e *Empirical) Run(ds *dataset.Dataset, trainBins int) ([]BinVerdict, error) {
	opts := e.Opts
	if opts == (empirical.Options{}) {
		opts = empirical.DefaultOptions()
	}
	var dets [dataset.NumMeasures]*empirical.Detector
	for m := dataset.Measure(0); m < dataset.NumMeasures; m++ {
		d, err := empirical.Fit(ds.Matrix(m).HeadRows(trainBins), opts)
		if err != nil {
			return nil, fmt.Errorf("empirical: fit %v: %w", m, err)
		}
		dets[m] = d
	}
	verdicts := make([]BinVerdict, 0, ds.Bins-trainBins)
	for bin := trainBins; bin < ds.Bins; bin++ {
		v := BinVerdict{Bin: bin, TopOD: -1}
		for m := dataset.Measure(0); m < dataset.NumMeasures; m++ {
			score, topOD, alarm, err := dets[m].Score(bin, ds.Matrix(m).RowView(bin))
			if err != nil {
				return nil, fmt.Errorf("empirical: score %v bin %d: %w", m, bin, err)
			}
			if norm := score / dets[m].Threshold(); norm > v.Score {
				v.Score = norm
				v.TopOD = topOD
			}
			v.Alarm = v.Alarm || alarm
		}
		verdicts = append(verdicts, v)
	}
	return verdicts, nil
}
