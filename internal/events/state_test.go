package events

import (
	"bytes"
	"encoding/gob"
	"math"
	"sort"
	"testing"
)

// TestAggregatorStateRoundTrip pins the restore contract: an aggregator
// snapshotted at any bin and rebuilt from the (gob round-tripped) state
// must emit exactly the events the uninterrupted aggregator emits for the
// rest of the stream — the property the daemon checkpoint relies on.
func TestAggregatorStateRoundTrip(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		const bins = 120
		dets := randomDetections(seed, bins)
		byBin := map[int][]Detection{}
		for _, d := range dets {
			byBin[d.Bin] = append(byBin[d.Bin], d)
		}
		for _, cut := range []int{0, 1, 37, 63, bins - 1} {
			cont := NewAggregator()
			var wantTail []Event
			for bin := 0; bin < bins; bin++ {
				closed := cont.Add(bin, byBin[bin])
				if bin >= cut {
					wantTail = append(wantTail, closed...)
				}
			}
			wantTail = append(wantTail, cont.Flush()...)

			split := NewAggregator()
			for bin := 0; bin < cut; bin++ {
				split.Add(bin, byBin[bin])
			}
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(split.State()); err != nil {
				t.Fatal(err)
			}
			var st AggregatorState
			if err := gob.NewDecoder(&buf).Decode(&st); err != nil {
				t.Fatal(err)
			}
			restored, err := RestoreAggregator(st)
			if err != nil {
				t.Fatalf("seed %d cut %d: restore: %v", seed, cut, err)
			}
			var gotTail []Event
			for bin := cut; bin < bins; bin++ {
				gotTail = append(gotTail, restored.Add(bin, byBin[bin])...)
			}
			gotTail = append(gotTail, restored.Flush()...)

			if len(gotTail) != len(wantTail) {
				t.Fatalf("seed %d cut %d: restored tail %d events, continuous %d", seed, cut, len(gotTail), len(wantTail))
			}
			sortEvents(gotTail)
			sortEvents(wantTail)
			for i := range wantTail {
				if eventKey(gotTail[i]) != eventKey(wantTail[i]) {
					t.Fatalf("seed %d cut %d event %d:\n restored   %s\n continuous %s", seed, cut, i, eventKey(gotTail[i]), eventKey(wantTail[i]))
				}
				for od, r := range wantTail[i].ODResidual {
					if gotTail[i].ODResidual[od] != r {
						t.Fatalf("seed %d cut %d event %d od %d: residual %v vs %v", seed, cut, i, od, gotTail[i].ODResidual[od], r)
					}
				}
			}
		}
	}
}

// TestAggregatorStateIsolation: mutating a snapshot (or the source
// aggregator after snapshotting) must not leak through shared slices/maps.
func TestAggregatorStateIsolation(t *testing.T) {
	agg := NewAggregator()
	agg.Add(0, []Detection{{Measure: 0, Bin: 0, ODs: []int{3, 4}, Residuals: []float64{10, -5}}})
	agg.Add(1, []Detection{{Measure: 1, Bin: 1, ODs: []int{3}, Residuals: []float64{7}}})
	st := agg.State()

	// Feeding the source further must not change the captured state.
	agg.Add(2, []Detection{{Measure: 0, Bin: 2, ODs: []int{3}, Residuals: []float64{1}}})
	if st.CurBin != 1 || len(st.CurDets) != 1 {
		t.Fatalf("snapshot mutated by later Add: %+v", st)
	}

	// Corrupting the snapshot must not reach a restored aggregator.
	restored, err := RestoreAggregator(st)
	if err != nil {
		t.Fatal(err)
	}
	for od := range st.Open[0].ODResidual {
		st.Open[0].ODResidual[od] = math.NaN()
	}
	st.CurDets[0].ODs[0] = -99

	got := append(restored.Add(3, nil), restored.Flush()...)
	for _, ev := range got {
		for od, r := range ev.ODResidual {
			if od < 0 || math.IsNaN(r) {
				t.Fatalf("snapshot corruption leaked into restored aggregator: %+v", ev)
			}
		}
	}
}

// TestRestoreAggregatorRejectsCorruptState: every malformed snapshot is an
// error, never a panic or a silently wrong aggregator.
func TestRestoreAggregatorRejectsCorruptState(t *testing.T) {
	good := func() AggregatorState {
		agg := NewAggregator()
		agg.Add(5, []Detection{{Measure: 0, Bin: 5, ODs: []int{1, 2}, Residuals: []float64{3, 4}}})
		agg.Add(6, []Detection{{Measure: 2, Bin: 6, ODs: []int{9}, Residuals: []float64{-2}}})
		return agg.State()
	}
	cases := []struct {
		name string
		mut  func(st *AggregatorState)
	}{
		{"unstarted with open events", func(st *AggregatorState) { st.Started = false }},
		{"inverted event interval", func(st *AggregatorState) { st.Open[0].StartBin = st.Open[0].EndBin + 1 }},
		{"event not before buffered bin", func(st *AggregatorState) { st.Open[0].EndBin = st.CurBin }},
		{"event without residuals", func(st *AggregatorState) { st.Open[0].ODResidual = nil }},
		{"negative OD in event", func(st *AggregatorState) {
			st.Open[0].ODResidual = map[int]float64{-1: 2}
		}},
		{"NaN residual", func(st *AggregatorState) {
			for od := range st.Open[0].ODResidual {
				st.Open[0].ODResidual[od] = math.NaN()
			}
		}},
		{"buffered detection bad measure", func(st *AggregatorState) { st.CurDets[0].Measure = 17 }},
		{"buffered detection negative OD", func(st *AggregatorState) { st.CurDets[0].ODs[0] = -3 }},
	}
	for _, tc := range cases {
		st := good()
		tc.mut(&st)
		if _, err := RestoreAggregator(st); err == nil {
			t.Errorf("%s: corrupt state restored silently", tc.name)
		}
	}
	if _, err := RestoreAggregator(good()); err != nil {
		t.Fatalf("pristine state rejected: %v", err)
	}
}

func sortEvents(evs []Event) {
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].StartBin != evs[j].StartBin {
			return evs[i].StartBin < evs[j].StartBin
		}
		return evs[i].Measures < evs[j].Measures
	})
}
