package events

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"testing"

	"netwide/internal/dataset"
)

func TestMeasureSetStrings(t *testing.T) {
	cases := map[MeasureSet]string{
		SetB:               "B",
		SetP:               "P",
		SetF:               "F",
		SetB | SetP:        "BP",
		SetB | SetF:        "BF",
		SetF | SetP:        "FP",
		SetB | SetF | SetP: "BFP",
		MeasureSet(0):      "-",
	}
	for set, want := range cases {
		if got := set.String(); got != want {
			t.Fatalf("%d -> %q, want %q", set, got, want)
		}
	}
	if len(AllSets()) != 7 {
		t.Fatal("AllSets incomplete")
	}
}

func TestMeasureSetOps(t *testing.T) {
	s := MeasureSet(0).With(dataset.Bytes).With(dataset.Flows)
	if !s.Has(dataset.Bytes) || !s.Has(dataset.Flows) || s.Has(dataset.Packets) {
		t.Fatalf("set ops wrong: %v", s)
	}
}

func TestAggregateMergesMeasures(t *testing.T) {
	// Same (bin, od) seen in bytes and packets -> one BP event.
	dets := []Detection{
		{Measure: dataset.Bytes, Bin: 10, ODs: []int{5}, Residuals: []float64{100}},
		{Measure: dataset.Packets, Bin: 10, ODs: []int{5}, Residuals: []float64{50}},
	}
	evs := Aggregate(dets)
	if len(evs) != 1 {
		t.Fatalf("events=%d, want 1", len(evs))
	}
	e := evs[0]
	if e.Measures.String() != "BP" {
		t.Fatalf("measures=%s", e.Measures)
	}
	if e.DurationBins() != 1 || len(e.ODs) != 1 || e.ODs[0] != 5 {
		t.Fatalf("event %+v", e)
	}
	if e.ODResidual[5] != 150 {
		t.Fatalf("residual %v", e.ODResidual[5])
	}
}

func TestAggregateKeepsDistinctSetsSeparate(t *testing.T) {
	// OD 1 in bytes only, OD 2 in flows only, same bin: two events.
	dets := []Detection{
		{Measure: dataset.Bytes, Bin: 20, ODs: []int{1}, Residuals: []float64{10}},
		{Measure: dataset.Flows, Bin: 20, ODs: []int{2}, Residuals: []float64{10}},
	}
	evs := Aggregate(dets)
	if len(evs) != 2 {
		t.Fatalf("events=%d, want 2", len(evs))
	}
}

func TestAggregateSpatialGrouping(t *testing.T) {
	// Two ODs alarmed in the same measure at the same bin: one event.
	dets := []Detection{
		{Measure: dataset.Flows, Bin: 30, ODs: []int{3, 9}, Residuals: []float64{5, 4}},
	}
	evs := Aggregate(dets)
	if len(evs) != 1 || len(evs[0].ODs) != 2 {
		t.Fatalf("events=%v", evs)
	}
}

func TestAggregateTemporalMerge(t *testing.T) {
	// Consecutive bins, same measure, overlapping OD: one event spanning
	// both bins.
	dets := []Detection{
		{Measure: dataset.Packets, Bin: 40, ODs: []int{7}, Residuals: []float64{8}},
		{Measure: dataset.Packets, Bin: 41, ODs: []int{7}, Residuals: []float64{9}},
		{Measure: dataset.Packets, Bin: 42, ODs: []int{7}, Residuals: []float64{7}},
	}
	evs := Aggregate(dets)
	if len(evs) != 1 {
		t.Fatalf("events=%d, want 1", len(evs))
	}
	if evs[0].StartBin != 40 || evs[0].EndBin != 42 || evs[0].DurationBins() != 3 {
		t.Fatalf("window %d-%d", evs[0].StartBin, evs[0].EndBin)
	}
}

func TestAggregateNoMergeAcrossGap(t *testing.T) {
	dets := []Detection{
		{Measure: dataset.Packets, Bin: 40, ODs: []int{7}, Residuals: []float64{8}},
		{Measure: dataset.Packets, Bin: 43, ODs: []int{7}, Residuals: []float64{9}},
	}
	if evs := Aggregate(dets); len(evs) != 2 {
		t.Fatalf("events=%d, want 2 (gap must split)", len(evs))
	}
}

func TestAggregateNoMergeDisjointODs(t *testing.T) {
	// Adjacent bins, same measure set, but disjoint OD sets: distinct
	// anomalies that happen to abut.
	dets := []Detection{
		{Measure: dataset.Flows, Bin: 50, ODs: []int{1}, Residuals: []float64{5}},
		{Measure: dataset.Flows, Bin: 51, ODs: []int{2}, Residuals: []float64{5}},
	}
	if evs := Aggregate(dets); len(evs) != 2 {
		t.Fatalf("events=%d, want 2", len(evs))
	}
}

func TestAggregateNoMergeDifferentSets(t *testing.T) {
	// Adjacent bins with different measure sets stay separate (the paper
	// groups in time only within the same traffic type).
	dets := []Detection{
		{Measure: dataset.Flows, Bin: 60, ODs: []int{4}, Residuals: []float64{5}},
		{Measure: dataset.Flows, Bin: 61, ODs: []int{4}, Residuals: []float64{5}},
		{Measure: dataset.Packets, Bin: 61, ODs: []int{4}, Residuals: []float64{5}},
	}
	evs := Aggregate(dets)
	// bin 60: F; bin 61: FP (measures merged at the cell level) — the F
	// event cannot absorb the FP bin.
	if len(evs) != 2 {
		t.Fatalf("events=%v", evs)
	}
}

func TestSpikeDipCounting(t *testing.T) {
	e := Event{ODResidual: map[int]float64{1: 10, 2: -5, 3: 4}}
	if e.NumSpikes() != 2 || e.NumDips() != 1 {
		t.Fatalf("spikes=%d dips=%d", e.NumSpikes(), e.NumDips())
	}
}

func TestCountBySet(t *testing.T) {
	evs := []Event{
		{Measures: SetB}, {Measures: SetB}, {Measures: SetF | SetP},
	}
	c := CountBySet(evs)
	if c[SetB] != 2 || c[SetF|SetP] != 1 {
		t.Fatalf("counts %v", c)
	}
}

func TestAggregateEmpty(t *testing.T) {
	if evs := Aggregate(nil); len(evs) != 0 {
		t.Fatalf("empty input gave %v", evs)
	}
}

func TestEventString(t *testing.T) {
	e := Event{Measures: SetB | SetP, StartBin: 3, EndBin: 5, ODs: []int{1, 2}}
	if e.String() != "[BP] bins 3-5, 2 OD flows" {
		t.Fatalf("String=%q", e.String())
	}
}

// randomDetections builds a reproducible detection stream with temporal
// runs, composite measure sets, gaps and overlapping OD sets — the shapes
// the aggregation steps have to disambiguate.
func randomDetections(seed uint64, bins int) []Detection {
	rng := rand.New(rand.NewPCG(seed, seed^0x9E3779B9))
	var dets []Detection
	for bin := 0; bin < bins; bin++ {
		if rng.Float64() < 0.55 {
			continue // clean bin
		}
		for m := dataset.Measure(0); m < dataset.NumMeasures; m++ {
			if rng.Float64() < 0.4 {
				continue
			}
			n := 1 + rng.IntN(3)
			ods := make([]int, 0, n)
			res := make([]float64, 0, n)
			base := rng.IntN(6)
			for i := 0; i < n; i++ {
				ods = append(ods, base+i*rng.IntN(3))
				res = append(res, float64(rng.IntN(200)-80))
			}
			dets = append(dets, Detection{Measure: m, Bin: bin, ODs: ods, Residuals: res})
		}
	}
	return dets
}

func eventKey(e Event) string {
	return fmt.Sprintf("%v|%d-%d|%v", e.Measures, e.StartBin, e.EndBin, e.ODs)
}

// TestAggregatorMatchesAggregate drives random detection streams through
// the incremental Aggregator bin by bin (clean bins included, as a
// streaming verdict feed delivers them) and requires the exact event set
// of the batch Aggregate.
func TestAggregatorMatchesAggregate(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		const bins = 120
		dets := randomDetections(seed, bins)
		want := Aggregate(dets)

		byBin := map[int][]Detection{}
		for _, d := range dets {
			byBin[d.Bin] = append(byBin[d.Bin], d)
		}
		agg := NewAggregator()
		var got []Event
		for bin := 0; bin < bins; bin++ {
			got = append(got, agg.Add(bin, byBin[bin])...)
		}
		got = append(got, agg.Flush()...)

		if len(got) != len(want) {
			t.Fatalf("seed %d: incremental %d events, batch %d", seed, len(got), len(want))
		}
		sort.Slice(got, func(i, j int) bool {
			if got[i].StartBin != got[j].StartBin {
				return got[i].StartBin < got[j].StartBin
			}
			return got[i].Measures < got[j].Measures
		})
		for i := range want {
			if eventKey(got[i]) != eventKey(want[i]) {
				t.Fatalf("seed %d event %d:\n incremental %s\n batch       %s", seed, i, eventKey(got[i]), eventKey(want[i]))
			}
			for od, r := range want[i].ODResidual {
				if got[i].ODResidual[od] != r {
					t.Fatalf("seed %d event %d od %d: residual %v vs %v", seed, i, od, got[i].ODResidual[od], r)
				}
			}
		}
	}
}

// TestAggregatorClosesOnlyWhenUnextendable pins the close timing: an event
// ending at bin e must close exactly when bin e+2 is observed (e+1 could
// still have merged), and Flush closes the rest.
func TestAggregatorClosesOnlyWhenUnextendable(t *testing.T) {
	agg := NewAggregator()
	d := []Detection{{Measure: dataset.Bytes, Bin: 4, ODs: []int{1}, Residuals: []float64{10}}}
	if closed := agg.Add(4, d); len(closed) != 0 {
		t.Fatalf("event closed at its own bin: %v", closed)
	}
	if closed := agg.Add(5, nil); len(closed) != 0 {
		t.Fatalf("event closed while still extendable: %v", closed)
	}
	closed := agg.Add(6, nil)
	if len(closed) != 1 || closed[0].StartBin != 4 || closed[0].EndBin != 4 {
		t.Fatalf("close at first unextendable bin: %v", closed)
	}
	agg.Add(9, []Detection{{Measure: dataset.Flows, Bin: 9, ODs: []int{2}, Residuals: []float64{-3}}})
	if fl := agg.Flush(); len(fl) != 1 || fl[0].Measures != SetF {
		t.Fatalf("flush: %v", fl)
	}
	if fl := agg.Flush(); len(fl) != 0 {
		t.Fatalf("second flush not empty: %v", fl)
	}
}

// TestAggregatorAccumulatesSameBin: detections of one bin split across
// several Add calls must aggregate exactly as one call would — cell-level
// measure merging happens when the bin completes, not per call.
func TestAggregatorAccumulatesSameBin(t *testing.T) {
	dets := []Detection{
		{Measure: dataset.Bytes, Bin: 10, ODs: []int{5}, Residuals: []float64{100}},
		{Measure: dataset.Packets, Bin: 10, ODs: []int{5}, Residuals: []float64{50}},
	}
	want := Aggregate(dets)

	agg := NewAggregator()
	if closed := agg.Add(10, dets[:1]); len(closed) != 0 {
		t.Fatalf("premature close: %v", closed)
	}
	if closed := agg.Add(10, dets[1:]); len(closed) != 0 {
		t.Fatalf("same-bin Add closed events: %v", closed)
	}
	got := agg.Flush()
	if len(got) != 1 || len(want) != 1 {
		t.Fatalf("got %d events, want 1 (batch %d)", len(got), len(want))
	}
	if eventKey(got[0]) != eventKey(want[0]) {
		t.Fatalf("split-bin event %s, batch %s", eventKey(got[0]), eventKey(want[0]))
	}
	if got[0].Measures.String() != "BP" || got[0].ODResidual[5] != 150 {
		t.Fatalf("cells not merged across Adds: %+v", got[0])
	}

	// Decreasing bins are a programming error.
	agg2 := NewAggregator()
	agg2.Add(7, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("decreasing bin did not panic")
		}
	}()
	agg2.Add(6, nil)
}
