package events

import (
	"testing"

	"netwide/internal/dataset"
)

func TestMeasureSetStrings(t *testing.T) {
	cases := map[MeasureSet]string{
		SetB:               "B",
		SetP:               "P",
		SetF:               "F",
		SetB | SetP:        "BP",
		SetB | SetF:        "BF",
		SetF | SetP:        "FP",
		SetB | SetF | SetP: "BFP",
		MeasureSet(0):      "-",
	}
	for set, want := range cases {
		if got := set.String(); got != want {
			t.Fatalf("%d -> %q, want %q", set, got, want)
		}
	}
	if len(AllSets()) != 7 {
		t.Fatal("AllSets incomplete")
	}
}

func TestMeasureSetOps(t *testing.T) {
	s := MeasureSet(0).With(dataset.Bytes).With(dataset.Flows)
	if !s.Has(dataset.Bytes) || !s.Has(dataset.Flows) || s.Has(dataset.Packets) {
		t.Fatalf("set ops wrong: %v", s)
	}
}

func TestAggregateMergesMeasures(t *testing.T) {
	// Same (bin, od) seen in bytes and packets -> one BP event.
	dets := []Detection{
		{Measure: dataset.Bytes, Bin: 10, ODs: []int{5}, Residuals: []float64{100}},
		{Measure: dataset.Packets, Bin: 10, ODs: []int{5}, Residuals: []float64{50}},
	}
	evs := Aggregate(dets)
	if len(evs) != 1 {
		t.Fatalf("events=%d, want 1", len(evs))
	}
	e := evs[0]
	if e.Measures.String() != "BP" {
		t.Fatalf("measures=%s", e.Measures)
	}
	if e.DurationBins() != 1 || len(e.ODs) != 1 || e.ODs[0] != 5 {
		t.Fatalf("event %+v", e)
	}
	if e.ODResidual[5] != 150 {
		t.Fatalf("residual %v", e.ODResidual[5])
	}
}

func TestAggregateKeepsDistinctSetsSeparate(t *testing.T) {
	// OD 1 in bytes only, OD 2 in flows only, same bin: two events.
	dets := []Detection{
		{Measure: dataset.Bytes, Bin: 20, ODs: []int{1}, Residuals: []float64{10}},
		{Measure: dataset.Flows, Bin: 20, ODs: []int{2}, Residuals: []float64{10}},
	}
	evs := Aggregate(dets)
	if len(evs) != 2 {
		t.Fatalf("events=%d, want 2", len(evs))
	}
}

func TestAggregateSpatialGrouping(t *testing.T) {
	// Two ODs alarmed in the same measure at the same bin: one event.
	dets := []Detection{
		{Measure: dataset.Flows, Bin: 30, ODs: []int{3, 9}, Residuals: []float64{5, 4}},
	}
	evs := Aggregate(dets)
	if len(evs) != 1 || len(evs[0].ODs) != 2 {
		t.Fatalf("events=%v", evs)
	}
}

func TestAggregateTemporalMerge(t *testing.T) {
	// Consecutive bins, same measure, overlapping OD: one event spanning
	// both bins.
	dets := []Detection{
		{Measure: dataset.Packets, Bin: 40, ODs: []int{7}, Residuals: []float64{8}},
		{Measure: dataset.Packets, Bin: 41, ODs: []int{7}, Residuals: []float64{9}},
		{Measure: dataset.Packets, Bin: 42, ODs: []int{7}, Residuals: []float64{7}},
	}
	evs := Aggregate(dets)
	if len(evs) != 1 {
		t.Fatalf("events=%d, want 1", len(evs))
	}
	if evs[0].StartBin != 40 || evs[0].EndBin != 42 || evs[0].DurationBins() != 3 {
		t.Fatalf("window %d-%d", evs[0].StartBin, evs[0].EndBin)
	}
}

func TestAggregateNoMergeAcrossGap(t *testing.T) {
	dets := []Detection{
		{Measure: dataset.Packets, Bin: 40, ODs: []int{7}, Residuals: []float64{8}},
		{Measure: dataset.Packets, Bin: 43, ODs: []int{7}, Residuals: []float64{9}},
	}
	if evs := Aggregate(dets); len(evs) != 2 {
		t.Fatalf("events=%d, want 2 (gap must split)", len(evs))
	}
}

func TestAggregateNoMergeDisjointODs(t *testing.T) {
	// Adjacent bins, same measure set, but disjoint OD sets: distinct
	// anomalies that happen to abut.
	dets := []Detection{
		{Measure: dataset.Flows, Bin: 50, ODs: []int{1}, Residuals: []float64{5}},
		{Measure: dataset.Flows, Bin: 51, ODs: []int{2}, Residuals: []float64{5}},
	}
	if evs := Aggregate(dets); len(evs) != 2 {
		t.Fatalf("events=%d, want 2", len(evs))
	}
}

func TestAggregateNoMergeDifferentSets(t *testing.T) {
	// Adjacent bins with different measure sets stay separate (the paper
	// groups in time only within the same traffic type).
	dets := []Detection{
		{Measure: dataset.Flows, Bin: 60, ODs: []int{4}, Residuals: []float64{5}},
		{Measure: dataset.Flows, Bin: 61, ODs: []int{4}, Residuals: []float64{5}},
		{Measure: dataset.Packets, Bin: 61, ODs: []int{4}, Residuals: []float64{5}},
	}
	evs := Aggregate(dets)
	// bin 60: F; bin 61: FP (measures merged at the cell level) — the F
	// event cannot absorb the FP bin.
	if len(evs) != 2 {
		t.Fatalf("events=%v", evs)
	}
}

func TestSpikeDipCounting(t *testing.T) {
	e := Event{ODResidual: map[int]float64{1: 10, 2: -5, 3: 4}}
	if e.NumSpikes() != 2 || e.NumDips() != 1 {
		t.Fatalf("spikes=%d dips=%d", e.NumSpikes(), e.NumDips())
	}
}

func TestCountBySet(t *testing.T) {
	evs := []Event{
		{Measures: SetB}, {Measures: SetB}, {Measures: SetF | SetP},
	}
	c := CountBySet(evs)
	if c[SetB] != 2 || c[SetF|SetP] != 1 {
		t.Fatalf("counts %v", c)
	}
}

func TestAggregateEmpty(t *testing.T) {
	if evs := Aggregate(nil); len(evs) != 0 {
		t.Fatalf("empty input gave %v", evs)
	}
}

func TestEventString(t *testing.T) {
	e := Event{Measures: SetB | SetP, StartBin: 3, EndBin: 5, ODs: []int{1, 2}}
	if e.String() != "[BP] bins 3-5, 2 OD flows" {
		t.Fatalf("String=%q", e.String())
	}
}
