// Package events aggregates per-statistic detections into anomaly events,
// following Section 4 of the paper: detections are cast as triples of
// (traffic type, time, OD flow); triples sharing a time value merge across
// traffic types into the composite categories BP, BF, FP and BFP; triples
// are then grouped in space (all OD flows of the same type and time) and in
// time (consecutive time bins of the same type).
package events

import (
	"fmt"
	"math"
	"sort"

	"netwide/internal/dataset"
)

// MeasureSet is a bitmask of traffic types in which an anomaly was
// detected.
type MeasureSet uint8

// Set constructors for the three base types.
const (
	SetB MeasureSet = 1 << dataset.Bytes
	SetP MeasureSet = 1 << dataset.Packets
	SetF MeasureSet = 1 << dataset.Flows
)

// With returns the set extended by m.
func (s MeasureSet) With(m dataset.Measure) MeasureSet { return s | 1<<m }

// Has reports whether the set contains m.
func (s MeasureSet) Has(m dataset.Measure) bool { return s&(1<<m) != 0 }

// String renders the paper's composite labels: B, F, P, BF, BP, FP, BFP.
func (s MeasureSet) String() string {
	out := ""
	// Paper's letter order.
	if s.Has(dataset.Bytes) {
		out += "B"
	}
	if s.Has(dataset.Flows) {
		out += "F"
	}
	if s.Has(dataset.Packets) {
		out += "P"
	}
	if out == "" {
		return "-"
	}
	return out
}

// AllSets lists the seven non-empty combinations in the paper's Table 1
// column order.
func AllSets() []MeasureSet {
	return []MeasureSet{SetB, SetF, SetP, SetB | SetF, SetB | SetP, SetF | SetP, SetB | SetF | SetP}
}

// Detection is one identified alarm of one traffic type: the OD flows
// responsible for an alarmed bin, with their signed residuals.
type Detection struct {
	Measure   dataset.Measure
	Bin       int
	ODs       []int
	Residuals []float64
}

// Event is a fully aggregated anomaly.
type Event struct {
	Measures MeasureSet
	StartBin int
	EndBin   int
	// ODs is the union of identified OD-pair indexes, ascending.
	ODs []int
	// ODResidual sums the signed residual of each OD over the event; the
	// sign separates spikes from dips per flow (ingress shifts have both).
	ODResidual map[int]float64
}

// DurationBins returns the event length in bins.
func (e Event) DurationBins() int { return e.EndBin - e.StartBin + 1 }

// NumSpikes and NumDips count ODs by residual sign.
func (e Event) NumSpikes() int {
	n := 0
	for _, v := range e.ODResidual {
		if v > 0 {
			n++
		}
	}
	return n
}

// NumDips counts ODs whose summed residual is negative.
func (e Event) NumDips() int {
	n := 0
	for _, v := range e.ODResidual {
		if v < 0 {
			n++
		}
	}
	return n
}

// String renders a compact description.
func (e Event) String() string {
	return fmt.Sprintf("[%s] bins %d-%d, %d OD flows", e.Measures, e.StartBin, e.EndBin, len(e.ODs))
}

// Aggregate performs the paper's three aggregation steps over the
// detections of all three traffic types.
//
// Temporal merging requires consecutive bins with the same measure set and
// overlapping OD sets; the OD-overlap condition (implicit in the paper's
// "group triples to form anomalies") prevents unrelated same-type anomalies
// that happen to abut in time from fusing.
func Aggregate(dets []Detection) []Event {
	// Step 1+2: measure set and residuals per (bin, od).
	type cell struct {
		set MeasureSet
		res float64
	}
	cells := map[[2]int]*cell{}
	for _, d := range dets {
		for i, od := range d.ODs {
			key := [2]int{d.Bin, od}
			c := cells[key]
			if c == nil {
				c = &cell{}
				cells[key] = c
			}
			c.set = c.set.With(d.Measure)
			if i < len(d.Residuals) {
				c.res += d.Residuals[i]
			}
		}
	}

	// Step 3 (space): group cells by (bin, measure set).
	type groupKey struct {
		bin int
		set MeasureSet
	}
	groups := map[groupKey]*Event{}
	for key, c := range cells {
		gk := groupKey{bin: key[0], set: c.set}
		ev := groups[gk]
		if ev == nil {
			ev = &Event{Measures: c.set, StartBin: key[0], EndBin: key[0], ODResidual: map[int]float64{}}
			groups[gk] = ev
		}
		ev.ODResidual[key[1]] += c.res
	}
	// Order groups by (bin, set) for deterministic temporal merging.
	keys := make([]groupKey, 0, len(groups))
	for gk := range groups {
		keys = append(keys, gk)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].bin != keys[j].bin {
			return keys[i].bin < keys[j].bin
		}
		return keys[i].set < keys[j].set
	})

	// Step 4 (time): merge a group into the latest open event with the
	// same measure set, adjacent bins and overlapping ODs.
	var out []*Event
	open := map[MeasureSet][]*Event{} // events whose EndBin might still extend
	for _, gk := range keys {
		g := groups[gk]
		merged := false
		for _, ev := range open[gk.set] {
			if gk.bin == ev.EndBin+1 && overlaps(ev.ODResidual, g.ODResidual) {
				ev.EndBin = gk.bin
				for od, r := range g.ODResidual {
					ev.ODResidual[od] += r
				}
				merged = true
				break
			}
		}
		if !merged {
			out = append(out, g)
			open[gk.set] = append(open[gk.set], g)
		}
		// Drop events that can no longer extend.
		live := open[gk.set][:0]
		for _, ev := range open[gk.set] {
			if ev.EndBin >= gk.bin-1 {
				live = append(live, ev)
			}
		}
		open[gk.set] = live
	}

	return finalize(out)
}

// Aggregator is the incremental form of Aggregate for streaming
// detection: detections are fed one bin at a time (bins non-decreasing),
// and events are returned as soon as they can no longer extend — an event
// with EndBin e closes once a bin beyond e+1 has been observed, since
// temporal merging requires consecutive bins.
//
// Fed the same detections in bin order, Aggregator produces exactly the
// events of Aggregate (ordering aside: Aggregate sorts globally, the
// Aggregator emits in close order). The streaming characterization parity
// test pins this equivalence on a full scenario run.
type Aggregator struct {
	// open holds events that might still extend, in creation order (the
	// order Aggregate's merge loop scans, so merge ties resolve the same).
	open []*Event
	// curBin's detections are buffered in curDets until a later bin (or
	// Flush) proves the bin complete: cell-level measure-set merging needs
	// every detection of a bin together, so repeated Adds of one bin must
	// accumulate rather than open duplicate events.
	curBin  int
	curDets []Detection
	started bool
}

// NewAggregator returns an empty incremental aggregator.
func NewAggregator() *Aggregator { return &Aggregator{} }

// Add ingests detections of one bin and returns the events that closed,
// sorted by (StartBin, Measures). dets may be empty: clean bins still
// advance time and close stale events. Bins must be fed in non-decreasing
// order (Add panics on a decreasing bin); repeated Adds of the same bin
// accumulate into that bin, exactly as if their detections had arrived in
// one call. The aggregator retains dets until the bin completes.
func (a *Aggregator) Add(bin int, dets []Detection) []Event {
	if a.started && bin < a.curBin {
		panic(fmt.Sprintf("events: Aggregator.Add bin %d after bin %d", bin, a.curBin))
	}
	if a.started && bin == a.curBin {
		a.curDets = append(a.curDets, dets...)
		return nil
	}
	var closed []Event
	if a.started {
		a.ingest()
		closed = a.closeBefore(bin)
	}
	a.started = true
	a.curBin = bin
	a.curDets = append(a.curDets[:0], dets...)
	return closed
}

// Flush completes the buffered bin and closes every remaining open event —
// end of stream — returning them sorted by (StartBin, Measures).
func (a *Aggregator) Flush() []Event {
	if a.started {
		a.ingest()
		a.started = false
	}
	out := finalize(a.open)
	a.open = nil
	return out
}

// ingest runs the aggregation steps over the buffered bin's detections.
func (a *Aggregator) ingest() {
	bin, dets := a.curBin, a.curDets
	a.curDets = a.curDets[:0]
	if len(dets) == 0 {
		return
	}

	// Steps 1+2 of Aggregate, restricted to one bin: measure set and
	// summed residual per OD.
	type cell struct {
		set MeasureSet
		res float64
	}
	cells := map[int]*cell{}
	for _, d := range dets {
		for i, od := range d.ODs {
			c := cells[od]
			if c == nil {
				c = &cell{}
				cells[od] = c
			}
			c.set = c.set.With(d.Measure)
			if i < len(d.Residuals) {
				c.res += d.Residuals[i]
			}
		}
	}

	// Step 3 (space): group the bin's cells by measure set.
	groups := map[MeasureSet]map[int]float64{}
	for od, c := range cells {
		g := groups[c.set]
		if g == nil {
			g = map[int]float64{}
			groups[c.set] = g
		}
		g[od] += c.res
	}
	sets := make([]MeasureSet, 0, len(groups))
	for set := range groups {
		sets = append(sets, set)
	}
	sort.Slice(sets, func(i, j int) bool { return sets[i] < sets[j] })

	// Step 4 (time): merge each group into the first open event with the
	// same measure set, adjacent bins and overlapping ODs, else open a new
	// event — the same scan Aggregate runs over its (bin, set)-sorted
	// groups.
	for _, set := range sets {
		g := groups[set]
		merged := false
		for _, ev := range a.open {
			if ev.Measures == set && bin == ev.EndBin+1 && overlaps(ev.ODResidual, g) {
				ev.EndBin = bin
				for od, r := range g {
					ev.ODResidual[od] += r
				}
				merged = true
				break
			}
		}
		if !merged {
			odr := make(map[int]float64, len(g))
			for od, r := range g {
				odr[od] = r
			}
			a.open = append(a.open, &Event{Measures: set, StartBin: bin, EndBin: bin, ODResidual: odr})
		}
	}
}

// AggregatorState is the serializable snapshot of an Aggregator — the
// open (still extendable) events plus the buffered current bin. All fields
// are deep copies and gob-friendly, sized for the checkpoint envelope: open
// events are bounded by the active anomaly count, never by stream length.
type AggregatorState struct {
	// Open holds the still-extendable events in creation order (merge ties
	// resolve by scan order, so order is part of the state).
	Open    []Event
	CurBin  int
	CurDets []Detection
	Started bool
}

// State snapshots the aggregator. The caller must not be concurrently
// Adding (the streaming pipeline captures state at a barrier, with the
// detection feed quiesced).
func (a *Aggregator) State() AggregatorState {
	st := AggregatorState{
		Open:    make([]Event, len(a.open)),
		CurBin:  a.curBin,
		Started: a.started,
	}
	for i, ev := range a.open {
		st.Open[i] = copyEvent(*ev)
	}
	if len(a.curDets) > 0 {
		st.CurDets = make([]Detection, len(a.curDets))
		for i, d := range a.curDets {
			st.CurDets[i] = copyDetection(d)
		}
	}
	return st
}

// RestoreAggregator rebuilds an aggregator from a snapshot, validating the
// invariants Add relies on: open events are well-formed intervals strictly
// before the buffered bin, with at least one OD each. The input is deep
// copied; mutating st afterwards does not reach the aggregator.
func RestoreAggregator(st AggregatorState) (*Aggregator, error) {
	if !st.Started && (len(st.Open) > 0 || len(st.CurDets) > 0) {
		return nil, fmt.Errorf("events: restore of unstarted aggregator carries %d open events, %d buffered detections", len(st.Open), len(st.CurDets))
	}
	a := &Aggregator{curBin: st.CurBin, started: st.Started}
	for i, ev := range st.Open {
		if ev.StartBin > ev.EndBin {
			return nil, fmt.Errorf("events: restore open event %d has bins %d-%d", i, ev.StartBin, ev.EndBin)
		}
		if ev.EndBin >= st.CurBin {
			return nil, fmt.Errorf("events: restore open event %d ends at bin %d, at or past buffered bin %d", i, ev.EndBin, st.CurBin)
		}
		if len(ev.ODResidual) == 0 {
			return nil, fmt.Errorf("events: restore open event %d has no OD residuals", i)
		}
		for od, r := range ev.ODResidual {
			if od < 0 {
				return nil, fmt.Errorf("events: restore open event %d has negative OD index %d", i, od)
			}
			if math.IsNaN(r) || math.IsInf(r, 0) {
				return nil, fmt.Errorf("events: restore open event %d has non-finite residual for OD %d", i, od)
			}
		}
		cp := copyEvent(ev)
		a.open = append(a.open, &cp)
	}
	for i, d := range st.CurDets {
		if d.Measure < 0 || d.Measure >= dataset.NumMeasures {
			return nil, fmt.Errorf("events: restore buffered detection %d has measure %d", i, d.Measure)
		}
		for _, od := range d.ODs {
			if od < 0 {
				return nil, fmt.Errorf("events: restore buffered detection %d has negative OD index %d", i, od)
			}
		}
		a.curDets = append(a.curDets, copyDetection(d))
	}
	return a, nil
}

func copyEvent(ev Event) Event {
	out := ev
	out.ODs = append([]int(nil), ev.ODs...)
	out.ODResidual = make(map[int]float64, len(ev.ODResidual))
	for od, r := range ev.ODResidual {
		out.ODResidual[od] = r
	}
	return out
}

func copyDetection(d Detection) Detection {
	out := d
	out.ODs = append([]int(nil), d.ODs...)
	out.Residuals = append([]float64(nil), d.Residuals...)
	return out
}

// closeBefore finalizes open events that can no longer extend at bin.
func (a *Aggregator) closeBefore(bin int) []Event {
	var done []*Event
	live := a.open[:0]
	for _, ev := range a.open {
		if ev.EndBin < bin-1 {
			done = append(done, ev)
		} else {
			live = append(live, ev)
		}
	}
	a.open = live
	return finalize(done)
}

// finalize fills the sorted OD list of each event and orders the batch by
// (StartBin, Measures), matching Aggregate's output order.
func finalize(evs []*Event) []Event {
	if len(evs) == 0 {
		return nil
	}
	out := make([]Event, len(evs))
	for i, ev := range evs {
		if ev.ODs == nil {
			for od := range ev.ODResidual {
				ev.ODs = append(ev.ODs, od)
			}
			sort.Ints(ev.ODs)
		}
		out[i] = *ev
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].StartBin != out[j].StartBin {
			return out[i].StartBin < out[j].StartBin
		}
		return out[i].Measures < out[j].Measures
	})
	return out
}

func overlaps(a, b map[int]float64) bool {
	for od := range b {
		if _, ok := a[od]; ok {
			return true
		}
	}
	return false
}

// CountBySet tallies events per measure set (the paper's Table 1).
func CountBySet(evs []Event) map[MeasureSet]int {
	out := map[MeasureSet]int{}
	for _, e := range evs {
		out[e.Measures]++
	}
	return out
}
