package flowwire

import (
	"encoding/binary"
	"errors"
	"testing"

	"netwide/internal/flow"
	"netwide/internal/ipaddr"
)

// testFlows builds n deterministic full-fidelity flows.
func testFlows(n int) []Flow {
	out := make([]Flow, n)
	for i := range out {
		out[i] = Flow{
			Key: flow.Key{
				Src:     ipaddr.Addr(0x0A000000 + uint32(i)),
				Dst:     ipaddr.Addr(0x0B000000 + uint32(i)*3),
				SrcPort: uint16(1024 + i),
				DstPort: 443,
				Proto:   flow.Proto(6),
			},
			Packets:  uint64(10 + i),
			Bytes:    uint64(1500*(i+1) + i),
			First:    uint32(1000 + i),
			Last:     uint32(2000 + i),
			TCPFlags: 0x18,
		}
	}
	return out
}

// sum tallies the three measures over records.
func sum(recs []Record) (bytes, packets, flows uint64) {
	for _, r := range recs {
		bytes += r.Bytes
		packets += r.Packets
		flows += r.Flows
	}
	return
}

// TestRoundTripAllFormats drives every format through its exporter and the
// registry decoder and checks that the three measures, the engine identity
// and the sequence contract survive the wire exactly.
func TestRoundTripAllFormats(t *testing.T) {
	const engine, rate = 7, 16
	flows := testFlows(205) // several packets in every format
	wantBytes, wantPackets := uint64(0), uint64(0)
	for _, f := range flows {
		wantBytes += f.Bytes
		wantPackets += f.Packets
	}
	for _, format := range AllFormats() {
		t.Run(format.String(), func(t *testing.T) {
			exp, err := NewExporter(format, engine, rate, func() (uint32, uint32) { return 5000, 12345 })
			if err != nil {
				t.Fatal(err)
			}
			if exp.Format() != format {
				t.Fatalf("exporter format %v, want %v", exp.Format(), format)
			}
			for _, f := range flows {
				if err := exp.Add(f); err != nil {
					t.Fatal(err)
				}
			}
			if err := exp.Flush(); err != nil {
				t.Fatal(err)
			}
			pkts := exp.Drain()
			if len(pkts) < 2 {
				t.Fatalf("got %d packets, want several", len(pkts))
			}
			if more := exp.Drain(); more != nil {
				t.Fatalf("second Drain returned %d packets, want none", len(more))
			}

			reg, err := NewRegistry()
			if err != nil {
				t.Fatal(err)
			}
			var recs []Record
			nextSeq := uint32(0)
			seqStarted := false
			for i, p := range pkts {
				if f, err := DetectFormat(p); err != nil || f != format {
					t.Fatalf("packet %d: DetectFormat = %v, %v; want %v", i, f, err, format)
				}
				b, out, err := reg.Decode(p, recs)
				if err != nil {
					t.Fatalf("packet %d: %v", i, err)
				}
				recs = out
				if b.Format != format {
					t.Fatalf("packet %d: batch format %v, want %v", i, b.Format, format)
				}
				if b.Engine != engine {
					t.Fatalf("packet %d: engine %d, want %d", i, b.Engine, engine)
				}
				if b.UnixSecs != 12345 {
					t.Fatalf("packet %d: unixSecs %d, want 12345", i, b.UnixSecs)
				}
				if b.SeqModel == SeqNone || b.SeqAdvance == 0 {
					t.Fatalf("packet %d: no sequence info (%v advance %d)", i, b.SeqModel, b.SeqAdvance)
				}
				if seqStarted && b.Seq != nextSeq {
					t.Fatalf("packet %d: seq %d, want %d (%s)", i, b.Seq, nextSeq, b.SeqModel.Unit())
				}
				seqStarted = true
				nextSeq = b.Seq + b.SeqAdvance
			}
			gotBytes, gotPackets, gotFlows := sum(recs)
			if gotBytes != wantBytes || gotPackets != wantPackets || gotFlows != uint64(len(flows)) {
				t.Fatalf("decoded %d bytes / %d packets / %d flows, want %d / %d / %d",
					gotBytes, gotPackets, gotFlows, wantBytes, wantPackets, len(flows))
			}
		})
	}
}

// TestSampleRateRecovered checks each format's sampling-rate channel: the
// v5 header field, the v9/IPFIX options data record, the sFlow sample.
func TestSampleRateRecovered(t *testing.T) {
	for _, format := range AllFormats() {
		exp, err := NewExporter(format, 3, 64, nil)
		if err != nil {
			t.Fatal(err)
		}
		exp.Add(testFlows(1)[0])
		exp.Flush()
		reg, _ := NewRegistry()
		b, _, err := reg.Decode(exp.Drain()[0], nil)
		if err != nil {
			t.Fatalf("%v: %v", format, err)
		}
		if b.SampleRate != 64 {
			t.Fatalf("%v: sample rate %d, want 64", format, b.SampleRate)
		}
	}
}

// TestMidStreamJoinNeedsTemplates: a collector joining a v9/IPFIX stream
// between template resends must reject data sets with ErrNoTemplate and
// recover once a template-bearing packet arrives.
func TestMidStreamJoinNeedsTemplates(t *testing.T) {
	for _, format := range []Format{FormatNetFlowV9, FormatIPFIX} {
		t.Run(format.String(), func(t *testing.T) {
			exp, _ := NewExporter(format, 1, 1, nil)
			flows := testFlows(2)
			exp.Add(flows[0])
			exp.Flush() // packet 0: templates + data
			exp.Add(flows[1])
			exp.Flush() // packet 1: data only
			pkts := exp.Drain()
			if len(pkts) != 2 {
				t.Fatalf("got %d packets, want 2", len(pkts))
			}

			late, _ := NewRegistry()
			if _, _, err := late.Decode(pkts[1], nil); !errors.Is(err, ErrNoTemplate) {
				t.Fatalf("data-only packet without templates: err %v, want ErrNoTemplate", err)
			}
			if _, _, err := late.Decode(pkts[0], nil); err != nil {
				t.Fatalf("template-bearing packet: %v", err)
			}
			if _, recs, err := late.Decode(pkts[1], nil); err != nil || len(recs) != 1 {
				t.Fatalf("after templates: recs %d err %v, want 1 record", len(recs), err)
			}
		})
	}
}

// TestTemplateResendCadence: templates ride along every templateResendEvery
// packets so a late joiner recovers within one period.
func TestTemplateResendCadence(t *testing.T) {
	exp, _ := NewExporter(FormatNetFlowV9, 1, 1, nil)
	f := testFlows(1)[0]
	for i := 0; i < templateResendEvery+2; i++ {
		exp.Add(f)
		exp.Flush()
	}
	pkts := exp.Drain()
	late, _ := NewRegistry()
	if _, _, err := late.Decode(pkts[1], nil); !errors.Is(err, ErrNoTemplate) {
		t.Fatalf("packet 1 should be data-only, got err %v", err)
	}
	// The resend packet decodes standalone.
	if _, recs, err := late.Decode(pkts[templateResendEvery], nil); err != nil || len(recs) != 1 {
		t.Fatalf("resend packet: recs %d err %v", len(recs), err)
	}
}

// TestIPFIXWithdrawal: a fieldCount-0 template record forgets the named
// template; naming set ID 2 forgets the whole source.
func TestIPFIXWithdrawal(t *testing.T) {
	exp, _ := NewExporter(FormatIPFIX, 9, 1, nil)
	exp.Add(testFlows(1)[0])
	exp.Flush()
	exp.Add(testFlows(1)[0])
	exp.Flush()
	pkts := exp.Drain()

	withdrawal := make([]byte, 0, 24)
	be := binary.BigEndian
	withdrawal = be.AppendUint16(withdrawal, ipfixVersion)
	withdrawal = be.AppendUint16(withdrawal, 24) // message length
	withdrawal = be.AppendUint32(withdrawal, 0)  // export time
	withdrawal = be.AppendUint32(withdrawal, 0)  // sequence
	withdrawal = be.AppendUint32(withdrawal, 9)  // observation domain
	withdrawal = be.AppendUint16(withdrawal, ipfixTemplateSet)
	withdrawal = be.AppendUint16(withdrawal, 8)
	withdrawal = be.AppendUint16(withdrawal, houseTemplateID)
	withdrawal = be.AppendUint16(withdrawal, 0) // fieldCount 0 = withdraw

	reg, _ := NewRegistry()
	if _, _, err := reg.Decode(pkts[0], nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := reg.Decode(withdrawal, nil); err != nil {
		t.Fatalf("withdrawal: %v", err)
	}
	if _, _, err := reg.Decode(pkts[1], nil); !errors.Is(err, ErrNoTemplate) {
		t.Fatalf("after withdrawal: err %v, want ErrNoTemplate", err)
	}
}

// TestHostileTemplates exercises the template validation gate with the
// classic degenerate definitions; every one must be rejected without
// panicking and without extending dst.
func TestHostileTemplates(t *testing.T) {
	be := binary.BigEndian
	v9pkt := func(body []byte, setID uint16, count uint16) []byte {
		p := make([]byte, 0, v9HeaderLen+4+len(body))
		p = be.AppendUint16(p, v9Version)
		p = be.AppendUint16(p, count)
		p = append(p, make([]byte, 12)...) // uptime, secs, seq
		p = be.AppendUint32(p, 1)          // source
		p = be.AppendUint16(p, setID)
		p = be.AppendUint16(p, uint16(4+len(body)))
		return append(p, body...)
	}
	tmpl := func(id, fc uint16, fields ...uint16) []byte {
		b := be.AppendUint16(nil, id)
		b = be.AppendUint16(b, fc)
		for _, w := range fields {
			b = be.AppendUint16(b, w)
		}
		return b
	}
	cases := []struct {
		name string
		pkt  []byte
		want error
	}{
		{"zero-length field", v9pkt(tmpl(256, 1, ieOctets, 0), 0, 1), ErrBadTemplate},
		{"field-count overflow", v9pkt(tmpl(256, 0xFFFF), 0, 1), ErrBadTemplate},
		{"truncated template", v9pkt(tmpl(256, 8, ieOctets, 4), 0, 1), ErrTruncated},
		{"reserved template ID", v9pkt(tmpl(255, 1, ieOctets, 4), 0, 1), ErrBadTemplate},
		{"reserved flowset ID", v9pkt(tmpl(256, 1, ieOctets, 4), 2, 1), ErrBadTemplate},
		{"addr element wrong width", v9pkt(tmpl(256, 1, ieSrcAddr, 2), 0, 1), ErrBadTemplate},
		{"variable-length field", v9pkt(tmpl(256, 1, ieOctets, 0xFFFF), 0, 1), ErrBadTemplate},
		{"record count mismatch", v9pkt(tmpl(256, 1, ieOctets, 4), 0, 5), ErrBadCount},
	}
	reg, _ := NewRegistry()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dst := make([]Record, 0, 4)
			_, out, err := reg.Decode(tc.pkt, dst)
			if !errors.Is(err, tc.want) {
				t.Fatalf("err %v, want %v", err, tc.want)
			}
			if len(out) != 0 {
				t.Fatalf("dst extended by %d records on error", len(out))
			}
		})
	}
}

// TestTemplateDataIDCollision: a data template redefined under the same ID
// simply wins — both protocols allow redefinition — and subsequent data
// sets decode under the new layout.
func TestTemplateDataIDCollision(t *testing.T) {
	be := binary.BigEndian
	// Template 256 is {octets,4}; data records are 4 bytes.
	p := be.AppendUint16(nil, v9Version)
	p = be.AppendUint16(p, 3) // template + redefinition + 1 data record
	p = append(p, make([]byte, 12)...)
	p = be.AppendUint32(p, 1)
	// First definition: {srcAddr 4, dstAddr 4} (8-byte records).
	p = be.AppendUint16(p, 0)
	p = be.AppendUint16(p, 4+4+8)
	p = be.AppendUint16(p, 256)
	p = be.AppendUint16(p, 2)
	p = be.AppendUint16(p, ieSrcAddr)
	p = be.AppendUint16(p, 4)
	p = be.AppendUint16(p, ieDstAddr)
	p = be.AppendUint16(p, 4)
	// Redefinition in the same packet: {octets 8} (8-byte records).
	p = be.AppendUint16(p, 0)
	p = be.AppendUint16(p, 4+4+4)
	p = be.AppendUint16(p, 256)
	p = be.AppendUint16(p, 1)
	p = be.AppendUint16(p, ieOctets)
	p = be.AppendUint16(p, 8)
	// Data set: one 8-byte record, decoded under the redefinition.
	p = be.AppendUint16(p, 256)
	p = be.AppendUint16(p, 4+8)
	p = be.AppendUint64(p, 99)

	reg, _ := NewRegistry()
	_, recs, err := reg.Decode(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Bytes != 99 || recs[0].Src != 0 {
		t.Fatalf("recs = %+v, want one record with Bytes=99 under the redefined template", recs)
	}
}

// TestTemplateCacheEviction: the cache holds at most templateCacheCap
// templates; the least recently used goes first.
func TestTemplateCacheEviction(t *testing.T) {
	c := newTemplateCache()
	mk := func(id uint16) *template {
		tm, err := compileTemplate(id, 0, []FieldSpec{{ID: ieOctets, Length: 4}})
		if err != nil {
			t.Fatal(err)
		}
		return tm
	}
	tm := mk(256)
	for src := uint32(0); src < templateCacheCap+1; src++ {
		c.put(src, tm)
	}
	if c.len() != templateCacheCap {
		t.Fatalf("cache holds %d templates, want cap %d", c.len(), templateCacheCap)
	}
	if c.get(0, 256) != nil {
		t.Fatal("oldest template survived eviction")
	}
	if c.get(1, 256) == nil {
		t.Fatal("second-oldest template evicted early")
	}
}

// TestTemplateCacheExpiry: a template idle for templateTTL decode ticks is
// forgotten; use keeps it alive.
func TestTemplateCacheExpiry(t *testing.T) {
	c := newTemplateCache()
	tm, _ := compileTemplate(256, 0, []FieldSpec{{ID: ieOctets, Length: 4}})
	c.put(1, tm)
	c.tick += templateTTL // exactly at the limit: still alive
	if c.get(1, 256) == nil {
		t.Fatal("template expired at exactly TTL ticks")
	}
	c.tick += templateTTL + 1
	if c.get(1, 256) != nil {
		t.Fatal("template survived past TTL")
	}
	if c.len() != 0 {
		t.Fatalf("expired template still cached (len %d)", c.len())
	}
}

// TestTemplateSnapshotRestore: snapshots round-trip through the checkpoint
// path and a restored registry decodes data-only packets; tampered
// snapshots are rejected like hostile wire templates.
func TestTemplateSnapshotRestore(t *testing.T) {
	for _, format := range []Format{FormatNetFlowV9, FormatIPFIX} {
		t.Run(format.String(), func(t *testing.T) {
			exp, _ := NewExporter(format, 4, 1, nil)
			exp.Add(testFlows(1)[0])
			exp.Flush()
			exp.Add(testFlows(1)[0])
			exp.Flush()
			pkts := exp.Drain()

			reg, _ := NewRegistry()
			if _, _, err := reg.Decode(pkts[0], nil); err != nil {
				t.Fatal(err)
			}
			snaps := reg.TemplateSnapshots(format)
			if len(snaps) != 2 { // house data + options templates
				t.Fatalf("%d snapshots, want 2", len(snaps))
			}

			fresh, _ := NewRegistry()
			if err := fresh.RestoreTemplates(format, snaps); err != nil {
				t.Fatal(err)
			}
			if _, recs, err := fresh.Decode(pkts[1], nil); err != nil || len(recs) != 1 {
				t.Fatalf("restored registry: recs %d err %v", len(recs), err)
			}

			bad := append([]TemplateSnapshot(nil), snaps...)
			bad[0].Fields = []FieldSpec{{ID: ieOctets, Length: 0}}
			if err := fresh.RestoreTemplates(format, bad); err == nil {
				t.Fatal("tampered snapshot accepted")
			}
		})
	}
}

// TestSFlowEstimator: a plain sFlow sample without the house exact-counters
// record falls back to the standard (rate, rate×length) estimator.
func TestSFlowEstimator(t *testing.T) {
	be := binary.BigEndian
	p := be.AppendUint32(nil, sflowVersion)
	p = be.AppendUint32(p, sflowAddrIPv4)
	p = be.AppendUint32(p, 0x7F000001) // agent addr
	p = be.AppendUint32(p, 2)          // sub-agent
	p = be.AppendUint32(p, 0)          // datagram seq
	p = be.AppendUint32(p, 90000)      // uptime ms
	p = be.AppendUint32(p, 1)          // one sample
	p = be.AppendUint32(p, sflowFlowSample)
	p = be.AppendUint32(p, 32+8+sflowSampledIPv4Len)
	p = be.AppendUint32(p, 17)         // sample seq
	p = be.AppendUint32(p, 2)          // source ID
	p = be.AppendUint32(p, 1000)       // sampling rate
	p = be.AppendUint32(p, 1000)       // pool
	p = append(p, make([]byte, 12)...) // drops, input, output
	p = be.AppendUint32(p, 1)          // one record
	p = be.AppendUint32(p, sflowSampledIPv4)
	p = be.AppendUint32(p, sflowSampledIPv4Len)
	p = be.AppendUint32(p, 640) // original packet length
	p = be.AppendUint32(p, 17)  // proto
	p = be.AppendUint32(p, 0x0A000001)
	p = be.AppendUint32(p, 0x0A000002)
	p = append(p, make([]byte, 16)...) // ports, flags, tos

	reg, _ := NewRegistry()
	b, recs, err := reg.Decode(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("%d records, want 1", len(recs))
	}
	r := recs[0]
	if r.Packets != 1000 || r.Bytes != 1000*640 || r.Flows != 1 {
		t.Fatalf("estimated %d pkts / %d bytes, want 1000 / 640000", r.Packets, r.Bytes)
	}
	if r.Src != 0x0A000001 || r.Dst != 0x0A000002 {
		t.Fatalf("addresses %v -> %v", r.Src, r.Dst)
	}
	if b.Seq != 17 || b.SeqAdvance != 1 || b.SeqModel != SeqSamples {
		t.Fatalf("batch seq %d/%d model %v", b.Seq, b.SeqAdvance, b.SeqModel)
	}
	if b.UnixSecs != 90 {
		t.Fatalf("unixSecs %d, want uptime/1000 = 90", b.UnixSecs)
	}
}

// TestSFlowHostile: truncated and lying sFlow datagrams are rejected
// without panics or dst extension.
func TestSFlowHostile(t *testing.T) {
	exp, _ := NewExporter(FormatSFlow, 1, 4, nil)
	exp.Add(testFlows(1)[0])
	exp.Flush()
	good := exp.Drain()[0]

	reg, _ := NewRegistry()
	for cut := 0; cut < len(good); cut++ {
		if _, out, err := reg.Decode(good[:cut], nil); err == nil || len(out) != 0 {
			t.Fatalf("truncation at %d accepted (err %v, %d recs)", cut, err, len(out))
		}
	}
	// Sample count lying beyond the buffer.
	lie := append([]byte(nil), good...)
	binary.BigEndian.PutUint32(lie[24:], 1<<30)
	if _, _, err := reg.Decode(lie, nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("lying sample count: err %v, want ErrTruncated", err)
	}
}

// TestV5Hostile mirrors the original netflow hostile-header tests against
// the moved codec.
func TestV5Hostile(t *testing.T) {
	h := V5Header{EngineID: 1}
	pkt, err := EncodeV5Packet(h, testFlows(2))
	if err != nil {
		t.Fatal(err)
	}
	reg, _ := NewRegistry()
	if _, recs, err := reg.Decode(pkt, nil); err != nil || len(recs) != 2 {
		t.Fatalf("good packet: recs %d err %v", len(recs), err)
	}
	for cut := 4; cut < len(pkt); cut++ {
		if _, _, err := reg.Decode(pkt[:cut], nil); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	bad := append([]byte(nil), pkt...)
	binary.BigEndian.PutUint16(bad[2:], V5MaxRecordsPerPacket+1)
	if _, _, err := reg.Decode(bad, nil); !errors.Is(err, ErrBadCount) {
		t.Fatalf("oversized count: err %v, want ErrBadCount", err)
	}
}

// TestDetectFormat covers the dispatch table and its rejects.
func TestDetectFormat(t *testing.T) {
	if _, err := DetectFormat([]byte{0, 5}); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short packet: %v", err)
	}
	if _, err := DetectFormat([]byte{0, 1, 2, 3}); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("junk version: %v", err)
	}
	if f, err := DetectFormat([]byte{0, 0, 0, 5}); err != nil || f != FormatSFlow {
		t.Fatalf("sflow preamble: %v %v", f, err)
	}
}

// TestRegistryAllowlist: a registry built for a subset rejects the rest
// with ErrDisabled while still naming the format for attribution.
func TestRegistryAllowlist(t *testing.T) {
	reg, err := NewRegistry(FormatNetFlowV5)
	if err != nil {
		t.Fatal(err)
	}
	if !reg.Enabled(FormatNetFlowV5) || reg.Enabled(FormatIPFIX) {
		t.Fatal("allowlist not honored")
	}
	exp, _ := NewExporter(FormatIPFIX, 1, 1, nil)
	exp.Add(testFlows(1)[0])
	exp.Flush()
	b, _, err := reg.Decode(exp.Drain()[0], nil)
	if !errors.Is(err, ErrDisabled) {
		t.Fatalf("err %v, want ErrDisabled", err)
	}
	if b.Format != FormatIPFIX {
		t.Fatalf("disabled decode attributed to %v, want ipfix", b.Format)
	}
}

// TestParseFormat round-trips the CLI spellings.
func TestParseFormat(t *testing.T) {
	for _, f := range AllFormats() {
		got, err := ParseFormat(f.String())
		if err != nil || got != f {
			t.Fatalf("ParseFormat(%q) = %v, %v", f.String(), got, err)
		}
	}
	if _, err := ParseFormat("netflow11"); err == nil {
		t.Fatal("bogus format accepted")
	}
}
