// Package flowwire is the format-agnostic wire layer of the collector: one
// decoder API over the four flow-export formats the daemon speaks (NetFlow
// v5, template-based NetFlow v9 and IPFIX, sampled sFlow v5), plus the
// matching exporters the replay tooling uses to put any dataset back on the
// wire in any of them.
//
// The subspace method itself is wire-format-agnostic — it consumes per-OD
// byte/packet/flow bins — so every decoder normalizes down to the same two
// types: a Batch (the per-datagram envelope: engine identity, export
// timestamp, sampling rate, sequence position) and a flat slice of Records
// (src/dst address and the three counters). The server aggregates those and
// never looks at wire bytes again.
//
// Sequence accounting is deliberately per-protocol: the formats count
// different things in their sequence fields, and conflating them corrupts
// loss estimates. Batch carries a SequenceModel naming the unit plus the
// (Seq, SeqAdvance) pair, so one generic cursor on the collector side
// handles all four:
//
//	NetFlow v5  counts exported flow records   (SeqFlows)
//	NetFlow v9  counts export packets          (SeqPackets)
//	IPFIX       counts exported data records   (SeqRecords, RFC 7011 §3.1)
//	sFlow v5    counts generated flow samples  (SeqSamples)
//
// Every decoder treats the packet as hostile input, in the house style the
// v5 codec established: counts, set lengths and template definitions are
// validated against the buffer before they drive any allocation or read,
// and template caches are bounded (LRU + expiry) so a spoofed exporter
// cannot grow collector memory without bound.
package flowwire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"netwide/internal/ipaddr"
)

// Format identifies one wire format the layer speaks.
type Format uint8

// The supported wire formats. FormatUnknown is the zero value and never
// decodes.
const (
	FormatUnknown Format = iota
	FormatNetFlowV5
	FormatNetFlowV9
	FormatIPFIX
	FormatSFlow

	// NumFormats bounds Format values; useful for flat per-format arrays.
	NumFormats
)

// String names the format the way the CLI flags and stats JSON spell it.
func (f Format) String() string {
	switch f {
	case FormatNetFlowV5:
		return "netflow5"
	case FormatNetFlowV9:
		return "netflow9"
	case FormatIPFIX:
		return "ipfix"
	case FormatSFlow:
		return "sflow"
	default:
		return fmt.Sprintf("format(%d)", uint8(f))
	}
}

// ParseFormat parses a format name as spelled by String.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "netflow5", "v5":
		return FormatNetFlowV5, nil
	case "netflow9", "v9":
		return FormatNetFlowV9, nil
	case "ipfix":
		return FormatIPFIX, nil
	case "sflow":
		return FormatSFlow, nil
	}
	return FormatUnknown, fmt.Errorf("flowwire: unknown format %q (want netflow5, netflow9, ipfix or sflow)", s)
}

// AllFormats lists every supported format in wire-version order.
func AllFormats() []Format {
	return []Format{FormatNetFlowV5, FormatNetFlowV9, FormatIPFIX, FormatSFlow}
}

// SequenceModel reports the sequence semantics the format's decoder stamps
// on its batches (a fixed property of each format; see the package doc).
func (f Format) SequenceModel() SequenceModel {
	switch f {
	case FormatNetFlowV5:
		return SeqFlows
	case FormatNetFlowV9:
		return SeqPackets
	case FormatIPFIX:
		return SeqRecords
	case FormatSFlow:
		return SeqSamples
	default:
		return SeqNone
	}
}

// Errors shared across the decoders. Format-specific failures wrap these,
// so callers can classify hostile input without caring about the format.
var (
	ErrTruncated   = errors.New("flowwire: truncated packet")
	ErrBadVersion  = errors.New("flowwire: unsupported version")
	ErrBadCount    = errors.New("flowwire: record count does not match packet length")
	ErrBadTemplate = errors.New("flowwire: invalid template definition")
	ErrNoTemplate  = errors.New("flowwire: data set references unknown template")
	ErrDisabled    = errors.New("flowwire: format not enabled on this registry")
)

// SequenceModel names what a format's sequence counter counts. The unit
// matters for loss accounting: a gap of N means N lost units, and only
// flow-counting units translate directly into lost records.
type SequenceModel uint8

const (
	// SeqNone marks a batch that carries no sequence information.
	SeqNone SequenceModel = iota
	// SeqFlows: the counter advances by the flow records in each packet
	// (NetFlow v5).
	SeqFlows
	// SeqPackets: the counter advances by one per export packet (NetFlow
	// v9, RFC 3954 §5.1).
	SeqPackets
	// SeqRecords: the counter advances by the data records in each message
	// (IPFIX, RFC 7011 §3.1 — template records do not count).
	SeqRecords
	// SeqSamples: the counter advances by the flow samples in each
	// datagram (sFlow v5's per-source sample sequence numbers).
	SeqSamples
)

// Unit names the sequence unit for counters and log lines.
func (m SequenceModel) Unit() string {
	switch m {
	case SeqFlows:
		return "flows"
	case SeqPackets:
		return "packets"
	case SeqRecords:
		return "records"
	case SeqSamples:
		return "samples"
	default:
		return "none"
	}
}

// CountsRecords reports whether one sequence unit is one flow record, i.e.
// whether a sequence gap is directly an estimate of lost records.
func (m SequenceModel) CountsRecords() bool { return m == SeqFlows || m == SeqRecords }

// Record is one normalized flow record: exactly what the OD aggregation
// layer needs and nothing else. Decoders produce it from whatever the wire
// carried; per-flow attributes the detector never reads (ports, protocol,
// AS numbers, timestamps) are dropped at this boundary.
type Record struct {
	Src, Dst ipaddr.Addr
	// Bytes, Packets and Flows are the record's contribution to the three
	// per-OD measures. Flow-export formats carry per-flow aggregates
	// (Flows == 1); sFlow samples estimate them from the sampling rate
	// unless the exporter provided exact counters.
	Bytes, Packets, Flows uint64
}

// Batch is the per-datagram envelope: everything the collector needs to
// sequence, deduplicate, bin and attribute the records that came with it.
type Batch struct {
	// Format is the wire format the packet arrived in.
	Format Format
	// Engine identifies the export engine: the v5 engine ID, the v9/IPFIX
	// observation domain (source ID), or the sFlow sub-agent ID. The
	// collector maps it to the origin PoP.
	Engine uint32
	// UnixSecs is the export timestamp driving bin placement. sFlow
	// datagrams carry no wall clock, so there it is derived from the agent
	// uptime field (see the sFlow decoder for the contract).
	UnixSecs uint32
	// SysUptime is the exporter's uptime in milliseconds at export time.
	SysUptime uint32
	// SampleRate is the 1-in-N packet sampling rate in effect (0 =
	// unknown). For v9/IPFIX it is learned from options data records.
	SampleRate uint32
	// Seq is the batch's sequence number and SeqAdvance how many SeqModel
	// units the batch consumes: the next batch from the same engine should
	// carry Seq+SeqAdvance. A gap is SeqModel-unit loss.
	Seq        uint32
	SeqAdvance uint32
	SeqModel   SequenceModel
}

// Decoder turns one export packet into a Batch plus normalized records
// appended to dst. On error dst is returned unextended. Decoders may be
// stateful (v9/IPFIX template caches) and are not safe for concurrent use;
// give each collector goroutine its own Registry.
type Decoder interface {
	// Format reports the single wire format this decoder speaks.
	Format() Format
	// Decode parses pkt, appending normalized records to dst.
	Decode(pkt []byte, dst []Record) (Batch, []Record, error)
}

// Exporter is the encode side: it batches full-fidelity flow records into
// wire packets of one format, maintaining the format's sequence counters
// and (for template formats) emitting template sets inline. Implementations
// accumulate packets in an internal arena; Drain detaches them.
type Exporter interface {
	// Format reports the wire format this exporter emits.
	Format() Format
	// Add queues one flow record, flushing a packet when the batch fills.
	Add(f Flow) error
	// Flush emits any pending records as a packet.
	Flush() error
	// Drain returns and clears the accumulated packets; the returned
	// slices own their bytes.
	Drain() [][]byte
}

// NewExporter builds an exporter for the format. engine is the export
// engine identity (v5 engine ID — must fit uint8 there — v9/IPFIX source
// ID, sFlow sub-agent ID); sampleRate the 1-in-N packet sampling rate
// stamped on the wire; clock supplies (sysUptime ms, unixSecs) per flushed
// packet and may be nil for a fixed zero clock.
func NewExporter(format Format, engine uint32, sampleRate uint32, clock func() (uint32, uint32)) (Exporter, error) {
	if clock == nil {
		clock = func() (uint32, uint32) { return 0, 0 }
	}
	switch format {
	case FormatNetFlowV5:
		if engine > 0xFF {
			return nil, fmt.Errorf("flowwire: v5 engine ID %d exceeds 8 bits", engine)
		}
		if sampleRate > 0x3FFF {
			return nil, fmt.Errorf("flowwire: v5 sampling interval %d exceeds 14 bits", sampleRate)
		}
		return &v5ExportAdapter{NewV5Exporter(uint8(engine), uint16(sampleRate), clock)}, nil
	case FormatNetFlowV9:
		return newTemplateExporter(FormatNetFlowV9, engine, sampleRate, clock), nil
	case FormatIPFIX:
		return newTemplateExporter(FormatIPFIX, engine, sampleRate, clock), nil
	case FormatSFlow:
		return newSFlowExporter(engine, sampleRate, clock), nil
	}
	return nil, fmt.Errorf("flowwire: no exporter for %v", format)
}

// DetectFormat classifies a packet by its version word without decoding
// it. The formats are unambiguous on the first four bytes: NetFlow puts a
// 16-bit version (5, 9 or 10) first, while sFlow opens with a 32-bit
// version 5 — whose first two bytes are zero, which no NetFlow version
// uses.
func DetectFormat(pkt []byte) (Format, error) {
	if len(pkt) < 4 {
		return FormatUnknown, fmt.Errorf("%w: %d bytes, need 4 to detect the format", ErrTruncated, len(pkt))
	}
	switch binary.BigEndian.Uint16(pkt) {
	case 5:
		return FormatNetFlowV5, nil
	case 9:
		return FormatNetFlowV9, nil
	case 10:
		return FormatIPFIX, nil
	case 0:
		if binary.BigEndian.Uint32(pkt) == sflowVersion {
			return FormatSFlow, nil
		}
	}
	return FormatUnknown, fmt.Errorf("%w: no known format starts %x", ErrBadVersion, pkt[:4])
}

// Registry is the collector-side front door: one decoder per enabled
// format, dispatched by DetectFormat. It owns the template caches of its
// v9/IPFIX decoders, so one Registry corresponds to one collector socket;
// it is not safe for concurrent use.
type Registry struct {
	decoders [NumFormats]Decoder
}

// NewRegistry builds a registry speaking the given formats (none = all).
func NewRegistry(formats ...Format) (*Registry, error) {
	if len(formats) == 0 {
		formats = AllFormats()
	}
	r := &Registry{}
	for _, f := range formats {
		switch f {
		case FormatNetFlowV5:
			r.decoders[f] = v5Decoder{}
		case FormatNetFlowV9:
			r.decoders[f] = newTemplateDecoder(FormatNetFlowV9)
		case FormatIPFIX:
			r.decoders[f] = newTemplateDecoder(FormatIPFIX)
		case FormatSFlow:
			r.decoders[f] = sflowDecoder{}
		default:
			return nil, fmt.Errorf("flowwire: cannot enable %v", f)
		}
	}
	return r, nil
}

// Enabled reports whether the registry decodes the format.
func (r *Registry) Enabled(f Format) bool {
	return f < NumFormats && r.decoders[f] != nil
}

// Decode detects pkt's format and decodes it with the matching decoder,
// appending normalized records to dst. Even on error the returned Batch
// carries the detected Format when detection succeeded, so callers can
// attribute bad packets per protocol.
func (r *Registry) Decode(pkt []byte, dst []Record) (Batch, []Record, error) {
	f, err := DetectFormat(pkt)
	if err != nil {
		return Batch{}, dst, err
	}
	d := r.decoders[f]
	if d == nil {
		return Batch{Format: f}, dst, fmt.Errorf("%w: %v", ErrDisabled, f)
	}
	b, out, err := d.Decode(pkt, dst)
	b.Format = f
	return b, out, err
}

// TemplateSnapshots exports the live template-cache state of every
// template-based decoder, for checkpointing. The slices are detached
// copies in recency order (most recently used first).
func (r *Registry) TemplateSnapshots(f Format) []TemplateSnapshot {
	if td, ok := r.decoders[f].(*templateDecoder); ok {
		return td.snapshots()
	}
	return nil
}

// RestoreTemplates refills a template-based decoder's cache from
// checkpointed snapshots, validating each exactly as if it had arrived on
// the wire. It fails when the format is not an enabled template format or
// any snapshot is invalid — the caller should treat that as a cold start.
func (r *Registry) RestoreTemplates(f Format, snaps []TemplateSnapshot) error {
	td, ok := r.decoders[f].(*templateDecoder)
	if !ok {
		return fmt.Errorf("flowwire: %v is not an enabled template-based format", f)
	}
	return td.restore(snaps)
}
