package flowwire

import (
	"encoding/binary"
	"fmt"
	"slices"

	"netwide/internal/ipaddr"
)

// NetFlow v9 (RFC 3954) and IPFIX (RFC 7011) share one decoder and one
// exporter here: both are template-based set/flowset formats and differ
// only in header layout, set numbering and sequence semantics.
//
//	                NetFlow v9                IPFIX
//	header          20 bytes                  16 bytes
//	                version=9, record count,  version=10, message length,
//	                sysUptime, unixSecs,      exportTime, sequence,
//	                sequence, source ID       observation domain ID
//	template set    flowset ID 0              set ID 2
//	options set     flowset ID 1              set ID 3
//	data sets       flowset ID >= 256         set ID >= 256
//	sequence        export packets            data records (options incl.)
//	withdrawals     none                      fieldCount 0 template records
//
// The exporter emits the fixed house template (below) and resends it —
// together with an options template carrying the sampling interval —
// every templateResendEvery packets, embedded ahead of the data set so a
// collector joining mid-stream recovers within one resend period and no
// packet is ever template-only (which would perturb record-count
// accounting for zero payload).

// v9 wire constants.
const (
	v9Version   = 9
	v9HeaderLen = 20
)

// IPFIX wire constants.
const (
	ipfixVersion     = 10
	ipfixHeaderLen   = 16
	ipfixTemplateSet = 2
	ipfixOptionsSet  = 3
)

// House template layout: the data template every exporter here announces.
// Field order is the v5 record's information, templated.
var houseTemplateFields = []FieldSpec{
	{ID: ieSrcAddr, Length: 4},
	{ID: ieDstAddr, Length: 4},
	{ID: iePackets, Length: 4},
	{ID: ieOctets, Length: 4},
	{ID: ieProto, Length: 1},
	{ID: ieSrcPort, Length: 2},
	{ID: ieDstPort, Length: 2},
	{ID: ieTCPFlags, Length: 1},
	{ID: ieFirst, Length: 4},
	{ID: ieLast, Length: 4},
}

const (
	houseTemplateID        = 256 // data template
	houseOptionsTemplateID = 257 // options template: sampling interval by domain
	houseTemplateRecLen    = 30  // sum of houseTemplateFields lengths
	// templateResendEvery is how many export packets go between template
	// retransmissions (the first packet always carries them).
	templateResendEvery = 64
	// maxTemplateRecords caps data records per packet, keeping packets
	// with a full template block under the common 1500-byte MTU.
	maxTemplateRecords = 40
)

// templateDecoder decodes NetFlow v9 or IPFIX packets against a bounded
// per-exporter template cache. Not safe for concurrent use.
type templateDecoder struct {
	format  Format
	cache   *templateCache
	scratch []FieldSpec // reused template-record parse buffer
}

func newTemplateDecoder(f Format) *templateDecoder {
	return &templateDecoder{format: f, cache: newTemplateCache()}
}

func (d *templateDecoder) Format() Format { return d.format }

func (d *templateDecoder) snapshots() []TemplateSnapshot { return d.cache.snapshots() }

func (d *templateDecoder) restore(snaps []TemplateSnapshot) error { return d.cache.restore(snaps) }

// Decode parses one packet. Hostile-input discipline mirrors the v5
// decoder: every set length is bounds-checked against the buffer before
// its body is touched, template definitions are validated before they
// allocate, and on any error dst is returned unextended.
func (d *templateDecoder) Decode(pkt []byte, dst []Record) (Batch, []Record, error) {
	d.cache.bump()
	if d.format == FormatIPFIX {
		return d.decodeIPFIX(pkt, dst)
	}
	return d.decodeV9(pkt, dst)
}

func (d *templateDecoder) decodeV9(pkt []byte, dst []Record) (Batch, []Record, error) {
	base := len(dst)
	if len(pkt) < v9HeaderLen {
		return Batch{}, dst, fmt.Errorf("%w: %d bytes, v9 header needs %d", ErrTruncated, len(pkt), v9HeaderLen)
	}
	be := binary.BigEndian
	if v := be.Uint16(pkt); v != v9Version {
		return Batch{}, dst, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	count := be.Uint16(pkt[2:])
	b := Batch{
		Format:     FormatNetFlowV9,
		SysUptime:  be.Uint32(pkt[4:]),
		UnixSecs:   be.Uint32(pkt[8:]),
		Seq:        be.Uint32(pkt[12:]),
		Engine:     be.Uint32(pkt[16:]),
		SeqAdvance: 1, // RFC 3954 §5.1: the counter counts export packets
		SeqModel:   SeqPackets,
	}
	records := 0
	off := v9HeaderLen
	for off < len(pkt) {
		if len(pkt)-off < 4 {
			return Batch{}, dst[:base], fmt.Errorf("%w: %d trailing bytes, flowset header needs 4", ErrTruncated, len(pkt)-off)
		}
		setID := be.Uint16(pkt[off:])
		setLen := int(be.Uint16(pkt[off+2:]))
		if setLen < 4 {
			return Batch{}, dst[:base], fmt.Errorf("%w: flowset length %d below header size", ErrBadCount, setLen)
		}
		if off+setLen > len(pkt) {
			return Batch{}, dst[:base], fmt.Errorf("%w: flowset length %d exceeds remaining %d bytes", ErrTruncated, setLen, len(pkt)-off)
		}
		body := pkt[off+4 : off+setLen]
		var n int
		var err error
		switch {
		case setID == 0:
			n, err = d.parseV9Templates(b.Engine, body)
		case setID == 1:
			n, err = d.parseV9OptionsTemplates(b.Engine, body)
		case setID < minDataSetID:
			err = fmt.Errorf("%w: reserved flowset ID %d", ErrBadTemplate, setID)
		default:
			n, dst, b.SampleRate, err = d.decodeDataSet(b.Engine, setID, body, dst, b.SampleRate)
		}
		if err != nil {
			return Batch{}, dst[:base], err
		}
		records += n
		off += setLen
	}
	if records != int(count) {
		return Batch{}, dst[:base], fmt.Errorf("%w: header says %d records, packet carries %d", ErrBadCount, count, records)
	}
	return b, dst, nil
}

func (d *templateDecoder) decodeIPFIX(pkt []byte, dst []Record) (Batch, []Record, error) {
	base := len(dst)
	if len(pkt) < ipfixHeaderLen {
		return Batch{}, dst, fmt.Errorf("%w: %d bytes, IPFIX header needs %d", ErrTruncated, len(pkt), ipfixHeaderLen)
	}
	be := binary.BigEndian
	if v := be.Uint16(pkt); v != ipfixVersion {
		return Batch{}, dst, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	msgLen := int(be.Uint16(pkt[2:]))
	if msgLen > len(pkt) {
		return Batch{}, dst, fmt.Errorf("%w: message length %d exceeds %d-byte datagram", ErrTruncated, msgLen, len(pkt))
	}
	if msgLen < len(pkt) {
		return Batch{}, dst, fmt.Errorf("%w: %d trailing bytes after %d-byte message", ErrBadCount, len(pkt)-msgLen, msgLen)
	}
	b := Batch{
		Format:   FormatIPFIX,
		UnixSecs: be.Uint32(pkt[4:]),
		Seq:      be.Uint32(pkt[8:]),
		Engine:   be.Uint32(pkt[12:]),
		SeqModel: SeqRecords,
	}
	dataRecords := 0
	off := ipfixHeaderLen
	for off < len(pkt) {
		if len(pkt)-off < 4 {
			return Batch{}, dst[:base], fmt.Errorf("%w: %d trailing bytes, set header needs 4", ErrTruncated, len(pkt)-off)
		}
		setID := be.Uint16(pkt[off:])
		setLen := int(be.Uint16(pkt[off+2:]))
		if setLen < 4 {
			return Batch{}, dst[:base], fmt.Errorf("%w: set length %d below header size", ErrBadCount, setLen)
		}
		if off+setLen > len(pkt) {
			return Batch{}, dst[:base], fmt.Errorf("%w: set length %d exceeds remaining %d bytes", ErrTruncated, setLen, len(pkt)-off)
		}
		body := pkt[off+4 : off+setLen]
		var n int
		var err error
		switch {
		case setID == ipfixTemplateSet:
			err = d.parseIPFIXTemplates(b.Engine, body, false)
		case setID == ipfixOptionsSet:
			err = d.parseIPFIXTemplates(b.Engine, body, true)
		case setID < minDataSetID:
			err = fmt.Errorf("%w: reserved set ID %d", ErrBadTemplate, setID)
		default:
			n, dst, b.SampleRate, err = d.decodeDataSet(b.Engine, setID, body, dst, b.SampleRate)
		}
		if err != nil {
			return Batch{}, dst[:base], err
		}
		dataRecords += n
		off += setLen
	}
	// RFC 7011 §3.1: the sequence counter counts data records, options
	// data included; template records do not count.
	b.SeqAdvance = uint32(dataRecords)
	return b, dst, nil
}

// decodeDataSet resolves the template and decodes the set body. Options
// data records are consumed for their sampling interval but produce no
// flow records; up to recLen-1 trailing bytes are tolerated as padding.
func (d *templateDecoder) decodeDataSet(source uint32, setID uint16, body []byte, dst []Record, sampleRate uint32) (int, []Record, uint32, error) {
	t := d.cache.get(source, setID)
	if t == nil {
		return 0, dst, sampleRate, fmt.Errorf("%w: set %d from source %d", ErrNoTemplate, setID, source)
	}
	n := len(body) / t.recLen
	if t.scope > 0 {
		if t.sampOff >= 0 {
			for i := 0; i < n; i++ {
				sampleRate = uint32(readUint(body[i*t.recLen+t.sampOff:], t.sampLen))
			}
		}
		return n, dst, sampleRate, nil
	}
	dst = slices.Grow(dst, n)
	for i := 0; i < n; i++ {
		rec := body[i*t.recLen:]
		r := Record{Flows: 1}
		if t.srcOff >= 0 {
			r.Src = ipaddr.Addr(binary.BigEndian.Uint32(rec[t.srcOff:]))
		}
		if t.dstOff >= 0 {
			r.Dst = ipaddr.Addr(binary.BigEndian.Uint32(rec[t.dstOff:]))
		}
		if t.bytesOff >= 0 {
			r.Bytes = readUint(rec[t.bytesOff:], t.bytesLen)
		}
		if t.pktsOff >= 0 {
			r.Packets = readUint(rec[t.pktsOff:], t.pktsLen)
		}
		dst = append(dst, r)
	}
	return n, dst, sampleRate, nil
}

// parseV9Templates parses a template flowset body (one or more template
// records), returning how many records it held. Up to 3 trailing bytes
// are padding; more is a malformed record.
func (d *templateDecoder) parseV9Templates(source uint32, body []byte) (int, error) {
	be := binary.BigEndian
	records := 0
	pos := 0
	for len(body)-pos > 3 {
		id := be.Uint16(body[pos:])
		fc := int(be.Uint16(body[pos+2:]))
		pos += 4
		if fc == 0 || fc > maxTemplateFields {
			return records, fmt.Errorf("%w: template %d declares %d fields (want 1..%d)", ErrBadTemplate, id, fc, maxTemplateFields)
		}
		if len(body)-pos < fc*4 {
			return records, fmt.Errorf("%w: template %d needs %d field bytes, %d remain", ErrTruncated, id, fc*4, len(body)-pos)
		}
		d.scratch = d.scratch[:0]
		for i := 0; i < fc; i++ {
			d.scratch = append(d.scratch, FieldSpec{ID: be.Uint16(body[pos:]), Length: be.Uint16(body[pos+2:])})
			pos += 4
		}
		t, err := compileTemplate(id, 0, d.scratch)
		if err != nil {
			return records, err
		}
		d.cache.put(source, t)
		records++
	}
	return records, nil
}

// parseV9OptionsTemplates parses an options template flowset body. v9
// expresses the scope/option split in bytes, not field counts.
func (d *templateDecoder) parseV9OptionsTemplates(source uint32, body []byte) (int, error) {
	be := binary.BigEndian
	records := 0
	pos := 0
	for len(body)-pos > 3 {
		if len(body)-pos < 6 {
			return records, fmt.Errorf("%w: options template header needs 6 bytes, %d remain", ErrTruncated, len(body)-pos)
		}
		id := be.Uint16(body[pos:])
		scopeLen := int(be.Uint16(body[pos+2:]))
		optLen := int(be.Uint16(body[pos+4:]))
		pos += 6
		if scopeLen%4 != 0 || optLen%4 != 0 {
			return records, fmt.Errorf("%w: options template %d scope/option lengths %d/%d not multiples of 4", ErrBadTemplate, id, scopeLen, optLen)
		}
		fc := (scopeLen + optLen) / 4
		if fc == 0 || fc > maxTemplateFields {
			return records, fmt.Errorf("%w: options template %d declares %d fields (want 1..%d)", ErrBadTemplate, id, fc, maxTemplateFields)
		}
		if len(body)-pos < fc*4 {
			return records, fmt.Errorf("%w: options template %d needs %d field bytes, %d remain", ErrTruncated, id, fc*4, len(body)-pos)
		}
		d.scratch = d.scratch[:0]
		for i := 0; i < fc; i++ {
			d.scratch = append(d.scratch, FieldSpec{ID: be.Uint16(body[pos:]), Length: be.Uint16(body[pos+2:])})
			pos += 4
		}
		t, err := compileTemplate(id, uint16(scopeLen/4), d.scratch)
		if err != nil {
			return records, err
		}
		d.cache.put(source, t)
		records++
	}
	return records, nil
}

// parseIPFIXTemplates parses a template or options-template set body,
// including fieldCount-0 withdrawal records (RFC 7011 §8.1): a withdrawal
// naming the template/options-template set ID forgets every template of
// the source; one naming a data template ID forgets just that template.
func (d *templateDecoder) parseIPFIXTemplates(source uint32, body []byte, options bool) error {
	be := binary.BigEndian
	pos := 0
	for len(body)-pos > 3 {
		id := be.Uint16(body[pos:])
		fc := int(be.Uint16(body[pos+2:]))
		pos += 4
		if fc == 0 { // template withdrawal
			switch {
			case id == ipfixTemplateSet || id == ipfixOptionsSet:
				d.cache.dropSource(source)
			case id >= minDataSetID:
				d.cache.drop(source, id)
			default:
				return fmt.Errorf("%w: withdrawal names reserved template ID %d", ErrBadTemplate, id)
			}
			continue
		}
		if fc > maxTemplateFields {
			return fmt.Errorf("%w: template %d declares %d fields (max %d)", ErrBadTemplate, id, fc, maxTemplateFields)
		}
		scope := 0
		if options {
			if len(body)-pos < 2 {
				return fmt.Errorf("%w: options template %d missing scope count", ErrTruncated, id)
			}
			scope = int(be.Uint16(body[pos:]))
			pos += 2
			if scope == 0 {
				return fmt.Errorf("%w: options template %d has zero scope fields", ErrBadTemplate, id)
			}
		}
		d.scratch = d.scratch[:0]
		for i := 0; i < fc; i++ {
			if len(body)-pos < 4 {
				return fmt.Errorf("%w: template %d field %d truncated", ErrTruncated, id, i)
			}
			spec := FieldSpec{ID: be.Uint16(body[pos:]), Length: be.Uint16(body[pos+2:])}
			pos += 4
			if spec.ID&0x8000 != 0 { // enterprise bit
				if len(body)-pos < 4 {
					return fmt.Errorf("%w: template %d field %d missing enterprise number", ErrTruncated, id, i)
				}
				spec.ID &^= 0x8000
				spec.Enterprise = be.Uint32(body[pos:])
				pos += 4
			}
			d.scratch = append(d.scratch, spec)
		}
		t, err := compileTemplate(id, uint16(scope), d.scratch)
		if err != nil {
			return err
		}
		d.cache.put(source, t)
	}
	return nil
}

// templateExporter encodes flows as NetFlow v9 or IPFIX packets using the
// house template, resending template sets periodically. Packets accumulate
// in one contiguous arena like the v5 exporter's.
type templateExporter struct {
	format     Format
	engine     uint32
	sampleRate uint32
	now        func() (uint32, uint32)
	seq        uint32 // v9: packets exported; IPFIX: data records exported
	sincetmpl  int    // packets since templates last sent; -1 = never sent
	pending    []Flow
	arena      []byte
	ends       []int
}

func newTemplateExporter(format Format, engine, sampleRate uint32, clock func() (uint32, uint32)) *templateExporter {
	if clock == nil {
		clock = func() (uint32, uint32) { return 0, 0 }
	}
	return &templateExporter{format: format, engine: engine, sampleRate: sampleRate, now: clock, sincetmpl: -1}
}

func (e *templateExporter) Format() Format { return e.format }

func (e *templateExporter) Add(f Flow) error {
	e.pending = append(e.pending, f)
	if len(e.pending) >= maxTemplateRecords {
		return e.Flush()
	}
	return nil
}

func (e *templateExporter) Flush() error {
	if len(e.pending) == 0 {
		return nil
	}
	for _, f := range e.pending {
		if f.Packets > 0xFFFFFFFF || f.Bytes > 0xFFFFFFFF {
			return fmt.Errorf("flowwire: flow counters exceed the house template's 32-bit fields")
		}
	}
	withTemplates := e.sincetmpl < 0 || e.sincetmpl >= templateResendEvery
	if e.format == FormatIPFIX {
		e.flushIPFIX(withTemplates)
	} else {
		e.flushV9(withTemplates)
	}
	e.ends = append(e.ends, len(e.arena))
	if withTemplates {
		e.sincetmpl = 0
	}
	e.sincetmpl++
	e.pending = e.pending[:0]
	return nil
}

// appendHouseTemplateRecord encodes one flow in the house template layout.
func appendHouseTemplateRecord(dst []byte, f Flow) []byte {
	be := binary.BigEndian
	dst = be.AppendUint32(dst, uint32(f.Key.Src))
	dst = be.AppendUint32(dst, uint32(f.Key.Dst))
	dst = be.AppendUint32(dst, uint32(f.Packets))
	dst = be.AppendUint32(dst, uint32(f.Bytes))
	dst = append(dst, uint8(f.Key.Proto))
	dst = be.AppendUint16(dst, f.Key.SrcPort)
	dst = be.AppendUint16(dst, f.Key.DstPort)
	dst = append(dst, f.TCPFlags)
	dst = be.AppendUint32(dst, f.First)
	dst = be.AppendUint32(dst, f.Last)
	return dst
}

func (e *templateExporter) flushV9(withTemplates bool) {
	be := binary.BigEndian
	up, secs := e.now()
	n := len(e.pending)
	records := n
	buf := e.arena
	base := len(buf)
	// Header; the record count at base+2 is known up front.
	buf = be.AppendUint16(buf, v9Version)
	buf = be.AppendUint16(buf, 0) // count, patched below
	buf = be.AppendUint32(buf, up)
	buf = be.AppendUint32(buf, secs)
	buf = be.AppendUint32(buf, e.seq)
	buf = be.AppendUint32(buf, e.engine)
	if withTemplates {
		// Template flowset: the house data template.
		buf = be.AppendUint16(buf, 0)
		buf = be.AppendUint16(buf, uint16(4+4+4*len(houseTemplateFields)))
		buf = be.AppendUint16(buf, houseTemplateID)
		buf = be.AppendUint16(buf, uint16(len(houseTemplateFields)))
		for _, fs := range houseTemplateFields {
			buf = be.AppendUint16(buf, fs.ID)
			buf = be.AppendUint16(buf, fs.Length)
		}
		records++
		// Options template flowset: sampling interval scoped by system;
		// 18 bytes of content padded to 20.
		buf = be.AppendUint16(buf, 1)
		buf = be.AppendUint16(buf, 20)
		buf = be.AppendUint16(buf, houseOptionsTemplateID)
		buf = be.AppendUint16(buf, 4) // scope length, bytes
		buf = be.AppendUint16(buf, 4) // option length, bytes
		buf = be.AppendUint16(buf, 1) // scope field type: System
		buf = be.AppendUint16(buf, 4)
		buf = be.AppendUint16(buf, ieSampling)
		buf = be.AppendUint16(buf, 4)
		buf = append(buf, 0, 0) // padding
		records++
		// Options data flowset: one record (scope value, sampling rate).
		buf = be.AppendUint16(buf, houseOptionsTemplateID)
		buf = be.AppendUint16(buf, 12)
		buf = be.AppendUint32(buf, e.engine)
		buf = be.AppendUint32(buf, e.sampleRate)
		records++
	}
	// Data flowset.
	pad := (4 - (4+houseTemplateRecLen*n)%4) % 4
	buf = be.AppendUint16(buf, houseTemplateID)
	buf = be.AppendUint16(buf, uint16(4+houseTemplateRecLen*n+pad))
	for _, f := range e.pending {
		buf = appendHouseTemplateRecord(buf, f)
	}
	for i := 0; i < pad; i++ {
		buf = append(buf, 0)
	}
	be.PutUint16(buf[base+2:], uint16(records))
	e.arena = buf
	e.seq++ // v9 counts export packets
}

func (e *templateExporter) flushIPFIX(withTemplates bool) {
	be := binary.BigEndian
	_, secs := e.now()
	n := len(e.pending)
	dataRecords := n
	buf := e.arena
	base := len(buf)
	buf = be.AppendUint16(buf, ipfixVersion)
	buf = be.AppendUint16(buf, 0) // message length, patched below
	buf = be.AppendUint32(buf, secs)
	buf = be.AppendUint32(buf, e.seq)
	buf = be.AppendUint32(buf, e.engine)
	if withTemplates {
		// Template set.
		buf = be.AppendUint16(buf, ipfixTemplateSet)
		buf = be.AppendUint16(buf, uint16(4+4+4*len(houseTemplateFields)))
		buf = be.AppendUint16(buf, houseTemplateID)
		buf = be.AppendUint16(buf, uint16(len(houseTemplateFields)))
		for _, fs := range houseTemplateFields {
			buf = be.AppendUint16(buf, fs.ID)
			buf = be.AppendUint16(buf, fs.Length)
		}
		// Options template set: sampling interval scoped by observation
		// domain; 18 bytes of content padded to 20.
		buf = be.AppendUint16(buf, ipfixOptionsSet)
		buf = be.AppendUint16(buf, 20)
		buf = be.AppendUint16(buf, houseOptionsTemplateID)
		buf = be.AppendUint16(buf, 2) // field count
		buf = be.AppendUint16(buf, 1) // scope field count
		buf = be.AppendUint16(buf, ieScopeDomain)
		buf = be.AppendUint16(buf, 4)
		buf = be.AppendUint16(buf, ieSampling)
		buf = be.AppendUint16(buf, 4)
		buf = append(buf, 0, 0) // padding
		// Options data set: one record. Counts toward the sequence.
		buf = be.AppendUint16(buf, houseOptionsTemplateID)
		buf = be.AppendUint16(buf, 12)
		buf = be.AppendUint32(buf, e.engine)
		buf = be.AppendUint32(buf, e.sampleRate)
		dataRecords++
	}
	pad := (4 - (4+houseTemplateRecLen*n)%4) % 4
	buf = be.AppendUint16(buf, houseTemplateID)
	buf = be.AppendUint16(buf, uint16(4+houseTemplateRecLen*n+pad))
	for _, f := range e.pending {
		buf = appendHouseTemplateRecord(buf, f)
	}
	for i := 0; i < pad; i++ {
		buf = append(buf, 0)
	}
	be.PutUint16(buf[base+2:], uint16(len(buf)-base))
	e.arena = buf
	e.seq += uint32(dataRecords) // RFC 7011: data records, options included
}

// Drain returns and clears the accumulated packets; the returned slices
// own the detached arena, so they stay valid indefinitely.
func (e *templateExporter) Drain() [][]byte {
	if len(e.ends) == 0 {
		return nil
	}
	out := make([][]byte, len(e.ends))
	start := 0
	for i, end := range e.ends {
		out[i] = e.arena[start:end:end]
		start = end
	}
	e.arena = nil
	e.ends = e.ends[:0]
	return out
}
