package flowwire

import (
	"encoding/binary"
	"fmt"
	"slices"

	"netwide/internal/flow"
	"netwide/internal/ipaddr"
)

// NetFlow v5 — the fixed-layout format the pipeline grew up on, moved here
// verbatim from internal/netflow (which remains as a thin wrapper). All
// fields big-endian, as on the wire:
//
//	header (24 bytes): version, count, sysUptime, unixSecs, unixNsecs,
//	                   flowSequence, engineType, engineID, samplingInterval
//	record (48 bytes): srcAddr, dstAddr, nextHop, input, output, dPkts,
//	                   dOctets, first, last, srcPort, dstPort, pad, tcpFlags,
//	                   proto, tos, srcAS, dstAS, srcMask, dstMask, pad

// V5Version is the version word of a v5 export packet.
const V5Version = 5

// V5HeaderLen and V5RecordLen are the NetFlow v5 wire sizes.
const (
	V5HeaderLen = 24
	V5RecordLen = 48
	// V5MaxRecordsPerPacket is the v5 limit (a full packet stays under the
	// common 1500-byte MTU).
	V5MaxRecordsPerPacket = 30
)

// V5Header is the decoded v5 packet header.
type V5Header struct {
	Count            uint16
	SysUptime        uint32
	UnixSecs         uint32
	UnixNsecs        uint32
	FlowSequence     uint32
	EngineType       uint8
	EngineID         uint8
	SamplingInterval uint16 // low 14 bits: 1-in-N packet sampling
}

// Flow is the house full-fidelity flow record: the per-flow attributes the
// measurement pipeline models, of which the v5 wire record is the lossless
// serialization. Every format's exporter encodes from it (down-converting
// to whatever the format carries); decoders do not return Flows — they
// normalize to Record at the wire boundary.
type Flow struct {
	Key          flow.Key
	Packets      uint64
	Bytes        uint64
	First, Last  uint32 // router uptime at first/last packet of the flow
	TCPFlags     uint8
	InputSNMP    uint16
	OutputSNMP   uint16
	SrcAS, DstAS uint16
}

// normalize is the v5 flow's projection onto the detector's needs.
func (f Flow) normalize() Record {
	return Record{Src: f.Key.Src, Dst: f.Key.Dst, Bytes: f.Bytes, Packets: f.Packets, Flows: 1}
}

// EncodeV5Packet serializes a header and up to V5MaxRecordsPerPacket
// records.
func EncodeV5Packet(h V5Header, recs []Flow) ([]byte, error) {
	return AppendV5Packet(nil, h, recs)
}

// AppendV5Packet encodes the packet onto dst and returns the extended
// slice, reusing dst's capacity. It is the allocation-free form of
// EncodeV5Packet for callers that batch many packets into one arena.
func AppendV5Packet(dst []byte, h V5Header, recs []Flow) ([]byte, error) {
	if len(recs) > V5MaxRecordsPerPacket {
		return dst, fmt.Errorf("flowwire: %d records exceeds v5 packet limit %d", len(recs), V5MaxRecordsPerPacket)
	}
	h.Count = uint16(len(recs))
	base := len(dst)
	dst = slices.Grow(dst, V5HeaderLen+V5RecordLen*len(recs))
	dst = dst[:base+V5HeaderLen+V5RecordLen*len(recs)]
	buf := dst[base:]
	clear(buf) // unwritten fields (nextHop, padding) must be zero on the wire
	be := binary.BigEndian
	be.PutUint16(buf[0:], V5Version)
	be.PutUint16(buf[2:], h.Count)
	be.PutUint32(buf[4:], h.SysUptime)
	be.PutUint32(buf[8:], h.UnixSecs)
	be.PutUint32(buf[12:], h.UnixNsecs)
	be.PutUint32(buf[16:], h.FlowSequence)
	buf[20] = h.EngineType
	buf[21] = h.EngineID
	be.PutUint16(buf[22:], h.SamplingInterval)

	for i, r := range recs {
		off := V5HeaderLen + i*V5RecordLen
		if r.Packets > 0xFFFFFFFF || r.Bytes > 0xFFFFFFFF {
			return dst[:base], fmt.Errorf("flowwire: record %d counters exceed 32 bits", i)
		}
		be.PutUint32(buf[off+0:], uint32(r.Key.Src))
		be.PutUint32(buf[off+4:], uint32(r.Key.Dst))
		// nextHop (off+8) left zero: the simulator does not model it.
		be.PutUint16(buf[off+12:], r.InputSNMP)
		be.PutUint16(buf[off+14:], r.OutputSNMP)
		be.PutUint32(buf[off+16:], uint32(r.Packets))
		be.PutUint32(buf[off+20:], uint32(r.Bytes))
		be.PutUint32(buf[off+24:], r.First)
		be.PutUint32(buf[off+28:], r.Last)
		be.PutUint16(buf[off+32:], r.Key.SrcPort)
		be.PutUint16(buf[off+34:], r.Key.DstPort)
		buf[off+37] = r.TCPFlags
		buf[off+38] = uint8(r.Key.Proto)
		be.PutUint16(buf[off+40:], r.SrcAS)
		be.PutUint16(buf[off+42:], r.DstAS)
	}
	return dst, nil
}

// decodeV5Header parses and validates the header of one export packet. The
// validation order is deliberate for hostile input: fixed-size header
// first, then version, then the record count against the v5 packet limit,
// and only then the count-vs-length consistency check — so an
// attacker-controlled count can never drive an allocation or a read past
// the buffer.
func decodeV5Header(buf []byte) (V5Header, error) {
	if len(buf) < V5HeaderLen {
		return V5Header{}, fmt.Errorf("%w: %d bytes, v5 header needs %d", ErrTruncated, len(buf), V5HeaderLen)
	}
	be := binary.BigEndian
	if v := be.Uint16(buf[0:]); v != V5Version {
		return V5Header{}, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	h := V5Header{
		Count:            be.Uint16(buf[2:]),
		SysUptime:        be.Uint32(buf[4:]),
		UnixSecs:         be.Uint32(buf[8:]),
		UnixNsecs:        be.Uint32(buf[12:]),
		FlowSequence:     be.Uint32(buf[16:]),
		EngineType:       buf[20],
		EngineID:         buf[21],
		SamplingInterval: be.Uint16(buf[22:]),
	}
	if h.Count > V5MaxRecordsPerPacket {
		return V5Header{}, fmt.Errorf("%w: count %d exceeds v5 packet limit %d", ErrBadCount, h.Count, V5MaxRecordsPerPacket)
	}
	want := V5HeaderLen + int(h.Count)*V5RecordLen
	if len(buf) != want {
		if len(buf) < want {
			return V5Header{}, fmt.Errorf("%w: %d bytes, count %d needs %d", ErrTruncated, len(buf), h.Count, want)
		}
		return V5Header{}, fmt.Errorf("%w: %d trailing bytes after %d records", ErrBadCount, len(buf)-want, h.Count)
	}
	return h, nil
}

// decodeV5Record parses the V5RecordLen bytes at buf into a Flow.
func decodeV5Record(buf []byte) Flow {
	be := binary.BigEndian
	return Flow{
		Key: flow.Key{
			Src:     ipaddr.Addr(be.Uint32(buf[0:])),
			Dst:     ipaddr.Addr(be.Uint32(buf[4:])),
			SrcPort: be.Uint16(buf[32:]),
			DstPort: be.Uint16(buf[34:]),
			Proto:   flow.Proto(buf[38]),
		},
		InputSNMP:  be.Uint16(buf[12:]),
		OutputSNMP: be.Uint16(buf[14:]),
		Packets:    uint64(be.Uint32(buf[16:])),
		Bytes:      uint64(be.Uint32(buf[20:])),
		First:      be.Uint32(buf[24:]),
		Last:       be.Uint32(buf[28:]),
		TCPFlags:   buf[37],
		SrcAS:      be.Uint16(buf[40:]),
		DstAS:      be.Uint16(buf[42:]),
	}
}

// DecodeV5Packet parses one export packet. The packet is validated as a
// whole before any record is decoded: a truncated buffer, an unsupported
// version, a record count above the v5 packet limit, or a count
// inconsistent with the packet length all return an error without touching
// the record bytes, so hostile datagrams can neither over-allocate nor
// read out of bounds.
func DecodeV5Packet(buf []byte) (V5Header, []Flow, error) {
	return DecodeV5PacketAppend(nil, buf)
}

// DecodeV5PacketAppend is DecodeV5Packet decoding into dst's spare
// capacity. It is the allocation-free form for long-running collectors:
// reuse one record slice across packets (truncate to [:0] between them)
// and the per-packet decode settles into zero allocations.
func DecodeV5PacketAppend(dst []Flow, buf []byte) (V5Header, []Flow, error) {
	h, err := decodeV5Header(buf)
	if err != nil {
		return V5Header{}, dst, err
	}
	dst = slices.Grow(dst, int(h.Count))
	for i := 0; i < int(h.Count); i++ {
		dst = append(dst, decodeV5Record(buf[V5HeaderLen+i*V5RecordLen:]))
	}
	return h, dst, nil
}

// v5Decoder adapts the v5 codec to the normalized Decoder API. It is
// stateless: v5 needs no templates.
type v5Decoder struct{}

func (v5Decoder) Format() Format { return FormatNetFlowV5 }

func (v5Decoder) Decode(pkt []byte, dst []Record) (Batch, []Record, error) {
	h, err := decodeV5Header(pkt)
	if err != nil {
		return Batch{}, dst, err
	}
	dst = slices.Grow(dst, int(h.Count))
	for i := 0; i < int(h.Count); i++ {
		dst = append(dst, decodeV5Record(pkt[V5HeaderLen+i*V5RecordLen:]).normalize())
	}
	return Batch{
		Format:     FormatNetFlowV5,
		Engine:     uint32(h.EngineID),
		UnixSecs:   h.UnixSecs,
		SysUptime:  h.SysUptime,
		SampleRate: uint32(h.SamplingInterval & 0x3FFF),
		Seq:        h.FlowSequence,
		SeqAdvance: uint32(h.Count),
		SeqModel:   SeqFlows,
	}, dst, nil
}

// V5Exporter batches flow records into v5 export packets, maintaining the
// flow sequence counter. One V5Exporter models one router's export engine.
//
// Encoded packets accumulate in a single contiguous arena whose capacity
// survives Reset, so a hot loop that exports millions of records through
// one exporter settles into zero per-packet allocations.
type V5Exporter struct {
	EngineID         uint8
	SamplingInterval uint16
	seq              uint32
	pending          []Flow
	// arena holds the encoded packets back to back; ends[i] is the offset
	// one past packet i, so packet i spans arena[ends[i-1]:ends[i]].
	arena []byte
	ends  []int
	now   func() (sysUptime, unixSecs uint32)
}

// NewV5Exporter creates an exporter; clock supplies (sysUptime, unixSecs)
// for packet headers and may be nil for a fixed zero clock (useful in
// tests).
func NewV5Exporter(engineID uint8, samplingInterval uint16, clock func() (uint32, uint32)) *V5Exporter {
	if clock == nil {
		clock = func() (uint32, uint32) { return 0, 0 }
	}
	return &V5Exporter{EngineID: engineID, SamplingInterval: samplingInterval, now: clock}
}

// Add queues a record, flushing a packet when the batch is full.
func (e *V5Exporter) Add(r Flow) error {
	e.pending = append(e.pending, r)
	if len(e.pending) >= V5MaxRecordsPerPacket {
		return e.Flush()
	}
	return nil
}

// Flush emits any pending records as a packet.
func (e *V5Exporter) Flush() error {
	if len(e.pending) == 0 {
		return nil
	}
	up, secs := e.now()
	h := V5Header{
		SysUptime:        up,
		UnixSecs:         secs,
		FlowSequence:     e.seq,
		EngineID:         e.EngineID,
		SamplingInterval: e.SamplingInterval,
	}
	arena, err := AppendV5Packet(e.arena, h, e.pending)
	if err != nil {
		return err
	}
	e.arena = arena
	e.ends = append(e.ends, len(e.arena))
	e.seq += uint32(len(e.pending))
	e.pending = e.pending[:0]
	return nil
}

// ForEachPacket visits every accumulated packet without copying or
// clearing it. The slices alias the exporter's internal arena: they are
// valid until the next Reset and must not be retained past it. This is the
// zero-copy path a collector loop should prefer over Drain.
func (e *V5Exporter) ForEachPacket(fn func(pkt []byte) error) error {
	start := 0
	for _, end := range e.ends {
		if err := fn(e.arena[start:end:end]); err != nil {
			return err
		}
		start = end
	}
	return nil
}

// Drain returns and clears the accumulated packets. The returned slices
// own the arena they alias: the exporter detaches it and allocates fresh
// on the next Flush, so drained packets stay valid indefinitely.
func (e *V5Exporter) Drain() [][]byte {
	if len(e.ends) == 0 {
		return nil
	}
	out := make([][]byte, len(e.ends))
	start := 0
	for i, end := range e.ends {
		out[i] = e.arena[start:end:end]
		start = end
	}
	e.arena = nil
	e.ends = e.ends[:0]
	return out
}

// Reset reconfigures the exporter for a new engine and clears all batching
// state (sequence counter, pending records, accumulated packets) while
// keeping the allocated buffers for reuse. Packets previously obtained
// from ForEachPacket are invalidated; packets obtained from Drain are not.
func (e *V5Exporter) Reset(engineID uint8, samplingInterval uint16) {
	e.EngineID = engineID
	e.SamplingInterval = samplingInterval
	e.seq = 0
	e.pending = e.pending[:0]
	e.arena = e.arena[:0]
	e.ends = e.ends[:0]
}

// v5ExportAdapter gives V5Exporter the generic Exporter face (Format).
type v5ExportAdapter struct{ *V5Exporter }

func (v5ExportAdapter) Format() Format { return FormatNetFlowV5 }

// V5Collector parses v5 export packets and tracks per-engine sequence
// numbers to count records lost in transit (v5's only loss signal).
type V5Collector struct {
	Records    []Flow
	Lost       uint64
	nextSeq    map[uint8]uint32
	seqStarted map[uint8]bool
}

// NewV5Collector returns an empty collector.
func NewV5Collector() *V5Collector {
	return &V5Collector{nextSeq: map[uint8]uint32{}, seqStarted: map[uint8]bool{}}
}

// Reset clears the collected records, loss counter and per-engine sequence
// state while keeping the allocated capacity, readying the collector for
// the next batch of packets.
func (c *V5Collector) Reset() {
	c.Records = c.Records[:0]
	c.Lost = 0
	clear(c.nextSeq)
	clear(c.seqStarted)
}

// Ingest parses one packet, appending its records. Records are decoded
// directly into the collector's Records slice, reusing its capacity.
func (c *V5Collector) Ingest(pkt []byte) error {
	h, err := decodeV5Header(pkt)
	if err != nil {
		return err
	}
	n := int(h.Count)
	if c.seqStarted[h.EngineID] {
		if exp := c.nextSeq[h.EngineID]; h.FlowSequence != exp {
			// Sequence gap: records were dropped between collector and
			// exporter (uint32 arithmetic handles wraparound).
			c.Lost += uint64(h.FlowSequence - exp)
		}
	}
	c.seqStarted[h.EngineID] = true
	c.nextSeq[h.EngineID] = h.FlowSequence + uint32(n)
	c.Records = slices.Grow(c.Records, n)
	for i := 0; i < n; i++ {
		c.Records = append(c.Records, decodeV5Record(pkt[V5HeaderLen+i*V5RecordLen:]))
	}
	return nil
}
