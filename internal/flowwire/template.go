package flowwire

import (
	"container/list"
	"fmt"
)

// Template machinery shared by the NetFlow v9 and IPFIX decoders. Both
// formats describe record layouts out of band: an exporter sends template
// records naming (information element, length) pairs, then data sets that
// reference a template by ID. The decoder must therefore keep per-exporter
// state — and because that state is attacker-influenced (templates arrive
// in packets), every definition is validated against hard bounds BEFORE
// anything is allocated for it, and the cache is capped (LRU eviction)
// and idle-expired so a hostile exporter cannot grow it without bound.
//
// Expiry is measured in decode ticks (one tick per Decode call on the
// owning decoder), not wall time, so replaying the same packet stream
// always exercises the same cache transitions — determinism the
// checkpoint fingerprint and the golden e2e fixtures rely on.

// Information element IDs used by the house template layout. These are
// the IANA "ipfix" assignments, which NetFlow v9 field types mirror.
const (
	ieOctets      = 1   // octetDeltaCount
	iePackets     = 2   // packetDeltaCount
	ieProto       = 4   // protocolIdentifier
	ieTCPFlags    = 6   // tcpControlBits
	ieSrcPort     = 7   // sourceTransportPort
	ieSrcAddr     = 8   // sourceIPv4Address
	ieDstPort     = 11  // destinationTransportPort
	ieDstAddr     = 12  // destinationIPv4Address
	ieLast        = 21  // flowEndSysUpTime
	ieFirst       = 22  // flowStartSysUpTime
	ieSampling    = 34  // samplingInterval (v9; IPFIX-deprecated but parseable)
	ieScopeDomain = 149 // observationDomainId (IPFIX options scope)
)

// Hard bounds a template definition must satisfy before the decoder
// allocates anything for it. They are generous for real exporters and
// hostile to degenerate ones.
const (
	// minDataSetID is the first valid data template ID; v9 and IPFIX both
	// reserve 0–255 for protocol sets.
	minDataSetID = 256
	// maxTemplateFields bounds the field count of one template.
	maxTemplateFields = 64
	// maxFieldLen bounds a single field's length.
	maxFieldLen = 512
	// maxTemplateRecLen bounds the record length a template implies.
	maxTemplateRecLen = 1500
	// templateCacheCap bounds the number of cached templates across all
	// exporters; beyond it the least recently used is evicted.
	templateCacheCap = 4096
	// templateTTL is the idle expiry in decode ticks: a template untouched
	// for this many Decode calls is forgotten, like a real collector
	// timing out a silent exporter.
	templateTTL = 1 << 20
)

// FieldSpec is one field of a template definition: an information element
// ID, its encoded length, and (IPFIX only) an enterprise number for
// vendor-private elements. It is exported because template snapshots are
// checkpoint state.
type FieldSpec struct {
	ID         uint16
	Enterprise uint32
	Length     uint16
}

// TemplateSnapshot is the portable form of one cached template, ordered
// most- to least-recently-used in Registry.TemplateSnapshots output.
// Restoring a snapshot revalidates it exactly like a wire template.
type TemplateSnapshot struct {
	Source uint32 // exporter identity (v9 source ID / IPFIX observation domain)
	ID     uint16
	Scope  uint16 // number of leading scope fields; >0 marks an options template
	Fields []FieldSpec
}

// template is a validated, compiled template: the field list plus
// precomputed byte offsets for the elements the normalizer extracts.
// An offset of -1 means the template does not carry that element.
type template struct {
	id     uint16
	scope  uint16 // scope field count; >0 → options template, data skipped
	fields []FieldSpec
	recLen int

	srcOff, dstOff     int // sourceIPv4Address / destinationIPv4Address (len 4)
	bytesOff, bytesLen int // octetDeltaCount
	pktsOff, pktsLen   int // packetDeltaCount
	sampOff, sampLen   int // samplingInterval (options records)
}

// compileTemplate validates a field list against the hostile-input bounds
// and precomputes extraction offsets. It is the single gate between
// attacker-controlled template definitions and decoder state: wire
// templates and restored snapshots both pass through it, and it allocates
// nothing until every field has been checked.
func compileTemplate(id uint16, scope uint16, fields []FieldSpec) (*template, error) {
	if id < minDataSetID {
		return nil, fmt.Errorf("%w: template ID %d in reserved range [0,%d)", ErrBadTemplate, id, minDataSetID)
	}
	if len(fields) == 0 || len(fields) > maxTemplateFields {
		return nil, fmt.Errorf("%w: template %d has %d fields (want 1..%d)", ErrBadTemplate, id, len(fields), maxTemplateFields)
	}
	if int(scope) > len(fields) {
		return nil, fmt.Errorf("%w: template %d scope count %d exceeds field count %d", ErrBadTemplate, id, scope, len(fields))
	}
	recLen := 0
	for _, f := range fields {
		switch {
		case f.Length == 0:
			return nil, fmt.Errorf("%w: template %d element %d has zero length", ErrBadTemplate, id, f.ID)
		case f.Length == 0xFFFF:
			return nil, fmt.Errorf("%w: template %d element %d is variable-length (unsupported)", ErrBadTemplate, id, f.ID)
		case f.Length > maxFieldLen:
			return nil, fmt.Errorf("%w: template %d element %d length %d exceeds %d", ErrBadTemplate, id, f.ID, f.Length, maxFieldLen)
		}
		if f.Enterprise == 0 {
			switch f.ID {
			case ieSrcAddr, ieDstAddr:
				if f.Length != 4 {
					return nil, fmt.Errorf("%w: template %d IPv4 address element %d has length %d (want 4)", ErrBadTemplate, id, f.ID, f.Length)
				}
			case ieOctets, iePackets, ieSampling:
				switch f.Length {
				case 1, 2, 4, 8:
				default:
					return nil, fmt.Errorf("%w: template %d counter element %d has length %d (want 1/2/4/8)", ErrBadTemplate, id, f.ID, f.Length)
				}
			}
		}
		recLen += int(f.Length)
	}
	if recLen > maxTemplateRecLen {
		return nil, fmt.Errorf("%w: template %d record length %d exceeds %d", ErrBadTemplate, id, recLen, maxTemplateRecLen)
	}
	t := &template{
		id: id, scope: scope, recLen: recLen,
		srcOff: -1, dstOff: -1, bytesOff: -1, pktsOff: -1, sampOff: -1,
	}
	t.fields = append(t.fields, fields...) // own the slice; callers reuse parse buffers
	off := 0
	for _, f := range fields {
		if f.Enterprise == 0 {
			switch f.ID {
			case ieSrcAddr:
				t.srcOff = off
			case ieDstAddr:
				t.dstOff = off
			case ieOctets:
				t.bytesOff, t.bytesLen = off, int(f.Length)
			case iePackets:
				t.pktsOff, t.pktsLen = off, int(f.Length)
			case ieSampling:
				t.sampOff, t.sampLen = off, int(f.Length)
			}
		}
		off += int(f.Length)
	}
	return t, nil
}

// readUint reads an n-byte big-endian unsigned integer (n ∈ {1,2,4,8},
// enforced at template compile time).
func readUint(b []byte, n int) uint64 {
	var v uint64
	for i := 0; i < n; i++ {
		v = v<<8 | uint64(b[i])
	}
	return v
}

// templateKey identifies a template: exporters own independent template ID
// spaces, so the exporter identity is part of the key.
type templateKey struct {
	source uint32
	id     uint16
}

// templateCache is the bounded per-exporter template store: a map for
// lookup plus an intrusive LRU list for eviction, aged by decode ticks.
type templateCache struct {
	tick    uint64
	entries map[templateKey]*list.Element
	lru     *list.List // front = most recently used
}

type templateEntry struct {
	key  templateKey
	tmpl *template
	seen uint64 // tick of last use
}

func newTemplateCache() *templateCache {
	return &templateCache{entries: map[templateKey]*list.Element{}, lru: list.New()}
}

// bump advances the cache clock; the owning decoder calls it once per
// Decode so expiry is a deterministic function of the packet stream.
func (c *templateCache) bump() { c.tick++ }

// get returns the live template for (source, id), refreshing its age and
// LRU position, or nil when unknown or idle-expired.
func (c *templateCache) get(source uint32, id uint16) *template {
	el, ok := c.entries[templateKey{source, id}]
	if !ok {
		return nil
	}
	e := el.Value.(*templateEntry)
	if c.tick-e.seen > templateTTL {
		c.removeElement(el)
		return nil
	}
	e.seen = c.tick
	c.lru.MoveToFront(el)
	return e.tmpl
}

// put installs or replaces a template, evicting the least recently used
// entry when the cache is full. Redefinition is legal in both protocols
// (an exporter restarts and renumbers); the new definition simply wins.
func (c *templateCache) put(source uint32, t *template) {
	key := templateKey{source, t.id}
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*templateEntry)
		e.tmpl, e.seen = t, c.tick
		c.lru.MoveToFront(el)
		return
	}
	if c.lru.Len() >= templateCacheCap {
		c.removeElement(c.lru.Back())
	}
	c.entries[key] = c.lru.PushFront(&templateEntry{key: key, tmpl: t, seen: c.tick})
}

// drop forgets one template (IPFIX withdrawal).
func (c *templateCache) drop(source uint32, id uint16) {
	if el, ok := c.entries[templateKey{source, id}]; ok {
		c.removeElement(el)
	}
}

// dropSource forgets every template of one exporter (IPFIX withdraw-all).
func (c *templateCache) dropSource(source uint32) {
	for el := c.lru.Front(); el != nil; {
		next := el.Next()
		if el.Value.(*templateEntry).key.source == source {
			c.removeElement(el)
		}
		el = next
	}
}

func (c *templateCache) removeElement(el *list.Element) {
	delete(c.entries, el.Value.(*templateEntry).key)
	c.lru.Remove(el)
}

func (c *templateCache) len() int { return c.lru.Len() }

// snapshots returns every cached template most- to least-recently-used —
// a deterministic order given the decode history, which the checkpoint
// fingerprint depends on.
func (c *templateCache) snapshots() []TemplateSnapshot {
	if c.lru.Len() == 0 {
		return nil
	}
	out := make([]TemplateSnapshot, 0, c.lru.Len())
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*templateEntry)
		out = append(out, TemplateSnapshot{
			Source: e.key.source,
			ID:     e.tmpl.id,
			Scope:  e.tmpl.scope,
			Fields: append([]FieldSpec(nil), e.tmpl.fields...),
		})
	}
	return out
}

// restore rebuilds the cache from snapshots, revalidating each definition
// through compileTemplate — a tampered checkpoint is rejected exactly like
// a hostile wire template. The snapshot's MRU-first order is preserved.
func (c *templateCache) restore(snaps []TemplateSnapshot) error {
	for _, s := range snaps {
		if _, err := compileTemplate(s.ID, s.Scope, s.Fields); err != nil {
			return err
		}
	}
	c.entries = map[templateKey]*list.Element{}
	c.lru.Init()
	for i := len(snaps) - 1; i >= 0; i-- { // insert LRU-first so front ends up MRU
		s := snaps[i]
		t, _ := compileTemplate(s.ID, s.Scope, s.Fields)
		c.put(s.Source, t)
	}
	return nil
}
