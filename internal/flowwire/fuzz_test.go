package flowwire

import (
	"encoding/binary"
	"testing"
)

// The decoder fuzz harness: every target feeds arbitrary bytes through a
// persistent Registry — persistent so mutated template packets poison the
// cache that later data packets hit, exercising the stateful paths a
// per-call registry never would — and asserts the two hostile-input
// invariants every decoder guarantees: no panic, and dst is never extended
// when Decode reports an error.

// fuzzDecode is the shared fuzz body; version pins the first bytes so each
// target stays on its decoder instead of wandering the dispatch table.
func fuzzDecode(f *testing.F, reg *Registry, format Format) {
	f.Fuzz(func(t *testing.T, pkt []byte) {
		dst := make([]Record, 1, 8) // sentinel occupies index 0
		b, out, err := reg.Decode(pkt, dst)
		if err != nil {
			if len(out) != 1 {
				t.Fatalf("dst length %d after error, want untouched 1", len(out))
			}
			return
		}
		if got := len(out) - 1; got > len(pkt) {
			t.Fatalf("%d records from a %d-byte packet", got, len(pkt))
		}
		if b.Format != format && format != FormatUnknown {
			// Mutation may flip the version word to another format; that
			// is fine, but the batch must say so.
			if !reg.Enabled(b.Format) {
				t.Fatalf("decode succeeded for disabled format %v", b.Format)
			}
		}
	})
}

// seedPackets drains an exporter fed a couple of flows, yielding one
// template-bearing and one data-only packet for template formats.
func seedPackets(format Format) [][]byte {
	exp, err := NewExporter(format, 1, 4, nil)
	if err != nil {
		panic(err)
	}
	for _, fl := range testFlows(2) {
		exp.Add(fl)
		exp.Flush()
	}
	return exp.Drain()
}

func FuzzDecodeV9(f *testing.F) {
	for _, p := range seedPackets(FormatNetFlowV9) {
		f.Add(p)
	}
	be := binary.BigEndian
	hdr := func() []byte {
		p := be.AppendUint16(nil, v9Version)
		p = be.AppendUint16(p, 1)
		p = append(p, make([]byte, 12)...)
		return be.AppendUint32(p, 1)
	}
	// Truncated template: declares 8 fields, carries 1.
	p := hdr()
	p = be.AppendUint16(p, 0)
	p = be.AppendUint16(p, 12)
	p = be.AppendUint16(p, 256)
	p = be.AppendUint16(p, 8)
	p = be.AppendUint32(p, uint32(ieOctets)<<16|4)
	f.Add(p)
	// Field-count overflow.
	p = hdr()
	p = be.AppendUint16(p, 0)
	p = be.AppendUint16(p, 8)
	p = be.AppendUint16(p, 256)
	p = be.AppendUint16(p, 0xFFFF)
	f.Add(p)
	// Zero-length field.
	p = hdr()
	p = be.AppendUint16(p, 0)
	p = be.AppendUint16(p, 12)
	p = be.AppendUint16(p, 256)
	p = be.AppendUint16(p, 1)
	p = be.AppendUint16(p, ieOctets)
	p = be.AppendUint16(p, 0)
	f.Add(p)
	// Template/data ID collision: a data flowset whose ID shadows the
	// template flowset number range boundary.
	p = hdr()
	p = be.AppendUint16(p, 256)
	p = be.AppendUint16(p, 8)
	p = be.AppendUint32(p, 0xDEADBEEF)
	f.Add(p)
	reg, _ := NewRegistry(FormatNetFlowV9)
	fuzzDecode(f, reg, FormatNetFlowV9)
}

func FuzzDecodeIPFIX(f *testing.F) {
	for _, p := range seedPackets(FormatIPFIX) {
		f.Add(p)
	}
	be := binary.BigEndian
	hdr := func(msgLen int) []byte {
		p := be.AppendUint16(nil, ipfixVersion)
		p = be.AppendUint16(p, uint16(msgLen))
		p = append(p, make([]byte, 8)...)
		return be.AppendUint32(p, 1)
	}
	// Withdrawal of a reserved ID.
	p := hdr(24)
	p = be.AppendUint16(p, ipfixTemplateSet)
	p = be.AppendUint16(p, 8)
	p = be.AppendUint16(p, 100)
	p = be.AppendUint16(p, 0)
	f.Add(p)
	// Enterprise field with missing enterprise number.
	p = hdr(24)
	p = be.AppendUint16(p, ipfixTemplateSet)
	p = be.AppendUint16(p, 8)
	p = be.AppendUint16(p, 256)
	p = be.AppendUint16(p, 1)
	f.Add(append(p, 0x80, byte(ieOctets), 0, 4))
	// Options template with zero scope fields.
	p = hdr(26)
	p = be.AppendUint16(p, ipfixOptionsSet)
	p = be.AppendUint16(p, 10)
	p = be.AppendUint16(p, 256)
	p = be.AppendUint16(p, 1)
	p = be.AppendUint16(p, 0)
	p = be.AppendUint16(p, ieSampling)
	p = be.AppendUint16(p, 4)
	f.Add(p)
	// Message length lying about the buffer.
	f.Add(hdr(0xFFFF))
	reg, _ := NewRegistry(FormatIPFIX)
	fuzzDecode(f, reg, FormatIPFIX)
}

func FuzzDecodeSFlow(f *testing.F) {
	for _, p := range seedPackets(FormatSFlow) {
		f.Add(p)
	}
	be := binary.BigEndian
	// Sample count lying about the buffer.
	p := be.AppendUint32(nil, sflowVersion)
	p = be.AppendUint32(p, sflowAddrIPv4)
	p = append(p, make([]byte, 16)...)
	p = be.AppendUint32(p, 1<<30)
	f.Add(p)
	// Record count lying inside a flow sample.
	p = be.AppendUint32(nil, sflowVersion)
	p = be.AppendUint32(p, sflowAddrIPv4)
	p = append(p, make([]byte, 16)...)
	p = be.AppendUint32(p, 1)
	p = be.AppendUint32(p, sflowFlowSample)
	p = be.AppendUint32(p, 32)
	p = append(p, make([]byte, 28)...)
	p = be.AppendUint32(p, 1<<30)
	f.Add(p)
	// IPv6 agent address path.
	p = be.AppendUint32(nil, sflowVersion)
	p = be.AppendUint32(p, sflowAddrIPv6)
	p = append(p, make([]byte, 28)...)
	p = be.AppendUint32(p, 0)
	f.Add(p)
	reg, _ := NewRegistry(FormatSFlow)
	fuzzDecode(f, reg, FormatSFlow)
}
