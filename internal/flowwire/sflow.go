package flowwire

import (
	"encoding/binary"
	"fmt"

	"netwide/internal/ipaddr"
)

// sFlow v5 — the packet-sampling format. An sFlow datagram is XDR-encoded:
// every scalar is a big-endian 32-bit word (or a pair of them for 64-bit
// counters). The layout this codec speaks:
//
//	datagram: version=5, agent address (type+bytes), sub-agent ID,
//	          datagram sequence, agent uptime (ms), sample count, samples...
//	flow sample (format 1): sample sequence, source ID, sampling rate,
//	          sample pool, drops, input, output, record count, records...
//	sampled-IPv4 record (format 3): original length, protocol, src, dst,
//	          src port, dst port, TCP flags, ToS
//
// Two impedance mismatches with flow export, and how this codec bridges
// them:
//
// Counters. sFlow samples packets, it does not aggregate flows: a standard
// flow sample describes ONE sampled packet, and a collector can only
// estimate traffic as (sampling rate) packets and (rate × original length)
// bytes per sample. That estimator can never reproduce the dataset's exact
// per-flow counters, so the house exporter adds an enterprise-specific
// flow record (enterprise 32473 — the RFC 5612 documentation range — format
// 1, 16 bytes: bytes uint64, packets uint64) carrying the exact aggregate.
// The decoder prefers it when present and falls back to the standard
// estimator otherwise, so it handles real sFlow agents and house replays
// with the same code path.
//
// Time. sFlow datagrams carry no wall clock — only agent uptime in
// milliseconds. The decoder derives UnixSecs as uptime/1000 and the
// exporter stamps uptime as unixSecs×1000, i.e. the agent "booted at the
// epoch". uint32 milliseconds wrap after ~49.7 days, so sFlow replays
// should use a small epoch (nwreplay's default 0 is fine for week-long
// datasets); real deployments would configure the collector's epoch to
// the agent's boot time instead.
const (
	sflowVersion = 5

	sflowAddrIPv4 = 1
	sflowAddrIPv6 = 2

	// sflowFlowSample is the standard flow-sample format (enterprise 0).
	sflowFlowSample = 1
	// sflowSampledIPv4 is the standard sampled-IPv4-header record format.
	sflowSampledIPv4 = 3
	// sflowExactCounters is the house enterprise-specific record carrying
	// exact per-flow byte/packet aggregates: enterprise 32473 (the RFC
	// 5612 documentation enterprise), format 1.
	sflowExactCounters = 32473<<12 | 1

	sflowSampledIPv4Len   = 32
	sflowExactCountersLen = 16
	// sflowMaxSamples caps samples per datagram: 28-byte header plus 12
	// samples of 104 bytes stays under the common 1500-byte MTU.
	sflowMaxSamples = 12
)

// sflowDecoder decodes sFlow v5 datagrams. Stateless: sFlow needs no
// templates.
type sflowDecoder struct{}

func (sflowDecoder) Format() Format { return FormatSFlow }

func (sflowDecoder) Decode(pkt []byte, dst []Record) (Batch, []Record, error) {
	base := len(dst)
	be := binary.BigEndian
	if len(pkt) < 8 {
		return Batch{}, dst, fmt.Errorf("%w: %d bytes, sFlow preamble needs 8", ErrTruncated, len(pkt))
	}
	if v := be.Uint32(pkt); v != sflowVersion {
		return Batch{}, dst, fmt.Errorf("%w: sFlow %d", ErrBadVersion, v)
	}
	var addrLen int
	switch be.Uint32(pkt[4:]) {
	case sflowAddrIPv4:
		addrLen = 4
	case sflowAddrIPv6:
		addrLen = 16
	default:
		return Batch{}, dst, fmt.Errorf("%w: agent address type %d", ErrBadVersion, be.Uint32(pkt[4:]))
	}
	off := 8 + addrLen
	if len(pkt) < off+16 {
		return Batch{}, dst, fmt.Errorf("%w: %d bytes, datagram header needs %d", ErrTruncated, len(pkt), off+16)
	}
	subAgent := be.Uint32(pkt[off:])
	uptime := be.Uint32(pkt[off+8:])
	nsamples := int(be.Uint32(pkt[off+12:]))
	off += 16
	// Each sample costs at least its 8-byte header; a count beyond that is
	// lying about the buffer and is rejected before any decode work.
	if nsamples > (len(pkt)-off)/8 {
		return Batch{}, dst, fmt.Errorf("%w: %d samples cannot fit in %d remaining bytes", ErrTruncated, nsamples, len(pkt)-off)
	}
	b := Batch{
		Format:    FormatSFlow,
		Engine:    subAgent,
		UnixSecs:  uptime / 1000, // no wall clock on the wire; see package comment
		SysUptime: uptime,
	}
	flowSamples := 0
	for i := 0; i < nsamples; i++ {
		if len(pkt)-off < 8 {
			return Batch{}, dst[:base], fmt.Errorf("%w: sample %d header truncated", ErrTruncated, i)
		}
		sformat := be.Uint32(pkt[off:])
		slen := int(be.Uint32(pkt[off+4:]))
		off += 8
		if slen > len(pkt)-off {
			return Batch{}, dst[:base], fmt.Errorf("%w: sample %d length %d exceeds remaining %d bytes", ErrTruncated, i, slen, len(pkt)-off)
		}
		body := pkt[off : off+slen]
		off += slen
		if sformat != sflowFlowSample {
			continue // counter samples and expanded formats: legal, skipped
		}
		var seq, rate uint32
		var rec Record
		var ok bool
		var err error
		seq, rate, rec, ok, err = decodeFlowSample(body)
		if err != nil {
			return Batch{}, dst[:base], fmt.Errorf("sample %d: %w", i, err)
		}
		if flowSamples == 0 {
			b.Seq = seq
		}
		b.SampleRate = rate
		flowSamples++
		if ok {
			dst = append(dst, rec)
		}
	}
	if off != len(pkt) {
		return Batch{}, dst[:base], fmt.Errorf("%w: %d trailing bytes after %d samples", ErrBadCount, len(pkt)-off, nsamples)
	}
	if flowSamples > 0 {
		// The per-source sample sequence is the loss signal: the next
		// datagram's first flow sample should carry Seq+SeqAdvance.
		b.SeqModel = SeqSamples
		b.SeqAdvance = uint32(flowSamples)
	}
	return b, dst, nil
}

// decodeFlowSample parses one standard flow sample body, returning its
// sequence number, sampling rate and — when the sample carried a
// sampled-IPv4 record — the normalized flow record. Exact house counters
// override the standard (rate, rate×length) estimator.
func decodeFlowSample(body []byte) (seq, rate uint32, rec Record, ok bool, err error) {
	be := binary.BigEndian
	if len(body) < 32 {
		return 0, 0, rec, false, fmt.Errorf("%w: flow sample body %d bytes, needs 32", ErrTruncated, len(body))
	}
	seq = be.Uint32(body)
	rate = be.Uint32(body[8:])
	nrec := int(be.Uint32(body[28:]))
	pos := 32
	if nrec > (len(body)-pos)/8 {
		return 0, 0, rec, false, fmt.Errorf("%w: %d flow records cannot fit in %d bytes", ErrTruncated, nrec, len(body)-pos)
	}
	var pktLen uint64
	exact := false
	for r := 0; r < nrec; r++ {
		if len(body)-pos < 8 {
			return 0, 0, rec, false, fmt.Errorf("%w: flow record %d header truncated", ErrTruncated, r)
		}
		rformat := be.Uint32(body[pos:])
		rlen := int(be.Uint32(body[pos+4:]))
		pos += 8
		if rlen > len(body)-pos {
			return 0, 0, rec, false, fmt.Errorf("%w: flow record %d length %d exceeds remaining %d bytes", ErrTruncated, r, rlen, len(body)-pos)
		}
		data := body[pos : pos+rlen]
		pos += rlen
		switch rformat {
		case sflowSampledIPv4:
			if rlen < sflowSampledIPv4Len {
				return 0, 0, rec, false, fmt.Errorf("%w: sampled-IPv4 record %d bytes, needs %d", ErrTruncated, rlen, sflowSampledIPv4Len)
			}
			pktLen = uint64(be.Uint32(data))
			rec.Src = ipaddr.Addr(be.Uint32(data[8:]))
			rec.Dst = ipaddr.Addr(be.Uint32(data[12:]))
			ok = true
		case sflowExactCounters:
			if rlen < sflowExactCountersLen {
				return 0, 0, rec, false, fmt.Errorf("%w: exact-counters record %d bytes, needs %d", ErrTruncated, rlen, sflowExactCountersLen)
			}
			rec.Bytes = be.Uint64(data)
			rec.Packets = be.Uint64(data[8:])
			exact = true
		}
	}
	if pos != len(body) {
		return 0, 0, rec, false, fmt.Errorf("%w: %d trailing bytes in flow sample", ErrBadCount, len(body)-pos)
	}
	if ok {
		rec.Flows = 1
		if !exact {
			// Standard sFlow estimator: each sample stands for `rate`
			// packets of the sampled packet's size.
			rec.Packets = uint64(rate)
			rec.Bytes = uint64(rate) * pktLen
		}
	}
	return seq, rate, rec, ok, nil
}

// sflowExporter encodes flows as sFlow v5 datagrams: one flow sample per
// flow, each carrying a sampled-IPv4 record plus the house exact-counters
// record. Packets accumulate in one contiguous arena like the other
// exporters'.
type sflowExporter struct {
	engine     uint32
	sampleRate uint32
	now        func() (uint32, uint32)
	dgramSeq   uint32
	sampleSeq  uint32
	pool       uint32
	pending    []Flow
	arena      []byte
	ends       []int
}

func newSFlowExporter(engine, sampleRate uint32, clock func() (uint32, uint32)) *sflowExporter {
	if clock == nil {
		clock = func() (uint32, uint32) { return 0, 0 }
	}
	return &sflowExporter{engine: engine, sampleRate: sampleRate, now: clock}
}

func (e *sflowExporter) Format() Format { return FormatSFlow }

func (e *sflowExporter) Add(f Flow) error {
	e.pending = append(e.pending, f)
	if len(e.pending) >= sflowMaxSamples {
		return e.Flush()
	}
	return nil
}

func (e *sflowExporter) Flush() error {
	if len(e.pending) == 0 {
		return nil
	}
	be := binary.BigEndian
	_, secs := e.now()
	rate := e.sampleRate
	if rate == 0 {
		rate = 1
	}
	buf := e.arena
	buf = be.AppendUint32(buf, sflowVersion)
	buf = be.AppendUint32(buf, sflowAddrIPv4)
	buf = be.AppendUint32(buf, e.engine) // agent address: engine-derived
	buf = be.AppendUint32(buf, e.engine) // sub-agent ID carries the engine
	buf = be.AppendUint32(buf, e.dgramSeq)
	buf = be.AppendUint32(buf, secs*1000) // uptime ms; epoch-boot contract
	buf = be.AppendUint32(buf, uint32(len(e.pending)))
	for _, f := range e.pending {
		// Flow sample header: 96-byte body = 32-byte sample fields + two
		// records of 8-byte header each plus 32 and 16 byte bodies.
		buf = be.AppendUint32(buf, sflowFlowSample)
		buf = be.AppendUint32(buf, 96)
		buf = be.AppendUint32(buf, e.sampleSeq)
		buf = be.AppendUint32(buf, e.engine) // source ID: ifIndex type 0
		buf = be.AppendUint32(buf, rate)
		e.pool += rate
		buf = be.AppendUint32(buf, e.pool)
		buf = be.AppendUint32(buf, 0) // drops
		buf = be.AppendUint32(buf, 0) // input
		buf = be.AppendUint32(buf, 0) // output
		buf = be.AppendUint32(buf, 2) // record count
		// Sampled-IPv4 record: the flow's 5-tuple and mean packet size.
		buf = be.AppendUint32(buf, sflowSampledIPv4)
		buf = be.AppendUint32(buf, sflowSampledIPv4Len)
		meanPkt := f.Bytes
		if f.Packets > 0 {
			meanPkt = f.Bytes / f.Packets
		}
		buf = be.AppendUint32(buf, uint32(min(meanPkt, 0xFFFFFFFF)))
		buf = be.AppendUint32(buf, uint32(f.Key.Proto))
		buf = be.AppendUint32(buf, uint32(f.Key.Src))
		buf = be.AppendUint32(buf, uint32(f.Key.Dst))
		buf = be.AppendUint32(buf, uint32(f.Key.SrcPort))
		buf = be.AppendUint32(buf, uint32(f.Key.DstPort))
		buf = be.AppendUint32(buf, uint32(f.TCPFlags))
		buf = be.AppendUint32(buf, 0) // ToS
		// House exact-counters record: lossless per-flow aggregates.
		buf = be.AppendUint32(buf, sflowExactCounters)
		buf = be.AppendUint32(buf, sflowExactCountersLen)
		buf = be.AppendUint64(buf, f.Bytes)
		buf = be.AppendUint64(buf, f.Packets)
		e.sampleSeq++
	}
	e.arena = buf
	e.ends = append(e.ends, len(e.arena))
	e.dgramSeq++
	e.pending = e.pending[:0]
	return nil
}

// Drain returns and clears the accumulated packets; the returned slices
// own the detached arena, so they stay valid indefinitely.
func (e *sflowExporter) Drain() [][]byte {
	if len(e.ends) == 0 {
		return nil
	}
	out := make([][]byte, len(e.ends))
	start := 0
	for i, end := range e.ends {
		out[i] = e.arena[start:end:end]
		start = end
	}
	e.arena = nil
	e.ends = e.ends[:0]
	return out
}
