// Package sampling models Juniper Traffic Sampling as used on Abilene:
// random sampling that captures a fixed fraction (1%) of all packets
// entering every router, with sampled packets then aggregated at the
// 5-tuple IP-flow level.
//
// For a flow carrying n packets the number of sampled packets is
// Binomial(n, rate). The sampler uses an exact geometric-skip method for
// small expected counts and a clamped normal approximation for large ones,
// so it is both statistically faithful and O(sampled packets) cheap.
package sampling

import (
	"fmt"
	"math"
	"math/rand/v2"

	"netwide/internal/flow"
)

// AbileneRate is the sampling rate used in the paper: 1% of packets.
const AbileneRate = 0.01

// Binomial draws from Binomial(n, p).
//
// Strategy: for expected successes np <= smallMeanCutoff it uses the exact
// geometric inter-arrival (waiting time) method, whose cost is proportional
// to the number of successes; otherwise it uses a normal approximation with
// continuity correction clamped to [0, n], which at np > 50 has negligible
// error relative to the traffic noise being modeled.
func Binomial(n uint64, p float64, rng *rand.Rand) uint64 {
	if p <= 0 || n == 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	const smallMeanCutoff = 50
	mean := float64(n) * p
	if mean <= smallMeanCutoff {
		// Geometric skips: the gap until the next sampled packet is
		// Geometric(p); count how many fit in n trials.
		var count, trial uint64
		lq := math.Log1p(-p)
		for {
			u := rng.Float64()
			// Log1p(-u) keeps full precision as u -> 0 (where log(1-u)
			// cancels catastrophically) and saves a subtraction in the
			// hottest RNG loop of the simulator.
			skip := uint64(math.Floor(math.Log1p(-u)/lq)) + 1
			if trial+skip > n || trial+skip < trial { // overflow guard
				return count
			}
			trial += skip
			count++
		}
	}
	sd := math.Sqrt(mean * (1 - p))
	x := math.Round(mean + sd*rng.NormFloat64())
	if x < 0 {
		return 0
	}
	if x > float64(n) {
		return n
	}
	return uint64(x)
}

// Sampler thins packet streams at a fixed per-packet probability.
type Sampler struct {
	// Rate is the per-packet sampling probability in (0, 1].
	Rate float64
}

// NewSampler validates the rate and returns a sampler.
func NewSampler(rate float64) (Sampler, error) {
	if !(rate > 0 && rate <= 1) {
		return Sampler{}, fmt.Errorf("sampling: rate %v out of (0,1]", rate)
	}
	return Sampler{Rate: rate}, nil
}

// Sample applies packet sampling to a true flow record. It returns the
// sampled record and true if at least one packet of the flow was sampled;
// flows with no sampled packets are invisible to the measurement system,
// exactly as with real sampled NetFlow. Sampled bytes are the sampled
// packet count times the flow's mean packet size (per-packet sizes are not
// retained at this layer, matching what a flow record can know).
func (s Sampler) Sample(r flow.Record, rng *rand.Rand) (flow.Record, bool) {
	if r.Packets == 0 {
		return flow.Record{}, false
	}
	k := Binomial(r.Packets, s.Rate, rng)
	if k == 0 {
		return flow.Record{}, false
	}
	meanPkt := float64(r.Bytes) / float64(r.Packets)
	return flow.Record{
		Key:     r.Key,
		Packets: k,
		Bytes:   uint64(math.Round(meanPkt * float64(k))),
	}, true
}

// InverseEstimate scales a sampled count back to an (unbiased) estimate of
// the true count, the standard 1/rate estimator used when reporting
// sampled-NetFlow volumes.
func (s Sampler) InverseEstimate(sampled uint64) float64 {
	return float64(sampled) / s.Rate
}

// FlowDetectionProb returns the probability that a flow of n packets is
// seen at all under the sampling rate: 1 - (1-rate)^n. This is the
// flow-count deflation factor of Duffield et al. (SIGCOMM 2003), which the
// F-type (IP-flow count) timeseries inherits.
func (s Sampler) FlowDetectionProb(n uint64) float64 {
	return -math.Expm1(float64(n) * math.Log1p(-s.Rate))
}

// BinomialAtLeastOne draws from Binomial(n, p) conditioned on the result
// being at least 1 — the per-flow sampled packet count of a flow that is
// known to be visible.
//
// It uses the exact decomposition X = 1 + Binomial(n-G, p), where G is the
// trial index of the first success, geometric truncated to [1, n]:
// P(G = g) = p(1-p)^(g-1) / (1-(1-p)^n).
func BinomialAtLeastOne(n uint64, p float64, rng *rand.Rand) uint64 {
	if n == 0 {
		panic("sampling: BinomialAtLeastOne with n=0")
	}
	if p >= 1 {
		return n
	}
	if p <= 0 {
		// Degenerate conditioning; the only consistent answer is 1.
		return 1
	}
	pVis := -math.Expm1(float64(n) * math.Log1p(-p))
	u := rng.Float64() * pVis
	g := uint64(math.Ceil(math.Log1p(-u) / math.Log1p(-p)))
	if g < 1 {
		g = 1
	}
	if g > n {
		g = n
	}
	return 1 + Binomial(n-g, p, rng)
}

// Poisson draws from Poisson(lambda). Knuth's product method is used for
// small means and a clamped normal approximation for large ones, mirroring
// the accuracy/cost trade-off of Binomial.
func Poisson(lambda float64, rng *rand.Rand) uint64 {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		l := math.Exp(-lambda)
		var k uint64
		p := 1.0
		for {
			p *= rng.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	x := math.Round(lambda + math.Sqrt(lambda)*rng.NormFloat64())
	if x < 0 {
		return 0
	}
	return uint64(x)
}
