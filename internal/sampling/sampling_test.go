package sampling

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"netwide/internal/flow"
	"netwide/internal/ipaddr"
)

func TestBinomialEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	if Binomial(0, 0.5, rng) != 0 {
		t.Fatal("n=0 must give 0")
	}
	if Binomial(100, 0, rng) != 0 {
		t.Fatal("p=0 must give 0")
	}
	if Binomial(100, 1, rng) != 100 {
		t.Fatal("p=1 must give n")
	}
	for i := 0; i < 100; i++ {
		if k := Binomial(10, 0.3, rng); k > 10 {
			t.Fatalf("k=%d exceeds n", k)
		}
	}
}

func TestBinomialMomentsSmallMean(t *testing.T) {
	// Exact geometric-skip branch: n=1000, p=0.01, mean 10.
	rng := rand.New(rand.NewPCG(2, 2))
	const trials = 20000
	var sum, sumsq float64
	for i := 0; i < trials; i++ {
		k := float64(Binomial(1000, 0.01, rng))
		sum += k
		sumsq += k * k
	}
	mean := sum / trials
	variance := sumsq/trials - mean*mean
	if math.Abs(mean-10) > 0.15 {
		t.Fatalf("mean %v, want ~10", mean)
	}
	if math.Abs(variance-9.9) > 0.6 {
		t.Fatalf("variance %v, want ~9.9", variance)
	}
}

func TestBinomialMomentsLargeMean(t *testing.T) {
	// Normal-approximation branch: n=100000, p=0.01, mean 1000.
	rng := rand.New(rand.NewPCG(3, 3))
	const trials = 5000
	var sum, sumsq float64
	for i := 0; i < trials; i++ {
		k := float64(Binomial(100000, 0.01, rng))
		sum += k
		sumsq += k * k
	}
	mean := sum / trials
	variance := sumsq/trials - mean*mean
	if math.Abs(mean-1000) > 3 {
		t.Fatalf("mean %v, want ~1000", mean)
	}
	if math.Abs(variance-990)/990 > 0.15 {
		t.Fatalf("variance %v, want ~990", variance)
	}
}

func TestNewSamplerValidates(t *testing.T) {
	for _, r := range []float64{0, -1, 1.5} {
		if _, err := NewSampler(r); err == nil {
			t.Fatalf("rate %v accepted", r)
		}
	}
	if _, err := NewSampler(AbileneRate); err != nil {
		t.Fatal(err)
	}
}

func testRecord(pkts, bytes uint64) flow.Record {
	return flow.Record{
		Key: flow.Key{
			Src: ipaddr.FromOctets(10, 0, 0, 1), Dst: ipaddr.FromOctets(10, 16, 0, 1),
			SrcPort: 1234, DstPort: 80, Proto: flow.ProtoTCP,
		},
		Packets: pkts, Bytes: bytes,
	}
}

func TestSampleSmallFlowsOftenInvisible(t *testing.T) {
	s, _ := NewSampler(0.01)
	rng := rand.New(rand.NewPCG(4, 4))
	seen := 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		if _, ok := s.Sample(testRecord(3, 1500), rng); ok {
			seen++
		}
	}
	// P(seen) = 1-(0.99)^3 = 0.0297.
	frac := float64(seen) / trials
	if frac < 0.02 || frac > 0.04 {
		t.Fatalf("small-flow visibility %v, want ~0.03", frac)
	}
	want := s.FlowDetectionProb(3)
	if math.Abs(want-0.029701) > 1e-6 {
		t.Fatalf("FlowDetectionProb=%v", want)
	}
}

func TestSampleUnbiasedVolume(t *testing.T) {
	s, _ := NewSampler(0.01)
	rng := rand.New(rand.NewPCG(5, 5))
	const trials = 3000
	var estSum float64
	rec := testRecord(10000, 10000*700)
	for i := 0; i < trials; i++ {
		out, ok := s.Sample(rec, rng)
		if !ok {
			continue // mean 100 sampled packets; invisibility is ~0
		}
		estSum += s.InverseEstimate(out.Packets)
	}
	est := estSum / trials
	if math.Abs(est-10000)/10000 > 0.02 {
		t.Fatalf("inverse estimator mean %v, want ~10000", est)
	}
}

func TestSamplePreservesMeanPacketSize(t *testing.T) {
	s, _ := NewSampler(0.05)
	rng := rand.New(rand.NewPCG(6, 6))
	rec := testRecord(5000, 5000*432)
	out, ok := s.Sample(rec, rng)
	if !ok {
		t.Fatal("large flow invisible")
	}
	mps := float64(out.Bytes) / float64(out.Packets)
	if math.Abs(mps-432) > 1 {
		t.Fatalf("mean packet size %v, want 432", mps)
	}
}

func TestSampleZeroPacketFlow(t *testing.T) {
	s, _ := NewSampler(0.5)
	rng := rand.New(rand.NewPCG(7, 7))
	if _, ok := s.Sample(flow.Record{}, rng); ok {
		t.Fatal("zero-packet flow sampled")
	}
}

// Property: sampled packets never exceed the original, and sampled bytes
// never exceed original bytes (within rounding of the mean packet size).
func TestPropSampleBounds(t *testing.T) {
	s, _ := NewSampler(0.1)
	f := func(seed uint64, pktsRaw uint32) bool {
		rng := rand.New(rand.NewPCG(seed, 17))
		pkts := uint64(pktsRaw%100000) + 1
		rec := testRecord(pkts, pkts*800)
		out, ok := s.Sample(rec, rng)
		if !ok {
			return true
		}
		return out.Packets <= pkts && out.Packets > 0 && out.Bytes <= rec.Bytes+800
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: FlowDetectionProb is a CDF-like monotone function of n.
func TestPropDetectionProbMonotone(t *testing.T) {
	s, _ := NewSampler(0.01)
	f := func(a, b uint16) bool {
		n1, n2 := uint64(a), uint64(b)
		if n1 > n2 {
			n1, n2 = n2, n1
		}
		p1, p2 := s.FlowDetectionProb(n1), s.FlowDetectionProb(n2)
		return p1 <= p2+1e-12 && p1 >= 0 && p2 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBinomialSmall(b *testing.B) {
	rng := rand.New(rand.NewPCG(8, 8))
	for i := 0; i < b.N; i++ {
		Binomial(500, 0.01, rng)
	}
}

func BenchmarkBinomialLarge(b *testing.B) {
	rng := rand.New(rand.NewPCG(9, 9))
	for i := 0; i < b.N; i++ {
		Binomial(1_000_000, 0.01, rng)
	}
}

func TestPoissonMoments(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 10))
	for _, lambda := range []float64{0.5, 5, 20, 100} {
		const trials = 20000
		var sum, sumsq float64
		for i := 0; i < trials; i++ {
			k := float64(Poisson(lambda, rng))
			sum += k
			sumsq += k * k
		}
		mean := sum / trials
		variance := sumsq/trials - mean*mean
		if math.Abs(mean-lambda)/lambda > 0.05 {
			t.Fatalf("lambda=%v: mean %v", lambda, mean)
		}
		if math.Abs(variance-lambda)/lambda > 0.12 {
			t.Fatalf("lambda=%v: variance %v", lambda, variance)
		}
	}
	if Poisson(0, rng) != 0 || Poisson(-3, rng) != 0 {
		t.Fatal("non-positive lambda must give 0")
	}
}

func TestBinomialAtLeastOneExactMean(t *testing.T) {
	// E[X | X>=1] = n*p / (1-(1-p)^n).
	rng := rand.New(rand.NewPCG(11, 11))
	for _, tc := range []struct {
		n uint64
		p float64
	}{{2, 0.01}, {100, 0.01}, {1000, 0.01}, {10, 0.3}} {
		pVis := -math.Expm1(float64(tc.n) * math.Log1p(-tc.p))
		want := float64(tc.n) * tc.p / pVis
		const trials = 40000
		var sum float64
		for i := 0; i < trials; i++ {
			k := BinomialAtLeastOne(tc.n, tc.p, rng)
			if k < 1 || k > tc.n {
				t.Fatalf("n=%d p=%v: draw %d out of range", tc.n, tc.p, k)
			}
			sum += float64(k)
		}
		mean := sum / trials
		if math.Abs(mean-want)/want > 0.03 {
			t.Fatalf("n=%d p=%v: mean %v, want %v", tc.n, tc.p, mean, want)
		}
	}
}

func TestBinomialAtLeastOneEdges(t *testing.T) {
	rng := rand.New(rand.NewPCG(12, 12))
	if BinomialAtLeastOne(5, 1, rng) != 5 {
		t.Fatal("p=1 must give n")
	}
	if BinomialAtLeastOne(5, 0, rng) != 1 {
		t.Fatal("p=0 degenerate case must give 1")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("n=0 accepted")
		}
	}()
	BinomialAtLeastOne(0, 0.5, rng)
}
