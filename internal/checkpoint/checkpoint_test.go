package checkpoint

// The checkpoint file is what stands between a crash and a week of lost
// characterization, and it is read at daemon startup from a disk that may
// have torn the last write. Everything here is the hostile-input suite in
// the diskio_corrupt house style: truncations at every envelope boundary,
// bit flips in header and payload, version skew, garbage — every one must
// come back as a descriptive error (the daemon's cue to cold-start), never
// a panic or a silently wrong snapshot.

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"netwide/internal/fault"
)

// sampleState builds a small but structurally honest snapshot.
func sampleState() *State {
	return &State{
		Topology: "abilene",
		ODPairs:  121,
		Measures: 3,
		K:        10,
		Alpha:    0.001,
		Epoch:    1700000000,
		Shards:   1,
		Server: ServerState{
			Packets:    12345,
			Records:    67890,
			Watermark:  412,
			LastClosed: 411,
			BinsClosed: 412,
			Shards: []ShardState{{
				OpenBins: []OpenBin{
					{Bin: 412, Records: 7, Bytes: []float64{1, 2}, Packets: []float64{3, 4}, Flows: []float64{5, 6}},
				},
				Engines: []EngineState{
					{ID: 3, Next: 90001, Recent: []uint32{88000, 89000, 90000}, Pos: 0},
				},
				SealedThrough: 411,
			}},
		},
	}
}

func savedBytes(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, sampleState()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	st, err := Read(bytes.NewReader(savedBytes(t)))
	if err != nil {
		t.Fatal(err)
	}
	want := sampleState()
	if st.Topology != want.Topology || st.ODPairs != want.ODPairs || st.Epoch != want.Epoch {
		t.Fatalf("fingerprint mangled: %+v", st)
	}
	if st.Server.Records != want.Server.Records || st.Server.Watermark != want.Server.Watermark {
		t.Fatalf("counters mangled: %+v", st.Server)
	}
	if len(st.Server.Shards) != 1 || st.Shards != 1 {
		t.Fatalf("shard state mangled: %+v", st.Server.Shards)
	}
	sh := st.Server.Shards[0]
	if len(sh.OpenBins) != 1 || sh.OpenBins[0].Bytes[1] != 2 {
		t.Fatalf("open bins mangled: %+v", sh.OpenBins)
	}
	if len(sh.Engines) != 1 || sh.Engines[0].Next != 90001 {
		t.Fatalf("engine cursors mangled: %+v", sh.Engines)
	}
	if sh.SealedThrough != 411 {
		t.Fatalf("sealed-through mangled: %+v", sh)
	}
}

func TestReadTruncated(t *testing.T) {
	raw := savedBytes(t)
	// Every envelope boundary: empty, mid-magic, end of magic, mid-digest,
	// end of header, mid-payload, one byte short.
	for _, n := range []int{0, 1, 7, 8, 12, 16, 17, len(raw) / 2, len(raw) - 1} {
		if _, err := Read(bytes.NewReader(raw[:n])); err == nil {
			t.Fatalf("snapshot truncated to %d of %d bytes read silently", n, len(raw))
		}
	}
}

func TestReadBitFlip(t *testing.T) {
	raw := savedBytes(t)
	for _, off := range []int{0, 9, 20, len(raw) / 2, len(raw) - 1} {
		bad := append([]byte(nil), raw...)
		bad[off] ^= 0x08
		_, err := Read(bytes.NewReader(bad))
		if err == nil {
			t.Fatalf("bit flip at %d read silently", off)
		}
		if !strings.Contains(err.Error(), "checksum") && !strings.Contains(err.Error(), "corrupt") && !strings.Contains(err.Error(), "magic") {
			t.Fatalf("bit flip at %d: undiagnostic error %q", off, err)
		}
	}
}

func TestReadGarbageAndWrongFile(t *testing.T) {
	if _, err := Read(strings.NewReader("this is not a checkpoint")); err == nil {
		t.Fatal("garbage read silently")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty file read silently")
	}
	// A dataset file has the same envelope shape with different magic; it
	// must be rejected on the magic, not decoded as a snapshot.
	nwds := append([]byte("NWDSv2\r\n"), savedBytes(t)[8:]...)
	if _, err := Read(bytes.NewReader(nwds)); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("dataset-magic file: %v", err)
	}
}

func TestReadVersionSkew(t *testing.T) {
	raw := encodeWithVersion(t, sampleState(), Version+1)
	if _, err := Read(bytes.NewReader(raw)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future-version snapshot: %v", err)
	}
}

func TestReadMissingFingerprint(t *testing.T) {
	st := sampleState()
	st.Topology = ""
	raw := encodeWithVersion(t, st, Version)
	if _, err := Read(bytes.NewReader(raw)); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("fingerprint-less snapshot: %v", err)
	}
}

// encodeWithVersion builds the envelope by hand so tests can stamp an
// arbitrary version or an otherwise-invalid state (Write always stamps the
// current version).
func encodeWithVersion(t *testing.T, st *State, version int) []byte {
	t.Helper()
	st.Version = version
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(st); err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	h.Write(payload.Bytes())
	out := make([]byte, 16, 16+payload.Len())
	copy(out[:8], Magic)
	binary.BigEndian.PutUint64(out[8:], h.Sum64())
	return append(out, payload.Bytes()...)
}

func TestWriteFileAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "daemon.nwcp")
	first := sampleState()
	if err := WriteFile(path, first, nil); err != nil {
		t.Fatal(err)
	}
	second := sampleState()
	second.Server.Watermark = 999
	if err := WriteFile(path, second, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Server.Watermark != 999 {
		t.Fatalf("replace kept the old snapshot (watermark %d)", got.Server.Watermark)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp file left behind: %v", err)
	}
}

// TestWriteFileFailuresPreserveOldSnapshot injects every failure mode the
// write path has — torn write, disk full at each stage, failed rename —
// and requires the previous snapshot to stay intact and restorable every
// time, with no temp litter. This is the invariant the atomic-replace
// design exists for.
func TestWriteFileFailuresPreserveOldSnapshot(t *testing.T) {
	cases := []struct {
		name string
		arm  func(inj *fault.Injector)
	}{
		{"torn write mid-envelope", func(inj *fault.Injector) { inj.ArmTornWrite(FaultWrite, 11) }},
		{"torn write before first byte", func(inj *fault.Injector) { inj.ArmTornWrite(FaultWrite, 0) }},
		{"disk full on write", func(inj *fault.Injector) { inj.Arm(FaultWrite, fault.Fault{Err: fault.ErrDiskFull}) }},
		{"disk full on sync", func(inj *fault.Injector) { inj.Arm(FaultSync, fault.Fault{Err: fault.ErrDiskFull}) }},
		{"rename fails", func(inj *fault.Injector) { inj.Arm(FaultRename, fault.Fault{Err: fault.ErrDiskFull}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "daemon.nwcp")
			old := sampleState()
			old.Server.Watermark = 123
			if err := WriteFile(path, old, nil); err != nil {
				t.Fatal(err)
			}
			inj := fault.NewInjector()
			tc.arm(inj)
			next := sampleState()
			next.Server.Watermark = 456
			if err := WriteFile(path, next, inj); err == nil {
				t.Fatal("injected failure produced a nil error")
			}
			got, err := ReadFile(path)
			if err != nil {
				t.Fatalf("previous snapshot unreadable after failed write: %v", err)
			}
			if got.Server.Watermark != 123 {
				t.Fatalf("previous snapshot replaced by failed write (watermark %d)", got.Server.Watermark)
			}
			if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("failed write left temp file behind: %v", err)
			}
		})
	}
}

// TestTornWriteOnFreshPath: a torn first-ever checkpoint leaves either
// nothing or an unreadable fragment — and the fragment, if any, must be
// rejected by Read, which is what the daemon's cold-start fallback relies
// on.
func TestTornWriteOnFreshPath(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "daemon.nwcp")
	inj := fault.NewInjector()
	inj.ArmTornWrite(FaultWrite, 25) // header survives, payload torn
	if err := WriteFile(path, sampleState(), inj); err == nil {
		t.Fatal("torn write reported success")
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("torn write published a checkpoint: %v", err)
	}
}
