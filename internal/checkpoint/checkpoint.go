// Package checkpoint is the crash-safety layer of the live collector: a
// versioned, checksummed, atomically written snapshot of everything the
// ingest daemon needs to resume after a kill — per-measure model states,
// the event aggregator's open anomalies, the open bin accumulators, the
// per-engine sequence cursors and the watermark — so a restart replays
// nothing and loses at most the bins that closed after the last snapshot.
//
// The on-disk envelope is the same idiom as the dataset's .nwds files:
// 8 magic bytes, the 8-byte big-endian FNV-64a digest of the gob payload,
// then the payload. The digest is verified before a single byte reaches
// gob, because gob alone cannot detect payload corruption — a flipped bit
// inside a float decodes "successfully" into a different float, and a
// restored detector would then alarm differently from the one that
// crashed. A checkpoint that fails any check is reported as an error; the
// caller's contract is to fall back to a cold start, never to crash.
//
// WriteFile is atomic: the snapshot lands in a temp file, is fsynced,
// and only then renamed over the previous checkpoint — a crash mid-write
// (torn write, full disk, power cut) leaves the previous snapshot intact.
package checkpoint

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"

	"netwide"
	"netwide/internal/fault"
)

// Magic opens a checkpoint file.
const Magic = "NWCPv1\r\n"

// Version is the current snapshot format version. A mismatch is a
// restore error (and therefore a cold start), not a migration: the
// snapshot is a cache of recoverable state, so the safe response to an
// unknown format is to rebuild from scratch.
//
// Version 2 generalized the collector's wire layer from NetFlow v5 to the
// format-agnostic flowwire decoders: engine cursors became (format, 32-bit
// engine) keyed, per-protocol ingest counters were added, and v9/IPFIX
// template caches became restore state. Version 1 snapshots cold-start.
//
// Version 3 sharded the accumulation state: open bins, engine cursors and
// the behind-streak moved from ServerState into per-shard ShardState
// entries, and the shard count joined the fingerprint (binning partitions
// OD pairs by export engine, so a snapshot only restores into a daemon
// with the same shard layout — a mismatch cold-starts). Version 2
// snapshots cold-start.
//
// Version 4 made the model lifecycle pluggable: each lane's recovery state
// became a full engine.UpdaterState (scoring model plus rolling window
// plus, under the incremental lifecycle, the subspace tracker's mean, axis
// and trace vectors), and the updater kind joined the fingerprint — a
// snapshot captured under one lifecycle cannot silently resume under
// another. Version 3 snapshots carried a bare model/window/since triple
// with no tracker state, so they cold-start.
const Version = 4

// Fault injection points consulted by WriteFile.
const (
	// FaultWrite wraps the temp-file writer (arm a WriteBudget for a torn
	// write, an Err for a full disk).
	FaultWrite = "checkpoint.write"
	// FaultSync fires before the temp file is fsynced.
	FaultSync = "checkpoint.sync"
	// FaultRename fires before the rename that publishes the snapshot.
	FaultRename = "checkpoint.rename"
)

// OpenBin is one still-accumulating timebin: the three per-OD vectors and
// the record count, exactly as the server's accumulator held them.
type OpenBin struct {
	Bin     int
	Records uint64
	Bytes   []float64
	Packets []float64
	Flows   []float64
}

// EngineState is one export engine's sequence cursor: the expected next
// sequence value and the recent-sequence ring used for duplicate
// detection. Cursors are independent per wire format — a v5 engine 3 and
// an IPFIX observation domain 3 are different streams — so the format is
// part of the identity.
type EngineState struct {
	Format uint8 // flowwire.Format value
	ID     uint32
	Next   uint32
	Recent []uint32 // valid ring entries, in ring index order
	Pos    int      // next ring slot to overwrite
}

// ProtoState is one wire format's cumulative ingest counters.
type ProtoState struct {
	Format     uint8 // flowwire.Format value
	Packets    uint64
	BadPackets uint64
	Duplicates uint64
	Records    uint64
	LostUnits  uint64
}

// TemplateField mirrors flowwire.FieldSpec as plain checkpoint data (this
// package stays import-light; the server translates both ways).
type TemplateField struct {
	ID         uint16
	Enterprise uint32
	Length     uint16
}

// TemplateState is one cached v9/IPFIX template. Restore revalidates each
// definition exactly like a hostile wire template, so a tampered snapshot
// is rejected rather than trusted.
type TemplateState struct {
	Format uint8  // flowwire.Format value
	Source uint32 // exporter identity (v9 source ID / IPFIX observation domain)
	ID     uint16
	Scope  uint16
	Fields []TemplateField
}

// ShardState is one binning shard's in-flight accumulation: the bins it
// is still filling, its engine sequence cursors, the highest bin it has
// sealed toward the merge layer, and its watermark-reset streak. The
// single-threaded collector writes exactly one ShardState; a sharded
// daemon writes one per shard worker, in shard order.
type ShardState struct {
	OpenBins      []OpenBin
	Engines       []EngineState
	SealedThrough int
	BehindStreak  int
}

// ServerState mirrors the ingest daemon's recovery state: the cumulative
// counters it serves on /stats plus the in-flight accumulation a restart
// must pick back up. It is a plain-data mirror (the server package imports
// this one, not the reverse), validated on restore by the server itself.
type ServerState struct {
	Packets         uint64
	BadPackets      uint64
	Duplicates      uint64
	Records         uint64
	LostRecords     uint64
	LateRecords     uint64
	Unroutable      uint64
	WildRecords     uint64
	WatermarkResets uint64
	BinsClosed      int
	Watermark       int
	LastClosed      int
	AlarmBins       int

	Shards    []ShardState
	Protocols []ProtoState
	Templates []TemplateState
}

// State is one complete snapshot.
type State struct {
	Version int

	// Fingerprint: a snapshot may only restore into a daemon built around
	// the same network model and detector configuration. Restoring a
	// checkpoint into a different topology or threshold setup would not
	// crash — it would quietly characterize garbage, which is worse.
	Topology string
	ODPairs  int
	Measures int
	K        int
	Alpha    float64
	Epoch    uint32
	// Formats is the sorted allowlist of enabled wire formats (flowwire
	// Format values). Engine cursors and template caches only make sense
	// under the same decoder set, so a different allowlist cold-starts.
	Formats []uint8
	// Shards is the binning shard count the snapshot was captured under.
	// Open bins and engine cursors are partitioned by engine hash, so a
	// daemon with a different shard layout cannot adopt them in place: a
	// mismatch cold-starts.
	Shards int
	// Updater is the model-lifecycle kind ("refit", "incremental") the
	// lane states were captured under. The lane states embed the matching
	// tracker/window payloads, so a daemon configured for a different
	// lifecycle cold-starts rather than misreading them.
	Updater string

	Server ServerState
	// Stream is the detector's own recovery state (models, refit windows,
	// open events), captured at a pipeline barrier.
	Stream netwide.StreamCheckpoint
	// Anomalies is the characterized-anomaly ledger as of the barrier.
	Anomalies []netwide.Anomaly
}

// Write writes st to w in the checksummed envelope, stamping the current
// Version.
func Write(w io.Writer, st *State) error {
	st.Version = Version
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(st); err != nil {
		return fmt.Errorf("checkpoint: encode: %w", err)
	}
	h := fnv.New64a()
	h.Write(payload.Bytes())
	var head [16]byte
	copy(head[:8], Magic)
	binary.BigEndian.PutUint64(head[8:], h.Sum64())
	if _, err := w.Write(head[:]); err != nil {
		return err
	}
	_, err := w.Write(payload.Bytes())
	return err
}

// Read reads a snapshot written by Write. The file is untrusted input — a
// torn write, a corrupt sector, a file from a different build — so the
// magic, the digest and the version are all verified before the payload is
// believed, and any failure is a descriptive error, never a panic. Deeper
// semantic validation (model shapes, aggregator invariants) happens when
// the state is restored into live objects, each layer checking its own.
func Read(r io.Reader) (*State, error) {
	br := bufio.NewReader(r)
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("checkpoint: truncated header: %w", err)
	}
	if string(hdr[:8]) != Magic {
		return nil, fmt.Errorf("checkpoint: bad magic %q: not a checkpoint file", hdr[:8])
	}
	body, err := io.ReadAll(br)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: truncated file: %w", err)
	}
	h := fnv.New64a()
	h.Write(body)
	if want := binary.BigEndian.Uint64(hdr[8:]); h.Sum64() != want {
		return nil, fmt.Errorf("checkpoint: checksum mismatch (stored %016x, computed %016x): corrupt or truncated file", want, h.Sum64())
	}
	var st State
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&st); err != nil {
		return nil, fmt.Errorf("checkpoint: corrupt payload: %w", err)
	}
	if st.Version != Version {
		return nil, fmt.Errorf("checkpoint: snapshot version %d, want %d", st.Version, Version)
	}
	if st.Topology == "" || st.ODPairs <= 0 || st.Measures <= 0 {
		return nil, fmt.Errorf("checkpoint: snapshot missing fingerprint (topology %q, %d OD pairs, %d measures)", st.Topology, st.ODPairs, st.Measures)
	}
	return &st, nil
}

// WriteFile atomically replaces path with the snapshot: write to a temp
// file in the same directory, fsync, rename over path, fsync the
// directory. A failure at any step (including every injected one) leaves
// the previous checkpoint at path untouched and cleans up the temp file.
// inj may be nil (production).
func WriteFile(path string, st *State, inj *fault.Injector) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("checkpoint: create temp: %w", err)
	}
	err = Write(inj.Writer(FaultWrite, f), st)
	if err == nil {
		err = inj.Fire(FaultSync)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	if err == nil {
		err = inj.Fire(FaultRename)
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: write %s: %w", path, err)
	}
	// Make the rename itself durable. Best effort: some filesystems refuse
	// directory fsync, and the data is already safe in the file.
	if d, derr := os.Open(filepath.Dir(path)); derr == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// ReadFile reads and verifies the snapshot at path.
func ReadFile(path string) (*State, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
