package baseline

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func diurnalSeries(rng *rand.Rand, n int, noise float64, spikes map[int]float64) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = 100*(1+0.5*math.Sin(2*math.Pi*float64(i)/288)) + noise*rng.NormFloat64()
	}
	for i, m := range spikes {
		s[i] += m
	}
	return s
}

func contains(xs []int, want int, slack int) bool {
	for _, x := range xs {
		if x >= want-slack && x <= want+slack {
			return true
		}
	}
	return false
}

func TestEWMADetectsSpike(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	s := diurnalSeries(rng, 1000, 2, map[int]float64{500: 150})
	alarms, err := EWMADetector{Alpha: 0.3, Threshold: 6}.Detect(s)
	if err != nil {
		t.Fatal(err)
	}
	if !contains(alarms, 500, 0) {
		t.Fatalf("spike missed; alarms=%v", alarms)
	}
}

func TestEWMAQuietOnCleanSeries(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	s := diurnalSeries(rng, 2000, 2, nil)
	alarms, err := EWMADetector{Alpha: 0.3, Threshold: 6}.Detect(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(alarms) > 10 {
		t.Fatalf("too many false alarms: %d", len(alarms))
	}
}

func TestEWMAValidation(t *testing.T) {
	if _, err := (EWMADetector{Alpha: 0, Threshold: 5}).Detect(nil); err == nil {
		t.Fatal("alpha=0 accepted")
	}
	if _, err := (EWMADetector{Alpha: 0.5, Threshold: 0}).Detect(nil); err == nil {
		t.Fatal("threshold=0 accepted")
	}
}

func TestHaarWaveletKnown(t *testing.T) {
	a, d := HaarWavelet([]float64{1, 1, 4, 2})
	r2 := math.Sqrt2
	if math.Abs(a[0]-2/r2) > 1e-12 || math.Abs(a[1]-6/r2) > 1e-12 {
		t.Fatalf("approx=%v", a)
	}
	if math.Abs(d[0]-0) > 1e-12 || math.Abs(d[1]-2/r2) > 1e-12 {
		t.Fatalf("detail=%v", d)
	}
}

// Property: Haar transform preserves energy (Parseval) for even-length
// input.
func TestPropHaarEnergy(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		n := 2 * (1 + rng.IntN(100))
		s := make([]float64, n)
		var energy float64
		for i := range s {
			s[i] = rng.NormFloat64() * 10
			energy += s[i] * s[i]
		}
		a, d := HaarWavelet(s)
		var out float64
		for i := range a {
			out += a[i]*a[i] + d[i]*d[i]
		}
		return math.Abs(energy-out) < 1e-6*(1+energy)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWaveletDetectsSpike(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	s := diurnalSeries(rng, 1024, 2, map[int]float64{400: 200})
	alarms, err := WaveletDetector{Levels: 3, Threshold: 20}.Detect(s)
	if err != nil {
		t.Fatal(err)
	}
	if !contains(alarms, 400, 4) {
		t.Fatalf("wavelet missed spike; %d alarms", len(alarms))
	}
}

func TestWaveletIgnoresDiurnal(t *testing.T) {
	// The diurnal cycle lives at far lower frequency than 3 levels of
	// detail; a clean series should raise few alarms.
	rng := rand.New(rand.NewPCG(5, 5))
	s := diurnalSeries(rng, 2048, 2, nil)
	alarms, err := WaveletDetector{Levels: 3, Threshold: 20}.Detect(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(alarms) > 40 {
		t.Fatalf("too many false alarms: %d", len(alarms))
	}
}

func TestWaveletValidation(t *testing.T) {
	if _, err := (WaveletDetector{Levels: 0, Threshold: 5}).Detect(make([]float64, 100)); err == nil {
		t.Fatal("levels=0 accepted")
	}
	if _, err := (WaveletDetector{Levels: 3, Threshold: 0}).Detect(make([]float64, 100)); err == nil {
		t.Fatal("threshold=0 accepted")
	}
	if _, err := (WaveletDetector{Levels: 5, Threshold: 5}).Detect(make([]float64, 10)); err == nil {
		t.Fatal("short series accepted")
	}
}

func TestSortFloats(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 9))
		s := make([]float64, rng.IntN(200))
		for i := range s {
			s[i] = rng.NormFloat64()
		}
		sortFloats(s)
		for i := 1; i < len(s); i++ {
			if s[i-1] > s[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
