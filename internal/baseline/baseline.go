// Package baseline implements the single-timeseries anomaly detectors that
// predate the subspace method and serve as its comparison points (Section 5
// of the paper): an EWMA residual control chart and a Barford et al.-style
// wavelet detector. Both operate on one timeseries at a time — a link load
// or a single OD flow — and therefore lack the network-wide view; the
// baselines experiment quantifies what that costs.
package baseline

import (
	"fmt"
	"math"
)

// EWMADetector flags points whose deviation from an exponentially weighted
// moving average exceeds Threshold times the EWMA of the absolute
// deviation (a robust online z-test).
type EWMADetector struct {
	// Alpha is the EWMA smoothing factor in (0,1].
	Alpha float64
	// Threshold is the alarm level in deviation units (typical: 4-6).
	Threshold float64
}

// Detect returns the alarmed indexes of the series.
func (d EWMADetector) Detect(series []float64) ([]int, error) {
	if !(d.Alpha > 0 && d.Alpha <= 1) {
		return nil, fmt.Errorf("baseline: alpha %v out of (0,1]", d.Alpha)
	}
	if d.Threshold <= 0 {
		return nil, fmt.Errorf("baseline: threshold %v must be positive", d.Threshold)
	}
	var alarms []int
	var level, dev float64
	started := false
	for i, x := range series {
		if !started {
			level, dev, started = x, math.Abs(x)*0.1+1, true
			continue
		}
		diff := x - level
		if math.Abs(diff) > d.Threshold*dev {
			alarms = append(alarms, i)
			// Do not absorb the anomaly into the level estimate.
			continue
		}
		level += d.Alpha * diff
		dev = d.Alpha*math.Abs(diff) + (1-d.Alpha)*dev
		if dev < 1e-12 {
			dev = 1e-12
		}
	}
	return alarms, nil
}

// HaarWavelet computes one level of the Haar discrete wavelet transform,
// returning (approximation, detail) coefficients; odd-length input drops
// the last sample, as is conventional.
func HaarWavelet(series []float64) (approx, detail []float64) {
	n := len(series) / 2
	approx = make([]float64, n)
	detail = make([]float64, n)
	for i := 0; i < n; i++ {
		a, b := series[2*i], series[2*i+1]
		approx[i] = (a + b) / math.Sqrt2
		detail[i] = (a - b) / math.Sqrt2
	}
	return approx, detail
}

// WaveletDetector implements a simplified Barford-style detector: it
// reconstructs the mid/high-frequency part of the signal from Haar detail
// coefficients at the first Levels decomposition levels, then flags windows
// where the local variance of that part exceeds Threshold times its global
// (robust) scale.
type WaveletDetector struct {
	// Levels of decomposition whose detail signals form the anomaly band.
	Levels int
	// Threshold in robust deviation units.
	Threshold float64
}

// Detect returns alarmed indexes (in original sample coordinates).
func (d WaveletDetector) Detect(series []float64) ([]int, error) {
	if d.Levels <= 0 {
		return nil, fmt.Errorf("baseline: levels %d must be positive", d.Levels)
	}
	if d.Threshold <= 0 {
		return nil, fmt.Errorf("baseline: threshold %v must be positive", d.Threshold)
	}
	if len(series) < 1<<uint(d.Levels+1) {
		return nil, fmt.Errorf("baseline: series length %d too short for %d levels", len(series), d.Levels)
	}
	// Deviation score per sample: sum over levels of the squared detail
	// coefficient covering the sample.
	score := make([]float64, len(series))
	approx := series
	for lvl := 0; lvl < d.Levels; lvl++ {
		var detail []float64
		approx, detail = HaarWavelet(approx)
		span := 1 << uint(lvl+1)
		for i, v := range detail {
			for j := i * span; j < (i+1)*span && j < len(score); j++ {
				score[j] += v * v
			}
		}
	}
	// Robust scale of scores.
	med := medianOf(score)
	dev := make([]float64, len(score))
	for i, v := range score {
		dev[i] = math.Abs(v - med)
	}
	mad := medianOf(dev)*1.4826 + 1e-12
	var alarms []int
	for i, v := range score {
		if (v-med)/mad > d.Threshold {
			alarms = append(alarms, i)
		}
	}
	return alarms, nil
}

func medianOf(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	// insertion-free: partial sort via simple sort
	sortFloats(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return 0.5 * (s[n/2-1] + s[n/2])
}

// sortFloats is a tiny quicksort to avoid importing sort in the hot path.
func sortFloats(s []float64) {
	if len(s) < 2 {
		return
	}
	pivot := s[len(s)/2]
	left, right := 0, len(s)-1
	for left <= right {
		for s[left] < pivot {
			left++
		}
		for s[right] > pivot {
			right--
		}
		if left <= right {
			s[left], s[right] = s[right], s[left]
			left++
			right--
		}
	}
	sortFloats(s[:right+1])
	sortFloats(s[left:])
}
