package anomaly

import (
	"fmt"
	"math/rand/v2"

	"netwide/internal/flow"
	"netwide/internal/ipaddr"
	"netwide/internal/topology"
	"netwide/internal/traffic"
)

// AlphaInjector is an unusually high-rate point-to-point byte transfer
// (Table 2 row 1): a single enormous flow between one source host and one
// destination host, short-lived, on a bandwidth-measurement or file-sharing
// port. Spikes B and P; attributable to a dominant src/dst pair.
type AlphaInjector struct {
	baseSpec
	noScale
	Src, Dst    ipaddr.Addr
	Port        uint16
	TrueBytes   float64
	BytesPerPkt float64
}

// NewAlpha builds an ALPHA injector on one OD pair.
func NewAlpha(id int, od topology.ODPair, startBin, durBins int, src, dst ipaddr.Addr, port uint16, trueBytes float64) *AlphaInjector {
	return &AlphaInjector{
		baseSpec: baseSpec{Spec{
			ID: id, Type: Alpha, StartBin: startBin, EndBin: startBin + durBins - 1,
			ODs:  []topology.ODPair{od},
			Note: fmt.Sprintf("alpha transfer %s:%d -> %s:%d", src, port, dst, port),
		}},
		Src: src, Dst: dst, Port: port, TrueBytes: trueBytes, BytesPerPkt: 1400,
	}
}

// Classes implements Injector.
func (a *AlphaInjector) Classes(od topology.ODPair, bin int, _ *rand.Rand) []traffic.FlowClass {
	if !a.spec.ActiveAt(od, bin) {
		return nil
	}
	pkts := uint64(a.TrueBytes / a.BytesPerPkt)
	if pkts == 0 {
		pkts = 1
	}
	return []traffic.FlowClass{{
		Count: 1, PktsPerFlow: pkts, BytesPerPkt: a.BytesPerPkt, Proto: flow.ProtoTCP,
		Src:     traffic.AddrTemplate{Mode: traffic.AddrFixed, Fixed: a.Src},
		Dst:     traffic.AddrTemplate{Mode: traffic.AddrFixed, Fixed: a.Dst},
		SrcPort: traffic.PortTemplate{Mode: traffic.PortFixed, Port: a.Port},
		DstPort: traffic.PortTemplate{Mode: traffic.PortFixed, Port: a.Port},
	}}
}

// DOSInjector is a (distributed) denial of service attack against a single
// victim (Table 2 row 2): many small packets from spoofed sources to one
// destination IP and port. Spikes P and/or F but not B; dominant
// destination, no dominant source. Sources at multiple origin PoPs make it
// a DDOS spanning multiple OD flows.
type DOSInjector struct {
	baseSpec
	noScale
	Victim      ipaddr.Addr
	Port        uint16
	TrueFlows   uint64 // per OD pair per bin
	PktsPerFlow uint64
}

// NewDOS builds a DOS (one origin) or DDOS (several origins) injector. All
// origin PoPs direct traffic at the same victim, whose address is drawn
// from the destination PoP of ods[0].
func NewDOS(id int, ods []topology.ODPair, startBin, durBins int, victim ipaddr.Addr, port uint16, trueFlows uint64, pktsPerFlow uint64) *DOSInjector {
	typ := DOS
	if len(ods) > 1 {
		typ = DDOS
	}
	return &DOSInjector{
		baseSpec: baseSpec{Spec{
			ID: id, Type: typ, StartBin: startBin, EndBin: startBin + durBins - 1,
			ODs:  ods,
			Note: fmt.Sprintf("dos against %s:%d from %d OD flows", victim, port, len(ods)),
		}},
		Victim: victim, Port: port, TrueFlows: trueFlows, PktsPerFlow: pktsPerFlow,
	}
}

// Classes implements Injector.
func (d *DOSInjector) Classes(od topology.ODPair, bin int, _ *rand.Rand) []traffic.FlowClass {
	if !d.spec.ActiveAt(od, bin) {
		return nil
	}
	return []traffic.FlowClass{{
		Count: d.TrueFlows, PktsPerFlow: d.PktsPerFlow, BytesPerPkt: 40, Proto: flow.ProtoTCP,
		Src:     traffic.AddrTemplate{Mode: traffic.AddrSpoofed},
		Dst:     traffic.AddrTemplate{Mode: traffic.AddrFixed, Fixed: d.Victim},
		SrcPort: traffic.PortTemplate{Mode: traffic.PortEphemeral},
		DstPort: traffic.PortTemplate{Mode: traffic.PortFixed, Port: d.Port},
	}}
}

// FlashInjector is a flash crowd (Table 2 row 3): a surge of legitimate
// requests from topologically clustered hosts toward one server and
// well-known port. Spikes F (and FP); dominant destination IP and port.
type FlashInjector struct {
	baseSpec
	noScale
	Server      ipaddr.Addr
	Port        uint16
	TrueFlows   uint64
	PktsPerFlow uint64
	ClientPfx   ipaddr.Prefix
}

// NewFlash builds a flash-crowd injector on one OD pair whose clients are
// clustered in clientPfx (one customer's address space).
func NewFlash(id int, od topology.ODPair, startBin, durBins int, server ipaddr.Addr, port uint16, clientPfx ipaddr.Prefix, trueFlows uint64) *FlashInjector {
	return &FlashInjector{
		baseSpec: baseSpec{Spec{
			ID: id, Type: FlashCrowd, StartBin: startBin, EndBin: startBin + durBins - 1,
			ODs:  []topology.ODPair{od},
			Note: fmt.Sprintf("flash crowd on %s:%d", server, port),
		}},
		Server: server, Port: port, TrueFlows: trueFlows, PktsPerFlow: 5, ClientPfx: clientPfx,
	}
}

// Classes implements Injector.
func (f *FlashInjector) Classes(od topology.ODPair, bin int, _ *rand.Rand) []traffic.FlowClass {
	if !f.spec.ActiveAt(od, bin) {
		return nil
	}
	return []traffic.FlowClass{{
		Count: f.TrueFlows, PktsPerFlow: f.PktsPerFlow, BytesPerPkt: 300, Proto: flow.ProtoTCP,
		Src:     traffic.AddrTemplate{Mode: traffic.AddrRandomInPrefix, Prefix: f.ClientPfx},
		Dst:     traffic.AddrTemplate{Mode: traffic.AddrFixed, Fixed: f.Server},
		SrcPort: traffic.PortTemplate{Mode: traffic.PortEphemeral},
		DstPort: traffic.PortTemplate{Mode: traffic.PortFixed, Port: f.Port},
	}}
}

// ScanInjector is a port or network scan (Table 2 row 4): probes from one
// dominant source, one packet per flow, so packet and flow counts move
// together. A network scan sweeps hosts on a target port; a port scan
// sweeps ports on one host.
type ScanInjector struct {
	baseSpec
	noScale
	Scanner   ipaddr.Addr
	TrueFlows uint64
	// NetworkScan true: random hosts at the destination PoP, fixed
	// TargetPort. False (port scan): fixed TargetHost, random ports.
	NetworkScan bool
	TargetPort  uint16
	TargetHost  ipaddr.Addr
}

// NewNetworkScan builds a network scan for a vulnerable port.
func NewNetworkScan(id int, od topology.ODPair, startBin, durBins int, scanner ipaddr.Addr, port uint16, trueFlows uint64) *ScanInjector {
	return &ScanInjector{
		baseSpec: baseSpec{Spec{
			ID: id, Type: Scan, StartBin: startBin, EndBin: startBin + durBins - 1,
			ODs:  []topology.ODPair{od},
			Note: fmt.Sprintf("network scan from %s for port %d", scanner, port),
		}},
		Scanner: scanner, TrueFlows: trueFlows, NetworkScan: true, TargetPort: port,
	}
}

// NewPortScan builds a port scan of a single host.
func NewPortScan(id int, od topology.ODPair, startBin, durBins int, scanner, target ipaddr.Addr, trueFlows uint64) *ScanInjector {
	return &ScanInjector{
		baseSpec: baseSpec{Spec{
			ID: id, Type: Scan, StartBin: startBin, EndBin: startBin + durBins - 1,
			ODs:  []topology.ODPair{od},
			Note: fmt.Sprintf("port scan of %s from %s", target, scanner),
		}},
		Scanner: scanner, TrueFlows: trueFlows, NetworkScan: false, TargetHost: target,
	}
}

// Classes implements Injector.
func (s *ScanInjector) Classes(od topology.ODPair, bin int, _ *rand.Rand) []traffic.FlowClass {
	if !s.spec.ActiveAt(od, bin) {
		return nil
	}
	c := traffic.FlowClass{
		Count: s.TrueFlows, PktsPerFlow: 1, BytesPerPkt: 40, Proto: flow.ProtoTCP,
		Src:     traffic.AddrTemplate{Mode: traffic.AddrFixed, Fixed: s.Scanner},
		SrcPort: traffic.PortTemplate{Mode: traffic.PortEphemeral},
	}
	if s.NetworkScan {
		c.Dst = traffic.AddrTemplate{Mode: traffic.AddrRandomAtPoP, PoP: od.Dest}
		c.DstPort = traffic.PortTemplate{Mode: traffic.PortFixed, Port: s.TargetPort}
	} else {
		c.Dst = traffic.AddrTemplate{Mode: traffic.AddrFixed, Fixed: s.TargetHost}
		c.DstPort = traffic.PortTemplate{Mode: traffic.PortRandom}
	}
	return []traffic.FlowClass{c}
}

// WormInjector is self-propagating scan traffic (Table 2 row 5): many
// infected sources probing random destinations on one exploit port. Spikes
// F; only the destination port is dominant.
type WormInjector struct {
	baseSpec
	noScale
	Port      uint16
	TrueFlows uint64 // per OD pair per bin
}

// NewWorm builds a worm propagation event across several OD pairs.
func NewWorm(id int, ods []topology.ODPair, startBin, durBins int, port uint16, trueFlows uint64) *WormInjector {
	return &WormInjector{
		baseSpec: baseSpec{Spec{
			ID: id, Type: Worm, StartBin: startBin, EndBin: startBin + durBins - 1,
			ODs:  ods,
			Note: fmt.Sprintf("worm propagation on port %d across %d OD flows", port, len(ods)),
		}},
		Port: port, TrueFlows: trueFlows,
	}
}

// Classes implements Injector.
func (w *WormInjector) Classes(od topology.ODPair, bin int, _ *rand.Rand) []traffic.FlowClass {
	if !w.spec.ActiveAt(od, bin) {
		return nil
	}
	return []traffic.FlowClass{{
		Count: w.TrueFlows, PktsPerFlow: 2, BytesPerPkt: 60, Proto: flow.ProtoTCP,
		Src:     traffic.AddrTemplate{Mode: traffic.AddrRandomAtPoP, PoP: od.Origin},
		Dst:     traffic.AddrTemplate{Mode: traffic.AddrRandomAtPoP, PoP: od.Dest},
		SrcPort: traffic.PortTemplate{Mode: traffic.PortEphemeral},
		DstPort: traffic.PortTemplate{Mode: traffic.PortFixed, Port: w.Port},
	}}
}

// PointMultipointInjector is content distribution from one server to many
// receivers (Table 2 row 6): large flows from a dominant source at one
// well-known port to numerous destinations. Spikes B, P, BP.
type PointMultipointInjector struct {
	baseSpec
	noScale
	Server    ipaddr.Addr
	Port      uint16
	Receivers uint64
	PktsEach  uint64
}

// NewPointMultipoint builds a one-to-many distribution event.
func NewPointMultipoint(id int, od topology.ODPair, startBin, durBins int, server ipaddr.Addr, port uint16, receivers, pktsEach uint64) *PointMultipointInjector {
	return &PointMultipointInjector{
		baseSpec: baseSpec{Spec{
			ID: id, Type: PointMultipoint, StartBin: startBin, EndBin: startBin + durBins - 1,
			ODs:  []topology.ODPair{od},
			Note: fmt.Sprintf("broadcast from %s:%d to %d receivers", server, port, receivers),
		}},
		Server: server, Port: port, Receivers: receivers, PktsEach: pktsEach,
	}
}

// Classes implements Injector.
func (p *PointMultipointInjector) Classes(od topology.ODPair, bin int, _ *rand.Rand) []traffic.FlowClass {
	if !p.spec.ActiveAt(od, bin) {
		return nil
	}
	return []traffic.FlowClass{{
		Count: p.Receivers, PktsPerFlow: p.PktsEach, BytesPerPkt: 1100, Proto: flow.ProtoTCP,
		Src:     traffic.AddrTemplate{Mode: traffic.AddrFixed, Fixed: p.Server},
		Dst:     traffic.AddrTemplate{Mode: traffic.AddrRandomAtPoP, PoP: od.Dest},
		SrcPort: traffic.PortTemplate{Mode: traffic.PortFixed, Port: p.Port},
		DstPort: traffic.PortTemplate{Mode: traffic.PortEphemeral},
	}}
}

// OutageInjector models equipment failure or maintenance at a PoP (Table 2
// row 7): traffic on every OD flow touching the PoP collapses for the
// duration. Decreases B, F and P together, lasts hours, affects multiple OD
// flows.
type OutageInjector struct {
	baseSpec
	noClasses
	// Residual is the fraction of traffic that survives (0 for a hard
	// outage, small for partial).
	Residual float64
}

// NewOutage builds an outage of the given PoP; the topology supplies the OD
// pairs touching it.
func NewOutage(id int, top *topology.Topology, pop topology.PoP, startBin, durBins int, residual float64) *OutageInjector {
	var ods []topology.ODPair
	for p := topology.PoP(0); int(p) < top.NumPoPs(); p++ {
		if p != pop {
			ods = append(ods, topology.ODPair{Origin: pop, Dest: p})
			ods = append(ods, topology.ODPair{Origin: p, Dest: pop})
		}
	}
	ods = append(ods, topology.ODPair{Origin: pop, Dest: pop})
	return &OutageInjector{
		baseSpec: baseSpec{Spec{
			ID: id, Type: Outage, StartBin: startBin, EndBin: startBin + durBins - 1,
			ODs:  ods,
			Note: fmt.Sprintf("outage at %s", top.PoPName(pop)),
		}},
		Residual: residual,
	}
}

// VolumeScale implements Injector.
func (o *OutageInjector) VolumeScale(od topology.ODPair, bin int, _ *traffic.Background) float64 {
	if !o.spec.ActiveAt(od, bin) {
		return 1
	}
	return o.Residual
}

// IngressShiftInjector models downstream traffic engineering (Table 2 row
// 8): a multihomed customer moves its traffic from one ingress PoP to
// another, so one set of OD flows loses volume while the corresponding set
// at the new ingress gains it. No dominant attribute; F (and B, P) move in
// opposite directions on the two OD sets.
type IngressShiftInjector struct {
	baseSpec
	noClasses
	From, To topology.PoP
	// Share is the fraction of the From-origin traffic belonging to the
	// shifting customer.
	Share float64
}

// NewIngressShift builds a shift of Share of From-origin traffic to To; the
// topology supplies the OD pairs originating at either PoP.
func NewIngressShift(id int, top *topology.Topology, from, to topology.PoP, startBin, durBins int, share float64) *IngressShiftInjector {
	var ods []topology.ODPair
	for d := topology.PoP(0); int(d) < top.NumPoPs(); d++ {
		ods = append(ods, topology.ODPair{Origin: from, Dest: d})
		ods = append(ods, topology.ODPair{Origin: to, Dest: d})
	}
	return &IngressShiftInjector{
		baseSpec: baseSpec{Spec{
			ID: id, Type: IngressShift, StartBin: startBin, EndBin: startBin + durBins - 1,
			ODs:  ods,
			Note: fmt.Sprintf("ingress shift %s -> %s (share %.2f)", top.PoPName(from), top.PoPName(to), share),
		}},
		From: from, To: to, Share: share,
	}
}

// VolumeScale implements Injector.
func (s *IngressShiftInjector) VolumeScale(od topology.ODPair, bin int, bg *traffic.Background) float64 {
	if bin < s.spec.StartBin || bin > s.spec.EndBin {
		return 1
	}
	switch od.Origin {
	case s.From:
		return 1 - s.Share
	case s.To:
		// The To-origin OD flow absorbs the shifted volume of the
		// corresponding From-origin flow.
		moved := s.Share * bg.TrueVolume(topology.ODPair{Origin: s.From, Dest: od.Dest}, bin)
		base := bg.TrueVolume(od, bin)
		if base <= 0 {
			return 1
		}
		return 1 + moved/base
	default:
		return 1
	}
}
