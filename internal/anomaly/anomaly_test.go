package anomaly

import (
	"math/rand/v2"
	"testing"

	"netwide/internal/flow"
	"netwide/internal/ipaddr"
	"netwide/internal/topology"
	"netwide/internal/traffic"
)

func testOD() topology.ODPair {
	return topology.ODPair{Origin: topology.ATLA, Dest: topology.NYCM}
}

func TestTypeString(t *testing.T) {
	if Alpha.String() != "ALPHA" || IngressShift.String() != "INGR-SHIFT" {
		t.Fatal("type names wrong")
	}
	if Type(99).String() != "Type(99)" {
		t.Fatal("out-of-range name wrong")
	}
	if len(Types()) != int(numTypes) {
		t.Fatal("Types() incomplete")
	}
}

func TestSpecWindowAndMembership(t *testing.T) {
	a := NewAlpha(1, testOD(), 100, 2, ipaddr.FromOctets(10, 0, 0, 1), ipaddr.FromOctets(10, 112, 0, 1), 5001, 1e8)
	s := a.Spec()
	if s.DurationBins() != 2 {
		t.Fatalf("duration %d", s.DurationBins())
	}
	if !s.ActiveAt(testOD(), 100) || !s.ActiveAt(testOD(), 101) {
		t.Fatal("not active inside window")
	}
	if s.ActiveAt(testOD(), 99) || s.ActiveAt(testOD(), 102) {
		t.Fatal("active outside window")
	}
	other := topology.ODPair{Origin: topology.CHIN, Dest: topology.NYCM}
	if s.ActiveAt(other, 100) {
		t.Fatal("active on wrong OD")
	}
}

func TestAlphaClasses(t *testing.T) {
	src := ipaddr.FromOctets(10, 0, 0, 1)
	dst := ipaddr.FromOctets(10, 112, 0, 1)
	a := NewAlpha(1, testOD(), 10, 1, src, dst, 5001, 1.4e7)
	rng := rand.New(rand.NewPCG(1, 1))
	cls := a.Classes(testOD(), 10, rng)
	if len(cls) != 1 {
		t.Fatalf("classes=%d", len(cls))
	}
	c := cls[0]
	if c.Count != 1 {
		t.Fatalf("alpha is a single flow, got %d", c.Count)
	}
	if c.PktsPerFlow != 10000 {
		t.Fatalf("pkts=%d, want 1.4e7/1400", c.PktsPerFlow)
	}
	if c.Src.Mode != traffic.AddrFixed || c.Src.Fixed != src {
		t.Fatal("alpha src not fixed")
	}
	if a.Classes(testOD(), 11, rng) != nil {
		t.Fatal("classes outside window")
	}
	if a.VolumeScale(testOD(), 10, nil) != 1 {
		t.Fatal("alpha must not scale volume")
	}
}

func TestDOSvsDDOSType(t *testing.T) {
	v := ipaddr.FromOctets(10, 112, 0, 9)
	single := NewDOS(1, []topology.ODPair{testOD()}, 0, 1, v, 0, 1000, 3)
	if single.Spec().Type != DOS {
		t.Fatalf("single-origin type %v", single.Spec().Type)
	}
	multi := NewDOS(2, []topology.ODPair{testOD(), {Origin: topology.CHIN, Dest: topology.NYCM}}, 0, 1, v, 0, 1000, 3)
	if multi.Spec().Type != DDOS {
		t.Fatalf("multi-origin type %v", multi.Spec().Type)
	}
	rng := rand.New(rand.NewPCG(2, 2))
	cls := multi.Classes(testOD(), 0, rng)
	if len(cls) != 1 || cls[0].Src.Mode != traffic.AddrSpoofed {
		t.Fatal("DOS sources must be spoofed")
	}
	if cls[0].Dst.Mode != traffic.AddrFixed || cls[0].Dst.Fixed != v {
		t.Fatal("DOS destination must be the victim")
	}
	if cls[0].BytesPerPkt > 60 {
		t.Fatal("DOS packets should be tiny (no payload)")
	}
}

func TestScanShapes(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	scanner := ipaddr.FromOctets(10, 0, 0, 7)
	ns := NewNetworkScan(1, testOD(), 5, 1, scanner, flow.PortNetBIOS, 5000)
	c := ns.Classes(testOD(), 5, rng)[0]
	if c.PktsPerFlow != 1 {
		t.Fatal("scan probes are single packets (pkts ~ flows)")
	}
	if c.DstPort.Mode != traffic.PortFixed || c.DstPort.Port != flow.PortNetBIOS {
		t.Fatal("network scan must fix the target port")
	}
	if c.Dst.Mode != traffic.AddrRandomAtPoP {
		t.Fatal("network scan must sweep hosts")
	}
	ps := NewPortScan(2, testOD(), 5, 1, scanner, ipaddr.FromOctets(10, 112, 0, 3), 5000)
	c = ps.Classes(testOD(), 5, rng)[0]
	if c.Dst.Mode != traffic.AddrFixed {
		t.Fatal("port scan must fix the host")
	}
	if c.DstPort.Mode != traffic.PortRandom {
		t.Fatal("port scan must sweep ports")
	}
}

func TestOutageCoversPoP(t *testing.T) {
	o := NewOutage(1, topology.Abilene(), topology.LOSA, 100, 12, 0.02)
	s := o.Spec()
	if len(s.ODs) != 2*(topology.NumPoPs-1)+1 {
		t.Fatalf("outage covers %d ODs", len(s.ODs))
	}
	od := topology.ODPair{Origin: topology.LOSA, Dest: topology.NYCM}
	if v := o.VolumeScale(od, 105, nil); v != 0.02 {
		t.Fatalf("outage scale %v", v)
	}
	if v := o.VolumeScale(od, 200, nil); v != 1 {
		t.Fatalf("outage scale outside window %v", v)
	}
	unrelated := topology.ODPair{Origin: topology.ATLA, Dest: topology.NYCM}
	if v := o.VolumeScale(unrelated, 105, nil); v != 1 {
		t.Fatalf("outage leaked to unrelated OD: %v", v)
	}
	if o.Classes(od, 105, nil) != nil {
		t.Fatal("outage must not add traffic")
	}
}

func TestIngressShiftConservesVolume(t *testing.T) {
	top := topology.Abilene()
	bg, err := traffic.NewBackground(top, 2e6, 11)
	if err != nil {
		t.Fatal(err)
	}
	sh := NewIngressShift(1, top, topology.LOSA, topology.SNVA, 50, 10, 0.7)
	var before, after float64
	for d := topology.PoP(0); d < topology.NumPoPs; d++ {
		from := topology.ODPair{Origin: topology.LOSA, Dest: d}
		to := topology.ODPair{Origin: topology.SNVA, Dest: d}
		before += bg.TrueVolume(from, 55) + bg.TrueVolume(to, 55)
		after += bg.TrueVolume(from, 55)*sh.VolumeScale(from, 55, bg) +
			bg.TrueVolume(to, 55)*sh.VolumeScale(to, 55, bg)
	}
	if d := (after - before) / before; d > 1e-9 || d < -1e-9 {
		t.Fatalf("ingress shift changed total volume by %v", d)
	}
	// From-origin flows lose, To-origin flows gain.
	from := topology.ODPair{Origin: topology.LOSA, Dest: topology.NYCM}
	to := topology.ODPair{Origin: topology.SNVA, Dest: topology.NYCM}
	if sh.VolumeScale(from, 55, bg) >= 1 {
		t.Fatal("From OD did not lose volume")
	}
	if sh.VolumeScale(to, 55, bg) <= 1 {
		t.Fatal("To OD did not gain volume")
	}
}

func TestLedgerQueries(t *testing.T) {
	led := &Ledger{}
	led.Injectors = append(led.Injectors,
		NewAlpha(1, testOD(), 10, 1, ipaddr.FromOctets(10, 0, 0, 1), ipaddr.FromOctets(10, 112, 0, 1), 5001, 1e7),
		NewOutage(2, topology.Abilene(), topology.LOSA, 5, 20, 0.02),
	)
	if n := len(led.ActiveAt(testOD(), 10)); n != 1 {
		t.Fatalf("ActiveAt found %d", n)
	}
	losa := topology.ODPair{Origin: topology.LOSA, Dest: topology.ATLA}
	if n := len(led.ActiveAt(losa, 10)); n != 1 {
		t.Fatalf("ActiveAt(losa) found %d", n)
	}
	counts := led.CountByType()
	if counts[Alpha] != 1 || counts[Outage] != 1 {
		t.Fatalf("counts %v", counts)
	}
	if len(led.Specs()) != 2 {
		t.Fatal("specs incomplete")
	}
}

func TestBuildScheduleDeterministicAndComplete(t *testing.T) {
	top := topology.Abilene()
	bg, err := traffic.NewBackground(top, 2e6, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultSchedule(bg, 4, 99)
	l1, err := Build(cfg, top)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := Build(cfg, top)
	if err != nil {
		t.Fatal(err)
	}
	if len(l1.Injectors) != len(l2.Injectors) {
		t.Fatal("schedule not deterministic")
	}
	for i := range l1.Injectors {
		s1, s2 := l1.Injectors[i].Spec(), l2.Injectors[i].Spec()
		if s1.ID != s2.ID || s1.Type != s2.Type || s1.StartBin != s2.StartBin ||
			s1.EndBin != s2.EndBin || len(s1.ODs) != len(s2.ODs) || s1.Note != s2.Note {
			t.Fatalf("schedule differs at %d: %+v vs %+v", i, s1, s2)
		}
	}
	counts := l1.CountByType()
	for _, typ := range Types() {
		if typ.Adversarial() {
			// The adversarial family is scenario-only; the random schedule
			// reproduces the paper's observed population and must not
			// inject it.
			if counts[typ] != 0 {
				t.Fatalf("random schedule injected adversarial type %v", typ)
			}
			continue
		}
		if counts[typ] == 0 {
			t.Fatalf("schedule missing type %v", typ)
		}
	}
	// Prevalence structure of Table 3: ALPHA most frequent; flash and scan
	// next; operational events rare.
	if !(counts[Alpha] > counts[FlashCrowd] && counts[FlashCrowd] >= counts[Scan] &&
		counts[Scan] > counts[DOS] && counts[DOS] > counts[Outage]) {
		t.Fatalf("prevalence structure wrong: %v", counts)
	}
	// All windows inside the run.
	total := cfg.Weeks * traffic.BinsPerWeek
	for _, s := range l1.Specs() {
		if s.StartBin < 0 || s.EndBin >= total || s.StartBin > s.EndBin {
			t.Fatalf("bad window %+v", s)
		}
		if len(s.ODs) == 0 {
			t.Fatalf("no ODs for %+v", s)
		}
	}
}

func TestBuildScheduleShortRun(t *testing.T) {
	top := topology.Abilene()
	bg, _ := traffic.NewBackground(top, 2e6, 1)
	cfg := DefaultSchedule(bg, 1, 5)
	led, err := Build(cfg, top)
	if err != nil {
		t.Fatal(err)
	}
	// 1-week run scales down but keeps at least one of each honest type
	// (the adversarial family is scenario-only, never randomly scheduled).
	counts := led.CountByType()
	for _, typ := range HonestTypes() {
		if counts[typ] == 0 {
			t.Fatalf("short schedule missing %v", typ)
		}
	}
	if counts[Alpha] > 60 {
		t.Fatalf("1-week alphas %d did not scale down", counts[Alpha])
	}
	if _, err := Build(ScheduleConfig{Weeks: 0, RefBytes: 1}, top); err == nil {
		t.Fatal("weeks=0 accepted")
	}
	if _, err := Build(ScheduleConfig{Weeks: 1, RefBytes: 0}, top); err == nil {
		t.Fatal("refbytes=0 accepted")
	}
}
