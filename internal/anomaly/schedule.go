package anomaly

import (
	"fmt"
	"math/rand/v2"

	"netwide/internal/flow"
	"netwide/internal/ipaddr"
	"netwide/internal/topology"
	"netwide/internal/traffic"
)

// ScheduleConfig controls the random anomaly population of a run. Counts
// are per 4 weeks, matching the paper's measurement period; shorter runs
// scale proportionally. The default counts reproduce the prevalence
// structure of Table 3 (ALPHA most common, then FLASH/SCAN/DOS, with rare
// operational events).
type ScheduleConfig struct {
	Weeks int
	// Per-4-week injected counts per type.
	Alphas, DOSes, DDOSes, Flashes, Scans, Worms, PtMults, Outages, IngressShifts int
	// RefBytes is the mean true byte volume per (OD, bin); intensities are
	// sized relative to it.
	RefBytes float64
	Seed     uint64
}

// DefaultSchedule sizes the population for a run of the given length over
// the given background generator.
func DefaultSchedule(bg *traffic.Background, weeks int, seed uint64) ScheduleConfig {
	ref := bg.MeanRateBps * traffic.BinSeconds / float64(bg.Top.NumODPairs())
	return ScheduleConfig{
		Weeks:  weeks,
		Alphas: 150, DOSes: 36, DDOSes: 12, Flashes: 70, Scans: 60,
		Worms: 3, PtMults: 4, Outages: 3, IngressShifts: 4,
		RefBytes: ref,
		Seed:     seed,
	}
}

// scaled returns count scaled from a 4-week norm to cfg.Weeks, keeping at
// least 1 if the 4-week count is positive.
func (c ScheduleConfig) scaled(count int) int {
	if count <= 0 {
		return 0
	}
	s := count * c.Weeks / 4
	if s < 1 {
		s = 1
	}
	return s
}

// Build materializes the random anomaly population into a Ledger. All
// randomness derives from cfg.Seed, so a schedule is reproducible.
func Build(cfg ScheduleConfig, top *topology.Topology) (*Ledger, error) {
	if cfg.Weeks <= 0 {
		return nil, fmt.Errorf("anomaly: weeks %d must be positive", cfg.Weeks)
	}
	if cfg.RefBytes <= 0 {
		return nil, fmt.Errorf("anomaly: reference volume %v must be positive", cfg.RefBytes)
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x5EED))
	totalBins := cfg.Weeks * traffic.BinsPerWeek
	led := &Ledger{}
	id := 0
	nextID := func() int { id++; return id }

	numPoPs := top.NumPoPs()
	randomOD := func() topology.ODPair {
		return topology.ODPair{
			Origin: topology.PoP(rng.IntN(numPoPs)),
			Dest:   topology.PoP(rng.IntN(numPoPs)),
		}
	}
	hostAt := func(p topology.PoP, salt uint64) ipaddr.Addr {
		custs := top.CustomersAt(p)
		c := custs[rng.IntN(len(custs))]
		return c.Prefixes[0].Nth(salt)
	}
	randBin := func(maxDur int) int {
		return rng.IntN(totalBins - maxDur)
	}

	// ALPHA flows: bandwidth experiments (ports 5000-5050, 56117) and
	// file-sharing transfers (1412). 1-2 bins.
	alphaPorts := []uint16{flow.PortIperfLo, 5001, 5010, flow.PortIperfHi, flow.PortPathdiag, flow.PortKazaa}
	for i := 0; i < cfg.scaled(cfg.Alphas); i++ {
		od := randomOD()
		dur := 1 + rng.IntN(2)
		vol := cfg.RefBytes * (6 + rng.Float64()*14) // 6-20x an OD-bin
		port := alphaPorts[rng.IntN(len(alphaPorts))]
		led.Injectors = append(led.Injectors, NewAlpha(
			nextID(), od, randBin(dur), dur,
			hostAt(od.Origin, rng.Uint64N(1000)), hostAt(od.Dest, rng.Uint64N(1000)),
			port, vol))
	}

	// DOS attacks: single origin, victim at the destination PoP, ports 0,
	// 110, 113. Up to 4 bins (paper: typically < 20 min).
	dosPorts := []uint16{flow.PortZero, flow.PortZero, flow.PortPOP, flow.PortIdentd}
	for i := 0; i < cfg.scaled(cfg.DOSes); i++ {
		od := randomOD()
		dur := 1 + rng.IntN(4)
		victim := hostAt(od.Dest, rng.Uint64N(100))
		flows := uint64(cfg.RefBytes / 4700 * (8 + rng.Float64()*25))
		pkts := uint64(2 + rng.IntN(12))
		led.Injectors = append(led.Injectors, NewDOS(
			nextID(), []topology.ODPair{od}, randBin(dur), dur,
			victim, dosPorts[rng.IntN(len(dosPorts))], flows, pkts))
	}

	// DDOS: 2-4 origin PoPs, same victim.
	for i := 0; i < cfg.scaled(cfg.DDOSes); i++ {
		dst := topology.PoP(rng.IntN(numPoPs))
		norigins := 2 + rng.IntN(3)
		if norigins >= numPoPs {
			norigins = numPoPs - 1
		}
		seen := map[topology.PoP]bool{dst: true}
		var ods []topology.ODPair
		for len(ods) < norigins {
			o := topology.PoP(rng.IntN(numPoPs))
			if seen[o] {
				continue
			}
			seen[o] = true
			ods = append(ods, topology.ODPair{Origin: o, Dest: dst})
		}
		dur := 1 + rng.IntN(4)
		victim := hostAt(dst, rng.Uint64N(100))
		flows := uint64(cfg.RefBytes / 4700 * (5 + rng.Float64()*12))
		led.Injectors = append(led.Injectors, NewDOS(
			nextID(), ods, randBin(dur), dur,
			victim, flow.PortZero, flows, uint64(2+rng.IntN(10))))
	}

	// Flash crowds: web or DNS service, clients clustered in one customer
	// prefix of the origin PoP.
	for i := 0; i < cfg.scaled(cfg.Flashes); i++ {
		od := randomOD()
		dur := 1 + rng.IntN(3)
		server := hostAt(od.Dest, rng.Uint64N(20))
		port := flow.PortHTTP
		if rng.Float64() < 0.15 {
			port = flow.PortDNS
		}
		clients := top.CustomersAt(od.Origin)
		pfx := clients[rng.IntN(len(clients))].Prefixes[0]
		flows := uint64(cfg.RefBytes / 4700 * (10 + rng.Float64()*25))
		led.Injectors = append(led.Injectors, NewFlash(
			nextID(), od, randBin(dur), dur, server, port, pfx, flows))
	}

	// Scans: mostly network scans for NetBIOS/SQL ports, some port scans.
	scanPorts := []uint16{flow.PortNetBIOS, flow.PortNetBIOS, flow.PortMSSQL, flow.PortDeloder}
	for i := 0; i < cfg.scaled(cfg.Scans); i++ {
		od := randomOD()
		dur := 1 + rng.IntN(2)
		scanner := hostAt(od.Origin, rng.Uint64N(5000))
		flows := uint64(cfg.RefBytes / 4700 * (15 + rng.Float64()*40))
		if rng.Float64() < 0.75 {
			led.Injectors = append(led.Injectors, NewNetworkScan(
				nextID(), od, randBin(dur), dur, scanner,
				scanPorts[rng.IntN(len(scanPorts))], flows))
		} else {
			target := hostAt(od.Dest, rng.Uint64N(100))
			led.Injectors = append(led.Injectors, NewPortScan(
				nextID(), od, randBin(dur), dur, scanner, target, flows))
		}
	}

	// Worms: port 1433 (SQL-Snake) or 445 (Deloder), several OD pairs.
	wormPorts := []uint16{flow.PortMSSQL, flow.PortDeloder}
	for i := 0; i < cfg.scaled(cfg.Worms); i++ {
		norigins := 2 + rng.IntN(3)
		var ods []topology.ODPair
		for len(ods) < norigins {
			ods = append(ods, randomOD())
		}
		dur := 2 + rng.IntN(4)
		flows := uint64(cfg.RefBytes / 4700 * (12 + rng.Float64()*20))
		led.Injectors = append(led.Injectors, NewWorm(
			nextID(), ods, randBin(dur), dur, wormPorts[rng.IntN(len(wormPorts))], flows))
	}

	// Point-to-multipoint: news service broadcasts.
	for i := 0; i < cfg.scaled(cfg.PtMults); i++ {
		od := randomOD()
		dur := 1 + rng.IntN(3)
		server := hostAt(od.Origin, rng.Uint64N(10))
		recvs := uint64(40 + rng.IntN(200))
		pkts := uint64(cfg.RefBytes * (6 + rng.Float64()*10) / float64(recvs) / 1100)
		if pkts == 0 {
			pkts = 1
		}
		led.Injectors = append(led.Injectors, NewPointMultipoint(
			nextID(), od, randBin(dur), dur, server, flow.PortNNTP, recvs, pkts))
	}

	// Outages: scheduled maintenance / failures, lasting hours.
	for i := 0; i < cfg.scaled(cfg.Outages); i++ {
		pop := topology.PoP(rng.IntN(numPoPs))
		dur := 24 + rng.IntN(48)
		led.Injectors = append(led.Injectors, NewOutage(
			nextID(), top, pop, randBin(dur), dur, 0.02+rng.Float64()*0.05))
	}

	// Ingress shifts: the CALREN-style multihomed reroute between the
	// topology's multihomed customer homes.
	from, to, ok := top.Multihomed()
	if !ok {
		// No multihomed customer: model the shift between the first two PoPs.
		from, to = 0, 1
	}
	for i := 0; i < cfg.scaled(cfg.IngressShifts); i++ {
		f, t := from, to
		if rng.Float64() < 0.5 {
			f, t = t, f
		}
		dur := 4 + rng.IntN(20)
		led.Injectors = append(led.Injectors, NewIngressShift(
			nextID(), top, f, t, randBin(dur), dur, 0.5+rng.Float64()*0.4))
	}
	return led, nil
}
