// Package anomaly injects ground-truth anomalies into the synthetic traffic
// stream. Every row of the paper's Table 2 taxonomy is implemented as an
// Injector that perturbs true traffic — either by adding flow classes
// (attacks, scans, transfers) or by scaling background volume (outages,
// ingress shifts) — reproducing the *features* column of the table: which
// traffic types spike, which attributes dominate, how long events last and
// how many OD flows they touch.
//
// Because the paper's anomalies were found in real traffic and verified by
// hand, the synthetic substitution keeps a Ledger of injected events as the
// ground truth that detection and classification are scored against.
package anomaly

import (
	"fmt"
	"math/rand/v2"

	"netwide/internal/topology"
	"netwide/internal/traffic"
)

// Type enumerates the taxonomy of Table 2.
type Type int

// The anomaly taxonomy.
const (
	Alpha Type = iota
	DOS
	DDOS
	FlashCrowd
	Scan
	Worm
	PointMultipoint
	Outage
	IngressShift
	// The adversarial family (see adversarial.go): evasive variants built
	// to probe detector weaknesses rather than reproduce Table 2.
	StealthDDOS
	CoordFlood
	SlowRamp
	Contamination
	numTypes
)

var typeNames = [numTypes]string{
	"ALPHA", "DOS", "DDOS", "FLASH", "SCAN", "WORM", "PT-MULT", "OUTAGE", "INGR-SHIFT",
	"STEALTH-DDOS", "COORD-FLOOD", "SLOW-RAMP", "CONTAM",
}

// String returns the table label of the type.
func (t Type) String() string {
	if t < 0 || t >= numTypes {
		return fmt.Sprintf("Type(%d)", int(t))
	}
	return typeNames[t]
}

// Types lists all anomaly types in taxonomy order.
func Types() []Type {
	out := make([]Type, numTypes)
	for i := range out {
		out[i] = Type(i)
	}
	return out
}

// HonestTypes lists the Table 2 taxonomy — the classes the default random
// schedule injects with the paper's prevalence. The adversarial classes
// (STEALTH-DDOS through CONTAM) are scenario-only: they model evasion of
// the detector, not the anomaly population the paper observed.
func HonestTypes() []Type { return Types()[:IngressShift+1] }

// Adversarial reports whether the type belongs to the adversarial family.
func (t Type) Adversarial() bool { return t >= StealthDDOS && t < numTypes }

// Spec is the ground-truth description of one injected anomaly.
type Spec struct {
	ID       int
	Type     Type
	StartBin int // first affected bin (inclusive)
	EndBin   int // last affected bin (inclusive)
	ODs      []topology.ODPair
	Note     string
}

// DurationBins returns the number of affected bins.
func (s Spec) DurationBins() int { return s.EndBin - s.StartBin + 1 }

// ActiveAt reports whether the anomaly affects (od, bin).
func (s Spec) ActiveAt(od topology.ODPair, bin int) bool {
	if bin < s.StartBin || bin > s.EndBin {
		return false
	}
	for _, o := range s.ODs {
		if o == od {
			return true
		}
	}
	return false
}

// Injector perturbs true traffic for the bins and OD pairs it covers.
type Injector interface {
	Spec() Spec
	// Classes returns extra true-traffic flow classes for (od, bin); nil
	// when the injector does not add traffic there.
	Classes(od topology.ODPair, bin int, rng *rand.Rand) []traffic.FlowClass
	// VolumeScale multiplies the background volume of (od, bin); 1 means
	// untouched. bg supplies cross-OD volume context (ingress shifts move
	// one OD's volume onto another).
	VolumeScale(od topology.ODPair, bin int, bg *traffic.Background) float64
}

// Ledger is the ground truth of a simulation run.
type Ledger struct {
	Injectors []Injector
}

// Specs returns the specs of all injected anomalies.
func (l *Ledger) Specs() []Spec {
	out := make([]Spec, len(l.Injectors))
	for i, inj := range l.Injectors {
		out[i] = inj.Spec()
	}
	return out
}

// ActiveAt returns the injectors overlapping (od, bin).
func (l *Ledger) ActiveAt(od topology.ODPair, bin int) []Injector {
	var out []Injector
	for _, inj := range l.Injectors {
		if inj.Spec().ActiveAt(od, bin) {
			out = append(out, inj)
		}
	}
	return out
}

// CountByType tallies the injected anomalies per type.
func (l *Ledger) CountByType() map[Type]int {
	out := map[Type]int{}
	for _, inj := range l.Injectors {
		out[inj.Spec().Type]++
	}
	return out
}

// baseSpec implements the Spec method for all injectors.
type baseSpec struct{ spec Spec }

func (b baseSpec) Spec() Spec { return b.spec }

// noScale is embedded by injectors that only add traffic.
type noScale struct{}

func (noScale) VolumeScale(topology.ODPair, int, *traffic.Background) float64 { return 1 }

// noClasses is embedded by injectors that only scale volume.
type noClasses struct{}

func (noClasses) Classes(topology.ODPair, int, *rand.Rand) []traffic.FlowClass { return nil }
