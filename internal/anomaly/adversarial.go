package anomaly

// The adversarial injector family. Where injectors.go reproduces the honest
// Table 2 taxonomy — anomalies loud enough that the paper could find them by
// visual inspection — these four are built to probe the subspace method's
// known weaknesses: residual-energy thresholding (evaded by staying small),
// greedy single-flow attribution (evaded by spreading volume), step-change
// detection (evaded by ramping slowly) and training on recent history
// (poisoned by contaminating refit windows). They are the ground truth of
// the detector-shootout scenarios, not of the paper's experiments.

import (
	"fmt"
	"math/rand/v2"

	"netwide/internal/flow"
	"netwide/internal/ipaddr"
	"netwide/internal/topology"
	"netwide/internal/traffic"
)

// StealthDDOSInjector is a low-rate distributed denial of service shaped to
// sit under the Q threshold: the attack volume is spread across many origin
// OD flows and held to a small multiple of the mean per-OD load, so the sum
// of squared per-flow residuals stays below the residual energy an honest
// DDOS concentrates on few flows. Per-bin amplitude jitters ±25% so the
// attack has no clean step edge either.
type StealthDDOSInjector struct {
	baseSpec
	noScale
	Victim ipaddr.Addr
	Port   uint16
	// FlowsPerOD is the per-OD-pair per-bin flow count — the total attack
	// rate divided across the origin fan-in.
	FlowsPerOD  uint64
	PktsPerFlow uint64
}

// NewStealthDDOS builds a stealth DDOS across the given origin OD flows.
func NewStealthDDOS(id int, ods []topology.ODPair, startBin, durBins int, victim ipaddr.Addr, port uint16, flowsPerOD, pktsPerFlow uint64) *StealthDDOSInjector {
	return &StealthDDOSInjector{
		baseSpec: baseSpec{Spec{
			ID: id, Type: StealthDDOS, StartBin: startBin, EndBin: startBin + durBins - 1,
			ODs:  ods,
			Note: fmt.Sprintf("stealth ddos against %s:%d, %d flows/bin spread over %d OD flows", victim, port, flowsPerOD*uint64(len(ods)), len(ods)),
		}},
		Victim: victim, Port: port, FlowsPerOD: flowsPerOD, PktsPerFlow: pktsPerFlow,
	}
}

// Classes implements Injector.
func (s *StealthDDOSInjector) Classes(od topology.ODPair, bin int, rng *rand.Rand) []traffic.FlowClass {
	if !s.spec.ActiveAt(od, bin) {
		return nil
	}
	// Jitter the per-bin rate in [0.75, 1.25) so the onset is not a step.
	n := uint64(float64(s.FlowsPerOD) * (0.75 + 0.5*rng.Float64()))
	if n == 0 {
		n = 1
	}
	return []traffic.FlowClass{{
		Count: n, PktsPerFlow: s.PktsPerFlow, BytesPerPkt: 40, Proto: flow.ProtoTCP,
		Src:     traffic.AddrTemplate{Mode: traffic.AddrSpoofed},
		Dst:     traffic.AddrTemplate{Mode: traffic.AddrFixed, Fixed: s.Victim},
		SrcPort: traffic.PortTemplate{Mode: traffic.PortEphemeral},
		DstPort: traffic.PortTemplate{Mode: traffic.PortFixed, Port: s.Port},
	}}
}

// CoordFloodInjector is a coordinated multi-OD attack that spreads its
// volume across a mesh of OD flows — distinct origins AND distinct
// destination PoPs, random victims at each destination — so no single flow
// dominates the residual and greedy attribution has no dominant OD (or
// dominant address) to seize on. The aggregate is network-visible; every
// slice is ordinary.
type CoordFloodInjector struct {
	baseSpec
	noScale
	Port uint16
	// FlowsPerOD is the per-OD-pair per-bin flow count.
	FlowsPerOD  uint64
	PktsPerFlow uint64
}

// NewCoordFlood builds a coordinated flood over the OD mesh.
func NewCoordFlood(id int, ods []topology.ODPair, startBin, durBins int, port uint16, flowsPerOD, pktsPerFlow uint64) *CoordFloodInjector {
	return &CoordFloodInjector{
		baseSpec: baseSpec{Spec{
			ID: id, Type: CoordFlood, StartBin: startBin, EndBin: startBin + durBins - 1,
			ODs:  ods,
			Note: fmt.Sprintf("coordinated flood on port %d spread over %d OD flows", port, len(ods)),
		}},
		Port: port, FlowsPerOD: flowsPerOD, PktsPerFlow: pktsPerFlow,
	}
}

// Classes implements Injector.
func (c *CoordFloodInjector) Classes(od topology.ODPair, bin int, _ *rand.Rand) []traffic.FlowClass {
	if !c.spec.ActiveAt(od, bin) {
		return nil
	}
	return []traffic.FlowClass{{
		Count: c.FlowsPerOD, PktsPerFlow: c.PktsPerFlow, BytesPerPkt: 60, Proto: flow.ProtoTCP,
		// Random sources at the origin and random targets at the
		// destination: no dominant address on either side.
		Src:     traffic.AddrTemplate{Mode: traffic.AddrRandomAtPoP, PoP: od.Origin},
		Dst:     traffic.AddrTemplate{Mode: traffic.AddrRandomAtPoP, PoP: od.Dest},
		SrcPort: traffic.PortTemplate{Mode: traffic.PortEphemeral},
		DstPort: traffic.PortTemplate{Mode: traffic.PortFixed, Port: c.Port},
	}}
}

// SlowRampInjector is slow-ramp exfiltration: one long-lived transfer from
// a host at the origin to a collection point at the destination whose rate
// grows linearly from zero to PeakBytes per bin over the episode. Each bin
// adds only a sliver over the last, so step detectors see no edge, and a
// detector that keeps retraining on recent history absorbs the ramp into
// its own baseline.
type SlowRampInjector struct {
	baseSpec
	noScale
	Src, Dst    ipaddr.Addr
	Port        uint16
	PeakBytes   float64
	BytesPerPkt float64
}

// NewSlowRamp builds a slow-ramp exfiltration on one OD pair.
func NewSlowRamp(id int, od topology.ODPair, startBin, durBins int, src, dst ipaddr.Addr, port uint16, peakBytes float64) *SlowRampInjector {
	return &SlowRampInjector{
		baseSpec: baseSpec{Spec{
			ID: id, Type: SlowRamp, StartBin: startBin, EndBin: startBin + durBins - 1,
			ODs:  []topology.ODPair{od},
			Note: fmt.Sprintf("slow-ramp exfiltration %s -> %s:%d over %d bins", src, dst, port, durBins),
		}},
		Src: src, Dst: dst, Port: port, PeakBytes: peakBytes, BytesPerPkt: 1400,
	}
}

// Classes implements Injector.
func (s *SlowRampInjector) Classes(od topology.ODPair, bin int, _ *rand.Rand) []traffic.FlowClass {
	if !s.spec.ActiveAt(od, bin) {
		return nil
	}
	frac := float64(bin-s.spec.StartBin+1) / float64(s.spec.DurationBins())
	pkts := uint64(s.PeakBytes * frac / s.BytesPerPkt)
	if pkts == 0 {
		pkts = 1
	}
	return []traffic.FlowClass{{
		Count: 1, PktsPerFlow: pkts, BytesPerPkt: s.BytesPerPkt, Proto: flow.ProtoTCP,
		Src:     traffic.AddrTemplate{Mode: traffic.AddrFixed, Fixed: s.Src},
		Dst:     traffic.AddrTemplate{Mode: traffic.AddrFixed, Fixed: s.Dst},
		SrcPort: traffic.PortTemplate{Mode: traffic.PortEphemeral},
		DstPort: traffic.PortTemplate{Mode: traffic.PortFixed, Port: s.Port},
	}}
}

// ContaminationInjector is training-set contamination — the classic
// subspace-method weakness. It raises the background volume of its target
// OD flows by a moderate, sustained factor for long enough to cover a model
// refit window: the poisoned fit absorbs the elevated direction into the
// normal subspace (and inflates the Q threshold), so a later overt attack
// on the same flows scores as normal. On its own it is a plateau, not a
// spike; paired with a follow-up episode it is an evasion setup.
type ContaminationInjector struct {
	baseSpec
	noClasses
	// Boost is the extra volume fraction: background volume on the target
	// ODs is scaled by 1+Boost for the duration.
	Boost float64
}

// NewContamination builds a refit-window poisoning plateau on the ODs.
func NewContamination(id int, ods []topology.ODPair, startBin, durBins int, boost float64) *ContaminationInjector {
	return &ContaminationInjector{
		baseSpec: baseSpec{Spec{
			ID: id, Type: Contamination, StartBin: startBin, EndBin: startBin + durBins - 1,
			ODs:  ods,
			Note: fmt.Sprintf("refit poisoning: +%.0f%% volume on %d OD flows for %d bins", boost*100, len(ods), durBins),
		}},
		Boost: boost,
	}
}

// VolumeScale implements Injector.
func (c *ContaminationInjector) VolumeScale(od topology.ODPair, bin int, _ *traffic.Background) float64 {
	if !c.spec.ActiveAt(od, bin) {
		return 1
	}
	return 1 + c.Boost
}
